package dreamsim

import (
	"fmt"

	"dreamsim/internal/core"
	"dreamsim/internal/monitor"
)

// Checkpointed runs. StartRun opens a simulation that can pause at
// tick boundaries, serialize its complete state with Snapshot, and be
// rebuilt later — in the same process or another one — with
// ResumeRun. A resumed run continues byte-identically to one that
// never paused: same Result, same metering, same monitoring series.
// The serving layer (cmd/dreamserve) leans on this to survive being
// killed mid-sweep.
//
// Not every run is checkpointable: Params.TimelinePath streams
// monitoring rows to a file as the run progresses, which puts part of
// the run's output outside the snapshot boundary; such runs are
// rejected up front.

// CheckpointedRun is an in-flight simulation with a serialization
// boundary. It is not safe for concurrent use.
type CheckpointedRun struct {
	cp  core.Params
	rec *monitor.Recorder
	sim *core.Simulator
}

// checkpointParams lowers the public parameters for a checkpointed
// run and builds its recorder, rejecting the knobs the snapshot
// boundary cannot capture.
func checkpointParams(p Params) (core.Params, *monitor.Recorder, error) {
	if p.TimelinePath != "" {
		return core.Params{}, nil, fmt.Errorf("dreamsim: a run streaming a timeline file cannot be checkpointed")
	}
	cp, err := p.coreParams()
	if err != nil {
		return core.Params{}, nil, err
	}
	rec, _, err := buildRecorder(p, &cp)
	if err != nil {
		return core.Params{}, nil, err
	}
	return cp, rec, nil
}

// StartRun opens a checkpointable simulation: arrivals and fault
// streams are primed but no events have fired. Drive it with RunUntil
// and collect the outcome with Finish.
func StartRun(p Params) (*CheckpointedRun, error) {
	cp, rec, err := checkpointParams(p)
	if err != nil {
		return nil, err
	}
	s, err := core.New(cp)
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	return &CheckpointedRun{cp: cp, rec: rec, sim: s}, nil
}

// ResumeRun rebuilds a paused simulation from a snapshot taken by
// (*CheckpointedRun).Snapshot. The parameters must be the ones the
// snapshotted run was started with; mismatches are rejected by the
// snapshot's embedded fingerprint.
func ResumeRun(p Params, snap []byte) (*CheckpointedRun, error) {
	cp, rec, err := checkpointParams(p)
	if err != nil {
		return nil, err
	}
	s, err := core.RestoreSnapshot(cp, snap)
	if err != nil {
		return nil, err
	}
	return &CheckpointedRun{cp: cp, rec: rec, sim: s}, nil
}

// RunUntil fires events until the run completes (returns true) or
// pause returns true at a tick boundary (returns false) — the only
// states a run can be snapshotted or finished in. pause sees the
// simulation clock and the events processed so far; nil never pauses.
func (c *CheckpointedRun) RunUntil(pause func(now int64, processed uint64) bool) bool {
	return c.sim.RunUntil(pause)
}

// Snapshot serializes the paused run's complete state: pending
// events, counters, fabric contents, RNG stream positions, source
// cursors and monitoring series. Valid only at a tick boundary (after
// RunUntil returned false).
func (c *CheckpointedRun) Snapshot() ([]byte, error) {
	return c.sim.EncodeSnapshot()
}

// Finish validates end-of-run accounting and assembles the public
// result. Valid only after RunUntil returned true.
func (c *CheckpointedRun) Finish() (Result, error) {
	res, err := c.sim.Finish()
	if err != nil {
		return Result{}, err
	}
	return assembleResult(res, c.cp, c.rec)
}

// Now reports the simulation clock.
func (c *CheckpointedRun) Now() int64 { return c.sim.Now() }

// Processed reports how many events the run has fired so far.
func (c *CheckpointedRun) Processed() uint64 { return c.sim.Processed() }
