package dreamsim_test

import (
	"strings"
	"testing"

	"dreamsim"
)

const miniSWF = `; tiny SWF for public API tests
1 0 0 3600 8 -1 -1 8 4000 -1 1 101 5 7 1 1 -1 -1
2 30 0 120 2 -1 -1 2 300 -1 1 102 5 3 1 1 -1 -1
3 60 0 600 16 -1 -1 16 700 -1 1 103 6 9 1 1 1 -1
4 90 0 60 4 -1 -1 4 60 -1 1 103 6 2 1 1 2 -1
`

func TestLoadSWF(t *testing.T) {
	tasks, err := dreamsim.LoadSWF(strings.NewReader(miniSWF), dreamsim.SWFMapping{KeepDependencies: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	if tasks[0].ID != 1 || tasks[0].RequiredTime != 3600 || tasks[0].NeededArea != 800 {
		t.Fatalf("job 1 mapping: %+v", tasks[0])
	}
	// Dependencies: job 3 after job 1, job 4 after job 2.
	if len(tasks[2].DependsOn) != 1 || tasks[2].DependsOn[0] != 1 {
		t.Fatalf("job 3 deps: %v", tasks[2].DependsOn)
	}
	if len(tasks[3].DependsOn) != 1 || tasks[3].DependsOn[0] != 2 {
		t.Fatalf("job 4 deps: %v", tasks[3].DependsOn)
	}
}

func TestLoadSWFAndRun(t *testing.T) {
	tasks, err := dreamsim.LoadSWF(strings.NewReader(miniSWF), dreamsim.SWFMapping{
		KeepDependencies: true,
		TicksPerSecond:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := dreamsim.DefaultParams()
	p.Nodes = 10
	res, err := dreamsim.RunGraph(tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks != 4 {
		t.Fatalf("completed %d of 4", res.CompletedTasks)
	}
	// Job 3 (1200 ticks) must finish after job 1 (7200 ticks): the
	// makespan covers the dependency chain 1 -> 3.
	if res.TotalSimulationTime < 7200+1200 {
		t.Fatalf("makespan %d ignores SWF precedence", res.TotalSimulationTime)
	}
}

func TestLoadSWFRejectsGarbage(t *testing.T) {
	if _, err := dreamsim.LoadSWF(strings.NewReader("not swf"), dreamsim.SWFMapping{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := dreamsim.LoadSWF(strings.NewReader("; empty\n"), dreamsim.SWFMapping{}); err == nil {
		t.Fatal("empty log accepted")
	}
}
