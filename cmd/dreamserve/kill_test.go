// The kill-and-recover harness: dreamserve runs as a real subprocess,
// gets SIGKILLed at randomized points mid-sweep, restarts on the same
// state directory, and must finish with results byte-identical to a
// server that was never touched. This is the end-to-end proof of the
// checkpoint/resume contract — no graceful-shutdown cooperation, no
// in-process shortcuts, the kills land wherever the clock says.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var binPath string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "dreamserve-bin")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	binPath = filepath.Join(dir, "dreamserve")
	if out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building dreamserve: %v\n%s", err, out)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// proc is one server generation.
type proc struct {
	cmd  *exec.Cmd
	addr string
}

// startServer launches dreamserve on dir with an ephemeral port and
// waits for its "listening on" line to learn the bound address.
func startServer(t *testing.T, dir string) *proc {
	t.Helper()
	// The checkpoint cadence must let a unit reach its next checkpoint
	// inside one kill window, or the chaos loop makes no forward
	// progress: at ~25µs/event the killSpec units cost ~250ms per
	// 10000-event cycle, far beyond the 30–150ms kill intervals below.
	// 1000 events ≈ 25ms of work per cycle keeps every generation
	// productive while still exercising dozens of resume hops.
	cmd := exec.Command(binPath,
		"-addr", "127.0.0.1:0",
		"-dir", dir,
		"-workers", "2",
		"-checkpoint-events", "1000",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				fields := strings.Fields(line[i+len("listening on "):])
				if len(fields) > 0 {
					select {
					case addrCh <- fields[0]:
					default:
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return &proc{cmd: cmd, addr: addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server never reported its listen address")
		return nil
	}
}

// kill SIGKILLs the server — no shutdown handler runs — and reaps it.
func (p *proc) kill() {
	p.cmd.Process.Kill()
	p.cmd.Wait()
}

func (p *proc) url(path string) string { return "http://" + p.addr + path }

func (p *proc) get(t *testing.T, path string) []byte {
	t.Helper()
	resp, err := http.Get(p.url(path))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", path, resp.StatusCode, body)
	}
	return body
}

// status fetches the job's status field without a JSON dependency on
// the serve package's types.
func (p *proc) status(t *testing.T, id string) (status string, completed string) {
	t.Helper()
	body := string(p.get(t, "/api/v1/jobs/"+id))
	pick := func(key string) string {
		i := strings.Index(body, `"`+key+`":`)
		if i < 0 {
			t.Fatalf("status response missing %q: %s", key, body)
		}
		rest := strings.TrimLeft(body[i+len(key)+3:], " \t")
		end := strings.IndexAny(rest, ",}\n")
		return strings.Trim(rest[:end], `" `)
	}
	return pick("status"), pick("completed")
}

// kill/sweep workload: 8 units (two node counts × two task counts ×
// both reconfiguration scenarios), big enough that the first SIGKILL
// always lands mid-run.
const killSpec = `{
  "params": {"Nodes": 20, "Configs": 15, "TaskTimeRange": [100, 20000], "Seed": 42},
  "node_counts": [20, 30],
  "task_counts": [5000, 10000]
}`

func submitKillSpec(t *testing.T, p *proc) {
	t.Helper()
	resp, err := http.Post(p.url("/api/v1/jobs"), "application/json", strings.NewReader(killSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
}

func TestKillAndRecover(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill harness skipped in -short")
	}

	// Reference: one uninterrupted server generation.
	refDir := t.TempDir()
	ref := startServer(t, refDir)
	defer ref.kill()
	submitKillSpec(t, ref)
	deadline := time.Now().Add(3 * time.Minute)
	for {
		st, _ := ref.status(t, "j000001")
		if st == "done" {
			break
		}
		if st == "failed" || st == "cancelled" {
			t.Fatalf("reference job ended %q", st)
		}
		if time.Now().After(deadline) {
			t.Fatal("reference job never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}
	want := ref.get(t, "/api/v1/jobs/j000001/results")
	ref.kill()

	// Chaos: SIGKILL at randomized points, restart, repeat until done.
	seed := time.Now().UnixNano()
	rnd := rand.New(rand.NewSource(seed))
	t.Logf("kill-point seed: %d", seed)

	dir := t.TempDir()
	p := startServer(t, dir)
	submitKillSpec(t, p)

	kills, midRun := 0, false
	deadline = time.Now().Add(5 * time.Minute)
	for {
		time.Sleep(time.Duration(30+rnd.Intn(120)) * time.Millisecond)
		p.kill()
		kills++
		if time.Now().After(deadline) {
			t.Fatalf("job still unfinished after %d kills", kills)
		}
		p = startServer(t, dir)
		st, completed := p.status(t, "j000001")
		switch st {
		case "done":
			t.Logf("job recovered to done after %d SIGKILLs", kills)
			got := p.get(t, "/api/v1/jobs/j000001/results")
			p.kill()
			if !midRun {
				t.Fatal("every kill landed after completion; harness never exercised recovery")
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("recovered results (%d bytes) differ from uninterrupted reference (%d bytes)",
					len(got), len(want))
			}
			// The on-disk files must agree with the streamed bodies.
			gotFile, err := os.ReadFile(filepath.Join(dir, "jobs", "j000001", "results.ndjson"))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotFile, want) {
				t.Fatal("on-disk results differ from the streamed reference")
			}
			return
		case "failed", "cancelled":
			t.Fatalf("job ended %q after kill %d", st, kills)
		default:
			midRun = true
			t.Logf("kill %d: resumed %q with %s units persisted", kills, st, completed)
		}
	}
}
