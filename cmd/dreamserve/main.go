// Command dreamserve runs the checkpointing sweep service: an HTTP
// job queue that accepts sweep specifications, executes their units
// on a worker pool, streams per-cell results as NDJSON, and
// checkpoints in-flight simulations so a crashed or killed server
// resumes — and finishes byte-identically — on restart.
//
// Examples:
//
//	dreamserve -dir /var/lib/dreamserve -addr :8080
//	curl -s localhost:8080/api/v1/jobs -d '{"params":{"Tasks":5000},"node_counts":[100,200]}'
//	curl -s localhost:8080/api/v1/jobs/j000001/results?follow=1
//
// The state directory is the single source of truth: kill the
// process at any moment, start it again on the same directory, and
// every unfinished job resumes from its latest checkpoints.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dreamsim/internal/serve"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		dir        = flag.String("dir", "dreamserve-state", "state directory (jobs, results, checkpoints)")
		workers    = flag.Int("workers", 0, "concurrent sweep units (0 = one per CPU)")
		ckEvents   = flag.Uint64("checkpoint-events", serve.DefaultCheckpointEvents, "checkpoint cadence in processed simulation events")
		rateCap    = flag.Int("rate-capacity", 0, "submission token-bucket capacity (0 = unlimited)")
		rateRefill = flag.Float64("rate-refill", 1, "submission tokens refilled per second")
	)
	flag.Parse()
	if err := run(*addr, *dir, *workers, *ckEvents, *rateCap, *rateRefill); err != nil {
		fmt.Fprintln(os.Stderr, "dreamserve:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers int, ckEvents uint64, rateCap int, rateRefill float64) error {
	logger := log.New(os.Stderr, "dreamserve: ", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		Dir:              dir,
		Workers:          workers,
		CheckpointEvents: ckEvents,
		RateCapacity:     rateCap,
		RateRefillPerSec: rateRefill,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	// The kill harness (and humans scripting against the server) need
	// the bound address before submitting; print it once, ready.
	logger.Printf("listening on %s (state in %s)", ln.Addr(), dir)

	done := make(chan error, 1)
	go func() { done <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		srv.Close()
		return err
	case s := <-sig:
		logger.Printf("%v: checkpointing and shutting down", s)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	srv.Close() // pauses in-flight units at tick boundaries + checkpoints
	return nil
}
