// Command dreamgen generates and inspects DReAMSim workload traces —
// the "real workloads" input path of the paper's input subsystem.
//
// Examples:
//
//	dreamgen -tasks 5000 -out workload.trace
//	dreamgen -inspect workload.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"dreamsim"
	"dreamsim/internal/workload"
)

func main() {
	var (
		tasks    = flag.Int("tasks", 1000, "number of tasks to generate")
		nodes    = flag.Int("nodes", 200, "node count (affects nothing in the trace, echoed for reproducibility)")
		configs  = flag.Int("configs", 50, "size of the configurations list")
		interval = flag.Int64("interval", 50, "max inter-arrival gap")
		poisson  = flag.Bool("poisson", false, "Poisson arrivals")
		seed     = flag.Uint64("seed", 1, "random seed")
		out      = flag.String("out", "", "output trace path (default stdout)")
		scenario = flag.String("scenario", "", "generate the task stream of this workload scenario file")
		inspect  = flag.String("inspect", "", "inspect an existing trace instead of generating")
		swfIn    = flag.String("swf", "", "convert a Standard Workload Format log into a dreamsim trace")
		swfScale = flag.Int64("swf-ticks-per-sec", 1, "timeticks per SWF second")
		swfMax   = flag.Int("swf-max-jobs", 0, "cap SWF conversion at this many jobs (0 = all)")
	)
	flag.Parse()

	if *inspect != "" {
		inspectTrace(*inspect)
		return
	}
	if *swfIn != "" {
		convertSWF(*swfIn, *out, *swfScale, *swfMax, *configs)
		return
	}

	p := dreamsim.DefaultParams()
	p.Tasks = *tasks
	p.Nodes = *nodes
	p.Configs = *configs
	p.NextTaskMaxInterval = *interval
	p.PoissonArrivals = *poisson
	p.Seed = *seed
	if *scenario != "" {
		scn, err := dreamsim.LoadScenario(*scenario)
		fail(err)
		p.ScenarioText = scn.Text
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["tasks"] {
			p.Tasks = 0
		}
		if !explicit["interval"] {
			p.NextTaskMaxInterval = 0
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fail(err)
		defer f.Close()
		w = f
	}
	fail(dreamsim.GenerateTrace(w, p))
	if *out != "" {
		fmt.Printf("wrote tasks to %s\n", *out)
	}
}

// convertSWF rewrites an SWF log as a dreamsim trace.
func convertSWF(in, out string, ticksPerSec int64, maxJobs, configs int) {
	f, err := os.Open(in)
	fail(err)
	defer f.Close()
	tasks, _, err := workload.ParseSWF(f, workload.SWFMapping{
		TicksPerSecond: ticksPerSec,
		MaxJobs:        maxJobs,
		Configs:        configs,
	})
	fail(err)
	w := os.Stdout
	if out != "" {
		g, err := os.Create(out)
		fail(err)
		defer g.Close()
		w = g
	}
	fail(workload.WriteTrace(w, tasks))
	if out != "" {
		fmt.Printf("converted %d SWF jobs to %s\n", len(tasks), out)
	}
}

// inspectTrace prints summary statistics of a trace file.
func inspectTrace(path string) {
	f, err := os.Open(path)
	fail(err)
	defer f.Close()

	tr := workload.NewTraceReader(f)
	var (
		n                int
		firstT, lastT    int64
		sumReq, minReq   int64
		maxReq           int64
		sumArea          int64
		minArea, maxArea int64
		prefs            = map[int]int{}
	)
	minReq, minArea = 1<<62, 1<<62
	for {
		task, ok := tr.Next()
		if !ok {
			break
		}
		if n == 0 {
			firstT = task.CreateTime
		}
		lastT = task.CreateTime
		n++
		sumReq += task.RequiredTime
		if task.RequiredTime < minReq {
			minReq = task.RequiredTime
		}
		if task.RequiredTime > maxReq {
			maxReq = task.RequiredTime
		}
		sumArea += task.NeededArea
		if task.NeededArea < minArea {
			minArea = task.NeededArea
		}
		if task.NeededArea > maxArea {
			maxArea = task.NeededArea
		}
		prefs[task.PrefConfig]++
	}
	fail(tr.Err())
	if n == 0 {
		fmt.Println("empty trace")
		return
	}
	fmt.Printf("tasks:            %d\n", n)
	fmt.Printf("arrival span:     ticks %d..%d (mean gap %.2f)\n",
		firstT, lastT, float64(lastT-firstT)/float64(max(n-1, 1)))
	fmt.Printf("t_required:       min %d  mean %.1f  max %d\n",
		minReq, float64(sumReq)/float64(n), maxReq)
	fmt.Printf("needed area:      min %d  mean %.1f  max %d\n",
		minArea, float64(sumArea)/float64(n), maxArea)
	fmt.Printf("distinct Cpref:   %d\n", len(prefs))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dreamgen:", err)
		os.Exit(1)
	}
}
