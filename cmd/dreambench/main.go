// Command dreambench times the experiment engine: it runs the same
// sweep matrix sequentially and in parallel (and optionally with the
// indexed resource-search fast path) in one process, then writes a
// machine-readable BENCH_<date>.json with ns-per-sweep, cells/sec and
// the parallel speedup. The committed BENCH files give each change a
// performance paper trail.
//
// Examples:
//
//	dreambench
//	dreambench -scale 2000 -parallel 8 -out .
//	dreambench -fast-search
//	dreambench -compare BENCH_old.json BENCH_new.json
//
// The -compare form runs no simulations: it diffs two BENCH files
// sweep by sweep and exits non-zero when any shared sweep's cells/sec
// regressed beyond -tolerance (default 10%) — the CI perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"dreamsim"
)

// sweep is one timed configuration of the engine. Every sweep records
// the environment it ran under — GOMAXPROCS and the effective
// intra-run worker count — so -compare can refuse to diff numbers
// measured on mismatched environments. The large-scale streamed cell
// carries its node/task shape and reports tasks/sec instead of
// cells/sec; the placement-scan microbench cell reports scans/sec.
type sweep struct {
	Label       string  `json:"label"`
	Parallel    int     `json:"parallel"`
	FastSearch  bool    `json:"fast_search"`
	Runs        int     `json:"runs"`
	NsPerSweep  int64   `json:"ns_per_sweep"`
	CellsPerSec float64 `json:"cells_per_sec,omitempty"`
	Procs       int     `json:"gomaxprocs"`
	IntraPar    int     `json:"intra_parallel"`
	Stream      bool    `json:"stream,omitempty"`
	Nodes       int     `json:"nodes,omitempty"`
	Tasks       int     `json:"tasks,omitempty"`
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	ScansPerSec float64 `json:"scans_per_sec,omitempty"`
	// Checkpoint-overhead cell only: the uncheckpointed twin's
	// duration, the snapshot cadence/count/size, and the fractional
	// slowdown the periodic snapshots cost.
	NsBaseline      int64   `json:"ns_baseline,omitempty"`
	CheckpointEvery uint64  `json:"checkpoint_every,omitempty"`
	Snapshots       int     `json:"snapshots,omitempty"`
	SnapshotBytes   int     `json:"snapshot_bytes,omitempty"`
	OverheadPct     float64 `json:"checkpoint_overhead_pct,omitempty"`
}

// report is the BENCH_<date>.json schema.
type report struct {
	Date      string  `json:"date"`
	GoVersion string  `json:"go_version"`
	CPUs      int     `json:"cpus"`
	NodesGrid []int   `json:"nodes_grid"`
	TasksGrid []int   `json:"tasks_grid"`
	Cells     int     `json:"cells"`
	Seed      uint64  `json:"seed"`
	Sweeps    []sweep `json:"sweeps"`
	Speedup   float64 `json:"parallel_speedup"`
	// SpeedupLabel is "contended" when the speedup number measured
	// nothing real: the process had one scheduler thread (workers
	// time-slice instead of running concurrently) or the parallel
	// sweep came out slower than the sequential one. A contended
	// figure documents the environment honestly instead of posing as
	// a parallelism measurement.
	SpeedupLabel string `json:"parallel_speedup_label,omitempty"`
}

func main() {
	var (
		scale     = flag.Int("scale", 1500, "largest task count in the benchmark grid")
		seed      = flag.Uint64("seed", 1, "random seed")
		parallel  = flag.Int("parallel", dreamsim.DefaultParallelism(), "worker count for the parallel sweep")
		fast      = flag.Bool("fast-search", false, "also time the indexed resource-search path")
		runs      = flag.Int("runs", 3, "timed repetitions per configuration (best run is reported)")
		intraPar  = flag.Int("intra-parallel", 0, "intra-run workers for the base sweeps (0 = auto min(GOMAXPROCS,8), 1 = sequential)")
		noMatrix  = flag.Bool("no-matrix", false, "skip the GOMAXPROCS x workers and GOMAXPROCS x intra-parallel matrix sweeps")
		noScan    = flag.Bool("no-scan", false, "skip the placement-scan microbench cells")
		scanNodes = flag.Int("scan-nodes", 5000, "node count of the placement-scan microbench")
		noLarge   = flag.Bool("no-large", false, "skip the large-scale streamed cell")
		largeN    = flag.Int("large-nodes", 2000, "node count of the large-scale streamed cell")
		largeT    = flag.Int("large-tasks", 250000, "task count of the large-scale streamed cell")
		noCkpt    = flag.Bool("no-checkpoint", false, "skip the checkpoint-overhead cell")
		ckptT     = flag.Int("checkpoint-tasks", 20000, "task count of the checkpoint-overhead cell")
		ckptEvery = flag.Uint64("checkpoint-every", 10000, "snapshot cadence (events) of the checkpoint-overhead cell")
		outDir    = flag.String("out", "", "directory for BENCH_<date>.json (default: print to stdout only)")
		compare   = flag.Bool("compare", false, "compare two BENCH files: dreambench -compare old.json new.json (exit 1 on regression)")
		tolerance = flag.Float64("tolerance", 0.10, "fractional cells/sec slowdown -compare tolerates per sweep")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "dreambench: -compare needs exactly two BENCH files: old.json new.json")
			os.Exit(2)
		}
		var out strings.Builder
		code, err := runCompare(&out, flag.Arg(0), flag.Arg(1), *tolerance)
		fmt.Print(out.String())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dreambench:", err)
		}
		os.Exit(code)
	}

	nodesGrid := []int{50, 100, 150}
	tasksGrid := []int{*scale / 3, 2 * *scale / 3, *scale}
	cells := len(nodesGrid) * len(tasksGrid)

	base := dreamsim.DefaultParams()
	base.Seed = *seed
	base.IntraParallel = *intraPar

	time1 := func(p dreamsim.Params) time.Duration {
		start := time.Now()
		if _, err := dreamsim.RunMatrix(p, nodesGrid, tasksGrid, nil); err != nil {
			fmt.Fprintln(os.Stderr, "dreambench:", err)
			os.Exit(1)
		}
		return time.Since(start)
	}
	best := func(p dreamsim.Params) time.Duration {
		min := time1(p) // warm-up counts: first run is often representative on small grids
		for i := 1; i < *runs; i++ {
			if d := time1(p); d < min {
				min = d
			}
		}
		return min
	}
	mkSweepIP := func(label string, par, ip int, fastSearch bool) sweep {
		p := base
		p.Parallelism = par
		p.IntraParallel = ip
		p.FastSearch = fastSearch
		d := best(p)
		fmt.Fprintf(os.Stderr, "%-12s parallel=%-3d fast=%-5v  %12v  %7.1f cells/s\n",
			label, par, fastSearch, d, float64(cells)/d.Seconds())
		return sweep{
			Label:       label,
			Parallel:    par,
			FastSearch:  fastSearch,
			Runs:        *runs,
			NsPerSweep:  d.Nanoseconds(),
			CellsPerSec: float64(cells) / d.Seconds(),
			Procs:       runtime.GOMAXPROCS(0),
			IntraPar:    dreamsim.EffectiveIntraParallel(ip),
		}
	}
	mkSweep := func(label string, par int, fastSearch bool) sweep {
		return mkSweepIP(label, par, base.IntraParallel, fastSearch)
	}
	// mkMatrixSweep times one GOMAXPROCS x workers matrix point: the
	// scheduler is pinned to procs OS threads while par sweep workers
	// fan cells out, exposing how worker speedup scales with the
	// processors actually available.
	mkMatrixSweep := func(procs, par int) sweep {
		prev := runtime.GOMAXPROCS(procs)
		s := mkSweep(fmt.Sprintf("mp%d/par%d", procs, par), par, false)
		runtime.GOMAXPROCS(prev)
		return s
	}
	// mkIntraMatrixSweep times one GOMAXPROCS x IntraParallel matrix
	// point: whole runs stay sequential (Parallelism 1) while ip
	// workers shard placement scans and speculate same-tick batches
	// inside each run — the intra-run twin of mkMatrixSweep.
	mkIntraMatrixSweep := func(procs, ip int) sweep {
		prev := runtime.GOMAXPROCS(procs)
		s := mkSweepIP(fmt.Sprintf("mp%d/ip%d", procs, ip), 1, ip, false)
		runtime.GOMAXPROCS(prev)
		return s
	}
	// mkLargeSweep times one streamed large-scale run (single cell, so
	// its throughput is tasks/sec rather than cells/sec).
	mkLargeSweep := func(nodes, tasks int) sweep {
		p := base
		p.Nodes = nodes
		p.Tasks = tasks
		p.Stream = true
		p.FastSearch = true
		p.PartialReconfig = true
		time1Run := func() time.Duration {
			start := time.Now()
			if _, err := dreamsim.Run(p); err != nil {
				fmt.Fprintln(os.Stderr, "dreambench:", err)
				os.Exit(1)
			}
			return time.Since(start)
		}
		d := time1Run()
		for i := 1; i < *runs; i++ {
			if r := time1Run(); r < d {
				d = r
			}
		}
		label := "stream-large"
		fmt.Fprintf(os.Stderr, "%-12s nodes=%-5d tasks=%-8d  %12v  %9.0f tasks/s\n",
			label, nodes, tasks, d, float64(tasks)/d.Seconds())
		return sweep{
			Label:       label,
			Parallel:    1,
			FastSearch:  true,
			Runs:        *runs,
			NsPerSweep:  d.Nanoseconds(),
			Procs:       runtime.GOMAXPROCS(0),
			IntraPar:    dreamsim.EffectiveIntraParallel(p.IntraParallel),
			Stream:      true,
			Nodes:       nodes,
			Tasks:       tasks,
			TasksPerSec: float64(tasks) / d.Seconds(),
		}
	}

	// mkCheckpointSweep times one run driven through the checkpointed
	// API twice — once straight to completion, once snapshotting every
	// ckEvery events — and reports the snapshot cadence's cost: the
	// number every dreamserve operator trades off against how much
	// work a kill may lose.
	mkCheckpointSweep := func(tasks int, ckEvery uint64) sweep {
		p := base
		p.Nodes = 100
		p.Tasks = tasks
		timeCk := func(every uint64) (time.Duration, int, int) {
			run, err := dreamsim.StartRun(p)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dreambench:", err)
				os.Exit(1)
			}
			snaps, snapBytes := 0, 0
			start := time.Now()
			for {
				var done bool
				if every == 0 {
					done = run.RunUntil(nil)
				} else {
					target := run.Processed() + every
					done = run.RunUntil(func(_ int64, processed uint64) bool {
						return processed >= target
					})
				}
				if done {
					break
				}
				snap, err := run.Snapshot()
				if err != nil {
					fmt.Fprintln(os.Stderr, "dreambench:", err)
					os.Exit(1)
				}
				snaps++
				snapBytes = len(snap)
			}
			if _, err := run.Finish(); err != nil {
				fmt.Fprintln(os.Stderr, "dreambench:", err)
				os.Exit(1)
			}
			return time.Since(start), snaps, snapBytes
		}
		bestCk := func(every uint64) (time.Duration, int, int) {
			d, snaps, bytes := timeCk(every)
			for i := 1; i < *runs; i++ {
				if r, s, b := timeCk(every); r < d {
					d, snaps, bytes = r, s, b
				}
			}
			return d, snaps, bytes
		}
		baseD, _, _ := bestCk(0)
		ckD, snaps, snapBytes := bestCk(ckEvery)
		overhead := (ckD.Seconds() - baseD.Seconds()) / baseD.Seconds() * 100
		fmt.Fprintf(os.Stderr, "%-12s tasks=%-8d every=%-7d  %12v  (bare %v, %d snaps of %d B, +%.1f%%)\n",
			"checkpoint", tasks, ckEvery, ckD, baseD, snaps, snapBytes, overhead)
		return sweep{
			Label:           "checkpoint",
			Parallel:        1,
			Runs:            *runs,
			Procs:           runtime.GOMAXPROCS(0),
			IntraPar:        dreamsim.EffectiveIntraParallel(p.IntraParallel),
			NsPerSweep:      ckD.Nanoseconds(),
			Nodes:           p.Nodes,
			Tasks:           tasks,
			TasksPerSec:     float64(tasks) / ckD.Seconds(),
			NsBaseline:      baseD.Nanoseconds(),
			CheckpointEvery: ckEvery,
			Snapshots:       snaps,
			SnapshotBytes:   snapBytes,
			OverheadPct:     overhead,
		}
	}

	rep := report{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		NodesGrid: nodesGrid,
		TasksGrid: tasksGrid,
		Cells:     cells,
		Seed:      *seed,
	}
	seq := mkSweep("sequential", 1, false)
	par := mkSweep("parallel", *parallel, false)
	rep.Sweeps = append(rep.Sweeps, seq, par)
	if *fast {
		rep.Sweeps = append(rep.Sweeps, mkSweep("fast-search", 1, true))
	}
	rep.Speedup = float64(seq.NsPerSweep) / float64(par.NsPerSweep)
	if runtime.GOMAXPROCS(0) == 1 || rep.Speedup < 1 {
		// A 1-thread process cannot measure parallel speedup (its
		// workers time-slice), and a sub-1.0 ratio is contention, not
		// speedup. Label it so nobody reads the number as a result.
		rep.SpeedupLabel = "contended"
		fmt.Fprintf(os.Stderr,
			"warning: parallel_speedup %.3f is contended (GOMAXPROCS=%d) — not a parallelism measurement\n",
			rep.Speedup, runtime.GOMAXPROCS(0))
	}
	if !*noMatrix {
		for _, procs := range dedupInts(1, runtime.NumCPU()) {
			for _, workers := range dedupInts(1, 2, *parallel) {
				rep.Sweeps = append(rep.Sweeps, mkMatrixSweep(procs, workers))
			}
			for _, ip := range dedupInts(1, 4, dreamsim.EffectiveIntraParallel(0)) {
				rep.Sweeps = append(rep.Sweeps, mkIntraMatrixSweep(procs, ip))
			}
		}
	}
	if !*noScan {
		for _, ip := range dedupInts(1, 4, dreamsim.EffectiveIntraParallel(0)) {
			rep.Sweeps = append(rep.Sweeps, mkScanSweep(*scanNodes, ip, *runs))
		}
	}
	if !*noLarge {
		rep.Sweeps = append(rep.Sweeps, mkLargeSweep(*largeN, *largeT))
	}
	if !*noCkpt {
		rep.Sweeps = append(rep.Sweeps, mkCheckpointSweep(*ckptT, *ckptEvery))
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dreambench:", err)
		os.Exit(1)
	}
	out = append(out, '\n')
	fmt.Printf("%s", out)
	if *outDir != "" {
		path := filepath.Join(*outDir, "BENCH_"+rep.Date+".json")
		if err := os.WriteFile(path, out, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dreambench:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote", path)
	}
}

// dedupInts returns the positive values with duplicates removed,
// preserving first-occurrence order so matrix labels stay stable.
func dedupInts(vals ...int) []int {
	var out []int
	seen := make(map[int]bool, len(vals))
	for _, v := range vals {
		if v > 0 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
