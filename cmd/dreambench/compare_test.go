package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func benchFile(t *testing.T, dir, name string, sweeps []sweep) string {
	t.Helper()
	r := report{Date: name, Sweeps: sweeps}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareReportsFlagsRegressions(t *testing.T) {
	oldRep := report{Sweeps: []sweep{
		{Label: "sequential", CellsPerSec: 150},
		{Label: "parallel", CellsPerSec: 400},
		{Label: "fast-search", CellsPerSec: 150},
	}}
	newRep := report{Sweeps: []sweep{
		{Label: "sequential", CellsPerSec: 140},  // -6.7%: inside tolerance
		{Label: "parallel", CellsPerSec: 320},    // -20%: regression
		{Label: "fast-search", CellsPerSec: 180}, // improvement
		{Label: "tick-step", CellsPerSec: 12},    // new sweep: never a regression
	}}
	deltas := compareReports(oldRep, newRep, 0.10)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4", len(deltas))
	}
	byLabel := map[string]sweepDelta{}
	for _, d := range deltas {
		byLabel[d.Label] = d
	}
	if byLabel["sequential"].Regression {
		t.Error("6.7% slowdown flagged at 10% tolerance")
	}
	if !byLabel["parallel"].Regression {
		t.Error("20% slowdown not flagged at 10% tolerance")
	}
	if byLabel["fast-search"].Regression {
		t.Error("improvement flagged as regression")
	}
	if d := byLabel["tick-step"]; !d.Added || d.Regression {
		t.Errorf("new sweep misreported: %+v", d)
	}
}

func TestCompareReportsToleranceBoundary(t *testing.T) {
	oldRep := report{Sweeps: []sweep{{Label: "s", CellsPerSec: 100}}}
	at := report{Sweeps: []sweep{{Label: "s", CellsPerSec: 90}}}     // exactly -10%
	beyond := report{Sweeps: []sweep{{Label: "s", CellsPerSec: 89}}} // past it
	if compareReports(oldRep, at, 0.10)[0].Regression {
		t.Error("slowdown exactly at tolerance must pass")
	}
	if !compareReports(oldRep, beyond, 0.10)[0].Regression {
		t.Error("slowdown beyond tolerance must fail")
	}
}

func TestCompareReportsTasksPerSecUnit(t *testing.T) {
	oldRep := report{Sweeps: []sweep{
		{Label: "stream-large", Stream: true, Nodes: 2000, Tasks: 250000, TasksPerSec: 100000},
	}}
	newRep := report{Sweeps: []sweep{
		{Label: "stream-large", Stream: true, Nodes: 2000, Tasks: 250000, TasksPerSec: 80000}, // -20%
		{Label: "mp1/par2", CellsPerSec: 50},
	}}
	deltas := compareReports(oldRep, newRep, 0.10)
	byLabel := map[string]sweepDelta{}
	for _, d := range deltas {
		byLabel[d.Label] = d
	}
	large := byLabel["stream-large"]
	if large.Unit != "tasks/s" || !large.Regression {
		t.Errorf("large cell misreported: %+v", large)
	}
	if !strings.Contains(formatDelta(large), "tasks/s") {
		t.Errorf("formatted delta lacks tasks/s unit: %q", formatDelta(large))
	}
	if m := byLabel["mp1/par2"]; !m.Added || m.Unit != "cells/s" {
		t.Errorf("matrix sweep misreported: %+v", m)
	}
}

func TestCompareReportsEnvMismatchSkips(t *testing.T) {
	oldRep := report{Sweeps: []sweep{
		{Label: "sequential", CellsPerSec: 150, Procs: 8, IntraPar: 1},
		{Label: "scan5000/ip4", ScansPerSec: 9000, Procs: 8, IntraPar: 4},
		{Label: "legacy", CellsPerSec: 100}, // pre-stamping baseline: no env fields
	}}
	newRep := report{Sweeps: []sweep{
		{Label: "sequential", CellsPerSec: 40, Procs: 1, IntraPar: 1},     // 1-CPU box: not comparable
		{Label: "scan5000/ip4", ScansPerSec: 5000, Procs: 8, IntraPar: 8}, // different worker count
		{Label: "legacy", CellsPerSec: 50, Procs: 4, IntraPar: 4},         // zero side stays comparable
	}}
	deltas := compareReports(oldRep, newRep, 0.10)
	byLabel := map[string]sweepDelta{}
	for _, d := range deltas {
		byLabel[d.Label] = d
	}
	if d := byLabel["sequential"]; d.EnvSkip == "" || d.Regression {
		t.Errorf("gomaxprocs mismatch not skipped: %+v", d)
	}
	if d := byLabel["scan5000/ip4"]; d.EnvSkip == "" || d.Regression {
		t.Errorf("intra_parallel mismatch not skipped: %+v", d)
	}
	if d := byLabel["scan5000/ip4"]; d.Unit != "scans/s" {
		t.Errorf("scan cell unit wrong: %+v", d)
	}
	if d := byLabel["legacy"]; d.EnvSkip != "" || !d.Regression {
		t.Errorf("unstamped baseline must stay comparable: %+v", d)
	}
	if out := formatDelta(byLabel["sequential"]); !strings.Contains(out, "skipped") {
		t.Errorf("formatted skip row lacks marker: %q", out)
	}
}

func TestRunCompareContendedSpeedupRegression(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, r report) string {
		t.Helper()
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	oldPath := write("old", report{Sweeps: []sweep{{Label: "sequential", CellsPerSec: 100}}})
	// Sub-1.0 speedup on a multi-core box is a regression even when
	// every shared sweep's throughput held steady.
	badPath := write("bad", report{
		CPUs:    8,
		Speedup: 0.87,
		Sweeps:  []sweep{{Label: "sequential", CellsPerSec: 100}},
	})
	// The same ratio on one CPU is contention, not a regression.
	onePath := write("onecpu", report{
		CPUs:         1,
		Speedup:      0.87,
		SpeedupLabel: "contended",
		Sweeps:       []sweep{{Label: "sequential", CellsPerSec: 100}},
	})

	var out strings.Builder
	code, err := runCompare(&out, oldPath, badPath, 0.10)
	if err != nil || code != 1 {
		t.Fatalf("multi-core sub-1.0 speedup: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output missing speedup REGRESSION:\n%s", out.String())
	}
	out.Reset()
	if code, err = runCompare(&out, oldPath, onePath, 0.10); err != nil || code != 0 {
		t.Fatalf("single-CPU contended speedup flagged: code %d err %v\n%s", code, err, out.String())
	}
}

func TestCompareReportsMissingSweep(t *testing.T) {
	oldRep := report{Sweeps: []sweep{{Label: "gone", CellsPerSec: 50}}}
	deltas := compareReports(oldRep, report{}, 0.10)
	if len(deltas) != 1 || !deltas[0].Missing || deltas[0].Regression {
		t.Fatalf("missing sweep misreported: %+v", deltas)
	}
}

func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := benchFile(t, dir, "old", []sweep{{Label: "sequential", CellsPerSec: 150}})
	okPath := benchFile(t, dir, "ok", []sweep{{Label: "sequential", CellsPerSec: 149}})
	badPath := benchFile(t, dir, "bad", []sweep{{Label: "sequential", CellsPerSec: 100}})

	var out strings.Builder
	code, err := runCompare(&out, oldPath, okPath, 0.10)
	if err != nil || code != 0 {
		t.Fatalf("healthy compare: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("output missing verdict:\n%s", out.String())
	}

	out.Reset()
	code, err = runCompare(&out, oldPath, badPath, 0.10)
	if err != nil || code != 1 {
		t.Fatalf("regressed compare: code %d err %v\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("output missing REGRESSION:\n%s", out.String())
	}

	out.Reset()
	if code, err = runCompare(&out, filepath.Join(dir, "absent.json"), okPath, 0.10); err == nil || code == 0 {
		t.Fatal("unreadable old file must error with non-zero code")
	}
}
