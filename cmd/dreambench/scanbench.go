package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"dreamsim"
	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/rng"
)

// The placement-scan microbench: the intra-run worker pool's win is
// per-scan, so the sweep-level cells above dilute it with everything
// else a run does. This cell isolates the hot kernels — the full-walk
// argmin and first-fit scans the scheduler issues per decision — on a
// population large enough (default 5000 nodes) that the sharded scan
// actually dispatches to the pool, and reports raw scans per second at
// each worker count. Comparing the ip1 and ipN cells gives the real
// multi-core scan speedup; on a single-CPU host the numbers document
// contention instead (see parallel_speedup_label).

// scanPopulation mirrors the resinfo search benchmark's population:
// mixed-mode nodes over a 1000-4000 area range, soft-core configs over
// 200-2000, no capability classes — every node lands in one shard, so
// the scans exercise the intra-shard parallel split, the worst case
// for the sharding layer and the best case for measuring it.
func scanPopulation(seed uint64, nodeCount, configCount int) ([]*model.Node, []*model.Config) {
	r := rng.New(seed)
	nodes := make([]*model.Node, nodeCount)
	for i := range nodes {
		nodes[i] = model.NewNode(i, int64(r.IntRange(1000, 4000)), r.Bool(0.5))
	}
	configs := make([]*model.Config, configCount)
	for i := range configs {
		configs[i] = &model.Config{
			No:         i,
			ReqArea:    int64(r.IntRange(200, 2000)),
			Ptype:      model.PTypeSoftCore,
			ConfigTime: int64(r.IntRange(10, 20)),
		}
	}
	return nodes, configs
}

// timeScans runs rounds of the three O(n) placement queries over every
// config and returns the wall time and query count.
func timeScans(m *resinfo.Manager, configs []*model.Config, rounds int) (time.Duration, int) {
	ops := 0
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, cfg := range configs {
			m.BestBlankNode(cfg)
			m.BestPartiallyBlankNode(cfg)
			m.AnyBusyNodeCouldFit(cfg)
			ops += 3
		}
	}
	return time.Since(start), ops
}

// mkScanSweep builds a nodeCount-node manager at the given intra-run
// worker count and times the scan kernels; runs repetitions keep the
// best time, like every other cell.
func mkScanSweep(nodeCount, ip, runs int) sweep {
	const rounds = 40
	nodes, configs := scanPopulation(1234, nodeCount, 30)
	var opts []resinfo.Option
	if ip > 1 {
		opts = append(opts, resinfo.WithIntraParallel(ip))
	}
	m, err := resinfo.New(nodes, configs, &metrics.Counters{}, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dreambench:", err)
		os.Exit(1)
	}
	timeScans(m, configs, 2) // warm up the pool and the cache lines
	d, ops := timeScans(m, configs, rounds)
	for i := 1; i < runs; i++ {
		if r, _ := timeScans(m, configs, rounds); r < d {
			d = r
		}
	}
	label := fmt.Sprintf("scan%d/ip%d", nodeCount, ip)
	fmt.Fprintf(os.Stderr, "%-12s nodes=%-5d intra=%-3d  %12v  %9.0f scans/s\n",
		label, nodeCount, ip, d, float64(ops)/d.Seconds())
	return sweep{
		Label:       label,
		Parallel:    1,
		Runs:        runs,
		NsPerSweep:  d.Nanoseconds(),
		Procs:       runtime.GOMAXPROCS(0),
		IntraPar:    dreamsim.EffectiveIntraParallel(ip),
		Nodes:       nodeCount,
		ScansPerSec: float64(ops) / d.Seconds(),
	}
}
