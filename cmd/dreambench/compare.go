package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// sweepDelta is one sweep's old-vs-new comparison.
type sweepDelta struct {
	Label      string
	Old, New   float64 // cells/sec
	Change     float64 // fractional change, negative = slower
	Regression bool    // slowdown beyond the tolerance
	Missing    bool    // sweep present in old but absent from new
	Added      bool    // sweep present in new only
}

// compareReports matches the two reports' sweeps by label and flags
// any whose new cells/sec falls below old*(1-tolerance). Sweeps only
// one side has are reported but never count as regressions — a grown
// benchmark must not fail its first comparison against an older
// baseline.
func compareReports(oldRep, newRep report, tolerance float64) []sweepDelta {
	newByLabel := make(map[string]sweep, len(newRep.Sweeps))
	for _, s := range newRep.Sweeps {
		newByLabel[s.Label] = s
	}
	var out []sweepDelta
	for _, o := range oldRep.Sweeps {
		n, ok := newByLabel[o.Label]
		if !ok {
			out = append(out, sweepDelta{Label: o.Label, Old: o.CellsPerSec, Missing: true})
			continue
		}
		delete(newByLabel, o.Label)
		d := sweepDelta{Label: o.Label, Old: o.CellsPerSec, New: n.CellsPerSec}
		if o.CellsPerSec > 0 {
			d.Change = (n.CellsPerSec - o.CellsPerSec) / o.CellsPerSec
			d.Regression = n.CellsPerSec < o.CellsPerSec*(1-tolerance)
		}
		out = append(out, d)
	}
	// Preserve new-report order for sweeps the old baseline lacks.
	for _, s := range newRep.Sweeps {
		if _, left := newByLabel[s.Label]; left {
			out = append(out, sweepDelta{Label: s.Label, New: s.CellsPerSec, Added: true})
		}
	}
	return out
}

// formatDelta renders one comparison row.
func formatDelta(d sweepDelta) string {
	switch {
	case d.Missing:
		return fmt.Sprintf("%-12s %8.1f -> (missing)  cells/s", d.Label, d.Old)
	case d.Added:
		return fmt.Sprintf("%-12s (new)    -> %8.1f  cells/s", d.Label, d.New)
	default:
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION"
		}
		return fmt.Sprintf("%-12s %8.1f -> %8.1f  cells/s  (%+.1f%%)  %s",
			d.Label, d.Old, d.New, d.Change*100, verdict)
	}
}

// loadReport reads a BENCH_<date>.json file.
func loadReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// runCompare implements `dreambench -compare old.json new.json`: it
// prints a per-sweep delta table and returns 1 when any sweep shared
// by both reports slowed down beyond the tolerance.
func runCompare(w *strings.Builder, oldPath, newPath string, tolerance float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 1, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 1, err
	}
	deltas := compareReports(oldRep, newRep, tolerance)
	fmt.Fprintf(w, "%s (%s) vs %s (%s), tolerance %.0f%%\n",
		oldPath, oldRep.Date, newPath, newRep.Date, tolerance*100)
	code := 0
	for _, d := range deltas {
		fmt.Fprintln(w, formatDelta(d))
		if d.Regression {
			code = 1
		}
	}
	return code, nil
}
