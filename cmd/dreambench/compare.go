package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// sweepDelta is one sweep's old-vs-new comparison.
type sweepDelta struct {
	Label      string
	Old, New   float64 // throughput in Unit
	Unit       string  // "cells/s" for matrix sweeps, "tasks/s"/"scans/s" for single-run cells
	Change     float64 // fractional change, negative = slower
	Regression bool    // slowdown beyond the tolerance
	Missing    bool    // sweep present in old but absent from new
	Added      bool    // sweep present in new only
	EnvSkip    string  // non-empty: environments differ, numbers not comparable
}

// rate returns a sweep's throughput and its unit: matrix sweeps are
// compared in cells/sec, the large-scale streamed cell in tasks/sec,
// the placement-scan microbench in scans/sec.
func rate(s sweep) (float64, string) {
	if s.CellsPerSec > 0 {
		return s.CellsPerSec, "cells/s"
	}
	if s.ScansPerSec > 0 {
		return s.ScansPerSec, "scans/s"
	}
	return s.TasksPerSec, "tasks/s"
}

// envMismatch reports why two sweeps' throughputs are not comparable:
// a number measured at a different GOMAXPROCS or intra-run worker
// count is a different experiment, and diffing the two would flag
// phantom regressions (or mask real ones). Zero values mean the side
// predates environment stamping and stays comparable — an old
// baseline must not invalidate every new comparison.
func envMismatch(o, n sweep) string {
	if o.Procs != 0 && n.Procs != 0 && o.Procs != n.Procs {
		return fmt.Sprintf("gomaxprocs %d vs %d", o.Procs, n.Procs)
	}
	if o.IntraPar != 0 && n.IntraPar != 0 && o.IntraPar != n.IntraPar {
		return fmt.Sprintf("intra_parallel %d vs %d", o.IntraPar, n.IntraPar)
	}
	return ""
}

// compareReports matches the two reports' sweeps by label and flags
// any whose new cells/sec falls below old*(1-tolerance). Sweeps only
// one side has are reported but never count as regressions — a grown
// benchmark must not fail its first comparison against an older
// baseline.
func compareReports(oldRep, newRep report, tolerance float64) []sweepDelta {
	newByLabel := make(map[string]sweep, len(newRep.Sweeps))
	for _, s := range newRep.Sweeps {
		newByLabel[s.Label] = s
	}
	var out []sweepDelta
	for _, o := range oldRep.Sweeps {
		oldRate, unit := rate(o)
		n, ok := newByLabel[o.Label]
		if !ok {
			out = append(out, sweepDelta{Label: o.Label, Old: oldRate, Unit: unit, Missing: true})
			continue
		}
		delete(newByLabel, o.Label)
		newRate, _ := rate(n)
		d := sweepDelta{Label: o.Label, Old: oldRate, New: newRate, Unit: unit}
		if skip := envMismatch(o, n); skip != "" {
			d.EnvSkip = skip
		} else if oldRate > 0 {
			d.Change = (newRate - oldRate) / oldRate
			d.Regression = newRate < oldRate*(1-tolerance)
		}
		out = append(out, d)
	}
	// Preserve new-report order for sweeps the old baseline lacks.
	for _, s := range newRep.Sweeps {
		if _, left := newByLabel[s.Label]; left {
			newRate, unit := rate(s)
			out = append(out, sweepDelta{Label: s.Label, New: newRate, Unit: unit, Added: true})
		}
	}
	return out
}

// formatDelta renders one comparison row.
func formatDelta(d sweepDelta) string {
	switch {
	case d.EnvSkip != "":
		return fmt.Sprintf("%-12s %8.1f -> %8.1f  %s  (skipped: %s)",
			d.Label, d.Old, d.New, d.Unit, d.EnvSkip)
	case d.Missing:
		return fmt.Sprintf("%-12s %8.1f -> (missing)  %s", d.Label, d.Old, d.Unit)
	case d.Added:
		return fmt.Sprintf("%-12s (new)    -> %8.1f  %s", d.Label, d.New, d.Unit)
	default:
		verdict := "ok"
		if d.Regression {
			verdict = "REGRESSION"
		}
		return fmt.Sprintf("%-12s %8.1f -> %8.1f  %s  (%+.1f%%)  %s",
			d.Label, d.Old, d.New, d.Unit, d.Change*100, verdict)
	}
}

// loadReport reads a BENCH_<date>.json file.
func loadReport(path string) (report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return report{}, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// runCompare implements `dreambench -compare old.json new.json`: it
// prints a per-sweep delta table and returns 1 when any sweep shared
// by both reports slowed down beyond the tolerance.
func runCompare(w *strings.Builder, oldPath, newPath string, tolerance float64) (int, error) {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		return 1, err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return 1, err
	}
	deltas := compareReports(oldRep, newRep, tolerance)
	fmt.Fprintf(w, "%s (%s) vs %s (%s), tolerance %.0f%%\n",
		oldPath, oldRep.Date, newPath, newRep.Date, tolerance*100)
	code := 0
	for _, d := range deltas {
		fmt.Fprintln(w, formatDelta(d))
		if d.Regression {
			code = 1
		}
	}
	// A parallel sweep slower than the sequential one on a machine
	// with real parallelism is a scheduling regression no per-sweep
	// throughput delta catches (both sweeps may have slowed together).
	// Single-CPU measurements are exempt: there the ratio only
	// documents contention, and the report labels it as such.
	if newRep.CPUs > 1 && newRep.Speedup != 0 && newRep.Speedup < 1 {
		fmt.Fprintf(w, "%-12s parallel_speedup %.3f < 1 on %d CPUs  REGRESSION\n",
			"speedup", newRep.Speedup, newRep.CPUs)
		code = 1
	}
	return code, nil
}
