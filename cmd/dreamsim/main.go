// Command dreamsim runs one DReAMSim simulation (or a full-vs-partial
// comparison) and prints the paper's Table I metrics; -xml emits the
// output subsystem's XML simulation report.
//
// Examples:
//
//	dreamsim -nodes 200 -tasks 5000 -partial
//	dreamsim -nodes 100 -tasks 10000 -compare
//	dreamsim -tasks 2000 -partial -xml report.xml
//	dreamsim -tasks 2000 -trace workload.trace -partial
package main

import (
	"flag"
	"fmt"
	"os"

	"dreamsim"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 200, "number of reconfigurable nodes")
		configs     = flag.Int("configs", 50, "size of the configurations list")
		tasks       = flag.Int("tasks", 1000, "number of tasks to generate")
		interval    = flag.Int64("interval", 50, "max inter-arrival gap in timeticks")
		poisson     = flag.Bool("poisson", false, "Poisson arrivals instead of uniform gaps")
		partial     = flag.Bool("partial", false, "enable partial reconfiguration")
		compare     = flag.Bool("compare", false, "run both scenarios over identical inputs")
		seed        = flag.Uint64("seed", 1, "random seed")
		placement   = flag.String("placement", "best-fit", "allocation criterion: best-fit|first-fit|worst-fit|random-fit")
		loadBalance = flag.Bool("lb", false, "enable least-loaded tie-break (load balancing module)")
		noSus       = flag.Bool("no-suspension", false, "discard instead of suspending")
		maxRetries  = flag.Int64("max-retries", 0, "discard suspended tasks after this many re-examinations (0 = never)")
		netLow      = flag.Int64("net-low", 0, "minimum node network delay")
		netHigh     = flag.Int64("net-high", 0, "maximum node network delay")
		bsBW        = flag.Int64("bitstream-bw", 0, "bitstream transfer bandwidth, bytes/tick (0 = off)")
		dataBW      = flag.Int64("data-bw", 0, "task data transfer bandwidth, bytes/tick (0 = off)")
		tickStep    = flag.Bool("tick-step", false, "paper-literal tick-by-tick clock")
		xmlOut      = flag.String("xml", "", "write the XML simulation report to this file")
		tracePath   = flag.String("trace", "", "read the task stream from this trace file")
		scenario    = flag.String("scenario", "", "read a workload scenario (dreamsim-scenario v1) from this file")
		phases      = flag.Bool("phases", false, "print the per-phase placement census")
		timeline    = flag.Bool("timeline", false, "print utilization/queue sparklines over the run")
		replicate   = flag.Int("replicate", 0, "replicate the run over N seeds and print metric statistics")
		parallel    = flag.Int("parallel", dreamsim.DefaultParallelism(), "workers for -compare/-replicate fan-out (1 = sequential)")
		fastSearch  = flag.Bool("fast-search", false, "use the indexed resource-search fast path (identical results and counters)")
		intraPar    = flag.Int("intra-parallel", 0, "workers inside one run: sharded placement scans and batched same-tick dispatch (0 = auto min(GOMAXPROCS,8), 1 = sequential; identical results at any value)")
		stream      = flag.Bool("stream", false, "bounded-memory streaming engine: recycle finished tasks, window the monitor series (identical results)")
		window      = flag.Int("window", 0, "monitoring samples per rolling aggregation window (0 = default on streamed runs; implies sampling)")
		timelineOut = flag.String("timeline-out", "", "stream rolling-window timeline rows to this CSV file as the run progresses")

		faultCrashRate  = flag.Float64("fault-crash-rate", 0, "mean random node crashes per timetick (0 = off)")
		faultDowntime   = flag.Float64("fault-downtime", 0, "mean downtime of randomly crashed nodes, in timeticks")
		faultReconfRate = flag.Float64("fault-reconfig-rate", 0, "mean reconfiguration-failure armings per timetick (0 = off)")
		faultScript     = flag.String("fault-script", "", "scripted fault schedule: crash@TICK:NODE,recover@TICK:NODE,cfail@TICK,...")
		faultRetries    = flag.Int64("fault-retries", 0, "crash displacements a task survives before being lost (0 = default 3)")
		faultBackoff    = flag.Int64("fault-backoff", 0, "first retry backoff in timeticks, doubling per displacement (0 = default 16)")
		faultBackoffCap = flag.Int64("fault-backoff-cap", 0, "retry backoff ceiling in timeticks (0 = default 4096)")
	)
	flag.Parse()

	p := dreamsim.DefaultParams()
	p.Nodes = *nodes
	p.Configs = *configs
	p.Tasks = *tasks
	p.NextTaskMaxInterval = *interval
	p.PoissonArrivals = *poisson
	p.PartialReconfig = *partial
	p.Seed = *seed
	p.Placement = *placement
	p.LoadBalance = *loadBalance
	p.DisableSuspension = *noSus
	p.MaxSusRetries = *maxRetries
	p.NetworkDelayRange = [2]int64{*netLow, *netHigh}
	p.BitstreamBandwidth = *bsBW
	p.DataBandwidth = *dataBW
	p.TickStep = *tickStep
	p.Parallelism = *parallel
	p.FastSearch = *fastSearch
	p.IntraParallel = *intraPar
	p.FaultCrashRate = *faultCrashRate
	p.FaultMeanDowntime = *faultDowntime
	p.FaultReconfigRate = *faultReconfRate
	p.FaultScript = *faultScript
	p.FaultRetryBudget = *faultRetries
	p.FaultBackoffBase = *faultBackoff
	p.FaultBackoffCap = *faultBackoffCap
	p.Stream = *stream
	p.WindowSamples = *window
	p.TimelinePath = *timelineOut
	if *timeline || *window > 0 || *timelineOut != "" {
		p.SampleEvery = 1
	}
	if *scenario != "" {
		scn, err := dreamsim.LoadScenario(*scenario)
		fail(err)
		p.ScenarioText = scn.Text
		// A scenario's tasks/interval lines govern unless the matching
		// flag was given explicitly on the command line.
		explicit := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
		if !explicit["tasks"] {
			p.Tasks = 0
		}
		if !explicit["interval"] {
			p.NextTaskMaxInterval = 0
		}
	}

	if *replicate > 0 {
		stats, err := dreamsim.RunReplicated(p, dreamsim.Seeds(p.Seed, *replicate))
		fail(err)
		fmt.Printf("replicated over %d seeds (base %d)\n\n", *replicate, p.Seed)
		fmt.Printf("%-34s %14s %12s %14s %14s\n", "metric", "mean", "ci95", "min", "max")
		for _, s := range stats {
			fmt.Printf("%-34s %14.2f %12.2f %14.2f %14.2f\n", s.Name, s.Mean, s.CI95, s.Min, s.Max)
		}
		return
	}

	if *compare {
		full, part, err := dreamsim.Compare(p)
		fail(err)
		// full.TotalTasks, not p.Tasks: the count may come from a
		// scenario file rather than the flag.
		fmt.Printf("nodes=%d tasks=%d seed=%d\n\n", p.Nodes, full.TotalTasks, p.Seed)
		fmt.Print(dreamsim.CompareTable(full, part))
		if *phases {
			printPhases("full", full)
			printPhases("partial", part)
		}
		return
	}

	var res dreamsim.Result
	var err error
	if *tracePath != "" {
		f, ferr := os.Open(*tracePath)
		fail(ferr)
		defer f.Close()
		res, err = dreamsim.RunTrace(f, p)
	} else {
		res, err = dreamsim.Run(p)
	}
	fail(err)

	fmt.Printf("scenario=%s policy=%s nodes=%d tasks=%d seed=%d\n\n",
		res.Scenario, res.Policy, p.Nodes, res.TotalTasks, res.Seed)
	fmt.Print(res.TableI())
	if *phases {
		printPhases(res.Scenario, res)
	}
	if *timeline {
		fmt.Println()
		fmt.Print(res.TimelineText())
	}
	if res.WindowsTotal > 0 {
		fmt.Printf("\nmonitoring windows closed: %d (%d retained)\n", res.WindowsTotal, len(res.Windows))
	}
	if *timelineOut != "" {
		fmt.Printf("streaming timeline written to %s\n", *timelineOut)
	}

	if *xmlOut != "" {
		f, ferr := os.Create(*xmlOut)
		fail(ferr)
		defer f.Close()
		fail(res.WriteXML(f))
		fmt.Printf("\nXML report written to %s\n", *xmlOut)
	}
}

func printPhases(label string, r dreamsim.Result) {
	fmt.Printf("\nphase census (%s):\n", label)
	for _, k := range dreamsim.SortedPhaseNames(r) {
		fmt.Printf("  %-18s %d\n", k, r.Phases[k])
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dreamsim:", err)
		os.Exit(1)
	}
}
