// Command dreamsweep regenerates the figures of the paper's
// evaluation section (Figs. 6a–10): for each figure it sweeps the
// task count over the paper's grid, runs both reconfiguration
// scenarios over identical inputs, and emits the curves as CSV, a
// numeric table and an ASCII plot, together with a verdict on whether
// the paper's curve ordering is reproduced.
//
// Examples:
//
//	dreamsweep -fig 6a
//	dreamsweep -fig all -scale 10000 -out results/
//	dreamsweep -print-params
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"dreamsim"
)

func main() {
	var (
		figArg     = flag.String("fig", "all", "figure to regenerate: 6a,6b,7a,7b,8a,8b,9a,9b,10 or 'all'")
		scale      = flag.Int("scale", 100000, "cap the task-count grid at this many tasks")
		seed       = flag.Uint64("seed", 1, "random seed")
		outDir     = flag.String("out", "", "write <fig>.csv files into this directory")
		noPlot     = flag.Bool("no-plot", false, "suppress ASCII plots")
		jsonOut    = flag.String("json", "", "save the full sweep matrix as JSON ('all' mode only)")
		printParms = flag.Bool("print-params", false, "print the Table II simulation parameters and exit")
		parallel   = flag.Int("parallel", dreamsim.DefaultParallelism(), "concurrent sweep workers (1 = sequential; results identical either way)")
		fastSearch = flag.Bool("fast-search", false, "use the indexed resource-search fast path (identical results and counters)")
		intraPar   = flag.Int("intra-parallel", 0, "workers inside each cell's run: sharded placement scans and batched same-tick dispatch (0 = auto min(GOMAXPROCS,8), 1 = sequential; identical results at any value)")
		stream     = flag.Bool("stream", false, "bounded-memory streaming engine in every cell (identical results; heap stops scaling with task count)")
		window     = flag.Int("window", 0, "monitoring samples per rolling aggregation window when cells sample (0 = streamed default)")
		scenario   = flag.String("scenario", "", "apply this workload scenario file to every sweep cell")
		scenarios  = flag.String("scenarios", "", "comma-separated scenario files: sweep both reconfiguration methods over each (scenario-set mode)")

		faultCrashRate  = flag.Float64("fault-crash-rate", 0, "mean random node crashes per timetick in every cell (0 = off)")
		faultDowntime   = flag.Float64("fault-downtime", 0, "mean downtime of randomly crashed nodes, in timeticks")
		faultReconfRate = flag.Float64("fault-reconfig-rate", 0, "mean reconfiguration-failure armings per timetick (0 = off)")
		faultRetries    = flag.Int64("fault-retries", 0, "crash displacements a task survives before being lost (0 = default 3)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *printParms {
		printTableII()
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
	}
	// flushProfiles runs before every exit path (fail() and the
	// shape-mismatch exit bypass defers via os.Exit).
	flushProfiles := func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dreamsweep:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dreamsweep:", err)
			}
			f.Close()
		}
	}
	onExit = flushProfiles
	defer flushProfiles()

	base := dreamsim.DefaultParams()
	base.Seed = *seed
	base.Parallelism = *parallel
	base.FastSearch = *fastSearch
	base.IntraParallel = *intraPar
	base.Stream = *stream
	base.WindowSamples = *window
	base.FaultCrashRate = *faultCrashRate
	base.FaultMeanDowntime = *faultDowntime
	base.FaultReconfigRate = *faultReconfRate
	base.FaultRetryBudget = *faultRetries
	grid := dreamsim.ScaledTaskCounts(*scale)

	if *scenarios != "" {
		runScenarioSet(base, *scenarios)
		return
	}
	if *scenario != "" {
		scn, err := dreamsim.LoadScenario(*scenario)
		fail(err)
		base.ScenarioText = scn.Text
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fail(err)
		}
	}

	var figs []dreamsim.Figure
	if *figArg == "all" {
		// One matrix run covers every figure: 100- and 200-node cells
		// are shared across the figures drawn from them.
		m, err := dreamsim.RunMatrix(base, nil, grid, func(c dreamsim.Cell) {
			fmt.Fprintf(os.Stderr, "cell done: %3d nodes %6d tasks\n", c.Nodes, c.Tasks)
		})
		fail(err)
		figs, err = m.Figures()
		fail(err)
		if *jsonOut != "" {
			f, ferr := os.Create(*jsonOut)
			fail(ferr)
			fail(dreamsim.SaveMatrix(f, m))
			fail(f.Close())
			fmt.Printf("matrix saved to %s\n\n", *jsonOut)
		}
	} else {
		fig, err := dreamsim.RunFigure(dreamsim.FigureID(*figArg), grid, base)
		fail(err)
		figs = []dreamsim.Figure{fig}
	}

	allHold := true
	for _, fig := range figs {
		fmt.Println(fig.Table())
		if !*noPlot {
			fmt.Println(fig.Plot())
		}
		fmt.Println(fig.Summary())
		fmt.Println()
		if !fig.ShapeHolds() {
			allHold = false
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("fig%s.csv", fig.ID))
			fail(os.WriteFile(path, []byte(fig.CSV()), 0o644))
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	if !allHold {
		fmt.Fprintln(os.Stderr, "dreamsweep: some figure shapes were NOT reproduced")
		flushProfiles()
		os.Exit(2)
	}
}

// runScenarioSet sweeps both reconfiguration methods over each listed
// scenario file and prints a side-by-side comparison per scenario.
func runScenarioSet(base dreamsim.Params, list string) {
	var set []dreamsim.NamedScenario
	for _, path := range strings.Split(list, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		scn, err := dreamsim.LoadScenario(path)
		fail(err)
		set = append(set, scn)
	}
	base.Tasks = 0 // each scenario's own task count governs
	cells, err := dreamsim.RunScenarioSet(base, set, func(c dreamsim.ScenarioCell) {
		fmt.Fprintf(os.Stderr, "scenario done: %s\n", c.Name)
	})
	fail(err)
	for _, c := range cells {
		fmt.Printf("scenario %s (tasks=%d seed=%d)\n\n", c.Name, c.Full.TotalTasks, c.Full.Seed)
		fmt.Print(dreamsim.CompareTable(c.Full, c.Partial))
		if len(c.Partial.Classes) > 0 {
			fmt.Println("\nper-class (partial):")
			for _, cs := range c.Partial.Classes {
				fmt.Printf("  %-16s generated=%-8d completed=%-8d avg_wait=%-12.2f avg_run=%.2f\n",
					cs.Name, cs.Generated, cs.Completed, cs.AvgWaitingTime, cs.AvgRunningTime)
			}
		}
		fmt.Println()
	}
}

// printTableII prints the paper's Table II with our defaults.
func printTableII() {
	p := dreamsim.DefaultParams()
	rows := [][2]string{
		{"Total nodes", "100, 200 (per figure)"},
		{"Total configurations", fmt.Sprint(p.Configs)},
		{"Total tasks generated", "1000...100000"},
		{"Next task generation interval", fmt.Sprintf("[1...%d]", p.NextTaskMaxInterval)},
		{"Configurations ReqArea range", fmt.Sprintf("[%d...%d]", p.ConfigAreaRange[0], p.ConfigAreaRange[1])},
		{"Node TotalArea range", fmt.Sprintf("[%d...%d]", p.NodeAreaRange[0], p.NodeAreaRange[1])},
		{"Task t_required range", fmt.Sprintf("[%d...%d]", p.TaskTimeRange[0], p.TaskTimeRange[1])},
		{"t_config range", fmt.Sprintf("[%d...%d]", p.ConfigTimeRange[0], p.ConfigTimeRange[1])},
		{"CClosestMatch percentage", fmt.Sprintf("%.0f%%", 100*p.ClosestMatchPct)},
		{"Reconfiguration method", "with/without partial reconfiguration"},
	}
	fmt.Printf("%-34s %s\n%s\n", "Simulation parameter", "Value",
		"--------------------------------------------------------")
	for _, r := range rows {
		fmt.Printf("%-34s %s\n", r[0], r[1])
	}
}

// onExit flushes any in-flight profiles before an error exit; main
// replaces it once profiling is configured.
var onExit = func() {}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dreamsweep:", err)
		onExit()
		os.Exit(1)
	}
}
