// Command dreamlint runs DReAMSim's determinism & metering analyzer
// suite (internal/lint) over the repository:
//
//	go run ./cmd/dreamlint ./...
//
// It loads the matched packages (type-checked against the build
// cache's export data), applies every analyzer, and prints findings
// as file:line:col: analyzer: message (or one JSON object per line
// with -json, for tooling and the CI problem matcher). The exit
// status is 1 when any unjustified finding remains, so CI can gate
// merges on a clean run. Deliberate exceptions are justified in the
// source with //lint:NAME <reason> directives — see README "Static
// analysis & invariants"; -exceptions prints the full inventory of
// them for review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dreamsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "print findings as one JSON object per line")
	exceptions := flag.Bool("exceptions", false, "print the //lint: exception inventory and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dreamlint [-list] [-run name,name] [-json] [-exceptions] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var kept []*lint.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dreamlint: unknown analyzer %q\n", strings.TrimSpace(name))
				os.Exit(2)
			}
			kept = append(kept, a)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cwd, _ := os.Getwd()

	if *exceptions {
		exs := lint.Exceptions(pkgs)
		for _, ex := range exs {
			fmt.Printf("%s:%d: //lint:%s %s\n",
				relPath(cwd, ex.Pos.Filename), ex.Pos.Line, ex.Name, ex.Reason)
		}
		fmt.Fprintf(os.Stderr, "dreamlint: %d justified exception(s)\n", len(exs))
		return
	}

	diags := lint.Run(pkgs, analyzers)
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		file := relPath(cwd, d.Pos.Filename)
		if *asJSON {
			enc.Encode(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{file, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			continue
		}
		pos := d.Pos
		pos.Filename = file
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dreamlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// relPath shortens an absolute source path to a cwd-relative one when
// the file sits under the working tree.
func relPath(cwd, filename string) string {
	if cwd == "" {
		return filename
	}
	if rel, err := filepath.Rel(cwd, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return filename
}
