// Command dreamlint runs DReAMSim's determinism & metering analyzer
// suite (internal/lint) over the repository:
//
//	go run ./cmd/dreamlint ./...
//
// It loads the matched packages (type-checked against the build
// cache's export data), applies every analyzer, and prints findings
// as file:line:col: analyzer: message. The exit status is 1 when any
// unjustified finding remains, so CI can gate merges on a clean run.
// Deliberate exceptions are justified in the source with
// //lint:NAME <reason> directives — see README "Static analysis &
// invariants".
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dreamsim/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: dreamlint [-list] [-run name,name] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *run != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var kept []*lint.Analyzer
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "dreamlint: unknown analyzer %q\n", strings.TrimSpace(name))
				os.Exit(2)
			}
			kept = append(kept, a)
		}
		analyzers = kept
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "dreamlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
