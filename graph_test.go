package dreamsim_test

import (
	"testing"

	"dreamsim"
)

func TestRunGraphLinearChain(t *testing.T) {
	// Three tasks in a strict chain: the makespan must be at least
	// the sum of their required times (plus configuration overhead).
	tasks := []dreamsim.GraphTask{
		{ID: 0, RequiredTime: 1000, PrefConfig: 1, NeededArea: 500, SubmitTime: 0},
		{ID: 1, RequiredTime: 2000, PrefConfig: 2, NeededArea: 500, SubmitTime: 1, DependsOn: []int{0}},
		{ID: 2, RequiredTime: 3000, PrefConfig: 3, NeededArea: 500, SubmitTime: 2, DependsOn: []int{1}},
	}
	p := dreamsim.DefaultParams()
	p.Nodes = 10
	res, err := dreamsim.RunGraph(tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks != 3 || res.TotalDiscardedTasks != 0 {
		t.Fatalf("completions: %+v", res)
	}
	if res.TotalSimulationTime < 6000 {
		t.Fatalf("makespan %d ignores the dependency chain", res.TotalSimulationTime)
	}
}

func TestRunGraphParallelFasterThanChain(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 20
	var chain, fan []dreamsim.GraphTask
	for i := 0; i < 8; i++ {
		ct := dreamsim.GraphTask{ID: i, RequiredTime: 5000, PrefConfig: i, NeededArea: 500, SubmitTime: int64(i)}
		ft := ct
		if i > 0 {
			ct.DependsOn = []int{i - 1}
		}
		chain = append(chain, ct)
		fan = append(fan, ft)
	}
	resChain, err := dreamsim.RunGraph(chain, p)
	if err != nil {
		t.Fatal(err)
	}
	resFan, err := dreamsim.RunGraph(fan, p)
	if err != nil {
		t.Fatal(err)
	}
	if !(resFan.TotalSimulationTime < resChain.TotalSimulationTime) {
		t.Fatalf("independent tasks (%d) not faster than chained (%d)",
			resFan.TotalSimulationTime, resChain.TotalSimulationTime)
	}
	if resChain.TotalSimulationTime < 8*5000 {
		t.Fatalf("chain makespan %d below serial bound", resChain.TotalSimulationTime)
	}
}

func TestRunGraphDiscardCascade(t *testing.T) {
	// Task 0 needs more area than any configuration/node offers, so it
	// is discarded — and its dependants with it.
	tasks := []dreamsim.GraphTask{
		{ID: 0, RequiredTime: 100, PrefConfig: 999999, NeededArea: 50000, SubmitTime: 0},
		{ID: 1, RequiredTime: 100, PrefConfig: 1, NeededArea: 500, SubmitTime: 1, DependsOn: []int{0}},
		{ID: 2, RequiredTime: 100, PrefConfig: 2, NeededArea: 500, SubmitTime: 2, DependsOn: []int{1}},
		{ID: 3, RequiredTime: 100, PrefConfig: 3, NeededArea: 500, SubmitTime: 3},
	}
	p := dreamsim.DefaultParams()
	p.Nodes = 10
	res, err := dreamsim.RunGraph(tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalDiscardedTasks != 3 {
		t.Fatalf("discard cascade: %d discarded, want 3", res.TotalDiscardedTasks)
	}
	if res.CompletedTasks != 1 {
		t.Fatalf("completions: %d, want 1", res.CompletedTasks)
	}
}

func TestRunGraphValidation(t *testing.T) {
	p := dreamsim.DefaultParams()
	if _, err := dreamsim.RunGraph(nil, p); err == nil {
		t.Fatal("empty workload accepted")
	}
	dup := []dreamsim.GraphTask{
		{ID: 0, RequiredTime: 100, PrefConfig: 1, NeededArea: 500},
		{ID: 0, RequiredTime: 100, PrefConfig: 1, NeededArea: 500},
	}
	if _, err := dreamsim.RunGraph(dup, p); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
	fwd := []dreamsim.GraphTask{
		{ID: 0, RequiredTime: 100, PrefConfig: 1, NeededArea: 500, DependsOn: []int{1}},
		{ID: 1, RequiredTime: 100, PrefConfig: 1, NeededArea: 500},
	}
	if _, err := dreamsim.RunGraph(fwd, p); err == nil {
		t.Fatal("forward dependency accepted")
	}
	bad := []dreamsim.GraphTask{{ID: 0, RequiredTime: 0, PrefConfig: 1, NeededArea: 500}}
	if _, err := dreamsim.RunGraph(bad, p); err == nil {
		t.Fatal("invalid task accepted")
	}
}

func TestRandomLayeredGraph(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Seed = 3
	wl, err := dreamsim.RandomLayeredGraph(p, 6, 5, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(wl.Tasks) < 6 || wl.CriticalPath <= 0 || wl.TotalWork < wl.CriticalPath {
		t.Fatalf("workload bounds: %+v", wl)
	}
	res, err := dreamsim.RunGraph(wl.Tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedTasks+res.TotalDiscardedTasks != int64(len(wl.Tasks)) {
		t.Fatal("graph accounting broken")
	}
	// Makespan cannot beat the critical path (dependencies serialise).
	if res.CompletedTasks == int64(len(wl.Tasks)) && res.TotalSimulationTime < wl.CriticalPath {
		t.Fatalf("makespan %d beat the critical path %d", res.TotalSimulationTime, wl.CriticalPath)
	}
	// Layered graphs resolve exact-match configurations most of the
	// time (IDs are drawn against the same seed-derived config list).
	if res.Phases["closest-match"] > int64(len(wl.Tasks)/2) {
		t.Fatalf("too many closest matches: %d of %d", res.Phases["closest-match"], len(wl.Tasks))
	}
	if _, err := dreamsim.RandomLayeredGraph(p, 0, 5, 0.4, 1); err == nil {
		t.Fatal("zero layers accepted")
	}
}

func TestRunGraphBothScenarios(t *testing.T) {
	// A wide DAG on few nodes: contention makes the partial-mode
	// advantage (multiple tasks per node) show up as a shorter
	// makespan, the robust end-to-end metric for DAG workloads.
	p := dreamsim.DefaultParams()
	p.Nodes = 8
	wl, err := dreamsim.RandomLayeredGraph(p, 10, 24, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.PartialReconfig = false
	full, err := dreamsim.RunGraph(wl.Tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	p.PartialReconfig = true
	part, err := dreamsim.RunGraph(wl.Tasks, p)
	if err != nil {
		t.Fatal(err)
	}
	// RunGraph mutates nothing in wl; both runs see identical DAGs.
	if full.TotalTasks != part.TotalTasks {
		t.Fatal("scenarios saw different workloads")
	}
	if !(part.TotalSimulationTime < full.TotalSimulationTime) {
		t.Fatalf("graph makespan partial %d !< full %d",
			part.TotalSimulationTime, full.TotalSimulationTime)
	}
	// Neither beats the critical path when everything completes.
	if part.CompletedTasks == part.TotalTasks && part.TotalSimulationTime < wl.CriticalPath {
		t.Fatalf("partial makespan %d beat critical path %d", part.TotalSimulationTime, wl.CriticalPath)
	}
}
