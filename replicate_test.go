package dreamsim_test

import (
	"testing"

	"dreamsim"
)

func TestSeeds(t *testing.T) {
	s := dreamsim.Seeds(10, 5)
	if len(s) != 5 || s[0] != 10 {
		t.Fatalf("seeds: %v", s)
	}
	seen := map[uint64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seeds")
		}
		seen[v] = true
	}
}

func TestRunReplicated(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 40
	p.Tasks = 400
	stats, err := dreamsim.RunReplicated(p, dreamsim.Seeds(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 10 { // one row per Table I metric
		t.Fatalf("got %d metric rows", len(stats))
	}
	wait, ok := dreamsim.StatsByName(stats, "avg_waiting_time_per_task")
	if !ok {
		t.Fatal("waiting time metric missing")
	}
	if wait.Mean <= 0 || wait.Min > wait.Mean || wait.Max < wait.Mean || wait.StdDev < 0 || wait.CI95 < 0 {
		t.Fatalf("implausible stats: %+v", wait)
	}
	// Different seeds must actually vary the metric.
	if wait.Min == wait.Max {
		t.Fatal("replication produced identical runs")
	}
	if _, ok := dreamsim.StatsByName(stats, "nope"); ok {
		t.Fatal("absent metric found")
	}
	if _, err := dreamsim.RunReplicated(p, nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
}

// TestReplicatedOrderingRobust verifies the paper's headline ordering
// holds not just for one seed but across a seed ensemble, with the
// full-mode lower bound above the partial-mode upper bound.
func TestReplicatedOrderingRobust(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 800
	seeds := dreamsim.Seeds(7, 3)

	p.PartialReconfig = false
	fullStats, err := dreamsim.RunReplicated(p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	p.PartialReconfig = true
	partStats, err := dreamsim.RunReplicated(p, seeds)
	if err != nil {
		t.Fatal(err)
	}
	fullWaste, _ := dreamsim.StatsByName(fullStats, "avg_wasted_area_per_task")
	partWaste, _ := dreamsim.StatsByName(partStats, "avg_wasted_area_per_task")
	if !(partWaste.Max < fullWaste.Min) {
		t.Fatalf("wasted-area ordering not seed-robust: partial max %.1f vs full min %.1f",
			partWaste.Max, fullWaste.Min)
	}
}

// TestComparePairedSignificance backs the paper's headline orderings
// with paired statistics: over a seed ensemble, the wasted-area and
// waiting-time differences must be sign-consistent and their 95% CIs
// must exclude zero.
func TestComparePairedSignificance(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 50
	p.Tasks = 800
	ms, err := dreamsim.ComparePaired(p, dreamsim.Seeds(3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 10 {
		t.Fatalf("got %d paired metrics", len(ms))
	}
	for _, name := range []string{"avg_wasted_area_per_task", "avg_waiting_time_per_task"} {
		m, ok := dreamsim.PairedByName(ms, name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if m.MeanDiff <= 0 { // full - partial must be positive
			t.Errorf("%s: mean diff %.2f not positive", name, m.MeanDiff)
		}
		if !m.Consistent {
			t.Errorf("%s: ordering not consistent across seeds", name)
		}
		if !m.Significant05 {
			t.Errorf("%s: difference not significant (diff %.2f ± %.2f)", name, m.MeanDiff, m.CI95)
		}
	}
	// Reconfig count goes the other way (partial > full).
	rc, _ := dreamsim.PairedByName(ms, "avg_reconfig_count_per_node")
	if rc.MeanDiff >= 0 {
		t.Errorf("reconfig count diff %.2f not negative", rc.MeanDiff)
	}
	if _, ok := dreamsim.PairedByName(ms, "nope"); ok {
		t.Fatal("absent metric found")
	}
	if _, err := dreamsim.ComparePaired(p, dreamsim.Seeds(1, 1)); err == nil {
		t.Fatal("single seed accepted")
	}
}

func TestTimelineSampling(t *testing.T) {
	p := dreamsim.DefaultParams()
	p.Nodes = 30
	p.Tasks = 400
	p.SampleEvery = 5
	res, err := dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := int64(-1)
	sawBusy := false
	for _, pt := range res.Timeline {
		if pt.Time < last {
			t.Fatal("timeline not time-ordered")
		}
		last = pt.Time
		if pt.Utilization < 0 || pt.Utilization > 1 {
			t.Fatalf("utilization out of range: %v", pt.Utilization)
		}
		if pt.RunningTasks > 0 {
			sawBusy = true
		}
	}
	if !sawBusy {
		t.Fatal("timeline never saw a running task")
	}
	if res.TimelineText() == "" {
		t.Fatal("timeline text empty")
	}
	// Without sampling, no timeline.
	p.SampleEvery = 0
	res, err = dreamsim.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) != 0 || res.TimelineText() != "" {
		t.Fatal("timeline recorded without opt-in")
	}
}
