package dreamsim_test

import (
	"bytes"
	"reflect"
	"testing"

	"dreamsim"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

// Property-based determinism suite: ~100 generated scenarios spanning
// the DSL's surface (class counts, arrival kinds, cv values, per-class
// ranges, timelines, spikes, storms) must each
//
//  1. survive a Parse∘Format round-trip unchanged,
//  2. produce identical Compare results at Parallelism 1, 4 and 8,
//  3. conserve tasks: per-class rows partition the run totals, and
//     generated == completed + discarded + lost overall.
//
// The generator is seeded, so a failure names the scenario index and
// reproduces exactly. -short trims the population to ~30.

// genScenario synthesises one random-but-valid scenario.
func genScenario(r *rng.RNG, idx int) *workload.Scenario {
	scn := &workload.Scenario{
		Tasks:    200 + r.Intn(400),
		Interval: int64(20 + r.Intn(60)),
	}
	arrivals := []func() workload.ArrivalSpec{
		func() workload.ArrivalSpec { return workload.ArrivalSpec{} }, // inherit
		func() workload.ArrivalSpec {
			return workload.ArrivalSpec{Set: true, Kind: workload.ArrivalUniform}
		},
		func() workload.ArrivalSpec {
			return workload.ArrivalSpec{Set: true, Kind: workload.ArrivalPoisson}
		},
		func() workload.ArrivalSpec {
			return workload.ArrivalSpec{Set: true, Kind: workload.ArrivalGamma,
				CV: 0.25 + float64(r.Intn(16))/4}
		},
		func() workload.ArrivalSpec {
			return workload.ArrivalSpec{Set: true, Kind: workload.ArrivalWeibull,
				CV: 0.3 + float64(r.Intn(10))/5}
		},
	}
	classNames := []string{"alpha", "beta", "gamma-c", "delta"}
	nclasses := 1 + r.Intn(4)
	for c := 0; c < nclasses; c++ {
		cs := workload.ClassSpec{
			Name:         classNames[c],
			Fraction:     0.25 + float64(r.Intn(8))/4,
			Arrival:      arrivals[r.Intn(len(arrivals))](),
			Popularity:   -1,
			ClosestMatch: -1,
		}
		if r.Bool(0.6) {
			lo := int64(100 + r.Intn(2000))
			cs.ReqTimeLow, cs.ReqTimeHigh = lo, lo+int64(1000+r.Intn(50000))
			cs.TimeDist = workload.DistKind(r.Intn(3))
		}
		if r.Bool(0.3) {
			// Paper config areas span [200,2000]; keep ranges wide enough
			// to match at least one configuration.
			lo := int64(200 + 100*r.Intn(10))
			cs.AreaLow, cs.AreaHigh = lo, lo+800
		}
		if r.Bool(0.3) {
			cs.Popularity = float64(r.Intn(6)) / 4
		}
		if r.Bool(0.3) {
			cs.ClosestMatch = float64(r.Intn(5)) / 10
		}
		scn.Classes = append(scn.Classes, cs)
	}
	if r.Bool(0.5) {
		at := int64(0)
		points := 2 + r.Intn(4)
		for i := 0; i < points; i++ {
			scn.Timeline = append(scn.Timeline, workload.TimePoint{
				At:   at,
				Mult: 0.25 + float64(r.Intn(12))/4,
			})
			at += int64(1000 + r.Intn(9000))
		}
	}
	if r.Bool(0.4) {
		start := int64(500 + r.Intn(5000))
		scn.Events = append(scn.Events, workload.ScheduledEvent{
			Kind: workload.EventSpike, Start: start, End: start + int64(200+r.Intn(1000)),
			Mult: 0.5 + float64(r.Intn(10))/2,
		})
	}
	if r.Bool(0.25) {
		start := int64(1000 + r.Intn(5000))
		scn.Events = append(scn.Events, workload.ScheduledEvent{
			Kind: workload.EventStorm, Start: start, End: start + int64(100+r.Intn(500)),
			Count: 1 + r.Intn(8),
		})
	}
	if r.Bool(0.25) {
		start := int64(1000 + r.Intn(5000))
		lo := r.Intn(20)
		scn.Events = append(scn.Events, workload.ScheduledEvent{
			Kind: workload.EventMaintenance, Start: start, End: start + int64(500+r.Intn(2000)),
			NodeLo: lo, NodeHi: lo + r.Intn(6),
		})
	}
	return scn
}

func TestScenarioPropertyDeterminism(t *testing.T) {
	count := 100
	if testing.Short() {
		count = 30
	}
	r := rng.New(20260807)
	for idx := 0; idx < count; idx++ {
		scn := genScenario(r, idx)
		if err := scn.Validate(); err != nil {
			t.Fatalf("scenario %d: generator produced invalid spec: %v", idx, err)
		}
		text := workload.FormatScenario(scn)

		// Property 1: Parse∘Format is the identity on formatted specs.
		back, err := workload.ParseScenario(text)
		if err != nil {
			t.Fatalf("scenario %d: reparse: %v\n%s", idx, err, text)
		}
		if again := workload.FormatScenario(back); again != text {
			t.Fatalf("scenario %d: format not idempotent\nfirst:\n%s\nsecond:\n%s", idx, text, again)
		}

		p := dreamsim.DefaultParams()
		p.Nodes = 40
		p.Tasks = 0
		p.Seed = uint64(idx + 1)
		p.ScenarioText = text

		// Property 2: byte-identical Compare across parallelism levels.
		var ref [2]dreamsim.Result
		for pi, par := range []int{1, 4, 8} {
			q := p
			q.Parallelism = par
			full, part, err := dreamsim.Compare(q)
			if err != nil {
				t.Fatalf("scenario %d par=%d: %v\n%s", idx, par, err, text)
			}
			if pi == 0 {
				ref = [2]dreamsim.Result{full, part}
				continue
			}
			if !reflect.DeepEqual(ref[0], full) || !reflect.DeepEqual(ref[1], part) {
				t.Fatalf("scenario %d: results at parallelism %d diverge from sequential\n%s", idx, par, text)
			}
		}
		var fx, px bytes.Buffer
		if err := ref[0].WriteXML(&fx); err != nil {
			t.Fatal(err)
		}
		if err := ref[1].WriteXML(&px); err != nil {
			t.Fatal(err)
		}

		// Property 3: conservation, overall and per class.
		for half, res := range map[string]dreamsim.Result{"full": ref[0], "partial": ref[1]} {
			if res.TotalTasks != int64(scn.Tasks) {
				t.Errorf("scenario %d %s: generated %d tasks, want %d", idx, half, res.TotalTasks, scn.Tasks)
			}
			if got := res.CompletedTasks + res.TotalDiscardedTasks + res.TasksLost; got != res.TotalTasks {
				t.Errorf("scenario %d %s: completed+discarded+lost = %d, want %d tasks",
					idx, half, got, res.TotalTasks)
			}
			if len(res.Classes) > 0 {
				var gen, done, disc, lost int64
				for _, c := range res.Classes {
					gen += c.Generated
					done += c.Completed
					disc += c.Discarded
					lost += c.Lost
				}
				if gen != res.TotalTasks || done != res.CompletedTasks ||
					disc != res.TotalDiscardedTasks || lost != res.TasksLost {
					t.Errorf("scenario %d %s: class rows (%d/%d/%d/%d) do not partition totals (%d/%d/%d/%d)",
						idx, half, gen, done, disc, lost,
						res.TotalTasks, res.CompletedTasks, res.TotalDiscardedTasks, res.TasksLost)
				}
			}
		}
	}
}
