package dreamsim

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"dreamsim/internal/exec"
)

// NamedScenario pairs a scenario's display name with its text — the
// unit of a scenario sweep.
type NamedScenario struct {
	// Name labels the scenario in sweep output; LoadScenario uses the
	// file's base name without extension.
	Name string
	// Text is the full "dreamsim-scenario v1" specification.
	Text string
}

// LoadScenario reads one scenario file. The text is returned as-is
// (parsing and validation happen when the scenario is run), so a load
// is cheap and the error surface stays in one place.
func LoadScenario(path string) (NamedScenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return NamedScenario{}, err
	}
	name := filepath.Base(path)
	if ext := filepath.Ext(name); ext != "" {
		name = strings.TrimSuffix(name, ext)
	}
	return NamedScenario{Name: name, Text: string(data)}, nil
}

// ScenarioCell is one finished point of a scenario sweep: both
// reconfiguration scenarios run under one workload scenario.
type ScenarioCell struct {
	Name          string
	Full, Partial Result
}

// RunScenarioSet sweeps both reconfiguration methods over a set of
// workload scenarios — the scenario-file analogue of RunMatrix. Every
// (scenario, method) pair is an independent simulation unit, so
// base.Parallelism of them run concurrently; results are
// byte-identical to a sequential sweep. onCell, when non-nil,
// observes each finished cell; with Parallelism > 1 cells may finish
// out of set order (calls are serialised).
func RunScenarioSet(base Params, set []NamedScenario, onCell func(ScenarioCell)) ([]ScenarioCell, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("dreamsim: empty scenario set")
	}
	seen := make(map[string]bool, len(set))
	for _, s := range set {
		if seen[s.Name] {
			return nil, fmt.Errorf("dreamsim: duplicate scenario name %q in set", s.Name)
		}
		seen[s.Name] = true
	}
	cells := make([]ScenarioCell, len(set))
	for i := range cells {
		cells[i].Name = set[i].Name
	}

	// Two units per scenario, full-then-partial, mirroring RunMatrix:
	// one worker reproduces the sequential order exactly.
	pending := make([]atomic.Int32, len(cells))
	for i := range pending {
		pending[i].Store(2)
	}
	var cellMu sync.Mutex
	workers := workersFor(base.Parallelism, 2*len(cells))
	scratch := newScratchPool(workers)
	err := exec.DoWorkers(context.Background(), workers, 2*len(cells),
		func(_ context.Context, w, u int) error {
			cell := &cells[u/2]
			p := base
			p.ScenarioText = set[u/2].Text
			p.PartialReconfig = u%2 == 1
			res, err := runScratch(p, scratch.get(w))
			if err != nil {
				return fmt.Errorf("dreamsim: scenario %q: %w", cell.Name, err)
			}
			if p.PartialReconfig {
				//lint:sharedstate units 2k and 2k+1 share cell u/2 but write disjoint fields (Partial vs Full), and readers are ordered after both writes by the pending[u/2] atomic decrement
				cell.Partial = res
			} else {
				//lint:sharedstate units 2k and 2k+1 share cell u/2 but write disjoint fields (Partial vs Full), and readers are ordered after both writes by the pending[u/2] atomic decrement
				cell.Full = res
			}
			if pending[u/2].Add(-1) == 0 && onCell != nil {
				cellMu.Lock()
				onCell(*cell)
				cellMu.Unlock()
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return cells, nil
}
