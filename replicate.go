package dreamsim

import (
	"context"
	"fmt"
	"math"

	"dreamsim/internal/exec"
	"dreamsim/internal/metrics"
	"dreamsim/internal/report"
	"dreamsim/internal/stats"
)

// MetricStats summarises one Table I metric across replicated runs.
type MetricStats struct {
	Name   string
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	// CI95 is the half-width of the normal-approximation 95%
	// confidence interval of the mean.
	CI95 float64
}

// RunReplicated runs the same parameters under each seed and
// aggregates every Table I metric across the runs — the standard way
// to attach confidence to simulator outputs (the paper reports single
// runs; replication shows its orderings are not seed artifacts).
// Seeds are independent units: p.Parallelism of them run
// concurrently, and the aggregation always folds results in seed
// order, so the statistics are identical at any worker count.
func RunReplicated(p Params, seeds []uint64) ([]MetricStats, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("dreamsim: RunReplicated needs at least one seed")
	}
	workers := workersFor(p.Parallelism, len(seeds))
	scratch := newScratchPool(workers)
	results, err := exec.MapWorkers(context.Background(), workers, len(seeds),
		func(_ context.Context, w, i int) (Result, error) {
			q := p
			q.Seed = seeds[i]
			res, err := runScratch(q, scratch.get(w))
			if err != nil {
				return Result{}, fmt.Errorf("dreamsim: seed %d: %w", seeds[i], err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	accum := map[string]*metrics.Running{}
	var order []string
	for _, res := range results {
		for _, row := range report.MetricRows(res.rep) {
			r := accum[row.Name]
			if r == nil {
				r = &metrics.Running{}
				accum[row.Name] = r
				order = append(order, row.Name)
			}
			r.Add(row.Value)
		}
	}
	out := make([]MetricStats, 0, len(order))
	for _, name := range order {
		r := accum[name]
		out = append(out, MetricStats{
			Name:   name,
			Mean:   r.Mean(),
			StdDev: r.StdDev(),
			Min:    r.Min(),
			Max:    r.Max(),
			CI95:   1.96 * r.StdDev() / math.Sqrt(float64(r.N())),
		})
	}
	return out, nil
}

// Seeds returns n deterministic, well-separated seeds derived from
// base — convenience for RunReplicated.
func Seeds(base uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = base + uint64(i)*0x9e3779b97f4a7c15
	}
	return out
}

// PairedMetric is the paired full-vs-partial comparison of one
// Table I metric across a seed ensemble.
type PairedMetric struct {
	Name string
	// FullMean and PartialMean are the per-scenario means.
	FullMean, PartialMean float64
	// MeanDiff is mean(full - partial); CI95 its confidence interval
	// half-width; T the paired t statistic.
	MeanDiff, CI95, T float64
	// Consistent reports that every seed ordered the scenarios the
	// same way — the strongest small-sample evidence.
	Consistent bool
	// Significant05 reports that the 95% CI of the difference
	// excludes zero.
	Significant05 bool
}

// ComparePaired runs both reconfiguration scenarios under each seed
// (each pair over identical inputs) and reports, per Table I metric,
// the paired difference with confidence — statistical backing for
// the paper's single-run comparisons. Seed pairs fan out across
// p.Parallelism workers (each pair runs its two scenarios
// sequentially so total concurrency stays bounded); the statistics
// fold in seed order and are identical at any worker count.
func ComparePaired(p Params, seeds []uint64) ([]PairedMetric, error) {
	if len(seeds) < 2 {
		return nil, fmt.Errorf("dreamsim: ComparePaired needs at least two seeds")
	}
	type pair struct{ full, partial Result }
	workers := workersFor(p.Parallelism, len(seeds))
	scratch := newScratchPool(workers)
	pairs, err := exec.MapWorkers(context.Background(), workers, len(seeds),
		func(_ context.Context, w, i int) (pair, error) {
			// Each pair runs its two scenarios sequentially on the
			// worker's context, so total concurrency stays bounded.
			q := p
			q.Seed = seeds[i]
			q.Parallelism = 1 // the seed fan-out is the unit of parallelism
			q.PartialReconfig = false
			full, err := runScratch(q, scratch.get(w))
			if err != nil {
				return pair{}, fmt.Errorf("dreamsim: seed %d: %w", seeds[i], err)
			}
			q.PartialReconfig = true
			partial, err := runScratch(q, scratch.get(w))
			if err != nil {
				return pair{}, fmt.Errorf("dreamsim: seed %d: %w", seeds[i], err)
			}
			return pair{full: full, partial: partial}, nil
		})
	if err != nil {
		return nil, err
	}
	fullVals := map[string][]float64{}
	partVals := map[string][]float64{}
	var order []string
	for _, pr := range pairs {
		for _, row := range report.MetricRows(pr.full.rep) {
			if _, seen := fullVals[row.Name]; !seen {
				order = append(order, row.Name)
			}
			fullVals[row.Name] = append(fullVals[row.Name], row.Value)
		}
		for _, row := range report.MetricRows(pr.partial.rep) {
			partVals[row.Name] = append(partVals[row.Name], row.Value)
		}
	}
	out := make([]PairedMetric, 0, len(order))
	for _, name := range order {
		pr, err := stats.Paired(fullVals[name], partVals[name])
		if err != nil {
			return nil, err
		}
		pm := PairedMetric{
			Name:          name,
			FullMean:      stats.Summarize(fullVals[name]).Mean,
			PartialMean:   stats.Summarize(partVals[name]).Mean,
			MeanDiff:      pr.MeanDiff,
			CI95:          pr.CI95,
			T:             pr.T,
			Consistent:    pr.AllPositive || pr.AllNegative,
			Significant05: math.Abs(pr.MeanDiff) > pr.CI95,
		}
		out = append(out, pm)
	}
	return out, nil
}

// PairedByName finds a metric in a ComparePaired result.
func PairedByName(ms []PairedMetric, name string) (PairedMetric, bool) {
	for _, m := range ms {
		if m.Name == name {
			return m, true
		}
	}
	return PairedMetric{}, false
}

// StatsByName finds a metric in a RunReplicated result.
func StatsByName(stats []MetricStats, name string) (MetricStats, bool) {
	for _, s := range stats {
		if s.Name == name {
			return s, true
		}
	}
	return MetricStats{}, false
}
