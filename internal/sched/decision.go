// Package sched implements DReAMSim's task scheduling manager (paper
// §III core subsystem) and the case-study scheduling algorithm with
// partial-reconfiguration support (paper §V, Fig. 5, Alg. 1).
//
// A Policy inspects the resource state through the resource
// information manager and returns a Decision; the simulation core
// applies decisions and drives task lifecycles. Keeping policies pure
// (no state mutation besides metered searches) makes them unit-
// testable and lets one simulator host many policies.
package sched

import (
	"fmt"

	"dreamsim/internal/model"
)

// Action is what the scheduler wants done with a task.
type Action int

const (
	// ActAllocate runs the task on an already-configured idle region —
	// the Allocation phase (no reconfiguration cost).
	ActAllocate Action = iota
	// ActConfigure loads the configuration onto a blank node — the
	// Configuration phase.
	ActConfigure
	// ActPartialConfigure loads the configuration into free fabric on
	// a node that already hosts other configurations — the Partial
	// configuration phase (partial mode only).
	ActPartialConfigure
	// ActReconfigure evicts idle regions from a node to make room,
	// then loads the configuration — the Partial re-configuration
	// phase (Alg. 1); in full mode this degenerates to blanking and
	// reconfiguring an idle node.
	ActReconfigure
	// ActSuspend parks the task in the suspension queue until a busy
	// node releases resources.
	ActSuspend
	// ActDiscard drops the task: no node could ever host it.
	ActDiscard
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case ActAllocate:
		return "allocate"
	case ActConfigure:
		return "configure"
	case ActPartialConfigure:
		return "partial-configure"
	case ActReconfigure:
		return "reconfigure"
	case ActSuspend:
		return "suspend"
	case ActDiscard:
		return "discard"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Decision is a scheduling verdict for one task.
type Decision struct {
	// Action selects the verdict.
	Action Action
	// Config is the configuration chosen for the task (Cpref or
	// C_ClosestMatch). Nil only when Action is ActDiscard because no
	// configuration fits the task at all.
	Config *model.Config
	// ClosestMatch records that Config is the fallback, not Cpref.
	ClosestMatch bool
	// Entry is the idle region to run on (ActAllocate only).
	Entry *model.Entry
	// Node is the target node (configure/reconfigure actions).
	Node *model.Node
	// Evict lists the idle regions to remove first (ActReconfigure).
	Evict []*model.Entry
}

// String implements fmt.Stringer.
func (d Decision) String() string {
	s := d.Action.String()
	if d.Config != nil {
		s += fmt.Sprintf(" C%d", d.Config.No)
		if d.ClosestMatch {
			s += "(closest)"
		}
	}
	if d.Node != nil {
		s += fmt.Sprintf(" on N%d", d.Node.No)
	} else if d.Entry != nil {
		s += fmt.Sprintf(" on N%d", d.Entry.Node.No)
	}
	return s
}

// TargetNode returns the node the decision places the task on, or
// nil for suspend/discard.
func (d Decision) TargetNode() *model.Node {
	switch d.Action {
	case ActAllocate:
		if d.Entry != nil {
			return d.Entry.Node
		}
	case ActConfigure, ActPartialConfigure, ActReconfigure:
		return d.Node
	}
	return nil
}

// Places reports whether the decision actually lands the task on a node.
func (d Decision) Places() bool {
	switch d.Action {
	case ActAllocate, ActConfigure, ActPartialConfigure, ActReconfigure:
		return true
	}
	return false
}
