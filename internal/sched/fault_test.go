package sched

import (
	"errors"
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// TestPlacementsAgainstMidDecisionCrash covers all four Allocation
// placement criteria against a node that crashes between Decide and
// Apply: applying the stale decision must fail with the model's
// down-node guard, and a fresh decision must exclude the crashed node.
func TestPlacementsAgainstMidDecisionCrash(t *testing.T) {
	cases := []struct {
		name string
		pl   Placement
	}{
		{"best-fit", BestFit},
		{"first-fit", FirstFit},
		{"worst-fit", WorstFit},
		{"random-fit", RandomFit},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := rig(t, []int64{4000, 2000, 3000}, []int64{500}, true)
			cfg := m.Configs()[0]
			for _, n := range m.Nodes() {
				if _, err := m.Configure(n, cfg); err != nil {
					t.Fatal(err)
				}
			}
			opts := Options{Placement: tc.pl}
			if tc.pl == RandomFit {
				opts.RNG = rng.New(5)
			}
			p := New(opts)
			tk := task(0, 0, 500)

			d := p.Decide(m, tk)
			if d.Action != ActAllocate {
				t.Fatalf("decision = %s, want allocate (all nodes hold an idle C0 region)", d)
			}
			victim := d.TargetNode()

			// The node crashes between the decision and its application.
			if _, err := m.CrashNode(victim); err != nil {
				t.Fatal(err)
			}
			if _, _, err := Apply(m, tk, d); !errors.Is(err, model.ErrNodeDown) {
				t.Fatalf("Apply on crashed node: err = %v, want ErrNodeDown", err)
			}

			// A fresh decision must route around the crashed node.
			d2 := p.Decide(m, tk)
			if !d2.Places() {
				t.Fatalf("no alternative placement found: %s", d2)
			}
			alt := d2.TargetNode()
			if alt == victim {
				t.Fatalf("fresh decision still targets crashed node %d", alt.No)
			}
			if _, _, err := Apply(m, tk, d2); err != nil {
				t.Fatalf("applying rerouted decision: %v", err)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDecideWithOnlyDownNodesSuspends pins the search-exclusion
// contract end to end: with the entire population down, no phase of
// the scheduling algorithm may place, so the verdict degrades to
// suspension (or discard when suspension is off), never a crash.
func TestDecideWithOnlyDownNodesSuspends(t *testing.T) {
	m := rig(t, []int64{4000, 3000}, []int64{500}, true)
	for _, n := range m.Nodes() {
		if _, err := m.CrashNode(n); err != nil {
			t.Fatal(err)
		}
	}
	p := New(Options{})
	d := p.Decide(m, task(0, 0, 500))
	if d.Places() {
		t.Fatalf("placed on a fully-down population: %s", d)
	}
	if d.Action != ActSuspend {
		t.Fatalf("verdict = %s, want suspend", d.Action)
	}
}
