package sched

import (
	"strings"
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/rng"
)

// rig builds a manager over partial-mode (or full-mode) nodes of the
// given total areas and configs of the given required areas.
func rig(t *testing.T, nodeAreas, cfgAreas []int64, partial bool) *resinfo.Manager {
	t.Helper()
	var nodes []*model.Node
	for i, a := range nodeAreas {
		nodes = append(nodes, model.NewNode(i, a, partial))
	}
	var configs []*model.Config
	for i, a := range cfgAreas {
		configs = append(configs, &model.Config{No: i, ReqArea: a, ConfigTime: 12})
	}
	m, err := resinfo.New(nodes, configs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func task(no, pref int, area int64) *model.Task {
	return model.NewTask(no, area, pref, 1000, 0)
}

func mustApply(t *testing.T, m *resinfo.Manager, tk *model.Task, d Decision) *model.Entry {
	t.Helper()
	e, _, err := Apply(m, tk, d)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestPhaseAllocationBestFit(t *testing.T) {
	m := rig(t, []int64{4000, 2000, 3000}, []int64{500}, true)
	p := New(Options{})
	cfg := m.Configs()[0]
	for _, n := range m.Nodes() {
		if _, err := m.Configure(n, cfg); err != nil {
			t.Fatal(err)
		}
	}
	d := p.Decide(m, task(0, 0, 500))
	if d.Action != ActAllocate {
		t.Fatalf("action = %s, want allocate", d.Action)
	}
	if d.Entry.Node.No != 1 { // min AvailableArea (1500)
		t.Fatalf("best-fit picked node %d", d.Entry.Node.No)
	}
	if d.ClosestMatch {
		t.Fatal("exact match flagged as closest")
	}
}

func TestPhaseConfigurationBlankNode(t *testing.T) {
	m := rig(t, []int64{4000, 1200, 2500}, []int64{1000}, true)
	p := New(Options{})
	d := p.Decide(m, task(0, 0, 1000))
	if d.Action != ActConfigure {
		t.Fatalf("action = %s, want configure", d.Action)
	}
	if d.Node.No != 1 { // min sufficient TotalArea
		t.Fatalf("configure picked node %d", d.Node.No)
	}
}

func TestPhasePartialConfiguration(t *testing.T) {
	m := rig(t, []int64{4000, 3000}, []int64{1000, 600}, true)
	p := New(Options{})
	// Occupy both nodes with C0 + running tasks so no idle entry and
	// no blank node remain.
	for i, n := range m.Nodes() {
		e, err := m.Configure(n, m.Configs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.StartTask(e, task(100+i, 0, 1000)); err != nil {
			t.Fatal(err)
		}
	}
	// C1 (600) fits in free fabric: node0 has 3000 free, node1 2000.
	d := p.Decide(m, task(0, 1, 600))
	if d.Action != ActPartialConfigure {
		t.Fatalf("action = %s, want partial-configure", d.Action)
	}
	if d.Node.No != 1 { // min sufficient AvailableArea (2000)
		t.Fatalf("partial-configure picked node %d", d.Node.No)
	}
}

func TestPhaseReconfigure(t *testing.T) {
	m := rig(t, []int64{1500}, []int64{1400, 1200}, true)
	p := New(Options{})
	// Node holds idle C0 (1400), avail 100. C1 (1200) does not fit in
	// free fabric, no blank node: Alg. 1 must evict the idle C0.
	if _, err := m.Configure(m.Nodes()[0], m.Configs()[0]); err != nil {
		t.Fatal(err)
	}
	d := p.Decide(m, task(0, 1, 1200))
	if d.Action != ActReconfigure {
		t.Fatalf("action = %s, want reconfigure", d.Action)
	}
	if len(d.Evict) != 1 || d.Evict[0].Config.No != 0 {
		t.Fatalf("evictions = %v", d.Evict)
	}
	tk := task(1, 1, 1200)
	e := mustApply(t, m, tk, d)
	if e.Config.No != 1 || m.Nodes()[0].AvailableArea != 300 {
		t.Fatalf("after reconfigure: %v avail=%d", e, m.Nodes()[0].AvailableArea)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendVsDiscard(t *testing.T) {
	m := rig(t, []int64{2000}, []int64{1800, 1500}, true)
	p := New(Options{})
	e, _ := m.Configure(m.Nodes()[0], m.Configs()[0])
	if err := m.StartTask(e, task(100, 0, 1800)); err != nil {
		t.Fatal(err)
	}
	// C1 (1500) can't be placed now, but the busy node could fit it
	// later (TotalArea 2000 >= 1500): suspend.
	d := p.Decide(m, task(0, 1, 1500))
	if d.Action != ActSuspend {
		t.Fatalf("action = %s, want suspend", d.Action)
	}
	// A task whose config fits no node at all: discard (config list
	// has nothing >= 2500 so resolve fails).
	d = p.Decide(m, task(1, 99, 2500))
	if d.Action != ActDiscard {
		t.Fatalf("action = %s, want discard", d.Action)
	}
}

func TestDiscardWhenNoBusyCandidateAndNoSuspension(t *testing.T) {
	m := rig(t, []int64{2000}, []int64{1800, 1900}, true)
	e, _ := m.Configure(m.Nodes()[0], m.Configs()[0])
	_ = m.StartTask(e, task(100, 0, 1800))
	// Suspension disabled: would-be-suspend becomes discard.
	p := New(Options{DisableSuspension: true})
	d := p.Decide(m, task(0, 1, 1900))
	if d.Action != ActDiscard {
		t.Fatalf("action = %s, want discard with suspension off", d.Action)
	}
}

func TestClosestMatchFallback(t *testing.T) {
	m := rig(t, []int64{4000}, []int64{300, 900, 600}, true)
	p := New(Options{})
	// Pref config 77 does not exist; needed area 500 → closest is C2 (600).
	d := p.Decide(m, task(0, 77, 500))
	if !d.ClosestMatch || d.Config.No != 2 {
		t.Fatalf("closest match = %+v", d)
	}
	if d.Action != ActConfigure {
		t.Fatalf("action = %s", d.Action)
	}
}

func TestFullModeFlow(t *testing.T) {
	m := rig(t, []int64{3000, 2500}, []int64{1000, 800}, false)
	p := New(Options{})

	// First task: configure a blank node (best fit: node1, 2500).
	t0 := task(0, 0, 1000)
	d := p.Decide(m, t0)
	if d.Action != ActConfigure || d.Node.No != 1 {
		t.Fatalf("first: %v", d)
	}
	mustApply(t, m, t0, d)

	// Second task same config: node1 is busy; configure node0.
	t1 := task(1, 0, 1000)
	d = p.Decide(m, t1)
	if d.Action != ActConfigure || d.Node.No != 0 {
		t.Fatalf("second: %v", d)
	}
	mustApply(t, m, t1, d)

	// Third task, different config: both nodes busy → suspend.
	t2 := task(2, 1, 800)
	d = p.Decide(m, t2)
	if d.Action != ActSuspend {
		t.Fatalf("third: %v", d)
	}

	// Finish task on node1; in full mode the idle node keeps C0.
	if _, err := m.FinishTask(m.Nodes()[1], t0); err != nil {
		t.Fatal(err)
	}
	// New C1 task: no blank node, no partial config in full mode —
	// reconfigure the idle node (evict C0).
	t3 := task(3, 1, 800)
	d = p.Decide(m, t3)
	if d.Action != ActReconfigure || d.Node.No != 1 || len(d.Evict) != 1 {
		t.Fatalf("fourth: %v", d)
	}
	mustApply(t, m, t3, d)
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Full-mode node after reconfigure: exactly one config, one task.
	if len(m.Nodes()[1].Entries) != 1 || m.Nodes()[1].RunningTasks() != 1 {
		t.Fatalf("full-mode node corrupted: %v", m.Nodes()[1])
	}
}

func TestFullModeIdleEntryOnBusyNodeUnusable(t *testing.T) {
	// A full-mode node that runs a task has no idle entries by
	// construction, but the usable() filter also protects first-fit
	// traversal order; verify allocation skips busy-node regions in
	// partial mode when mode is full elsewhere. Simplest: full mode,
	// one node, C0 idle; place a task, then try to allocate again.
	m := rig(t, []int64{3000}, []int64{1000}, false)
	p := New(Options{})
	t0 := task(0, 0, 1000)
	mustApply(t, m, t0, p.Decide(m, t0))
	d := p.Decide(m, task(1, 0, 1000))
	if d.Action == ActAllocate {
		t.Fatalf("allocated onto busy full-mode node: %v", d)
	}
}

func TestPlacementVariants(t *testing.T) {
	setup := func() (*resinfo.Manager, *model.Config) {
		m := rig(t, []int64{4000, 2000, 3000}, []int64{500}, true)
		cfg := m.Configs()[0]
		for _, n := range m.Nodes() {
			if _, err := m.Configure(n, cfg); err != nil {
				t.Fatal(err)
			}
		}
		return m, cfg
	}

	m, _ := setup()
	d := New(Options{Placement: WorstFit}).Decide(m, task(0, 0, 500))
	if d.Action != ActAllocate || d.Entry.Node.No != 0 { // max avail (3500)
		t.Fatalf("worst-fit: %v", d)
	}

	m, _ = setup()
	d = New(Options{Placement: FirstFit}).Decide(m, task(0, 0, 500))
	if d.Action != ActAllocate || d.Entry == nil {
		t.Fatalf("first-fit: %v", d)
	}
	// First-fit returns the head of the idle list (last configured).
	if d.Entry.Node.No != 2 {
		t.Fatalf("first-fit picked node %d, want head node 2", d.Entry.Node.No)
	}

	m, _ = setup()
	d = New(Options{Placement: RandomFit, RNG: rng.New(1)}).Decide(m, task(0, 0, 500))
	if d.Action != ActAllocate || d.Entry == nil {
		t.Fatalf("random-fit: %v", d)
	}
}

func TestRandomFitWithoutRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomFit without RNG accepted")
		}
	}()
	New(Options{Placement: RandomFit})
}

func TestLoadBalanceTieBreak(t *testing.T) {
	// Two nodes with identical geometry and identical residency; one
	// runs an extra task on a second region. LoadBalance must prefer
	// the emptier node; plain best-fit prefers the busier one (its
	// AvailableArea is smaller after hosting the extra config).
	m := rig(t, []int64{4000, 4000}, []int64{500, 400}, true)
	cfg := m.Configs()[0]
	e0, _ := m.Configure(m.Nodes()[0], cfg)
	_, _ = m.Configure(m.Nodes()[1], cfg)
	_ = e0
	// Node 0 additionally runs a C1 task: fewer free area, more load.
	e2, _ := m.Configure(m.Nodes()[0], m.Configs()[1])
	_ = m.StartTask(e2, task(100, 1, 400))

	// Plain best-fit: node0 (avail 3100) beats node1 (avail 3500).
	d := New(Options{}).Decide(m, task(0, 0, 500))
	if d.Entry.Node.No != 0 {
		t.Fatalf("best-fit baseline picked node %d", d.Entry.Node.No)
	}
	// Same areas → same primary key? No: areas differ (3100 vs 3500),
	// so LB cannot override the primary. Equalise areas first.
	e3, _ := m.Configure(m.Nodes()[1], m.Configs()[1])
	_ = e3 // now both nodes: avail 3100, node0 runs 1 task, node1 runs 0.
	d = New(Options{LoadBalance: true}).Decide(m, task(1, 0, 500))
	if d.Entry.Node.No != 1 {
		t.Fatalf("load-balanced pick = node %d, want idle node 1", d.Entry.Node.No)
	}
}

func TestDecideOnNodePaths(t *testing.T) {
	m := rig(t, []int64{3000}, []int64{1000, 800, 2800}, true)
	p := New(Options{})
	n := m.Nodes()[0]

	// Allocation path: idle C0 region present.
	e, _ := m.Configure(n, m.Configs()[0])
	d := p.DecideOnNode(m, task(0, 0, 1000), n)
	if d.Action != ActAllocate || d.Entry != e {
		t.Fatalf("allocate path: %v", d)
	}

	// Partial-configuration path: C1 fits free fabric (2000 free).
	d = p.DecideOnNode(m, task(1, 1, 800), n)
	if d.Action != ActPartialConfigure || d.Node != n {
		t.Fatalf("partial-configure path: %v", d)
	}

	// Reconfigure path: C2 (2800) needs the idle C0 evicted.
	d = p.DecideOnNode(m, task(2, 2, 2800), n)
	if d.Action != ActReconfigure || len(d.Evict) != 1 {
		t.Fatalf("reconfigure path: %v", d)
	}

	// Stay-queued path: occupy everything, ask for the impossible.
	tk := task(3, 2, 2800)
	mustApply(t, m, tk, d)
	d = p.DecideOnNode(m, task(4, 2, 2800), n)
	if d.Action != ActSuspend {
		t.Fatalf("stay-queued path: %v", d)
	}

	// Configuration path: blank node.
	m2 := rig(t, []int64{3000}, []int64{1000}, true)
	d = p.DecideOnNode(m2, task(5, 0, 1000), m2.Nodes()[0])
	if d.Action != ActConfigure {
		t.Fatalf("configure path: %v", d)
	}

	// Discard path: no config large enough for the task at all.
	d = p.DecideOnNode(m2, task(6, 9, 5000), m2.Nodes()[0])
	if d.Action != ActDiscard {
		t.Fatalf("discard path: %v", d)
	}
}

func TestDecideOnNodeFullModeBusyReclaim(t *testing.T) {
	// Full-mode node with a running task cannot be reclaimed even if
	// idle area would suffice (there is none by construction, but the
	// guard must hold): expect suspend.
	m := rig(t, []int64{3000}, []int64{1000, 900}, false)
	p := New(Options{})
	t0 := task(0, 0, 1000)
	mustApply(t, m, t0, p.Decide(m, t0))
	d := p.DecideOnNode(m, task(1, 1, 900), m.Nodes()[0])
	if d.Action != ActSuspend {
		t.Fatalf("busy full-mode reclaim: %v", d)
	}
}

func TestApplyRejectsBadDecisions(t *testing.T) {
	m := rig(t, []int64{3000}, []int64{1000}, true)
	tk := task(0, 0, 1000)
	if _, _, err := Apply(m, tk, Decision{Action: ActSuspend}); err == nil {
		t.Fatal("suspend applied")
	}
	if _, _, err := Apply(m, tk, Decision{Action: ActDiscard}); err == nil {
		t.Fatal("discard applied")
	}
	if _, _, err := Apply(m, tk, Decision{Action: ActAllocate}); err == nil {
		t.Fatal("allocate without entry applied")
	}
	if _, _, err := Apply(m, tk, Decision{Action: ActConfigure}); err == nil {
		t.Fatal("configure without node applied")
	}
	if _, _, err := Apply(m, tk, Decision{Action: ActReconfigure, Node: m.Nodes()[0], Config: m.Configs()[0]}); err == nil {
		t.Fatal("reconfigure without evictions applied")
	}
}

func TestApplyReturnsConfigDelay(t *testing.T) {
	m := rig(t, []int64{3000}, []int64{1000}, true)
	p := New(Options{})
	t0 := task(0, 0, 1000)
	d := p.Decide(m, t0)
	_, delay, err := Apply(m, t0, d)
	if err != nil {
		t.Fatal(err)
	}
	if delay != 12 { // ConfigTime of the rig's configs
		t.Fatalf("configure delay = %d, want 12", delay)
	}
	// Allocation after completion has zero config delay.
	if _, err := m.FinishTask(m.Nodes()[0], t0); err != nil {
		t.Fatal(err)
	}
	t1 := task(1, 0, 1000)
	d = p.Decide(m, t1)
	_, delay, err = Apply(m, t1, d)
	if err != nil || d.Action != ActAllocate {
		t.Fatalf("%v %v", d, err)
	}
	if delay != 0 {
		t.Fatalf("allocation delay = %d, want 0", delay)
	}
}

func TestStringers(t *testing.T) {
	for _, a := range []Action{ActAllocate, ActConfigure, ActPartialConfigure, ActReconfigure, ActSuspend, ActDiscard, Action(99)} {
		if a.String() == "" {
			t.Fatal("empty Action string")
		}
	}
	for _, pl := range []Placement{BestFit, FirstFit, WorstFit, RandomFit, Placement(9)} {
		if pl.String() == "" {
			t.Fatal("empty Placement string")
		}
	}
	m := rig(t, []int64{3000}, []int64{1000}, true)
	p := New(Options{})
	d := p.Decide(m, task(0, 0, 1000))
	if !strings.Contains(d.String(), "configure") || !strings.Contains(d.String(), "N0") {
		t.Fatalf("decision string: %s", d)
	}
	if d.TargetNode() == nil || !d.Places() {
		t.Fatal("TargetNode/Places wrong for configure")
	}
	sus := Decision{Action: ActSuspend}
	if sus.TargetNode() != nil || sus.Places() {
		t.Fatal("TargetNode/Places wrong for suspend")
	}
	if New(Options{LoadBalance: true, DisableSuspension: true}).Name() != "paper/best-fit+lb-nosus" {
		t.Fatalf("policy name: %s", New(Options{LoadBalance: true, DisableSuspension: true}).Name())
	}
}
