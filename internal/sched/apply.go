package sched

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
)

// Apply executes a placing decision against the resource state: it
// performs the evictions and bitstream sends the decision calls for,
// starts the task on the resulting region, and returns that region
// together with the configuration delay incurred (0 for pure
// allocation; the config's ConfigTime otherwise — the optional
// bitstream-transfer term is added by the caller's network model).
//
// Suspend/discard decisions carry no state change and are rejected.
func Apply(m *resinfo.Manager, task *model.Task, d Decision) (*model.Entry, int64, error) {
	switch d.Action {
	case ActAllocate:
		if d.Entry == nil {
			return nil, 0, fmt.Errorf("sched: allocate decision without entry")
		}
		if err := m.StartTask(d.Entry, task); err != nil {
			return nil, 0, err
		}
		return d.Entry, 0, nil

	case ActConfigure, ActPartialConfigure:
		if d.Node == nil || d.Config == nil {
			return nil, 0, fmt.Errorf("sched: configure decision missing node/config")
		}
		e, err := m.Configure(d.Node, d.Config)
		if err != nil {
			return nil, 0, err
		}
		if err := m.StartTask(e, task); err != nil {
			return nil, 0, err
		}
		return e, d.Config.ConfigTime, nil

	case ActReconfigure:
		if d.Node == nil || d.Config == nil || len(d.Evict) == 0 {
			return nil, 0, fmt.Errorf("sched: reconfigure decision missing node/config/evictions")
		}
		if err := m.EvictIdle(d.Node, d.Evict); err != nil {
			return nil, 0, err
		}
		e, err := m.Configure(d.Node, d.Config)
		if err != nil {
			return nil, 0, err
		}
		if err := m.StartTask(e, task); err != nil {
			return nil, 0, err
		}
		return e, d.Config.ConfigTime, nil

	default:
		return nil, 0, fmt.Errorf("sched: Apply called with non-placing decision %s", d.Action)
	}
}
