package sched

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/rng"
)

// Policy decides task placement. Decide examines the whole system for
// a newly arrived task; DecideOnNode is the targeted retry the
// suspension queue runs when one node releases resources (paper:
// "each time a node finishes executing a task, the suspension queue
// is checked ... to determine if a suitable task is waiting in the
// queue which can be executed on the node").
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Decide returns the verdict for task given the current state.
	Decide(m *resinfo.Manager, task *model.Task) Decision
	// DecideOnNode tries to place task specifically on node; a
	// non-placing decision means "leave it queued".
	DecideOnNode(m *resinfo.Manager, task *model.Task, node *model.Node) Decision
}

// Placement selects the best-match criterion of the Allocation phase.
type Placement int

const (
	// BestFit picks the idle region on the node with minimum
	// AvailableArea — the paper's criterion ("so that the nodes with
	// larger AvailableArea are utilized for later re-configurations").
	BestFit Placement = iota
	// FirstFit picks the first usable idle region in list order.
	FirstFit
	// WorstFit picks the node with maximum AvailableArea (ablation).
	WorstFit
	// RandomFit picks uniformly among usable idle regions (ablation).
	RandomFit
)

// String implements fmt.Stringer.
func (p Placement) String() string {
	switch p {
	case BestFit:
		return "best-fit"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	case RandomFit:
		return "random-fit"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Options tune the paper policy; the zero value reproduces the paper.
type Options struct {
	// Placement selects the Allocation-phase criterion.
	Placement Placement
	// LoadBalance, when true, breaks AvailableArea ties toward the
	// node currently running fewer tasks (the load balancing module
	// the paper lists as a framework component and future work).
	LoadBalance bool
	// DisableSuspension turns the suspension queue off: tasks that
	// would suspend are discarded instead (ablation).
	DisableSuspension bool
	// RNG is required by RandomFit.
	RNG *rng.RNG
}

// paperPolicy is the case-study algorithm of §V (Fig. 5 + Alg. 1).
type paperPolicy struct {
	opts Options

	// evict is DecideOnNode's reusable victim buffer; the returned
	// Decision's Evict slice is valid until the policy's next decision
	// (the scheduler consumes it immediately via Apply).
	evict []*model.Entry
}

// New returns the paper's scheduling algorithm with the given
// options. The same policy serves both reconfiguration scenarios: the
// nodes' PartialMode flags determine which phases can fire. A Policy
// carries per-decision scratch state, so one instance must not serve
// concurrently running simulators — give each its own.
func New(opts Options) Policy {
	if opts.Placement == RandomFit && opts.RNG == nil {
		panic("sched: RandomFit requires Options.RNG")
	}
	return &paperPolicy{opts: opts}
}

// Name implements Policy.
func (p *paperPolicy) Name() string {
	n := "paper/" + p.opts.Placement.String()
	if p.opts.LoadBalance {
		n += "+lb"
	}
	if p.opts.DisableSuspension {
		n += "-nosus"
	}
	return n
}

// resolveConfig runs the exact-match / closest-match preamble of
// Fig. 5. A nil config means the task must be discarded. The result
// is cached on the task so suspension-queue retries skip the
// configuration searches (the first resolution is metered normally).
// The manager may answer these searches from its area-ordered index
// (Params.FastSearch); metering is identical either way, so the
// policy never needs to know which path served it.
func (p *paperPolicy) resolveConfig(m *resinfo.Manager, task *model.Task) (cfg *model.Config, closest bool) {
	if task.Resolved != nil {
		return task.Resolved, task.ResolvedClosest
	}
	cfg = m.FindPreferredConfig(task.PrefConfig)
	if cfg == nil {
		cfg, closest = m.FindClosestConfig(task.NeededArea), true
	}
	task.Resolved, task.ResolvedClosest = cfg, closest
	return cfg, closest
}

// Decide implements Policy: the four-phase algorithm of Fig. 5.
func (p *paperPolicy) Decide(m *resinfo.Manager, task *model.Task) Decision {
	cfg, closest := p.resolveConfig(m, task)
	if cfg == nil {
		return Decision{Action: ActDiscard}
	}
	d := Decision{Config: cfg, ClosestMatch: closest}

	// Phase 1 — Allocation: an idle region already configured with cfg.
	if e := p.pickIdleEntry(m, cfg.No); e != nil {
		d.Action, d.Entry = ActAllocate, e
		return d
	}
	// Phase 2 — Configuration: best blank node.
	if n := m.BestBlankNode(cfg); n != nil {
		d.Action, d.Node = ActConfigure, n
		return d
	}
	// Phase 3 — Partial configuration: free fabric on an operating node.
	if n := m.BestPartiallyBlankNode(cfg); n != nil {
		d.Action, d.Node = ActPartialConfigure, n
		return d
	}
	// Phase 4 — Partial re-configuration: reclaim idle regions (Alg. 1).
	if n, victims := m.FindAnyIdleNode(cfg); n != nil {
		d.Action, d.Node, d.Evict = ActReconfigure, n, victims
		return d
	}
	// Suspension or discard. A down node that could fit counts too:
	// tasks displaced by a transient outage wait for recovery rather
	// than being discarded (short-circuit keeps fault-free metering
	// identical — the uncharged down-probe only runs after the paper's
	// busy-fit check already said no).
	if !p.opts.DisableSuspension && (m.AnyBusyNodeCouldFit(cfg) || m.AnyDownNodeCouldFit(cfg)) {
		d.Action = ActSuspend
		return d
	}
	d.Action = ActDiscard
	return d
}

// DecideOnNode implements Policy: the targeted retry run when node
// releases resources. The freed node keeps its configuration, so a
// suspended task "which can be executed on the node" is first and
// foremost one whose configuration is resident and idle. A node in
// partial mode can additionally have a region rewritten at run time
// while its other regions keep executing — the defining capability
// under study — so partial retries may also configure free fabric or
// reclaim idle regions. A full-configuration node cannot be rewritten
// piecewise; rewriting it wholesale is the arrival algorithm's job
// (and the end-of-run drain's), not the retry's. This asymmetry is
// what produces the paper's Fig. 7/10 ordering (more, cheaper
// reconfigurations under partial reconfiguration).
func (p *paperPolicy) DecideOnNode(m *resinfo.Manager, task *model.Task, node *model.Node) Decision {
	cfg, closest := p.resolveConfig(m, task)
	if cfg == nil {
		return Decision{Action: ActDiscard}
	}
	d := Decision{Config: cfg, ClosestMatch: closest}

	// Allocation: an idle region with cfg on this node.
	var alloc *model.Entry
	var steps uint64
	for _, e := range node.Entries {
		steps++
		if e.Idle() && e.Config.No == cfg.No &&
			(node.PartialMode || node.RunningTasks() == 0) {
			alloc = e
			break
		}
	}
	m.ChargeSearch(steps)
	if alloc != nil {
		d.Action, d.Entry = ActAllocate, alloc
		return d
	}
	// Configuration: a blank node takes the bitstream without any
	// eviction in either mode (blank nodes cannot arise from a
	// completion, but drains and synthetic scenarios produce them).
	if !node.HasCaps(cfg.RequiredCaps) {
		d.Action = ActSuspend // this node can never host cfg
		return d
	}
	if node.Blank() && node.TotalArea >= cfg.ReqArea {
		d.Action, d.Node = ActConfigure, node
		return d
	}
	if !node.PartialMode {
		d.Action = ActSuspend // full mode: only a direct match runs here
		return d
	}
	// Partial configuration: free fabric on this node.
	if node.AvailableArea >= cfg.ReqArea {
		d.Action, d.Node = ActPartialConfigure, node
		return d
	}
	// Partial re-configuration: reclaim this node's idle regions.
	accum := node.AvailableArea
	victims := p.evict[:0]
	steps = 0
	for _, e := range node.Entries {
		steps++
		if e.Idle() {
			accum += e.Config.ReqArea
			victims = append(victims, e)
			if accum >= cfg.ReqArea {
				break
			}
		}
	}
	p.evict = victims
	m.ChargeSearch(steps)
	if accum >= cfg.ReqArea && len(victims) > 0 {
		d.Action, d.Node, d.Evict = ActReconfigure, node, victims
		return d
	}
	d.Action = ActSuspend // stay queued
	return d
}

// pickIdleEntry runs the Allocation-phase selection under the
// configured placement criterion. Full-mode regions on nodes that
// already run a task are never usable.
func (p *paperPolicy) pickIdleEntry(m *resinfo.Manager, cfgNo int) *model.Entry {
	usable := func(e *model.Entry) bool {
		return e.Node.PartialMode || e.Node.RunningTasks() == 0
	}
	idle := m.Pair(cfgNo).Idle
	switch p.opts.Placement {
	case FirstFit:
		var pick *model.Entry
		steps := idle.Each(func(e *model.Entry) bool {
			if usable(e) {
				pick = e
				return false
			}
			return true
		})
		m.ChargeSearch(steps)
		return pick
	case WorstFit:
		pick, steps := idle.FindMin(usable, func(e *model.Entry) int64 {
			return -e.Node.AvailableArea
		})
		m.ChargeSearch(steps)
		return pick
	case RandomFit:
		var pick *model.Entry
		seen := int64(0)
		steps := idle.Each(func(e *model.Entry) bool {
			if usable(e) {
				seen++
				if p.opts.RNG.Int64Range(1, seen) == 1 {
					pick = e
				}
			}
			return true
		})
		m.ChargeSearch(steps)
		return pick
	default: // BestFit, the paper criterion, optionally load-balanced.
		key := func(e *model.Entry) int64 { return e.Node.AvailableArea }
		if p.opts.LoadBalance {
			// Composite key: area first, running-task count as the
			// tie-break. A node's region count is bounded by
			// TotalArea/minConfigArea, far below 1024.
			key = func(e *model.Entry) int64 {
				return e.Node.AvailableArea*1024 + int64(e.Node.RunningTasks())
			}
		}
		pick, steps := idle.FindMin(usable, key)
		m.ChargeSearch(steps)
		return pick
	}
}
