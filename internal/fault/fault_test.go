package fault

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"dreamsim/internal/rng"
	"dreamsim/internal/sim"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindCrash:         "crash",
		KindRecover:       "recover",
		KindReconfigFault: "cfail",
		Kind(42):          "Kind(42)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestPlanEnabled(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Error("zero plan reports enabled")
	}
	enabled := []Plan{
		{CrashRate: 0.1, MeanDowntime: 10},
		{ReconfigFaultRate: 0.1},
		{Script: []Event{{At: 1, Kind: KindReconfigFault}}},
	}
	for i, p := range enabled {
		if !p.Enabled() {
			t.Errorf("plan %d reports disabled", i)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := []Plan{
		{},
		{CrashRate: 0.01, MeanDowntime: 100},
		{ReconfigFaultRate: 0.5},
		{Script: []Event{{At: 0, Kind: KindCrash, Node: 3}, {At: 5, Kind: KindRecover, Node: 3}, {At: 9, Kind: KindReconfigFault}}},
	}
	for i, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("plan %d rejected: %v", i, err)
		}
	}
	bad := []Plan{
		{CrashRate: -1},
		{CrashRate: math.NaN()},
		{MeanDowntime: math.Inf(1)},
		{ReconfigFaultRate: -0.1},
		{CrashRate: 0.1}, // missing MeanDowntime
		{Script: []Event{{At: -1, Kind: KindCrash, Node: 0}}},
		{Script: []Event{{At: 1, Kind: KindCrash, Node: -2}}},
		{Script: []Event{{At: 1, Kind: Kind(9), Node: 0}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d accepted: %+v", i, p)
		}
	}
}

func TestParseScriptRoundTrip(t *testing.T) {
	const src = "crash@100:5,recover@250:5,cfail@300"
	events, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{At: 100, Kind: KindCrash, Node: 5},
		{At: 250, Kind: KindRecover, Node: 5},
		{At: 300, Kind: KindReconfigFault},
	}
	if len(events) != len(want) {
		t.Fatalf("parsed %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
	if got := FormatScript(events); got != src {
		t.Errorf("round trip = %q, want %q", got, src)
	}
}

func TestParseScriptTolerance(t *testing.T) {
	events, err := ParseScript(" crash@1:0 ,, recover@2:0 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(events))
	}
	if events, err := ParseScript(""); err != nil || events != nil {
		t.Errorf("empty script: %v, %v", events, err)
	}
}

func TestParseScriptErrors(t *testing.T) {
	for _, src := range []string{
		"crash",           // no @
		"boom@10:1",       // unknown kind
		"crash@x:1",       // bad tick
		"crash@-5:1",      // negative tick
		"crash@10",        // missing node
		"crash@10:x",      // bad node
		"crash@10:-1",     // negative node
		"cfail@10:3",      // cfail takes no node
		"crash@10:1,oops", // later event bad
	} {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) accepted", src)
		}
	}
}

func TestRetryPolicyDefaults(t *testing.T) {
	rp := RetryPolicy{}.WithDefaults()
	if rp.Budget != DefaultRetryBudget || rp.BackoffBase != DefaultBackoffBase || rp.BackoffCap != DefaultBackoffCap {
		t.Fatalf("defaults = %+v", rp)
	}
	rp = RetryPolicy{Budget: 7, BackoffBase: 2, BackoffCap: 8}.WithDefaults()
	if rp.Budget != 7 || rp.BackoffBase != 2 || rp.BackoffCap != 8 {
		t.Fatalf("explicit knobs overridden: %+v", rp)
	}
}

func TestRetryPolicyValidate(t *testing.T) {
	good := []RetryPolicy{{}, {Budget: 5}, {BackoffBase: 4, BackoffCap: 4}}
	for i, rp := range good {
		if err := rp.Validate(); err != nil {
			t.Errorf("policy %d rejected: %v", i, err)
		}
	}
	bad := []RetryPolicy{{Budget: -1}, {BackoffBase: -2}, {BackoffCap: -3}, {BackoffBase: 10, BackoffCap: 5}}
	for i, rp := range bad {
		if err := rp.Validate(); err == nil {
			t.Errorf("bad policy %d accepted: %+v", i, rp)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	rp := RetryPolicy{BackoffBase: 16, BackoffCap: 100}
	for attempt, want := range map[int64]int64{1: 16, 2: 32, 3: 64, 4: 100, 5: 100, 50: 100} {
		if got := rp.Backoff(attempt); got != want {
			t.Errorf("Backoff(%d) = %d, want %d", attempt, got, want)
		}
	}
	// The doubling must saturate at the cap, never overflow.
	wide := RetryPolicy{BackoffBase: 1, BackoffCap: 1 << 62}
	if got := wide.Backoff(200); got != 1<<62 {
		t.Errorf("wide Backoff(200) = %d", got)
	}
}

// stubTarget records injector callbacks against a toy population.
type stubTarget struct {
	n       int
	down    map[int]bool
	log     []string
	armed   int
	liveFor int // Live() answers true this many more times
}

func newStub(n, liveFor int) *stubTarget {
	return &stubTarget{n: n, down: map[int]bool{}, liveFor: liveFor}
}

func (t *stubTarget) NodeCount() int       { return t.n }
func (t *stubTarget) NodeDown(no int) bool { return t.down[no] }
func (t *stubTarget) Crash(no int, now int64) {
	t.down[no] = true
	t.log = append(t.log, fmt.Sprintf("crash:%d@%d", no, now))
}
func (t *stubTarget) Recover(no int, now int64) {
	delete(t.down, no)
	t.log = append(t.log, fmt.Sprintf("recover:%d@%d", no, now))
}
func (t *stubTarget) ArmReconfigFault(now int64) {
	t.armed++
	t.log = append(t.log, fmt.Sprintf("cfail@%d", now))
}
func (t *stubTarget) Live() bool {
	if t.liveFor <= 0 {
		return false
	}
	t.liveFor--
	return true
}

func TestNewInjectorRejects(t *testing.T) {
	eng := &sim.Engine{}
	st := newStub(4, 0)
	if _, err := NewInjector(Plan{CrashRate: -1}, rng.New(1), eng, st); err == nil {
		t.Error("invalid plan accepted")
	}
	if _, err := NewInjector(Plan{CrashRate: 0.1, MeanDowntime: 5}, nil, eng, st); err == nil {
		t.Error("nil RNG accepted with positive rates")
	}
	oob := Plan{Script: []Event{{At: 1, Kind: KindCrash, Node: 4}}}
	if _, err := NewInjector(oob, nil, eng, st); err == nil {
		t.Error("out-of-range script node accepted")
	}
	ok := Plan{Script: []Event{{At: 1, Kind: KindReconfigFault, Node: 99}}}
	if _, err := NewInjector(ok, nil, eng, st); err != nil {
		t.Errorf("cfail with ignored node rejected: %v", err)
	}
}

func TestInjectorScriptedSequence(t *testing.T) {
	plan := Plan{Script: []Event{
		{At: 10, Kind: KindCrash, Node: 1},
		{At: 30, Kind: KindRecover, Node: 1},
		{At: 20, Kind: KindReconfigFault},
	}}
	eng := &sim.Engine{}
	st := newStub(3, 0)
	in, err := NewInjector(plan, nil, eng, st)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	if in.PendingRecoveries() != 1 {
		t.Fatalf("pending recoveries before run = %d, want 1", in.PendingRecoveries())
	}
	eng.Run(func() bool { return false })
	want := "crash:1@10,cfail@20,recover:1@30"
	if got := strings.Join(st.log, ","); got != want {
		t.Fatalf("event log = %q, want %q", got, want)
	}
	if in.PendingRecoveries() != 0 {
		t.Fatalf("pending recoveries after run = %d", in.PendingRecoveries())
	}
	if st.armed != 1 {
		t.Fatalf("armed = %d, want 1", st.armed)
	}
}

func TestInjectorRandomCrashStream(t *testing.T) {
	plan := Plan{CrashRate: 0.05, MeanDowntime: 40}
	eng := &sim.Engine{}
	st := newStub(5, 6)
	in, err := NewInjector(plan, rng.New(7), eng, st)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	eng.Run(func() bool { return false })
	var crashes, recovers int
	for _, e := range st.log {
		if strings.HasPrefix(e, "crash:") {
			crashes++
		}
		if strings.HasPrefix(e, "recover:") {
			recovers++
		}
	}
	// Every crash schedules its recovery; the stream dies once Live
	// goes false, so both the run and the counts are finite.
	if crashes == 0 {
		t.Fatal("random stream produced no crashes")
	}
	if recovers != crashes {
		t.Fatalf("crashes %d != recoveries %d", crashes, recovers)
	}
	if in.PendingRecoveries() != 0 {
		t.Fatalf("pending recoveries after drain = %d", in.PendingRecoveries())
	}
	if len(st.down) != 0 {
		t.Fatalf("%d nodes left down", len(st.down))
	}
}

func TestInjectorRandomStreamsDeterministic(t *testing.T) {
	run := func() string {
		plan := Plan{CrashRate: 0.02, MeanDowntime: 25, ReconfigFaultRate: 0.03}
		eng := &sim.Engine{}
		st := newStub(4, 10)
		in, err := NewInjector(plan, rng.New(99), eng, st)
		if err != nil {
			t.Fatal(err)
		}
		in.Start()
		eng.Run(func() bool { return false })
		return strings.Join(st.log, ",")
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b)
	}
	if a == "" {
		t.Fatal("streams produced nothing")
	}
}

func TestInjectorAllNodesDown(t *testing.T) {
	// With the whole population down, the crash stream skips the
	// firing but keeps perpetuating until Live goes false.
	plan := Plan{CrashRate: 0.5, MeanDowntime: 1e9}
	eng := &sim.Engine{}
	st := newStub(1, 4)
	in, err := NewInjector(plan, rng.New(3), eng, st)
	if err != nil {
		t.Fatal(err)
	}
	in.Start()
	eng.Run(func() bool { return false })
	var crashes int
	for _, e := range st.log {
		if strings.HasPrefix(e, "crash:") {
			crashes++
		}
	}
	if crashes != 1 {
		t.Fatalf("crashes = %d, want exactly 1 (single node, huge downtime)", crashes)
	}
}
