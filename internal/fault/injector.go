package fault

import (
	"fmt"

	"dreamsim/internal/rng"
	"dreamsim/internal/sim"
)

// Target is the slice of the simulator the injector acts on. The
// callbacks must tolerate redundant events: crashing a down node and
// recovering an up node are no-ops, which lets scripts and random
// streams overlap safely.
type Target interface {
	// NodeCount is the size of the node population.
	NodeCount() int
	// NodeDown reports whether node no is currently down.
	NodeDown(no int) bool
	// Crash takes node no down at time now.
	Crash(no int, now int64)
	// Recover brings node no back at time now.
	Recover(no int, now int64)
	// ArmReconfigFault makes the next reconfiguration attempt fail.
	ArmReconfigFault(now int64)
	// Live reports whether the simulation still has work in flight
	// (arrivals pending, tasks running, suspended or retrying). The
	// random fault streams stop perpetuating themselves once the
	// system has drained, so the run can terminate.
	Live() bool
}

// Injector schedules a Plan's fault events into the simulation event
// queue. Construct with NewInjector, then Start once before the
// engine runs.
type Injector struct {
	plan Plan
	r    *rng.RNG
	eng  *sim.Engine
	t    Target

	// pendingRecoveries counts scheduled node recoveries that have
	// not fired yet; the core consults it before declaring the system
	// unable to make progress (a recovering node may yet host the
	// suspended backlog).
	pendingRecoveries int
}

// NewInjector validates the plan against the population and builds an
// injector. The RNG is only consulted by the random streams; it must
// be non-nil when either rate is positive.
func NewInjector(plan Plan, r *rng.RNG, eng *sim.Engine, t Target) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if r == nil && (plan.CrashRate > 0 || plan.ReconfigFaultRate > 0) {
		return nil, fmt.Errorf("fault: random fault rates need an RNG stream")
	}
	n := t.NodeCount()
	for i, ev := range plan.Script {
		if ev.Kind != KindReconfigFault && ev.Node >= n {
			return nil, fmt.Errorf("fault: script event %d targets node %d of %d", i, ev.Node, n)
		}
	}
	return &Injector{plan: plan, r: r, eng: eng, t: t}, nil
}

// PendingRecoveries reports how many scheduled recoveries are still
// in flight.
func (in *Injector) PendingRecoveries() int { return in.pendingRecoveries }

// Start schedules the scripted events and the first random draws.
// Call exactly once, before the engine runs.
func (in *Injector) Start() {
	for _, ev := range in.plan.Script {
		ev := ev
		switch ev.Kind {
		case KindCrash:
			in.eng.ScheduleAt(ev.At, "fault:crash", func(now int64) {
				in.t.Crash(ev.Node, now)
			})
		case KindRecover:
			in.pendingRecoveries++
			in.eng.ScheduleAt(ev.At, "fault:recover", func(now int64) {
				in.pendingRecoveries--
				in.t.Recover(ev.Node, now)
			})
		case KindReconfigFault:
			in.eng.ScheduleAt(ev.At, "fault:cfail", func(now int64) {
				in.t.ArmReconfigFault(now)
			})
		}
	}
	if in.plan.CrashRate > 0 {
		in.scheduleNextCrash()
	}
	if in.plan.ReconfigFaultRate > 0 {
		in.scheduleNextArming()
	}
}

// gap draws one inter-event gap of a Poisson process with the given
// rate, in whole timeticks (at least 1 so streams always advance).
func (in *Injector) gap(rate float64) int64 {
	return 1 + int64(in.r.ExpRate(rate))
}

func (in *Injector) scheduleNextCrash() {
	in.eng.ScheduleAfter(in.gap(in.plan.CrashRate), "fault:crash", in.randomCrash)
}

// randomCrash is one firing of the random crash stream: crash a
// uniformly chosen up node, schedule its recovery after an
// exponential downtime, and perpetuate the stream — unless the
// simulation has drained, in which case the stream dies so the run
// can end.
func (in *Injector) randomCrash(now int64) {
	if !in.t.Live() {
		return
	}
	if no, ok := in.pickUpNode(); ok {
		in.t.Crash(no, now)
		downtime := 1 + int64(in.r.ExpRate(1/in.plan.MeanDowntime))
		in.pendingRecoveries++
		in.eng.ScheduleAt(now+downtime, "fault:recover", func(at int64) {
			in.pendingRecoveries--
			in.t.Recover(no, at)
		})
	}
	in.scheduleNextCrash()
}

// pickUpNode selects a uniform up node; ok is false when the whole
// population is down.
func (in *Injector) pickUpNode() (no int, ok bool) {
	n := in.t.NodeCount()
	up := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !in.t.NodeDown(i) {
			up = append(up, i)
		}
	}
	if len(up) == 0 {
		return 0, false
	}
	return up[in.r.Intn(len(up))], true
}

func (in *Injector) scheduleNextArming() {
	in.eng.ScheduleAfter(in.gap(in.plan.ReconfigFaultRate), "fault:cfail", in.randomArming)
}

// randomArming is one firing of the reconfiguration-fault stream.
func (in *Injector) randomArming(now int64) {
	if !in.t.Live() {
		return
	}
	in.t.ArmReconfigFault(now)
	in.scheduleNextArming()
}
