package fault

import (
	"fmt"

	"dreamsim/internal/rng"
	"dreamsim/internal/sim"
)

// Target is the slice of the simulator the injector acts on. The
// callbacks must tolerate redundant events: crashing a down node and
// recovering an up node are no-ops, which lets scripts and random
// streams overlap safely.
type Target interface {
	// NodeCount is the size of the node population.
	NodeCount() int
	// NodeDown reports whether node no is currently down.
	NodeDown(no int) bool
	// Crash takes node no down at time now.
	Crash(no int, now int64)
	// Recover brings node no back at time now.
	Recover(no int, now int64)
	// ArmReconfigFault makes the next reconfiguration attempt fail.
	ArmReconfigFault(now int64)
	// Live reports whether the simulation still has work in flight
	// (arrivals pending, tasks running, suspended or retrying). The
	// random fault streams stop perpetuating themselves once the
	// system has drained, so the run can terminate.
	Live() bool
}

// Injector schedules a Plan's fault events into the simulation event
// queue. Construct with NewInjector, then Start once before the
// engine runs.
//
// Fault events carry their meaning in the event payload slots rather
// than in closures, so a checkpoint can classify every pending fault
// event from its Kind and payload alone and rebuild it on restore:
//
//	Kind            A (payload)   B          meaning
//	"fault:crash"   node int      nil        crash that node
//	"fault:crash"   nil           *Injector  random-stream firing
//	"fault:recover" node int      nil        recover that node
//	"fault:cfail"   nil           nil        scripted reconfig fault
//	"fault:cfail"   nil           *Injector  random-stream firing
type Injector struct {
	plan Plan
	r    *rng.RNG
	eng  *sim.Engine
	t    Target

	// pendingRecoveries counts scheduled node recoveries that have
	// not fired yet; the core consults it before declaring the system
	// unable to make progress (a recovering node may yet host the
	// suspended backlog).
	pendingRecoveries int

	// Pre-bound handlers: one method-value allocation each at
	// construction instead of one closure per scheduled fault.
	hCrash, hRecover, hArm sim.Handler
}

// NewInjector validates the plan against the population and builds an
// injector. The RNG is only consulted by the random streams; it must
// be non-nil when either rate is positive.
func NewInjector(plan Plan, r *rng.RNG, eng *sim.Engine, t Target) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if r == nil && (plan.CrashRate > 0 || plan.ReconfigFaultRate > 0) {
		return nil, fmt.Errorf("fault: random fault rates need an RNG stream")
	}
	n := t.NodeCount()
	for i, ev := range plan.Script {
		if ev.Kind != KindReconfigFault && ev.Node >= n {
			return nil, fmt.Errorf("fault: script event %d targets node %d of %d", i, ev.Node, n)
		}
	}
	in := &Injector{plan: plan, r: r, eng: eng, t: t}
	in.hCrash = in.handleCrash
	in.hRecover = in.handleRecover
	in.hArm = in.handleArm
	return in, nil
}

// PendingRecoveries reports how many scheduled recoveries are still
// in flight.
func (in *Injector) PendingRecoveries() int { return in.pendingRecoveries }

// RNG exposes the injector's random stream for checkpointing; nil for
// script-only plans.
func (in *Injector) RNG() *rng.RNG { return in.r }

// Start schedules the scripted events and the first random draws.
// Call exactly once, before the engine runs.
func (in *Injector) Start() {
	for _, ev := range in.plan.Script {
		switch ev.Kind {
		case KindCrash:
			in.eng.ScheduleEventAt(ev.At, "fault:crash", in.hCrash, ev.Node, nil)
		case KindRecover:
			in.pendingRecoveries++
			in.eng.ScheduleEventAt(ev.At, "fault:recover", in.hRecover, ev.Node, nil)
		case KindReconfigFault:
			in.eng.ScheduleEventAt(ev.At, "fault:cfail", in.hArm, nil, nil)
		}
	}
	if in.plan.CrashRate > 0 {
		in.scheduleNextCrash()
	}
	if in.plan.ReconfigFaultRate > 0 {
		in.scheduleNextArming()
	}
}

// handleCrash fires a crash event: a random-stream firing (B set)
// runs the stream step; a targeted event (A = node) crashes that node.
func (in *Injector) handleCrash(ev *sim.Event, now int64) {
	if ev.B != nil {
		in.randomCrash(now)
		return
	}
	in.t.Crash(ev.A.(int), now)
}

// handleRecover fires a scheduled recovery of node A.
func (in *Injector) handleRecover(ev *sim.Event, now int64) {
	in.pendingRecoveries--
	in.t.Recover(ev.A.(int), now)
}

// handleArm fires a reconfiguration fault: a random-stream firing
// (B set) runs the stream step; otherwise it arms one fault directly.
func (in *Injector) handleArm(ev *sim.Event, now int64) {
	if ev.B != nil {
		in.randomArming(now)
		return
	}
	in.t.ArmReconfigFault(now)
}

// RestoreCrash re-schedules a pending crash event from a snapshot:
// either the random stream's next firing or a targeted crash.
func (in *Injector) RestoreCrash(at int64, node int, stream bool) {
	if stream {
		in.eng.ScheduleEventAt(at, "fault:crash", in.hCrash, nil, in)
		return
	}
	in.eng.ScheduleEventAt(at, "fault:crash", in.hCrash, node, nil)
}

// RestoreRecovery re-schedules a pending recovery from a snapshot.
// The pending-recovery counter is derived state — each restored
// event increments it here and decrements it when it fires, exactly
// as the original scheduling did.
func (in *Injector) RestoreRecovery(at int64, node int) {
	in.pendingRecoveries++
	in.eng.ScheduleEventAt(at, "fault:recover", in.hRecover, node, nil)
}

// RestoreArm re-schedules a pending reconfiguration-fault event from
// a snapshot: the random stream's next firing or a scripted arming.
func (in *Injector) RestoreArm(at int64, stream bool) {
	if stream {
		in.eng.ScheduleEventAt(at, "fault:cfail", in.hArm, nil, in)
		return
	}
	in.eng.ScheduleEventAt(at, "fault:cfail", in.hArm, nil, nil)
}

// gap draws one inter-event gap of a Poisson process with the given
// rate, in whole timeticks (at least 1 so streams always advance).
func (in *Injector) gap(rate float64) int64 {
	return 1 + int64(in.r.ExpRate(rate))
}

func (in *Injector) scheduleNextCrash() {
	in.eng.ScheduleEventAfter(in.gap(in.plan.CrashRate), "fault:crash", in.hCrash, nil, in)
}

// randomCrash is one firing of the random crash stream: crash a
// uniformly chosen up node, schedule its recovery after an
// exponential downtime, and perpetuate the stream — unless the
// simulation has drained, in which case the stream dies so the run
// can end.
func (in *Injector) randomCrash(now int64) {
	if !in.t.Live() {
		return
	}
	if no, ok := in.pickUpNode(); ok {
		in.t.Crash(no, now)
		downtime := 1 + int64(in.r.ExpRate(1/in.plan.MeanDowntime))
		in.pendingRecoveries++
		in.eng.ScheduleEventAt(now+downtime, "fault:recover", in.hRecover, no, nil)
	}
	in.scheduleNextCrash()
}

// pickUpNode selects a uniform up node; ok is false when the whole
// population is down.
func (in *Injector) pickUpNode() (no int, ok bool) {
	n := in.t.NodeCount()
	up := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if !in.t.NodeDown(i) {
			up = append(up, i)
		}
	}
	if len(up) == 0 {
		return 0, false
	}
	return up[in.r.Intn(len(up))], true
}

func (in *Injector) scheduleNextArming() {
	in.eng.ScheduleEventAfter(in.gap(in.plan.ReconfigFaultRate), "fault:cfail", in.hArm, nil, in)
}

// randomArming is one firing of the reconfiguration-fault stream.
func (in *Injector) randomArming(now int64) {
	if !in.t.Live() {
		return
	}
	in.t.ArmReconfigFault(now)
	in.scheduleNextArming()
}
