// Package fault implements DReAMSim's deterministic fault-injection
// engine. It schedules node-crash / node-recover events and
// reconfiguration-failure events into the simulation event queue,
// either as Poisson streams drawn from the run's seeded RNG or as an
// explicit scripted schedule (tests, regression fixtures).
//
// Determinism is the design constraint: all randomness flows through
// an internal/rng stream split from the run seed, event times are
// computed in integer timeticks, and the injector touches the
// simulator only through the Target callback surface — so a faulty
// run is byte-identical across processes and parallelism levels,
// exactly like a fault-free one.
package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind is the type of one fault event.
type Kind int

const (
	// KindCrash takes a node down: resident configurations are
	// invalidated and in-flight tasks are displaced into the retry
	// path.
	KindCrash Kind = iota
	// KindRecover brings a crashed node back into service, blank.
	KindRecover
	// KindReconfigFault arms one reconfiguration failure: the next
	// bitstream load aborts, its reconfiguration time is wasted, and
	// the task re-enters the suspension queue.
	KindReconfigFault
)

// String implements fmt.Stringer using the script keywords.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindRecover:
		return "recover"
	case KindReconfigFault:
		return "cfail"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scripted fault occurrence.
type Event struct {
	// At is the timetick the event fires.
	At int64
	// Kind selects the fault type.
	Kind Kind
	// Node is the crash/recover target; ignored for KindReconfigFault.
	Node int
}

// Plan configures the fault engine for one run. The zero value means
// "no faults": the injector is never constructed and the run is
// byte-identical to a build without the subsystem.
type Plan struct {
	// CrashRate is the mean node crashes per timetick across the
	// population (Poisson process; 0 disables random crashes).
	CrashRate float64
	// MeanDowntime is the mean downtime of a randomly crashed node in
	// timeticks (exponential); required when CrashRate > 0.
	MeanDowntime float64
	// ReconfigFaultRate is the mean reconfiguration-fault armings per
	// timetick (Poisson process; 0 disables).
	ReconfigFaultRate float64
	// Script is an explicit fault schedule, fired verbatim alongside
	// any random streams. Scripted crashes do not auto-recover; pair
	// them with KindRecover events where recovery is wanted.
	Script []Event
}

// Enabled reports whether the plan injects any faults at all.
func (p Plan) Enabled() bool {
	return p.CrashRate > 0 || p.ReconfigFaultRate > 0 || len(p.Script) > 0
}

// Validate reports the first incoherent parameter. Script node
// numbers are range-checked later, by NewInjector, which knows the
// population size.
func (p Plan) Validate() error {
	if bad(p.CrashRate) || p.CrashRate < 0 {
		return fmt.Errorf("fault: invalid CrashRate %v", p.CrashRate)
	}
	if bad(p.MeanDowntime) || p.MeanDowntime < 0 {
		return fmt.Errorf("fault: invalid MeanDowntime %v", p.MeanDowntime)
	}
	if bad(p.ReconfigFaultRate) || p.ReconfigFaultRate < 0 {
		return fmt.Errorf("fault: invalid ReconfigFaultRate %v", p.ReconfigFaultRate)
	}
	if p.CrashRate > 0 && p.MeanDowntime <= 0 {
		return fmt.Errorf("fault: CrashRate %v needs a positive MeanDowntime", p.CrashRate)
	}
	for i, ev := range p.Script {
		if ev.At < 0 {
			return fmt.Errorf("fault: script event %d at negative tick %d", i, ev.At)
		}
		switch ev.Kind {
		case KindCrash, KindRecover:
			if ev.Node < 0 {
				return fmt.Errorf("fault: script event %d targets negative node %d", i, ev.Node)
			}
		case KindReconfigFault:
			// no target
		default:
			return fmt.Errorf("fault: script event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// bad reports a non-finite float (NaN or ±Inf).
func bad(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// ParseScript parses the textual fault-schedule syntax used by the
// -fault-script CLI flag and test fixtures: comma-separated events
// "crash@TICK:NODE", "recover@TICK:NODE" and "cfail@TICK", e.g.
//
//	crash@100:5,recover@250:5,cfail@300
//
// An empty string parses to a nil script.
func ParseScript(s string) ([]Event, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []Event
	for _, tok := range strings.Split(s, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		kindStr, rest, ok := strings.Cut(tok, "@")
		if !ok {
			return nil, fmt.Errorf("fault: script event %q: want kind@tick[:node]", tok)
		}
		var kind Kind
		switch kindStr {
		case "crash":
			kind = KindCrash
		case "recover":
			kind = KindRecover
		case "cfail":
			kind = KindReconfigFault
		default:
			return nil, fmt.Errorf("fault: script event %q: unknown kind %q", tok, kindStr)
		}
		tickStr, nodeStr, hasNode := strings.Cut(rest, ":")
		at, err := strconv.ParseInt(tickStr, 10, 64)
		if err != nil || at < 0 {
			return nil, fmt.Errorf("fault: script event %q: bad tick %q", tok, tickStr)
		}
		ev := Event{At: at, Kind: kind}
		if kind == KindReconfigFault {
			if hasNode {
				return nil, fmt.Errorf("fault: script event %q: cfail takes no node", tok)
			}
		} else {
			if !hasNode {
				return nil, fmt.Errorf("fault: script event %q: %s needs a :node suffix", tok, kindStr)
			}
			node, err := strconv.Atoi(nodeStr)
			if err != nil || node < 0 {
				return nil, fmt.Errorf("fault: script event %q: bad node %q", tok, nodeStr)
			}
			ev.Node = node
		}
		out = append(out, ev)
	}
	return out, nil
}

// FormatScript renders events back into ParseScript's syntax.
func FormatScript(events []Event) string {
	parts := make([]string, 0, len(events))
	for _, ev := range events {
		if ev.Kind == KindReconfigFault {
			parts = append(parts, fmt.Sprintf("%s@%d", ev.Kind, ev.At))
		} else {
			parts = append(parts, fmt.Sprintf("%s@%d:%d", ev.Kind, ev.At, ev.Node))
		}
	}
	return strings.Join(parts, ",")
}

// Retry-path defaults, applied by RetryPolicy.WithDefaults when a
// knob is left zero and faults are enabled.
const (
	// DefaultRetryBudget is how many crash displacements a task
	// survives before it is counted lost.
	DefaultRetryBudget = 3
	// DefaultBackoffBase is the first re-dispatch delay in timeticks.
	DefaultBackoffBase = 16
	// DefaultBackoffCap bounds the exponential backoff growth.
	DefaultBackoffCap = 4096
)

// RetryPolicy tunes the fault-displaced task retry path: a task
// displaced by a node crash is re-dispatched after a capped
// exponential backoff, at most Budget times, then counted lost.
type RetryPolicy struct {
	// Budget is the per-task displacement budget (0 = default).
	Budget int64
	// BackoffBase is the first backoff delay in timeticks (0 = default).
	BackoffBase int64
	// BackoffCap caps the doubling backoff (0 = default).
	BackoffCap int64
}

// WithDefaults fills zero knobs with the package defaults.
func (rp RetryPolicy) WithDefaults() RetryPolicy {
	if rp.Budget == 0 {
		rp.Budget = DefaultRetryBudget
	}
	if rp.BackoffBase == 0 {
		rp.BackoffBase = DefaultBackoffBase
	}
	if rp.BackoffCap == 0 {
		rp.BackoffCap = DefaultBackoffCap
	}
	return rp
}

// Validate reports the first incoherent knob.
func (rp RetryPolicy) Validate() error {
	if rp.Budget < 0 {
		return fmt.Errorf("fault: negative retry budget %d", rp.Budget)
	}
	if rp.BackoffBase < 0 || rp.BackoffCap < 0 {
		return fmt.Errorf("fault: negative backoff bounds [%d, %d]", rp.BackoffBase, rp.BackoffCap)
	}
	if rp.BackoffBase > 0 && rp.BackoffCap > 0 && rp.BackoffCap < rp.BackoffBase {
		return fmt.Errorf("fault: backoff cap %d below base %d", rp.BackoffCap, rp.BackoffBase)
	}
	return nil
}

// Backoff returns the delay before re-dispatch attempt number
// `attempt` (1-based): BackoffBase doubling per attempt, capped at
// BackoffCap. The doubling loop guards against shift overflow by
// stopping at the cap.
func (rp RetryPolicy) Backoff(attempt int64) int64 {
	d := rp.BackoffBase
	for i := int64(1); i < attempt; i++ {
		if d >= rp.BackoffCap {
			return rp.BackoffCap
		}
		d <<= 1
	}
	if d > rp.BackoffCap {
		return rp.BackoffCap
	}
	return d
}
