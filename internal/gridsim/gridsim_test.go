package gridsim

import (
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

func baseParams(resources int) Params {
	return Params{
		Resources: resources,
		SpeedLow:  1, SpeedHigh: 1,
	}
}

func source(t *testing.T, tasks []*model.Task) workload.Source {
	t.Helper()
	src, err := workload.SliceSource(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func mkTask(no int, create, req int64, pref int) *model.Task {
	return model.NewTask(no, 500, pref, req, create)
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Resources: 0, SpeedLow: 1, SpeedHigh: 1},
		{Resources: 1, SpeedLow: 0, SpeedHigh: 1},
		{Resources: 1, SpeedLow: 2, SpeedHigh: 1},
		{Resources: 1, SpeedLow: 1, SpeedHigh: 1, ReconfigurableShare: 2},
		{Resources: 1, SpeedLow: 1, SpeedHigh: 1, ReconfigurableShare: 0.5},
		{Resources: 1, SpeedLow: 1, SpeedHigh: 1, ReconfigurableShare: 0.5, Speedup: 2, ReconfigDelay: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
	ok := baseParams(3)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenResources(t *testing.T) {
	p := Params{Resources: 100, SpeedLow: 0.5, SpeedHigh: 2,
		ReconfigurableShare: 0.4, Speedup: 5, ReconfigDelay: 15}
	rs, err := GenResources(rng.New(1), &p)
	if err != nil {
		t.Fatal(err)
	}
	reconf := 0
	for _, r := range rs {
		if r.Reconfigurable {
			reconf++
			// Speedup applied on top of the GPP range.
			if r.Speed < 0.5*5 || r.Speed > 2*5 {
				t.Fatalf("reconfigurable speed %v out of range", r.Speed)
			}
			if r.ReconfigDelay != 15 {
				t.Fatal("reconfig delay not set")
			}
		} else if r.Speed < 0.5 || r.Speed > 2 {
			t.Fatalf("GPP speed %v out of range", r.Speed)
		}
	}
	if reconf < 20 || reconf > 60 {
		t.Fatalf("reconfigurable share implausible: %d/100", reconf)
	}
}

func TestRunSingleResourceSerializes(t *testing.T) {
	tasks := []*model.Task{
		mkTask(0, 0, 100, 1),
		mkTask(1, 0, 200, 2),
		mkTask(2, 0, 300, 3),
	}
	res, err := Run(baseParams(1), source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 3 || res.Makespan != 600 {
		t.Fatalf("serial run: %+v", res)
	}
	// Waits: 0, 100, 300 -> avg 133.33.
	if res.AvgWaitPerTask < 133 || res.AvgWaitPerTask > 134 {
		t.Fatalf("avg wait %v", res.AvgWaitPerTask)
	}
	if res.AvgUtilization != 1 {
		t.Fatalf("single busy resource utilization %v", res.AvgUtilization)
	}
}

func TestRunParallelism(t *testing.T) {
	tasks := []*model.Task{
		mkTask(0, 0, 300, 1),
		mkTask(1, 0, 300, 2),
		mkTask(2, 0, 300, 3),
	}
	res, err := Run(baseParams(3), source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 300 || res.AvgWaitPerTask != 0 {
		t.Fatalf("parallel run: %+v", res)
	}
}

func TestSpeedScalesRuntime(t *testing.T) {
	p := baseParams(1)
	p.SpeedLow, p.SpeedHigh = 2, 2
	res, err := Run(p, source(t, []*model.Task{mkTask(0, 0, 1000, 1)}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 500 {
		t.Fatalf("2x speed makespan %d, want 500", res.Makespan)
	}
}

func TestReconfigDelayCharged(t *testing.T) {
	p := Params{Resources: 1, SpeedLow: 1, SpeedHigh: 1,
		ReconfigurableShare: 1, Speedup: 1, ReconfigDelay: 50}
	// Two tasks preferring different functions: two switches.
	tasks := []*model.Task{mkTask(0, 0, 100, 1), mkTask(1, 0, 100, 2)}
	res, err := Run(p, source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSwitches != 2 {
		t.Fatalf("switches %d, want 2", res.TotalSwitches)
	}
	if res.Makespan != 50+100+50+100 {
		t.Fatalf("makespan %d, want 300", res.Makespan)
	}
	// Same function twice: one switch.
	tasks = []*model.Task{mkTask(0, 0, 100, 1), mkTask(1, 0, 100, 1)}
	res, err = Run(p, source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSwitches != 1 || res.Makespan != 250 {
		t.Fatalf("reuse run: %+v", res)
	}
}

func TestCRGridSimFasterThanGridSim(t *testing.T) {
	// Same workload through pure GPPs and through a pool with
	// speedup-5 reconfigurable elements: CRGridSim-style must win.
	spec := workload.TableII(0, 300)
	spec.Nodes = 1 // unused by gridsim; satisfies validation
	r := rng.New(9)
	configs := workload.GenConfigs(r.Split(), &spec)
	gen, err := workload.NewGenerator(r, &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Drain(gen)

	gpp := baseParams(20)
	resGPP, err := Run(gpp, source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	cr := gpp
	cr.ReconfigurableShare = 1
	cr.Speedup = 5
	cr.ReconfigDelay = 15
	resCR, err := Run(cr, source(t, tasks))
	if err != nil {
		t.Fatal(err)
	}
	if !(resCR.Makespan < resGPP.Makespan) {
		t.Fatalf("speedup did not shorten makespan: %d vs %d", resCR.Makespan, resGPP.Makespan)
	}
	if !(resCR.AvgWaitPerTask < resGPP.AvgWaitPerTask) {
		t.Fatalf("speedup did not cut waits: %v vs %v", resCR.AvgWaitPerTask, resGPP.AvgWaitPerTask)
	}
}

func TestRunEmptySource(t *testing.T) {
	res, err := Run(baseParams(2), source(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Tasks != 0 || res.Makespan != 0 || res.AvgWaitPerTask != 0 {
		t.Fatalf("empty run: %+v", res)
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if _, err := Run(Params{}, source(t, nil)); err == nil {
		t.Fatal("invalid params accepted")
	}
}
