// Package gridsim implements fixed-capacity scheduling baselines in
// the style of the simulators the paper positions DReAMSim against
// (§II related work): GridSim models resources as General-Purpose
// Processors "with fixed computing capacities for every simulation
// run", and CRGridSim extends it with reconfigurable elements whose
// only reconfiguration parameter is "a speedup factor of a
// reconfigurable element over a GPP".
//
// The baselines consume the same task stream as DReAMSim, which lets
// experiments contrast what a capacity-only model predicts with what
// the area-aware DReAMSim model shows — the paper's motivation:
// "these simulation tools can not be modified to add reconfigurability
// of nodes ... many other significant parameters, such as area
// utilization, reconfigurability, reconfiguration delay ... were not
// considered."
package gridsim

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

// Resource is one fixed-capacity processing element.
type Resource struct {
	// No is the resource number.
	No int
	// Speed is the fixed computing capacity relative to the reference
	// GPP (1.0 = reference). A task needing W reference-ticks runs in
	// W/Speed ticks here.
	Speed float64
	// Reconfigurable marks a CRGridSim-style element: faster by the
	// speedup factor, but charged ReconfigDelay whenever it switches
	// to a task preferring a different function.
	Reconfigurable bool
	// ReconfigDelay is the flat function-switch cost (CRGridSim has
	// no area model, so the delay is the whole reconfiguration story).
	ReconfigDelay int64

	// Dynamic state.
	availableAt int64
	currentFunc int
	busyTime    int64
	switches    int64
}

// Params configures a baseline run.
type Params struct {
	// Resources is the processing-element count.
	Resources int
	// SpeedLow/SpeedHigh bound the fixed GPP capacities (relative to
	// the reference processor; GridSim's heterogeneous MIPS ratings).
	SpeedLow, SpeedHigh float64
	// ReconfigurableShare is the fraction of resources that are
	// CRGridSim-style reconfigurable elements (0 = pure GridSim).
	ReconfigurableShare float64
	// Speedup is the CRGridSim speedup factor of reconfigurable
	// elements over their GPP capacity.
	Speedup float64
	// ReconfigDelay is the function-switch cost of reconfigurable
	// elements, in ticks.
	ReconfigDelay int64
	// Seed drives resource generation.
	Seed uint64
}

// Validate reports the first incoherent parameter.
func (p *Params) Validate() error {
	switch {
	case p.Resources < 1:
		return fmt.Errorf("gridsim: resource count %d < 1", p.Resources)
	case p.SpeedLow <= 0 || p.SpeedHigh < p.SpeedLow:
		return fmt.Errorf("gridsim: invalid speed range [%v,%v]", p.SpeedLow, p.SpeedHigh)
	case p.ReconfigurableShare < 0 || p.ReconfigurableShare > 1:
		return fmt.Errorf("gridsim: reconfigurable share %v outside [0,1]", p.ReconfigurableShare)
	case p.ReconfigurableShare > 0 && p.Speedup <= 0:
		return fmt.Errorf("gridsim: reconfigurable elements need a positive speedup")
	case p.ReconfigDelay < 0:
		return fmt.Errorf("gridsim: negative reconfiguration delay")
	}
	return nil
}

// Result carries the baseline's outcome in DReAMSim-comparable units.
type Result struct {
	Tasks             int64
	Makespan          int64
	AvgWaitPerTask    float64
	AvgTurnaround     float64
	TotalSwitches     int64
	AvgUtilization    float64 // busy time / (resources × makespan)
	ReconfigResources int
}

// GenResources builds the resource population.
func GenResources(r *rng.RNG, p *Params) ([]*Resource, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := make([]*Resource, p.Resources)
	for i := range out {
		speed := p.SpeedLow + r.Float64()*(p.SpeedHigh-p.SpeedLow)
		res := &Resource{No: i, Speed: speed, currentFunc: -1}
		if r.Bool(p.ReconfigurableShare) {
			res.Reconfigurable = true
			res.Speed *= p.Speedup
			res.ReconfigDelay = p.ReconfigDelay
		}
		out[i] = res
	}
	return out, nil
}

// Run schedules the task stream FCFS onto the resource pool: each
// task goes to the resource finishing it earliest (GridSim-style
// space sharing; no area constraints, any resource runs any task).
// Task t_required is interpreted as work on the reference GPP.
func Run(p Params, src workload.TaskSource) (Result, error) {
	r := rng.New(p.Seed)
	resources, err := GenResources(r, &p)
	if err != nil {
		return Result{}, err
	}
	// The baseline never retains a task past its scheduling decision,
	// so pooled sources stream through in O(1) task memory.
	recycle, _ := src.(workload.Recycler)
	var res Result
	for _, rsrc := range resources {
		if rsrc.Reconfigurable {
			res.ReconfigResources++
		}
	}
	var totalWait, totalTurn float64
	for {
		task, ok := src.Next()
		if !ok {
			break
		}
		res.Tasks++
		best, bestFinish := pick(resources, task)
		start := max64(task.CreateTime, best.availableAt)
		if best.Reconfigurable && best.currentFunc != task.PrefConfig {
			best.switches++
			res.TotalSwitches++
			best.currentFunc = task.PrefConfig
		}
		best.availableAt = bestFinish
		best.busyTime += bestFinish - start
		totalWait += float64(start - task.CreateTime)
		totalTurn += float64(bestFinish - task.CreateTime)
		if bestFinish > res.Makespan {
			res.Makespan = bestFinish
		}
		if recycle != nil {
			recycle.Release(task)
		}
	}
	if res.Tasks > 0 {
		totalN := float64(res.Tasks)
		res.AvgWaitPerTask = totalWait / totalN
		res.AvgTurnaround = totalTurn / totalN
	}
	if res.Makespan > 0 {
		var busy int64
		for _, rsrc := range resources {
			busy += rsrc.busyTime
		}
		res.AvgUtilization = float64(busy) / (float64(len(resources)) * float64(res.Makespan))
	}
	return res, nil
}

// pick returns the resource finishing task earliest, with its finish
// time (earliest-finish-time list scheduling).
func pick(resources []*Resource, task *model.Task) (*Resource, int64) {
	var best *Resource
	var bestFinish int64
	for _, rsrc := range resources {
		start := max64(task.CreateTime, rsrc.availableAt)
		if rsrc.Reconfigurable && rsrc.currentFunc != task.PrefConfig {
			start += rsrc.ReconfigDelay
		}
		run := int64(float64(task.RequiredTime)/rsrc.Speed + 0.5)
		if run < 1 {
			run = 1
		}
		finish := start + run
		if best == nil || finish < bestFinish {
			best, bestFinish = rsrc, finish
		}
	}
	return best, bestFinish
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
