package netmodel

import (
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

func TestValidate(t *testing.T) {
	ok := Model{DelayLow: 1, DelayHigh: 5}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Model{
		{DelayLow: -1, DelayHigh: 5},
		{DelayLow: 5, DelayHigh: 1},
		{BitstreamBandwidth: -1},
		{DataBandwidth: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("accepted %+v", bad)
		}
	}
}

func TestAssignDelays(t *testing.T) {
	m := Model{DelayLow: 3, DelayHigh: 9}
	nodes := []*model.Node{
		model.NewNode(0, 1000, true),
		model.NewNode(1, 1000, true),
		model.NewNode(2, 1000, true),
	}
	m.AssignDelays(rng.New(1), nodes)
	for _, n := range nodes {
		if n.NetworkDelay < 3 || n.NetworkDelay > 9 {
			t.Fatalf("node %d delay %d out of range", n.No, n.NetworkDelay)
		}
	}
}

func TestCommDelay(t *testing.T) {
	n := model.NewNode(0, 1000, true)
	n.NetworkDelay = 7
	task := model.NewTask(0, 500, 1, 100, 0)
	task.Data = 1000

	base := Model{}
	if got := base.CommDelay(n, task); got != 7 {
		t.Fatalf("base comm delay %d, want 7", got)
	}
	withData := Model{DataBandwidth: 300}
	// 7 + ceil(1000/300)=4 -> 11
	if got := withData.CommDelay(n, task); got != 11 {
		t.Fatalf("data comm delay %d, want 11", got)
	}
	task.Data = 0
	if got := withData.CommDelay(n, task); got != 7 {
		t.Fatalf("zero-data comm delay %d, want 7", got)
	}
}

func TestConfigDelay(t *testing.T) {
	n := model.NewNode(0, 1000, true)
	cfg := &model.Config{No: 1, ReqArea: 500, ConfigTime: 15, BSize: 64000}
	base := Model{}
	if got := base.ConfigDelay(n, cfg); got != 15 {
		t.Fatalf("base config delay %d, want 15", got)
	}
	withBS := Model{BitstreamBandwidth: 8000}
	// 15 + ceil(64000/8000)=8 -> 23
	if got := withBS.ConfigDelay(n, cfg); got != 23 {
		t.Fatalf("bitstream config delay %d, want 23", got)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{10, 5, 2}, {11, 5, 3}, {1, 5, 1}, {5, 5, 1},
	}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}
