// Package netmodel implements DReAMSim's communication model: the
// per-node network delay (the NetworkDelay node attribute, drawn from
// the NWDLow..NWDHigh range in the paper's DreamSim class) that is
// charged to tasks as t_comm in Eq. 8, and an optional
// bitstream-transfer delay derived from a configuration's BSize and a
// link bandwidth (an extension the paper's model carries the fields
// for but does not exercise).
package netmodel

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// Model computes communication delays for a simulation run.
type Model struct {
	// DelayLow/DelayHigh bound each node's base network delay
	// (timeticks), sampled uniformly per node.
	DelayLow, DelayHigh int64
	// BitstreamBandwidth, when positive, adds BSize/BitstreamBandwidth
	// ticks to the configuration delay of every bitstream send
	// (bytes per timetick). Zero disables the term (paper behaviour).
	BitstreamBandwidth int64
	// DataBandwidth, when positive, adds Task.Data/DataBandwidth ticks
	// to t_comm for task input shipping. Zero disables (paper
	// behaviour: t_comm is the node delay only).
	DataBandwidth int64
}

// Validate reports whether the model parameters are coherent.
func (m *Model) Validate() error {
	if m.DelayLow < 0 || m.DelayHigh < m.DelayLow {
		return fmt.Errorf("netmodel: invalid delay range [%d,%d]", m.DelayLow, m.DelayHigh)
	}
	if m.BitstreamBandwidth < 0 || m.DataBandwidth < 0 {
		return fmt.Errorf("netmodel: negative bandwidth")
	}
	return nil
}

// AssignDelays draws and installs a network delay for every node.
func (m *Model) AssignDelays(r *rng.RNG, nodes []*model.Node) {
	for _, n := range nodes {
		n.NetworkDelay = r.Int64Range(m.DelayLow, m.DelayHigh)
	}
}

// CommDelay returns t_comm for sending task to node.
func (m *Model) CommDelay(node *model.Node, task *model.Task) int64 {
	d := node.NetworkDelay
	if m.DataBandwidth > 0 && task.Data > 0 {
		d += ceilDiv(task.Data, m.DataBandwidth)
	}
	return d
}

// ConfigDelay returns the delay of loading cfg onto node: the
// configuration's intrinsic ConfigTime plus any bitstream transfer.
func (m *Model) ConfigDelay(node *model.Node, cfg *model.Config) int64 {
	d := cfg.ConfigTime
	if m.BitstreamBandwidth > 0 && cfg.BSize > 0 {
		d += ceilDiv(cfg.BSize, m.BitstreamBandwidth)
	}
	_ = node
	return d
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}
