package workload

import (
	"fmt"
	"sort"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// This file is the scenario compiler: it lowers a parsed Scenario
// onto the existing TaskSource machinery. Two paths exist:
//
//   - Degenerate scenarios — at most one class, no timeline, no load
//     spikes, uniform/Poisson arrivals — fold their overrides into a
//     Spec copy and return the ordinary Generator. A scenario that
//     merely restates the flag surface therefore reproduces the flag
//     run byte for byte (the legacy equivalence gate).
//
//   - Everything else compiles to a ScenarioSource: one RNG substream
//     and arrival clock per traffic class, merged on the fly by
//     earliest-next-arrival. Class substreams are seeded from a hash
//     of the class NAME, not its position, so adding or reordering
//     classes never perturbs another class's draws.
//
// Either way the result is a lazy, pooled TaskSource: one task in
// flight per Next call, recycled through the PR 5 free list, so a
// streamed scenario run keeps its heap bounded by the live task set.

// ClassedSource is implemented by task sources that partition their
// stream into named traffic classes; emitted tasks carry the class
// index in Task.Class. The core switches per-class accounting on when
// a source reports two or more classes.
type ClassedSource interface {
	TaskSource
	// ClassNames returns the class names in Task.Class index order.
	ClassNames() []string
}

// classSeed derives the seed of a class's RNG substream from the
// task-stream seed base and the class name (FNV-1a), so a substream
// depends only on the run seed and the class's own name — never on
// how many other classes exist or where they appear in the file.
func classSeed(base uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return base ^ h
}

// classState is one traffic class's compiled generation state.
type classState struct {
	name    string
	r       *rng.RNG
	arrival ArrivalKind
	// Arrival-process parameters at the class's thinned rate.
	uniformMax     int64   // uniform: gap ~ U[1, uniformMax]
	rate           float64 // poisson: gap ~ Exp(rate)
	gshape, gscale float64 // gamma
	wshape, wscale float64 // weibull
	// Per-class attribute draws.
	reqLo, reqHi   int64
	dist           DistKind
	areaLo, areaHi int64 // closest-match synthetic area range
	closest        float64
	pool           []*model.Config // preferred-config pool (area-filtered)
	zipf           *rng.Zipf       // non-nil when popularity > 0
	next           int64           // absolute tick of the next arrival
}

// ScenarioSource is the compiled multi-class task stream.
type ScenarioSource struct {
	taskPool
	classes  []classState
	names    []string
	timeline []TimePoint
	spikes   []ScheduledEvent
	nconfigs int // full configurations-list size, for synthetic Cpref numbering
	total    int
	emitted  int
}

// NewScenarioSource compiles a scenario over the run's Spec and
// configurations list. r is the run's task-stream RNG; the degenerate
// path hands it to the Generator untouched, the multi-class path
// consumes exactly one draw from it to seed the class substreams.
// spec carries the resolved run-level knobs (task count, interval,
// default distributions); Spec fields always win over the scenario's
// own tasks/interval lines, which ApplyDefaults folds in beforehand.
func NewScenarioSource(r *rng.RNG, scn *Scenario, spec *Spec, configs []*model.Config) (TaskSource, error) {
	if err := scn.Validate(); err != nil {
		return nil, err
	}
	if degenerate(scn) {
		if len(scn.Classes) == 0 && !scn.Arrival.Set {
			// Nothing to fold: reuse the Spec as-is so a scenario that
			// only schedules events cannot perturb the task stream.
			return NewGenerator(r, spec, configs)
		}
		eff := *spec
		foldScenario(scn, &eff)
		if err := eff.Validate(); err != nil {
			return nil, err
		}
		return NewGenerator(r, &eff, configs)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("workload: scenario source needs a non-empty configurations list")
	}

	classes := scn.Classes
	if len(classes) == 0 {
		// Scenario-wide bursty arrival or timeline with no class
		// blocks: synthesise the single implicit class.
		classes = []ClassSpec{{Name: "all", Fraction: 1, Popularity: -1, ClosestMatch: -1}}
	}
	var totalFrac float64
	for i := range classes {
		totalFrac += classes[i].Fraction
	}
	baseMean := float64(1+spec.NextTaskMaxInterval) / 2

	s := &ScenarioSource{
		classes:  make([]classState, len(classes)),
		names:    make([]string, len(classes)),
		timeline: scn.Timeline,
		nconfigs: len(configs),
		total:    spec.Tasks,
	}
	for _, ev := range scn.Events {
		if ev.Kind == EventSpike {
			s.spikes = append(s.spikes, ev)
		}
	}
	seedBase := r.RandUint64()
	for i := range classes {
		c := &classes[i]
		st := &s.classes[i]
		s.names[i] = c.Name
		st.name = c.Name
		st.r = rng.New(classSeed(seedBase, c.Name))

		// Thinned arrival: each class runs its own clock at its rate
		// fraction of the scenario-wide process, so the merged stream
		// has the spec's overall mean gap.
		mean := baseMean * totalFrac / c.Fraction
		a := c.Arrival
		if !a.Set {
			a = scn.Arrival
		}
		if !a.Set {
			a = ArrivalSpec{Set: true, Kind: spec.Arrival}
		}
		st.arrival = a.Kind
		switch a.Kind {
		case ArrivalPoisson:
			st.rate = 1 / mean
		case ArrivalGamma:
			st.gshape, st.gscale = rng.GammaParams(mean, a.CV)
		case ArrivalWeibull:
			st.wshape, st.wscale = rng.WeibullParams(mean, a.CV)
		default:
			st.uniformMax = int64(2*mean - 1 + 0.5)
			if st.uniformMax < 1 {
				st.uniformMax = 1
			}
		}

		st.reqLo, st.reqHi, st.dist = spec.TaskReqTimeLow, spec.TaskReqTimeHigh, spec.TaskTimeDist
		if c.ReqTimeLow != 0 || c.ReqTimeHigh != 0 {
			st.reqLo, st.reqHi, st.dist = c.ReqTimeLow, c.ReqTimeHigh, c.TimeDist
		}
		st.closest = spec.ClosestMatchPct
		if c.ClosestMatch >= 0 {
			st.closest = c.ClosestMatch
		}
		st.areaLo, st.areaHi = spec.ConfigAreaLow, spec.ConfigAreaHigh
		st.pool = configs
		if c.AreaLow != 0 || c.AreaHigh != 0 {
			st.areaLo, st.areaHi = c.AreaLow, c.AreaHigh
			st.pool = nil
			for _, cfg := range configs {
				if cfg.ReqArea >= c.AreaLow && cfg.ReqArea <= c.AreaHigh {
					st.pool = append(st.pool, cfg)
				}
			}
			if len(st.pool) == 0 {
				return nil, fmt.Errorf("workload: class %q area range [%d,%d] matches no configuration",
					c.Name, c.AreaLow, c.AreaHigh)
			}
		}
		pop := spec.ConfigPopularity
		if c.Popularity >= 0 {
			pop = c.Popularity
		}
		if pop > 0 {
			st.zipf = rng.NewZipf(len(st.pool), pop)
		}
		st.next = s.gap(st, 0)
	}
	return s, nil
}

// degenerate reports whether the scenario adds nothing the plain
// Generator cannot express, so compilation can fold it into a Spec.
func degenerate(scn *Scenario) bool {
	if len(scn.Classes) > 1 || len(scn.Timeline) > 0 || scn.hasSpikes() {
		return false
	}
	plain := func(a ArrivalSpec) bool {
		return !a.Set || a.Kind == ArrivalUniform || a.Kind == ArrivalPoisson
	}
	if !plain(scn.Arrival) {
		return false
	}
	if len(scn.Classes) == 1 {
		c := &scn.Classes[0]
		if !plain(c.Arrival) || c.AreaLow != 0 || c.AreaHigh != 0 {
			return false
		}
	}
	return true
}

// foldScenario applies a degenerate scenario's overrides to a Spec
// copy (single class and/or plain scenario-level arrival).
func foldScenario(scn *Scenario, spec *Spec) {
	if scn.Arrival.Set {
		spec.Arrival = scn.Arrival.Kind
	}
	if len(scn.Classes) != 1 {
		return
	}
	c := &scn.Classes[0]
	if c.Arrival.Set {
		spec.Arrival = c.Arrival.Kind
	}
	if c.ReqTimeLow != 0 || c.ReqTimeHigh != 0 {
		spec.TaskReqTimeLow, spec.TaskReqTimeHigh = c.ReqTimeLow, c.ReqTimeHigh
		spec.TaskTimeDist = c.TimeDist
	}
	if c.Popularity >= 0 {
		spec.ConfigPopularity = c.Popularity
	}
	if c.ClosestMatch >= 0 {
		spec.ClosestMatchPct = c.ClosestMatch
	}
}

// ClassNames implements ClassedSource.
func (s *ScenarioSource) ClassNames() []string { return s.names }

// Emitted reports how many tasks have been produced so far.
func (s *ScenarioSource) Emitted() int { return s.emitted }

// Next implements TaskSource: emit the class with the earliest next
// arrival (ties to the lower class index), then advance its clock.
func (s *ScenarioSource) Next() (*model.Task, bool) {
	if s.emitted >= s.total {
		return nil, false
	}
	best := 0
	for i := 1; i < len(s.classes); i++ {
		if s.classes[i].next < s.classes[best].next {
			best = i
		}
	}
	st := &s.classes[best]
	now := st.next
	no := s.emitted
	s.emitted++

	var prefNo int
	var needed model.Area
	if st.r.Bool(st.closest) {
		// Cpref absent from the list, forcing C_ClosestMatch — same
		// synthetic-preference scheme as the Generator (offset past
		// the FULL list, so a filtered pool cannot alias a real
		// config), drawn from the class's own stream and area range.
		prefNo = s.nconfigs + st.r.Intn(1<<20)
		needed = st.r.Int64Range(st.areaLo, st.areaHi)
	} else {
		var cfg *model.Config
		if st.zipf != nil {
			cfg = st.pool[st.zipf.Draw(st.r)]
		} else {
			cfg = st.pool[st.r.Intn(len(st.pool))]
		}
		prefNo = cfg.No
		needed = cfg.ReqArea
	}
	task := s.get(no, needed, prefNo, drawReqTime(st.r, st.reqLo, st.reqHi, st.dist), now)
	task.Class = best
	task.Data = needed * 64 // synthetic input payload, as in the Generator
	st.next = now + s.gap(st, now)
	return task, true
}

// gap draws the class's next inter-arrival gap at absolute tick at,
// dividing the base draw by the load multiplier in force (timeline ×
// active spikes): a 2x multiplier halves the gaps, doubling the rate.
func (s *ScenarioSource) gap(st *classState, at int64) int64 {
	var raw float64
	switch st.arrival {
	case ArrivalPoisson:
		raw = st.r.ExpRate(st.rate)
	case ArrivalGamma:
		raw = st.r.Gamma(st.gshape, st.gscale)
	case ArrivalWeibull:
		raw = st.r.Weibull(st.wshape, st.wscale)
	default:
		raw = float64(st.r.Int64Range(1, st.uniformMax))
	}
	q := raw / s.mult(at)
	// Clamp before the int64 conversion: a near-zero multiplier must
	// stall the class, not overflow its clock.
	if q > 1e12 {
		q = 1e12
	}
	g := int64(q + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// mult evaluates the load multiplier at a tick: the piecewise-linear
// timeline (flat beyond its ends, 1 when absent) times every spike
// window covering the tick.
func (s *ScenarioSource) mult(at int64) float64 {
	m := 1.0
	if n := len(s.timeline); n > 0 {
		tl := s.timeline
		switch {
		case at <= tl[0].At:
			m = tl[0].Mult
		case at >= tl[n-1].At:
			m = tl[n-1].Mult
		default:
			i := sort.Search(n, func(j int) bool { return tl[j].At >= at })
			a, b := tl[i-1], tl[i]
			f := float64(at-a.At) / float64(b.At-a.At)
			m = a.Mult + f*(b.Mult-a.Mult)
		}
	}
	for _, ev := range s.spikes {
		if at >= ev.Start && at < ev.End {
			m *= ev.Mult
		}
	}
	return m
}
