package workload

import (
	"bytes"
	"testing"
)

// FuzzParseSWF feeds arbitrary bytes through the SWF trace parser:
// it must never panic, and on success the returned tasks must be
// well-formed replay input for the simulator (submit-sorted, unique,
// positive run times, areas inside the mapping clamp) with
// dependencies that reference earlier jobs only.
func FuzzParseSWF(f *testing.F) {
	f.Add([]byte("; Version: 2.2\n1 0 -1 10 4 -1 -1 -1 -1 -1 1 1 1 1 1 1 -1 -1\n"))
	f.Add([]byte("1 5 0 7 2 0 0 0 0 0 1 0 0 0 0 0 -1 0\n" +
		"2 6 0 7 64 0 0 0 0 0 1 0 0 0 0 0 1 0\n"))
	f.Add([]byte("1 0 0 1 1 0 0 0 0 0 1 0 0 0 0 0 0 0"))
	f.Add([]byte("not an swf line\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m := SWFMapping{KeepDependencies: true}
		tasks, deps, err := ParseSWF(bytes.NewReader(data), m)
		if err != nil {
			return // malformed input is rejected, not replayed
		}
		if len(tasks) == 0 {
			t.Fatal("ParseSWF succeeded with zero tasks")
		}
		seen := map[int]bool{}
		last := int64(-1)
		for _, task := range tasks {
			if seen[task.No] {
				t.Fatalf("duplicate task number %d", task.No)
			}
			seen[task.No] = true
			if task.CreateTime < 0 || task.CreateTime < last {
				t.Fatalf("task %d submit %d not sorted (prev %d)",
					task.No, task.CreateTime, last)
			}
			last = task.CreateTime
			if task.RequiredTime <= 0 {
				t.Fatalf("task %d has non-positive run time %d", task.No, task.RequiredTime)
			}
			if task.NeededArea < 200 || task.NeededArea > 2000 {
				t.Fatalf("task %d area %d outside mapping clamp", task.No, task.NeededArea)
			}
			if task.PrefConfig < 0 || task.PrefConfig >= 50 {
				t.Fatalf("task %d preferred config %d outside default range", task.No, task.PrefConfig)
			}
		}
		for child, parents := range deps {
			if !seen[child] {
				t.Fatalf("dependency child %d is not a parsed task", child)
			}
			for _, p := range parents {
				if !seen[p] {
					t.Fatalf("task %d depends on unknown job %d", child, p)
				}
				if p == child {
					t.Fatalf("task %d depends on itself", child)
				}
			}
		}
	})
}
