package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dreamsim/internal/model"
)

// SWF support: the Standard Workload Format of the Parallel Workloads
// Archive (Feitelson et al.) is the de-facto interchange format for
// recorded cluster/grid traces — exactly the "real workloads and
// realistic scenarios" the paper's input subsystem anticipates and
// §VII promises to evaluate. ParseSWF converts an SWF log into
// DReAMSim tasks (and precedence constraints, which SWF carries in
// field 17).
//
// SWF records are lines of 18 whitespace-separated numbers:
//
//	 1 job number        7 used memory      13 group id
//	 2 submit time [s]   8 requested procs  14 executable number
//	 3 wait time [s]     9 requested time   15 queue number
//	 4 run time [s]     10 requested memory 16 partition number
//	 5 allocated procs  11 completed status 17 preceding job number
//	 6 avg cpu time     12 user id          18 think time
//
// Comment/header lines start with ';'. Missing values are -1.

// SWFMapping controls how SWF jobs become DReAMSim tasks.
type SWFMapping struct {
	// TicksPerSecond scales SWF seconds into timeticks (default 1).
	TicksPerSecond int64
	// AreaPerProc converts a job's processor count into needed fabric
	// area (default 100 area units per processor).
	AreaPerProc int64
	// MinArea/MaxArea clamp the derived area into the configuration
	// range so every job maps onto some configuration (defaults
	// 200/2000, the Table II configuration area range).
	MinArea, MaxArea int64
	// Configs maps executable numbers onto the configurations list:
	// PrefConfig = executable % Configs (default 50). Jobs without an
	// executable number hash their job number instead.
	Configs int
	// MaxJobs caps how many jobs to convert (0 = all).
	MaxJobs int
	// KeepDependencies converts SWF field 17 (preceding job) into
	// task dependencies.
	KeepDependencies bool
}

// withDefaults fills unset mapping fields.
func (m SWFMapping) withDefaults() SWFMapping {
	if m.TicksPerSecond <= 0 {
		m.TicksPerSecond = 1
	}
	if m.AreaPerProc <= 0 {
		m.AreaPerProc = 100
	}
	if m.MinArea <= 0 {
		m.MinArea = 200
	}
	if m.MaxArea <= 0 {
		m.MaxArea = 2000
	}
	if m.Configs <= 0 {
		m.Configs = 50
	}
	return m
}

// SWFJob is one parsed SWF record (fields DReAMSim consumes).
type SWFJob struct {
	JobNo      int
	Submit     int64
	Run        int64
	Procs      int64
	Executable int64
	Preceding  int64
}

// ParseSWF converts an SWF log into tasks ordered by submit time,
// plus the dependency map derived from the "preceding job" field
// (empty unless KeepDependencies). Jobs with non-positive run time or
// submit time are skipped, as is conventional when replaying SWF.
func ParseSWF(r io.Reader, m SWFMapping) (tasks []*model.Task, deps map[int][]int, err error) {
	m = m.withDefaults()
	deps = map[int][]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 256*1024), 256*1024)
	line := 0
	seen := map[int]bool{}
	var lastSubmit int64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, ";") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 18 {
			return nil, nil, fmt.Errorf("workload: swf line %d has %d fields, want 18", line, len(fields))
		}
		job, perr := parseSWFJob(fields)
		if perr != nil {
			return nil, nil, fmt.Errorf("workload: swf line %d: %w", line, perr)
		}
		if job.Run <= 0 || job.Submit < 0 {
			continue // cancelled/failed or malformed-in-the-archive job
		}
		if seen[job.JobNo] {
			return nil, nil, fmt.Errorf("workload: swf line %d: duplicate job %d", line, job.JobNo)
		}
		seen[job.JobNo] = true

		submit := job.Submit * m.TicksPerSecond
		if submit < lastSubmit {
			submit = lastSubmit // SWF is submit-sorted by spec; tolerate ties
		}
		lastSubmit = submit

		procs := job.Procs
		if procs <= 0 {
			procs = 1
		}
		area := procs * m.AreaPerProc
		if area < m.MinArea {
			area = m.MinArea
		}
		if area > m.MaxArea {
			area = m.MaxArea
		}
		exe := job.Executable
		if exe < 0 {
			exe = int64(job.JobNo)
		}
		task := model.NewTask(job.JobNo, area, int(exe%int64(m.Configs)),
			job.Run*m.TicksPerSecond, submit)
		task.Data = area * 64
		tasks = append(tasks, task)

		// A job naming itself as predecessor (it happens in archive
		// logs) would deadlock the dependency gate; drop it with the
		// other unresolvable references.
		if m.KeepDependencies && job.Preceding > 0 &&
			int(job.Preceding) != job.JobNo && seen[int(job.Preceding)] {
			deps[job.JobNo] = append(deps[job.JobNo], int(job.Preceding))
		}
		if m.MaxJobs > 0 && len(tasks) >= m.MaxJobs {
			break
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if len(tasks) == 0 {
		return nil, nil, fmt.Errorf("workload: swf input contains no runnable jobs")
	}
	return tasks, deps, nil
}

// parseSWFJob extracts the consumed fields from an 18-field record.
func parseSWFJob(fields []string) (SWFJob, error) {
	var j SWFJob
	var err error
	geti := func(i int) (int64, error) {
		return strconv.ParseInt(fields[i], 10, 64)
	}
	var v int64
	if v, err = geti(0); err != nil {
		return j, fmt.Errorf("job number: %w", err)
	}
	j.JobNo = int(v)
	if j.Submit, err = geti(1); err != nil {
		return j, fmt.Errorf("submit time: %w", err)
	}
	if j.Run, err = geti(3); err != nil {
		return j, fmt.Errorf("run time: %w", err)
	}
	if j.Procs, err = geti(4); err != nil {
		return j, fmt.Errorf("allocated procs: %w", err)
	}
	if j.Executable, err = geti(13); err != nil {
		return j, fmt.Errorf("executable: %w", err)
	}
	if j.Preceding, err = geti(16); err != nil {
		return j, fmt.Errorf("preceding job: %w", err)
	}
	return j, nil
}
