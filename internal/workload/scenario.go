package workload

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dreamsim/internal/fault"
	"dreamsim/internal/rng"
)

// This file implements the scenario DSL: a small line-oriented,
// stdlib-parsed file format that describes multi-class, time-varying
// workloads and compiles onto the existing Spec/TaskSource machinery
// (see scenario_source.go for the compiler). The format is the input
// subsystem's answer to "as many scenarios as you can imagine" (paper
// §III) without a matching flag explosion.
//
// A scenario file is line-oriented; '#' starts a comment, blank lines
// are ignored, and the first significant line must be the directive
// "dreamsim-scenario v1". Example:
//
//	dreamsim-scenario v1
//	name diurnal-burst
//	tasks 20000
//	interval 50
//	arrival gamma 2      # scenario-wide default; cv = 2 is bursty
//
//	class batch
//	  fraction 0.7
//	  arrival poisson
//	  reqtime 1000 100000 lognormal
//	  area 200 1200
//	  popularity 0.8
//	  closest-match 0.1
//	end
//
//	class interactive
//	  fraction 0.3
//	  reqtime 100 2000 uniform
//	end
//
//	timeline               # piecewise-linear rate multipliers
//	  0 0.5
//	  5000 1.5
//	  10000 0.5
//	end
//
//	event spike 2000 2500 3        # x3 arrival rate in [2000,2500)
//	event maintenance 4000 4800 0 9   # nodes 0..9 down for the window
//	event storm 6000 6200 12          # 12 random crashes across the window
//
// ParseScenario is syntax-only (so the fuzzer can round-trip
// semantically absurd specs); Validate holds the semantic rules.

// ScenarioDirective is the mandatory first line of every scenario
// file — a format marker plus version for future evolution.
const ScenarioDirective = "dreamsim-scenario v1"

// MaxScenarioClasses bounds the traffic-class count (sanity cap; the
// per-class substream scheme is O(classes) per emitted task).
const MaxScenarioClasses = 64

// MaxTimelinePoints bounds the load-pattern timeline length.
const MaxTimelinePoints = 4096

// MaxScenarioEvents bounds the scheduled-event list length.
const MaxScenarioEvents = 1024

// ArrivalSpec is an optionally-present arrival process selection. CV
// is the coefficient of variation of the gap distribution and is only
// meaningful for the gamma/weibull kinds (it defaults to 1, which
// makes gamma exactly the Poisson process).
type ArrivalSpec struct {
	Set  bool
	Kind ArrivalKind
	CV   float64
}

// ClassSpec describes one traffic class. Zero/negative sentinel
// values mean "inherit from the run's Spec": ReqTimeLow==0 inherits
// the t_required range and distribution, AreaLow==0 inherits the
// config-area behaviour, Popularity==-1 and ClosestMatch==-1 inherit
// their Spec counterparts.
type ClassSpec struct {
	Name     string
	Fraction float64
	Arrival  ArrivalSpec
	// ReqTimeLow/High bound the class's t_required draw; 0,0 inherits.
	ReqTimeLow, ReqTimeHigh int64
	// TimeDist selects the t_required distribution when the range is
	// set (defaults to uniform).
	TimeDist DistKind
	// AreaLow/High restrict the class's preferred configurations to
	// those with ReqArea inside the range (and bound the synthetic
	// closest-match area draw); 0,0 inherits the full list.
	AreaLow, AreaHigh int64
	// Popularity is the class's Zipf exponent over its config pool
	// (-1 inherits, 0 uniform).
	Popularity float64
	// ClosestMatch is the class's share of tasks whose Cpref is absent
	// from the configurations list (-1 inherits).
	ClosestMatch float64
}

// TimePoint is one knot of the load-pattern timeline: at tick At the
// arrival-rate multiplier is Mult, linearly interpolated between
// knots and held flat outside them.
type TimePoint struct {
	At   int64
	Mult float64
}

// EventKind is the type of a scheduled scenario event.
type EventKind int

const (
	// EventSpike multiplies the arrival rate by Mult over [Start, End).
	EventSpike EventKind = iota
	// EventMaintenance takes nodes [NodeLo, NodeHi] down at Start and
	// recovers them at End — a planned maintenance window.
	EventMaintenance
	// EventStorm injects Count node crashes at ticks spread evenly
	// over [Start, End], victims drawn from a dedicated RNG substream,
	// all recovering at End — a coordinated fault storm.
	EventStorm
)

// String implements fmt.Stringer using the file keywords.
func (k EventKind) String() string {
	switch k {
	case EventSpike:
		return "spike"
	case EventMaintenance:
		return "maintenance"
	case EventStorm:
		return "storm"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// ScheduledEvent is one timed scenario event. Mult is used by spikes,
// NodeLo/NodeHi by maintenance windows, Count by storms.
type ScheduledEvent struct {
	Kind           EventKind
	Start, End     int64
	Mult           float64
	NodeLo, NodeHi int
	Count          int
}

// Scenario is a parsed scenario file. Tasks and Interval are 0 when
// the file does not set them (the run's Spec then governs); Arrival
// is the scenario-wide default process, overridable per class.
type Scenario struct {
	Name     string
	Tasks    int
	Interval int64
	Arrival  ArrivalSpec
	Classes  []ClassSpec
	Timeline []TimePoint
	Events   []ScheduledEvent
}

// MultiClass reports whether the scenario declares two or more
// traffic classes — the switch for per-class accounting and report
// rows (single-class scenarios stay byte-identical to flag runs).
func (s *Scenario) MultiClass() bool { return len(s.Classes) >= 2 }

// HasFaultEvents reports whether any scheduled event lowers onto the
// fault schedule (maintenance windows and storms do; spikes do not).
func (s *Scenario) HasFaultEvents() bool {
	for _, ev := range s.Events {
		if ev.Kind == EventMaintenance || ev.Kind == EventStorm {
			return true
		}
	}
	return false
}

// hasSpikes reports whether any event modulates the arrival rate.
func (s *Scenario) hasSpikes() bool {
	for _, ev := range s.Events {
		if ev.Kind == EventSpike {
			return true
		}
	}
	return false
}

// FaultEvents lowers the scenario's maintenance windows and fault
// storms onto the fault package's scripted-event format. Storm
// victims are drawn from r — a substream split from the run seed only
// when fault events exist, so event-free scenarios consume no extra
// randomness. Node numbers beyond the population are clamped
// (maintenance) or wrapped by the draw (storms use r.Intn(nodes)).
func (s *Scenario) FaultEvents(r *rng.RNG, nodes int) []fault.Event {
	var out []fault.Event
	for _, ev := range s.Events {
		switch ev.Kind {
		case EventMaintenance:
			hi := ev.NodeHi
			if hi >= nodes {
				hi = nodes - 1
			}
			for n := ev.NodeLo; n <= hi; n++ {
				out = append(out, fault.Event{At: ev.Start, Kind: fault.KindCrash, Node: n})
				out = append(out, fault.Event{At: ev.End, Kind: fault.KindRecover, Node: n})
			}
		case EventStorm:
			span := ev.End - ev.Start
			victims := make([]int, 0, ev.Count)
			for k := 0; k < ev.Count; k++ {
				at := ev.Start
				if ev.Count > 1 {
					at += span * int64(k) / int64(ev.Count-1)
				}
				v := r.Intn(nodes)
				out = append(out, fault.Event{At: at, Kind: fault.KindCrash, Node: v})
				victims = append(victims, v)
			}
			recovered := make(map[int]bool, len(victims))
			for _, v := range victims {
				if recovered[v] {
					continue
				}
				recovered[v] = true
				out = append(out, fault.Event{At: ev.End, Kind: fault.KindRecover, Node: v})
			}
		}
	}
	return out
}

// ApplyDefaults copies the scenario's task count, interval and
// (uniform/Poisson) arrival default into a Spec whose corresponding
// knobs are unset — the resolution step between "flag says" and
// "scenario says" at the public-params layer. Explicit flags win.
func (s *Scenario) ApplyDefaults(spec *Spec) {
	if spec.Tasks == 0 && s.Tasks > 0 {
		spec.Tasks = s.Tasks
	}
	if spec.NextTaskMaxInterval == 0 && s.Interval > 0 {
		spec.NextTaskMaxInterval = s.Interval
	}
	if s.Arrival.Set && (s.Arrival.Kind == ArrivalUniform || s.Arrival.Kind == ArrivalPoisson) {
		spec.Arrival = s.Arrival.Kind
	}
}

// ParseScenario parses scenario text. It enforces syntax only —
// line structure, field counts, number formats, duplicate keys —
// and reports errors with 1-based line numbers; semantic coherence
// (ranges, fractions, monotone timelines) lives in Validate so the
// fuzzer can round-trip syntactically-valid-but-absurd specs.
func ParseScenario(text string) (*Scenario, error) {
	p := &scenarioParser{scn: &Scenario{}}
	for _, raw := range strings.Split(text, "\n") {
		p.line++
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if err := p.feed(fields); err != nil {
			return nil, fmt.Errorf("scenario line %d: %w", p.line, err)
		}
	}
	if !p.sawDirective {
		return nil, fmt.Errorf("scenario: missing %q directive", ScenarioDirective)
	}
	if p.state != stateTop {
		return nil, fmt.Errorf("scenario line %d: unterminated %s block (missing \"end\")", p.line, p.state)
	}
	return p.scn, nil
}

type parserState int

const (
	stateTop parserState = iota
	stateClass
	stateTimeline
)

func (s parserState) String() string {
	switch s {
	case stateClass:
		return "class"
	case stateTimeline:
		return "timeline"
	default:
		return "top-level"
	}
}

type scenarioParser struct {
	scn          *Scenario
	line         int
	state        parserState
	sawDirective bool
	topSeen      map[string]bool
	classSeen    map[string]bool
}

func (p *scenarioParser) feed(f []string) error {
	if !p.sawDirective {
		if len(f) == 2 && f[0]+" "+f[1] == ScenarioDirective {
			p.sawDirective = true
			return nil
		}
		return fmt.Errorf("first line must be %q", ScenarioDirective)
	}
	switch p.state {
	case stateClass:
		return p.feedClass(f)
	case stateTimeline:
		return p.feedTimeline(f)
	}
	return p.feedTop(f)
}

// once records a top-level or class key occurrence, rejecting dupes.
func once(seen *map[string]bool, key string) error {
	if *seen == nil {
		*seen = make(map[string]bool)
	}
	if (*seen)[key] {
		return fmt.Errorf("duplicate %q", key)
	}
	(*seen)[key] = true
	return nil
}

func (p *scenarioParser) feedTop(f []string) error {
	switch f[0] {
	case "name":
		if err := once(&p.topSeen, "name"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"name NAME\"")
		}
		p.scn.Name = f[1]
		return nil
	case "tasks":
		if err := once(&p.topSeen, "tasks"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"tasks N\"")
		}
		n, err := strconv.Atoi(f[1])
		if err != nil {
			return fmt.Errorf("bad task count %q", f[1])
		}
		p.scn.Tasks = n
		return nil
	case "interval":
		if err := once(&p.topSeen, "interval"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"interval N\"")
		}
		n, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			return fmt.Errorf("bad interval %q", f[1])
		}
		p.scn.Interval = n
		return nil
	case "arrival":
		if err := once(&p.topSeen, "arrival"); err != nil {
			return err
		}
		a, err := parseArrivalFields(f[1:])
		if err != nil {
			return err
		}
		p.scn.Arrival = a
		return nil
	case "class":
		if len(f) != 2 {
			return fmt.Errorf("want \"class NAME\"")
		}
		p.scn.Classes = append(p.scn.Classes, ClassSpec{
			Name:         f[1],
			Fraction:     1,
			Popularity:   -1,
			ClosestMatch: -1,
		})
		p.state = stateClass
		p.classSeen = nil
		return nil
	case "timeline":
		if err := once(&p.topSeen, "timeline"); err != nil {
			return err
		}
		if len(f) != 1 {
			return fmt.Errorf("timeline block header takes no arguments")
		}
		p.state = stateTimeline
		return nil
	case "event":
		return p.feedEvent(f[1:])
	}
	return fmt.Errorf("unknown keyword %q", f[0])
}

func (p *scenarioParser) feedClass(f []string) error {
	c := &p.scn.Classes[len(p.scn.Classes)-1]
	switch f[0] {
	case "end":
		if len(f) != 1 {
			return fmt.Errorf("\"end\" takes no arguments")
		}
		p.state = stateTop
		return nil
	case "fraction":
		if err := once(&p.classSeen, "fraction"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"fraction F\"")
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fmt.Errorf("bad fraction %q", f[1])
		}
		c.Fraction = v
		return nil
	case "arrival":
		if err := once(&p.classSeen, "arrival"); err != nil {
			return err
		}
		a, err := parseArrivalFields(f[1:])
		if err != nil {
			return err
		}
		c.Arrival = a
		return nil
	case "reqtime":
		if err := once(&p.classSeen, "reqtime"); err != nil {
			return err
		}
		if len(f) != 3 && len(f) != 4 {
			return fmt.Errorf("want \"reqtime LO HI [DIST]\"")
		}
		lo, err1 := strconv.ParseInt(f[1], 10, 64)
		hi, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad reqtime range %q %q", f[1], f[2])
		}
		c.ReqTimeLow, c.ReqTimeHigh = lo, hi
		if len(f) == 4 {
			d, err := ParseDistKind(f[3])
			if err != nil {
				return err
			}
			c.TimeDist = d
		}
		return nil
	case "area":
		if err := once(&p.classSeen, "area"); err != nil {
			return err
		}
		if len(f) != 3 {
			return fmt.Errorf("want \"area LO HI\"")
		}
		lo, err1 := strconv.ParseInt(f[1], 10, 64)
		hi, err2 := strconv.ParseInt(f[2], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad area range %q %q", f[1], f[2])
		}
		c.AreaLow, c.AreaHigh = lo, hi
		return nil
	case "popularity":
		if err := once(&p.classSeen, "popularity"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"popularity S\"")
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fmt.Errorf("bad popularity %q", f[1])
		}
		c.Popularity = v
		return nil
	case "closest-match":
		if err := once(&p.classSeen, "closest-match"); err != nil {
			return err
		}
		if len(f) != 2 {
			return fmt.Errorf("want \"closest-match F\"")
		}
		v, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return fmt.Errorf("bad closest-match %q", f[1])
		}
		c.ClosestMatch = v
		return nil
	}
	return fmt.Errorf("unknown class keyword %q", f[0])
}

func (p *scenarioParser) feedTimeline(f []string) error {
	if f[0] == "end" {
		if len(f) != 1 {
			return fmt.Errorf("\"end\" takes no arguments")
		}
		p.state = stateTop
		return nil
	}
	if len(f) != 2 {
		return fmt.Errorf("want \"TICK MULT\" timeline point")
	}
	at, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return fmt.Errorf("bad timeline tick %q", f[0])
	}
	mult, err := strconv.ParseFloat(f[1], 64)
	if err != nil {
		return fmt.Errorf("bad timeline multiplier %q", f[1])
	}
	p.scn.Timeline = append(p.scn.Timeline, TimePoint{At: at, Mult: mult})
	return nil
}

func (p *scenarioParser) feedEvent(f []string) error {
	if len(f) == 0 {
		return fmt.Errorf("want \"event KIND ...\"")
	}
	ev := ScheduledEvent{}
	var err error
	switch f[0] {
	case "spike":
		if len(f) != 4 {
			return fmt.Errorf("want \"event spike START END MULT\"")
		}
		ev.Kind = EventSpike
		if ev.Start, ev.End, err = parseTickPair(f[1], f[2]); err != nil {
			return err
		}
		if ev.Mult, err = strconv.ParseFloat(f[3], 64); err != nil {
			return fmt.Errorf("bad spike multiplier %q", f[3])
		}
	case "maintenance":
		if len(f) != 5 {
			return fmt.Errorf("want \"event maintenance START END NODELO NODEHI\"")
		}
		ev.Kind = EventMaintenance
		if ev.Start, ev.End, err = parseTickPair(f[1], f[2]); err != nil {
			return err
		}
		if ev.NodeLo, err = strconv.Atoi(f[3]); err != nil {
			return fmt.Errorf("bad node %q", f[3])
		}
		if ev.NodeHi, err = strconv.Atoi(f[4]); err != nil {
			return fmt.Errorf("bad node %q", f[4])
		}
	case "storm":
		if len(f) != 4 {
			return fmt.Errorf("want \"event storm START END COUNT\"")
		}
		ev.Kind = EventStorm
		if ev.Start, ev.End, err = parseTickPair(f[1], f[2]); err != nil {
			return err
		}
		if ev.Count, err = strconv.Atoi(f[3]); err != nil {
			return fmt.Errorf("bad storm count %q", f[3])
		}
	default:
		return fmt.Errorf("unknown event kind %q", f[0])
	}
	p.scn.Events = append(p.scn.Events, ev)
	return nil
}

func parseTickPair(a, b string) (start, end int64, err error) {
	if start, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad tick %q", a)
	}
	if end, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad tick %q", b)
	}
	return start, end, nil
}

func parseArrivalFields(f []string) (ArrivalSpec, error) {
	if len(f) != 1 && len(f) != 2 {
		return ArrivalSpec{}, fmt.Errorf("want \"arrival KIND [CV]\"")
	}
	kind, err := ParseArrivalKind(f[0])
	if err != nil {
		return ArrivalSpec{}, err
	}
	a := ArrivalSpec{Set: true, Kind: kind}
	if kind == ArrivalGamma || kind == ArrivalWeibull {
		a.CV = 1
		if len(f) == 2 {
			cv, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return ArrivalSpec{}, fmt.Errorf("bad arrival cv %q", f[1])
			}
			a.CV = cv
		}
	} else if len(f) == 2 {
		return ArrivalSpec{}, fmt.Errorf("arrival %s takes no cv", kind)
	}
	return a, nil
}

// FormatScenario renders a scenario in canonical form: fixed key
// order, one space between fields, two-space block indentation,
// unset knobs omitted. Format∘Parse is idempotent — the property the
// fuzzer checks — and Parse(FormatScenario(s)) reproduces s for any
// parseable s.
func FormatScenario(s *Scenario) string {
	var b strings.Builder
	b.WriteString(ScenarioDirective)
	b.WriteByte('\n')
	if s.Name != "" {
		fmt.Fprintf(&b, "name %s\n", s.Name)
	}
	if s.Tasks > 0 {
		fmt.Fprintf(&b, "tasks %d\n", s.Tasks)
	}
	if s.Interval > 0 {
		fmt.Fprintf(&b, "interval %d\n", s.Interval)
	}
	formatArrival(&b, "", s.Arrival)
	for _, c := range s.Classes {
		fmt.Fprintf(&b, "class %s\n", c.Name)
		fmt.Fprintf(&b, "  fraction %s\n", ftoa(c.Fraction))
		formatArrival(&b, "  ", c.Arrival)
		if c.ReqTimeLow != 0 || c.ReqTimeHigh != 0 {
			fmt.Fprintf(&b, "  reqtime %d %d %s\n", c.ReqTimeLow, c.ReqTimeHigh, c.TimeDist)
		}
		if c.AreaLow != 0 || c.AreaHigh != 0 {
			fmt.Fprintf(&b, "  area %d %d\n", c.AreaLow, c.AreaHigh)
		}
		if c.Popularity >= 0 {
			fmt.Fprintf(&b, "  popularity %s\n", ftoa(c.Popularity))
		}
		if c.ClosestMatch >= 0 {
			fmt.Fprintf(&b, "  closest-match %s\n", ftoa(c.ClosestMatch))
		}
		b.WriteString("end\n")
	}
	if len(s.Timeline) > 0 {
		b.WriteString("timeline\n")
		for _, tp := range s.Timeline {
			fmt.Fprintf(&b, "  %d %s\n", tp.At, ftoa(tp.Mult))
		}
		b.WriteString("end\n")
	}
	for _, ev := range s.Events {
		switch ev.Kind {
		case EventSpike:
			fmt.Fprintf(&b, "event spike %d %d %s\n", ev.Start, ev.End, ftoa(ev.Mult))
		case EventMaintenance:
			fmt.Fprintf(&b, "event maintenance %d %d %d %d\n", ev.Start, ev.End, ev.NodeLo, ev.NodeHi)
		case EventStorm:
			fmt.Fprintf(&b, "event storm %d %d %d\n", ev.Start, ev.End, ev.Count)
		}
	}
	return b.String()
}

// ftoa renders a float in shortest exact round-trip form.
func ftoa(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func formatArrival(b *strings.Builder, indent string, a ArrivalSpec) {
	if !a.Set {
		return
	}
	if a.Kind == ArrivalGamma || a.Kind == ArrivalWeibull {
		fmt.Fprintf(b, "%sarrival %s %s\n", indent, a.Kind, ftoa(a.CV))
	} else {
		fmt.Fprintf(b, "%sarrival %s\n", indent, a.Kind)
	}
}

// validName reports whether a scenario or class name is safe for XML
// attributes, report rows and filenames.
func validName(s string) bool {
	if s == "" || len(s) > 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '_', c == '-', c == '.':
		default:
			return false
		}
	}
	return true
}

// validArrival checks an arrival selection's cv coherence.
func validArrival(a ArrivalSpec, where string) error {
	if !a.Set {
		return nil
	}
	if a.Kind == ArrivalGamma || a.Kind == ArrivalWeibull {
		if math.IsNaN(a.CV) || math.IsInf(a.CV, 0) || a.CV < 0.01 || a.CV > 100 {
			return fmt.Errorf("scenario: %s arrival cv %v outside [0.01, 100]", where, a.CV)
		}
	}
	return nil
}

// Validate reports the first semantically incoherent field, or nil.
// Parse-level defaults (fraction 1, popularity/closest-match -1) are
// legal; everything a parser cannot know without context is checked
// here.
func (s *Scenario) Validate() error {
	if s.Name != "" && !validName(s.Name) {
		return fmt.Errorf("scenario: invalid name %q (want [A-Za-z0-9._-]{1,64})", s.Name)
	}
	if s.Tasks < 0 {
		return fmt.Errorf("scenario: negative task count %d", s.Tasks)
	}
	if s.Interval < 0 {
		return fmt.Errorf("scenario: negative interval %d", s.Interval)
	}
	if err := validArrival(s.Arrival, "scenario"); err != nil {
		return err
	}
	if len(s.Classes) > MaxScenarioClasses {
		return fmt.Errorf("scenario: %d classes exceeds the %d cap", len(s.Classes), MaxScenarioClasses)
	}
	names := make(map[string]bool, len(s.Classes))
	for i := range s.Classes {
		c := &s.Classes[i]
		if !validName(c.Name) {
			return fmt.Errorf("scenario: invalid class name %q (want [A-Za-z0-9._-]{1,64})", c.Name)
		}
		if names[c.Name] {
			return fmt.Errorf("scenario: duplicate class %q", c.Name)
		}
		names[c.Name] = true
		if math.IsNaN(c.Fraction) || math.IsInf(c.Fraction, 0) || c.Fraction <= 0 {
			return fmt.Errorf("scenario: class %q fraction %v not positive", c.Name, c.Fraction)
		}
		if err := validArrival(c.Arrival, "class "+c.Name); err != nil {
			return err
		}
		if c.ReqTimeLow != 0 || c.ReqTimeHigh != 0 {
			if c.ReqTimeLow < 1 || c.ReqTimeHigh < c.ReqTimeLow {
				return fmt.Errorf("scenario: class %q reqtime range [%d,%d] invalid", c.Name, c.ReqTimeLow, c.ReqTimeHigh)
			}
		}
		if c.TimeDist < DistUniform || c.TimeDist > DistPareto {
			return fmt.Errorf("scenario: class %q unknown time distribution %d", c.Name, int(c.TimeDist))
		}
		if c.AreaLow != 0 || c.AreaHigh != 0 {
			if c.AreaLow < 1 || c.AreaHigh < c.AreaLow {
				return fmt.Errorf("scenario: class %q area range [%d,%d] invalid", c.Name, c.AreaLow, c.AreaHigh)
			}
		}
		if c.Popularity != -1 && (math.IsNaN(c.Popularity) || math.IsInf(c.Popularity, 0) || c.Popularity < 0) {
			return fmt.Errorf("scenario: class %q popularity %v invalid", c.Name, c.Popularity)
		}
		if c.ClosestMatch != -1 && (math.IsNaN(c.ClosestMatch) || math.IsInf(c.ClosestMatch, 0) ||
			c.ClosestMatch < 0 || c.ClosestMatch > 1) {
			return fmt.Errorf("scenario: class %q closest-match %v outside [0,1]", c.Name, c.ClosestMatch)
		}
	}
	if len(s.Timeline) > MaxTimelinePoints {
		return fmt.Errorf("scenario: %d timeline points exceed the %d cap", len(s.Timeline), MaxTimelinePoints)
	}
	for i, tp := range s.Timeline {
		if tp.At < 0 {
			return fmt.Errorf("scenario: timeline point %d at negative tick %d", i, tp.At)
		}
		if i > 0 && tp.At <= s.Timeline[i-1].At {
			return fmt.Errorf("scenario: timeline ticks not strictly increasing at point %d", i)
		}
		if math.IsNaN(tp.Mult) || math.IsInf(tp.Mult, 0) || tp.Mult <= 0 || tp.Mult > 1e6 {
			return fmt.Errorf("scenario: timeline multiplier %v at tick %d outside (0, 1e6]", tp.Mult, tp.At)
		}
	}
	if len(s.Events) > MaxScenarioEvents {
		return fmt.Errorf("scenario: %d events exceed the %d cap", len(s.Events), MaxScenarioEvents)
	}
	for i, ev := range s.Events {
		if ev.Start < 0 || ev.End < ev.Start {
			return fmt.Errorf("scenario: event %d window [%d,%d] invalid", i, ev.Start, ev.End)
		}
		switch ev.Kind {
		case EventSpike:
			if math.IsNaN(ev.Mult) || math.IsInf(ev.Mult, 0) || ev.Mult <= 0 || ev.Mult > 1e6 {
				return fmt.Errorf("scenario: event %d spike multiplier %v outside (0, 1e6]", i, ev.Mult)
			}
			if ev.End <= ev.Start {
				return fmt.Errorf("scenario: event %d spike window [%d,%d) empty", i, ev.Start, ev.End)
			}
		case EventMaintenance:
			if ev.NodeLo < 0 || ev.NodeHi < ev.NodeLo {
				return fmt.Errorf("scenario: event %d node range [%d,%d] invalid", i, ev.NodeLo, ev.NodeHi)
			}
			if ev.End <= ev.Start {
				return fmt.Errorf("scenario: event %d maintenance window [%d,%d) empty", i, ev.Start, ev.End)
			}
		case EventStorm:
			if ev.Count < 1 || ev.Count > 100000 {
				return fmt.Errorf("scenario: event %d storm count %d outside [1, 100000]", i, ev.Count)
			}
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %d", i, int(ev.Kind))
		}
	}
	return nil
}

// ScenarioFromSpec lifts a flag-level Spec into the scenario format:
// one class named "all" repeating the spec's per-task knobs, the
// spec's arrival process at scenario level. The result compiles back
// onto a Generator that is byte-identical to running the Spec
// directly — the equivalence gate the legacy surface is tested
// against.
func ScenarioFromSpec(spec *Spec) *Scenario {
	return &Scenario{
		Tasks:    spec.Tasks,
		Interval: spec.NextTaskMaxInterval,
		Arrival:  ArrivalSpec{Set: true, Kind: spec.Arrival},
		Classes: []ClassSpec{{
			Name:         "all",
			Fraction:     1,
			ReqTimeLow:   spec.TaskReqTimeLow,
			ReqTimeHigh:  spec.TaskReqTimeHigh,
			TimeDist:     spec.TaskTimeDist,
			Popularity:   spec.ConfigPopularity,
			ClosestMatch: spec.ClosestMatchPct,
		}},
	}
}
