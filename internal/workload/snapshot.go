package workload

import (
	"fmt"

	"dreamsim/internal/snapshot"
)

// This file encodes and restores the dynamic state of the synthetic
// task sources for the checkpoint subsystem. Everything structural —
// spec, configuration pools, zipf tables, timeline, spikes — is
// rebuilt deterministically from the run parameters by the normal
// constructors; a snapshot carries only the cursors that move during
// a run: RNG stream positions, arrival clocks, the emitted count and
// the pool's recycled counter. Free lists are deliberately NOT
// captured: they affect allocation, never the emitted stream, so a
// restored source simply starts with an empty pool.

// EncodeState appends the Generator's dynamic state.
func (g *Generator) EncodeState(w *snapshot.Writer) {
	s0, s1 := g.r.State()
	w.U64(s0)
	w.U64(s1)
	w.I64(g.now)
	w.Int(g.emitted)
	w.I64(g.recycled)
}

// RestoreState overwrites the Generator's dynamic state from a
// snapshot. The generator must have been freshly built with the same
// spec and configuration list.
func (g *Generator) RestoreState(r *snapshot.Reader) error {
	s0 := r.U64()
	s1 := r.U64()
	now := r.I64()
	emitted := r.Int()
	recycled := r.I64()
	if err := r.Err(); err != nil {
		return err
	}
	if emitted < 0 || emitted > g.spec.Tasks {
		return fmt.Errorf("%w: generator emitted %d of %d tasks", snapshot.ErrCorrupt, emitted, g.spec.Tasks)
	}
	if now < 0 || recycled < 0 {
		return fmt.Errorf("%w: negative generator cursor", snapshot.ErrCorrupt)
	}
	g.r.SetState(s0, s1)
	g.now = now
	g.emitted = emitted
	g.recycled = recycled
	return nil
}

// EncodeState appends the ScenarioSource's dynamic state: the global
// emit cursor plus each class's RNG position and next-arrival clock,
// in class-index order (which is file order — deterministic).
func (s *ScenarioSource) EncodeState(w *snapshot.Writer) {
	w.Int(s.emitted)
	w.I64(s.recycled)
	w.Int(len(s.classes))
	for i := range s.classes {
		st := &s.classes[i]
		s0, s1 := st.r.State()
		w.U64(s0)
		w.U64(s1)
		w.I64(st.next)
	}
}

// RestoreState overwrites the ScenarioSource's dynamic state from a
// snapshot. The source must have been freshly compiled from the same
// scenario, spec and configuration list.
func (s *ScenarioSource) RestoreState(r *snapshot.Reader) error {
	emitted := r.Int()
	recycled := r.I64()
	n := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if n != len(s.classes) {
		return fmt.Errorf("%w: snapshot has %d scenario classes, source has %d",
			snapshot.ErrCorrupt, n, len(s.classes))
	}
	if emitted < 0 || emitted > s.total || recycled < 0 {
		return fmt.Errorf("%w: scenario emit cursor %d of %d tasks", snapshot.ErrCorrupt, emitted, s.total)
	}
	for i := range s.classes {
		st := &s.classes[i]
		s0 := r.U64()
		s1 := r.U64()
		next := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		if next < 0 {
			return fmt.Errorf("%w: class %q arrival clock %d", snapshot.ErrCorrupt, st.name, next)
		}
		st.r.SetState(s0, s1)
		st.next = next
	}
	s.emitted = emitted
	s.recycled = recycled
	return nil
}
