package workload

import "dreamsim/internal/model"

// Recycler is implemented by task sources that maintain a free list
// of task structs. A caller that fully owns a task whose lifecycle
// has ended (completed, discarded or lost, with no observer retaining
// the pointer) may Release it back; subsequent Next calls then reuse
// the memory instead of allocating. Releasing is always optional and
// never changes the emitted stream — a streamed run is byte-identical
// with or without recycling, only its allocation profile differs.
// This is what keeps a large run's heap O(live tasks) instead of
// O(all tasks): the core releases every terminal task when
// core.Params.Stream is set.
type Recycler interface {
	Release(*model.Task)
}

// taskPool is the LIFO free list behind the pooled sources
// (Generator, TraceReader). It is not safe for concurrent use; a
// source and its releasing consumer live on one goroutine.
type taskPool struct {
	free     []*model.Task
	recycled int64
}

// get returns a recycled task re-initialised with NewTask semantics,
// or a fresh allocation when the pool is empty.
func (p *taskPool) get(no int, area model.Area, pref int, required, create int64) *model.Task {
	n := len(p.free)
	if n == 0 {
		return model.NewTask(no, area, pref, required, create)
	}
	t := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	p.recycled++
	return t.Init(no, area, pref, required, create)
}

// Recycled counts how many Next calls were served from the free list
// instead of allocating — observability for the streaming engine's
// memory claims (and its tests).
func (p *taskPool) Recycled() int64 { return p.recycled }

// Release implements Recycler. Releasing nil is a no-op.
func (p *taskPool) Release(t *model.Task) {
	if t == nil {
		return
	}
	p.free = append(p.free, t)
}
