package workload

import (
	"reflect"
	"strings"
	"testing"

	"dreamsim/internal/fault"
	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// testConfigs builds a deterministic configurations list spanning the
// paper's area range.
func testConfigs(n int) []*model.Config {
	out := make([]*model.Config, n)
	for i := range out {
		out[i] = &model.Config{No: i, ReqArea: model.Area(200 + i*1800/max(n-1, 1)), ConfigTime: 15}
	}
	return out
}

// testSpec is a valid paper-shaped Spec for compiler tests.
func testSpec(tasks int) Spec {
	return Spec{
		Tasks:               tasks,
		NextTaskMaxInterval: 50,
		TaskReqTimeLow:      100,
		TaskReqTimeHigh:     100000,
		ClosestMatchPct:     0.15,
		Configs:             50,
		ConfigAreaLow:       200,
		ConfigAreaHigh:      2000,
		ConfigTimeLow:       10,
		ConfigTimeHigh:      20,
		Nodes:               100,
		NodeAreaLow:         1000,
		NodeAreaHigh:        4000,
	}
}

func TestParseScenarioFull(t *testing.T) {
	scn, err := ParseScenario(`# a comment
dreamsim-scenario v1
name full-demo
tasks 500
interval 40
arrival gamma 2   # bursty default

class batch
  fraction 0.7
  arrival poisson
  reqtime 1000 100000 lognormal
  area 200 1200
  popularity 0.8
  closest-match 0.1
end

class fast
end

timeline
  0 0.5
  100 1.5
end

event spike 10 20 3
event maintenance 30 40 0 9
event storm 50 60 12
`)
	if err != nil {
		t.Fatal(err)
	}
	want := &Scenario{
		Name:     "full-demo",
		Tasks:    500,
		Interval: 40,
		Arrival:  ArrivalSpec{Set: true, Kind: ArrivalGamma, CV: 2},
		Classes: []ClassSpec{
			{Name: "batch", Fraction: 0.7, Arrival: ArrivalSpec{Set: true, Kind: ArrivalPoisson},
				ReqTimeLow: 1000, ReqTimeHigh: 100000, TimeDist: DistLognormal,
				AreaLow: 200, AreaHigh: 1200, Popularity: 0.8, ClosestMatch: 0.1},
			{Name: "fast", Fraction: 1, Popularity: -1, ClosestMatch: -1},
		},
		Timeline: []TimePoint{{At: 0, Mult: 0.5}, {At: 100, Mult: 1.5}},
		Events: []ScheduledEvent{
			{Kind: EventSpike, Start: 10, End: 20, Mult: 3},
			{Kind: EventMaintenance, Start: 30, End: 40, NodeLo: 0, NodeHi: 9},
			{Kind: EventStorm, Start: 50, End: 60, Count: 12},
		},
	}
	if !reflect.DeepEqual(scn, want) {
		t.Fatalf("parsed scenario:\n%+v\nwant:\n%+v", scn, want)
	}
	if err := scn.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !scn.MultiClass() || !scn.HasFaultEvents() || !scn.hasSpikes() {
		t.Error("MultiClass/HasFaultEvents/hasSpikes misreported")
	}
}

func TestParseScenarioErrors(t *testing.T) {
	cases := map[string]struct{ text, wantErr string }{
		"no-directive":      {"tasks 100\n", "first line must be"},
		"missing-directive": {"", "missing"},
		"dup-key":           {"dreamsim-scenario v1\ntasks 1\ntasks 2\n", `duplicate "tasks"`},
		"bad-number":        {"dreamsim-scenario v1\ntasks many\n", "bad task count"},
		"unknown-keyword":   {"dreamsim-scenario v1\nfoo bar\n", `unknown keyword "foo"`},
		"unterminated":      {"dreamsim-scenario v1\nclass a\n", "unterminated class block"},
		"class-dup":         {"dreamsim-scenario v1\nclass a\n  fraction 1\n  fraction 2\nend\n", `duplicate "fraction"`},
		"cv-on-uniform":     {"dreamsim-scenario v1\narrival uniform 2\n", "takes no cv"},
		"bad-event":         {"dreamsim-scenario v1\nevent quake 1 2 3\n", "unknown event kind"},
		"timeline-arity":    {"dreamsim-scenario v1\ntimeline\n  1 2 3\nend\n", "timeline point"},
		"line-number":       {"dreamsim-scenario v1\n\n\ntasks x\n", "line 4"},
	}
	for name, tc := range cases {
		_, err := ParseScenario(tc.text)
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

func TestScenarioValidateErrors(t *testing.T) {
	valid := func() *Scenario {
		return &Scenario{Classes: []ClassSpec{
			{Name: "a", Fraction: 1, Popularity: -1, ClosestMatch: -1},
		}}
	}
	cases := map[string]struct {
		mutate  func(*Scenario)
		wantErr string
	}{
		"bad-name":      {func(s *Scenario) { s.Name = "no spaces" }, "invalid name"},
		"neg-tasks":     {func(s *Scenario) { s.Tasks = -1 }, "negative task count"},
		"bad-class":     {func(s *Scenario) { s.Classes[0].Name = "x/y" }, "invalid class name"},
		"dup-class":     {func(s *Scenario) { s.Classes = append(s.Classes, s.Classes[0]) }, "duplicate class"},
		"zero-fraction": {func(s *Scenario) { s.Classes[0].Fraction = 0 }, "not positive"},
		"cv-range":      {func(s *Scenario) { s.Arrival = ArrivalSpec{Set: true, Kind: ArrivalGamma, CV: 500} }, "outside [0.01, 100]"},
		"reqtime-range": {func(s *Scenario) { s.Classes[0].ReqTimeLow, s.Classes[0].ReqTimeHigh = 10, 5 }, "reqtime range"},
		"area-range":    {func(s *Scenario) { s.Classes[0].AreaLow, s.Classes[0].AreaHigh = 9, 3 }, "area range"},
		"closest-range": {func(s *Scenario) { s.Classes[0].ClosestMatch = 1.5 }, "closest-match"},
		"timeline-order": {func(s *Scenario) {
			s.Timeline = []TimePoint{{At: 10, Mult: 1}, {At: 10, Mult: 2}}
		}, "strictly increasing"},
		"timeline-mult": {func(s *Scenario) { s.Timeline = []TimePoint{{At: 0, Mult: 0}} }, "multiplier"},
		"spike-empty": {func(s *Scenario) {
			s.Events = []ScheduledEvent{{Kind: EventSpike, Start: 5, End: 5, Mult: 2}}
		}, "empty"},
		"storm-count": {func(s *Scenario) {
			s.Events = []ScheduledEvent{{Kind: EventStorm, Start: 0, End: 1, Count: 0}}
		}, "storm count"},
		"maint-nodes": {func(s *Scenario) {
			s.Events = []ScheduledEvent{{Kind: EventMaintenance, Start: 0, End: 5, NodeLo: 7, NodeHi: 2}}
		}, "node range"},
	}
	for name, tc := range cases {
		s := valid()
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: base scenario invalid: %v", name, err)
		}
		tc.mutate(s)
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: accepted", name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", name, err, tc.wantErr)
		}
	}
}

// TestDegenerateScenarioIsGenerator pins the equivalence-gate
// mechanism at the compiler level: an event-only scenario must reuse
// the run's Spec pointer (same Generator, zero RNG draws consumed),
// and a single-class restatement must produce the identical task
// stream to a plain Generator.
func TestDegenerateScenarioIsGenerator(t *testing.T) {
	spec := testSpec(50)
	configs := testConfigs(20)

	// Event-only scenario: no classes, no arrival — Spec reused as-is.
	scn, err := ParseScenario("dreamsim-scenario v1\nevent maintenance 10 20 0 3\n")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewScenarioSource(rng.New(9), scn, &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := src.(*Generator)
	if !ok {
		t.Fatalf("event-only scenario compiled to %T, want *Generator", src)
	}
	if gen.spec != &spec {
		t.Error("event-only scenario did not reuse the run's Spec")
	}

	// Single-class restatement: stream must equal the plain Generator's.
	lift := ScenarioFromSpec(&spec)
	direct, err := NewGenerator(rng.New(11), &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	viaScn, err := NewScenarioSource(rng.New(11), lift, &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	if _, isScenario := viaScn.(*ScenarioSource); isScenario {
		t.Fatal("lifted flag spec compiled to a ScenarioSource, want the degenerate Generator path")
	}
	for i := 0; ; i++ {
		a, okA := direct.Next()
		b, okB := viaScn.Next()
		if okA != okB {
			t.Fatalf("task %d: stream lengths differ", i)
		}
		if !okA {
			break
		}
		if a.NeededArea != b.NeededArea || a.PrefConfig != b.PrefConfig ||
			a.RequiredTime != b.RequiredTime || a.CreateTime != b.CreateTime {
			t.Fatalf("task %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestScenarioSourceMultiClass checks the compiled multi-class stream:
// arrival times are non-decreasing overall, every class emits, area
// filters bind, and recycling works through the free list.
func TestScenarioSourceMultiClass(t *testing.T) {
	spec := testSpec(400)
	configs := testConfigs(20)
	scn, err := ParseScenario(`dreamsim-scenario v1
class batch
  fraction 0.5
  arrival gamma 2
  area 200 900
end
class fast
  fraction 0.5
  arrival weibull 0.5
end
timeline
  0 0.5
  2000 2
end
`)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewScenarioSource(rng.New(3), scn, &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	s := src.(*ScenarioSource)
	if got := s.ClassNames(); !reflect.DeepEqual(got, []string{"batch", "fast"}) {
		t.Fatalf("ClassNames = %v", got)
	}
	counts := make([]int, 2)
	last := int64(0)
	recycler, _ := src.(Recycler)
	for i := 0; ; i++ {
		task, ok := src.Next()
		if !ok {
			break
		}
		if task.No != i {
			t.Fatalf("task %d numbered %d", i, task.No)
		}
		if task.CreateTime < last {
			t.Fatalf("task %d arrives at %d, before previous %d", i, task.CreateTime, last)
		}
		last = task.CreateTime
		if task.Class < 0 || task.Class > 1 {
			t.Fatalf("task %d class %d", i, task.Class)
		}
		counts[task.Class]++
		if task.Class == 0 && task.PrefConfig < len(configs) {
			area := configs[task.PrefConfig].ReqArea
			if area < 200 || area > 900 {
				t.Fatalf("batch task %d drew config area %d outside its filter", i, area)
			}
		}
		if recycler != nil {
			recycler.Release(task) // stream must survive aggressive recycling
		}
	}
	if s.Emitted() != 400 {
		t.Fatalf("emitted %d tasks, want 400", s.Emitted())
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("class counts %v: every class must emit", counts)
	}
	if recycler == nil {
		t.Fatal("ScenarioSource does not implement Recycler")
	}
	if s.Recycled() == 0 {
		t.Error("free list never served a task despite recycling")
	}
}

// TestScenarioTimelineMult pins the piecewise-linear interpolation and
// the spike windows.
func TestScenarioTimelineMult(t *testing.T) {
	s := &ScenarioSource{
		timeline: []TimePoint{{At: 100, Mult: 1}, {At: 200, Mult: 3}},
		spikes:   []ScheduledEvent{{Kind: EventSpike, Start: 150, End: 175, Mult: 10}},
	}
	// Query ticks are chosen so every interpolated value is float-exact
	// (f in {0.5, 0.75}).
	cases := []struct {
		at   int64
		want float64
	}{
		{0, 1}, {100, 1}, {150, 2 * 10}, {175, 2.5}, {200, 3}, {999, 3},
	}
	for _, tc := range cases {
		if got := s.mult(tc.at); got != tc.want {
			t.Errorf("mult(%d) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestScenarioFaultLowering checks the maintenance and storm events
// compile to balanced crash/recover scripts.
func TestScenarioFaultLowering(t *testing.T) {
	scn := &Scenario{Events: []ScheduledEvent{
		{Kind: EventMaintenance, Start: 100, End: 200, NodeLo: 2, NodeHi: 4},
		{Kind: EventStorm, Start: 300, End: 400, Count: 6},
		{Kind: EventSpike, Start: 1, End: 2, Mult: 3}, // must not lower
	}}
	events := scn.FaultEvents(rng.New(5), 10)
	crashes, recovers := 0, 0
	crashed := map[int]bool{}
	for _, ev := range events {
		switch ev.Kind {
		case fault.KindCrash:
			crashes++
			crashed[ev.Node] = true
			if ev.Node < 0 || ev.Node >= 10 {
				t.Errorf("crash victim %d outside population", ev.Node)
			}
		case fault.KindRecover:
			recovers++
			if !crashed[ev.Node] {
				t.Errorf("node %d recovers without crashing", ev.Node)
			}
		default:
			t.Errorf("unexpected event kind %v", ev.Kind)
		}
	}
	if crashes != 3+6 {
		t.Errorf("%d crashes lowered, want 9 (3 maintenance + 6 storm)", crashes)
	}
	// Maintenance recovers each of its 3 nodes; the storm recovers each
	// DISTINCT victim once.
	if recovers < 3+1 || recovers > 3+6 {
		t.Errorf("%d recoveries lowered, want between 4 and 9", recovers)
	}
	// Node-count clamp: a maintenance range beyond the population must
	// not emit events for ghosts.
	clamped := &Scenario{Events: []ScheduledEvent{
		{Kind: EventMaintenance, Start: 1, End: 2, NodeLo: 8, NodeHi: 99},
	}}
	for _, ev := range clamped.FaultEvents(rng.New(5), 10) {
		if ev.Node >= 10 {
			t.Errorf("clamped maintenance touched ghost node %d", ev.Node)
		}
	}
}

// TestApplyDefaults checks the flag-vs-scenario resolution: scenario
// values fill only unset Spec knobs.
func TestApplyDefaults(t *testing.T) {
	scn := &Scenario{Tasks: 500, Interval: 40,
		Arrival: ArrivalSpec{Set: true, Kind: ArrivalPoisson}}
	spec := Spec{}
	scn.ApplyDefaults(&spec)
	if spec.Tasks != 500 || spec.NextTaskMaxInterval != 40 || spec.Arrival != ArrivalPoisson {
		t.Errorf("defaults not applied: %+v", spec)
	}
	explicit := Spec{Tasks: 99, NextTaskMaxInterval: 7}
	scn.ApplyDefaults(&explicit)
	if explicit.Tasks != 99 || explicit.NextTaskMaxInterval != 7 {
		t.Errorf("explicit values overridden: %+v", explicit)
	}
	// A bursty scenario-level arrival must NOT leak into the Spec: the
	// Spec's validator rejects gamma/weibull (scenario-only kinds).
	bursty := &Scenario{Arrival: ArrivalSpec{Set: true, Kind: ArrivalGamma, CV: 2}}
	spec2 := Spec{}
	bursty.ApplyDefaults(&spec2)
	if spec2.Arrival != ArrivalUniform {
		t.Errorf("gamma arrival leaked into Spec.Arrival = %v", spec2.Arrival)
	}
}

// TestClassSeedIndependence pins the substream scheme directly: a
// class's seed depends on the base and its own name only.
func TestClassSeedIndependence(t *testing.T) {
	if classSeed(1, "batch") == classSeed(1, "interactive") {
		t.Error("distinct names share a seed")
	}
	if classSeed(1, "batch") == classSeed(2, "batch") {
		t.Error("distinct bases share a seed")
	}
	if classSeed(7, "batch") != classSeed(7, "batch") {
		t.Error("classSeed not deterministic")
	}
}
