package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

func spec(tasks int) *Spec {
	s := TableII(200, tasks)
	return &s
}

func TestTableIIDefaults(t *testing.T) {
	s := TableII(100, 1000)
	if err := s.Validate(); err != nil {
		t.Fatalf("Table II defaults invalid: %v", err)
	}
	if s.Nodes != 100 || s.Tasks != 1000 {
		t.Fatalf("shape not propagated: %+v", s)
	}
	// Spot-check the published values.
	if s.NextTaskMaxInterval != 50 || s.Configs != 50 ||
		s.ConfigAreaLow != 200 || s.ConfigAreaHigh != 2000 ||
		s.NodeAreaLow != 1000 || s.NodeAreaHigh != 4000 ||
		s.TaskReqTimeLow != 100 || s.TaskReqTimeHigh != 100000 ||
		s.ConfigTimeLow != 10 || s.ConfigTimeHigh != 20 ||
		s.ClosestMatchPct != 0.15 {
		t.Fatalf("Table II values drifted: %+v", s)
	}
}

func TestSpecValidateRejects(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Tasks = -1 },
		func(s *Spec) { s.NextTaskMaxInterval = 0 },
		func(s *Spec) { s.TaskReqTimeLow = 0 },
		func(s *Spec) { s.TaskReqTimeHigh = 50 },
		func(s *Spec) { s.ClosestMatchPct = 1.5 },
		func(s *Spec) { s.ClosestMatchPct = -0.1 },
		func(s *Spec) { s.Configs = 0 },
		func(s *Spec) { s.ConfigAreaLow = 0 },
		func(s *Spec) { s.ConfigAreaHigh = 100 },
		func(s *Spec) { s.ConfigTimeLow = -1 },
		func(s *Spec) { s.ConfigTimeHigh = 5 },
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.NodeAreaLow = 0 },
		func(s *Spec) { s.NodeAreaHigh = 500 },
		func(s *Spec) { s.NodeAreaHigh = 150; s.NodeAreaLow = 100 },
	}
	for i, mutate := range bad {
		s := TableII(100, 1000)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, s)
		}
	}
}

func TestArrivalKindString(t *testing.T) {
	if ArrivalUniform.String() != "uniform" || ArrivalPoisson.String() != "poisson" {
		t.Fatal("ArrivalKind strings wrong")
	}
	if !strings.Contains(ArrivalKind(7).String(), "7") {
		t.Fatal("unknown kind string wrong")
	}
}

func TestGenConfigsRanges(t *testing.T) {
	r := rng.New(1)
	s := spec(0)
	configs := GenConfigs(r, s)
	if len(configs) != 50 {
		t.Fatalf("got %d configs", len(configs))
	}
	for _, c := range configs {
		if c.ReqArea < 200 || c.ReqArea > 2000 {
			t.Fatalf("config area %d out of range", c.ReqArea)
		}
		if c.ConfigTime < 10 || c.ConfigTime > 20 {
			t.Fatalf("config time %d out of range", c.ConfigTime)
		}
		if c.BSize <= 0 || len(c.Params) == 0 || c.Ptype == "" {
			t.Fatalf("config attributes missing: %+v", c)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGenNodesRanges(t *testing.T) {
	r := rng.New(2)
	s := spec(0)
	nodes := GenNodes(r, s, true)
	if len(nodes) != 200 {
		t.Fatalf("got %d nodes", len(nodes))
	}
	for _, n := range nodes {
		if n.TotalArea < 1000 || n.TotalArea > 4000 {
			t.Fatalf("node area %d out of range", n.TotalArea)
		}
		if !n.PartialMode || !n.Blank() {
			t.Fatalf("node mode/state wrong: %v", n)
		}
	}
	full := GenNodes(rng.New(2), s, false)
	if full[0].PartialMode {
		t.Fatal("full-mode flag not applied")
	}
	// Same seed, same geometry regardless of mode.
	for i := range nodes {
		if nodes[i].TotalArea != full[i].TotalArea {
			t.Fatal("node geometry differs across modes with same seed")
		}
	}
}

func TestCapabilityGeneration(t *testing.T) {
	s := spec(0)
	s.CapKinds = []string{"bram", "dsp"}
	s.NodeCapProb = 0.5
	s.ConfigCapProb = 0.3
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	nodes := GenNodes(rng.New(5), s, true)
	withCaps := 0
	for _, n := range nodes {
		for _, c := range n.Caps {
			if c != "bram" && c != "dsp" {
				t.Fatalf("unknown capability %q", c)
			}
		}
		if len(n.Caps) > 0 {
			withCaps++
		}
	}
	// P(at least one of two caps at 0.5) = 0.75; 200 nodes.
	if withCaps < 100 || withCaps == len(nodes) {
		t.Fatalf("node capability distribution implausible: %d of %d", withCaps, len(nodes))
	}
	configs := GenConfigs(rng.New(6), s)
	requiring := 0
	for _, c := range configs {
		if len(c.RequiredCaps) > 0 {
			requiring++
		}
	}
	if requiring == 0 || requiring == len(configs) {
		t.Fatalf("config requirement distribution implausible: %d of %d", requiring, len(configs))
	}
	// Extension off: no caps anywhere.
	s2 := spec(0)
	for _, n := range GenNodes(rng.New(5), s2, true) {
		if len(n.Caps) != 0 {
			t.Fatal("caps generated with extension off")
		}
	}
	// Impossible setup rejected.
	s.NodeCapProb = 0
	if err := s.Validate(); err == nil {
		t.Fatal("impossible caps setup accepted")
	}
	s.NodeCapProb = 2
	if err := s.Validate(); err == nil {
		t.Fatal("probability > 1 accepted")
	}
}

func TestGeneratorStream(t *testing.T) {
	r := rng.New(3)
	s := spec(500)
	configs := GenConfigs(r.Split(), s)
	g, err := NewGenerator(r, s, configs)
	if err != nil {
		t.Fatal(err)
	}
	cfgByNo := map[int]*model.Config{}
	for _, c := range configs {
		cfgByNo[c.No] = c
	}
	last := int64(0)
	missing := 0
	count := 0
	for {
		task, ok := g.Next()
		if !ok {
			break
		}
		count++
		if task.CreateTime <= last {
			t.Fatalf("arrival times not strictly increasing: %d after %d", task.CreateTime, last)
		}
		if task.CreateTime-last > s.NextTaskMaxInterval {
			t.Fatalf("gap %d exceeds max interval", task.CreateTime-last)
		}
		last = task.CreateTime
		if task.RequiredTime < s.TaskReqTimeLow || task.RequiredTime > s.TaskReqTimeHigh {
			t.Fatalf("t_required %d out of range", task.RequiredTime)
		}
		if cfg, ok := cfgByNo[task.PrefConfig]; ok {
			if task.NeededArea != cfg.ReqArea {
				t.Fatalf("task area %d != config area %d", task.NeededArea, cfg.ReqArea)
			}
		} else {
			missing++
			if task.NeededArea < s.ConfigAreaLow || task.NeededArea > s.ConfigAreaHigh {
				t.Fatalf("closest-match task area %d out of range", task.NeededArea)
			}
		}
		if err := task.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if count != 500 || g.Emitted() != 500 {
		t.Fatalf("emitted %d tasks", count)
	}
	// ~15% closest-match tasks; allow generous slack on 500 draws.
	frac := float64(missing) / 500
	if math.Abs(frac-0.15) > 0.07 {
		t.Errorf("closest-match share %v, want ~0.15", frac)
	}
	// Exhausted generator stays exhausted.
	if _, ok := g.Next(); ok {
		t.Fatal("generator emitted past Tasks")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	s := spec(100)
	mk := func() []*model.Task {
		r := rng.New(42)
		configs := GenConfigs(r.Split(), s)
		g, _ := NewGenerator(r, s, configs)
		return Drain(g)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i].CreateTime != b[i].CreateTime || a[i].PrefConfig != b[i].PrefConfig ||
			a[i].RequiredTime != b[i].RequiredTime || a[i].NeededArea != b[i].NeededArea {
			t.Fatalf("task %d differs across identical seeds", i)
		}
	}
}

func TestGeneratorPoissonArrivals(t *testing.T) {
	s := spec(2000)
	s.Arrival = ArrivalPoisson
	r := rng.New(5)
	configs := GenConfigs(r.Split(), s)
	g, _ := NewGenerator(r, s, configs)
	tasks := Drain(g)
	if len(tasks) != 2000 {
		t.Fatalf("emitted %d", len(tasks))
	}
	// Mean gap should approximate (1+50)/2 = 25.5.
	mean := float64(tasks[len(tasks)-1].CreateTime) / float64(len(tasks))
	if mean < 22 || mean > 29 {
		t.Errorf("poisson mean gap %v, want ~25.5", mean)
	}
	last := int64(0)
	for _, task := range tasks {
		if task.CreateTime <= last-1 && task.CreateTime < last {
			t.Fatal("arrivals moved backwards")
		}
		last = task.CreateTime
	}
}

func TestGeneratorRejectsBadInput(t *testing.T) {
	s := spec(10)
	if _, err := NewGenerator(rng.New(1), s, nil); err == nil {
		t.Fatal("empty config list accepted")
	}
	bad := *s
	bad.Nodes = 0
	if _, err := NewGenerator(rng.New(1), &bad, GenConfigs(rng.New(2), s)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestTaskTimeDistributions(t *testing.T) {
	for _, dist := range []DistKind{DistUniform, DistLognormal, DistPareto} {
		s := spec(3000)
		s.TaskTimeDist = dist
		r := rng.New(11)
		configs := GenConfigs(r.Split(), s)
		g, err := NewGenerator(r, s, configs)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for {
			task, ok := g.Next()
			if !ok {
				break
			}
			if task.RequiredTime < s.TaskReqTimeLow || task.RequiredTime > s.TaskReqTimeHigh {
				t.Fatalf("%s: t_required %d out of range", dist, task.RequiredTime)
			}
			sum += float64(task.RequiredTime)
			n++
		}
		mean := sum / float64(n)
		switch dist {
		case DistUniform:
			if mean < 45000 || mean > 56000 { // midpoint ~50050
				t.Errorf("uniform mean %v", mean)
			}
		case DistLognormal:
			// Median ~ geometric midpoint sqrt(100*100000) ~ 3162;
			// the mean sits well below the uniform mean.
			if mean > 30000 {
				t.Errorf("lognormal mean %v not heavy-tail shaped", mean)
			}
		case DistPareto:
			// Pareto(100, 1.5) clamped: mean far below uniform.
			if mean > 20000 {
				t.Errorf("pareto mean %v not heavy-tail shaped", mean)
			}
		}
	}
	if DistUniform.String() != "uniform" || DistLognormal.String() != "lognormal" ||
		DistPareto.String() != "pareto" || DistKind(9).String() == "" {
		t.Fatal("DistKind strings wrong")
	}
	bad := spec(10)
	bad.TaskTimeDist = DistKind(-1)
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid distribution accepted")
	}
}

func TestConfigPopularityZipf(t *testing.T) {
	s := spec(5000)
	s.ConfigPopularity = 1.2
	s.ClosestMatchPct = 0
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	configs := GenConfigs(r.Split(), s)
	g, err := NewGenerator(r, s, configs)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for {
		task, ok := g.Next()
		if !ok {
			break
		}
		counts[task.PrefConfig]++
	}
	// Config 0 must dominate config 10 heavily under Zipf(1.2).
	if counts[0] < 3*counts[10] {
		t.Errorf("popularity skew weak: C0=%d C10=%d", counts[0], counts[10])
	}
	bad := spec(10)
	bad.ConfigPopularity = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative popularity accepted")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	s := spec(200)
	r := rng.New(7)
	configs := GenConfigs(r.Split(), s)
	g, _ := NewGenerator(r, s, configs)
	tasks := Drain(g)

	var buf bytes.Buffer
	if err := WriteTrace(&buf, tasks); err != nil {
		t.Fatal(err)
	}
	tr := NewTraceReader(&buf)
	got := Drain(tr)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if len(got) != len(tasks) {
		t.Fatalf("round trip lost tasks: %d != %d", len(got), len(tasks))
	}
	for i := range got {
		a, b := tasks[i], got[i]
		if a.No != b.No || a.CreateTime != b.CreateTime || a.RequiredTime != b.RequiredTime ||
			a.PrefConfig != b.PrefConfig || a.NeededArea != b.NeededArea || a.Data != b.Data {
			t.Fatalf("task %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestTraceReaderRejects(t *testing.T) {
	cases := map[string]string{
		"missing header":  "task 0 5 100 1 500 0\n",
		"empty":           "",
		"malformed line":  "# dreamsim-trace v1\ntask zero x\n",
		"time regression": "# dreamsim-trace v1\ntask 0 10 100 1 500 0\ntask 1 5 100 1 500 0\n",
		"invalid task":    "# dreamsim-trace v1\ntask 0 5 0 1 500 0\n",
	}
	for name, in := range cases {
		tr := NewTraceReader(strings.NewReader(in))
		Drain(tr)
		if tr.Err() == nil {
			t.Errorf("%s: no error reported", name)
		}
		// The stream stays stopped.
		if _, ok := tr.Next(); ok {
			t.Errorf("%s: reader continued after error", name)
		}
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	in := "# dreamsim-trace v1\n\n# a comment\ntask 3 5 100 1 500 64\n\n"
	tr := NewTraceReader(strings.NewReader(in))
	tasks := Drain(tr)
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
	if len(tasks) != 1 || tasks[0].No != 3 || tasks[0].Data != 64 {
		t.Fatalf("parsed %v", tasks)
	}
}

func TestWriteTraceRejectsInvalid(t *testing.T) {
	bad := model.NewTask(0, 0, 1, 100, 0) // zero area
	var buf bytes.Buffer
	if err := WriteTrace(&buf, []*model.Task{bad}); err == nil {
		t.Fatal("invalid task written")
	}
}
