package workload

import (
	"dreamsim/internal/model"

	"strings"
	"testing"
)

// sampleSWF is a miniature SWF log: header comments, a cancelled job
// (run -1), and four runnable jobs, one with a precedence edge.
const sampleSWF = `; SWF trace for tests
; MaxJobs: 6
; UnixStartTime: 0
1 0 5 3600 8 -1 -1 8 4000 -1 1 101 5 7 1 1 -1 -1
2 10 -1 -1 4 -1 -1 4 100 -1 0 101 5 3 1 1 -1 -1
3 30 2 120 1 -1 -1 1 300 -1 1 102 5 -1 2 1 -1 -1
4 60 0 60 64 -1 -1 64 60 -1 1 103 6 9 1 1 1 -1
5 60 0 600 2 -1 -1 2 700 -1 1 103 6 9 1 1 99 -1
`

func TestParseSWF(t *testing.T) {
	tasks, deps, err := ParseSWF(strings.NewReader(sampleSWF), SWFMapping{KeepDependencies: true})
	if err != nil {
		t.Fatal(err)
	}
	// Job 2 skipped (run -1): 4 tasks.
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	t1 := tasks[0]
	if t1.No != 1 || t1.CreateTime != 0 || t1.RequiredTime != 3600 {
		t.Fatalf("job 1 mapping: %+v", t1)
	}
	// 8 procs * 100 area/proc = 800.
	if t1.NeededArea != 800 {
		t.Fatalf("job 1 area %d", t1.NeededArea)
	}
	// exe 7 % 50 = 7.
	if t1.PrefConfig != 7 {
		t.Fatalf("job 1 pref %d", t1.PrefConfig)
	}
	// Job 3 has exe -1: falls back to job number. 1 proc -> clamped to MinArea.
	t3 := tasks[1]
	if t3.No != 3 || t3.NeededArea != 200 || t3.PrefConfig != 3 {
		t.Fatalf("job 3 mapping: %+v", t3)
	}
	// Job 4: 64 procs -> clamped to MaxArea 2000.
	t4 := tasks[2]
	if t4.NeededArea != 2000 {
		t.Fatalf("job 4 area %d", t4.NeededArea)
	}
	// Dependency: job 4 precedes... job 4's field 17 = 1 (preceding job 1).
	if len(deps) != 1 || len(deps[4]) != 1 || deps[4][0] != 1 {
		t.Fatalf("deps: %v", deps)
	}
	// Job 5's preceding job 99 is unknown: no edge.
	if _, ok := deps[5]; ok {
		t.Fatal("dangling precedence edge kept")
	}
}

func TestParseSWFScaling(t *testing.T) {
	tasks, _, err := ParseSWF(strings.NewReader(sampleSWF), SWFMapping{TicksPerSecond: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].RequiredTime != 36000 {
		t.Fatalf("scaled run time %d", tasks[0].RequiredTime)
	}
	if tasks[1].CreateTime != 300 {
		t.Fatalf("scaled submit %d", tasks[1].CreateTime)
	}
}

func TestParseSWFMaxJobs(t *testing.T) {
	tasks, _, err := ParseSWF(strings.NewReader(sampleSWF), SWFMapping{MaxJobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("MaxJobs ignored: %d", len(tasks))
	}
}

func TestParseSWFNoDepsByDefault(t *testing.T) {
	_, deps, err := ParseSWF(strings.NewReader(sampleSWF), SWFMapping{})
	if err != nil {
		t.Fatal(err)
	}
	if len(deps) != 0 {
		t.Fatalf("dependencies kept without opt-in: %v", deps)
	}
}

func TestParseSWFRejects(t *testing.T) {
	cases := map[string]string{
		"short line":    "1 0 5 3600 8\n",
		"bad number":    "x 0 5 3600 8 -1 -1 8 4000 -1 1 101 5 7 1 1 -1 -1\n",
		"duplicate job": "1 0 5 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1\n1 5 5 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1\n",
		"empty":         "; only comments\n",
		"all skipped":   "1 0 5 -1 1 -1 -1 1 60 -1 0 1 1 1 1 1 -1 -1\n",
	}
	for name, in := range cases {
		if _, _, err := ParseSWF(strings.NewReader(in), SWFMapping{}); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestParseSWFMonotoneSubmits(t *testing.T) {
	// Out-of-order submits are clamped forward, never backwards.
	in := "1 100 0 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1\n" +
		"2 50 0 60 1 -1 -1 1 60 -1 1 1 1 1 1 1 -1 -1\n"
	tasks, _, err := ParseSWF(strings.NewReader(in), SWFMapping{})
	if err != nil {
		t.Fatal(err)
	}
	if tasks[1].CreateTime < tasks[0].CreateTime {
		t.Fatal("submit times move backwards")
	}
}

func TestSliceSource(t *testing.T) {
	tasks, _, err := ParseSWF(strings.NewReader(sampleSWF), SWFMapping{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := SliceSource(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := Drain(src); len(got) != len(tasks) {
		t.Fatalf("slice source lost tasks: %d != %d", len(got), len(tasks))
	}
	// Unordered slices rejected.
	rev := []*model.Task{tasks[len(tasks)-1], tasks[0]}
	if _, err := SliceSource(rev); err == nil {
		t.Fatal("unordered slice accepted")
	}
	// Invalid tasks rejected.
	bad := model.NewTask(99, 0, 1, 100, 0)
	if _, err := SliceSource([]*model.Task{bad}); err == nil {
		t.Fatal("invalid task accepted")
	}
}
