package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dreamsim/internal/model"
)

// The trace format is line-oriented text, one task per line:
//
//	# dreamsim-trace v1
//	task <no> <create> <required> <prefcfg> <area> <data>
//
// Comment lines start with '#'. It is the "real workloads" input
// path of the paper's input subsystem: any recorded workload can be
// converted to this format and replayed against any scheduler.

// traceHeader is the mandatory first line of a trace file.
const traceHeader = "# dreamsim-trace v1"

// WriteTrace serialises tasks to w in arrival order.
func WriteTrace(w io.Writer, tasks []*model.Task) error {
	return WriteTraceFrom(w, &sliceSource{tasks: tasks})
}

// WriteTraceFrom streams src to w one task at a time — trace capture
// in O(1) memory, never materializing the workload. When src is a
// Recycler each task is released back to its free list as soon as its
// line is written, so even million-task captures reuse one struct.
func WriteTraceFrom(w io.Writer, src TaskSource) error {
	recycle, _ := src.(Recycler)
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, traceHeader); err != nil {
		return err
	}
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("workload: refusing to write invalid task: %w", err)
		}
		if _, err := fmt.Fprintf(bw, "task %d %d %d %d %d %d\n",
			t.No, t.CreateTime, t.RequiredTime, t.PrefConfig, t.NeededArea, t.Data); err != nil {
			return err
		}
		if recycle != nil {
			recycle.Release(t)
		}
	}
	if tr, isTrace := src.(*TraceReader); isTrace && tr.Err() != nil {
		return tr.Err()
	}
	return bw.Flush()
}

// TraceReader replays a trace as a TaskSource.
type TraceReader struct {
	taskPool
	sc       *bufio.Scanner
	line     int
	lastTime int64
	err      error
	started  bool
}

// NewTraceReader wraps r; the header is validated on first Next.
func NewTraceReader(r io.Reader) *TraceReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 64*1024)
	return &TraceReader{sc: sc}
}

// Err returns the first parse error encountered, if any.
func (tr *TraceReader) Err() error { return tr.err }

// Next implements TaskSource. On malformed input it stops the stream
// and records the error on Err.
func (tr *TraceReader) Next() (*model.Task, bool) {
	if tr.err != nil {
		return nil, false
	}
	if !tr.started {
		tr.started = true
		if !tr.scanLine() {
			tr.fail("empty trace: missing header")
			return nil, false
		}
		if strings.TrimSpace(tr.sc.Text()) != traceHeader {
			tr.fail("bad header %q", tr.sc.Text())
			return nil, false
		}
	}
	for tr.scanLine() {
		line := strings.TrimSpace(tr.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var no int
		var create, required, prefcfg, area, data int64
		n, err := fmt.Sscanf(line, "task %d %d %d %d %d %d",
			&no, &create, &required, &prefcfg, &area, &data)
		if err != nil || n != 6 {
			tr.fail("line %d: malformed task record %q", tr.line, line)
			return nil, false
		}
		if create < tr.lastTime {
			tr.fail("line %d: arrival time moves backwards (%d < %d)", tr.line, create, tr.lastTime)
			return nil, false
		}
		tr.lastTime = create
		task := tr.get(no, area, int(prefcfg), required, create)
		task.Data = data
		if err := task.Validate(); err != nil {
			tr.fail("line %d: %v", tr.line, err)
			return nil, false
		}
		return task, true
	}
	if err := tr.sc.Err(); err != nil {
		tr.err = err
	}
	return nil, false
}

func (tr *TraceReader) scanLine() bool {
	if tr.sc.Scan() {
		tr.line++
		return true
	}
	return false
}

func (tr *TraceReader) fail(format string, args ...any) {
	tr.err = fmt.Errorf("workload: "+format, args...)
}
