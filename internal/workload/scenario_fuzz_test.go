package workload

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseScenario feeds arbitrary text through the scenario parser:
// it must never panic, and any input it accepts must round-trip
// through the canonical formatter — Format∘Parse is idempotent, so
// formatted output re-parses to a scenario that formats identically.
// Validation is deliberately NOT required to pass: the parser's
// contract is syntax only, and the fuzzer exercises it on
// semantically absurd specs too (Validate must merely not panic).
func FuzzParseScenario(f *testing.F) {
	f.Add("dreamsim-scenario v1\n")
	f.Add("dreamsim-scenario v1\nname x\ntasks 100\ninterval 50\narrival poisson\n")
	f.Add("dreamsim-scenario v1\nclass a\n  fraction 0.5\n  arrival gamma 2\n  reqtime 100 1000 lognormal\n  area 200 800\n  popularity 0.8\n  closest-match 0.1\nend\n")
	f.Add("dreamsim-scenario v1\ntimeline\n  0 0.5\n  100 2\nend\n")
	f.Add("dreamsim-scenario v1\nevent spike 10 20 3\nevent maintenance 5 9 0 4\nevent storm 1 8 2\n")
	f.Add("dreamsim-scenario v1\nclass a\n# comment\nend\nclass b\nend\n")
	f.Add("not a scenario\n")
	f.Add("dreamsim-scenario v1\ntasks -5\ninterval 0\nclass ??\n  fraction -1\nend\n")
	// Every committed example spec is a seed, so corpus drift from the
	// examples directory is impossible.
	if paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "scenarios", "*.scn")); err == nil {
		for _, path := range paths {
			if data, err := os.ReadFile(path); err == nil {
				f.Add(string(data))
			}
		}
	}
	f.Fuzz(func(t *testing.T, text string) {
		scn, err := ParseScenario(text)
		if err != nil {
			return // malformed input is rejected, not interpreted
		}
		_ = scn.Validate() // must not panic on absurd-but-parseable specs
		once := FormatScenario(scn)
		back, err := ParseScenario(once)
		if err != nil {
			t.Fatalf("formatted scenario does not re-parse: %v\ninput:\n%s\nformatted:\n%s", err, text, once)
		}
		if twice := FormatScenario(back); twice != once {
			t.Fatalf("format not idempotent\nfirst:\n%s\nsecond:\n%s", once, twice)
		}
	})
}
