// Package workload implements DReAMSim's input subsystem (paper
// §III): user-defined resource specification (node and configuration
// generation), synthetic task generation with configurable arrival
// processes, and a line-oriented trace format standing in for "real
// workloads".
package workload

import "fmt"

// ArrivalKind selects the task arrival process.
type ArrivalKind int

const (
	// ArrivalUniform draws inter-arrival gaps uniformly from
	// [1, NextTaskMaxInterval] — the paper's default ("task arrival
	// interval is set between [1..50] time-ticks with uniform
	// distribution").
	ArrivalUniform ArrivalKind = iota
	// ArrivalPoisson draws exponential gaps with the same mean as the
	// uniform process, giving a Poisson arrival stream (the input
	// subsystem supports user-chosen distribution functions).
	ArrivalPoisson
	// ArrivalGamma draws gamma-distributed gaps parameterised by mean
	// and coefficient of variation — cv > 1 clumps arrivals into
	// bursts. Only reachable through scenario files, which carry the
	// cv; the flag-level Spec stays uniform/Poisson.
	ArrivalGamma
	// ArrivalWeibull draws Weibull gaps, an alternative bursty process
	// with a different tail; likewise scenario-only.
	ArrivalWeibull
)

// String implements fmt.Stringer.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalUniform:
		return "uniform"
	case ArrivalPoisson:
		return "poisson"
	case ArrivalGamma:
		return "gamma"
	case ArrivalWeibull:
		return "weibull"
	default:
		return fmt.Sprintf("ArrivalKind(%d)", int(k))
	}
}

// ParseArrivalKind inverts ArrivalKind.String.
func ParseArrivalKind(s string) (ArrivalKind, error) {
	switch s {
	case "uniform":
		return ArrivalUniform, nil
	case "poisson":
		return ArrivalPoisson, nil
	case "gamma":
		return ArrivalGamma, nil
	case "weibull":
		return ArrivalWeibull, nil
	}
	return 0, fmt.Errorf("workload: unknown arrival kind %q", s)
}

// ParseDistKind inverts DistKind.String.
func ParseDistKind(s string) (DistKind, error) {
	switch s {
	case "uniform":
		return DistUniform, nil
	case "lognormal":
		return DistLognormal, nil
	case "pareto":
		return DistPareto, nil
	}
	return 0, fmt.Errorf("workload: unknown distribution %q", s)
}

// DistKind selects a draw distribution for task attributes.
type DistKind int

const (
	// DistUniform draws uniformly over the range — the paper's model.
	DistUniform DistKind = iota
	// DistLognormal draws a lognormal with its median at the
	// geometric midpoint of the range and ~99.7% of mass inside it,
	// clamped to the range — the standard heavy-tailed fit for
	// recorded job runtimes.
	DistLognormal
	// DistPareto draws a Pareto anchored at the range minimum with
	// tail index 1.5, clamped to the range maximum — heavier-tailed
	// still.
	DistPareto
)

// String implements fmt.Stringer.
func (d DistKind) String() string {
	switch d {
	case DistUniform:
		return "uniform"
	case DistLognormal:
		return "lognormal"
	case DistPareto:
		return "pareto"
	default:
		return fmt.Sprintf("DistKind(%d)", int(d))
	}
}

// Spec carries every generation parameter of Table II.
type Spec struct {
	// Tasks is the number of tasks to generate ([1000...100000]).
	Tasks int
	// NextTaskMaxInterval bounds the arrival gap ([1...50] ticks).
	NextTaskMaxInterval int64
	// Arrival selects the arrival process.
	Arrival ArrivalKind
	// TaskReqTimeLow/High bound t_required ([100...100000] ticks).
	TaskReqTimeLow, TaskReqTimeHigh int64
	// ClosestMatchPct is the fraction of tasks whose Cpref is absent
	// from the configurations list (paper: 15%).
	ClosestMatchPct float64
	// TaskTimeDist selects the t_required distribution (paper:
	// uniform).
	TaskTimeDist DistKind
	// ConfigPopularity skews Cpref draws over the configurations
	// list: 0 = uniform (paper), s > 0 = Zipf with exponent s (a few
	// configurations requested far more often than the rest).
	ConfigPopularity float64

	// Configs is the size of the configurations list (50).
	Configs int
	// ConfigAreaLow/High bound ReqArea ([200...2000] area units).
	ConfigAreaLow, ConfigAreaHigh int64
	// ConfigTimeLow/High bound ConfigTime ([10...20] ticks).
	ConfigTimeLow, ConfigTimeHigh int64

	// Nodes is the node count (100 or 200 in the paper's experiments).
	Nodes int
	// NodeAreaLow/High bound TotalArea ([1000...4000] area units).
	NodeAreaLow, NodeAreaHigh int64

	// CapKinds lists hardware capability labels in play (embedded
	// memory, DSP slices, ... — the node `caps` of Eq. 1). Empty
	// disables the heterogeneity extension: every node hosts every
	// configuration, as in the paper's experiments.
	CapKinds []string
	// NodeCapProb is the probability a node offers each capability.
	NodeCapProb float64
	// ConfigCapProb is the probability a configuration requires each
	// capability.
	ConfigCapProb float64
}

// Validate reports the first incoherent parameter, or nil.
func (s *Spec) Validate() error {
	switch {
	case s.Tasks < 0:
		return fmt.Errorf("workload: negative task count %d", s.Tasks)
	case s.NextTaskMaxInterval < 1:
		return fmt.Errorf("workload: NextTaskMaxInterval %d < 1", s.NextTaskMaxInterval)
	case s.TaskReqTimeLow < 1 || s.TaskReqTimeHigh < s.TaskReqTimeLow:
		return fmt.Errorf("workload: invalid t_required range [%d,%d]", s.TaskReqTimeLow, s.TaskReqTimeHigh)
	case s.ClosestMatchPct < 0 || s.ClosestMatchPct > 1:
		return fmt.Errorf("workload: closest-match share %v outside [0,1]", s.ClosestMatchPct)
	case s.Configs < 1:
		return fmt.Errorf("workload: config count %d < 1", s.Configs)
	case s.ConfigAreaLow < 1 || s.ConfigAreaHigh < s.ConfigAreaLow:
		return fmt.Errorf("workload: invalid config area range [%d,%d]", s.ConfigAreaLow, s.ConfigAreaHigh)
	case s.ConfigTimeLow < 0 || s.ConfigTimeHigh < s.ConfigTimeLow:
		return fmt.Errorf("workload: invalid config time range [%d,%d]", s.ConfigTimeLow, s.ConfigTimeHigh)
	case s.Nodes < 1:
		return fmt.Errorf("workload: node count %d < 1", s.Nodes)
	case s.NodeAreaLow < 1 || s.NodeAreaHigh < s.NodeAreaLow:
		return fmt.Errorf("workload: invalid node area range [%d,%d]", s.NodeAreaLow, s.NodeAreaHigh)
	case s.NodeCapProb < 0 || s.NodeCapProb > 1 || s.ConfigCapProb < 0 || s.ConfigCapProb > 1:
		return fmt.Errorf("workload: capability probabilities outside [0,1]")
	case s.ConfigCapProb > 0 && (len(s.CapKinds) == 0 || s.NodeCapProb == 0):
		return fmt.Errorf("workload: configurations require capabilities but nodes can never offer them")
	case s.TaskTimeDist < DistUniform || s.TaskTimeDist > DistPareto:
		return fmt.Errorf("workload: unknown task time distribution %d", s.TaskTimeDist)
	case s.ConfigPopularity < 0:
		return fmt.Errorf("workload: negative config popularity exponent")
	case s.Arrival < ArrivalUniform || s.Arrival > ArrivalPoisson:
		// Gamma/Weibull need a cv, which only scenario files carry;
		// a bare Spec cannot express them.
		return fmt.Errorf("workload: arrival %v requires a scenario file", s.Arrival)
	}
	if s.NodeAreaHigh < s.ConfigAreaLow {
		return fmt.Errorf("workload: largest node (%d) smaller than smallest config (%d): nothing schedulable",
			s.NodeAreaHigh, s.ConfigAreaLow)
	}
	return nil
}

// TableII returns the paper's default parameter values (Table II)
// for the given node count and task count.
func TableII(nodes, tasks int) Spec {
	return Spec{
		Tasks:               tasks,
		NextTaskMaxInterval: 50,
		Arrival:             ArrivalUniform,
		TaskReqTimeLow:      100,
		TaskReqTimeHigh:     100000,
		ClosestMatchPct:     0.15,
		Configs:             50,
		ConfigAreaLow:       200,
		ConfigAreaHigh:      2000,
		ConfigTimeLow:       10,
		ConfigTimeHigh:      20,
		Nodes:               nodes,
		NodeAreaLow:         1000,
		NodeAreaHigh:        4000,
	}
}
