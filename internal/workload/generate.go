package workload

import (
	"fmt"
	"math"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// ptypePool is the processor-type palette used for synthetic
// configurations, matching the examples the paper gives for Ptype.
var ptypePool = []model.PType{
	model.PTypeSoftCore,
	model.PTypeMultiplier,
	model.PTypeSystolic,
	model.PTypeDSP,
	model.PTypeCrypto,
}

// GenConfigs generates the configurations list (the paper's
// InitConfigs): ReqArea and ConfigTime uniform within the spec
// ranges, a processor type with architecture parameters, and a
// bitstream size proportional to the area (a plausible stand-in for
// real device bitstreams; only the optional transfer model reads it).
func GenConfigs(r *rng.RNG, spec *Spec) []*model.Config {
	configs := make([]*model.Config, spec.Configs)
	for i := range configs {
		area := r.Int64Range(spec.ConfigAreaLow, spec.ConfigAreaHigh)
		pt := ptypePool[r.Intn(len(ptypePool))]
		configs[i] = &model.Config{
			No:           i,
			ReqArea:      area,
			Ptype:        pt,
			Params:       genParams(r, pt),
			BSize:        area * 128, // ~128 B of bitstream per area unit
			ConfigTime:   r.Int64Range(spec.ConfigTimeLow, spec.ConfigTimeHigh),
			RequiredCaps: drawCaps(r, spec.CapKinds, spec.ConfigCapProb),
		}
	}
	return configs
}

// genParams synthesises an architecture parameter list for a Ptype
// (issue width, FU mix, memory slots — the ρ-VEX style attributes
// the paper cites).
func genParams(r *rng.RNG, pt model.PType) []string {
	switch pt {
	case model.PTypeSoftCore:
		return []string{
			fmt.Sprintf("issues=%d", 1<<r.Intn(3)),
			fmt.Sprintf("alus=%d", 1+r.Intn(8)),
			fmt.Sprintf("muls=%d", 1+r.Intn(4)),
			fmt.Sprintf("memslots=%d", 1+r.Intn(4)),
		}
	case model.PTypeMultiplier:
		return []string{fmt.Sprintf("width=%d", 8<<r.Intn(3))}
	case model.PTypeSystolic:
		d := 2 + r.Intn(7)
		return []string{fmt.Sprintf("grid=%dx%d", d, d)}
	case model.PTypeDSP:
		return []string{fmt.Sprintf("taps=%d", 16<<r.Intn(4))}
	default:
		return []string{fmt.Sprintf("rounds=%d", 10+r.Intn(6))}
	}
}

// GenNodes generates the node population (the paper's InitNodes):
// TotalArea uniform within the node area limits. partial selects the
// reconfiguration method for the whole population.
func GenNodes(r *rng.RNG, spec *Spec, partial bool) []*model.Node {
	nodes := make([]*model.Node, spec.Nodes)
	for i := range nodes {
		n := model.NewNode(i, r.Int64Range(spec.NodeAreaLow, spec.NodeAreaHigh), partial)
		n.Caps = drawCaps(r, spec.CapKinds, spec.NodeCapProb)
		nodes[i] = n
	}
	return nodes
}

// drawCaps samples a capability subset; nil when the extension is off.
func drawCaps(r *rng.RNG, kinds []string, prob float64) []string {
	if len(kinds) == 0 || prob <= 0 {
		return nil
	}
	var out []string
	for _, k := range kinds {
		if r.Bool(prob) {
			out = append(out, k)
		}
	}
	return out
}

// TaskSource yields the task arrival stream of a run, one task at a
// time — the streaming contract that keeps simulation memory bounded
// by the live task set rather than the workload size. Implementations:
// *Generator (synthetic), *TraceReader (recorded workloads) and the
// SliceSource replay wrapper. Sources that additionally implement
// Recycler hand out pooled task structs.
type TaskSource interface {
	// Next returns the next task in arrival order, or ok=false when
	// the stream is exhausted. Tasks arrive with CreateTime set and
	// strictly non-decreasing.
	Next() (task *model.Task, ok bool)
}

// Source is the TaskSource interface's original name, kept as an
// alias for existing call sites.
type Source = TaskSource

// Generator synthesises the task stream (the paper's CreateTask /
// job submission manager). It is deterministic given its RNG, and it
// is lazy: each Next draws exactly one task, so a million-task
// workload never exists in memory at once. It is the single synthetic
// generation code path — materialized workloads are expressed over it
// (Drain + SliceSource), never drawn by separate logic, so streamed
// and materialized runs cannot drift.
type Generator struct {
	taskPool
	spec    *Spec
	r       *rng.RNG
	configs []*model.Config
	zipf    *rng.Zipf // non-nil when ConfigPopularity > 0
	now     int64
	emitted int
}

// NewGenerator builds a synthetic task source over the given
// configurations list (needed to draw each task's Cpref).
func NewGenerator(r *rng.RNG, spec *Spec, configs []*model.Config) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(configs) == 0 {
		return nil, fmt.Errorf("workload: generator needs a non-empty configurations list")
	}
	g := &Generator{spec: spec, r: r, configs: configs}
	if spec.ConfigPopularity > 0 {
		g.zipf = rng.NewZipf(len(configs), spec.ConfigPopularity)
	}
	return g, nil
}

// Emitted reports how many tasks have been produced so far.
func (g *Generator) Emitted() int { return g.emitted }

// Next implements TaskSource.
func (g *Generator) Next() (*model.Task, bool) {
	if g.emitted >= g.spec.Tasks {
		return nil, false
	}
	g.now += g.gap()
	no := g.emitted
	g.emitted++

	var prefNo int
	var needed model.Area
	if g.r.Bool(g.spec.ClosestMatchPct) {
		// Cpref deliberately absent from the configurations list:
		// the scheduler must fall back to C_ClosestMatch. The needed
		// area is drawn from the same distribution as real configs.
		prefNo = len(g.configs) + g.r.Intn(1<<20)
		needed = g.r.Int64Range(g.spec.ConfigAreaLow, g.spec.ConfigAreaHigh)
	} else {
		var cfg *model.Config
		if g.zipf != nil {
			cfg = g.configs[g.zipf.Draw(g.r)]
		} else {
			cfg = g.configs[g.r.Intn(len(g.configs))]
		}
		prefNo = cfg.No
		needed = cfg.ReqArea
	}
	task := g.get(no, needed, prefNo, g.reqTime(), g.now)
	task.Data = needed * 64 // synthetic input payload, feeds the optional data-transfer model
	return task, true
}

// reqTime draws t_required under the configured distribution,
// clamped into [TaskReqTimeLow, TaskReqTimeHigh].
func (g *Generator) reqTime() int64 {
	return drawReqTime(g.r, g.spec.TaskReqTimeLow, g.spec.TaskReqTimeHigh, g.spec.TaskTimeDist)
}

// drawReqTime is the single t_required draw shared by the Generator
// and the scenario compiler's per-class streams: identical ranges and
// distribution consume identical RNG draws, so a class that mirrors
// the flag-level spec reproduces its sequence exactly.
func drawReqTime(r *rng.RNG, lo, hi int64, dist DistKind) int64 {
	switch dist {
	case DistLognormal:
		mu := (math.Log(float64(lo)) + math.Log(float64(hi))) / 2
		sigma := (math.Log(float64(hi)) - math.Log(float64(lo))) / 6
		return clamp64(int64(r.Lognormal(mu, sigma)+0.5), lo, hi)
	case DistPareto:
		return clamp64(int64(r.Pareto(float64(lo), 1.5)+0.5), lo, hi)
	default:
		return r.Int64Range(lo, hi)
	}
}

// clamp64 bounds v into [lo, hi].
func clamp64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// gap draws the next inter-arrival gap.
func (g *Generator) gap() int64 {
	switch g.spec.Arrival {
	case ArrivalPoisson:
		// Exponential gaps with the same mean as U[1, max]:
		// mean = (1+max)/2. Clamp to >= 1 tick.
		mean := float64(1+g.spec.NextTaskMaxInterval) / 2
		gap := int64(g.r.ExpRate(1/mean) + 0.5)
		if gap < 1 {
			gap = 1
		}
		return gap
	default:
		return g.r.Int64Range(1, g.spec.NextTaskMaxInterval)
	}
}

// Drain pulls every remaining task from src into a slice — the
// explicit materialization point. Everything downstream of a Drain is
// O(tasks) in memory; streamed consumers iterate the TaskSource
// directly instead.
func Drain(src TaskSource) []*model.Task {
	var out []*model.Task
	for {
		task, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, task)
	}
}

// SliceSource replays a pre-built task list as a TaskSource. The
// tasks must be valid and ordered by non-decreasing CreateTime.
func SliceSource(tasks []*model.Task) (TaskSource, error) {
	for i, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if i > 0 && t.CreateTime < tasks[i-1].CreateTime {
			return nil, fmt.Errorf("workload: task %d arrives before its predecessor", t.No)
		}
	}
	return &sliceSource{tasks: tasks}, nil
}

type sliceSource struct {
	tasks []*model.Task
	next  int
}

// Next implements TaskSource.
func (s *sliceSource) Next() (*model.Task, bool) {
	if s.next >= len(s.tasks) {
		return nil, false
	}
	t := s.tasks[s.next]
	s.next++
	return t, true
}
