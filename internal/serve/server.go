// Package serve is the checkpointing sweep service behind
// cmd/dreamserve: an HTTP job queue that accepts scenario specs and
// sweep matrices, runs their units on the exec worker pool behind a
// token-bucket submission limiter, streams incremental per-cell
// results as NDJSON, checkpoints in-flight units every N processed
// events, and — because every piece of job state is crash-safe on
// disk — resumes interrupted jobs from their latest checkpoints on
// restart. A resumed job's results file ends up byte-identical to an
// uninterrupted run's (the kill-and-recover harness in cmd/dreamserve
// pins this through repeated SIGKILLs).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dreamsim"
	"dreamsim/internal/exec"
)

// Config configures a Server.
type Config struct {
	// Dir is the state directory (jobs land under Dir/jobs).
	Dir string
	// Workers bounds how many sweep units run concurrently; 0 means
	// one per CPU.
	Workers int
	// CheckpointEvents is the checkpoint cadence: a unit pauses and
	// persists a snapshot every this-many processed simulation events.
	// 0 means DefaultCheckpointEvents.
	CheckpointEvents uint64
	// RateCapacity and RateRefillPerSec shape the submission token
	// bucket; capacity 0 disables limiting.
	RateCapacity     int
	RateRefillPerSec float64
	// Now is the limiter clock (tests inject a fake); nil = time.Now.
	Now func() time.Time
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

// DefaultCheckpointEvents is the default checkpoint cadence. At
// typical event costs this checkpoints every few hundred
// milliseconds of simulation work — cheap enough to be invisible,
// frequent enough that a kill loses very little progress.
const DefaultCheckpointEvents = 200_000

// Server is the job-queue service. One job runs at a time (its units
// fan out over the worker pool); submissions queue in order.
type Server struct {
	cfg     Config
	store   *Store
	limiter *Limiter

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*jobState
	order   []string
	pending []*jobState
	closed  bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// jobState is a Job plus its in-memory scheduling state.
type jobState struct {
	mu     sync.Mutex
	job    *Job
	status string // "queued", "running", "done", "failed", "cancelled"
	// buffered holds finished units waiting for every earlier unit to
	// land, so results.ndjson is written strictly in unit order and
	// stays byte-identical whatever the worker interleaving.
	buffered map[int]ResultLine
	cancel   atomic.Bool
}

// errCancelled aborts a job's remaining units after a cancel request.
var errCancelled = errors.New("serve: job cancelled")

// New opens the state directory, repairs and re-queues interrupted
// jobs, and starts the dispatcher.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.CheckpointEvents == 0 {
		cfg.CheckpointEvents = DefaultCheckpointEvents
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	store, err := OpenStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		store:   store,
		limiter: NewLimiter(cfg.RateCapacity, cfg.RateRefillPerSec, cfg.Now),
		jobs:    make(map[string]*jobState),
	}
	s.cond = sync.NewCond(&s.mu)
	s.ctx, s.cancel = context.WithCancel(context.Background())

	jobs, err := store.LoadJobs()
	if err != nil {
		return nil, err
	}
	for _, j := range jobs {
		js := &jobState{job: j, buffered: make(map[int]ResultLine)}
		switch {
		case j.Err != "":
			js.status = "failed"
		case j.Cancelled:
			js.status = "cancelled"
		case j.Completed == j.Units:
			js.status = "done"
		default:
			js.status = "queued"
		}
		s.jobs[j.ID] = js
		s.order = append(s.order, j.ID)
		if js.status == "queued" {
			s.pending = append(s.pending, js)
			s.cfg.Logf("resuming job %s (%d/%d units done)", j.ID, j.Completed, j.Units)
		}
	}

	s.wg.Add(1)
	go s.dispatch()
	return s, nil
}

// Close stops the dispatcher. A running job checkpoints its in-flight
// units and stays "queued" on disk, ready for the next restart.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// dispatch runs queued jobs one at a time in submission order.
func (s *Server) dispatch() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.pending) == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		js := s.pending[0]
		s.pending = s.pending[1:]
		s.mu.Unlock()
		s.runJob(js)
	}
}

// runJob executes one job's units on the worker pool.
//
//lint:sharedstate every write runUnit reaches through js (buffered map, job progress, results file) happens under js.mu in complete/AppendResult — cross-function lock discipline the summary cannot see
func (s *Server) runJob(js *jobState) {
	if js.cancel.Load() {
		s.finishJob(js, errCancelled)
		return
	}
	js.setStatus("running")
	s.cfg.Logf("job %s running (%d units, %d workers)", js.job.ID, js.job.Units, s.cfg.Workers)
	err := exec.DoWorkers(s.ctx, s.cfg.Workers, js.job.Units,
		func(ctx context.Context, _, u int) error {
			return s.runUnit(ctx, js, u)
		})
	s.finishJob(js, err)
}

// finishJob applies the job's terminal (or re-queueable) state.
func (s *Server) finishJob(js *jobState, err error) {
	js.mu.Lock()
	defer js.mu.Unlock()
	switch {
	case js.job.Completed == js.job.Units:
		js.status = "done"
		s.cfg.Logf("job %s done", js.job.ID)
	case js.cancel.Load() || errors.Is(err, errCancelled):
		if merr := js.job.MarkCancelled(); merr != nil {
			s.cfg.Logf("job %s: persisting cancel marker: %v", js.job.ID, merr)
		}
		js.status = "cancelled"
		s.cfg.Logf("job %s cancelled after %d/%d units", js.job.ID, js.job.Completed, js.job.Units)
	case errors.Is(err, context.Canceled):
		// Server shutdown mid-job: checkpoints are on disk and the
		// job directory carries no terminal marker, so the next
		// restart re-queues and resumes it.
		js.status = "queued"
	case err != nil:
		if merr := js.job.MarkError(err.Error()); merr != nil {
			s.cfg.Logf("job %s: persisting error marker: %v", js.job.ID, merr)
		}
		js.status = "failed"
		s.cfg.Logf("job %s failed: %v", js.job.ID, err)
	default:
		// No error but units missing: results were buffered behind a
		// unit that never landed — impossible unless a unit was
		// skipped; surface loudly.
		if merr := js.job.MarkError("internal: job finished with missing units"); merr != nil {
			s.cfg.Logf("job %s: persisting error marker: %v", js.job.ID, merr)
		}
		js.status = "failed"
	}
}

// interrupted reports whether the unit should stop at the next tick
// boundary: job cancelled or server shutting down.
func (js *jobState) interrupted(ctx context.Context) bool {
	return js.cancel.Load() || ctx.Err() != nil
}

// runUnit drives one sweep unit to completion, checkpointing every
// CheckpointEvents processed events, resuming from the unit's latest
// checkpoint when one exists.
func (s *Server) runUnit(ctx context.Context, js *jobState, u int) error {
	js.mu.Lock()
	persisted := u < js.job.Completed
	_, inFlight := js.buffered[u]
	js.mu.Unlock()
	if persisted || inFlight {
		return nil
	}
	if js.interrupted(ctx) {
		if err := ctx.Err(); err != nil {
			return err
		}
		return errCancelled
	}

	p := js.job.Spec.unitParams(u)
	var run *dreamsim.CheckpointedRun
	if snap := js.job.ReadCheckpoint(u); snap != nil {
		r, err := dreamsim.ResumeRun(p, snap)
		if err == nil {
			run = r
			s.cfg.Logf("job %s unit %d: resumed at %d events", js.job.ID, u, r.Processed())
		} else {
			// A corrupt or version-skewed checkpoint costs a rerun,
			// never the job.
			s.cfg.Logf("job %s unit %d: checkpoint unusable (%v); rerunning", js.job.ID, u, err)
		}
	}
	if run == nil {
		r, err := dreamsim.StartRun(p)
		if err != nil {
			return fmt.Errorf("unit %d: %w", u, err)
		}
		run = r
	}

	for {
		target := run.Processed() + s.cfg.CheckpointEvents
		done := run.RunUntil(func(_ int64, processed uint64) bool {
			return processed >= target || js.interrupted(ctx)
		})
		if done {
			break
		}
		snap, err := run.Snapshot()
		if err != nil {
			return fmt.Errorf("unit %d: %w", u, err)
		}
		if err := js.job.WriteCheckpoint(u, snap); err != nil {
			return fmt.Errorf("unit %d: %w", u, err)
		}
		if js.cancel.Load() {
			return errCancelled
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}

	res, err := run.Finish()
	if err != nil {
		return fmt.Errorf("unit %d: %w", u, err)
	}
	scenario := "full"
	if p.PartialReconfig {
		scenario = "partial"
	}
	return js.complete(ResultLine{
		Unit:     u,
		Nodes:    p.Nodes,
		Tasks:    p.Tasks,
		Scenario: scenario,
		Result:   res,
	})
}

// complete buffers a finished unit and flushes the contiguous prefix
// to the results file; each flushed unit's checkpoint is deleted only
// after its line is on disk.
func (js *jobState) complete(line ResultLine) error {
	js.mu.Lock()
	defer js.mu.Unlock()
	js.buffered[line.Unit] = line
	for {
		next, ok := js.buffered[js.job.Completed]
		if !ok {
			return nil
		}
		if err := js.job.AppendResult(next); err != nil {
			return err
		}
		delete(js.buffered, next.Unit)
		js.job.DeleteCheckpoint(next.Unit)
	}
}

func (js *jobState) setStatus(st string) {
	js.mu.Lock()
	js.status = st
	js.mu.Unlock()
}

// JobStatus is the API view of one job.
type JobStatus struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Units     int    `json:"units"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
}

func (js *jobState) snapshotStatus() JobStatus {
	js.mu.Lock()
	defer js.mu.Unlock()
	return JobStatus{
		ID:        js.job.ID,
		Status:    js.status,
		Units:     js.job.Units,
		Completed: js.job.Completed,
		Error:     js.job.Err,
	}
}

// Handler returns the HTTP API:
//
//	POST /api/v1/jobs              submit a JobSpec; 429 when rate-limited
//	GET  /api/v1/jobs              list job statuses
//	GET  /api/v1/jobs/{id}         one job's status
//	GET  /api/v1/jobs/{id}/results stream results as NDJSON (?follow=1
//	                               keeps streaming until the job ends)
//	POST /api/v1/jobs/{id}/cancel  stop a job at its next tick boundary
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/results", s.handleResults)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	return mux
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limiter.Allow() {
		httpError(w, http.StatusTooManyRequests, "submission rate limit exceeded; retry later")
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "parsing job spec: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	job, err := s.store.CreateJob(spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	js := &jobState{job: job, status: "queued", buffered: make(map[int]ResultLine)}
	s.jobs[job.ID] = js
	s.order = append(s.order, job.ID)
	s.pending = append(s.pending, js)
	s.cond.Signal()
	// Report the state as of acceptance ("queued"), not a racy later
	// read — the dispatcher may already be running the job.
	writeJSON(w, http.StatusAccepted, JobStatus{
		ID: job.ID, Status: "queued", Units: job.Units, Completed: job.Completed,
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id].snapshotStatus())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

// lookup finds a job by the request's {id}.
func (s *Server) lookup(r *http.Request) *jobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[r.PathValue("id")]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r)
	if js == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, js.snapshotStatus())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r)
	if js == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	js.cancel.Store(true)
	// A queued job never reaches the dispatcher's cancel check until
	// it is dequeued, which may be far in the future; settle it now.
	js.mu.Lock()
	if js.status == "queued" {
		if err := js.job.MarkCancelled(); err == nil {
			js.status = "cancelled"
		}
	}
	js.mu.Unlock()
	writeJSON(w, http.StatusOK, js.snapshotStatus())
}

// terminal reports whether the job will append no further results.
func terminal(st string) bool {
	return st == "done" || st == "failed" || st == "cancelled"
}

func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	js := s.lookup(r)
	if js == nil {
		httpError(w, http.StatusNotFound, "no job %q", r.PathValue("id"))
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var offset int64
	for {
		st := js.snapshotStatus()
		n, err := s.copyResults(w, js, offset)
		if err != nil {
			return // client gone or file error; nothing useful to send
		}
		offset += n
		if n > 0 && flusher != nil {
			flusher.Flush()
		}
		if !follow || terminal(st.Status) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		//lint:detrand follow-mode polls the results file on the host clock; no simulation state depends on it
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// copyResults streams the results file from offset; the file only
// ever grows by whole appended lines, so reads at any moment see a
// valid NDJSON prefix.
func (s *Server) copyResults(w http.ResponseWriter, js *jobState, offset int64) (int64, error) {
	f, err := os.Open(js.job.ResultsPath())
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(offset, 0); err != nil {
		return 0, err
	}
	var n int64
	buf := make([]byte, 64<<10)
	for {
		k, rerr := f.Read(buf)
		if k > 0 {
			if _, werr := w.Write(buf[:k]); werr != nil {
				return n, werr
			}
			n += int64(k)
		}
		if rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return n, nil
			}
			return n, rerr
		}
	}
}
