package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer starts a Server over a fresh directory plus an HTTP
// front end; both are torn down with the test.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Dir:              t.TempDir(),
		Workers:          2,
		CheckpointEvents: 1 << 30, // effectively off unless a test dials it down
		Logf:             t.Logf,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func submit(t *testing.T, hs *httptest.Server, spec JobSpec) JobStatus {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func jobStatus(t *testing.T, hs *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(hs.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal status.
func waitTerminal(t *testing.T, hs *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		st := jobStatus(t, hs, id)
		if terminal(st.Status) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// checkGolden compares got against testdata/api/<name>, regenerating
// with DREAMSIM_UPDATE_GOLDEN=1.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "api", name)
	if os.Getenv("DREAMSIM_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with DREAMSIM_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted from its golden fixture:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// do issues a request and returns status code + body.
func do(t *testing.T, method, url string, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, blob
}

// TestAPIGolden pins the whole request/response surface — submit,
// status, list, results, cancel, and their error shapes — against
// golden fixtures.
func TestAPIGolden(t *testing.T) {
	_, hs := newTestServer(t, nil)

	// Submit: sparse spec over defaults; accepted as queued.
	code, body := do(t, "POST", hs.URL+"/api/v1/jobs",
		`{"params":{"Nodes":10,"Configs":8,"Tasks":40,"TaskTimeRange":[100,2000],"Seed":7}}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d: %s", code, body)
	}
	checkGolden(t, "submit_accepted.json", body)

	// Submit: unknown field rejected.
	code, body = do(t, "POST", hs.URL+"/api/v1/jobs", `{"params":{"Taks":1}}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad submit: HTTP %d", code)
	}
	checkGolden(t, "submit_unknown_field.json", body)

	// Submit: invalid grid rejected.
	code, body = do(t, "POST", hs.URL+"/api/v1/jobs", `{"node_counts":[0]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad grid: HTTP %d", code)
	}
	checkGolden(t, "submit_bad_grid.json", body)

	// Status: unknown job is a structured 404.
	code, body = do(t, "GET", hs.URL+"/api/v1/jobs/zzz", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown status: HTTP %d", code)
	}
	checkGolden(t, "status_missing.json", body)

	// Run the job to completion; its terminal status is deterministic.
	st := waitTerminal(t, hs, "j000001")
	if st.Status != "done" {
		t.Fatalf("job ended %q (%s)", st.Status, st.Error)
	}
	code, body = do(t, "GET", hs.URL+"/api/v1/jobs/j000001", "")
	if code != http.StatusOK {
		t.Fatalf("status: HTTP %d", code)
	}
	checkGolden(t, "status_done.json", body)

	code, body = do(t, "GET", hs.URL+"/api/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	checkGolden(t, "list.json", body)

	// Results: the NDJSON stream is byte-deterministic given the seed.
	code, body = do(t, "GET", hs.URL+"/api/v1/jobs/j000001/results", "")
	if code != http.StatusOK {
		t.Fatalf("results: HTTP %d", code)
	}
	checkGolden(t, "results.ndjson", body)

	// Cancel: unknown job 404s; cancelling a finished job is a no-op
	// that reports the terminal status.
	code, body = do(t, "POST", hs.URL+"/api/v1/jobs/zzz/cancel", "")
	if code != http.StatusNotFound {
		t.Fatalf("unknown cancel: HTTP %d", code)
	}
	checkGolden(t, "cancel_missing.json", body)
	code, body = do(t, "POST", hs.URL+"/api/v1/jobs/j000001/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	checkGolden(t, "cancel_done.json", body)
}

// TestResultsFollowStreams pins that ?follow=1 delivers every line
// and terminates once the job does — the streamed body must equal the
// results file byte for byte.
func TestResultsFollowStreams(t *testing.T) {
	s, hs := newTestServer(t, func(cfg *Config) {
		cfg.CheckpointEvents = 500 // force pauses so the stream has middles
	})
	spec := testSpec([]int{10, 14}, nil)
	st := submit(t, hs, spec)

	type streamed struct {
		body []byte
		err  error
	}
	ch := make(chan streamed, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/api/v1/jobs/" + st.ID + "/results?follow=1")
		if err != nil {
			ch <- streamed{nil, err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		ch <- streamed{body, err}
	}()

	final := waitTerminal(t, hs, st.ID)
	if final.Status != "done" {
		t.Fatalf("job ended %q (%s)", final.Status, final.Error)
	}
	got := <-ch
	if got.err != nil {
		t.Fatal(got.err)
	}
	onDisk, err := os.ReadFile(s.jobs[st.ID].job.ResultsPath())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.body, onDisk) {
		t.Fatalf("followed stream (%d bytes) != results file (%d bytes)", len(got.body), len(onDisk))
	}
	if lines := bytes.Count(onDisk, []byte("\n")); lines != final.Units {
		t.Fatalf("results has %d lines, want %d", lines, final.Units)
	}
}

// TestSubmitRateLimited pins the 429 path and the refill recovery,
// on a stepped fake clock.
func TestSubmitRateLimited(t *testing.T) {
	clk := &fakeClock{t: time.Unix(2000, 0)}
	_, hs := newTestServer(t, func(cfg *Config) {
		cfg.RateCapacity = 2
		cfg.RateRefillPerSec = 1
		cfg.Now = clk.now
	})
	spec, _ := json.Marshal(testSpec(nil, nil))
	for i := 0; i < 2; i++ {
		code, body := do(t, "POST", hs.URL+"/api/v1/jobs", string(spec))
		if code != http.StatusAccepted {
			t.Fatalf("burst submit %d: HTTP %d: %s", i, code, body)
		}
	}
	code, body := do(t, "POST", hs.URL+"/api/v1/jobs", string(spec))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit: HTTP %d", code)
	}
	checkGolden(t, "submit_limited.json", body)

	clk.advance(time.Second)
	if code, body := do(t, "POST", hs.URL+"/api/v1/jobs", string(spec)); code != http.StatusAccepted {
		t.Fatalf("post-refill submit: HTTP %d: %s", code, body)
	}
}

// TestConcurrentSubmitters races many submitters against one pool —
// meaningful under -race; every job must still land complete, with
// distinct IDs, all results on disk.
func TestConcurrentSubmitters(t *testing.T) {
	_, hs := newTestServer(t, nil)
	const submitters = 6
	ids := make([]string, submitters)
	var wg sync.WaitGroup
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			spec := testSpec(nil, nil)
			spec.Params.Seed = uint64(100 + i)
			blob, _ := json.Marshal(spec)
			resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Error(err)
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	seen := make(map[string]bool)
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		if seen[id] {
			t.Fatalf("duplicate job ID %s", id)
		}
		seen[id] = true
		if st := waitTerminal(t, hs, id); st.Status != "done" || st.Completed != st.Units {
			t.Fatalf("job %s ended %q %d/%d (%s)", id, st.Status, st.Completed, st.Units, st.Error)
		}
	}
}

// TestCancelStopsJob submits a long job, cancels it mid-run, and
// checks the terminal state is persisted.
func TestCancelStopsJob(t *testing.T) {
	s, hs := newTestServer(t, func(cfg *Config) {
		cfg.Workers = 1
		cfg.CheckpointEvents = 2000
	})
	spec := testSpec(nil, nil)
	spec.Params.Tasks = 200000 // long enough that cancel wins the race
	st := submit(t, hs, spec)

	deadline := time.Now().Add(time.Minute)
	for jobStatus(t, hs, st.ID).Status != "running" {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}
	code, _ := do(t, "POST", hs.URL+"/api/v1/jobs/"+st.ID+"/cancel", "")
	if code != http.StatusOK {
		t.Fatalf("cancel: HTTP %d", code)
	}
	final := waitTerminal(t, hs, st.ID)
	if final.Status != "cancelled" {
		t.Fatalf("job ended %q, want cancelled", final.Status)
	}
	if _, err := os.Stat(filepath.Join(s.jobs[st.ID].job.dir, "cancelled")); err != nil {
		t.Fatalf("cancelled marker missing: %v", err)
	}
	// The terminal state must survive a restart un-requeued.
	s2, err := New(Config{Dir: s.cfg.Dir, Workers: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.jobs[st.ID].snapshotStatus().Status; got != "cancelled" {
		t.Fatalf("reloaded as %q, want cancelled", got)
	}
}

// TestResumeAfterShutdown is the in-process half of the kill story
// (cmd/dreamserve's harness does the SIGKILL half): a sweep
// interrupted by Server.Close mid-run and finished by later server
// generations must produce a results file byte-identical to one
// produced by an uninterrupted server.
func TestResumeAfterShutdown(t *testing.T) {
	spec := testSpec([]int{10, 14}, []int{1500, 3000})
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: one server generation, never interrupted.
	refDir := t.TempDir()
	ref, err := New(Config{Dir: refDir, Workers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(ref.Handler())
	resp, err := http.Post(hs.URL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st := waitTerminal(t, hs, "j000001"); st.Status != "done" {
		t.Fatalf("reference job ended %q (%s)", st.Status, st.Error)
	}
	hs.Close()
	ref.Close()
	want, err := os.ReadFile(filepath.Join(refDir, "jobs", "j000001", "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: submit, then cycle server generations — each Close
	// lands mid-run until the job eventually finishes.
	dir := t.TempDir()
	cfg := Config{Dir: dir, Workers: 2, CheckpointEvents: 5000, Logf: t.Logf}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs = httptest.NewServer(s.Handler())
	resp, err = http.Post(hs.URL+"/api/v1/jobs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	hs.Close()

	generations := 1
	for {
		time.Sleep(30 * time.Millisecond)
		s.Close()
		st := s.jobs["j000001"].snapshotStatus()
		if st.Status == "done" {
			break
		}
		if terminal(st.Status) {
			t.Fatalf("interrupted job ended %q (%s)", st.Status, st.Error)
		}
		if generations > 200 {
			t.Fatal("job made no progress across generations")
		}
		if s, err = New(cfg); err != nil {
			t.Fatal(err)
		}
		generations++
	}
	t.Logf("finished after %d server generations", generations)

	got, err := os.ReadFile(filepath.Join(dir, "jobs", "j000001", "results.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed results (%d bytes) differ from uninterrupted reference (%d bytes)", len(got), len(want))
	}
}
