package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"dreamsim"
)

// On-disk job layout, one directory per job under <dir>/jobs/:
//
//	spec.json       submitted sweep spec (written once, atomically)
//	results.ndjson  one JSON line per finished unit, in unit order
//	ck-<unit>.snap  latest checkpoint of an in-flight unit
//	cancelled       marker: the job was cancelled
//	error           marker: the job failed; contents are the message
//
// Everything is crash-safe by construction: spec and checkpoints land
// via write-to-temp + rename, result lines are single appends, and
// loadJob truncates results.ndjson back to its longest valid prefix —
// a line torn by a kill mid-append simply re-runs its unit (from the
// unit's checkpoint when one survived).

// JobSpec is a submitted sweep: base parameters plus the node/task
// count grid. Empty grids default to the base parameters' own
// Nodes/Tasks — a single-cell sweep. Each cell runs BOTH
// reconfiguration scenarios (the paper's head-to-head), so a job has
// 2 × |node_counts| × |task_counts| units.
type JobSpec struct {
	Params     dreamsim.Params `json:"params"`
	NodeCounts []int           `json:"node_counts,omitempty"`
	TaskCounts []int           `json:"task_counts,omitempty"`
}

// UnmarshalJSON decodes a spec over DefaultParams, so a submission
// only names the parameters it changes — {"params":{"Tasks":2000}}
// is a complete spec. Unknown fields are rejected: a misspelled knob
// silently reverting to its default would corrupt a sweep.
func (s *JobSpec) UnmarshalJSON(data []byte) error {
	type plain JobSpec // shed the method to avoid recursion
	tmp := plain{Params: dreamsim.DefaultParams()}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tmp); err != nil {
		return err
	}
	*s = JobSpec(tmp)
	return nil
}

// normalize fills grid defaults and validates the spec shape.
func (s *JobSpec) normalize() error {
	if len(s.NodeCounts) == 0 {
		s.NodeCounts = []int{s.Params.Nodes}
	}
	if len(s.TaskCounts) == 0 {
		s.TaskCounts = []int{s.Params.Tasks}
	}
	seen := make(map[int]bool)
	for _, n := range s.NodeCounts {
		if n <= 0 {
			return fmt.Errorf("serve: node count %d", n)
		}
		if seen[n] {
			return fmt.Errorf("serve: duplicate node count %d", n)
		}
		seen[n] = true
	}
	seen = make(map[int]bool)
	for _, n := range s.TaskCounts {
		if n <= 0 {
			return fmt.Errorf("serve: task count %d", n)
		}
		if seen[n] {
			return fmt.Errorf("serve: duplicate task count %d", n)
		}
		seen[n] = true
	}
	return nil
}

// units is the job's total unit count: two scenarios per grid cell.
func (s *JobSpec) units() int { return 2 * len(s.NodeCounts) * len(s.TaskCounts) }

// unitParams lowers unit u onto run parameters: cell u/2 in row-major
// grid order (node counts outer), full scenario on even units,
// partial on odd — the RunMatrix unit model, so one job reproduces
// the library sweep exactly.
func (s *JobSpec) unitParams(u int) dreamsim.Params {
	cell := u / 2
	p := s.Params
	p.Nodes = s.NodeCounts[cell/len(s.TaskCounts)]
	p.Tasks = s.TaskCounts[cell%len(s.TaskCounts)]
	p.PartialReconfig = u%2 == 1
	return p
}

// ResultLine is one line of results.ndjson.
type ResultLine struct {
	Unit     int             `json:"unit"`
	Nodes    int             `json:"nodes"`
	Tasks    int             `json:"tasks"`
	Scenario string          `json:"scenario"`
	Result   dreamsim.Result `json:"result"`
}

// Store is the jobs directory.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the serving state directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Job is one persisted sweep job.
type Job struct {
	ID    string
	Spec  JobSpec
	Units int
	// Completed is the number of result lines safely on disk — always
	// a contiguous prefix of the unit sequence.
	Completed int
	// Cancelled and Err reflect the terminal markers.
	Cancelled bool
	Err       string

	dir string
}

// jobDir names are zero-padded so lexical order is submission order.
func (st *Store) jobDir(id string) string { return filepath.Join(st.dir, "jobs", id) }

// CreateJob allocates the next job ID and persists the spec.
func (st *Store) CreateJob(spec JobSpec) (*Job, error) {
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	ids, err := st.jobIDs()
	if err != nil {
		return nil, err
	}
	next := 1
	if len(ids) > 0 {
		last := ids[len(ids)-1]
		if _, err := fmt.Sscanf(last, "j%d", &next); err != nil {
			return nil, fmt.Errorf("serve: malformed job directory %q", last)
		}
		next++
	}
	id := fmt.Sprintf("j%06d", next)
	dir := st.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	blob, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := writeFileAtomic(filepath.Join(dir, "spec.json"), blob); err != nil {
		return nil, err
	}
	return &Job{ID: id, Spec: spec, Units: spec.units(), dir: dir}, nil
}

// jobIDs lists existing job directories in ID order.
func (st *Store) jobIDs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, "jobs"))
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

// LoadJobs reads every persisted job in submission order, repairing
// each results file to its longest valid prefix — the restart path.
func (st *Store) LoadJobs() ([]*Job, error) {
	ids, err := st.jobIDs()
	if err != nil {
		return nil, err
	}
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		j, err := st.loadJob(id)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", id, err)
		}
		jobs = append(jobs, j)
	}
	return jobs, nil
}

func (st *Store) loadJob(id string) (*Job, error) {
	dir := st.jobDir(id)
	blob, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, err
	}
	var spec JobSpec
	if err := json.Unmarshal(blob, &spec); err != nil {
		return nil, fmt.Errorf("spec.json: %w", err)
	}
	if err := spec.normalize(); err != nil {
		return nil, err
	}
	j := &Job{ID: id, Spec: spec, Units: spec.units(), dir: dir}
	if msg, err := os.ReadFile(filepath.Join(dir, "error")); err == nil {
		j.Err = string(msg)
	}
	if _, err := os.Stat(filepath.Join(dir, "cancelled")); err == nil {
		j.Cancelled = true
	}
	if err := j.repairResults(); err != nil {
		return nil, err
	}
	// A kill between a unit's result append and its checkpoint delete
	// leaves a stale (harmless) checkpoint; sweep those now.
	for u := 0; u < j.Completed; u++ {
		j.DeleteCheckpoint(u)
	}
	return j, nil
}

// repairResults truncates results.ndjson to its longest valid prefix
// — complete lines whose unit numbers are exactly 0, 1, 2, … — and
// sets Completed. A torn tail line (kill mid-append) or any line out
// of sequence is discarded; its unit re-runs.
func (j *Job) repairResults() error {
	path := j.ResultsPath()
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	valid := 0 // byte length of the valid prefix
	units := 0
	rest := data
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn tail
		}
		var line struct {
			Unit int `json:"unit"`
		}
		if json.Unmarshal(rest[:nl], &line) != nil || line.Unit != units {
			break
		}
		units++
		valid += nl + 1
		rest = rest[nl+1:]
	}
	if valid != len(data) {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return err
		}
	}
	j.Completed = units
	return nil
}

// ResultsPath is the job's NDJSON results file.
func (j *Job) ResultsPath() string { return filepath.Join(j.dir, "results.ndjson") }

// AppendResult appends one result line. The caller feeds units in
// order; the line plus newline lands in a single write so a kill
// leaves at worst one torn tail line for repairResults.
func (j *Job) AppendResult(line ResultLine) error {
	if line.Unit != j.Completed {
		return fmt.Errorf("serve: appending unit %d, next is %d", line.Unit, j.Completed)
	}
	blob, err := json.Marshal(line)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(j.ResultsPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(blob, '\n'))
	serr := f.Sync()
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return cerr
	}
	j.Completed++
	return nil
}

func (j *Job) checkpointPath(unit int) string {
	return filepath.Join(j.dir, fmt.Sprintf("ck-%d.snap", unit))
}

// WriteCheckpoint atomically replaces unit's checkpoint.
func (j *Job) WriteCheckpoint(unit int, snap []byte) error {
	return writeFileAtomic(j.checkpointPath(unit), snap)
}

// ReadCheckpoint returns unit's checkpoint bytes, nil when none.
func (j *Job) ReadCheckpoint(unit int) []byte {
	data, err := os.ReadFile(j.checkpointPath(unit))
	if err != nil {
		return nil
	}
	return data
}

// DeleteCheckpoint removes unit's checkpoint; called only after the
// unit's result line is on disk, so a kill between the two leaves a
// stale checkpoint (harmless — the unit is already complete) rather
// than a lost unit.
func (j *Job) DeleteCheckpoint(unit int) {
	os.Remove(j.checkpointPath(unit))
}

// MarkCancelled persists the cancelled marker.
func (j *Job) MarkCancelled() error {
	j.Cancelled = true
	return writeFileAtomic(filepath.Join(j.dir, "cancelled"), nil)
}

// MarkError persists the failure marker.
func (j *Job) MarkError(msg string) error {
	j.Err = msg
	return writeFileAtomic(filepath.Join(j.dir, "error"), []byte(msg))
}

// writeFileAtomic writes via a temp file + rename + directory sync so
// a kill never leaves a half-written file under the final name.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
