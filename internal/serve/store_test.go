package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dreamsim"
)

func testSpec(nodes, tasks []int) JobSpec {
	p := dreamsim.DefaultParams()
	p.Nodes = 10
	p.Configs = 8
	p.Tasks = 40
	p.TaskTimeRange = [2]int64{100, 2000}
	return JobSpec{Params: p, NodeCounts: nodes, TaskCounts: tasks}
}

func TestSpecUnitLowering(t *testing.T) {
	spec := testSpec([]int{10, 20}, []int{100, 200, 300})
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := spec.units(); got != 12 {
		t.Fatalf("units = %d, want 12", got)
	}
	// Row-major cells, node counts outer; even units full, odd partial
	// — the RunMatrix unit model.
	wants := []struct {
		nodes, tasks int
		partial      bool
	}{
		{10, 100, false}, {10, 100, true},
		{10, 200, false}, {10, 200, true},
		{10, 300, false}, {10, 300, true},
		{20, 100, false}, {20, 100, true},
		{20, 200, false}, {20, 200, true},
		{20, 300, false}, {20, 300, true},
	}
	for u, want := range wants {
		p := spec.unitParams(u)
		if p.Nodes != want.nodes || p.Tasks != want.tasks || p.PartialReconfig != want.partial {
			t.Fatalf("unit %d lowered to nodes=%d tasks=%d partial=%v, want %+v",
				u, p.Nodes, p.Tasks, p.PartialReconfig, want)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	spec := testSpec(nil, nil)
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	if spec.units() != 2 {
		t.Fatalf("defaulted grid has %d units, want 2", spec.units())
	}
	for _, bad := range []JobSpec{
		testSpec([]int{0}, nil),
		testSpec([]int{10, 10}, nil),
		testSpec(nil, []int{-5}),
		testSpec(nil, []int{100, 100}),
	} {
		if err := bad.normalize(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
}

func TestSpecDecodeAppliesDefaults(t *testing.T) {
	var spec JobSpec
	if err := json.Unmarshal([]byte(`{"params":{"Tasks":2000},"node_counts":[100,200]}`), &spec); err != nil {
		t.Fatal(err)
	}
	def := dreamsim.DefaultParams()
	if spec.Params.Tasks != 2000 || spec.Params.Configs != def.Configs || spec.Params.NextTaskMaxInterval != def.NextTaskMaxInterval {
		t.Fatalf("sparse spec decoded to %+v", spec.Params)
	}
	if err := json.Unmarshal([]byte(`{"params":{"Taks":1}}`), &spec); err == nil {
		t.Fatal("misspelled parameter accepted")
	}
}

func TestStoreJobIDsAreSequentialAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, err := st.CreateJob(testSpec(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	j2, err := st.CreateJob(testSpec(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if j1.ID != "j000001" || j2.ID != "j000002" {
		t.Fatalf("IDs %q, %q", j1.ID, j2.ID)
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	j3, err := st2.CreateJob(testSpec(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if j3.ID != "j000003" {
		t.Fatalf("ID after reopen %q, want j000003", j3.ID)
	}
	jobs, err := st2.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || jobs[0].ID != "j000001" || jobs[2].ID != "j000003" {
		t.Fatalf("LoadJobs returned %d jobs", len(jobs))
	}
}

func TestAppendResultEnforcesOrder(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.CreateJob(testSpec(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.AppendResult(ResultLine{Unit: 1}); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	if err := j.AppendResult(ResultLine{Unit: 0}); err != nil {
		t.Fatal(err)
	}
	if err := j.AppendResult(ResultLine{Unit: 0}); err == nil {
		t.Fatal("duplicate append accepted")
	}
	if j.Completed != 1 {
		t.Fatalf("Completed = %d", j.Completed)
	}
}

// TestRepairResults pins the restart contract: results.ndjson is
// trusted only up to its longest prefix of complete, consecutive
// lines; everything after a torn or out-of-sequence line re-runs.
func TestRepairResults(t *testing.T) {
	line := func(u int) string {
		blob, err := json.Marshal(ResultLine{Unit: u, Nodes: 10, Tasks: 40, Scenario: "full"})
		if err != nil {
			t.Fatal(err)
		}
		return string(blob) + "\n"
	}
	cases := []struct {
		name      string
		content   string
		completed int
		keep      string
	}{
		{"empty", "", 0, ""},
		{"clean", line(0) + line(1), 2, line(0) + line(1)},
		{"torn tail", line(0) + line(1)[:17], 1, line(0)},
		{"gap", line(0) + line(2), 1, line(0)},
		{"garbage line", line(0) + "not json\n" + line(1), 1, line(0)},
		{"all torn", line(0)[:9], 0, ""},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.name, " ", "_"), func(t *testing.T) {
			st, err := OpenStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			j, err := st.CreateJob(testSpec(nil, nil))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(j.ResultsPath(), []byte(tc.content), 0o644); err != nil {
				t.Fatal(err)
			}
			loaded, err := st.LoadJobs()
			if err != nil {
				t.Fatal(err)
			}
			got := loaded[len(loaded)-1]
			if got.Completed != tc.completed {
				t.Fatalf("Completed = %d, want %d", got.Completed, tc.completed)
			}
			data, err := os.ReadFile(got.ResultsPath())
			if err != nil && !os.IsNotExist(err) {
				t.Fatal(err)
			}
			if string(data) != tc.keep {
				t.Fatalf("repaired file is %q, want %q", data, tc.keep)
			}
		})
	}
}

func TestCheckpointRoundTripAndMarkers(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := st.CreateJob(testSpec(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if j.ReadCheckpoint(0) != nil {
		t.Fatal("phantom checkpoint")
	}
	if err := j.WriteCheckpoint(0, []byte("snap")); err != nil {
		t.Fatal(err)
	}
	if got := j.ReadCheckpoint(0); string(got) != "snap" {
		t.Fatalf("checkpoint round trip gave %q", got)
	}
	j.DeleteCheckpoint(0)
	if j.ReadCheckpoint(0) != nil {
		t.Fatal("checkpoint survived deletion")
	}

	if err := j.MarkError("boom"); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkCancelled(); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Err != "boom" || !jobs[0].Cancelled {
		t.Fatalf("markers not reloaded: %+v", jobs[0])
	}
}

func TestWriteFileAtomicLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	for i := 0; i < 3; i++ {
		if err := writeFileAtomic(path, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("stray files left behind: %v", entries)
	}
}
