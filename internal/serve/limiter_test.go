package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a stepped clock for deterministic limiter tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLimiterBurstAndRefill(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	l := NewLimiter(2, 1, clk.now)

	// The bucket starts full: the first burst spends it.
	if !l.Allow() || !l.Allow() {
		t.Fatal("full bucket rejected the initial burst")
	}
	if l.Allow() {
		t.Fatal("empty bucket accepted a third request")
	}

	// Refill is fractional: half a second is not a whole token.
	clk.advance(500 * time.Millisecond)
	if l.Allow() {
		t.Fatal("half a token spent as a whole one")
	}
	clk.advance(500 * time.Millisecond)
	if !l.Allow() {
		t.Fatal("refilled token rejected")
	}

	// Refill caps at capacity: a long idle stretch is still one burst.
	clk.advance(time.Hour)
	if !l.Allow() || !l.Allow() {
		t.Fatal("capped bucket rejected a capacity burst")
	}
	if l.Allow() {
		t.Fatal("bucket refilled beyond capacity")
	}
}

func TestLimiterZeroCapacityDisables(t *testing.T) {
	l := NewLimiter(0, 0, nil)
	for i := 0; i < 100; i++ {
		if !l.Allow() {
			t.Fatal("capacity 0 should disable limiting")
		}
	}
}
