package serve

import (
	"sync"
	"time"
)

// Limiter is a token-bucket rate limiter for job submission: the
// bucket holds up to capacity tokens, refills at refillPerSec, and
// each accepted submission spends one. A burst larger than the
// remaining tokens is rejected (HTTP 429 at the API layer) instead of
// queued — the job queue itself provides the backlog; the limiter
// only bounds how fast callers may grow it.
type Limiter struct {
	mu       sync.Mutex
	capacity float64
	refill   float64
	tokens   float64
	last     time.Time
	now      func() time.Time
}

// NewLimiter builds a full bucket. now is the clock and is injectable
// so tests can step time deterministically; nil means time.Now.
// capacity < 1 disables limiting (every Allow succeeds).
//
//lint:detrand the serving layer rate-limits real HTTP clients on the host clock; no simulation state depends on it
func NewLimiter(capacity int, refillPerSec float64, now func() time.Time) *Limiter {
	if now == nil {
		now = time.Now
	}
	l := &Limiter{
		capacity: float64(capacity),
		refill:   refillPerSec,
		tokens:   float64(capacity),
		now:      now,
	}
	l.last = now()
	return l
}

// Allow spends one token if available.
func (l *Limiter) Allow() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.capacity < 1 {
		return true
	}
	t := l.now()
	if dt := t.Sub(l.last).Seconds(); dt > 0 {
		l.tokens += dt * l.refill
		if l.tokens > l.capacity {
			l.tokens = l.capacity
		}
		l.last = t
	}
	if l.tokens < 1 {
		return false
	}
	l.tokens--
	return true
}
