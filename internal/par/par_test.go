package par_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"dreamsim/internal/invariant"
	"dreamsim/internal/par"
)

// sumRunner accumulates per-worker partial sums into stride-padded
// slots; the test reduces them afterwards.
type sumRunner struct {
	in   []int64
	out  []int64 // slot w*8
	seen []int32 // per-index visit counts (each index exactly once)
}

func (r *sumRunner) RunChunk(w, lo, hi int) {
	var s int64
	for i := lo; i < hi; i++ {
		s += r.in[i]
		r.seen[i]++
	}
	r.out[w*8] += s
}

func newSumRunner(n int, workers int) *sumRunner {
	r := &sumRunner{
		in:   make([]int64, n),
		out:  make([]int64, workers*8),
		seen: make([]int32, n),
	}
	for i := range r.in {
		r.in[i] = int64(i + 1)
	}
	return r
}

func (r *sumRunner) total() int64 {
	var s int64
	for _, v := range r.out {
		s += v
	}
	return s
}

func TestPoolCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{2, 3, 4, 8} {
		p := par.NewPool(workers)
		if p == nil {
			t.Fatalf("NewPool(%d) = nil", workers)
		}
		for _, n := range []int{0, 1, 2, workers - 1, workers, workers + 1, 1000, 4097} {
			r := newSumRunner(n, workers)
			p.Run(r, n)
			want := int64(n) * int64(n+1) / 2
			if got := r.total(); got != want {
				t.Fatalf("workers=%d n=%d: sum %d, want %d", workers, n, got, want)
			}
			for i, c := range r.seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestNewPoolSequentialWidthIsNil(t *testing.T) {
	if p := par.NewPool(1); p != nil {
		t.Fatal("NewPool(1) should be nil: sequential width needs no pool")
	}
	if p := par.NewPool(0); p != nil {
		t.Fatal("NewPool(0) should be nil")
	}
}

// TestPoolChunkingIsStatic pins the determinism property: worker w's
// chunk bounds depend only on (n, width), never on scheduling.
func TestPoolChunkingIsStatic(t *testing.T) {
	p := par.NewPool(4)
	defer p.Close()
	var ref []map[int]span
	for round := 0; round < 20; round++ {
		var rounds []map[int]span
		for _, n := range []int{5, 64, 1000} {
			r := &recordRunner{got: make(map[int]span, 4)}
			p.Run(r, n)
			rounds = append(rounds, r.got)
		}
		if ref == nil {
			ref = rounds
			continue
		}
		for i := range rounds {
			for w, s := range rounds[i] {
				if ref[i][w] != s {
					t.Fatalf("round %d: worker %d chunk %v, first run saw %v", round, w, s, ref[i][w])
				}
			}
			if len(rounds[i]) != len(ref[i]) {
				t.Fatalf("round %d: %d chunks, first run had %d", round, len(rounds[i]), len(ref[i]))
			}
		}
	}
}

type span struct{ lo, hi int }

type recordRunner struct {
	mu  sync.Mutex
	got map[int]span
}

func (r *recordRunner) RunChunk(w, lo, hi int) {
	r.mu.Lock()
	r.got[w] = span{lo, hi}
	r.mu.Unlock()
}

func TestPoolRunZeroAlloc(t *testing.T) {
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := par.NewPool(4)
	defer p.Close()
	r := newSumRunner(4096, 4)
	p.Run(r, 4096) // warm
	if avg := testing.AllocsPerRun(200, func() { p.Run(r, 4096) }); avg != 0 {
		t.Fatalf("Pool.Run allocates: %.1f allocs/op", avg)
	}
}

// TestPoolFinalizerStopsWorkers: an abandoned pool's goroutines must
// exit after collection rather than leak for the process lifetime.
func TestPoolFinalizerStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		p := par.NewPool(8)
		r := newSumRunner(100, 8)
		p.Run(r, 100)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("worker goroutines survived collection: %d before, %d after",
		before, runtime.NumGoroutine())
}

func TestForChunksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 3, 100} {
			seen := make([]int32, n)
			sums := make([]int64, 8*8)
			par.ForChunks(workers, n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					seen[i]++
					sums[w*8] += int64(i + 1)
				}
			})
			var got int64
			for _, v := range sums {
				got += v
			}
			if want := int64(n) * int64(n+1) / 2; got != want {
				t.Fatalf("workers=%d n=%d: sum %d, want %d", workers, n, got, want)
			}
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}
