// Package par is the intra-run worker pool: a fixed set of persistent
// goroutines that split one index range into contiguous chunks and run
// them concurrently. It exists for the resource manager's placement
// scans and the core batcher's same-tick speculation, both of which
// demand two properties the general executor (internal/exec) does not
// provide on its hot path:
//
//   - Zero allocations per dispatch. Run sends plain chunk structs over
//     a pre-made channel; there are no closures, contexts or WaitGroups
//     per call, so a scan kernel dispatched thousands of times per run
//     stays allocation-free.
//   - Static chunking. Each worker index owns one deterministic
//     contiguous range of [0, n), decided by arithmetic alone — never by
//     which goroutine claimed an index first — so per-worker partial
//     results (argmin slots, speculative decisions) land in the same
//     slot on every run and reductions are order-independent of the OS
//     scheduler.
//
// The determinism contract still demands care from the Runner: chunk
// results must be combined by a rule that does not depend on completion
// order (see DESIGN.md §14).
package par

import (
	"runtime"
	"sync"
)

// Runner is one parallelizable computation. RunChunk processes the
// half-open index range [lo, hi) as worker w; it runs concurrently
// with the other workers' chunks, so it may write only state that
// worker w owns (typically a result slot indexed by w).
type Runner interface {
	RunChunk(w, lo, hi int)
}

// chunk is one unit of dispatched work.
type chunk struct {
	r      Runner
	w      int
	lo, hi int
}

// pool is the shared state the worker goroutines hold. It is split
// from Pool so that an abandoned Pool can be finalized: the workers
// reference only the inner struct, leaving the outer handle
// collectable, and its finalizer closes the jobs channel so the
// goroutines exit instead of leaking.
type pool struct {
	workers int
	jobs    chan chunk
	done    chan struct{}
	once    sync.Once
}

func (p *pool) work() {
	for c := range p.jobs {
		c.r.RunChunk(c.w, c.lo, c.hi)
		p.done <- struct{}{}
	}
}

func (p *pool) close() { p.once.Do(func() { close(p.jobs) }) }

// Pool dispatches Runners over a bounded set of persistent workers.
// A Pool is owned by one goroutine: Run may not be called
// concurrently with itself or with Close.
type Pool struct {
	inner *pool
}

// NewPool starts a pool of the given width; workers < 2 yields nil
// (callers treat a nil pool as "run sequentially"). The pool keeps
// workers-1 goroutines parked — the caller's goroutine is the final
// worker, running chunk 0 inline during Run — and they exit when the
// pool is closed or garbage-collected.
func NewPool(workers int) *Pool {
	if workers < 2 {
		return nil
	}
	inner := &pool{
		workers: workers,
		jobs:    make(chan chunk),
		done:    make(chan struct{}, workers),
	}
	for i := 1; i < workers; i++ {
		go inner.work()
	}
	p := &Pool{inner: inner}
	runtime.SetFinalizer(p, func(p *Pool) { p.inner.close() })
	return p
}

// Workers reports the pool's width (including the caller's goroutine).
func (p *Pool) Workers() int { return p.inner.workers }

// Chunks reports how many chunks Run(r, n) executes: worker slots w in
// [0, Chunks(n)) receive RunChunk calls, higher slots do not — their
// per-worker result cells keep stale contents, so reductions must stop
// at this bound. Ceil-division chunking can exhaust n before the full
// width (for example n=9 at width 8 yields 5 chunks of size 2).
func (p *Pool) Chunks(n int) int {
	if n <= 0 {
		return 0
	}
	k := p.inner.workers
	if n < k {
		k = n
	}
	size := (n + k - 1) / k
	return (n + size - 1) / size
}

// Close stops the worker goroutines. Run must not be called after
// Close. Closing is optional — an unreachable Pool is finalized — but
// deterministic shutdown (tests, checkpoint teardown) can force it.
func (p *Pool) Close() {
	p.inner.close()
	runtime.SetFinalizer(p, nil)
}

// Run splits [0, n) into at most Workers contiguous chunks and
// executes r over them concurrently, returning when every chunk is
// done. Chunk boundaries depend only on n and the pool width, and
// worker w always receives the w-th chunk, so per-worker result slots
// are stable across runs. The calling goroutine executes chunk 0
// itself. Run performs no allocations.
func (p *Pool) Run(r Runner, n int) {
	if n <= 0 {
		return
	}
	k := p.inner.workers
	if n < k {
		k = n
	}
	size := (n + k - 1) / k
	sent := 0
	for w := 1; w < k; w++ {
		lo := w * size
		if lo >= n {
			break
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		p.inner.jobs <- chunk{r: r, w: w, lo: lo, hi: hi}
		sent++
	}
	if size > n {
		size = n
	}
	//lint:allocfree dynamic dispatch: every Runner handed to Run is itself a //dreamsim:noalloc kernel; TestBatchTickZeroAlloc and the scan benches gate the closed loops
	r.RunChunk(0, 0, size)
	for i := 0; i < sent; i++ {
		<-p.inner.done
	}
}

// ForChunks is the convenience closure form of Run for cold paths:
// it splits [0, n) into at most workers contiguous chunks and invokes
// fn(w, lo, hi) concurrently, spawning transient goroutines (one
// closure and one goroutine per chunk — do not use on an
// allocation-gated path). The same chunking and worker-slot rules as
// Pool.Run apply, and the same shared-state discipline: fn may write
// only state owned by its worker index w (the sharedstate analyzer
// checks closures handed to ForChunks).
func ForChunks(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	k := workers
	if k < 1 {
		k = 1
	}
	if n < k {
		k = n
	}
	size := (n + k - 1) / k
	var wg sync.WaitGroup
	for w := 1; w < k; w++ {
		lo := w * size
		if lo >= n {
			break
		}
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	if size > n {
		size = n
	}
	fn(0, 0, size)
	wg.Wait()
}
