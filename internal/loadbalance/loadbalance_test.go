package loadbalance

import (
	"math"
	"testing"

	"dreamsim/internal/model"
)

// mkNode builds a partial node with cfgArea configured and running
// tasks on the first `running` regions.
func mkNode(t *testing.T, no int, total int64, cfgAreas []int64, running int) *model.Node {
	t.Helper()
	n := model.NewNode(no, total, true)
	for i, a := range cfgAreas {
		e, err := n.SendBitstream(&model.Config{No: i, ReqArea: a})
		if err != nil {
			t.Fatal(err)
		}
		if i < running {
			if err := n.AddTaskToNode(e, model.NewTask(100*no+i, a, i, 100, 0)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return n
}

func TestLoads(t *testing.T) {
	nodes := []*model.Node{
		mkNode(t, 0, 4000, []int64{1000, 500}, 1),
		mkNode(t, 1, 2000, nil, 0),
	}
	loads := Loads(nodes)
	if len(loads) != 2 {
		t.Fatal("wrong length")
	}
	if loads[0].Running != 1 || loads[0].AreaInUse != 1500 {
		t.Fatalf("load[0]: %+v", loads[0])
	}
	if math.Abs(loads[0].Utilization-1500.0/4000.0) > 1e-12 {
		t.Fatalf("utilization: %v", loads[0].Utilization)
	}
	if loads[1].Running != 0 || loads[1].AreaInUse != 0 || loads[1].Utilization != 0 {
		t.Fatalf("load[1]: %+v", loads[1])
	}
}

func TestImbalance(t *testing.T) {
	if Imbalance(nil) != 0 {
		t.Fatal("nil nodes imbalance not 0")
	}
	idle := []*model.Node{mkNode(t, 0, 4000, nil, 0), mkNode(t, 1, 4000, nil, 0)}
	if Imbalance(idle) != 0 {
		t.Fatal("idle system imbalance not 0")
	}
	even := []*model.Node{
		mkNode(t, 0, 4000, []int64{500}, 1),
		mkNode(t, 1, 4000, []int64{500}, 1),
	}
	if Imbalance(even) != 0 {
		t.Fatal("even load imbalance not 0")
	}
	skewed := []*model.Node{
		mkNode(t, 0, 4000, []int64{500, 500, 500, 500}, 4),
		mkNode(t, 1, 4000, nil, 0),
	}
	// Loads 4,0: mean 2, stddev 2, CV 1.
	if got := Imbalance(skewed); math.Abs(got-1) > 1e-12 {
		t.Fatalf("skewed imbalance %v, want 1", got)
	}
}

func TestLeastLoaded(t *testing.T) {
	n0 := mkNode(t, 0, 4000, []int64{500, 500}, 2)
	n1 := mkNode(t, 1, 4000, []int64{500}, 1)
	n2 := mkNode(t, 2, 3000, []int64{500}, 1)
	nodes := []*model.Node{n0, n1, n2}

	// n1 and n2 tie on running=1; n1 has larger AvailableArea (3500).
	if got := LeastLoaded(nodes, nil); got != n1 {
		t.Fatalf("LeastLoaded = %v", got)
	}
	// Filter n1 out: n2 wins.
	if got := LeastLoaded(nodes, func(n *model.Node) bool { return n.No != 1 }); got != n2 {
		t.Fatalf("filtered LeastLoaded = %v", got)
	}
	// Nothing passes.
	if got := LeastLoaded(nodes, func(*model.Node) bool { return false }); got != nil {
		t.Fatalf("empty filter returned %v", got)
	}
	// Full tie (same running, same avail): lowest node number.
	a := mkNode(t, 5, 4000, []int64{500}, 1)
	b := mkNode(t, 3, 4000, []int64{500}, 1)
	if got := LeastLoaded([]*model.Node{a, b}, nil); got != b {
		t.Fatalf("tie-break returned node %d, want 3", got.No)
	}
}
