// Package loadbalance implements DReAMSim's load balancing module
// (paper §III core subsystem; §VII lists a fuller load-balancing
// manager as future work). It quantifies how evenly work is spread
// over the node population and offers a least-loaded selection that
// scheduling policies can use as a placement tie-break.
package loadbalance

import (
	"math"

	"dreamsim/internal/model"
)

// Load describes one node's instantaneous load.
type Load struct {
	NodeNo      int
	Running     int     // tasks currently executing
	AreaInUse   int64   // configured area (TotalArea − AvailableArea)
	Utilization float64 // AreaInUse / TotalArea
}

// Loads returns the per-node load vector.
func Loads(nodes []*model.Node) []Load {
	out := make([]Load, len(nodes))
	for i, n := range nodes {
		used := n.TotalArea - n.AvailableArea
		out[i] = Load{
			NodeNo:      n.No,
			Running:     n.RunningTasks(),
			AreaInUse:   used,
			Utilization: float64(used) / float64(n.TotalArea),
		}
	}
	return out
}

// Imbalance returns the coefficient of variation (stddev/mean) of the
// running-task counts — 0 means perfectly even, larger means more
// skewed. An idle system (mean 0) reports 0.
func Imbalance(nodes []*model.Node) float64 {
	if len(nodes) == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, n := range nodes {
		r := float64(n.RunningTasks())
		sum += r
		sumsq += r * r
	}
	mean := sum / float64(len(nodes))
	if mean == 0 {
		return 0
	}
	variance := sumsq/float64(len(nodes)) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}

// LeastLoaded returns the node with the fewest running tasks among
// those passing filter (nil filter accepts all); ties break toward
// larger AvailableArea, then lower node number for determinism.
// It returns nil when no node passes.
func LeastLoaded(nodes []*model.Node, filter func(*model.Node) bool) *model.Node {
	var best *model.Node
	var bestRun int
	for _, n := range nodes {
		if filter != nil && !filter(n) {
			continue
		}
		r := n.RunningTasks()
		switch {
		case best == nil,
			r < bestRun,
			r == bestRun && n.AvailableArea > best.AvailableArea,
			r == bestRun && n.AvailableArea == best.AvailableArea && n.No < best.No:
			best, bestRun = n, r
		}
	}
	return best
}
