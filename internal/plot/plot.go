// Package plot renders simple ASCII line charts for the figure
// harness: two or more series over a shared x grid, drawn into a
// fixed-size character canvas with axis labels. It exists so the
// sweep tool can show paper-figure shapes directly in a terminal
// without any plotting dependency.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name  string
	Glyph byte
	X, Y  []float64
}

// Chart is a renderable ASCII chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot-area columns (default 60)
	Height int // plot-area rows (default 16)
	Series []Series
}

// Render draws the chart. Series points are mapped linearly onto the
// canvas; later series overdraw earlier ones where they collide.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 60
	}
	if h <= 0 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range c.Series {
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	if !any {
		return c.Title + "\n(no data)\n"
	}
	if minY > 0 {
		minY = 0 // anchor at zero like the paper's axes
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]byte, h)
	for i := range canvas {
		canvas[i] = []byte(strings.Repeat(" ", w))
	}
	for _, s := range c.Series {
		g := s.Glyph
		if g == 0 {
			g = '*'
		}
		for i := range s.X {
			if i >= len(s.Y) {
				break
			}
			col := int(float64(w-1) * (s.X[i] - minX) / (maxX - minX))
			row := h - 1 - int(float64(h-1)*(s.Y[i]-minY)/(maxY-minY))
			if col >= 0 && col < w && row >= 0 && row < h {
				canvas[row][col] = g
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for i, row := range canvas {
		yVal := maxY - (maxY-minY)*float64(i)/float64(h-1)
		fmt.Fprintf(&b, "%10s |%s|\n", shortNum(yVal), string(row))
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", w-len(shortNum(maxX)), shortNum(minX), shortNum(maxX))
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&b, "%10s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for _, s := range c.Series {
		g := s.Glyph
		if g == 0 {
			g = '*'
		}
		fmt.Fprintf(&b, "%10s  %c = %s\n", "", g, s.Name)
	}
	return b.String()
}

// shortNum formats axis labels compactly.
func shortNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3ge", v)
	case av >= 1e6:
		return fmt.Sprintf("%.4gM", v/1e6)
	case av >= 1e4:
		return fmt.Sprintf("%.4gk", v/1e3)
	case av == math.Trunc(av):
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%.3g", v)
	}
}
