package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "demo",
		XLabel: "tasks",
		YLabel: "ticks",
		Series: []Series{
			{Name: "a", Glyph: 'o', X: []float64{0, 50, 100}, Y: []float64{0, 5, 10}},
			{Name: "b", Glyph: '+', X: []float64{0, 50, 100}, Y: []float64{10, 5, 0}},
		},
	}
	out := c.Render()
	for _, want := range []string{"demo", "o = a", "+ = b", "x: tasks", "y: ticks", "o", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Default geometry: 16 canvas rows plus frame lines.
	if lines := strings.Count(out, "\n"); lines < 18 {
		t.Errorf("too few lines (%d):\n%s", lines, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Chart{Title: "empty"}.Render()
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart rendering:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{5, 5, 5}}}}
	out := c.Render()
	if !strings.Contains(out, "*") { // default glyph
		t.Fatalf("constant series not drawn:\n%s", out)
	}
}

func TestRenderCustomGeometry(t *testing.T) {
	c := Chart{
		Width: 20, Height: 5,
		Series: []Series{{Name: "s", X: []float64{0, 10}, Y: []float64{0, 100}}},
	}
	out := c.Render()
	if !strings.Contains(out, strings.Repeat("-", 20)) {
		t.Fatalf("frame width wrong:\n%s", out)
	}
}

func TestShortNum(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		1500:    "1.5", // rendered as 1.5 via %.3g? No: 1500 -> integer path
		2500000: "2.5M",
		30000:   "30k",
	}
	// 1500 is integral and below 1e4: integer path.
	cases[1500] = "1500"
	for in, want := range cases {
		if got := shortNum(in); got != want {
			t.Errorf("shortNum(%v) = %q, want %q", in, got, want)
		}
	}
	if got := shortNum(0.125); got != "0.125" {
		t.Errorf("shortNum(0.125) = %q", got)
	}
	if got := shortNum(3e9); !strings.Contains(got, "e") {
		t.Errorf("shortNum(3e9) = %q", got)
	}
}
