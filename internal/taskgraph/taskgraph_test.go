package taskgraph

import (
	"testing"
	"testing/quick"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

func task(no int, req int64) *model.Task {
	return model.NewTask(no, 500, no%10, req, int64(no))
}

func TestAddAndLookup(t *testing.T) {
	g := New()
	a, err := g.Add(task(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Add(task(1, 200), a)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 2 || g.VertexByNo(1) != b || g.VertexByNo(0) != a {
		t.Fatal("lookup broken")
	}
	if len(a.Children) != 1 || a.Children[0] != b || len(b.Parents) != 1 {
		t.Fatal("edges broken")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejects(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	if _, err := g.Add(task(0, 100)); err == nil {
		t.Fatal("duplicate number accepted")
	}
	other := New()
	foreign, _ := other.Add(task(5, 100))
	if _, err := g.Add(task(1, 100), foreign); err == nil {
		t.Fatal("foreign parent accepted")
	}
	if _, err := g.Add(task(2, 100), nil); err == nil {
		t.Fatal("nil parent accepted")
	}
	if _, err := g.Add(model.NewTask(3, 0, 1, 100, 0)); err == nil {
		t.Fatal("invalid task accepted")
	}
	_ = a
}

func TestRootsAndDeps(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	b, _ := g.Add(task(1, 100))
	c, _ := g.Add(task(2, 100), a, b)
	_, _ = g.Add(task(3, 100), c)
	roots := g.Roots()
	if len(roots) != 2 {
		t.Fatalf("roots: %v", roots)
	}
	deps := g.DepsMap()
	if len(deps) != 2 {
		t.Fatalf("deps: %v", deps)
	}
	if len(deps[2]) != 2 || len(deps[3]) != 1 || deps[3][0] != 2 {
		t.Fatalf("deps: %v", deps)
	}
}

func TestTopoOrder(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	b, _ := g.Add(task(1, 100), a)
	c, _ := g.Add(task(2, 100), a)
	d, _ := g.Add(task(3, 100), b, c)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[*Vertex]int{}
	for i, v := range order {
		pos[v] = i
	}
	if !(pos[a] < pos[b] && pos[a] < pos[c] && pos[b] < pos[d] && pos[c] < pos[d]) {
		t.Fatalf("topo order wrong: %v", pos)
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	b, _ := g.Add(task(1, 100), a)
	// Corrupt through exported fields: a depends on b.
	a.Parents = append(a.Parents, b)
	b.Children = append(b.Children, a)
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate missed the cycle")
	}
}

func TestCriticalPath(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	b, _ := g.Add(task(1, 50), a)
	c, _ := g.Add(task(2, 300), a)
	_, _ = g.Add(task(3, 10), b, c)
	length, path := g.CriticalPath()
	if length != 100+300+10 {
		t.Fatalf("critical path length %d, want 410", length)
	}
	if len(path) != 3 || path[0] != a || path[1] != c {
		t.Fatalf("critical path: %v", path)
	}
	if g.TotalWork() != 460 {
		t.Fatalf("total work %d", g.TotalWork())
	}
	// Empty graph.
	if l, p := New().CriticalPath(); l != 0 || p != nil {
		t.Fatal("empty graph critical path")
	}
}

func TestSourceOrder(t *testing.T) {
	g := New()
	a, _ := g.Add(task(0, 100))
	_, _ = g.Add(task(1, 100), a)
	src, err := g.Source()
	if err != nil {
		t.Fatal(err)
	}
	t1, ok1 := src.Next()
	t2, ok2 := src.Next()
	_, ok3 := src.Next()
	if !ok1 || !ok2 || ok3 || t1.No != 0 || t2.No != 1 {
		t.Fatal("source order wrong")
	}
	// Backwards submission times are rejected.
	g2 := New()
	_, _ = g2.Add(model.NewTask(0, 500, 1, 100, 10))
	_, _ = g2.Add(model.NewTask(1, 500, 1, 100, 5))
	if _, err := g2.Source(); err == nil {
		t.Fatal("backwards submissions accepted")
	}
}

func layeredSpec(layers, width int) LayeredSpec {
	return LayeredSpec{
		Layers: layers, Width: width, EdgeProb: 0.4,
		Workload:  workload.TableII(100, 0),
		SubmitGap: 1,
	}
}

func TestGenerateLayered(t *testing.T) {
	g, err := GenerateLayered(rng.New(1), layeredSpec(8, 6))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() < 8 {
		t.Fatalf("graph too small: %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every non-root layer task has at least one parent.
	roots := len(g.Roots())
	if roots == 0 || roots > 6 {
		t.Fatalf("roots: %d", roots)
	}
	length, path := g.CriticalPath()
	if length <= 0 || len(path) < 8 { // at least one vertex per layer
		t.Fatalf("critical path %d / %d vertices", length, len(path))
	}
	if _, err := g.Source(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateLayeredRejects(t *testing.T) {
	bad := []LayeredSpec{
		{Layers: 0, Width: 3, Workload: workload.TableII(10, 0)},
		{Layers: 3, Width: 0, Workload: workload.TableII(10, 0)},
		{Layers: 3, Width: 3, EdgeProb: 1.5, Workload: workload.TableII(10, 0)},
		{Layers: 3, Width: 3, EdgeProb: 0.5, SubmitGap: -1, Workload: workload.TableII(10, 0)},
		{Layers: 3, Width: 3, EdgeProb: 0.5, Workload: workload.Spec{}},
	}
	for i, spec := range bad {
		if _, err := GenerateLayered(rng.New(1), spec); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGenerateLayeredDeterministic(t *testing.T) {
	a, _ := GenerateLayered(rng.New(9), layeredSpec(5, 4))
	b, _ := GenerateLayered(rng.New(9), layeredSpec(5, 4))
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	la, _ := a.CriticalPath()
	lb, _ := b.CriticalPath()
	if la != lb {
		t.Fatal("critical paths differ across identical seeds")
	}
}

// Property: layered generation always yields a valid DAG whose
// critical path is bounded by total work.
func TestQuickLayeredInvariants(t *testing.T) {
	f := func(seed uint16, layers, width uint8, prob uint8) bool {
		spec := layeredSpec(int(layers%6)+1, int(width%5)+1)
		spec.EdgeProb = float64(prob) / 255
		g, err := GenerateLayered(rng.New(uint64(seed)), spec)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		length, _ := g.CriticalPath()
		return length > 0 && length <= g.TotalWork()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
