// Package taskgraph implements DAG workloads for DReAMSim — the
// paper's future-work item "scheduling policies to schedule task
// graphs on the distributed system with reconfigurable nodes" (§VII).
//
// A Graph is a set of application tasks with precedence edges; a task
// becomes eligible to run only when all its parents have completed.
// The graph hands the core simulator a dependency map (parent task
// numbers per task) and a Source of arrivals; the engine holds
// arrived-but-blocked tasks until their parents finish.
package taskgraph

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

// Vertex is one task in the graph together with its edges.
type Vertex struct {
	Task     *model.Task
	Parents  []*Vertex
	Children []*Vertex
}

// Graph is a directed acyclic task graph. Acyclicity is enforced by
// construction: a vertex's parents must already be in the graph.
type Graph struct {
	vertices []*Vertex
	byNo     map[int]*Vertex
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{byNo: make(map[int]*Vertex)}
}

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.vertices) }

// Vertices returns the vertices in insertion order.
func (g *Graph) Vertices() []*Vertex { return g.vertices }

// VertexByNo returns the vertex holding task number no, or nil.
func (g *Graph) VertexByNo(no int) *Vertex { return g.byNo[no] }

// Add inserts task with the given parent vertices. Parents must
// already belong to this graph and task numbers must be unique, which
// makes cycles impossible.
func (g *Graph) Add(task *model.Task, parents ...*Vertex) (*Vertex, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	if _, dup := g.byNo[task.No]; dup {
		return nil, fmt.Errorf("taskgraph: duplicate task number %d", task.No)
	}
	v := &Vertex{Task: task}
	for _, p := range parents {
		if p == nil || g.byNo[p.Task.No] != p {
			return nil, fmt.Errorf("taskgraph: parent of task %d not in graph", task.No)
		}
		v.Parents = append(v.Parents, p)
		p.Children = append(p.Children, v)
	}
	g.vertices = append(g.vertices, v)
	g.byNo[task.No] = v
	return v, nil
}

// Roots returns the vertices with no parents.
func (g *Graph) Roots() []*Vertex {
	var out []*Vertex
	for _, v := range g.vertices {
		if len(v.Parents) == 0 {
			out = append(out, v)
		}
	}
	return out
}

// DepsMap returns the parent task numbers per task number — the form
// the core engine consumes.
func (g *Graph) DepsMap() map[int][]int {
	out := make(map[int][]int, len(g.vertices))
	for _, v := range g.vertices {
		if len(v.Parents) == 0 {
			continue
		}
		deps := make([]int, len(v.Parents))
		for i, p := range v.Parents {
			deps[i] = p.Task.No
		}
		out[v.Task.No] = deps
	}
	return out
}

// TopoOrder returns the vertices in a topological order (Kahn). The
// construction invariant guarantees one exists; the error return
// guards against graphs corrupted through the exported fields.
func (g *Graph) TopoOrder() ([]*Vertex, error) {
	indeg := make(map[*Vertex]int, len(g.vertices))
	var frontier []*Vertex
	for _, v := range g.vertices {
		indeg[v] = len(v.Parents)
		if len(v.Parents) == 0 {
			frontier = append(frontier, v)
		}
	}
	var order []*Vertex
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, c := range v.Children {
			indeg[c]--
			if indeg[c] == 0 {
				frontier = append(frontier, c)
			}
		}
	}
	if len(order) != len(g.vertices) {
		return nil, fmt.Errorf("taskgraph: cycle detected (%d of %d ordered)", len(order), len(g.vertices))
	}
	return order, nil
}

// CriticalPath returns the longest t_required-weighted path through
// the graph — the makespan lower bound on infinitely many nodes with
// zero reconfiguration cost — and one path realising it.
func (g *Graph) CriticalPath() (length int64, path []*Vertex) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, nil
	}
	dist := make(map[*Vertex]int64, len(order))
	pred := make(map[*Vertex]*Vertex, len(order))
	var best *Vertex
	for _, v := range order {
		d := v.Task.RequiredTime
		for _, p := range v.Parents {
			if dist[p]+v.Task.RequiredTime > d {
				d = dist[p] + v.Task.RequiredTime
				pred[v] = p
			}
		}
		dist[v] = d
		if best == nil || d > dist[best] {
			best = v
		}
	}
	if best == nil {
		return 0, nil
	}
	for v := best; v != nil; v = pred[v] {
		path = append([]*Vertex{v}, path...)
	}
	return dist[best], path
}

// TotalWork returns the sum of all t_required — the makespan lower
// bound on a single infinitely-reconfigurable node.
func (g *Graph) TotalWork() int64 {
	var sum int64
	for _, v := range g.vertices {
		sum += v.Task.RequiredTime
	}
	return sum
}

// Validate re-checks structural invariants (for graphs whose exported
// fields were manipulated directly).
func (g *Graph) Validate() error {
	for _, v := range g.vertices {
		if g.byNo[v.Task.No] != v {
			return fmt.Errorf("taskgraph: index broken at task %d", v.Task.No)
		}
		for _, p := range v.Parents {
			if g.byNo[p.Task.No] != p {
				return fmt.Errorf("taskgraph: task %d has foreign parent", v.Task.No)
			}
			found := false
			for _, c := range p.Children {
				if c == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("taskgraph: edge %d->%d missing back-link", p.Task.No, v.Task.No)
			}
		}
	}
	_, err := g.TopoOrder()
	return err
}

// Source yields the graph's tasks in CreateTime order as a workload
// source for the core engine. Tasks must have been given
// non-decreasing CreateTimes (GenerateLayered does this).
func (g *Graph) Source() (workload.Source, error) {
	order := make([]*Vertex, len(g.vertices))
	copy(order, g.vertices)
	for i := 1; i < len(order); i++ {
		if order[i].Task.CreateTime < order[i-1].Task.CreateTime {
			return nil, fmt.Errorf("taskgraph: task %d arrives before its predecessor in submission order",
				order[i].Task.No)
		}
	}
	return &graphSource{order: order}, nil
}

type graphSource struct {
	order []*Vertex
	next  int
}

// Next implements workload.Source.
func (s *graphSource) Next() (*model.Task, bool) {
	if s.next >= len(s.order) {
		return nil, false
	}
	v := s.order[s.next]
	s.next++
	return v.Task, true
}

// LayeredSpec parameterises GenerateLayered.
type LayeredSpec struct {
	// Layers and Width shape the DAG: Layers levels of up to Width
	// parallel tasks.
	Layers, Width int
	// EdgeProb is the probability of an edge from each task in layer
	// i to each task in layer i+1 (at least one parent is always
	// wired so layers truly depend on each other).
	EdgeProb float64
	// Workload supplies the per-task attribute ranges (Table II).
	Workload workload.Spec
	// SubmitGap is the tick gap between consecutive task submissions.
	SubmitGap int64
}

// GenerateLayered builds a random layered DAG — the classic synthetic
// task-graph family used in scheduling studies. All tasks are
// submitted near time zero (gap SubmitGap apart, in topological
// order); precedence, not arrival, dominates the schedule.
func GenerateLayered(r *rng.RNG, spec LayeredSpec) (*Graph, error) {
	if spec.Layers < 1 || spec.Width < 1 {
		return nil, fmt.Errorf("taskgraph: need at least 1 layer and width, got %d/%d", spec.Layers, spec.Width)
	}
	if spec.EdgeProb < 0 || spec.EdgeProb > 1 {
		return nil, fmt.Errorf("taskgraph: edge probability %v outside [0,1]", spec.EdgeProb)
	}
	if spec.SubmitGap < 0 {
		return nil, fmt.Errorf("taskgraph: negative submit gap")
	}
	ws := spec.Workload
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	configs := workload.GenConfigs(r.Split(), &ws)

	g := New()
	no := 0
	t := int64(0)
	var prev []*Vertex
	for layer := 0; layer < spec.Layers; layer++ {
		width := 1 + r.Intn(spec.Width)
		var cur []*Vertex
		for i := 0; i < width; i++ {
			var prefNo int
			var needed model.Area
			if r.Bool(ws.ClosestMatchPct) {
				prefNo = len(configs) + r.Intn(1<<20)
				needed = r.Int64Range(ws.ConfigAreaLow, ws.ConfigAreaHigh)
			} else {
				cfg := configs[r.Intn(len(configs))]
				prefNo, needed = cfg.No, cfg.ReqArea
			}
			task := model.NewTask(no, needed, prefNo,
				r.Int64Range(ws.TaskReqTimeLow, ws.TaskReqTimeHigh), t)
			no++
			t += spec.SubmitGap

			var parents []*Vertex
			if layer > 0 {
				for _, p := range prev {
					if r.Bool(spec.EdgeProb) {
						parents = append(parents, p)
					}
				}
				if len(parents) == 0 { // keep layers dependent
					parents = append(parents, prev[r.Intn(len(prev))])
				}
			}
			v, err := g.Add(task, parents...)
			if err != nil {
				return nil, err
			}
			cur = append(cur, v)
		}
		prev = cur
	}
	return g, nil
}
