// Package sim provides the discrete simulation-time substrate of
// DReAMSim: the timetick clock (paper §IV-C, IncreaseTimeTick /
// DecreaseTimeTick, Eq. 5) and a deterministic future-event queue.
//
// The paper advances time in unit "timeticks". A literal
// tick-by-tick loop and an event-jumping loop produce identical
// simulated results; the engine supports both (the core simulator
// jumps to the next scheduled event by default and can be forced to
// step tick-by-tick for the paper-faithful ablation).
//
// Allocation discipline: the Queue owns a free list of Event structs.
// Schedule/ScheduleEvent draw from it, the Engine returns an event to
// it after firing, Remove returns cancelled events to it, and Reset
// recycles a whole run's pending events while keeping the heap's
// backing slice. Steady-state event traffic therefore allocates
// nothing. The ownership contract: an *Event handle is valid from
// scheduling until its callback returns or Remove succeeds; after
// that the struct may be recycled for an unrelated event and must not
// be touched. Under -tags invariants freed events are poisoned so a
// stale handle fails loudly instead of corrupting a live event.
package sim

import (
	"fmt"

	"dreamsim/internal/invariant"
)

// Time is a point in simulated time, measured in timeticks. The paper
// uses `long long int` timeticks; int64 matches.
type Time = int64

// Clock tracks current simulated time. The zero value starts at tick 0.
type Clock struct {
	now Time
}

// Now returns the current timetick.
func (c *Clock) Now() Time { return c.now }

// IncreaseTimeTick advances the clock by one tick and returns the new
// time (paper method name).
func (c *Clock) IncreaseTimeTick() Time {
	c.now++
	return c.now
}

// DecreaseTimeTick rewinds the clock by one tick (paper method name;
// used only by tooling/tests — the simulator itself never rewinds).
func (c *Clock) DecreaseTimeTick() Time {
	c.now--
	return c.now
}

// AdvanceTo moves the clock forward to t. It panics if t is in the
// past: simulation time is monotone.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: %d -> %d", c.now, t))
	}
	c.now = t
}

// Handler is the allocation-free event callback: the queue hands the
// event back so payloads travel in its A/B slots instead of a fresh
// closure per event.
type Handler func(ev *Event, now Time)

// freedIndex marks an event sitting on the free list. Live events use
// index >= 0 (queued) or -1 (not queued).
const freedIndex = -2

// poisonedAt is written into freed events under -tags invariants; any
// heap comparison against a stale handle then trips the monotonicity
// assertion instead of silently reordering live events.
const poisonedAt Time = -1 << 62

// FreedKind labels pooled events under -tags invariants.
const FreedKind = "sim:freed"

// Event is a scheduled occurrence. Events at the same timetick fire
// in scheduling order (FIFO), which keeps runs deterministic.
//
// Exactly one of Fire and Handle must be set; Handle wins when both
// are. A and B are opaque payload slots for Handle callbacks (store
// pointers — pointer-shaped values in an interface do not allocate).
type Event struct {
	At   Time
	Kind string // diagnostic label, e.g. "arrival", "completion"
	Fire func(now Time)

	Handle Handler
	A, B   any

	seq   uint64 // tie-breaker: insertion order
	index int    // heap position; -1 not queued; -2 on the free list
}

// Queue is a min-heap of future events ordered by (At, insertion
// order). The zero value is ready to use.
type Queue struct {
	events  []*Event
	nextSeq uint64

	// free holds recycled Event structs for reuse by Schedule and
	// ScheduleEvent.
	free []*Event

	// lastPopped backs the -tags invariants monotonicity assertion:
	// a min-heap must never emit an event earlier than one it already
	// emitted.
	lastPopped Time
}

// Len reports the number of pending events.
//
//dreamsim:noalloc
func (q *Queue) Len() int { return len(q.events) }

// alloc returns a zeroed Event from the free list, or a fresh one.
func (q *Queue) alloc() *Event {
	n := len(q.free)
	if n == 0 {
		//lint:allocfree pool miss: one Event per pool high-water mark, amortized to zero in steady state (gated by TestQueuePushPopZeroAlloc)
		return &Event{index: -1}
	}
	ev := q.free[n-1]
	q.free[n-1] = nil
	q.free = q.free[:n-1]
	*ev = Event{index: -1}
	return ev
}

// release puts ev on the free list. Double release is a no-op in
// normal builds (asserted under -tags invariants) so that the free
// list can never hold the same struct twice.
func (q *Queue) release(ev *Event) {
	if ev.index == freedIndex {
		if invariant.Enabled {
			invariant.Assertf(false, "sim: double release of event %q", ev.Kind)
		}
		return
	}
	ev.Fire = nil
	ev.Handle = nil
	ev.A, ev.B = nil, nil
	if invariant.Enabled {
		ev.At = poisonedAt
		ev.Kind = FreedKind
	}
	ev.index = freedIndex
	q.free = append(q.free, ev)
}

// Release returns an event to the pool once the caller is done with
// it — typically after Pop in a manual drain loop. Releasing a queued
// event panics; cancel with Remove instead (which releases itself).
//
//dreamsim:noalloc
func (q *Queue) Release(ev *Event) {
	if i := ev.index; i >= 0 && i < len(q.events) && q.events[i] == ev {
		panic("sim: releasing queued event")
	}
	q.release(ev)
}

// Push schedules ev. It panics if the event is already queued, was
// freed, or has no callback.
//
//dreamsim:noalloc
func (q *Queue) Push(ev *Event) {
	if ev.Fire == nil && ev.Handle == nil {
		panic("sim: event with nil Fire")
	}
	if ev.index == freedIndex {
		panic("sim: pushing freed event")
	}
	if ev.index > 0 || (len(q.events) > 0 && ev.index == 0 && q.events[0] == ev) {
		panic("sim: event already queued")
	}
	ev.seq = q.nextSeq
	q.nextSeq++
	ev.index = len(q.events)
	q.events = append(q.events, ev)
	q.up(ev.index)
}

// Schedule queues a closure callback, drawing the Event from the pool.
//
//dreamsim:noalloc
func (q *Queue) Schedule(at Time, kind string, fire func(now Time)) *Event {
	ev := q.alloc()
	ev.At, ev.Kind, ev.Fire = at, kind, fire
	q.Push(ev)
	return ev
}

// ScheduleEvent queues a Handler callback with its payload, drawing
// the Event from the pool. This is the allocation-free path: with a
// pre-bound Handler and pointer payloads, steady-state scheduling
// performs no heap allocation.
//
//dreamsim:noalloc
func (q *Queue) ScheduleEvent(at Time, kind string, h Handler, a, b any) *Event {
	ev := q.alloc()
	ev.At, ev.Kind, ev.Handle = at, kind, h
	ev.A, ev.B = a, b
	q.Push(ev)
	return ev
}

// PeekTime returns the timestamp of the earliest pending event; ok is
// false when the queue is empty.
//
//dreamsim:noalloc
func (q *Queue) PeekTime() (t Time, ok bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// Pop removes and returns the earliest pending event (ties broken by
// insertion order). It returns nil when the queue is empty. The
// caller owns the event until it calls Release (the Engine does this
// automatically after firing).
//
//dreamsim:noalloc
func (q *Queue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	ev := q.events[0]
	if invariant.Enabled {
		invariant.Assertf(ev.At >= q.lastPopped,
			"sim: event queue popped tick %d after tick %d — simulated time must be monotone",
			ev.At, q.lastPopped)
		q.lastPopped = ev.At
	}
	last := len(q.events) - 1
	q.swap(0, last)
	q.events[last] = nil
	q.events = q.events[:last]
	if last > 0 {
		q.down(0)
	}
	ev.index = -1
	return ev
}

// Remove cancels a queued event and returns its memory to the pool.
// It reports whether the event was actually pending. The handle is
// dead after a successful Remove.
//
//dreamsim:noalloc
func (q *Queue) Remove(ev *Event) bool {
	i := ev.index
	if i < 0 || i >= len(q.events) || q.events[i] != ev {
		return false
	}
	last := len(q.events) - 1
	q.swap(i, last)
	q.events[last] = nil
	q.events = q.events[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	ev.index = -1
	q.release(ev)
	return true
}

// Reset discards all pending events, recycling them and keeping both
// the heap's backing slice and the free list, so the next run reuses
// the same memory. Sequence numbering restarts so FIFO-within-tick
// ordering is reproduced exactly across runs.
//
//dreamsim:noalloc
func (q *Queue) Reset() {
	for i, ev := range q.events {
		q.events[i] = nil
		ev.index = -1
		q.release(ev)
	}
	q.events = q.events[:0]
	q.nextSeq = 0
	q.lastPopped = 0
}

func (q *Queue) less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.events)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

// Engine couples a Clock with a Queue and runs events in time order.
type Engine struct {
	Clock Clock
	Queue Queue

	// TickStep, when true, advances the clock one tick at a time and
	// invokes OnTick on every tick (the paper's literal loop). When
	// false the clock jumps directly to the next event time.
	TickStep bool
	// OnTick, if set, runs once per timetick in TickStep mode after
	// the tick's events have fired.
	OnTick func(now Time)

	processed uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.Clock.Now() }

// Reset rewinds the engine to its initial state — clock at tick 0, no
// pending events, no tick hook — while keeping the queue's backing
// slice and event pool for reuse by the next run.
func (e *Engine) Reset() {
	e.Queue.Reset()
	e.Clock = Clock{}
	e.TickStep = false
	e.OnTick = nil
	e.processed = 0
}

// ScheduleAt queues fire to run at absolute time at. Scheduling in
// the past panics: causality must hold.
//
//dreamsim:noalloc
func (e *Engine) ScheduleAt(at Time, kind string, fire func(now Time)) *Event {
	if at < e.Clock.Now() {
		panic(fmt.Sprintf("sim: scheduling %q at %d before now %d", kind, at, e.Clock.Now()))
	}
	return e.Queue.Schedule(at, kind, fire)
}

// ScheduleAfter queues fire to run delay ticks from now.
//
//dreamsim:noalloc
func (e *Engine) ScheduleAfter(delay Time, kind string, fire func(now Time)) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.Queue.Schedule(e.Clock.Now()+delay, kind, fire)
}

// ScheduleEventAt is ScheduleAt for Handler callbacks with payloads —
// the allocation-free path.
//
//dreamsim:noalloc
func (e *Engine) ScheduleEventAt(at Time, kind string, h Handler, a, b any) *Event {
	if at < e.Clock.Now() {
		panic(fmt.Sprintf("sim: scheduling %q at %d before now %d", kind, at, e.Clock.Now()))
	}
	return e.Queue.ScheduleEvent(at, kind, h, a, b)
}

// ScheduleEventAfter is ScheduleAfter for Handler callbacks with
// payloads.
//
//dreamsim:noalloc
func (e *Engine) ScheduleEventAfter(delay Time, kind string, h Handler, a, b any) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.Queue.ScheduleEvent(e.Clock.Now()+delay, kind, h, a, b)
}

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// fire invokes ev's callback and recycles the event unless the
// callback re-queued it (periodic events re-Push themselves from
// inside their own firing).
func (e *Engine) fire(ev *Event) {
	e.processed++
	at := ev.At
	if ev.Handle != nil {
		//lint:allocfree dynamic dispatch: the callback's allocation discipline is the scheduling site's contract; TestTickZeroAlloc gates the closed loop at runtime
		ev.Handle(ev, at)
	} else {
		//lint:allocfree dynamic dispatch: the callback's allocation discipline is the scheduling site's contract; TestTickZeroAlloc gates the closed loop at runtime
		ev.Fire(at)
	}
	if ev.index == -1 {
		e.Queue.release(ev)
	}
}

// Step fires the single earliest event (advancing the clock to it)
// and reports whether an event was available.
//
//dreamsim:noalloc
func (e *Engine) Step() bool {
	ev := e.Queue.Pop()
	if ev == nil {
		return false
	}
	e.Clock.AdvanceTo(ev.At)
	e.fire(ev)
	return true
}

// Run drives the simulation until the queue is empty or until stop
// (when non-nil) returns true. It returns the final simulated time —
// the paper's "total simulation time" (Eq. 5).
//
//dreamsim:noalloc
func (e *Engine) Run(stop func() bool) Time {
	if e.TickStep {
		return e.runTicked(stop)
	}
	for {
		if stop != nil && stop() {
			return e.Clock.Now()
		}
		if !e.Step() {
			return e.Clock.Now()
		}
	}
}

// runTicked advances one timetick at a time, firing any events due at
// each tick and then the OnTick hook — the paper's literal main loop.
func (e *Engine) runTicked(stop func() bool) Time {
	for {
		if stop != nil && stop() {
			return e.Clock.Now()
		}
		next, ok := e.Queue.PeekTime()
		if !ok {
			return e.Clock.Now()
		}
		// Walk tick-by-tick up to the next event time.
		for e.Clock.Now() < next {
			e.Clock.IncreaseTimeTick()
			if e.OnTick != nil {
				//lint:allocfree dynamic dispatch: the tick hook is user-supplied; tick-step mode is the paper-faithful ablation, not the gated hot path
				e.OnTick(e.Clock.Now())
			}
		}
		for {
			t, ok := e.Queue.PeekTime()
			if !ok || t != e.Clock.Now() {
				break
			}
			e.fire(e.Queue.Pop())
		}
	}
}
