// Package sim provides the discrete simulation-time substrate of
// DReAMSim: the timetick clock (paper §IV-C, IncreaseTimeTick /
// DecreaseTimeTick, Eq. 5) and a deterministic future-event queue.
//
// The paper advances time in unit "timeticks". A literal
// tick-by-tick loop and an event-jumping loop produce identical
// simulated results; the engine supports both (the core simulator
// jumps to the next scheduled event by default and can be forced to
// step tick-by-tick for the paper-faithful ablation).
package sim

import (
	"fmt"

	"dreamsim/internal/invariant"
)

// Time is a point in simulated time, measured in timeticks. The paper
// uses `long long int` timeticks; int64 matches.
type Time = int64

// Clock tracks current simulated time. The zero value starts at tick 0.
type Clock struct {
	now Time
}

// Now returns the current timetick.
func (c *Clock) Now() Time { return c.now }

// IncreaseTimeTick advances the clock by one tick and returns the new
// time (paper method name).
func (c *Clock) IncreaseTimeTick() Time {
	c.now++
	return c.now
}

// DecreaseTimeTick rewinds the clock by one tick (paper method name;
// used only by tooling/tests — the simulator itself never rewinds).
func (c *Clock) DecreaseTimeTick() Time {
	c.now--
	return c.now
}

// AdvanceTo moves the clock forward to t. It panics if t is in the
// past: simulation time is monotone.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moving backwards: %d -> %d", c.now, t))
	}
	c.now = t
}

// Event is a scheduled occurrence. Events at the same timetick fire
// in scheduling order (FIFO), which keeps runs deterministic.
type Event struct {
	At   Time
	Kind string // diagnostic label, e.g. "arrival", "completion"
	Fire func(now Time)

	seq   uint64 // tie-breaker: insertion order
	index int    // heap position; -1 when not queued
}

// Queue is a min-heap of future events ordered by (At, insertion
// order). The zero value is ready to use.
type Queue struct {
	events  []*Event
	nextSeq uint64

	// lastPopped backs the -tags invariants monotonicity assertion:
	// a min-heap must never emit an event earlier than one it already
	// emitted.
	lastPopped Time
}

// Len reports the number of pending events.
func (q *Queue) Len() int { return len(q.events) }

// Push schedules ev. It panics if the event is already queued.
func (q *Queue) Push(ev *Event) {
	if ev.Fire == nil {
		panic("sim: event with nil Fire")
	}
	if ev.index > 0 || (len(q.events) > 0 && ev.index == 0 && q.events[0] == ev) {
		panic("sim: event already queued")
	}
	ev.seq = q.nextSeq
	q.nextSeq++
	ev.index = len(q.events)
	q.events = append(q.events, ev)
	q.up(ev.index)
}

// Schedule is a convenience wrapper allocating the Event.
func (q *Queue) Schedule(at Time, kind string, fire func(now Time)) *Event {
	ev := &Event{At: at, Kind: kind, Fire: fire, index: -1}
	q.Push(ev)
	return ev
}

// PeekTime returns the timestamp of the earliest pending event; ok is
// false when the queue is empty.
func (q *Queue) PeekTime() (t Time, ok bool) {
	if len(q.events) == 0 {
		return 0, false
	}
	return q.events[0].At, true
}

// Pop removes and returns the earliest pending event (ties broken by
// insertion order). It returns nil when the queue is empty.
func (q *Queue) Pop() *Event {
	if len(q.events) == 0 {
		return nil
	}
	ev := q.events[0]
	if invariant.Enabled {
		invariant.Assertf(ev.At >= q.lastPopped,
			"sim: event queue popped tick %d after tick %d — simulated time must be monotone",
			ev.At, q.lastPopped)
		q.lastPopped = ev.At
	}
	last := len(q.events) - 1
	q.swap(0, last)
	q.events[last] = nil
	q.events = q.events[:last]
	if last > 0 {
		q.down(0)
	}
	ev.index = -1
	return ev
}

// Remove cancels a queued event. It reports whether the event was
// actually pending.
func (q *Queue) Remove(ev *Event) bool {
	i := ev.index
	if i < 0 || i >= len(q.events) || q.events[i] != ev {
		return false
	}
	last := len(q.events) - 1
	q.swap(i, last)
	q.events[last] = nil
	q.events = q.events[:last]
	if i < last {
		q.down(i)
		q.up(i)
	}
	ev.index = -1
	return true
}

func (q *Queue) less(i, j int) bool {
	a, b := q.events[i], q.events[j]
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

func (q *Queue) swap(i, j int) {
	q.events[i], q.events[j] = q.events[j], q.events[i]
	q.events[i].index = i
	q.events[j].index = j
}

func (q *Queue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *Queue) down(i int) {
	n := len(q.events)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}

// Engine couples a Clock with a Queue and runs events in time order.
type Engine struct {
	Clock Clock
	Queue Queue

	// TickStep, when true, advances the clock one tick at a time and
	// invokes OnTick on every tick (the paper's literal loop). When
	// false the clock jumps directly to the next event time.
	TickStep bool
	// OnTick, if set, runs once per timetick in TickStep mode after
	// the tick's events have fired.
	OnTick func(now Time)

	processed uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.Clock.Now() }

// ScheduleAt queues fire to run at absolute time at. Scheduling in
// the past panics: causality must hold.
func (e *Engine) ScheduleAt(at Time, kind string, fire func(now Time)) *Event {
	if at < e.Clock.Now() {
		panic(fmt.Sprintf("sim: scheduling %q at %d before now %d", kind, at, e.Clock.Now()))
	}
	return e.Queue.Schedule(at, kind, fire)
}

// ScheduleAfter queues fire to run delay ticks from now.
func (e *Engine) ScheduleAfter(delay Time, kind string, fire func(now Time)) *Event {
	if delay < 0 {
		panic("sim: negative delay")
	}
	return e.Queue.Schedule(e.Clock.Now()+delay, kind, fire)
}

// Processed reports how many events have fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Step fires the single earliest event (advancing the clock to it)
// and reports whether an event was available.
func (e *Engine) Step() bool {
	ev := e.Queue.Pop()
	if ev == nil {
		return false
	}
	e.Clock.AdvanceTo(ev.At)
	e.processed++
	ev.Fire(ev.At)
	return true
}

// Run drives the simulation until the queue is empty or until stop
// (when non-nil) returns true. It returns the final simulated time —
// the paper's "total simulation time" (Eq. 5).
func (e *Engine) Run(stop func() bool) Time {
	if e.TickStep {
		return e.runTicked(stop)
	}
	for {
		if stop != nil && stop() {
			return e.Clock.Now()
		}
		if !e.Step() {
			return e.Clock.Now()
		}
	}
}

// runTicked advances one timetick at a time, firing any events due at
// each tick and then the OnTick hook — the paper's literal main loop.
func (e *Engine) runTicked(stop func() bool) Time {
	for {
		if stop != nil && stop() {
			return e.Clock.Now()
		}
		next, ok := e.Queue.PeekTime()
		if !ok {
			return e.Clock.Now()
		}
		// Walk tick-by-tick up to the next event time.
		for e.Clock.Now() < next {
			e.Clock.IncreaseTimeTick()
			if e.OnTick != nil {
				e.OnTick(e.Clock.Now())
			}
		}
		for {
			t, ok := e.Queue.PeekTime()
			if !ok || t != e.Clock.Now() {
				break
			}
			ev := e.Queue.Pop()
			e.processed++
			ev.Fire(ev.At)
		}
	}
}
