package sim

import (
	"testing"
	"testing/quick"
)

func TestClockBasics(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %d", c.Now())
	}
	if c.IncreaseTimeTick() != 1 || c.Now() != 1 {
		t.Fatal("IncreaseTimeTick broken")
	}
	if c.DecreaseTimeTick() != 0 {
		t.Fatal("DecreaseTimeTick broken")
	}
	c.AdvanceTo(10)
	if c.Now() != 10 {
		t.Fatalf("AdvanceTo gave %d", c.Now())
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	var c Clock
	c.AdvanceTo(5)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo(past) did not panic")
		}
	}()
	c.AdvanceTo(4)
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	var fired []int
	mk := func(id int, at Time) {
		q.Schedule(at, "t", func(Time) { fired = append(fired, id) })
	}
	mk(3, 30)
	mk(1, 10)
	mk(2, 20)
	mk(0, 5)
	for q.Len() > 0 {
		ev := q.Pop()
		ev.Fire(ev.At)
	}
	want := []int{0, 1, 2, 3}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired order %v, want %v", fired, want)
		}
	}
}

func TestQueueFIFOWithinTick(t *testing.T) {
	var q Queue
	var fired []int
	for i := 0; i < 50; i++ {
		id := i
		q.Schedule(100, "t", func(Time) { fired = append(fired, id) })
	}
	for q.Len() > 0 {
		ev := q.Pop()
		ev.Fire(ev.At)
	}
	for i, id := range fired {
		if id != i {
			t.Fatalf("same-tick events out of insertion order: %v", fired)
		}
	}
}

func TestQueueRemove(t *testing.T) {
	var q Queue
	a := q.Schedule(1, "a", func(Time) {})
	b := q.Schedule(2, "b", func(Time) {})
	c := q.Schedule(3, "c", func(Time) {})
	if !q.Remove(b) {
		t.Fatal("Remove(b) failed")
	}
	if q.Remove(b) {
		t.Fatal("Remove(b) twice succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	if q.Pop() != a || q.Pop() != c {
		t.Fatal("wrong remaining order")
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty returned event")
	}
}

func TestQueuePeek(t *testing.T) {
	var q Queue
	if _, ok := q.PeekTime(); ok {
		t.Fatal("PeekTime on empty queue reported ok")
	}
	q.Schedule(42, "x", func(Time) {})
	if tt, ok := q.PeekTime(); !ok || tt != 42 {
		t.Fatalf("PeekTime = %d,%v", tt, ok)
	}
}

func TestEngineEventJump(t *testing.T) {
	var e Engine
	var times []Time
	e.ScheduleAt(10, "a", func(now Time) { times = append(times, now) })
	e.ScheduleAt(5, "b", func(now Time) {
		times = append(times, now)
		e.ScheduleAfter(2, "c", func(now Time) { times = append(times, now) })
	})
	end := e.Run(nil)
	want := []Time{5, 7, 10}
	if len(times) != len(want) {
		t.Fatalf("fired %v", times)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired %v, want %v", times, want)
		}
	}
	if end != 10 {
		t.Fatalf("end time %d, want 10", end)
	}
	if e.Processed() != 3 {
		t.Fatalf("processed %d", e.Processed())
	}
}

func TestEngineTickStepEquivalence(t *testing.T) {
	run := func(tick bool) ([]Time, Time) {
		var e Engine
		e.TickStep = tick
		var times []Time
		e.ScheduleAt(3, "a", func(now Time) {
			times = append(times, now)
			e.ScheduleAfter(4, "b", func(now Time) { times = append(times, now) })
		})
		e.ScheduleAt(9, "c", func(now Time) { times = append(times, now) })
		end := e.Run(nil)
		return times, end
	}
	jt, je := run(false)
	tt, te := run(true)
	if je != te {
		t.Fatalf("end times differ: jump %d vs tick %d", je, te)
	}
	if len(jt) != len(tt) {
		t.Fatalf("event counts differ: %v vs %v", jt, tt)
	}
	for i := range jt {
		if jt[i] != tt[i] {
			t.Fatalf("event times differ: %v vs %v", jt, tt)
		}
	}
}

func TestEngineTickStepOnTick(t *testing.T) {
	var e Engine
	e.TickStep = true
	ticks := 0
	e.OnTick = func(Time) { ticks++ }
	e.ScheduleAt(25, "end", func(Time) {})
	e.Run(nil)
	if ticks != 25 {
		t.Fatalf("OnTick fired %d times, want 25", ticks)
	}
}

func TestEngineStop(t *testing.T) {
	var e Engine
	count := 0
	for i := 1; i <= 10; i++ {
		e.ScheduleAt(Time(i), "n", func(Time) { count++ })
	}
	e.Run(func() bool { return count >= 3 })
	if count != 3 {
		t.Fatalf("stop predicate ignored: count=%d", count)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	var e Engine
	e.Clock.AdvanceTo(100)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(99, "late", func(Time) {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	e.ScheduleAfter(-1, "x", func(Time) {})
}

func TestNilFirePanics(t *testing.T) {
	var q Queue
	defer func() {
		if recover() == nil {
			t.Fatal("nil Fire did not panic")
		}
	}()
	q.Push(&Event{At: 1})
}

func TestEngineRemoveScheduledEvent(t *testing.T) {
	var e Engine
	fired := []string{}
	keep := e.ScheduleAt(5, "keep", func(Time) { fired = append(fired, "keep") })
	drop := e.ScheduleAt(3, "drop", func(Time) { fired = append(fired, "drop") })
	_ = keep
	if !e.Queue.Remove(drop) {
		t.Fatal("Remove failed")
	}
	end := e.Run(nil)
	if len(fired) != 1 || fired[0] != "keep" {
		t.Fatalf("fired %v", fired)
	}
	if end != 5 {
		t.Fatalf("end %d", end)
	}
}

func TestEngineSelfCancellation(t *testing.T) {
	// An event firing at tick t may cancel a later event — the
	// pattern a pre-emption extension would use.
	var e Engine
	fired := 0
	victim := e.ScheduleAt(10, "victim", func(Time) { fired++ })
	e.ScheduleAt(5, "canceller", func(Time) {
		if !e.Queue.Remove(victim) {
			t.Error("in-flight cancellation failed")
		}
	})
	e.Run(nil)
	if fired != 0 {
		t.Fatal("cancelled event fired")
	}
}

// Property: popping a randomly filled queue yields non-decreasing times.
func TestQuickHeapOrder(t *testing.T) {
	f := func(times []uint16) bool {
		var q Queue
		for _, tt := range times {
			q.Schedule(Time(tt), "p", func(Time) {})
		}
		last := Time(-1)
		for q.Len() > 0 {
			ev := q.Pop()
			if ev.At < last {
				return false
			}
			last = ev.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Remove leaves the heap consistent for arbitrary interleavings.
func TestQuickRemoveConsistency(t *testing.T) {
	f := func(times []uint8, removeMask []bool) bool {
		var q Queue
		evs := make([]*Event, len(times))
		for i, tt := range times {
			evs[i] = q.Schedule(Time(tt), "p", func(Time) {})
		}
		removed := 0
		for i, ev := range evs {
			if i < len(removeMask) && removeMask[i] {
				if q.Remove(ev) {
					removed++
				}
			}
		}
		if q.Len() != len(times)-removed {
			return false
		}
		last := Time(-1)
		for q.Len() > 0 {
			ev := q.Pop()
			if ev.At < last {
				return false
			}
			last = ev.At
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
