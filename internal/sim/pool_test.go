package sim

import (
	"testing"

	"dreamsim/internal/invariant"
)

// The pool tests pin the ownership contract documented on Event: a
// handle is live from scheduling until its callback returns, Remove
// succeeds, or Release is called; after that the struct belongs to
// the free list and may be handed out again.

// TestPoolReusesReleasedEvent: Release feeds the next Schedule.
func TestPoolReusesReleasedEvent(t *testing.T) {
	var q Queue
	q.Schedule(1, "a", func(Time) {})
	popped := q.Pop()
	q.Release(popped)
	ev := q.Schedule(2, "b", func(Time) {})
	if ev != popped {
		t.Fatal("Schedule did not reuse the released event struct")
	}
	if ev.At != 2 || ev.Kind != "b" || ev.A != nil || ev.B != nil {
		t.Fatalf("recycled event carries stale state: %+v", ev)
	}
}

// TestRemoveReturnsPooledMemory: a cancelled event's struct is handed
// out by the very next Schedule, and the cancellation leaves the heap
// ordering intact.
func TestRemoveReturnsPooledMemory(t *testing.T) {
	var q Queue
	a := q.Schedule(5, "a", func(Time) {})
	q.Schedule(6, "b", func(Time) {})
	if !q.Remove(a) {
		t.Fatal("Remove failed")
	}
	c := q.Schedule(7, "c", func(Time) {})
	if c != a {
		t.Fatal("Schedule after Remove did not reuse the cancelled struct")
	}
	if got := q.Pop(); got.Kind != "b" {
		t.Fatalf("first pop = %q, want b", got.Kind)
	}
	if got := q.Pop(); got != c || got.Kind != "c" {
		t.Fatalf("second pop = %q, want c", got.Kind)
	}
}

// TestPooledEventsNeverAliasLive: recycling one event and mutating
// its successor must not disturb events still in the heap.
func TestPooledEventsNeverAliasLive(t *testing.T) {
	var q Queue
	q.Schedule(1, "dead", func(Time) {})
	live := q.Schedule(9, "live", func(Time) {})
	q.Release(q.Pop())
	fresh := q.Schedule(3, "fresh", func(Time) {})
	if fresh == live {
		t.Fatal("pool handed out a live event")
	}
	fresh.Kind = "mutated"
	fresh.A = "payload"
	if live.At != 9 || live.Kind != "live" || live.A != nil {
		t.Fatalf("mutating a recycled event corrupted a live one: %+v", live)
	}
	if got := q.Pop(); got != fresh {
		t.Fatal("heap order broken after recycling")
	}
	if got := q.Pop(); got != live {
		t.Fatal("live event lost after recycling")
	}
}

// TestResetKeepsFIFOWithinTick: after Reset the restarted sequence
// numbering reproduces insertion-order firing for same-tick events,
// exactly as a fresh queue would.
func TestResetKeepsFIFOWithinTick(t *testing.T) {
	var q Queue
	q.Schedule(10, "x", func(Time) {})
	q.Schedule(10, "y", func(Time) {})
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	var order []string
	for _, k := range []string{"first", "second", "third"} {
		k := k
		q.Schedule(42, k, func(Time) { order = append(order, k) })
	}
	for q.Len() > 0 {
		ev := q.Pop()
		ev.Fire(ev.At)
		q.Release(ev)
	}
	if len(order) != 3 || order[0] != "first" || order[1] != "second" || order[2] != "third" {
		t.Fatalf("post-Reset same-tick order = %v", order)
	}
}

// TestResetRecyclesPendingEvents: events pending at Reset time come
// back out of the pool.
func TestResetRecyclesPendingEvents(t *testing.T) {
	var q Queue
	a := q.Schedule(1, "a", func(Time) {})
	b := q.Schedule(2, "b", func(Time) {})
	q.Reset()
	// Pool is LIFO: b was released last, so it is handed out first.
	if got := q.Schedule(3, "c", func(Time) {}); got != b {
		t.Fatal("Reset did not pool the pending events (first)")
	}
	if got := q.Schedule(4, "d", func(Time) {}); got != a {
		t.Fatal("Reset did not pool the pending events (second)")
	}
}

// TestEngineReleasesFiredEvents: the engine recycles each event after
// its callback returns, so a schedule/fire loop reuses one struct.
func TestEngineReleasesFiredEvents(t *testing.T) {
	var e Engine
	first := e.ScheduleAt(1, "a", func(Time) {})
	if !e.Step() {
		t.Fatal("no event to step")
	}
	second := e.ScheduleAt(2, "b", func(Time) {})
	if second != first {
		t.Fatal("engine did not recycle the fired event")
	}
	if !e.Step() || e.Now() != 2 {
		t.Fatalf("second step failed, now=%d", e.Now())
	}
}

// TestEngineKeepsRequeuedEvents: a callback that re-Pushes its own
// event (the periodic-event idiom) must not have the struct recycled
// out from under it.
func TestEngineKeepsRequeuedEvents(t *testing.T) {
	var e Engine
	fired := 0
	var ev *Event
	ev = e.ScheduleEventAt(1, "tick", func(self *Event, now Time) {
		fired++
		if fired < 3 {
			self.At = now + 1
			e.Queue.Push(self)
		}
	}, nil, nil)
	e.Run(nil)
	if fired != 3 {
		t.Fatalf("periodic event fired %d times, want 3", fired)
	}
	// After the last firing the engine pools it; the next Schedule
	// must hand the same struct back.
	if got := e.ScheduleAt(e.Now(), "next", func(Time) {}); got != ev {
		t.Fatal("final firing did not recycle the periodic event")
	}
}

// TestEngineResetRestoresInitialState: Reset rewinds clock, queue,
// hooks and counters so one engine serves many runs.
func TestEngineResetRestoresInitialState(t *testing.T) {
	var e Engine
	e.TickStep = true
	ticks := 0
	e.OnTick = func(Time) { ticks++ }
	e.ScheduleAt(3, "a", func(Time) {})
	e.ScheduleAt(5, "b", func(Time) {})
	e.Run(nil)
	if e.Now() != 5 || e.Processed() != 2 || ticks != 5 {
		t.Fatalf("pre-reset run wrong: now=%d processed=%d ticks=%d", e.Now(), e.Processed(), ticks)
	}
	e.Reset()
	if e.Now() != 0 || e.Processed() != 0 || e.Queue.Len() != 0 || e.TickStep || e.OnTick != nil {
		t.Fatal("Reset left engine state behind")
	}
	e.ScheduleAt(2, "c", func(Time) {})
	if got := e.Run(nil); got != 2 || e.Processed() != 1 {
		t.Fatalf("post-reset run wrong: end=%d processed=%d", got, e.Processed())
	}
}

// TestScheduleEventPayloads: Handler callbacks see the event's A/B
// payload slots and the recycled struct clears them.
func TestScheduleEventPayloads(t *testing.T) {
	var q Queue
	type task struct{ no int }
	pay := &task{no: 7}
	var got *task
	q.ScheduleEvent(4, "payload", func(ev *Event, now Time) {
		got = ev.A.(*task)
		if ev.B != nil {
			t.Error("B should be nil")
		}
		if now != 4 {
			t.Errorf("now = %d", now)
		}
	}, pay, nil)
	ev := q.Pop()
	ev.Handle(ev, ev.At)
	q.Release(ev)
	if got != pay {
		t.Fatal("payload not delivered")
	}
	if next := q.Schedule(5, "next", func(Time) {}); next != ev || next.A != nil || next.Handle != nil {
		t.Fatal("recycled event kept payload or handler")
	}
}

// TestReleaseQueuedEventPanics: pooling an event that is still in the
// heap would let two live events share one struct.
func TestReleaseQueuedEventPanics(t *testing.T) {
	var q Queue
	ev := q.Schedule(1, "x", func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Release of a queued event did not panic")
		}
	}()
	q.Release(ev)
}

// TestPushFreedEventPanics: a stale handle must not re-enter the heap.
func TestPushFreedEventPanics(t *testing.T) {
	var q Queue
	ev := q.Schedule(1, "x", func(Time) {})
	q.Remove(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("Push of a freed event did not panic")
		}
	}()
	ev.Fire = func(Time) {}
	q.Push(ev)
}

// TestQueuePushPopZeroAlloc is the hard allocation gate on the event
// path: steady-state schedule/pop/release traffic must not allocate.
func TestQueuePushPopZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariants build trades allocations for assertions")
	}
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	var q Queue
	fire := func(Time) {}
	at := Time(0)
	allocs := testing.AllocsPerRun(1000, func() {
		at++
		q.Schedule(at, "z", fire)
		q.Schedule(at, "z2", fire)
		q.Release(q.Pop())
		q.Release(q.Pop())
	})
	if allocs != 0 {
		t.Fatalf("queue push/pop allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkQueuePushPop measures the pooled event path; the 0 B/op,
// 0 allocs/op result is gated in CI (perf-smoke).
func BenchmarkQueuePushPop(b *testing.B) {
	var q Queue
	fire := func(Time) {}
	// Warm the pool and heap slice so growth is outside the loop.
	for i := 0; i < 64; i++ {
		q.Schedule(Time(i), "w", fire)
	}
	q.Reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := Time(i)
		q.Schedule(at, "a", fire)
		q.Schedule(at, "b", fire)
		q.Schedule(at+1, "c", fire)
		q.Release(q.Pop())
		q.Release(q.Pop())
		q.Release(q.Pop())
	}
}
