//go:build invariants

package sim

import (
	"strings"
	"testing"
)

// TestReleasePoisonsFreedEvent: under -tags invariants a pooled event
// is overwritten with sentinel values so any read through a stale
// handle is visibly wrong rather than silently plausible.
func TestReleasePoisonsFreedEvent(t *testing.T) {
	var q Queue
	ev := q.Schedule(123, "live", func(Time) {})
	q.Remove(ev)
	if ev.Kind != FreedKind {
		t.Fatalf("freed event Kind = %q, want %q", ev.Kind, FreedKind)
	}
	if ev.At != poisonedAt {
		t.Fatalf("freed event At = %d, want poison", ev.At)
	}
	if ev.Fire != nil || ev.Handle != nil || ev.A != nil || ev.B != nil {
		t.Fatal("freed event retains callback or payload")
	}
}

// TestDoubleReleaseAsserts: releasing the same struct twice would put
// two aliases of it on the free list; the invariants build panics.
func TestDoubleReleaseAsserts(t *testing.T) {
	var q Queue
	ev := q.Schedule(1, "x", func(Time) {})
	q.Release(q.Pop())
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic under -tags invariants")
		}
		if !strings.Contains(r.(string), "double release") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	q.Release(ev)
}
