//go:build invariants

package sim

import (
	"strings"
	"testing"
)

// TestQueuePopMonotonicityAssert checks the tagged build catches the
// one misuse the raw Queue cannot reject at Push time: scheduling an
// event earlier than one already popped (Engine.ScheduleAt guards
// this, a bare Queue does not).
func TestQueuePopMonotonicityAssert(t *testing.T) {
	var q Queue
	q.Schedule(10, "first", func(Time) {})
	if ev := q.Pop(); ev == nil || ev.At != 10 {
		t.Fatalf("Pop = %v, want event at 10", ev)
	}
	q.Schedule(5, "stale", func(Time) {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("popping a pre-dated event did not trip the invariant")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "monotone") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	q.Pop()
}

// TestQueuePopMonotoneOK checks well-ordered use stays silent under
// the tag.
func TestQueuePopMonotoneOK(t *testing.T) {
	var q Queue
	for _, at := range []Time{3, 1, 2} {
		q.Schedule(at, "ev", func(Time) {})
	}
	var got []Time
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		got = append(got, ev.At)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("pop order = %v, want [1 2 3]", got)
	}
}
