package sim

import "sort"

// This file is the sim package's contribution to the checkpoint
// subsystem. A snapshot never serializes the heap layout — only the
// pending events in their total firing order (At, insertion order).
// Restoring re-Pushes events in exactly that order, which reproduces
// the relative sequence numbering and therefore the identical pop
// order, regardless of how the original heap array happened to be
// arranged.

// Pending returns the queued events sorted by firing order — (At,
// seq) ascending. The returned slice is freshly allocated; the events
// themselves are the live queued structs and must not be mutated.
func (q *Queue) Pending() []*Event {
	out := make([]*Event, len(q.events))
	copy(out, q.events)
	sort.Slice(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].seq < out[j].seq
	})
	return out
}

// NextSeq exposes the queue's insertion counter for serialization.
// It is part of observable state: a restored run must hand out the
// same tie-breaking sequence numbers the uninterrupted run would.
func (q *Queue) NextSeq() uint64 { return q.nextSeq }

// RestoreSeq overwrites the insertion counter after the pending
// events have been re-Pushed. The stored counter can never be lower
// than the number of re-Pushed events, so a lower value means the
// snapshot is inconsistent; the caller turns the false return into a
// corruption error.
func (q *Queue) RestoreSeq(v uint64) bool {
	if v < q.nextSeq {
		return false
	}
	q.nextSeq = v
	return true
}

// RestoreProcessed overwrites the fired-event counter so a restored
// engine reports the same progress an uninterrupted run would.
func (e *Engine) RestoreProcessed(v uint64) { e.processed = v }
