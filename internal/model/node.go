package model

import (
	"errors"
	"fmt"
)

// Errors returned by node mutations.
var (
	// ErrInsufficientArea: the configuration does not fit in the
	// node's AvailableArea.
	ErrInsufficientArea = errors.New("model: insufficient available area")
	// ErrEntryBusy: the targeted region still runs a task.
	ErrEntryBusy = errors.New("model: entry is busy")
	// ErrEntryForeign: the entry does not belong to this node.
	ErrEntryForeign = errors.New("model: entry belongs to another node")
	// ErrTaskNotHere: the task is not running on this node.
	ErrTaskNotHere = errors.New("model: task not running on this node")
	// ErrFullModeViolation: a second configuration/task was pushed to
	// a node operating in full-reconfiguration mode.
	ErrFullModeViolation = errors.New("model: node in full mode already holds a configuration")
	// ErrCapsMismatch: the node lacks a capability the configuration
	// requires.
	ErrCapsMismatch = errors.New("model: node lacks required capability")
	// ErrNodeDown: the node crashed and has not recovered; no
	// configuration or task may be pushed onto it.
	ErrNodeDown = errors.New("model: node is down")
	// ErrNodeUp: Restore was called on a node that is not down.
	ErrNodeUp = errors.New("model: node is not down")
)

// Node is a reconfigurable processing node (paper Eq. 1):
//
//	Node_i(TotalArea, AvailableArea, C, family, caps, state)
//
// Its config-task-pair list tracks the resident configurations and
// the tasks running on them (Fig. 3), and AvailableArea always obeys
// Eq. 4: TotalArea − Σ ReqArea of resident configurations.
type Node struct {
	// No is the node number.
	No int
	// TotalArea is the node's total reconfigurable area.
	TotalArea Area
	// AvailableArea is the remaining unconfigured area (Eq. 4).
	AvailableArea Area
	// Family groups compatible nodes sharing resources/performance.
	Family string
	// Caps lists extra capabilities (embedded memory, DSP slices,
	// configuration bandwidth, ...).
	Caps []string
	// Entries is the config-task-pair list (Fig. 3).
	Entries []*Entry
	// ReconfigCount counts bitstream sends to this node.
	ReconfigCount int64
	// NetworkDelay is the node's communication latency in timeticks
	// (the t_comm charged to tasks sent here).
	NetworkDelay int64
	// PartialMode: when false the node behaves like a classic
	// full-reconfiguration FPGA — at most one resident configuration
	// and one task ("one node-one task mapping").
	PartialMode bool
	// Down marks a crashed node. A down node holds no configurations
	// (the fabric state died with it) and is excluded from every
	// placement search until Restore brings it back blank.
	Down bool
	// Slot is the node's position in its resource manager's node
	// slice, maintained by resinfo.New; the manager's SoA scan arrays
	// (free area, capability mask, state flags) are indexed by it.
	Slot int
}

// NewNode returns a blank node with the given geometry.
func NewNode(no int, totalArea Area, partial bool) *Node {
	return &Node{
		No:            no,
		TotalArea:     totalArea,
		AvailableArea: totalArea,
		Family:        "virtex-sim",
		PartialMode:   partial,
	}
}

// State derives the node status (paper Eq. 1 `state` plus the blank
// distinction used by the scheduling algorithm in §V).
func (n *Node) State() NodeState {
	if n.Down {
		return StateDown
	}
	if len(n.Entries) == 0 {
		return StateBlank
	}
	for _, e := range n.Entries {
		if e.Task != nil {
			return StateBusy
		}
	}
	return StateIdle
}

// Blank reports whether the node holds no configurations.
func (n *Node) Blank() bool { return len(n.Entries) == 0 }

// PartiallyBlank reports whether the node holds at least one
// configuration and still has unconfigured area left.
func (n *Node) PartiallyBlank() bool {
	return len(n.Entries) > 0 && n.AvailableArea > 0
}

// RunningTasks counts tasks currently executing on the node.
func (n *Node) RunningTasks() int {
	c := 0
	for _, e := range n.Entries {
		if e.Task != nil {
			c++
		}
	}
	return c
}

// IdleEntries returns the entries whose region is configured but idle.
func (n *Node) IdleEntries() []*Entry {
	var out []*Entry
	for _, e := range n.Entries {
		if e.Task == nil {
			out = append(out, e)
		}
	}
	return out
}

// HasCaps reports whether the node offers every listed capability
// (subset test against the node's caps, Eq. 1).
func (n *Node) HasCaps(required []string) bool {
	for _, want := range required {
		found := false
		for _, have := range n.Caps {
			if have == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// FindEntryWithConfig returns an entry resident with configuration
// cfgNo, preferring idle entries; nil if the configuration is not
// resident.
func (n *Node) FindEntryWithConfig(cfgNo int) *Entry {
	var busy *Entry
	for _, e := range n.Entries {
		if e.Config.No == cfgNo {
			if e.Task == nil {
				return e
			}
			busy = e
		}
	}
	return busy
}

// SendBitstream adds configuration cfg to the node (paper method):
// it creates a new idle config-task entry, deducts the required area
// from AvailableArea and increments the reconfiguration count. In
// full mode the node must be blank first; the node must offer every
// capability the configuration requires.
func (n *Node) SendBitstream(cfg *Config) (*Entry, error) {
	return n.SendBitstreamReusing(cfg, nil)
}

// SendBitstreamReusing is SendBitstream drawing the new region's
// Entry from spare when non-nil (the resource manager's entry pool).
// spare must be unlinked from every node and list; it is overwritten
// wholesale.
func (n *Node) SendBitstreamReusing(cfg *Config, spare *Entry) (*Entry, error) {
	if n.Down {
		return nil, fmt.Errorf("%w: node %d", ErrNodeDown, n.No)
	}
	if !n.PartialMode && len(n.Entries) > 0 {
		return nil, ErrFullModeViolation
	}
	if !n.HasCaps(cfg.RequiredCaps) {
		return nil, fmt.Errorf("%w: node %d lacks caps for config %d",
			ErrCapsMismatch, n.No, cfg.No)
	}
	if cfg.ReqArea > n.AvailableArea {
		return nil, fmt.Errorf("%w: node %d has %d free, config %d needs %d",
			ErrInsufficientArea, n.No, n.AvailableArea, cfg.No, cfg.ReqArea)
	}
	e := spare
	if e == nil {
		//lint:allocfree pool miss: callers recycle entries through spare; a nil spare allocates once per entry high-water mark (gated by TestSearchZeroAlloc)
		e = new(Entry)
	}
	*e = Entry{Config: cfg, Node: n}
	n.Entries = append(n.Entries, e)
	n.AvailableArea -= cfg.ReqArea
	n.ReconfigCount++
	return e, nil
}

// MakeNodeBlank removes all configurations (paper method). Every
// entry must be idle; the freed area returns to AvailableArea so that
// AvailableArea == TotalArea afterwards. It returns the removed
// entries so callers (the resource lists) can unlink them.
func (n *Node) MakeNodeBlank() ([]*Entry, error) {
	for _, e := range n.Entries {
		if e.Task != nil {
			return nil, fmt.Errorf("%w: node %d entry C%d runs T%d",
				ErrEntryBusy, n.No, e.Config.No, e.Task.No)
		}
	}
	removed := n.Entries
	n.Entries = nil
	n.AvailableArea = n.TotalArea
	return removed, nil
}

// MakeNodePartiallyBlank removes the given idle entries from the node
// (paper method), readjusting AvailableArea. All entries must belong
// to this node and be idle.
func (n *Node) MakeNodePartiallyBlank(victims []*Entry) error {
	for _, v := range victims {
		if v.Node != n {
			return ErrEntryForeign
		}
		if v.Task != nil {
			return fmt.Errorf("%w: node %d entry C%d runs T%d",
				ErrEntryBusy, n.No, v.Config.No, v.Task.No)
		}
	}
	for _, v := range victims {
		if !n.removeEntry(v) {
			return fmt.Errorf("model: entry C%d not found on node %d", v.Config.No, n.No)
		}
		n.AvailableArea += v.Config.ReqArea
	}
	return nil
}

// removeEntry unlinks e from the entries slice; reports success.
func (n *Node) removeEntry(e *Entry) bool {
	for i, cur := range n.Entries {
		if cur == e {
			n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
			return true
		}
	}
	return false
}

// AddTaskToNode starts task on the region entry (paper method). The
// entry must be idle and resident on this node.
func (n *Node) AddTaskToNode(e *Entry, task *Task) error {
	if n.Down {
		return fmt.Errorf("%w: node %d", ErrNodeDown, n.No)
	}
	if e.Node != n {
		return ErrEntryForeign
	}
	if e.Task != nil {
		return fmt.Errorf("%w: node %d entry C%d runs T%d",
			ErrEntryBusy, n.No, e.Config.No, e.Task.No)
	}
	if !n.PartialMode && n.RunningTasks() > 0 {
		return ErrFullModeViolation
	}
	e.Task = task
	task.AssignedConfig = e.Config.No
	task.Status = TaskRunning
	return nil
}

// Fail crashes the node: the tasks it was running are detached and
// returned (the caller requeues them), every resident configuration
// is invalidated — the fabric state is lost with the node — and the
// node is marked down so placement searches exclude it. The removed
// entries are returned so callers (the resource lists) can unlink
// them. Failing a node that is already down is an error; callers
// treat repeat crashes as no-ops before the state change.
func (n *Node) Fail() (tasks []*Task, removed []*Entry, err error) {
	if n.Down {
		return nil, nil, fmt.Errorf("%w: node %d", ErrNodeDown, n.No)
	}
	for _, e := range n.Entries {
		if e.Task != nil {
			tasks = append(tasks, e.Task)
			e.Task = nil
		}
	}
	removed = n.Entries
	n.Entries = nil
	n.AvailableArea = n.TotalArea
	n.Down = true
	return tasks, removed, nil
}

// Restore brings a crashed node back into service, blank: the fabric
// is usable again but holds no configurations.
func (n *Node) Restore() error {
	if !n.Down {
		return fmt.Errorf("%w: node %d", ErrNodeUp, n.No)
	}
	n.Down = false
	return nil
}

// RemoveTaskFromNode detaches task from its region (paper method) and
// returns the now-idle entry. The configuration stays resident.
func (n *Node) RemoveTaskFromNode(task *Task) (*Entry, error) {
	for _, e := range n.Entries {
		if e.Task == task {
			e.Task = nil
			return e, nil
		}
	}
	return nil, fmt.Errorf("%w: task %d on node %d", ErrTaskNotHere, task.No, n.No)
}

// CheckInvariants verifies Eq. 4 and mode constraints; it returns the
// first violation found or nil. Used by tests and the engine's debug
// mode.
func (n *Node) CheckInvariants() error {
	var used Area
	for _, e := range n.Entries {
		if e.Node != n {
			return fmt.Errorf("node %d: entry %v has wrong owner", n.No, e)
		}
		if e.Config == nil {
			return fmt.Errorf("node %d: entry with nil config", n.No)
		}
		used += e.Config.ReqArea
		if e.Task != nil && e.Task.Status != TaskRunning {
			return fmt.Errorf("node %d: entry C%d holds task T%d in state %s",
				n.No, e.Config.No, e.Task.No, e.Task.Status)
		}
		if e.InIdle && e.InBusy {
			return fmt.Errorf("node %d: entry C%d in both idle and busy lists", n.No, e.Config.No)
		}
	}
	if n.Down && len(n.Entries) > 0 {
		return fmt.Errorf("node %d: down but still holds %d configurations", n.No, len(n.Entries))
	}
	if n.AvailableArea != n.TotalArea-used {
		return fmt.Errorf("node %d: Eq.4 violated: available %d != total %d - used %d",
			n.No, n.AvailableArea, n.TotalArea, used)
	}
	if n.AvailableArea < 0 || n.AvailableArea > n.TotalArea {
		return fmt.Errorf("node %d: AvailableArea %d out of [0,%d]", n.No, n.AvailableArea, n.TotalArea)
	}
	if !n.PartialMode {
		if len(n.Entries) > 1 {
			return fmt.Errorf("node %d: full mode with %d configurations", n.No, len(n.Entries))
		}
		if n.RunningTasks() > 1 {
			return fmt.Errorf("node %d: full mode with %d running tasks", n.No, n.RunningTasks())
		}
	}
	return nil
}

// String implements fmt.Stringer.
func (n *Node) String() string {
	return fmt.Sprintf("N%d(%s total=%d avail=%d cfgs=%d tasks=%d)",
		n.No, n.State(), n.TotalArea, n.AvailableArea, len(n.Entries), n.RunningTasks())
}
