package model

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func cfg(no int, area Area) *Config {
	return &Config{No: no, ReqArea: area, Ptype: PTypeSoftCore, ConfigTime: 15, BSize: area * 100}
}

func TestStateStrings(t *testing.T) {
	cases := map[string]string{
		StateBlank.String():     "blank",
		StateIdle.String():      "idle",
		StateBusy.String():      "busy",
		NodeState(9).String():   "NodeState(9)",
		TaskCreated.String():    "created",
		TaskSuspended.String():  "suspended",
		TaskRunning.String():    "running",
		TaskCompleted.String():  "completed",
		TaskDiscarded.String():  "discarded",
		TaskStatus(42).String(): "TaskStatus(42)",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg(1, 500).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := cfg(1, 0).Validate(); err == nil {
		t.Error("zero-area config accepted")
	}
	bad := cfg(1, 500)
	bad.ConfigTime = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative ConfigTime accepted")
	}
	bad2 := cfg(1, 500)
	bad2.BSize = -1
	if err := bad2.Validate(); err == nil {
		t.Error("negative BSize accepted")
	}
}

func TestTaskLifecycleFields(t *testing.T) {
	task := NewTask(7, 800, 3, 1000, 50)
	if task.Status != TaskCreated || task.AssignedConfig != -1 {
		t.Fatalf("fresh task state wrong: %+v", task)
	}
	if task.WaitTime() != 0 {
		t.Errorf("unstarted task WaitTime = %d", task.WaitTime())
	}
	if task.TurnaroundTime() != 0 {
		t.Errorf("uncompleted task TurnaroundTime = %d", task.TurnaroundTime())
	}
	task.StartTime = 120
	task.CommDelay = 5
	task.ConfigDelay = 15
	if got := task.WaitTime(); got != 120-50+5+15 {
		t.Errorf("WaitTime = %d, want %d (Eq. 8)", got, 120-50+5+15)
	}
	task.CompletionTime = 1120
	if got := task.TurnaroundTime(); got != 1070 {
		t.Errorf("TurnaroundTime = %d, want 1070", got)
	}
	if err := task.Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	if err := NewTask(1, 0, 1, 10, 0).Validate(); err == nil {
		t.Error("zero-area task accepted")
	}
	if err := NewTask(1, 10, 1, 0, 0).Validate(); err == nil {
		t.Error("zero-time task accepted")
	}
	if err := NewTask(1, 10, 1, 10, -1).Validate(); err == nil {
		t.Error("negative create time accepted")
	}
}

func TestSendBitstreamAreaAccounting(t *testing.T) {
	n := NewNode(0, 3000, true)
	c1, c2 := cfg(1, 1000), cfg(2, 1500)
	e1, err := n.SendBitstream(c1)
	if err != nil {
		t.Fatal(err)
	}
	if n.AvailableArea != 2000 || n.ReconfigCount != 1 {
		t.Fatalf("after first config: avail=%d count=%d", n.AvailableArea, n.ReconfigCount)
	}
	if _, err := n.SendBitstream(c2); err != nil {
		t.Fatal(err)
	}
	if n.AvailableArea != 500 {
		t.Fatalf("Eq.4 violated: avail=%d", n.AvailableArea)
	}
	// Third config does not fit.
	if _, err := n.SendBitstream(cfg(3, 600)); !errors.Is(err, ErrInsufficientArea) {
		t.Fatalf("oversized config gave %v", err)
	}
	if e1.Node != n || !e1.Idle() {
		t.Fatal("entry wiring wrong")
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFullModeSingleConfig(t *testing.T) {
	n := NewNode(0, 4000, false)
	if _, err := n.SendBitstream(cfg(1, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := n.SendBitstream(cfg(2, 1000)); !errors.Is(err, ErrFullModeViolation) {
		t.Fatalf("full mode accepted second config: %v", err)
	}
}

func TestNodeStates(t *testing.T) {
	n := NewNode(0, 3000, true)
	if n.State() != StateBlank || !n.Blank() || n.PartiallyBlank() {
		t.Fatal("fresh node not blank")
	}
	e, _ := n.SendBitstream(cfg(1, 1000))
	if n.State() != StateIdle || !n.PartiallyBlank() {
		t.Fatalf("configured node state = %s", n.State())
	}
	task := NewTask(1, 1000, 1, 100, 0)
	if err := n.AddTaskToNode(e, task); err != nil {
		t.Fatal(err)
	}
	if n.State() != StateBusy || n.RunningTasks() != 1 {
		t.Fatalf("running node state = %s", n.State())
	}
	if task.Status != TaskRunning || task.AssignedConfig != 1 {
		t.Fatalf("task not marked running: %+v", task)
	}
	if _, err := n.RemoveTaskFromNode(task); err != nil {
		t.Fatal(err)
	}
	if n.State() != StateIdle {
		t.Fatalf("state after removal = %s", n.State())
	}
}

func TestPartiallyBlankEdge(t *testing.T) {
	n := NewNode(0, 1000, true)
	if _, err := n.SendBitstream(cfg(1, 1000)); err != nil {
		t.Fatal(err)
	}
	// Full fabric used: configured but NOT partially blank.
	if n.PartiallyBlank() {
		t.Fatal("zero AvailableArea node reported partially blank")
	}
}

func TestAddTaskErrors(t *testing.T) {
	n1 := NewNode(1, 3000, true)
	n2 := NewNode(2, 3000, true)
	e1, _ := n1.SendBitstream(cfg(1, 1000))
	task := NewTask(1, 1000, 1, 100, 0)
	if err := n2.AddTaskToNode(e1, task); !errors.Is(err, ErrEntryForeign) {
		t.Fatalf("foreign entry gave %v", err)
	}
	if err := n1.AddTaskToNode(e1, task); err != nil {
		t.Fatal(err)
	}
	other := NewTask(2, 1000, 1, 100, 0)
	if err := n1.AddTaskToNode(e1, other); !errors.Is(err, ErrEntryBusy) {
		t.Fatalf("busy entry gave %v", err)
	}
	if _, err := n1.RemoveTaskFromNode(other); !errors.Is(err, ErrTaskNotHere) {
		t.Fatalf("absent task gave %v", err)
	}
}

func TestFullModeOneTask(t *testing.T) {
	n := NewNode(0, 4000, false)
	e, _ := n.SendBitstream(cfg(1, 1000))
	if err := n.AddTaskToNode(e, NewTask(1, 1000, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeNodeBlank(t *testing.T) {
	n := NewNode(0, 3000, true)
	e1, _ := n.SendBitstream(cfg(1, 1000))
	_, _ = n.SendBitstream(cfg(2, 500))
	task := NewTask(1, 1000, 1, 100, 0)
	_ = n.AddTaskToNode(e1, task)
	if _, err := n.MakeNodeBlank(); !errors.Is(err, ErrEntryBusy) {
		t.Fatalf("blanking busy node gave %v", err)
	}
	_, _ = n.RemoveTaskFromNode(task)
	removed, err := n.MakeNodeBlank()
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %d entries, want 2", len(removed))
	}
	if n.AvailableArea != n.TotalArea || !n.Blank() {
		t.Fatalf("node not blank after MakeNodeBlank: %v", n)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeNodePartiallyBlank(t *testing.T) {
	n := NewNode(0, 4000, true)
	e1, _ := n.SendBitstream(cfg(1, 1000))
	e2, _ := n.SendBitstream(cfg(2, 500))
	e3, _ := n.SendBitstream(cfg(3, 700))
	task := NewTask(1, 500, 2, 100, 0)
	_ = n.AddTaskToNode(e2, task)

	// Evicting a busy entry must fail atomically (no area change).
	before := n.AvailableArea
	if err := n.MakeNodePartiallyBlank([]*Entry{e1, e2}); !errors.Is(err, ErrEntryBusy) {
		t.Fatalf("evicting busy entry gave %v", err)
	}
	if n.AvailableArea != before || len(n.Entries) != 3 {
		t.Fatal("failed eviction mutated node")
	}

	if err := n.MakeNodePartiallyBlank([]*Entry{e1, e3}); err != nil {
		t.Fatal(err)
	}
	if n.AvailableArea != 4000-500 {
		t.Fatalf("avail=%d after eviction, want 3500", n.AvailableArea)
	}
	if len(n.Entries) != 1 || n.Entries[0] != e2 {
		t.Fatalf("wrong survivor entries: %v", n.Entries)
	}
	// Foreign entry rejected.
	other := NewNode(1, 1000, true)
	eF, _ := other.SendBitstream(cfg(9, 100))
	if err := n.MakeNodePartiallyBlank([]*Entry{eF}); !errors.Is(err, ErrEntryForeign) {
		t.Fatalf("foreign eviction gave %v", err)
	}
	if err := n.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFindEntryWithConfig(t *testing.T) {
	n := NewNode(0, 4000, true)
	e1, _ := n.SendBitstream(cfg(1, 1000))
	e2, _ := n.SendBitstream(cfg(1, 1000)) // same config twice
	task := NewTask(1, 1000, 1, 100, 0)
	_ = n.AddTaskToNode(e1, task)
	// Prefers the idle duplicate.
	if got := n.FindEntryWithConfig(1); got != e2 {
		t.Fatalf("FindEntryWithConfig returned %v, want idle e2", got)
	}
	_ = n.AddTaskToNode(e2, NewTask(2, 1000, 1, 100, 0))
	if got := n.FindEntryWithConfig(1); got == nil || !strings.Contains(got.String(), "N0") {
		t.Fatalf("busy fallback wrong: %v", got)
	}
	if got := n.FindEntryWithConfig(99); got != nil {
		t.Fatalf("absent config returned %v", got)
	}
}

func TestIdleEntries(t *testing.T) {
	n := NewNode(0, 4000, true)
	e1, _ := n.SendBitstream(cfg(1, 1000))
	_, _ = n.SendBitstream(cfg(2, 500))
	_ = n.AddTaskToNode(e1, NewTask(1, 1000, 1, 100, 0))
	idle := n.IdleEntries()
	if len(idle) != 1 || idle[0].Config.No != 2 {
		t.Fatalf("IdleEntries = %v", idle)
	}
}

func TestInvariantDetectsCorruption(t *testing.T) {
	n := NewNode(0, 3000, true)
	_, _ = n.SendBitstream(cfg(1, 1000))
	n.AvailableArea = 999 // corrupt
	if err := n.CheckInvariants(); err == nil {
		t.Fatal("corrupted area not detected")
	}
	n2 := NewNode(1, 3000, true)
	e, _ := n2.SendBitstream(cfg(1, 1000))
	e.InIdle, e.InBusy = true, true
	if err := n2.CheckInvariants(); err == nil {
		t.Fatal("double list membership not detected")
	}
}

// Property: any sequence of fitting SendBitstream calls preserves Eq. 4
// and never drives AvailableArea negative.
func TestQuickAreaConservation(t *testing.T) {
	f := func(total uint16, areas []uint16) bool {
		tot := Area(total%4000) + 1
		n := NewNode(0, tot, true)
		for i, a := range areas {
			req := Area(a%2000) + 1
			_, err := n.SendBitstream(cfg(i, req))
			if req > 0 && err != nil && !errors.Is(err, ErrInsufficientArea) {
				return false
			}
			if n.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: configure/evict round-trips restore AvailableArea exactly.
func TestQuickConfigureEvictRoundTrip(t *testing.T) {
	f := func(areas []uint16) bool {
		n := NewNode(0, 1<<20, true)
		var entries []*Entry
		for i, a := range areas {
			e, err := n.SendBitstream(cfg(i, Area(a%2000)+1))
			if err != nil {
				return false
			}
			entries = append(entries, e)
		}
		if err := n.MakeNodePartiallyBlank(entries); err != nil {
			return false
		}
		return n.AvailableArea == n.TotalArea && n.Blank() && n.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	n := NewNode(3, 2000, true)
	e, _ := n.SendBitstream(cfg(5, 800))
	task := NewTask(9, 800, 5, 100, 0)
	for _, s := range []string{n.String(), e.String(), task.String(), cfg(5, 800).String()} {
		if s == "" {
			t.Fatal("empty String()")
		}
	}
	if !strings.Contains(e.String(), "idle") {
		t.Errorf("idle entry string: %s", e)
	}
	_ = n.AddTaskToNode(e, task)
	if !strings.Contains(e.String(), "T9") {
		t.Errorf("busy entry string: %s", e)
	}
}
