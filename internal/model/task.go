package model

import "fmt"

// Task is an application task (paper Eq. 3):
//
//	Task_i(t_required, Cpref, data)
//
// plus the bookkeeping fields of the paper's Task class (§IV-C):
// create/start/completion times, assigned configuration and the
// suspension retry counter.
type Task struct {
	// No is the task number in generation order.
	No int
	// NeededArea is the ReqArea of the task's preferred configuration.
	// It is carried on the task so the scheduler can find a closest
	// match even when Cpref itself is not in the configurations list.
	NeededArea Area
	// PrefConfig is the preferred configuration number (Cpref). It
	// may name a configuration that does not exist in the
	// configurations list (the paper assigns such Cprefs to 15% of
	// tasks); those tasks run on the closest match.
	PrefConfig int
	// AssignedConfig is the configuration the task actually ran on;
	// -1 until assigned.
	AssignedConfig int
	// Data is the input data size of the task (bytes); it only feeds
	// the communication-delay model.
	Data int64
	// Class is the traffic-class index of a multi-class scenario
	// source (workload.ClassedSource ordering); 0 for single-class
	// streams. It feeds per-class accounting only — scheduling never
	// reads it.
	Class int

	// CreateTime is the timetick the task entered the system.
	CreateTime int64
	// StartTime is the timetick the task was submitted to a node.
	StartTime int64
	// CompletionTime is the timetick the task finished.
	CompletionTime int64
	// RequiredTime is t_required: execution time on the preferred
	// configuration.
	RequiredTime int64
	// CommDelay and ConfigDelay record t_comm and t_config actually
	// charged to this task (Eq. 8 components).
	CommDelay   int64
	ConfigDelay int64

	// SusRetry counts how many times the task was re-examined while
	// sitting in the suspension queue.
	SusRetry int64
	// Retries counts how many times the task was displaced by a node
	// crash and re-dispatched; bounded by the run's retry budget.
	Retries int64

	// Resolved caches the configuration the scheduler resolved for
	// this task (Cpref if present in the configurations list, else
	// C_ClosestMatch) so suspension-queue retries do not repeat the
	// linear configuration search. Managed by the scheduling policy.
	Resolved *Config
	// ResolvedClosest records that Resolved is the closest match.
	ResolvedClosest bool

	// Status is the lifecycle state.
	Status TaskStatus
}

// NewTask builds a task in the Created state with unset assignment.
func NewTask(no int, neededArea Area, prefConfig int, requiredTime, createTime int64) *Task {
	return new(Task).Init(no, neededArea, prefConfig, requiredTime, createTime)
}

// Init (re)initialises t exactly as NewTask would a fresh struct,
// clearing every bookkeeping field from a previous life. It is the
// reuse path of the task free lists (workload.Recycler): pooled
// sources hand recycled structs through Init so a streamed run's
// tasks are indistinguishable from freshly allocated ones.
func (t *Task) Init(no int, neededArea Area, prefConfig int, requiredTime, createTime int64) *Task {
	*t = Task{
		No:             no,
		NeededArea:     neededArea,
		PrefConfig:     prefConfig,
		AssignedConfig: -1,
		CreateTime:     createTime,
		RequiredTime:   requiredTime,
		StartTime:      -1,
		CompletionTime: -1,
		Status:         TaskCreated,
	}
	return t
}

// WaitTime returns t_wait = t_start − t_create + t_comm + t_config
// (paper Eq. 8). It is only meaningful once the task has started.
func (t *Task) WaitTime() int64 {
	if t.StartTime < 0 {
		return 0
	}
	return t.StartTime - t.CreateTime + t.CommDelay + t.ConfigDelay
}

// TurnaroundTime returns the lapse from arrival to completion
// (Table I "average running time of each task" is reported from this).
func (t *Task) TurnaroundTime() int64 {
	if t.CompletionTime < 0 {
		return 0
	}
	return t.CompletionTime - t.CreateTime
}

// Validate reports whether the task is well-formed.
func (t *Task) Validate() error {
	if t.NeededArea <= 0 {
		return fmt.Errorf("model: task %d has non-positive NeededArea %d", t.No, t.NeededArea)
	}
	if t.RequiredTime <= 0 {
		return fmt.Errorf("model: task %d has non-positive RequiredTime %d", t.No, t.RequiredTime)
	}
	if t.CreateTime < 0 {
		return fmt.Errorf("model: task %d has negative CreateTime %d", t.No, t.CreateTime)
	}
	return nil
}

// String implements fmt.Stringer.
func (t *Task) String() string {
	return fmt.Sprintf("T%d(pref=C%d area=%d req=%d %s)",
		t.No, t.PrefConfig, t.NeededArea, t.RequiredTime, t.Status)
}
