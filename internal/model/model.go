// Package model implements the formal system model of DReAMSim
// (paper §IV-A): reconfigurable nodes (Eq. 1), processor
// configurations (Eq. 2), application tasks (Eq. 3), and the area
// accounting rule (Eq. 4), together with the node-mutation methods of
// the paper's Node class (§IV-C): SendBitstream, MakeNodeBlank,
// MakeNodePartiallyBlank, AddTaskToNode, RemoveTaskFromNode.
package model

import "fmt"

// Area measures reconfigurable fabric in abstract "area units" (the
// paper suggests area slices). Signed 64-bit matches the paper's
// `long int` fields and lets invariant checks detect underflow.
type Area = int64

// NodeState is the coarse status of a node (paper Eq. 1 `state`).
type NodeState int

const (
	// StateBlank: no configurations resident (a "blank node", §V).
	StateBlank NodeState = iota
	// StateIdle: at least one configuration resident, no running task.
	StateIdle
	// StateBusy: at least one task running.
	StateBusy
	// StateDown: the node crashed and has not recovered yet; it holds
	// no configurations and no placement search may select it.
	StateDown
)

// String implements fmt.Stringer.
func (s NodeState) String() string {
	switch s {
	case StateBlank:
		return "blank"
	case StateIdle:
		return "idle"
	case StateBusy:
		return "busy"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("NodeState(%d)", int(s))
	}
}

// CapBits assigns one bit per capability name, in first-seen order —
// the dense encoding the indexed placement search uses for O(1)
// subset tests over node caps and configuration RequiredCaps. It
// returns false when the name space exceeds 64 capabilities (callers
// then fall back to string subset tests).
func CapBits(capLists ...[]string) (map[string]uint64, bool) {
	bits := make(map[string]uint64)
	next := uint(0)
	for _, caps := range capLists {
		for _, c := range caps {
			if _, ok := bits[c]; ok {
				continue
			}
			if next >= 64 {
				return nil, false
			}
			bits[c] = 1 << next
			next++
		}
	}
	return bits, true
}

// CapMaskOf folds a capability list into its bitmask under the given
// assignment. Names absent from the assignment report false —
// the mask cannot represent them.
func CapMaskOf(bits map[string]uint64, caps []string) (uint64, bool) {
	var mask uint64
	for _, c := range caps {
		b, ok := bits[c]
		if !ok {
			return 0, false
		}
		mask |= b
	}
	return mask, true
}

// TaskStatus tracks a task through its lifecycle.
type TaskStatus int

const (
	TaskCreated   TaskStatus = iota // generated, not yet scheduled
	TaskSuspended                   // parked in the suspension queue
	TaskRunning                     // executing on a node
	TaskCompleted                   // finished successfully
	TaskDiscarded                   // dropped: no feasible placement
	TaskRetrying                    // displaced by a node crash, awaiting re-dispatch
	TaskLost                        // displaced by faults until the retry budget ran out
)

// String implements fmt.Stringer.
func (s TaskStatus) String() string {
	switch s {
	case TaskCreated:
		return "created"
	case TaskSuspended:
		return "suspended"
	case TaskRunning:
		return "running"
	case TaskCompleted:
		return "completed"
	case TaskDiscarded:
		return "discarded"
	case TaskRetrying:
		return "retrying"
	case TaskLost:
		return "lost"
	default:
		return fmt.Sprintf("TaskStatus(%d)", int(s))
	}
}
