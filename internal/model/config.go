package model

import (
	"fmt"
	"strings"
)

// PType names the processor type a configuration instantiates
// (paper Eq. 2 — examples given are multipliers, systolic arrays,
// soft-core processors such as ρ-VEX, and custom signal processors).
type PType string

// Predefined processor types used by the synthetic generator. Any
// string is a valid PType; these just give realistic defaults.
const (
	PTypeSoftCore   PType = "softcore-vliw" // ρ-VEX-style parameterisable VLIW
	PTypeMultiplier PType = "multiplier"
	PTypeSystolic   PType = "systolic-array"
	PTypeDSP        PType = "signal-processor"
	PTypeCrypto     PType = "crypto-engine"
)

// Config is a processor configuration that can be loaded onto a node
// region by sending its bitstream (paper Eq. 2):
//
//	C_i(ReqArea, Ptype, param, BSize, ConfigTime)
type Config struct {
	// No is the configuration number (index in the configurations list).
	No int
	// ReqArea is the reconfigurable area the configuration occupies.
	ReqArea Area
	// Ptype is the processor type the configuration instantiates.
	Ptype PType
	// Params lists architectural attributes of the Ptype (issue
	// width, ALU/multiplier counts, memory slots, ...).
	Params []string
	// BSize is the bitstream file size in bytes; it drives the
	// optional bitstream-transfer delay model.
	BSize int64
	// ConfigTime is the time (in timeticks) to configure a region
	// with this configuration.
	ConfigTime int64
	// RequiredCaps lists hardware capabilities the hosting node must
	// offer (embedded memory, DSP slices, ... — the node `caps` of
	// Eq. 1). Empty means any node can host the configuration.
	RequiredCaps []string
}

// Validate reports whether the configuration is well-formed.
func (c *Config) Validate() error {
	if c.ReqArea <= 0 {
		return fmt.Errorf("model: config %d has non-positive ReqArea %d", c.No, c.ReqArea)
	}
	if c.ConfigTime < 0 {
		return fmt.Errorf("model: config %d has negative ConfigTime %d", c.No, c.ConfigTime)
	}
	if c.BSize < 0 {
		return fmt.Errorf("model: config %d has negative BSize %d", c.No, c.BSize)
	}
	return nil
}

// String implements fmt.Stringer.
func (c *Config) String() string {
	return fmt.Sprintf("C%d(%s area=%d cfgTime=%d params=[%s])",
		c.No, c.Ptype, c.ReqArea, c.ConfigTime, strings.Join(c.Params, ","))
}
