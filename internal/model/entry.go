package model

import "fmt"

// Entry is one configuration-task pair on a node (the paper's
// ConfigTaskPair, Fig. 3). An Entry with a nil Task is an idle
// region: the configuration is resident but nothing is running on it.
//
// The paper threads nodes through per-configuration idle/busy linked
// lists with intrusive Inext/Bnext pointers on the node. Under
// partial reconfiguration a node can hold several configurations and
// must appear in several lists at once, so the intrusive hooks live
// here, on the entry, instead (one entry = one list membership). The
// hooks are maintained exclusively by the reslists package.
type Entry struct {
	// Config is the resident configuration. Never nil for a live entry.
	Config *Config
	// Task is the task running on this region, or nil when idle.
	Task *Task
	// Node is the owning node.
	Node *Node

	// Intrusive hooks for the per-configuration idle list (INext/IPrev)
	// and busy list (BNext/BPrev), mirroring the paper's Inext/Bnext.
	INext, IPrev *Entry
	BNext, BPrev *Entry
	// InIdle/InBusy record current list membership.
	InIdle, InBusy bool
}

// Idle reports whether no task is running on this region.
func (e *Entry) Idle() bool { return e.Task == nil }

// String implements fmt.Stringer.
func (e *Entry) String() string {
	task := "idle"
	if e.Task != nil {
		task = fmt.Sprintf("T%d", e.Task.No)
	}
	return fmt.Sprintf("entry(N%d C%d %s)", e.Node.No, e.Config.No, task)
}
