package invariant

import (
	"strings"
	"testing"
)

func TestAssertfTrueIsSilent(t *testing.T) {
	Assertf(true, "never shown %d", 1)
}

func TestAssertfFalsePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Assertf(false) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated: area 7 out of bounds") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	Assertf(false, "area %d out of bounds", 7)
}
