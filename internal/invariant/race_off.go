//go:build !race

package invariant

// RaceEnabled reports whether the binary was built with the race
// detector, whose instrumentation adds allocations that would fail
// the zero-allocs/op gates.
const RaceEnabled = false
