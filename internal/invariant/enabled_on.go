//go:build invariants

package invariant

// Enabled reports that this binary was built with -tags invariants:
// runtime assertions are compiled in.
const Enabled = true
