// Package invariant provides build-tag-gated runtime assertions for
// the simulator's load-bearing properties (monotonic timeticks,
// area bounds, task-count conservation — see DESIGN.md "Static
// analysis & invariants").
//
// Call sites guard every assertion with the compile-time constant
// Enabled:
//
//	if invariant.Enabled {
//		invariant.Assertf(cond, "…", args…)
//	}
//
// In regular builds Enabled is false and the whole block — including
// the evaluation of cond and its arguments — is eliminated as dead
// code. Building or testing with `-tags invariants` turns the checks
// on; a violated assertion panics, naming the broken property.
package invariant

import "fmt"

// Assertf panics with a descriptive message when cond is false.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		panic("invariant violated: " + fmt.Sprintf(format, args...))
	}
}
