//go:build !invariants

package invariant

// Enabled reports that runtime assertions are compiled out; guarded
// assertion blocks are eliminated as dead code.
const Enabled = false
