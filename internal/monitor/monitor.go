// Package monitor implements DReAMSim's monitoring module (paper
// §III, core subsystem): point-in-time snapshots of node states,
// fabric occupancy and per-configuration residency that other modules
// (and users) consult — "the current states of different nodes can be
// checked by the monitoring module".
package monitor

import (
	"fmt"
	"sort"
	"strings"

	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
)

// ConfigCensus counts the resident regions of one configuration.
type ConfigCensus struct {
	ConfigNo    int
	IdleRegions int
	BusyRegions int
}

// Snapshot is a consistent view of the system at one timetick.
type Snapshot struct {
	Time int64

	// Node-state census. DownNodes stays zero in fault-free runs.
	BlankNodes int
	IdleNodes  int
	BusyNodes  int
	DownNodes  int

	// Task census.
	RunningTasks int

	// Fabric occupancy. WastedArea is the instantaneous Eq. 6 value:
	// Σ AvailableArea over nodes holding at least one configuration.
	TotalArea      int64
	ConfiguredArea int64
	WastedArea     int64

	// PerConfig is the per-configuration residency census, ordered by
	// configuration number (only configurations with resident regions
	// appear).
	PerConfig []ConfigCensus

	// ClassRunning counts running tasks per traffic class (indexed by
	// model.Task.Class); nil unless the snapshot was taken with
	// TakeClassed, so single-class snapshots are unchanged.
	ClassRunning []int
}

// Take captures a snapshot of the manager's state at time now.
func Take(m *resinfo.Manager, now int64) Snapshot {
	s := Snapshot{Time: now}
	census := map[int]*ConfigCensus{}
	for _, n := range m.Nodes() {
		s.TotalArea += n.TotalArea
		switch n.State() {
		case model.StateBlank:
			s.BlankNodes++
		case model.StateIdle:
			s.IdleNodes++
		case model.StateBusy:
			s.BusyNodes++
		case model.StateDown:
			s.DownNodes++
		}
		if !n.Blank() {
			s.WastedArea += n.AvailableArea // Eq. 6
		}
		for _, e := range n.Entries {
			s.ConfiguredArea += e.Config.ReqArea
			c := census[e.Config.No]
			if c == nil {
				c = &ConfigCensus{ConfigNo: e.Config.No}
				census[e.Config.No] = c
			}
			if e.Idle() {
				c.IdleRegions++
			} else {
				c.BusyRegions++
				s.RunningTasks++
			}
		}
	}
	perConfig := make([]ConfigCensus, 0, len(census))
	for _, c := range census {
		perConfig = append(perConfig, *c)
	}
	sort.Slice(perConfig, func(i, j int) bool {
		return perConfig[i].ConfigNo < perConfig[j].ConfigNo
	})
	s.PerConfig = perConfig
	return s
}

// TakeClassed captures a snapshot with the running-task census split
// across `classes` traffic classes (multi-class scenario runs). Tasks
// whose class index falls outside [0, classes) are not counted.
func TakeClassed(m *resinfo.Manager, now int64, classes int) Snapshot {
	s := Take(m, now)
	if classes <= 0 {
		return s
	}
	cr := make([]int, classes)
	for _, n := range m.Nodes() {
		for _, e := range n.Entries {
			if e.Task != nil && e.Task.Class >= 0 && e.Task.Class < classes {
				cr[e.Task.Class]++
			}
		}
	}
	s.ClassRunning = cr
	return s
}

// Utilization returns the fraction of total fabric currently
// configured, in [0,1].
func (s Snapshot) Utilization() float64 {
	if s.TotalArea == 0 {
		return 0
	}
	return float64(s.ConfiguredArea) / float64(s.TotalArea)
}

// String renders a one-line summary. The down census only appears
// when nodes are actually down, so fault-free output is unchanged.
func (s Snapshot) String() string {
	down := ""
	if s.DownNodes > 0 {
		down = fmt.Sprintf(" down=%d", s.DownNodes)
	}
	return fmt.Sprintf("t=%d nodes[blank=%d idle=%d busy=%d%s] tasks=%d util=%.1f%% wasted=%d",
		s.Time, s.BlankNodes, s.IdleNodes, s.BusyNodes, down, s.RunningTasks,
		100*s.Utilization(), s.WastedArea)
}

// Table renders the per-configuration census as a fixed-width table.
func (s Snapshot) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-6s %-6s\n", "config", "idle", "busy")
	for _, c := range s.PerConfig {
		fmt.Fprintf(&b, "C%-7d %-6d %-6d\n", c.ConfigNo, c.IdleRegions, c.BusyRegions)
	}
	return b.String()
}
