package monitor

import (
	"strings"
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
)

func rig(t *testing.T) *resinfo.Manager {
	t.Helper()
	nodes := []*model.Node{
		model.NewNode(0, 3000, true),
		model.NewNode(1, 2000, true),
		model.NewNode(2, 4000, true),
	}
	configs := []*model.Config{
		{No: 0, ReqArea: 1000, ConfigTime: 10},
		{No: 1, ReqArea: 500, ConfigTime: 10},
	}
	m, err := resinfo.New(nodes, configs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTakeEmptySystem(t *testing.T) {
	m := rig(t)
	s := Take(m, 42)
	if s.Time != 42 || s.BlankNodes != 3 || s.IdleNodes != 0 || s.BusyNodes != 0 {
		t.Fatalf("empty snapshot wrong: %+v", s)
	}
	if s.WastedArea != 0 || s.ConfiguredArea != 0 || s.TotalArea != 9000 {
		t.Fatalf("area accounting wrong: %+v", s)
	}
	if s.Utilization() != 0 || s.RunningTasks != 0 || len(s.PerConfig) != 0 {
		t.Fatalf("empty system census wrong: %+v", s)
	}
}

func TestTakePopulatedSystem(t *testing.T) {
	m := rig(t)
	n0, n1 := m.Nodes()[0], m.Nodes()[1]
	e0, _ := m.Configure(n0, m.Configs()[0]) // 1000 on node0
	_, _ = m.Configure(n0, m.Configs()[1])   // 500 on node0
	_, _ = m.Configure(n1, m.Configs()[1])   // 500 on node1
	task := model.NewTask(1, 1000, 0, 100, 0)
	_ = m.StartTask(e0, task)

	s := Take(m, 100)
	if s.BlankNodes != 1 || s.IdleNodes != 1 || s.BusyNodes != 1 {
		t.Fatalf("node census: %+v", s)
	}
	if s.RunningTasks != 1 {
		t.Fatalf("running tasks %d", s.RunningTasks)
	}
	// Eq. 6: wasted = avail on configured nodes = (3000-1500)+(2000-500).
	if s.WastedArea != 1500+1500 {
		t.Fatalf("wasted area %d, want 3000", s.WastedArea)
	}
	if s.ConfiguredArea != 2000 {
		t.Fatalf("configured area %d", s.ConfiguredArea)
	}
	if got := s.Utilization(); got < 0.22 || got > 0.23 { // 2000/9000
		t.Fatalf("utilization %v", got)
	}
	if len(s.PerConfig) != 2 {
		t.Fatalf("per-config census: %+v", s.PerConfig)
	}
	// Ordered by config number.
	if s.PerConfig[0].ConfigNo != 0 || s.PerConfig[0].BusyRegions != 1 || s.PerConfig[0].IdleRegions != 0 {
		t.Fatalf("C0 census: %+v", s.PerConfig[0])
	}
	if s.PerConfig[1].ConfigNo != 1 || s.PerConfig[1].IdleRegions != 2 {
		t.Fatalf("C1 census: %+v", s.PerConfig[1])
	}
}

func TestSnapshotRendering(t *testing.T) {
	m := rig(t)
	_, _ = m.Configure(m.Nodes()[0], m.Configs()[0])
	s := Take(m, 7)
	if !strings.Contains(s.String(), "t=7") {
		t.Fatalf("String(): %s", s)
	}
	tbl := s.Table()
	if !strings.Contains(tbl, "config") || !strings.Contains(tbl, "C0") {
		t.Fatalf("Table():\n%s", tbl)
	}
}

func TestUtilizationZeroTotal(t *testing.T) {
	var s Snapshot
	if s.Utilization() != 0 {
		t.Fatal("zero-area utilization not 0")
	}
}
