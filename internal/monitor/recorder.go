package monitor

import (
	"fmt"
	"strings"

	"dreamsim/internal/metrics"
	"dreamsim/internal/resinfo"
)

// Sample is one light-weight time-series point recorded during a run.
type Sample struct {
	Time        int64
	BlankNodes  int
	IdleNodes   int
	BusyNodes   int
	Running     int
	Suspended   int
	WastedArea  int64 // Eq. 6 instantaneous value
	Utilization float64
	// ClassRunning splits Running across traffic classes; nil unless
	// the recorder has Classes set (multi-class scenario runs).
	ClassRunning []int
}

// Recorder collects periodic samples of system state — the
// monitoring module's view over time. Observe is cheap relative to a
// full Snapshot: one pass over the nodes.
//
// A plain recorder accumulates every sample (O(samples) memory, fine
// for paper-scale runs). A windowed recorder (NewWindowRecorder)
// instead folds samples into a rolling-window Aggregator the moment
// they are taken, so cluster-scale runs keep O(window) memory.
type Recorder struct {
	// Every is the sampling stride: a sample is taken on every
	// Every-th Observe call (minimum 1).
	Every int
	// Classes, when positive, makes every sample carry a per-class
	// running-task census of that many traffic classes. Zero (the
	// default) keeps the cheap node-only walk and the legacy sample
	// shape.
	Classes int

	calls   int
	samples []Sample
	agg     *Aggregator // non-nil in windowed (streaming) mode
}

// NewRecorder returns a recorder sampling every stride-th observation.
func NewRecorder(stride int) *Recorder {
	if stride < 1 {
		stride = 1
	}
	return &Recorder{Every: stride}
}

// NewWindowRecorder returns a recorder in bounded-memory streaming
// mode: every stride-th observation is folded into windows of the
// given sample count instead of being retained. sink, when non-nil,
// receives each closed WindowRow as the run progresses (the
// incremental timeline). Samples() stays empty in this mode; use
// Windows()/WindowsTotal() and FinishWindows().
func NewWindowRecorder(stride, window int, sink func(WindowRow) error) *Recorder {
	r := NewRecorder(stride)
	r.agg = NewAggregator(window, sink)
	return r
}

// Windowed reports whether the recorder aggregates instead of
// retaining samples.
func (r *Recorder) Windowed() bool { return r.agg != nil }

// FinishWindows closes the final partial window and returns the first
// sink error; a no-op on plain recorders.
func (r *Recorder) FinishWindows() error {
	if r.agg == nil {
		return nil
	}
	return r.agg.Flush()
}

// Windows returns the retained closed rows (oldest first, bounded —
// see Aggregator.Rows); nil on plain recorders.
func (r *Recorder) Windows() []WindowRow {
	if r.agg == nil {
		return nil
	}
	return r.agg.Rows()
}

// WindowsTotal reports how many windows closed over the whole run.
func (r *Recorder) WindowsTotal() int {
	if r.agg == nil {
		return 0
	}
	return r.agg.TotalRows()
}

// Observe possibly records a sample of the manager's state.
func (r *Recorder) Observe(m *resinfo.Manager, now int64, suspended int) {
	r.calls++
	if (r.calls-1)%r.Every != 0 {
		return
	}
	s := Sample{Time: now, Suspended: suspended}
	if r.Classes > 0 {
		s.ClassRunning = make([]int, r.Classes)
	}
	var total, used int64
	for _, n := range m.Nodes() {
		total += n.TotalArea
		used += n.TotalArea - n.AvailableArea
		running := n.RunningTasks()
		s.Running += running
		switch {
		case n.Blank():
			s.BlankNodes++
		case running == 0:
			s.IdleNodes++
		default:
			s.BusyNodes++
			s.WastedArea += n.AvailableArea
		}
		if !n.Blank() && running == 0 {
			s.WastedArea += n.AvailableArea
		}
		if s.ClassRunning != nil && running > 0 {
			for _, e := range n.Entries {
				if e.Task != nil && e.Task.Class >= 0 && e.Task.Class < len(s.ClassRunning) {
					s.ClassRunning[e.Task.Class]++
				}
			}
		}
	}
	if total > 0 {
		s.Utilization = float64(used) / float64(total)
	}
	if r.agg != nil {
		r.agg.Add(s)
		return
	}
	r.samples = append(r.samples, s)
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// UtilizationSeries returns fabric utilisation over time.
func (r *Recorder) UtilizationSeries() metrics.Series {
	s := metrics.Series{Name: "utilization"}
	for _, p := range r.samples {
		s.Add(float64(p.Time), p.Utilization)
	}
	return s
}

// QueueSeries returns suspension-queue depth over time.
func (r *Recorder) QueueSeries() metrics.Series {
	s := metrics.Series{Name: "suspended"}
	for _, p := range r.samples {
		s.Add(float64(p.Time), float64(p.Suspended))
	}
	return s
}

// sparkGlyphs maps a [0,1] level onto a bar glyph.
var sparkGlyphs = []byte(" .:-=+*#%@")

// Timeline renders utilisation and queue depth as width-column text
// sparklines (each column aggregates the mean of its sample bucket).
// In windowed mode the sparklines are drawn from the retained window
// rows (one pseudo-sample per row, carrying the row means), so the
// rendering stays bounded no matter how long the run was.
func (r *Recorder) Timeline(width int) string {
	samples := r.samples
	if r.agg != nil {
		rows := r.agg.Rows()
		samples = make([]Sample, len(rows))
		for i, row := range rows {
			samples[i] = Sample{
				Time:        row.End,
				Utilization: row.Utilization.Mean,
				Suspended:   int(row.Suspended.Mean + 0.5),
			}
		}
	}
	return renderTimeline(samples, width)
}

// renderTimeline draws the sparklines over an explicit sample series.
func renderTimeline(samples []Sample, width int) string {
	if width < 1 {
		width = 60
	}
	if len(samples) == 0 {
		return "(no samples)\n"
	}
	util := make([]float64, width)
	queue := make([]float64, width)
	counts := make([]int, width)
	maxQ := 1.0
	t0 := samples[0].Time
	t1 := samples[len(samples)-1].Time
	span := t1 - t0
	if span < 1 {
		span = 1
	}
	for _, s := range samples {
		col := int(int64(width-1) * (s.Time - t0) / span)
		util[col] += s.Utilization
		queue[col] += float64(s.Suspended)
		counts[col]++
		if q := float64(s.Suspended); q > maxQ {
			maxQ = q
		}
	}
	var ub, qb strings.Builder
	for i := 0; i < width; i++ {
		if counts[i] == 0 {
			ub.WriteByte(' ')
			qb.WriteByte(' ')
			continue
		}
		u := util[i] / float64(counts[i])
		q := queue[i] / float64(counts[i]) / maxQ
		ub.WriteByte(glyph(u))
		qb.WriteByte(glyph(q))
	}
	return fmt.Sprintf("fabric utilization |%s|\nsuspension queue   |%s| (peak %d)\nticks %d..%d, %d samples\n",
		ub.String(), qb.String(), int(maxQ), t0, t1, len(samples))
}

// glyph maps level in [0,1] to a density character.
func glyph(level float64) byte {
	if level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	return sparkGlyphs[int(level*float64(len(sparkGlyphs)-1)+0.5)]
}
