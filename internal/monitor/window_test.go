package monitor

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"dreamsim/internal/rng"
)

// rowsEqual compares two window rows; WindowRow carries a per-class
// slice so it is not ==-comparable.
func rowsEqual(a, b WindowRow) bool { return reflect.DeepEqual(a, b) }

// syntheticSamples builds a deterministic pseudo-random sample series.
func syntheticSamples(n int, seed uint64) []Sample {
	r := rng.New(seed)
	out := make([]Sample, n)
	t := int64(0)
	for i := range out {
		t += int64(r.IntRange(1, 9))
		out[i] = Sample{
			Time:        t,
			Running:     r.IntRange(0, 500),
			Suspended:   r.IntRange(0, 100),
			WastedArea:  r.Int64Range(0, 10000),
			Utilization: float64(r.IntRange(0, 1000)) / 1000,
		}
	}
	return out
}

// TestAggregatorMatchesFullHistory proves the rolling-window path
// computes exactly what a full-history reduction over the same window
// chunks would: feed N samples through an Aggregator, then Reduce the
// materialized history chunk by chunk and compare every row.
func TestAggregatorMatchesFullHistory(t *testing.T) {
	for _, window := range []int{1, 7, 64, 1000} {
		samples := syntheticSamples(997, 42) // not a multiple: exercises the partial tail window
		var got []WindowRow
		agg := NewAggregator(window, func(row WindowRow) error {
			got = append(got, row)
			return nil
		})
		for _, s := range samples {
			agg.Add(s)
		}
		if err := agg.Flush(); err != nil {
			t.Fatalf("window=%d: Flush: %v", window, err)
		}

		var want []WindowRow
		for i := 0; i < len(samples); i += window {
			end := i + window
			if end > len(samples) {
				end = len(samples)
			}
			chunk := append([]Sample(nil), samples[i:end]...) // Reduce sorts scratch, keep history intact
			want = append(want, Reduce(chunk))
		}
		if len(got) != len(want) {
			t.Fatalf("window=%d: %d rows streamed, want %d", window, len(got), len(want))
		}
		for i := range want {
			if !rowsEqual(got[i], want[i]) {
				t.Errorf("window=%d row %d:\n  streamed %+v\n  history  %+v", window, i, got[i], want[i])
			}
		}
		if agg.TotalRows() != len(want) {
			t.Errorf("window=%d: TotalRows=%d, want %d", window, agg.TotalRows(), len(want))
		}
		if rows := agg.Rows(); len(rows) != len(want) {
			t.Errorf("window=%d: %d retained rows, want %d", window, len(rows), len(want))
		}
	}
}

// TestAggregatorRingEviction closes more windows than the ring holds
// and checks the retained rows are exactly the most recent ones, in
// order, while TotalRows still counts everything.
func TestAggregatorRingEviction(t *testing.T) {
	total := windowRingCap + 137
	agg := NewAggregator(1, nil)
	for i := 0; i < total; i++ {
		agg.Add(Sample{Time: int64(i), Running: i})
	}
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}
	if agg.TotalRows() != total {
		t.Fatalf("TotalRows=%d, want %d", agg.TotalRows(), total)
	}
	rows := agg.Rows()
	if len(rows) != windowRingCap {
		t.Fatalf("%d retained rows, want ring cap %d", len(rows), windowRingCap)
	}
	for i, row := range rows {
		wantTime := int64(total - windowRingCap + i)
		if row.Start != wantTime || row.End != wantTime {
			t.Fatalf("row %d covers ticks [%d,%d], want oldest-first sequence starting at %d",
				i, row.Start, row.End, total-windowRingCap)
		}
	}
}

// TestReduceStats pins the reduction arithmetic on a hand-checked
// window.
func TestReduceStats(t *testing.T) {
	samples := make([]Sample, 100)
	for i := range samples {
		samples[i] = Sample{Time: int64(i), Utilization: float64(i)} // 0..99
	}
	row := Reduce(samples)
	u := row.Utilization
	if u.Min != 0 || u.Max != 99 || math.Abs(u.Mean-49.5) > 1e-12 {
		t.Errorf("min/max/mean = %v/%v/%v, want 0/99/49.5", u.Min, u.Max, u.Mean)
	}
	// Nearest-rank p99 of 100 ordered values 0..99 is the 99th value.
	if u.P99 != 98 {
		t.Errorf("p99 = %v, want 98 (nearest rank ceil(0.99*100)-1 = index 98)", u.P99)
	}
	if row.Start != 0 || row.End != 99 || row.Samples != 100 {
		t.Errorf("row frame = [%d,%d] n=%d, want [0,99] n=100", row.Start, row.End, row.Samples)
	}
}

// TestTimelineWriter checks the CSV stream: header once, one flushed
// line per row, values in column order.
func TestTimelineWriter(t *testing.T) {
	var sb strings.Builder
	tw := NewTimelineWriter(&sb)
	rows := []WindowRow{
		{Start: 10, End: 20, Samples: 4, Utilization: WindowStat{Min: 0.25, Max: 0.75, Mean: 0.5, P99: 0.75}},
		{Start: 21, End: 30, Samples: 4, Suspended: WindowStat{Min: 1, Max: 9, Mean: 4, P99: 9}},
	}
	for _, row := range rows {
		if err := tw.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), sb.String())
	}
	if lines[0] != timelineHeader {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "10,20,4,0.25,0.75,0.5,0.75,") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "21,30,4,") || !strings.Contains(lines[2], ",1,9,4,9,") {
		t.Errorf("row 2 = %q", lines[2])
	}
}

// TestReduceClassRunning pins the per-class reduction: every class
// column is reduced by the same min/max/mean/p99 arithmetic as the
// fixed columns, short ClassRunning slices read as zero, and
// class-free samples produce a nil ClassRunning row (the byte-identity
// switch for non-scenario runs).
func TestReduceClassRunning(t *testing.T) {
	samples := make([]Sample, 10)
	for i := range samples {
		samples[i] = Sample{
			Time:         int64(i),
			Running:      3 * i,
			ClassRunning: []int{i, 2 * i},
		}
	}
	row := Reduce(samples)
	if len(row.ClassRunning) != 2 {
		t.Fatalf("%d class stats, want 2", len(row.ClassRunning))
	}
	for c, want := range []WindowStat{
		{Min: 0, Max: 9, Mean: 4.5, P99: 9},
		{Min: 0, Max: 18, Mean: 9, P99: 18},
	} {
		if row.ClassRunning[c] != want {
			t.Errorf("class %d stat = %+v, want %+v", c, row.ClassRunning[c], want)
		}
	}

	// A sample with a short (or absent) census counts as zero for the
	// missing classes rather than panicking.
	ragged := append([]Sample{}, samples...)
	ragged[3] = Sample{Time: 3, Running: 9} // no ClassRunning at all
	row = Reduce(ragged)
	if row.ClassRunning[0].Min != 0 || row.ClassRunning[1].Min != 0 {
		t.Errorf("ragged census min = %+v, want zeros", row.ClassRunning)
	}

	// Class-free windows must not grow a ClassRunning row.
	plain := Reduce(syntheticSamples(16, 3))
	if plain.ClassRunning != nil {
		t.Errorf("class-free reduction grew ClassRunning %+v", plain.ClassRunning)
	}
}

// TestTimelineWriterClassColumns checks the CSV surface of multi-class
// rows: class<i>_* column groups after the fixed header, one 4-column
// group per class per row — and that class-free rows render the exact
// pre-scenario header.
func TestTimelineWriterClassColumns(t *testing.T) {
	var sb strings.Builder
	tw := NewTimelineWriter(&sb)
	row := WindowRow{
		Start: 5, End: 9, Samples: 2,
		Running: WindowStat{Min: 3, Max: 7, Mean: 5, P99: 7},
		ClassRunning: []WindowStat{
			{Min: 1, Max: 3, Mean: 2, P99: 3},
			{Min: 2, Max: 4, Mean: 3, P99: 4},
		},
	}
	if err := tw.Write(row); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want header + row:\n%s", len(lines), sb.String())
	}
	wantHeader := timelineHeader +
		",class0_min,class0_max,class0_mean,class0_p99" +
		",class1_min,class1_max,class1_mean,class1_p99"
	if lines[0] != wantHeader {
		t.Errorf("header = %q\nwant     %q", lines[0], wantHeader)
	}
	if !strings.HasSuffix(lines[1], ",1,3,2,3,2,4,3,4") {
		t.Errorf("row = %q, want class groups ...,1,3,2,3,2,4,3,4", lines[1])
	}

	// Class-free writer output is byte-identical to the pre-scenario
	// format: the bare header, no trailing columns.
	var plain strings.Builder
	ptw := NewTimelineWriter(&plain)
	if err := ptw.Write(WindowRow{Start: 1, End: 2, Samples: 1}); err != nil {
		t.Fatal(err)
	}
	plines := strings.Split(strings.TrimRight(plain.String(), "\n"), "\n")
	if plines[0] != timelineHeader {
		t.Errorf("class-free header = %q", plines[0])
	}
	if strings.Contains(plain.String(), "class0") {
		t.Errorf("class-free timeline grew class columns:\n%s", plain.String())
	}
}

// TestWindowRecorderMatchesPlainRecorder drives a windowed and a plain
// recorder over identical observations (via direct Aggregator feeding
// of the plain recorder's samples) and proves the windowed aggregates
// equal the full-history reduction. This is the monitor half of the
// streamed-vs-materialized equivalence contract.
func TestWindowRecorderMatchesPlainRecorder(t *testing.T) {
	samples := syntheticSamples(513, 7)

	// Windowed path: samples stream through the aggregator.
	agg := NewAggregator(64, nil)
	for _, s := range samples {
		agg.Add(s)
	}
	if err := agg.Flush(); err != nil {
		t.Fatal(err)
	}

	// Materialized path: full history, reduced in 64-sample chunks.
	rows := agg.Rows()
	for i, j := 0, 0; i < len(samples); i, j = i+64, j+1 {
		end := i + 64
		if end > len(samples) {
			end = len(samples)
		}
		chunk := append([]Sample(nil), samples[i:end]...)
		if want := Reduce(chunk); !rowsEqual(rows[j], want) {
			t.Fatalf("window %d: streamed %+v != history %+v", j, rows[j], want)
		}
	}
}
