package monitor

import (
	"fmt"

	"dreamsim/internal/snapshot"
)

// Checkpoint support: a Recorder's dynamic state is the observation
// counter plus either the retained sample series (plain mode) or the
// aggregator's open window and closed-row ring (windowed mode). The
// sampling stride, class count and window size are configuration —
// they are rebuilt from run parameters and encoded only as a
// fingerprint so a restore into a differently-configured recorder
// fails loudly instead of silently diverging.
//
// A recorder streaming to a sink (the incremental timeline file)
// cannot be checkpointed: the sink's already-written output is
// outside the snapshot boundary.

// EncodeState appends the recorder's dynamic state.
func (r *Recorder) EncodeState(w *snapshot.Writer) error {
	if r.agg != nil && r.agg.sink != nil {
		return fmt.Errorf("monitor: a recorder with a timeline sink cannot be checkpointed")
	}
	w.Int(r.Every)
	w.Int(r.Classes)
	w.Int(r.calls)
	w.Bool(r.agg != nil)
	if r.agg == nil {
		w.Int(len(r.samples))
		for i := range r.samples {
			encodeSample(w, &r.samples[i])
		}
		return nil
	}
	a := r.agg
	w.Int(a.window)
	w.Int(len(a.buf))
	for i := range a.buf {
		encodeSample(w, &a.buf[i])
	}
	// Closed rows leave in oldest-first order; the ring rotation is an
	// internal artifact the restore does not need to reproduce.
	rows := a.Rows()
	w.Int(len(rows))
	for i := range rows {
		encodeRow(w, &rows[i])
	}
	w.Int(a.total)
	return nil
}

// RestoreState overwrites the recorder's dynamic state from a
// snapshot. The recorder must be freshly constructed with the same
// stride, class count and mode as the one that was encoded.
func (r *Recorder) RestoreState(rd *snapshot.Reader) error {
	every := rd.Int()
	classes := rd.Int()
	calls := rd.Int()
	windowed := rd.Bool()
	if err := rd.Err(); err != nil {
		return err
	}
	if every != r.Every || classes != r.Classes || windowed != (r.agg != nil) {
		return fmt.Errorf("%w: snapshot recorder (stride %d, %d classes, windowed %v) does not match run parameters (stride %d, %d classes, windowed %v)",
			snapshot.ErrCorrupt, every, classes, windowed, r.Every, r.Classes, r.agg != nil)
	}
	if calls < 0 {
		return fmt.Errorf("%w: negative observation count", snapshot.ErrCorrupt)
	}
	if r.agg == nil {
		n := rd.Count()
		samples := make([]Sample, n)
		for i := range samples {
			if err := decodeSample(rd, &samples[i]); err != nil {
				return err
			}
		}
		r.calls = calls
		r.samples = samples
		return nil
	}
	a := r.agg
	window := rd.Int()
	if rd.Err() == nil && window != a.window {
		return fmt.Errorf("%w: snapshot window %d samples, run parameters say %d",
			snapshot.ErrCorrupt, window, a.window)
	}
	nbuf := rd.Count()
	if rd.Err() == nil && nbuf >= a.window && a.window > 0 {
		return fmt.Errorf("%w: open window holds %d samples, window closes at %d",
			snapshot.ErrCorrupt, nbuf, a.window)
	}
	buf := make([]Sample, nbuf)
	for i := range buf {
		if err := decodeSample(rd, &buf[i]); err != nil {
			return err
		}
	}
	nrows := rd.Count()
	if rd.Err() == nil && nrows > windowRingCap {
		return fmt.Errorf("%w: %d retained window rows, ring holds %d", snapshot.ErrCorrupt, nrows, windowRingCap)
	}
	rows := make([]WindowRow, nrows)
	for i := range rows {
		if err := decodeRow(rd, &rows[i]); err != nil {
			return err
		}
	}
	total := rd.Int()
	if err := rd.Err(); err != nil {
		return err
	}
	if total < nrows {
		return fmt.Errorf("%w: %d total rows but %d retained", snapshot.ErrCorrupt, total, nrows)
	}
	r.calls = calls
	a.buf = buf
	a.rows = rows
	a.ringStart = 0
	a.total = total
	return nil
}

func encodeSample(w *snapshot.Writer, s *Sample) {
	w.I64(s.Time)
	w.Int(s.BlankNodes)
	w.Int(s.IdleNodes)
	w.Int(s.BusyNodes)
	w.Int(s.Running)
	w.Int(s.Suspended)
	w.I64(s.WastedArea)
	w.F64(s.Utilization)
	w.Int(len(s.ClassRunning))
	for _, c := range s.ClassRunning {
		w.Int(c)
	}
}

func decodeSample(rd *snapshot.Reader, s *Sample) error {
	s.Time = rd.I64()
	s.BlankNodes = rd.Int()
	s.IdleNodes = rd.Int()
	s.BusyNodes = rd.Int()
	s.Running = rd.Int()
	s.Suspended = rd.Int()
	s.WastedArea = rd.I64()
	s.Utilization = rd.F64()
	if n := rd.Count(); n > 0 {
		s.ClassRunning = make([]int, n)
		for i := range s.ClassRunning {
			s.ClassRunning[i] = rd.Int()
		}
	}
	return rd.Err()
}

func encodeStat(w *snapshot.Writer, s *WindowStat) {
	w.F64(s.Min)
	w.F64(s.Max)
	w.F64(s.Mean)
	w.F64(s.P99)
}

func decodeStat(rd *snapshot.Reader, s *WindowStat) {
	s.Min = rd.F64()
	s.Max = rd.F64()
	s.Mean = rd.F64()
	s.P99 = rd.F64()
}

func encodeRow(w *snapshot.Writer, row *WindowRow) {
	w.I64(row.Start)
	w.I64(row.End)
	w.Int(row.Samples)
	encodeStat(w, &row.Utilization)
	encodeStat(w, &row.Running)
	encodeStat(w, &row.Suspended)
	encodeStat(w, &row.WastedArea)
	w.Int(len(row.ClassRunning))
	for i := range row.ClassRunning {
		encodeStat(w, &row.ClassRunning[i])
	}
}

func decodeRow(rd *snapshot.Reader, row *WindowRow) error {
	row.Start = rd.I64()
	row.End = rd.I64()
	row.Samples = rd.Int()
	decodeStat(rd, &row.Utilization)
	decodeStat(rd, &row.Running)
	decodeStat(rd, &row.Suspended)
	decodeStat(rd, &row.WastedArea)
	if n := rd.Count(); n > 0 {
		row.ClassRunning = make([]WindowStat, n)
		for i := range row.ClassRunning {
			decodeStat(rd, &row.ClassRunning[i])
		}
	}
	return rd.Err()
}
