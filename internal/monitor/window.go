package monitor

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
)

// The rolling-window aggregation path: at cluster scale a run emits
// millions of monitoring samples, so the recorder cannot keep the
// full series (that is O(tasks) memory). Instead consecutive samples
// fold into fixed-size windows; each closed window reduces to one
// WindowRow (min/max/mean/p99 per metric) that is streamed to an
// optional sink immediately and retained only in a bounded ring.
// Memory is O(window + ring), independent of run length.

// WindowStat summarises one metric over one aggregation window.
// P99 is the nearest-rank 99th percentile of the window's samples.
type WindowStat struct {
	Min, Max, Mean, P99 float64
}

// WindowRow is one closed window of the streaming timeline: the tick
// range its samples covered, the sample count, and per-metric stats.
type WindowRow struct {
	Start, End  int64
	Samples     int
	Utilization WindowStat
	Running     WindowStat
	Suspended   WindowStat
	WastedArea  WindowStat
	// ClassRunning carries one Running-style stat per traffic class;
	// nil when the window's samples carried no per-class census.
	ClassRunning []WindowStat
}

// windowRingCap bounds how many closed rows an Aggregator retains for
// end-of-run summaries (sparklines, Result.Windows). Older rows are
// evicted once the ring is full; the streamed sink, when set, has
// received every row regardless.
const windowRingCap = 1024

// Aggregator folds monitoring samples into consecutive windows of a
// fixed sample count. It is the bounded-memory replacement for the
// recorder's unbounded sample slice.
type Aggregator struct {
	window int
	sink   func(WindowRow) error

	buf []Sample // current, not yet closed window

	rows      []WindowRow // ring of the most recent closed rows
	ringStart int         // index of the oldest retained row
	total     int         // rows closed over the whole run
	err       error
}

// NewAggregator returns an aggregator closing a window every `window`
// samples (minimum 1). sink, when non-nil, receives each closed row
// in order; its first error stops further sink calls and is reported
// by Err.
func NewAggregator(window int, sink func(WindowRow) error) *Aggregator {
	if window < 1 {
		window = 1
	}
	return &Aggregator{window: window, sink: sink}
}

// Add folds one sample into the current window, closing it when full.
func (a *Aggregator) Add(s Sample) {
	a.buf = append(a.buf, s)
	if len(a.buf) >= a.window {
		a.closeWindow()
	}
}

// Flush closes the current partial window, if any, and returns the
// first sink error.
func (a *Aggregator) Flush() error {
	if len(a.buf) > 0 {
		a.closeWindow()
	}
	return a.err
}

// Err returns the first sink error.
func (a *Aggregator) Err() error { return a.err }

// TotalRows reports how many windows closed over the whole run,
// including rows evicted from the retained ring.
func (a *Aggregator) TotalRows() int { return a.total }

// Rows returns the retained rows, oldest first. At most windowRingCap
// rows are kept; TotalRows tells whether older ones were evicted.
func (a *Aggregator) Rows() []WindowRow {
	if a.ringStart == 0 {
		return a.rows
	}
	out := make([]WindowRow, 0, len(a.rows))
	out = append(out, a.rows[a.ringStart:]...)
	out = append(out, a.rows[:a.ringStart]...)
	return out
}

// closeWindow reduces the buffered samples to one row, hands it to
// the sink and the ring, and resets the buffer.
func (a *Aggregator) closeWindow() {
	row := Reduce(a.buf)
	a.buf = a.buf[:0]
	a.total++
	if a.sink != nil && a.err == nil {
		a.err = a.sink(row)
	}
	if len(a.rows) < windowRingCap {
		a.rows = append(a.rows, row)
		return
	}
	a.rows[a.ringStart] = row
	a.ringStart = (a.ringStart + 1) % windowRingCap
}

// Reduce computes the aggregate row of a non-empty sample window. It
// is the single reduction definition: the aggregator uses it window
// by window, and tests use it over full sample histories to prove the
// streamed aggregates match the materialized ones exactly.
func Reduce(samples []Sample) WindowRow {
	row := WindowRow{
		Start:   samples[0].Time,
		End:     samples[len(samples)-1].Time,
		Samples: len(samples),
	}
	var scratch []float64
	stat := func(get func(Sample) float64) WindowStat {
		scratch = scratch[:0]
		for _, s := range samples {
			scratch = append(scratch, get(s))
		}
		return reduceStat(scratch)
	}
	row.Utilization = stat(func(s Sample) float64 { return s.Utilization })
	row.Running = stat(func(s Sample) float64 { return float64(s.Running) })
	row.Suspended = stat(func(s Sample) float64 { return float64(s.Suspended) })
	row.WastedArea = stat(func(s Sample) float64 { return float64(s.WastedArea) })
	if classes := len(samples[0].ClassRunning); classes > 0 {
		row.ClassRunning = make([]WindowStat, classes)
		for c := 0; c < classes; c++ {
			row.ClassRunning[c] = stat(func(s Sample) float64 {
				if c < len(s.ClassRunning) {
					return float64(s.ClassRunning[c])
				}
				return 0
			})
		}
	}
	return row
}

// reduceStat computes min/max/mean/p99 of vs (len >= 1). vs is sorted
// in place.
func reduceStat(vs []float64) WindowStat {
	var sum float64
	for _, v := range vs {
		sum += v
	}
	sort.Float64s(vs)
	return WindowStat{
		Min:  vs[0],
		Max:  vs[len(vs)-1],
		Mean: sum / float64(len(vs)),
		P99:  vs[nearestRank(len(vs), 0.99)],
	}
}

// nearestRank returns the 0-based index of the nearest-rank q-th
// quantile in a sorted slice of length n: ceil(q*n) - 1.
func nearestRank(n int, q float64) int {
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// TimelineWriter streams WindowRows as CSV: a header line, then one
// row per closed window, appended as the run progresses — the
// incremental timeline output. It never holds more than one row.
type TimelineWriter struct {
	bw          *bufio.Writer
	wroteHeader bool
}

// NewTimelineWriter wraps w.
func NewTimelineWriter(w io.Writer) *TimelineWriter {
	return &TimelineWriter{bw: bufio.NewWriter(w)}
}

// timelineHeader names the CSV columns, in row order.
const timelineHeader = "start,end,samples," +
	"util_min,util_max,util_mean,util_p99," +
	"running_min,running_max,running_mean,running_p99," +
	"suspended_min,suspended_max,suspended_mean,suspended_p99," +
	"wasted_min,wasted_max,wasted_mean,wasted_p99"

// Write appends one window row (emitting the header first) and
// flushes, so a consumer tailing the file sees rows as they close.
// Rows carrying a per-class census get extra class<i>_* column groups
// after the fixed columns; class-free timelines are byte-identical to
// the pre-scenario format.
func (tw *TimelineWriter) Write(row WindowRow) error {
	if !tw.wroteHeader {
		tw.wroteHeader = true
		header := timelineHeader
		for i := range row.ClassRunning {
			header += fmt.Sprintf(",class%d_min,class%d_max,class%d_mean,class%d_p99", i, i, i, i)
		}
		if _, err := fmt.Fprintln(tw.bw, header); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(tw.bw, "%d,%d,%d,%s,%s,%s,%s",
		row.Start, row.End, row.Samples,
		csvStat(row.Utilization), csvStat(row.Running),
		csvStat(row.Suspended), csvStat(row.WastedArea)); err != nil {
		return err
	}
	for _, cs := range row.ClassRunning {
		if _, err := fmt.Fprintf(tw.bw, ",%s", csvStat(cs)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(tw.bw); err != nil {
		return err
	}
	return tw.bw.Flush()
}

// csvStat renders one metric's four columns.
func csvStat(s WindowStat) string {
	return fmt.Sprintf("%g,%g,%g,%g", s.Min, s.Max, s.Mean, s.P99)
}
