package monitor

import (
	"strings"
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
)

func recorderRig(t *testing.T) *resinfo.Manager {
	t.Helper()
	nodes := []*model.Node{
		model.NewNode(0, 2000, true),
		model.NewNode(1, 2000, true),
	}
	configs := []*model.Config{{No: 0, ReqArea: 1000, ConfigTime: 10}}
	m, err := resinfo.New(nodes, configs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecorderStride(t *testing.T) {
	m := recorderRig(t)
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Observe(m, int64(i), 0)
	}
	// Calls 1,4,7,10 (1-indexed) are sampled: 4 samples.
	if r.Len() != 4 {
		t.Fatalf("samples %d, want 4", r.Len())
	}
	if NewRecorder(0).Every != 1 {
		t.Fatal("stride floor broken")
	}
}

func TestRecorderSampleContents(t *testing.T) {
	m := recorderRig(t)
	r := NewRecorder(1)
	r.Observe(m, 5, 2) // blank system
	e, _ := m.Configure(m.Nodes()[0], m.Configs()[0])
	r.Observe(m, 10, 3) // one idle configured node
	_ = m.StartTask(e, model.NewTask(1, 1000, 0, 100, 0))
	r.Observe(m, 20, 4) // one busy node

	s := r.Samples()
	if len(s) != 3 {
		t.Fatalf("samples: %d", len(s))
	}
	if s[0].BlankNodes != 2 || s[0].Utilization != 0 || s[0].Suspended != 2 {
		t.Fatalf("blank sample: %+v", s[0])
	}
	if s[1].IdleNodes != 1 || s[1].WastedArea != 1000 {
		t.Fatalf("idle sample: %+v", s[1])
	}
	if s[2].BusyNodes != 1 || s[2].Running != 1 || s[2].WastedArea != 1000 {
		t.Fatalf("busy sample: %+v", s[2])
	}
	// Utilization: 1000 configured of 4000 total.
	if s[2].Utilization != 0.25 {
		t.Fatalf("utilization %v", s[2].Utilization)
	}
}

func TestRecorderSeries(t *testing.T) {
	m := recorderRig(t)
	r := NewRecorder(1)
	r.Observe(m, 1, 5)
	r.Observe(m, 2, 7)
	u := r.UtilizationSeries()
	q := r.QueueSeries()
	if len(u.Points) != 2 || len(q.Points) != 2 {
		t.Fatal("series lengths wrong")
	}
	if q.Points[1].Y != 7 {
		t.Fatalf("queue series: %+v", q.Points)
	}
}

func TestRecorderTimeline(t *testing.T) {
	m := recorderRig(t)
	r := NewRecorder(1)
	if !strings.Contains(r.Timeline(40), "no samples") {
		t.Fatal("empty timeline wrong")
	}
	for i := 0; i < 100; i++ {
		r.Observe(m, int64(i*10), i%17)
	}
	out := r.Timeline(40)
	if !strings.Contains(out, "fabric utilization") || !strings.Contains(out, "suspension queue") {
		t.Fatalf("timeline:\n%s", out)
	}
	if !strings.Contains(out, "peak 16") {
		t.Fatalf("peak missing:\n%s", out)
	}
	// Degenerate width clamps.
	if r.Timeline(0) == "" {
		t.Fatal("zero width broke")
	}
}

func TestGlyphBounds(t *testing.T) {
	if glyph(-1) != ' ' || glyph(0) != ' ' {
		t.Fatal("low glyph wrong")
	}
	if glyph(1) != '@' || glyph(2) != '@' {
		t.Fatal("high glyph wrong")
	}
}
