package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dreamsim/internal/rng"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary: %+v", s)
	}
	if math.Abs(s.Variance-32.0/7.0) > 1e-12 {
		t.Fatalf("variance: %v", s.Variance)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary: %+v", empty)
	}
	single := Summarize([]float64{3})
	if single.Variance != 0 || single.StdDev() != 0 {
		t.Fatalf("single summary: %+v", single)
	}
}

func TestPaired(t *testing.T) {
	a := []float64{10, 12, 9, 11, 13}
	b := []float64{7, 8, 6, 9, 8}
	r, err := Paired(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 5 || !r.AllPositive || r.AllNegative {
		t.Fatalf("paired: %+v", r)
	}
	// diffs: 3,4,3,2,5 -> mean 3.4
	if math.Abs(r.MeanDiff-3.4) > 1e-12 {
		t.Fatalf("mean diff: %v", r.MeanDiff)
	}
	if r.T <= 0 || r.CI95 <= 0 {
		t.Fatalf("t/CI: %+v", r)
	}
	// A strong effect: CI excludes zero.
	if r.MeanDiff-r.CI95 <= 0 {
		t.Fatalf("CI too wide for a clear effect: %+v", r)
	}

	// Reversed direction.
	r2, _ := Paired(b, a)
	if !r2.AllNegative || r2.MeanDiff >= 0 {
		t.Fatalf("reversed: %+v", r2)
	}

	// Errors.
	if _, err := Paired(a, b[:3]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Paired(a[:1], b[:1]); err == nil {
		t.Fatal("single pair accepted")
	}
}

func TestPairedMixedSigns(t *testing.T) {
	r, err := Paired([]float64{1, 5}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r.AllPositive || r.AllNegative {
		t.Fatalf("mixed signs misreported: %+v", r)
	}
}

func TestWelchDetectsSeparation(t *testing.T) {
	r := rng.New(1)
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = r.NormalMS(100, 5)
		b[i] = r.NormalMS(80, 8)
	}
	res, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant05 || res.T <= 0 {
		t.Fatalf("clear separation not detected: %+v", res)
	}
	// Same distribution: usually insignificant.
	insig := 0
	for trial := 0; trial < 20; trial++ {
		for i := range a {
			a[i] = r.NormalMS(50, 10)
			b[i] = r.NormalMS(50, 10)
		}
		res, _ = Welch(a, b)
		if !res.Significant05 {
			insig++
		}
	}
	if insig < 15 { // 5% false positive rate -> expect ~19
		t.Fatalf("null rejected too often: %d/20 insignificant", insig)
	}
}

func TestWelchDegenerate(t *testing.T) {
	res, err := Welch([]float64{5, 5, 5}, []float64{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant05 {
		t.Fatal("distinct constants not significant")
	}
	res, err = Welch([]float64{4, 4}, []float64{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant05 {
		t.Fatal("identical constants significant")
	}
	if _, err := Welch([]float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 25)
	b := make([]float64, 25)
	for i := range a {
		a[i] = r.Exponential() + 2 // shifted
		b[i] = r.Exponential()
	}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant05 || res.Z <= 0 {
		t.Fatalf("clear shift not detected: %+v", res)
	}
	if _, err := MannWhitney(a[:1], b); err == nil {
		t.Fatal("tiny sample accepted")
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavy ties must not blow up the variance computation.
	a := []float64{1, 1, 2, 2, 3}
	b := []float64{1, 2, 2, 3, 3}
	res, err := MannWhitney(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Z) {
		t.Fatalf("tie handling produced NaN: %+v", res)
	}
	if res.Significant05 {
		t.Fatalf("near-identical samples significant: %+v", res)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	prev := math.Inf(1)
	for df := 1; df <= 200; df++ {
		q := tQuantile975(df)
		if q > prev {
			t.Fatalf("t quantile not non-increasing at df=%d: %v > %v", df, q, prev)
		}
		prev = q
	}
	if tQuantile975(0) != math.Inf(1) {
		t.Fatal("df=0 not infinite")
	}
	if tQuantile975(1000) != 1.96 {
		t.Fatal("normal limit wrong")
	}
}

// Property: for any paired samples, MeanDiff(a,b) == -MeanDiff(b,a).
func TestQuickPairedAntisymmetry(t *testing.T) {
	f := func(seed uint16, n uint8) bool {
		r := rng.New(uint64(seed))
		size := int(n%20) + 2
		a := make([]float64, size)
		b := make([]float64, size)
		for i := range a {
			a[i] = r.Float64() * 100
			b[i] = r.Float64() * 100
		}
		ab, err1 := Paired(a, b)
		ba, err2 := Paired(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(ab.MeanDiff+ba.MeanDiff) < 1e-9 &&
			math.Abs(ab.CI95-ba.CI95) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
