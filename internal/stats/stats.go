// Package stats provides the small statistical toolkit the experiment
// harness uses to attach confidence to simulator comparisons: paired
// differences with t-based confidence intervals, Welch's two-sample
// t-test, and the Wilcoxon/Mann–Whitney rank-sum test for
// distribution-free comparisons. The paper reports single runs; this
// toolkit shows its orderings are not seed artifacts.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments of one sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64 // sample variance (n-1)
	Min, Max float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(s.N)
	for _, x := range xs {
		d := x - s.Mean
		s.Variance += d * d
	}
	if s.N > 1 {
		s.Variance /= float64(s.N - 1)
	}
	return s
}

// StdDev returns the sample standard deviation.
func (s Summary) StdDev() float64 { return math.Sqrt(s.Variance) }

// PairedResult describes a paired comparison of two matched samples
// (e.g. full vs partial reconfiguration over the same seeds).
type PairedResult struct {
	N        int
	MeanDiff float64 // mean of (a - b)
	CI95     float64 // half-width of the 95% CI of the mean difference
	T        float64 // t statistic of the mean difference
	// AllPositive / AllNegative report sign-consistency of the pairs:
	// the strongest possible ordering evidence at small n.
	AllPositive bool
	AllNegative bool
}

// Paired compares matched samples a and b (same length, same
// experimental units). The confidence interval uses Student's t
// quantile for n-1 degrees of freedom.
func Paired(a, b []float64) (PairedResult, error) {
	if len(a) != len(b) {
		return PairedResult{}, fmt.Errorf("stats: paired samples differ in length: %d vs %d", len(a), len(b))
	}
	if len(a) < 2 {
		return PairedResult{}, fmt.Errorf("stats: paired comparison needs at least 2 pairs")
	}
	diffs := make([]float64, len(a))
	allPos, allNeg := true, true
	for i := range a {
		diffs[i] = a[i] - b[i]
		if diffs[i] <= 0 {
			allPos = false
		}
		if diffs[i] >= 0 {
			allNeg = false
		}
	}
	s := Summarize(diffs)
	se := s.StdDev() / math.Sqrt(float64(s.N))
	r := PairedResult{
		N:           s.N,
		MeanDiff:    s.Mean,
		AllPositive: allPos,
		AllNegative: allNeg,
	}
	if se > 0 {
		r.T = s.Mean / se
	}
	r.CI95 = tQuantile975(s.N-1) * se
	return r, nil
}

// WelchResult is the outcome of Welch's unequal-variance t-test.
type WelchResult struct {
	T  float64 // t statistic for mean(a) - mean(b)
	DF float64 // Welch–Satterthwaite degrees of freedom
	// Significant05 reports |T| above the two-sided 5% critical value
	// for DF degrees of freedom.
	Significant05 bool
}

// Welch runs Welch's t-test on two independent samples.
func Welch(a, b []float64) (WelchResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return WelchResult{}, fmt.Errorf("stats: Welch needs at least 2 observations per sample")
	}
	sa, sb := Summarize(a), Summarize(b)
	va := sa.Variance / float64(sa.N)
	vb := sb.Variance / float64(sb.N)
	if va+vb == 0 {
		// Identical constants: significant iff means differ at all.
		diff := sa.Mean - sb.Mean
		return WelchResult{T: math.Inf(sign(diff)), DF: float64(sa.N + sb.N - 2),
			Significant05: diff != 0}, nil
	}
	t := (sa.Mean - sb.Mean) / math.Sqrt(va+vb)
	df := (va + vb) * (va + vb) /
		(va*va/float64(sa.N-1) + vb*vb/float64(sb.N-1))
	crit := tQuantile975(int(df))
	return WelchResult{T: t, DF: df, Significant05: math.Abs(t) > crit}, nil
}

// RankSumResult is the outcome of the Mann–Whitney U test.
type RankSumResult struct {
	U float64 // U statistic for sample a
	Z float64 // normal approximation z-score
	// Significant05 uses the two-sided 5% normal critical value 1.96;
	// the approximation is standard for n >= ~8 per group.
	Significant05 bool
}

// MannWhitney runs the rank-sum test on two independent samples
// (normal approximation with tie correction).
func MannWhitney(a, b []float64) (RankSumResult, error) {
	na, nb := len(a), len(b)
	if na < 2 || nb < 2 {
		return RankSumResult{}, fmt.Errorf("stats: MannWhitney needs at least 2 observations per sample")
	}
	type obs struct {
		v    float64
		isA  bool
		rank float64
	}
	all := make([]obs, 0, na+nb)
	for _, v := range a {
		all = append(all, obs{v: v, isA: true})
	}
	for _, v := range b {
		all = append(all, obs{v: v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// Assign mid-ranks to ties; accumulate tie correction.
	tieCorr := 0.0
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			all[k].rank = mid
		}
		t := float64(j - i)
		tieCorr += t*t*t - t
		i = j
	}
	var ra float64
	for _, o := range all {
		if o.isA {
			ra += o.rank
		}
	}
	u := ra - float64(na*(na+1))/2
	n := float64(na + nb)
	mu := float64(na) * float64(nb) / 2
	sigma2 := float64(na) * float64(nb) / 12 * ((n + 1) - tieCorr/(n*(n-1)))
	if sigma2 <= 0 {
		return RankSumResult{U: u}, nil
	}
	z := (u - mu) / math.Sqrt(sigma2)
	return RankSumResult{U: u, Z: z, Significant05: math.Abs(z) > 1.96}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// tQuantile975 returns the 97.5% quantile of Student's t distribution
// with df degrees of freedom (two-sided 5% critical value), from a
// table for small df and the normal limit beyond.
func tQuantile975(df int) float64 {
	table := []float64{ // df = 1..30
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	switch {
	case df < 1:
		return math.Inf(1)
	case df <= len(table):
		return table[df-1]
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	default:
		return 1.960
	}
}
