// Package lint is DReAMSim's static-analysis suite: a small,
// dependency-free mirror of the golang.org/x/tools/go/analysis
// framework plus the project-specific analyzers that encode the
// simulator's load-bearing invariants (bit-reproducibility and exact
// search metering, see DESIGN.md "Static analysis & invariants").
//
// The framework intentionally copies the x/tools shape — Analyzer,
// Pass, Diagnostic — so the analyzers can be ported to a real
// multichecker wholesale if the dependency ever becomes available;
// only the package loader (load.go) is home-grown: it drives
// `go list -export -deps -json` and type-checks the target packages
// from source, resolving imports from the build cache's export data.
//
// Findings are suppressed site-by-site with justification directives:
//
//	//lint:NAME why this site is exempt
//
// placed on the offending line, the line above it, or in the doc
// comment of the enclosing function (which exempts the whole
// function). A directive without a justification text is itself
// reported — exceptions must say why.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. The fields mirror
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and directives.
	Name string
	// Doc is the one-paragraph description shown by `dreamlint -list`.
	Doc string
	// Scope, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; nil means every package.
	Scope func(pkgPath string) bool
	// Run performs the check over one package. Exactly one of Run
	// and RunProgram is set.
	Run func(*Pass) error
	// RunProgram performs the check once over the whole loaded
	// program (every package merged over the shared FileSet) — for
	// the cross-function dataflow analyzers, whose findings may sit
	// in a different package than the root that reaches them.
	RunProgram func(*ProgramPass) error
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	pkg    *Package
	diags  *[]Diagnostic
	funcIx map[*ast.File][]*ast.FuncDecl
}

// A Diagnostic is one finding, addressed by source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// directive is one parsed //lint:NAME justification comment.
type directive struct {
	name   string
	reason string
	pos    token.Position
}

var directiveRe = regexp.MustCompile(`^//\s*lint:([a-z]+)\b[ \t]*(.*)$`)

// Reportf records a finding at pos unless a matching //lint:NAME
// directive covers the site.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(pos, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a directive for this analyzer covers the
// given position: same line, the line immediately above, or the doc
// comment of the enclosing function declaration.
func (p *Pass) suppressed(pos token.Pos, position token.Position) bool {
	for _, d := range p.pkg.directives[position.Filename] {
		if d.name != p.Analyzer.Name {
			continue
		}
		if d.pos.Line == position.Line || d.pos.Line == position.Line-1 {
			return true
		}
	}
	if fd := p.enclosingFunc(pos); fd != nil && fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == p.Analyzer.Name {
				return true
			}
		}
	}
	return false
}

// enclosingFunc returns the function declaration containing pos, if
// any.
func (p *Pass) enclosingFunc(pos token.Pos) *ast.FuncDecl {
	if p.funcIx == nil {
		p.funcIx = make(map[*ast.File][]*ast.FuncDecl)
		for _, f := range p.Files {
			var fds []*ast.FuncDecl
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					fds = append(fds, fd)
				}
			}
			p.funcIx[f] = fds
		}
	}
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			for _, fd := range p.funcIx[f] {
				if fd.Pos() <= pos && pos < fd.End() {
					return fd
				}
			}
		}
	}
	return nil
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ObjectOf returns the object denoted by ident, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Info.ObjectOf(id)
}

// Run applies each analyzer to each in-scope package and returns the
// findings sorted by position. Directives with an empty justification
// are reported under the pseudo-analyzer "directive" so that every
// exception in the tree carries its why.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	knownNames := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		knownNames[a.Name] = true
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (a.Scope != nil && !a.Scope(pkg.Path)) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				pkg:      pkg,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Pos:      token.Position{Filename: pkg.Path},
					Analyzer: a.Name,
					Message:  fmt.Sprintf("internal error: %v", err),
				})
			}
		}
		for _, file := range pkg.directives {
			for _, d := range file {
				switch {
				case !knownNames[d.name]:
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "directive",
						Message: fmt.Sprintf("unknown analyzer %q in //lint: directive", d.name)})
				case strings.TrimSpace(d.reason) == "":
					diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: "directive",
						Message: fmt.Sprintf("//lint:%s directive needs a justification", d.name)})
				}
			}
		}
	}
	var prog *Program
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		if prog == nil {
			prog = NewProgram(pkgs)
		}
		pp := &ProgramPass{Analyzer: a, Program: prog, diags: &diags}
		if err := a.RunProgram(pp); err != nil {
			diags = append(diags, Diagnostic{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("internal error: %v", err),
			})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Analyzers returns the full DReAMSim suite in stable order: the
// single-package AST analyzers first, then the whole-program
// dataflow analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, MapOrder, Metering, SeedFlow, AllocFree, SharedState, RNGFlow}
}

// An Exception is one //lint:NAME justification directive — the
// reviewable inventory of everything the suite is told to accept.
type Exception struct {
	Pos    token.Position
	Name   string
	Reason string
}

// Exceptions returns every //lint: directive in the loaded packages,
// sorted by position.
func Exceptions(pkgs []*Package) []Exception {
	var out []Exception
	for _, pkg := range pkgs {
		for _, file := range pkg.directives {
			for _, d := range file {
				out = append(out, Exception{Pos: d.pos, Name: d.name, Reason: d.reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}

// pathHasSuffix reports whether pkgPath ends with the given
// slash-separated suffix on an element boundary ("internal/resinfo"
// matches "dreamsim/internal/resinfo" but not "x/myinternal/resinfo").
func pathHasSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
