// The rngflow analyzer: RNG substream confinement. The simulator's
// byte-identical parallel runs rest on every *rng.RNG substream
// having exactly one owner: a per-class, per-worker, or per-subsystem
// stream is derived (rng.New, Split) by the scope that will consume
// it, and once a stream is donated — stored into longer-lived memory
// or passed to a callee that retains it (per the dataflow retention
// summaries) — the donating scope must not touch it again. Two
// owners drawing from one xorshift state consume each other's
// variates in scheduling-dependent order, which breaks determinism
// silently.
//
// Rules, in the order they are checked at each site:
//
//  1. use-after-donation — a substream variable used (drawn from,
//     re-donated, stored) after the scope gave it away;
//  2. donating a stream the scope does not own — one read out of a
//     field, slice element, or captured variable (another scope's
//     stream) and handed to a retainer. Deriving an independent
//     substream with Split is the fix in both cases.
//
// Ownership origins: rng.New and (*RNG).Split results and free
// (constructor) functions returning a *rng.RNG are fresh; a *rng.RNG
// parameter is owned (the caller donated it); a field, element,
// captured read, or accessor-method result is another scope's
// stream.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// RNGFlow confines RNG substreams to the scope that derived them.
var RNGFlow = &Analyzer{
	Name: "rngflow",
	Doc: "an *rng.RNG substream must stay confined to the scope that " +
		"derived it: no use after donation, no donation of a stream " +
		"owned elsewhere — derive substreams with Split instead",
	RunProgram: runRNGFlow,
}

type rngOrigin int

const (
	rngFresh rngOrigin = iota // rng.New / Split / constructor result
	rngParam                  // received from the caller, owned here
	rngAlias                  // read out of another scope's memory
)

type rngState struct {
	origin     rngOrigin
	originDesc string
	donatedPos token.Pos
	donatedTo  string
}

func runRNGFlow(pp *ProgramPass) error {
	for _, fi := range pp.Program.Ordered {
		w := &rngWalker{prog: pp.Program, pp: pp, fi: fi, state: map[*types.Var]*rngState{}}
		w.block(fi.Decl.Body)
	}
	return nil
}

type rngWalker struct {
	prog  *Program
	pp    *ProgramPass
	fi    *FuncInfo
	state map[*types.Var]*rngState
}

func (w *rngWalker) info() *types.Info { return w.fi.Pkg.Info }

// isRNGPtr reports whether t is *rng.RNG (by name, so fixtures with
// their own internal/rng mirror work too).
func isRNGPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "RNG" && obj.Pkg() != nil && pathHasSuffix(obj.Pkg().Path(), "internal/rng")
}

// rngVar resolves e to a tracked RNG variable, registering it lazily
// (a parameter is owned; anything else first seen as a bare variable
// is treated as owned too — its own definition sites set the origin).
func (w *rngWalker) rngVar(e ast.Expr) *rngState {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := w.info().ObjectOf(id).(*types.Var)
	if !ok || !isRNGPtr(v.Type()) {
		return nil
	}
	st, ok := w.state[v]
	if !ok {
		st = &rngState{origin: rngParam, originDesc: v.Name()}
		if w.fi.paramIndex(v) < 0 {
			st.origin = rngFresh
		}
		w.state[v] = st
	}
	return st
}

// classifyRHS determines the ownership of an RNG-typed expression
// being bound to a variable.
func (w *rngWalker) classifyRHS(e ast.Expr) *rngState {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if st := w.rngVar(x); st != nil {
			return st // share state: two names, one stream
		}
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return &rngState{origin: rngAlias, originDesc: exprText(e)}
	case *ast.CallExpr:
		callee := StaticCallee(w.info(), x)
		if callee == nil {
			return &rngState{origin: rngFresh}
		}
		sig := callee.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			if callee.Name() == "Split" && isRNGPtr(behindPointer(recv.Type())) {
				return &rngState{origin: rngFresh}
			}
			// An accessor method returning a stream exposes another
			// scope's RNG.
			return &rngState{origin: rngAlias, originDesc: exprText(x)}
		}
		return &rngState{origin: rngFresh} // free function: constructor
	}
	return &rngState{origin: rngFresh}
}

func behindPointer(t types.Type) types.Type {
	if _, ok := t.(*types.Pointer); ok {
		return t
	}
	return types.NewPointer(t)
}

// use flags a draw/read of a donated stream.
func (w *rngWalker) use(e ast.Expr, pos token.Pos) {
	st := w.rngVar(e)
	if st == nil || !st.donatedPos.IsValid() {
		return
	}
	w.pp.Reportf(pos,
		"RNG substream %s is used after being donated to %s; two owners of one stream break substream independence — derive a new substream with Split",
		exprText(e), st.donatedTo)
}

// donate flags donation of a non-owned stream, then records the
// transfer.
func (w *rngWalker) donate(e ast.Expr, to string, pos token.Pos) {
	if st := w.rngVar(e); st != nil {
		w.use(e, pos) // a second donation is a use of the first
		if st.origin == rngAlias {
			w.pp.Reportf(pos,
				"RNG owned by %s is donated to %s; derive an independent substream with Split instead of sharing the stream",
				st.originDesc, to)
			return
		}
		if !st.donatedPos.IsValid() {
			st.donatedPos = pos
			st.donatedTo = to
		}
		return
	}
	// Donating an aliasing expression directly (s.r, arr[i]).
	switch ast.Unparen(e).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		w.pp.Reportf(pos,
			"RNG owned by %s is donated to %s; derive an independent substream with Split instead of sharing the stream",
			exprText(e), to)
	}
}

func (w *rngWalker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *rngWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.expr(rhs)
		}
		for i, lhs := range st.Lhs {
			if i >= len(st.Rhs) {
				break
			}
			rhs := st.Rhs[i]
			if t := w.info().TypeOf(rhs); t == nil || !isRNGPtr(t) {
				continue
			}
			if st.Tok == token.DEFINE {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := w.info().Defs[id].(*types.Var); ok {
						w.use(rhs, rhs.Pos())
						w.state[v] = w.classifyRHS(rhs)
					}
				}
				continue
			}
			switch target := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				// Rebinding a variable: it now names the RHS stream.
				w.use(rhs, rhs.Pos())
				if v, ok := w.info().ObjectOf(target).(*types.Var); ok {
					w.state[v] = w.classifyRHS(rhs)
				}
			default:
				// Storing into a field, element, or pointee donates
				// the stream to that memory's owner.
				w.donate(rhs, exprText(lhs), rhs.Pos())
			}
		}
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
			if t := w.info().TypeOf(r); t != nil && isRNGPtr(t) {
				// Returning transfers ownership to the caller; a
				// field read returned by an accessor is legitimate
				// exposure, so only variables are tracked.
				if s := w.rngVar(r); s != nil {
					w.use(r, r.Pos())
					if !s.donatedPos.IsValid() {
						s.donatedPos = r.Pos()
						s.donatedTo = "the caller"
					}
				}
			}
		}
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
		if t := w.info().TypeOf(st.Value); t != nil && isRNGPtr(t) {
			w.donate(st.Value, "a channel", st.Value.Pos())
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.IfStmt:
		// The two branches are mutually exclusive: a donation in one
		// must not count as prior donation in the other, and a branch
		// that terminates (returns/panics) never rejoins the fall-
		// through path at all.
		w.stmtOpt(st.Init)
		w.expr(st.Cond)
		snap := w.snapshot()
		w.block(st.Body)
		var thenOut donationSnap
		if !blockTerminates(st.Body) {
			thenOut = w.snapshot()
		}
		w.restore(snap)
		if st.Else != nil {
			w.stmt(st.Else)
			if stmtTerminates(st.Else) {
				w.restore(snap)
			}
		}
		w.applyDonations(thenOut)
	case *ast.ForStmt:
		w.stmtOpt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.stmtOpt(st.Post)
		w.block(st.Body)
	case *ast.RangeStmt:
		w.expr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		w.stmtOpt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		snap := w.snapshot()
		var outs []donationSnap
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, s := range cc.Body {
				w.stmt(s)
			}
			if n := len(cc.Body); n == 0 || !stmtTerminates(cc.Body[n-1]) {
				outs = append(outs, w.snapshot())
			}
			w.restore(snap)
		}
		for _, out := range outs {
			w.applyDonations(out)
		}
	case *ast.TypeSwitchStmt:
		w.stmtOpt(st.Init)
		w.stmtOpt(st.Assign)
		for _, cl := range st.Body.List {
			for _, s := range cl.(*ast.CaseClause).Body {
				w.stmt(s)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			cc := cl.(*ast.CommClause)
			w.stmtOpt(cc.Comm)
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.BlockStmt:
		w.block(st)
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.GoStmt:
		w.expr(st.Call)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if i >= len(vs.Values) {
							break
						}
						w.expr(vs.Values[i])
						if v, ok := w.info().Defs[name].(*types.Var); ok && isRNGPtr(v.Type()) {
							w.state[v] = w.classifyRHS(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

func (w *rngWalker) stmtOpt(st ast.Stmt) {
	if st != nil {
		w.stmt(st)
	}
}

// rngDonation is one stream's donation state, for branch snapshots.
type rngDonation struct {
	pos token.Pos
	to  string
}

type donationSnap map[*rngState]rngDonation

// snapshot captures every tracked stream's donation state.
func (w *rngWalker) snapshot() donationSnap {
	s := donationSnap{}
	for _, st := range w.state {
		s[st] = rngDonation{st.donatedPos, st.donatedTo}
	}
	return s
}

// restore rewinds donation state to a snapshot; streams first tracked
// after the snapshot are reset to undonated.
func (w *rngWalker) restore(s donationSnap) {
	for _, st := range w.state {
		if d, ok := s[st]; ok {
			st.donatedPos, st.donatedTo = d.pos, d.to
		} else {
			st.donatedPos, st.donatedTo = token.NoPos, ""
		}
	}
}

// applyDonations merges a branch's exit state back in: a stream
// donated on any non-terminating branch is donated afterwards.
func (w *rngWalker) applyDonations(s donationSnap) {
	for st, d := range s {
		if d.pos.IsValid() && !st.donatedPos.IsValid() {
			st.donatedPos, st.donatedTo = d.pos, d.to
		}
	}
}

// blockTerminates reports whether the block always transfers control
// away (return, panic, break/continue/goto).
func blockTerminates(b *ast.BlockStmt) bool {
	return b != nil && len(b.List) > 0 && stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return blockTerminates(s)
	case *ast.IfStmt:
		return blockTerminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}

func (w *rngWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		w.block(e.Body)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			w.expr(v)
			if t := w.info().TypeOf(v); t != nil && isRNGPtr(t) {
				w.donate(v, fmt.Sprintf("a %s literal", typeName(w.info().TypeOf(e))), v.Pos())
			}
		}
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

// call checks RNG-typed receiver and arguments: a receiver is a use;
// an argument at a retained position is a donation, otherwise a use.
func (w *rngWalker) call(call *ast.CallExpr) {
	if tv, ok := w.info().Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}
	callee := StaticCallee(w.info(), call)

	// Method receiver: drawing from the stream is a use.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := w.info().TypeOf(sel.X); t != nil && isRNGPtr(t) {
			w.use(sel.X, sel.X.Pos())
		} else {
			w.expr(sel.X)
		}
	}

	cfi := w.prog.FuncOf(callee)
	var argBase int
	if callee != nil && callee.Type().(*types.Signature).Recv() != nil {
		argBase = 1
	}
	for i, a := range call.Args {
		w.expr(a)
		t := w.info().TypeOf(a)
		if t == nil || !isRNGPtr(t) {
			continue
		}
		retained := true // unknown callee: assume it keeps the stream
		if cfi != nil {
			retained = cfi.Summary.RetainsParam[argBase+i]
		}
		to := "a callee"
		if callee != nil {
			to = shortFuncName(callee)
		}
		if retained {
			w.donate(a, to, a.Pos())
		} else {
			w.use(a, a.Pos())
		}
	}
}
