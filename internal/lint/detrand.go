package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// DetRand forbids nondeterministic value sources inside simulation
// code. The simulator's headline guarantee — byte-identical results
// for identical (Spec, Seed) inputs, across goroutine counts and
// across processes — dies the moment a simulation path consults the
// wall clock or an ambiently-seeded generator, so those sources are
// banned by machine rather than by review:
//
//   - time.Now / time.Since / time.Until and the timer constructors
//     (After, Tick, NewTimer, NewTicker, AfterFunc): simulated time is
//     sim.Clock timeticks, never the host clock;
//   - math/rand and math/rand/v2: all randomness must flow through
//     internal/rng, which is explicitly seeded (see the seedflow
//     analyzer);
//   - crypto/rand: cryptographic entropy is nondeterministic by
//     definition.
//
// Wall-clock-legitimate packages (the dreambench harness, which
// measures host performance, not simulated behaviour) are allowlisted
// by import path; individual sites elsewhere can carry a
// //lint:detrand justification.
var DetRand = &Analyzer{
	Name:  "detrand",
	Doc:   "forbid wall-clock and ambient randomness in simulation code",
	Scope: notWallClockAllowlisted,
	Run:   runDetRand,
}

// detrandAllowedPkgs are package-path suffixes where wall-clock time
// is the point (host benchmarking), not a reproducibility leak.
var detrandAllowedPkgs = []string{
	"cmd/dreambench",
}

func notWallClockAllowlisted(pkgPath string) bool {
	for _, suffix := range detrandAllowedPkgs {
		if pathHasSuffix(pkgPath, suffix) {
			return false
		}
	}
	return true
}

// forbiddenTimeFuncs are the "time" package members that read or
// react to the host clock. Pure conversions (time.Duration,
// time.Unix) and constants stay legal.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Sleep": true,
}

// forbiddenRandPkgs are import paths banned outright in simulation
// code.
var forbiddenRandPkgs = map[string]string{
	"math/rand":    "ambiently-seeded randomness; use internal/rng with an explicit seed",
	"math/rand/v2": "ambiently-seeded randomness; use internal/rng with an explicit seed",
	"crypto/rand":  "nondeterministic entropy; use internal/rng with an explicit seed",
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, bad := forbiddenRandPkgs[path]; bad {
				pass.Reportf(imp.Pos(), "import of %s in simulation code: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if obj.Pkg().Path() == "time" && forbiddenTimeFuncs[sel.Sel.Name] {
				if _, isFunc := obj.(*types.Func); isFunc {
					pass.Reportf(sel.Pos(),
						"time.%s in simulation code: simulated time is sim.Clock timeticks, not the host clock",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
	return nil
}
