package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// The fixture harness mirrors x/tools' analysistest: fixture packages
// under testdata/src/<case> carry `// want` comments holding a regex
// (backtick- or double-quote-delimited) that must match a diagnostic
// reported on that line. `// want+N` shifts the expected line by N,
// which lets a comment-only line (e.g. a //lint: directive, which
// cannot share its line with another comment) carry an expectation.
var wantRe = regexp.MustCompile("//\\s*want([+-][0-9]+)?\\s+(`[^`]*`|\"[^\"]*\")")

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func TestAnalyzers(t *testing.T) {
	cases := []struct {
		fixture   string
		analyzers []*Analyzer
	}{
		{"detrand", []*Analyzer{DetRand}},
		{"maporder", []*Analyzer{MapOrder}},
		{"metering", []*Analyzer{Metering}},
		{"seedflow", []*Analyzer{SeedFlow}},
		{"allocfree", []*Analyzer{AllocFree}},
		{"sharedstate", []*Analyzer{SharedState}},
		{"rngflow", []*Analyzer{RNGFlow}},
		{"directive", Analyzers()},
	}
	for _, tc := range cases {
		t.Run(tc.fixture, func(t *testing.T) {
			root := filepath.Join("testdata", "src", tc.fixture)
			patterns, files := fixtureLayout(t, root)
			pkgs, err := Load(".", patterns)
			if err != nil {
				t.Fatalf("Load(%v): %v", patterns, err)
			}
			if len(pkgs) == 0 {
				t.Fatalf("Load(%v) matched no packages", patterns)
			}
			wants := parseWants(t, files)
			for _, d := range Run(pkgs, tc.analyzers) {
				if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %s",
						w.file, w.line, w.raw)
				}
			}
		})
	}
}

// fixtureLayout walks one fixture root and returns go list patterns
// (one per package directory) and every fixture .go file.
func fixtureLayout(t *testing.T, root string) (patterns, files []string) {
	t.Helper()
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		files = append(files, abs)
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			patterns = append(patterns, "./"+filepath.ToSlash(dir))
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	if len(patterns) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	return patterns, files
}

// parseWants extracts the expectations from the fixture sources.
func parseWants(t *testing.T, files []string) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				target := i + 1
				if m[1] != "" {
					delta, err := strconv.Atoi(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want offset %q", file, i+1, m[1])
					}
					target += delta
				}
				pattern := m[2][1 : len(m[2])-1] // strip delimiters
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pattern, err)
				}
				wants = append(wants, &expectation{
					file: file,
					line: target,
					re:   re,
					raw:  m[2],
				})
			}
		}
	}
	return wants
}

// claim marks the first unmatched expectation covering (file, line)
// whose regexp matches message; it reports whether one was found.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}
