package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[string][]directive // filename -> //lint: directives
}

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
}

// Load resolves patterns (as the go tool would, from dir) and returns
// the matched packages parsed and type-checked. Imports — including
// module-internal ones — are satisfied from the build cache's export
// data, which `go list -export` produces as a side effect, so only
// the target packages themselves are parsed from source.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for import %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// check parses and type-checks one target package.
func check(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	pkg := &Package{
		Path:       t.ImportPath,
		Fset:       fset,
		directives: map[string][]directive{},
	}
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		collectDirectives(fset, f, pkg.directives)
	}
	conf := types.Config{Importer: imp}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	tpkg, err := conf.Check(t.ImportPath, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

// collectDirectives records every //lint:NAME comment of the file by
// filename so suppression checks are a line lookup.
func collectDirectives(fset *token.FileSet, f *ast.File, out map[string][]directive) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := directiveRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			out[pos.Filename] = append(out[pos.Filename], directive{
				name:   m[1],
				reason: strings.TrimSpace(m[2]),
				pos:    pos,
			})
		}
	}
}
