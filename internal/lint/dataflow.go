// Cross-function dataflow for the whole-program analyzers
// (allocfree, sharedstate, rngflow). A Program merges every loaded
// package over the shared token.FileSet into one function index plus
// a package-level call graph, and computes a conservative
// escape/effect Summary per declared function: does it allocate,
// which package-level variables does it (transitively) write, which
// of its parameters does it call, retain, or write through — and
// with what index discipline. The single-function analyzers keep
// their per-package Pass; the dataflow analyzers run once over the
// Program so a finding two calls deep, or in another package, is
// still attributed to the annotated root that reaches it.
//
// The summaries are deliberately conservative in the "miss nothing
// we claim to check" direction for the facts the analyzers gate on,
// with documented soundness gaps where full precision would need a
// points-to analysis: effects through interface dispatch and through
// function values are not propagated (the allocfree analyzer instead
// reports dynamic call sites themselves), and a pointer returned by
// an arbitrary function is not assumed to alias its arguments unless
// the callee matches the recognised donation shape (`return s[w]`).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Program is every loaded package merged into one analysis unit.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	// Funcs indexes every function and method declared with a body
	// in any loaded package.
	Funcs map[*types.Func]*FuncInfo

	// byKey bridges object identity across packages: a caller
	// type-checked against export data holds a different *types.Func
	// for the same declaration than the callee package checked from
	// source, so cross-package edges resolve by (path, receiver,
	// name) instead.
	byKey map[string]*FuncInfo

	// Ordered lists the same functions in (filename, position) order
	// so program analyzers iterate deterministically.
	Ordered []*FuncInfo

	fileOf map[string]*filePkg // filename -> owning package + AST
}

type filePkg struct {
	pkg  *Package
	file *ast.File
}

// FuncInfo is one declared function with its effect summary.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	// Noalloc records a //dreamsim:noalloc annotation in the doc
	// comment: the allocfree analyzer proves the function's whole
	// call closure allocation-free.
	Noalloc bool

	// Params is the receiver (if any) followed by the declared
	// parameters — the index space used by the per-parameter facts.
	Params []*types.Var

	Summary *Summary
}

// Name returns the diagnostic-friendly name, e.g. (*Queue).Push.
func (fi *FuncInfo) Name() string {
	if r := fi.Decl.Recv; r != nil && len(r.List) > 0 {
		return fmt.Sprintf("(%s).%s", types.TypeString(fi.Params[0].Type(), relativeTo(fi.Obj.Pkg())), fi.Obj.Name())
	}
	return fi.Obj.Name()
}

func relativeTo(pkg *types.Package) types.Qualifier {
	return func(other *types.Package) string {
		if other == pkg {
			return ""
		}
		return other.Name()
	}
}

// Effect is one position-addressed fact (an allocation site, a
// dynamic call, a package-level write, ...).
type Effect struct {
	Pos  token.Pos
	Desc string
}

// CallEdge is one static call to another declared function.
type CallEdge struct {
	Pos    token.Pos
	Callee *types.Func
	// ArgParam maps a callee parameter index (receiver = 0 when the
	// callee is a method) to the caller parameter index passed there,
	// for arguments that are plain parameter identifiers. It is how
	// retention, call-through and write effects compose across calls.
	ArgParam map[int]int
}

// ParamWrite describes writes reachable from one parameter's pointee.
type ParamWrite struct {
	// Plain is set when at least one write has no recognised index
	// discipline.
	Plain bool
	// IndexedBy holds the caller-parameter indices i such that some
	// write goes through exactly one index expression equal to
	// parameter i (the per-worker donation shape s[w] = ...).
	IndexedBy map[int]bool
}

// ResultAlias records the donation shape `return s[w]`: the result
// aliases parameter Param's pointee at the index held in parameter
// IndexedBy.
type ResultAlias struct {
	Param     int
	IndexedBy int
}

// Summary is the conservative escape/effect summary of one function.
type Summary struct {
	// Calls lists the static in-program call edges in body order.
	Calls []CallEdge

	// CallsParam marks parameters (or values forwarded to them) that
	// may be called as functions.
	CallsParam map[int]bool

	// RetainsParam marks parameters stored into memory that outlives
	// the call: a field, a slice/map element, a package-level
	// variable, a channel, a composite literal, or the return value.
	RetainsParam map[int]bool

	// GlobalWrites lists direct writes to package-level variables.
	GlobalWrites []Effect

	// WritesGlobal is the transitive closure of GlobalWrites over
	// static calls; GlobalEvidence locates one witness (a direct
	// write or the call that reaches one).
	WritesGlobal   bool
	GlobalEvidence Effect

	// ParamWrites maps a parameter index to the writes reachable
	// from its pointee, composed transitively across static calls.
	ParamWrites map[int]*ParamWrite

	// Result records the recognised result-aliasing shape, if any.
	Result *ResultAlias
}

// noallocDirective matches the annotation in a function doc comment.
const noallocDirective = "//dreamsim:noalloc"

// NewProgram builds the merged function index and computes every
// summary (local pass + fixpoints).
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:   pkgs,
		Funcs:  map[*types.Func]*FuncInfo{},
		byKey:  map[string]*FuncInfo{},
		fileOf: map[string]*filePkg{},
	}
	for _, pkg := range pkgs {
		if prog.Fset == nil {
			prog.Fset = pkg.Fset
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.FileStart).Filename
			prog.fileOf[name] = &filePkg{pkg: pkg, file: f}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &FuncInfo{Obj: obj, Decl: fd, Pkg: pkg}
				sig := obj.Type().(*types.Signature)
				if recv := sig.Recv(); recv != nil {
					fi.Params = append(fi.Params, recv)
				}
				for i := 0; i < sig.Params().Len(); i++ {
					fi.Params = append(fi.Params, sig.Params().At(i))
				}
				if fd.Doc != nil {
					for _, c := range fd.Doc.List {
						if c.Text == noallocDirective || strings.HasPrefix(c.Text, noallocDirective+" ") {
							fi.Noalloc = true
						}
					}
				}
				prog.Funcs[obj] = fi
				prog.byKey[funcKey(obj)] = fi
				prog.Ordered = append(prog.Ordered, fi)
			}
		}
	}
	sort.Slice(prog.Ordered, func(i, j int) bool {
		a := prog.Fset.Position(prog.Ordered[i].Decl.Pos())
		b := prog.Fset.Position(prog.Ordered[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	for _, fi := range prog.Ordered {
		prog.summarize(fi)
	}
	prog.fixpoint()
	return prog
}

// FuncOf returns the FuncInfo for a declared function object, or nil.
func (prog *Program) FuncOf(obj *types.Func) *FuncInfo {
	if obj == nil {
		return nil
	}
	obj = obj.Origin() // generic instantiations resolve to the declaration
	if fi, ok := prog.Funcs[obj]; ok {
		return fi
	}
	// Cross-package reference: the caller's view of this function is
	// an export-data object, not the source-checked one we indexed.
	return prog.byKey[funcKey(obj)]
}

// funcKey identifies a function declaration across type-checker
// instances: package path, receiver type name, function name.
func funcKey(f *types.Func) string {
	pkg := f.Pkg()
	if pkg == nil {
		return f.Name()
	}
	recv := ""
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		}
	}
	return pkg.Path() + "." + recv + "." + f.Name()
}

// StaticCallee resolves a call expression to the declared function it
// invokes, or nil when the call is dynamic (interface dispatch, a
// func value) or targets a function outside the program.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if sel.Kind() == types.MethodVal {
				if f, ok := sel.Obj().(*types.Func); ok {
					// A method on an interface value is dynamic
					// dispatch, not a static callee.
					if recv := f.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
						return nil
					}
					return f
				}
			}
			return nil // field of func type, or a method expression: dynamic
		}
		// Qualified identifier pkg.Func.
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// paramIndex returns the index of obj in fi.Params, or -1.
func (fi *FuncInfo) paramIndex(obj types.Object) int {
	v, ok := obj.(*types.Var)
	if !ok {
		return -1
	}
	for i, p := range fi.Params {
		if p == v {
			return i
		}
	}
	return -1
}

// calleeParamCount returns the callee's parameter-space size
// (receiver included) and whether the last slot is variadic.
func calleeParams(obj *types.Func) (n int, variadic bool) {
	sig := obj.Type().(*types.Signature)
	n = sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n, sig.Variadic()
}

// summarize runs the local (single-function) effect pass.
func (prog *Program) summarize(fi *FuncInfo) {
	s := &Summary{
		CallsParam:   map[int]bool{},
		RetainsParam: map[int]bool{},
		ParamWrites:  map[int]*ParamWrite{},
	}
	fi.Summary = s
	w := &effectWalker{prog: prog, fi: fi, sum: s}
	w.block(fi.Decl.Body)
}

// effectWalker performs the local effect pass: writes, retention,
// parameter calls, call edges, and the result-alias shape. FuncLit
// bodies are walked inline — their effects (through captures) belong
// to the declaring function.
type effectWalker struct {
	prog *Program
	fi   *FuncInfo
	sum  *Summary
}

func (w *effectWalker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *effectWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			if st.Tok != token.DEFINE {
				w.write(lhs)
			}
			w.expr(lhs)
		}
		for _, rhs := range st.Rhs {
			w.expr(rhs)
		}
		// Retention: a parameter assigned to anything that is not a
		// plain local escapes this frame.
		for i, lhs := range st.Lhs {
			if i < len(st.Rhs) {
				w.retainIfParam(st.Rhs[i], lhs)
			}
		}
	case *ast.IncDecStmt:
		w.write(st.X)
		w.expr(st.X)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
		if p := w.fi.paramIndex(w.identObj(st.Value)); p >= 0 {
			w.sum.RetainsParam[p] = true
		}
	case *ast.ReturnStmt:
		w.returnStmt(st)
	case *ast.IfStmt:
		w.stmtOpt(st.Init)
		w.expr(st.Cond)
		w.block(st.Body)
		w.stmtOpt(st.Else)
	case *ast.ForStmt:
		w.stmtOpt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.stmtOpt(st.Post)
		w.block(st.Body)
	case *ast.RangeStmt:
		if st.Key != nil && st.Tok != token.DEFINE {
			w.write(st.Key)
		}
		if st.Value != nil && st.Tok != token.DEFINE {
			w.write(st.Value)
		}
		w.expr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		w.stmtOpt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmtOpt(st.Init)
		w.stmtOpt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			w.stmtOpt(cc.Comm)
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.BlockStmt:
		w.block(st)
	case *ast.DeferStmt:
		w.expr(st.Call)
	case *ast.GoStmt:
		w.expr(st.Call)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

func (w *effectWalker) stmtOpt(st ast.Stmt) {
	if st != nil {
		w.stmt(st)
	}
}

// returnStmt records retention of returned parameters and the
// `return s[w]` result-alias shape.
func (w *effectWalker) returnStmt(st *ast.ReturnStmt) {
	for _, r := range st.Results {
		w.expr(r)
		if p := w.fi.paramIndex(w.identObj(r)); p >= 0 {
			w.sum.RetainsParam[p] = true
		}
	}
	if len(st.Results) == 1 {
		if ix, ok := ast.Unparen(st.Results[0]).(*ast.IndexExpr); ok {
			base := w.fi.paramIndex(w.identObj(ix.X))
			idx := w.fi.paramIndex(w.identObj(ix.Index))
			if base >= 0 && idx >= 0 {
				if w.sum.Result == nil {
					w.sum.Result = &ResultAlias{Param: base, IndexedBy: idx}
				} else if w.sum.Result.Param != base || w.sum.Result.IndexedBy != idx {
					w.sum.Result = &ResultAlias{Param: -1} // inconsistent
				}
				return
			}
		}
		// Any other single-result return invalidates an alias claim.
		if w.sum.Result != nil {
			w.sum.Result = &ResultAlias{Param: -1}
		}
	}
}

// identObj resolves a (parenthesised) identifier to its object.
func (w *effectWalker) identObj(e ast.Expr) types.Object {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return w.fi.Pkg.Info.ObjectOf(id)
	}
	return nil
}

// write classifies one lvalue: package-level variable, parameter
// pointee (with its index discipline), or local (ignored).
func (w *effectWalker) write(lhs ast.Expr) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		// Rebinding a variable: a package-level effect only when the
		// variable itself is package-level.
		if v, ok := w.fi.Pkg.Info.ObjectOf(id).(*types.Var); ok && v.Parent() == w.fi.Pkg.Types.Scope() {
			w.sum.GlobalWrites = append(w.sum.GlobalWrites, Effect{
				Pos: lhs.Pos(), Desc: fmt.Sprintf("package-level variable %q", v.Name()),
			})
		}
		return
	}
	base, indexParams, indexCount := w.lvalueBase(lhs)
	if base == nil {
		return
	}
	obj := w.fi.Pkg.Info.ObjectOf(base)
	if obj == nil {
		return
	}
	if v, ok := obj.(*types.Var); ok && v.Parent() == w.fi.Pkg.Types.Scope() {
		// A write through a package-level variable still mutates
		// package-reachable state.
		w.sum.GlobalWrites = append(w.sum.GlobalWrites, Effect{
			Pos: lhs.Pos(), Desc: fmt.Sprintf("package-level variable %q", v.Name()),
		})
		return
	}
	p := w.fi.paramIndex(obj)
	if p < 0 {
		return
	}
	pw := w.sum.ParamWrites[p]
	if pw == nil {
		pw = &ParamWrite{IndexedBy: map[int]bool{}}
		w.sum.ParamWrites[p] = pw
	}
	if indexCount == 1 && len(indexParams) == 1 {
		pw.IndexedBy[indexParams[0]] = true
	} else {
		pw.Plain = true
	}
}

// lvalueBase walks selector/index/star chains to the base identifier,
// collecting which caller parameters appear as indices.
func (w *effectWalker) lvalueBase(e ast.Expr) (base *ast.Ident, indexParams []int, indexCount int) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, indexParams, indexCount
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			indexCount++
			if p := w.fi.paramIndex(w.identObj(x.Index)); p >= 0 {
				indexParams = append(indexParams, p)
			}
			e = x.X
		default:
			return nil, indexParams, indexCount
		}
	}
}

// retainIfParam records parameter retention for stores into escaping
// lvalues (fields, elements, globals).
func (w *effectWalker) retainIfParam(rhs, lhs ast.Expr) {
	p := w.fi.paramIndex(w.identObj(rhs))
	if p < 0 {
		return
	}
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		w.sum.RetainsParam[p] = true
	case *ast.Ident:
		if v, ok := w.fi.Pkg.Info.ObjectOf(ast.Unparen(lhs).(*ast.Ident)).(*types.Var); ok &&
			v.Parent() == w.fi.Pkg.Types.Scope() {
			w.sum.RetainsParam[p] = true
		}
	}
}

// expr records call edges, parameter calls/retention inside
// expressions, and recurses.
func (w *effectWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		w.block(e.Body)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			v := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = kv.Value
				w.expr(kv.Key)
			}
			w.expr(v)
			if p := w.fi.paramIndex(w.identObj(v)); p >= 0 {
				w.sum.RetainsParam[p] = true
			}
		}
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	}
}

// call records the static call edge with its parameter argument map,
// plus parameter-call and parameter-retention facts.
func (w *effectWalker) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	if tv, ok := w.fi.Pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	// Calling one of our own (func-typed) parameters.
	if p := w.fi.paramIndex(w.identObj(call.Fun)); p >= 0 {
		w.sum.CallsParam[p] = true
		return
	}
	w.expr(call.Fun)

	callee := StaticCallee(w.fi.Pkg.Info, call)
	if callee == nil {
		// Builtins have known semantics: only append and panic keep a
		// reference to their (pointer-like) arguments.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := w.fi.Pkg.Info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "append" || b.Name() == "panic" {
					for _, a := range call.Args {
						if p := w.fi.paramIndex(w.identObj(a)); p >= 0 && pointerLike(w.fi.Params[p].Type()) {
							w.sum.RetainsParam[p] = true
						}
					}
				}
				return
			}
		}
		// Dynamic call: a parameter passed to it must be assumed both
		// called and retained.
		for _, a := range call.Args {
			if p := w.fi.paramIndex(w.identObj(a)); p >= 0 {
				w.sum.CallsParam[p] = true
				if pointerLike(w.fi.Params[p].Type()) {
					w.sum.RetainsParam[p] = true
				}
			}
		}
		return
	}
	edge := CallEdge{Pos: call.Pos(), Callee: callee, ArgParam: map[int]int{}}
	nParams, variadic := calleeParams(callee)
	argBase := 0
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := w.fi.Pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if p := w.fi.paramIndex(w.identObj(sel.X)); p >= 0 {
				edge.ArgParam[0] = p
			}
			argBase = 1
		}
	}
	if callee.Type().(*types.Signature).Recv() == nil {
		argBase = 0
	}
	for i, a := range call.Args {
		q := argBase + i
		if q >= nParams {
			break
		}
		if variadic && q == nParams-1 && !call.Ellipsis.IsValid() {
			break // no per-parameter tracking through the variadic tail
		}
		if p := w.fi.paramIndex(w.identObj(a)); p >= 0 {
			edge.ArgParam[q] = p
		}
	}
	w.sum.Calls = append(w.sum.Calls, edge)

	// A parameter passed to a callee outside the program must be
	// assumed retained (and called, if func-typed): we cannot see its
	// body. Known-pure stdlib families are exempted by the analyzers
	// that care.
	if w.prog.FuncOf(callee) == nil {
		for q, p := range edge.ArgParam {
			if q == 0 && callee.Type().(*types.Signature).Recv() != nil {
				continue // method receiver: a use, not a donation
			}
			// A value-typed argument is copied; the callee cannot keep
			// a reference to the caller's parameter through it.
			if pointerLike(w.fi.Params[p].Type()) {
				w.sum.RetainsParam[p] = true
			}
		}
	}
}

// pointerLike reports whether values of t carry references the callee
// could keep (pointers, slices, maps, chans, funcs, interfaces).
func pointerLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	}
	return false
}

// fixpoint propagates CallsParam, RetainsParam, WritesGlobal, and
// ParamWrites across static call edges until stable.
func (prog *Program) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.Ordered {
			s := fi.Summary
			for _, e := range s.Calls {
				cfi := prog.FuncOf(e.Callee)
				if cfi == nil {
					continue
				}
				cs := cfi.Summary
				if cs.WritesGlobal && !s.WritesGlobal {
					s.WritesGlobal = true
					s.GlobalEvidence = Effect{Pos: e.Pos,
						Desc: fmt.Sprintf("call to %s writes %s", cfi.Name(), witness(cs))}
					changed = true
				}
				for q, p := range e.ArgParam {
					if cs.CallsParam[q] && !s.CallsParam[p] {
						s.CallsParam[p] = true
						changed = true
					}
					if cs.RetainsParam[q] && !s.RetainsParam[p] {
						s.RetainsParam[p] = true
						changed = true
					}
					if cw := cs.ParamWrites[q]; cw != nil {
						pw := s.ParamWrites[p]
						if pw == nil {
							pw = &ParamWrite{IndexedBy: map[int]bool{}}
							s.ParamWrites[p] = pw
							changed = true
						}
						if cw.Plain && !pw.Plain {
							pw.Plain = true
							changed = true
						}
						for r := range cw.IndexedBy {
							if rp, ok := e.ArgParam[r]; ok {
								if !pw.IndexedBy[rp] {
									pw.IndexedBy[rp] = true
									changed = true
								}
							} else if !pw.Plain {
								pw.Plain = true
								changed = true
							}
						}
					}
				}
			}
			if len(s.GlobalWrites) > 0 && !s.WritesGlobal {
				s.WritesGlobal = true
				s.GlobalEvidence = s.GlobalWrites[0]
				changed = true
			}
		}
	}
}

func witness(s *Summary) string {
	if len(s.GlobalWrites) > 0 {
		return s.GlobalWrites[0].Desc
	}
	return s.GlobalEvidence.Desc
}

// suppressedAt is program-wide suppression: a //lint:NAME directive
// on the line, the line above, or in the enclosing function's doc
// comment — in whichever package owns the position.
func (prog *Program) suppressedAt(analyzer string, pos token.Pos) bool {
	position := prog.Fset.Position(pos)
	fp := prog.fileOf[position.Filename]
	if fp == nil {
		return false
	}
	for _, d := range fp.pkg.directives[position.Filename] {
		if d.name == analyzer && (d.pos.Line == position.Line || d.pos.Line == position.Line-1) {
			return true
		}
	}
	for _, decl := range fp.file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || pos < fd.Pos() || pos >= fd.End() {
			continue
		}
		for _, c := range fd.Doc.List {
			if m := directiveRe.FindStringSubmatch(c.Text); m != nil && m[1] == analyzer {
				return true
			}
		}
	}
	return false
}

// EnclosingFunc returns the FuncInfo whose declaration contains pos.
func (prog *Program) EnclosingFunc(pos token.Pos) *FuncInfo {
	position := prog.Fset.Position(pos)
	fp := prog.fileOf[position.Filename]
	if fp == nil {
		return nil
	}
	for _, decl := range fp.file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			if obj, ok := fp.pkg.Info.Defs[fd.Name].(*types.Func); ok {
				return prog.FuncOf(obj)
			}
		}
	}
	return nil
}

// A ProgramPass provides one whole-program analyzer with the Program.
type ProgramPass struct {
	Analyzer *Analyzer
	Program  *Program

	diags *[]Diagnostic
}

// Reportf records a finding unless a matching //lint: directive in
// the owning package covers the site.
func (pp *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	if pp.Program.suppressedAt(pp.Analyzer.Name, pos) {
		return
	}
	*pp.diags = append(*pp.diags, Diagnostic{
		Pos:      pp.Program.Fset.Position(pos),
		Analyzer: pp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}
