package lint

import (
	"go/ast"
	"go/types"
)

// Metering guards the paper's cost model. Every walk over the node
// list, the configurations list, or a node's config-task-pair list
// inside the resource information manager (internal/resinfo) and the
// scheduling policies (internal/sched) must charge the
// SchedulerSearch / HousekeepingSteps counters — those counters ARE
// the paper's Table I / Fig. 9 outputs, and the indexed fast path is
// only equivalent to the linear one because both charge identical
// steps. A traversal that forgets to meter silently skews every
// workload figure.
//
// Two shapes are checked:
//
//  1. a function that ranges over []*model.Node, []*model.Config or
//     []*model.Entry must somewhere call one of the metering sinks
//     (search, housekeep, ChargeSearch, ChargeHousekeeping);
//  2. the steps count returned by reslists List.Each / List.FindMin
//     must not be discarded.
//
// Construction-time and debug-only walks are deliberate exceptions —
// annotate them with //lint:metering and the reason.
var Metering = &Analyzer{
	Name: "metering",
	Doc:  "flag node/config list traversals that do not charge the search/housekeeping counters",
	Scope: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/resinfo") ||
			pathHasSuffix(pkgPath, "internal/sched")
	},
	Run: runMetering,
}

// meteringSinks are the Manager methods that charge the run counters.
var meteringSinks = map[string]bool{
	"search": true, "housekeep": true,
	"ChargeSearch": true, "ChargeHousekeeping": true,
}

// meteredElemTypes are the element type names (in internal/model)
// whose slices represent the paper's resource lists.
var meteredElemTypes = map[string]bool{"Node": true, "Config": true, "Entry": true}

func runMetering(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMetering(pass, fd)
		}
	}
	return nil
}

func checkFuncMetering(pass *Pass, fd *ast.FuncDecl) {
	if meteringSinks[fd.Name.Name] {
		return // the sinks themselves
	}
	var traversals []*ast.RangeStmt
	metered := false

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isResourceListType(pass.TypeOf(n.X)) {
				traversals = append(traversals, n)
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && meteringSinks[sel.Sel.Name] {
				metered = true
			}
		case *ast.ExprStmt:
			// A bare List.Each/FindMin call throws the steps away.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name := reslistsWalkName(pass, call); name != "" {
					pass.Reportf(call.Pos(),
						"steps result of List.%s discarded: traversal work must be charged to the counters", name)
				}
			}
		case *ast.AssignStmt:
			// `_ = list.Each(...)` and `x, _ := list.FindMin(...)`
			// discard the steps the same way.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok {
					continue
				}
				name := reslistsWalkName(pass, call)
				if name == "" {
					continue
				}
				if stepsDiscarded(n, name, i) {
					pass.Reportf(call.Pos(),
						"steps result of List.%s discarded: traversal work must be charged to the counters", name)
				}
			}
		}
		return true
	})

	if metered {
		return
	}
	for _, rs := range traversals {
		pass.Reportf(rs.Pos(),
			"%s walks a resource list but never charges SchedulerSearch/HousekeepingSteps (search/housekeep/Charge*)",
			fd.Name.Name)
	}
}

// isResourceListType reports whether t is []*model.Node,
// []*model.Config or []*model.Entry.
func isResourceListType(t types.Type) bool {
	if t == nil {
		return false
	}
	slice, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	ptr, ok := slice.Elem().Underlying().(*types.Pointer)
	if !ok {
		// Named pointer element types don't occur here; require *T.
		ptr, ok = slice.Elem().(*types.Pointer)
		if !ok {
			return false
		}
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil &&
		pathHasSuffix(obj.Pkg().Path(), "internal/model") &&
		meteredElemTypes[obj.Name()]
}

// reslistsWalkName returns "Each"/"FindMin" when call is a traversal
// method on a reslists.List, "" otherwise.
func reslistsWalkName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Each" && sel.Sel.Name != "FindMin") {
		return ""
	}
	obj := pass.ObjectOf(sel.Sel)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/reslists") {
		return ""
	}
	return sel.Sel.Name
}

// stepsDiscarded reports whether the steps result of an Each/FindMin
// call lands in the blank identifier. Each returns (steps); FindMin
// returns (best, steps).
func stepsDiscarded(assign *ast.AssignStmt, name string, rhsIndex int) bool {
	// Multi-value context: lhs positions correspond 1:1 when a single
	// call feeds the statement; otherwise position rhsIndex holds the
	// single result of Each.
	stepsLHS := -1
	if len(assign.Rhs) == 1 && name == "FindMin" && len(assign.Lhs) == 2 {
		stepsLHS = 1
	} else if rhsIndex < len(assign.Lhs) {
		stepsLHS = rhsIndex
	}
	if stepsLHS < 0 || stepsLHS >= len(assign.Lhs) {
		return false
	}
	id, ok := assign.Lhs[stepsLHS].(*ast.Ident)
	return ok && id.Name == "_"
}
