// The allocfree analyzer: static allocation-freedom proofs. A
// function annotated
//
//	//dreamsim:noalloc
//
// in its doc comment is proven allocation-free across its whole call
// closure — every statically reachable function body is checked for
// heap-allocating constructs, so an alloc regression two calls deep
// fails `go run ./cmd/dreamlint ./...` on any machine instead of
// only the perf-smoke bench box (which still backstops the dynamic
// cases below).
//
// The proof rules mirror the runtime zero-alloc gate's contract
// rather than raw "could the compiler ever allocate" pessimism:
//
//   - append and map assignment are amortized-allowed: the pools and
//     free lists they back grow to steady state and the AllocsPerRun
//     gates bound the steady state.
//   - panic(...) arguments and statically-false branches (the
//     `if invariant.Enabled { ... }` idiom) are dead or abort-path
//     code and are skipped.
//   - a call to an external function whose only result is an error
//     (fmt.Errorf, errors.New) is abort-path error construction and
//     is exempt; the simulation stops on these paths.
//   - a func literal passed directly to a call does not escape when
//     the callee provably does not retain that parameter (the
//     sort.Search / List.FindMin shape); its body is attributed to
//     the caller and checked in place.
//   - calls to a function's own func-typed parameters are silent:
//     each call site proves the argument it passes.
//
// Everything else that allocates or cannot be traced — composite
// literals taken by address, make/new, slice and map literals,
// string concatenation/conversions, variadic argument slices,
// escaping closures, method values, dynamic calls, unvetted external
// calls — is reported at its own site, with the annotated root and
// call path in the message. Interface boxing of non-pointer values
// is the one known allocation class the proof does not see; the
// runtime gate covers it.
package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree proves //dreamsim:noalloc functions allocation-free over
// their static call closure.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc: "functions annotated //dreamsim:noalloc must be allocation-free " +
		"across their whole call closure (amortized append/map growth and " +
		"abort-path error construction excepted)",
	RunProgram: runAllocFree,
}

// allocFacts is the per-function allocation view: local events plus
// the outgoing proof obligations.
type allocFacts struct {
	events  []Effect
	callees []calleeRef
}

type calleeRef struct {
	pos token.Pos
	fn  *FuncInfo
}

func runAllocFree(pp *ProgramPass) error {
	prog := pp.Program
	facts := map[*FuncInfo]*allocFacts{}
	reported := map[token.Pos]bool{}
	for _, root := range prog.Ordered {
		if !root.Noalloc {
			continue
		}
		type item struct {
			fi   *FuncInfo
			path []string
		}
		visited := map[*FuncInfo]bool{root: true}
		queue := []item{{root, nil}}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			f := facts[cur.fi]
			if f == nil {
				f = allocFactsOf(prog, cur.fi)
				facts[cur.fi] = f
			}
			for _, ev := range f.events {
				if reported[ev.Pos] {
					continue
				}
				reported[ev.Pos] = true
				via := ""
				if len(cur.path) > 0 {
					via = " via " + strings.Join(cur.path, " -> ")
				}
				pp.Reportf(ev.Pos, "%s in //dreamsim:noalloc closure of %s%s",
					ev.Desc, root.Name(), via)
			}
			for _, c := range f.callees {
				// A //lint:allocfree directive on the call line prunes
				// the whole subtree behind that edge: the justification
				// covers everything reachable only through it.
				if prog.suppressedAt(pp.Analyzer.Name, c.pos) {
					continue
				}
				if !visited[c.fn] {
					visited[c.fn] = true
					path := append(append([]string{}, cur.path...), c.fn.Name())
					queue = append(queue, item{c.fn, path})
				}
			}
		}
	}
	return nil
}

// allocFactsOf runs the allocation-view walk over one function body.
func allocFactsOf(prog *Program, fi *FuncInfo) *allocFacts {
	w := &allocWalker{prog: prog, fi: fi, f: &allocFacts{}}
	w.block(fi.Decl.Body)
	return w.f
}

type allocWalker struct {
	prog *Program
	fi   *FuncInfo
	f    *allocFacts
}

func (w *allocWalker) event(pos token.Pos, format string, args ...any) {
	w.f.events = append(w.f.events, Effect{Pos: pos, Desc: fmt.Sprintf(format, args...)})
}

func (w *allocWalker) info() *types.Info { return w.fi.Pkg.Info }

// constBool returns the value of a compile-time boolean constant
// expression, if e is one. && and || short-circuits fold when the
// deciding operand is constant, covering the
// `if invariant.Enabled && cond { ... }` guard idiom.
func (w *allocWalker) constBool(e ast.Expr) (val, ok bool) {
	tv, found := w.info().Types[e]
	if found && tv.Value != nil && tv.Value.Kind() == constant.Bool {
		return constant.BoolVal(tv.Value), true
	}
	if be, isBin := ast.Unparen(e).(*ast.BinaryExpr); isBin {
		x, xOK := w.constBool(be.X)
		y, yOK := w.constBool(be.Y)
		switch be.Op {
		case token.LAND:
			if (xOK && !x) || (yOK && !y) {
				return false, true
			}
		case token.LOR:
			if (xOK && x) || (yOK && y) {
				return true, true
			}
		}
	}
	return false, false
}

func (w *allocWalker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, st := range b.List {
		w.stmt(st)
	}
}

func (w *allocWalker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.IfStmt:
		w.stmtOpt(st.Init)
		if val, ok := w.constBool(st.Cond); ok {
			// The `if invariant.Enabled { ... }` idiom: the dead
			// branch is eliminated by the compiler and skipped here.
			if val {
				w.block(st.Body)
			} else {
				w.stmtOpt(st.Else)
			}
			return
		}
		w.expr(st.Cond)
		w.block(st.Body)
		w.stmtOpt(st.Else)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r)
		}
	case *ast.AssignStmt:
		for _, lhs := range st.Lhs {
			// Map assignment is amortized-allowed; still check the
			// key expression.
			if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				w.expr(ix.X)
				w.expr(ix.Index)
				continue
			}
			w.expr(lhs)
		}
		for _, rhs := range st.Rhs {
			w.expr(rhs)
		}
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.GoStmt:
		w.event(st.Pos(), "go statement allocates a goroutine")
		w.expr(st.Call)
	case *ast.DeferStmt:
		// Open-coded defers do not allocate; the call's own
		// arguments and target are still checked.
		w.expr(st.Call)
	case *ast.ForStmt:
		w.stmtOpt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.stmtOpt(st.Post)
		w.block(st.Body)
	case *ast.RangeStmt:
		w.expr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		w.stmtOpt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmtOpt(st.Init)
		w.stmtOpt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			w.stmtOpt(cc.Comm)
			for _, s := range cc.Body {
				w.stmt(s)
			}
		}
	case *ast.BlockStmt:
		w.block(st)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	}
}

func (w *allocWalker) stmtOpt(st ast.Stmt) {
	if st != nil {
		w.stmt(st)
	}
}

func (w *allocWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		// A func literal outside a direct argument position: a
		// capture-free literal compiles to a static closure and never
		// allocates; a capturing one allocates when evaluated.
		if caps := capturesOf(w.info(), w.fi.Pkg.Types, e); len(caps) > 0 {
			w.event(e.Pos(), "func literal capturing %s allocates a closure", strings.Join(caps, ", "))
		}
	case *ast.CompositeLit:
		if t := w.info().TypeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				w.event(e.Pos(), "slice literal allocates")
			case *types.Map:
				w.event(e.Pos(), "map literal allocates")
			}
		}
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value)
				continue
			}
			w.expr(el)
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				w.event(e.Pos(), "&%s composite literal escapes to the heap", typeName(w.info().TypeOf(cl)))
				for _, el := range cl.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						w.expr(kv.Value)
						continue
					}
					w.expr(el)
				}
				return
			}
		}
		w.expr(e.X)
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			if t := w.info().TypeOf(e); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv, ok := w.info().Types[ast.Expr(e)]; !ok || tv.Value == nil {
						w.event(e.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Value)
	}
}

// call applies the call rules: builtins, conversions, static edges,
// external allowlist, func-typed arguments, dynamic dispatch.
func (w *allocWalker) call(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)

	// Conversions.
	if tv, ok := w.info().Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := w.info().Uses[id].(*types.Builtin); ok {
			w.builtin(call, b.Name())
			return
		}
	}

	// Direct func literal call: attribute the body.
	if lit, ok := fun.(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a)
		}
		w.block(lit.Body)
		return
	}

	// Call of one of our own func-typed parameters: each caller
	// proves the value it passes.
	if obj := identObjOf(w.info(), fun); obj != nil && w.fi.paramIndex(obj) >= 0 {
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}

	callee := StaticCallee(w.info(), call)
	if callee == nil {
		w.event(call.Pos(), "dynamic call of %s cannot be proven allocation-free", exprText(fun))
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}

	cfi := w.prog.FuncOf(callee)
	if cfi == nil {
		// External function: abort-path error construction is
		// exempt, a small allowlist is known allocation-free, the
		// rest cannot be proven.
		if isErrorConstructor(callee) {
			return // the whole subtree is abort-path
		}
		if !externalAllowed(callee) {
			w.event(call.Pos(), "call to %s (outside the checked program) cannot be proven allocation-free",
				shortFuncName(callee))
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
	} else if len(cfi.Decl.Body.List) > 0 {
		w.f.callees = append(w.f.callees, calleeRef{pos: call.Pos(), fn: cfi})
	}

	// Variadic argument slices.
	sig := callee.Type().(*types.Signature)
	if sig.Variadic() && !call.Ellipsis.IsValid() {
		fixed := sig.Params().Len() - 1
		if len(call.Args) > fixed && !(cfi != nil && len(cfi.Decl.Body.List) == 0) {
			w.event(call.Pos(), "variadic call to %s allocates its argument slice", shortFuncName(callee))
		}
	}

	// Arguments, with the func-typed argument rules.
	nParams, _ := calleeParams(callee)
	argBase := 0
	if sig.Recv() != nil {
		argBase = 1
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			w.expr(sel.X)
		}
	}
	for i, a := range call.Args {
		q := argBase + i
		if t := w.info().TypeOf(a); t != nil {
			if _, isFunc := t.Underlying().(*types.Signature); isFunc && q < nParams {
				w.funcArg(call, callee, cfi, q, a)
				continue
			}
		}
		w.expr(a)
	}
}

// funcArg applies the higher-order rules to one func-typed argument.
func (w *allocWalker) funcArg(call *ast.CallExpr, callee *types.Func, cfi *FuncInfo, q int, a ast.Expr) {
	arg := ast.Unparen(a)

	retains, calls := true, true // unknown callee: assume the worst
	if cfi != nil {
		retains = cfi.Summary.RetainsParam[q]
		calls = cfi.Summary.CallsParam[q]
	} else if externalNonRetaining(callee) {
		retains = false
	}

	if lit, ok := arg.(*ast.FuncLit); ok {
		caps := capturesOf(w.info(), w.fi.Pkg.Types, lit)
		if retains && len(caps) > 0 {
			w.event(a.Pos(), "func literal capturing %s escapes via call to %s",
				strings.Join(caps, ", "), shortFuncName(callee))
		}
		// The literal's body runs as part of this closure either way.
		w.block(lit.Body)
		return
	}

	// A bound method value x.m allocates a closure.
	if sel, ok := arg.(*ast.SelectorExpr); ok {
		if s, ok := w.info().Selections[sel]; ok && s.Kind() == types.MethodVal {
			w.event(a.Pos(), "method value %s allocates a closure", exprText(arg))
			return
		}
	}

	// A reference to a declared function: prove its body if the
	// callee may call it.
	if f, ok := identObjOf(w.info(), arg).(*types.Func); ok {
		if calls {
			if ffi := w.prog.FuncOf(f); ffi != nil {
				w.f.callees = append(w.f.callees, calleeRef{pos: a.Pos(), fn: ffi})
			} else {
				w.event(a.Pos(), "func value %s passed to %s cannot be proven allocation-free",
					shortFuncName(f), shortFuncName(callee))
			}
		}
		return
	}

	// Forwarding one of our own parameters: the outer caller proves it.
	if obj := identObjOf(w.info(), arg); obj != nil && w.fi.paramIndex(obj) >= 0 {
		return
	}

	// Any other func value (a field, a local): it is only dangerous
	// here if the callee may actually call it.
	if calls {
		w.event(a.Pos(), "untraceable func value %s passed to %s, which may call it",
			exprText(arg), shortFuncName(callee))
	}
	w.expr(arg)
}

func (w *allocWalker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	from := w.info().TypeOf(call.Args[0])
	if from != nil {
		tb, tOK := to.Underlying().(*types.Basic)
		_, fromSlice := from.Underlying().(*types.Slice)
		toSlice, toIsSlice := to.Underlying().(*types.Slice)
		fb, fOK := from.Underlying().(*types.Basic)
		switch {
		case tOK && tb.Info()&types.IsString != 0 && fromSlice:
			w.event(call.Pos(), "string(...) conversion from a slice allocates")
		case toIsSlice && fOK && fb.Info()&types.IsString != 0:
			w.event(call.Pos(), "[]%s(...) conversion from a string allocates", typeName(toSlice.Elem()))
		}
	}
	w.expr(call.Args[0])
}

func (w *allocWalker) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "panic":
		return // abort path: argument construction is exempt
	case "make":
		w.event(call.Pos(), "make allocates")
	case "new":
		w.event(call.Pos(), "new allocates")
	case "print", "println":
		w.event(call.Pos(), "%s allocates", name)
	case "append":
		// Amortized-allowed: pools and free lists grow to steady
		// state; the runtime gate bounds the steady state.
	}
	for _, a := range call.Args {
		w.expr(a)
	}
}

// isErrorConstructor reports an external call whose only result is an
// error — abort-path construction (fmt.Errorf, errors.New, ...).
func isErrorConstructor(f *types.Func) bool {
	sig := f.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	return types.Implements(sig.Results().At(0).Type(), errorIface())
}

var cachedErrorIface *types.Interface

func errorIface() *types.Interface {
	if cachedErrorIface == nil {
		cachedErrorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return cachedErrorIface
}

// externalAllowed lists external (out-of-program) callees known to be
// allocation-free.
func externalAllowed(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil {
		return false
	}
	switch pkg.Path() {
	case "math", "math/bits", "sync/atomic":
		return true
	case "strconv":
		return strings.HasPrefix(f.Name(), "Append")
	case "sort":
		return f.Name() == "Search"
	}
	return false
}

// externalNonRetaining lists external callees known not to retain
// their func-typed parameters (so a closure passed there does not
// escape).
func externalNonRetaining(f *types.Func) bool {
	pkg := f.Pkg()
	return pkg != nil && pkg.Path() == "sort" && f.Name() == "Search"
}

// capturesOf returns the names of variables the literal captures from
// its enclosing function (package-level variables are not captures).
func capturesOf(info *types.Info, pkg *types.Package, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() >= lit.End() {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

// identObjOf resolves an identifier or selector expression to its
// object.
func identObjOf(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(x)
	case *ast.SelectorExpr:
		return info.ObjectOf(x.Sel)
	}
	return nil
}

// exprText renders a short source-like form of simple expressions.
func exprText(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprText(x.X) + "[...]"
	case *ast.CallExpr:
		return exprText(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprText(x.X)
	}
	return "expression"
}

// shortFuncName renders pkg.Fn or (pkg.T).M.
func shortFuncName(f *types.Func) string {
	sig := f.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		return fmt.Sprintf("(%s).%s", typeName(recv.Type()), f.Name())
	}
	if f.Pkg() != nil {
		return f.Pkg().Name() + "." + f.Name()
	}
	return f.Name()
}

// typeName renders a type without its package path.
func typeName(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
