package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// SeedFlow polices how rng.RNG generators come to life inside the
// units the experiment executor (internal/exec) fans out. A parallel
// sweep is byte-identical to a sequential one only because every unit
// is a pure function of its own explicit seed; an RNG constructed
// from anything ambient — a global counter, a pointer value, an
// environment lookup — silently couples units to scheduling order.
//
// Within the executor-driven packages (the root experiment engine,
// internal/core, internal/exec, internal/gridsim, internal/workload —
// the last because TaskSource implementations feed every unit its
// input stream — plus internal/serve and internal/snapshot, which
// respectively fan sweep units out across server restarts and rebuild
// RNG streams from serialized state), every argument of
// rng.New / (*rng.RNG).Seed must trace back to explicit seed inputs:
// function parameters, fields or variables with "seed" in their name,
// constants, derivations via (*rng.RNG) methods (Split, RandUint64),
// or pure arithmetic over those. Anything else is reported; truly
// deliberate exceptions carry //lint:seedflow with a reason.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc:  "require rng.RNG construction from explicit seed inputs in executor-driven units",
	Scope: func(pkgPath string) bool {
		return pkgPath == "dreamsim" ||
			pathHasSuffix(pkgPath, "internal/core") ||
			pathHasSuffix(pkgPath, "internal/exec") ||
			pathHasSuffix(pkgPath, "internal/gridsim") ||
			pathHasSuffix(pkgPath, "internal/serve") ||
			pathHasSuffix(pkgPath, "internal/snapshot") ||
			pathHasSuffix(pkgPath, "internal/workload")
	},
	Run: runSeedFlow,
}

func runSeedFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name := rngSeedCall(pass, call); name != "" && len(call.Args) == 1 {
					if why := badSeedExpr(pass, fd, call.Args[0], 0); why != "" {
						pass.Reportf(call.Pos(),
							"rng seed for %s does not trace to an explicit seed input: %s", name, why)
					}
				}
				return true
			})
		}
	}
	return nil
}

// rngSeedCall returns "rng.New" or "RNG.Seed" when call constructs or
// reseeds a generator, "" otherwise.
func rngSeedCall(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || !pathHasSuffix(fn.Pkg().Path(), "internal/rng") {
		return ""
	}
	switch fn.Name() {
	case "New":
		return "rng.New"
	case "Seed":
		return "RNG.Seed"
	}
	return ""
}

// badSeedExpr walks the provenance of a seed expression and returns a
// description of the first non-seed source, or "" when every leaf is
// an explicit seed input. Depth is bounded: beyond it the expression
// is considered opaque.
func badSeedExpr(pass *Pass, fd *ast.FuncDecl, e ast.Expr, depth int) string {
	if depth > 8 {
		return "provenance too deep to verify"
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return "" // a literal seed is explicit
	case *ast.ParenExpr:
		return badSeedExpr(pass, fd, e.X, depth+1)
	case *ast.BinaryExpr:
		if why := badSeedExpr(pass, fd, e.X, depth+1); why != "" {
			return why
		}
		return badSeedExpr(pass, fd, e.Y, depth+1)
	case *ast.UnaryExpr:
		return badSeedExpr(pass, fd, e.X, depth+1)
	case *ast.IndexExpr:
		return badSeedExpr(pass, fd, e.X, depth+1)
	case *ast.SelectorExpr:
		if seedish(e.Sel.Name) {
			return ""
		}
		return fmt.Sprintf("field or value %q is not a seed input", e.Sel.Name)
	case *ast.Ident:
		return badSeedIdent(pass, fd, e, depth)
	case *ast.CallExpr:
		return badSeedCall(pass, fd, e, depth)
	default:
		return fmt.Sprintf("unrecognised seed source %T", e)
	}
}

// badSeedIdent resolves one identifier leaf.
func badSeedIdent(pass *Pass, fd *ast.FuncDecl, id *ast.Ident, depth int) string {
	obj := pass.ObjectOf(id)
	switch obj := obj.(type) {
	case *types.Const:
		return ""
	case *types.Nil, *types.Builtin:
		return fmt.Sprintf("%q is not a seed input", id.Name)
	case *types.Var:
		if seedish(id.Name) {
			return ""
		}
		if isParamOf(fd, obj) {
			return "" // caller passed it explicitly
		}
		if obj.Pos() < fd.Pos() || obj.Pos() > fd.End() {
			return fmt.Sprintf("package-level variable %q is ambient state, not an explicit seed", id.Name)
		}
		// Local variable: trace its initialisations inside this
		// function.
		inits := localInits(fd, obj, pass)
		if len(inits) == 0 {
			return fmt.Sprintf("cannot trace local %q to a seed input", id.Name)
		}
		for _, init := range inits {
			if why := badSeedExpr(pass, fd, init, depth+1); why != "" {
				return why
			}
		}
		return ""
	default:
		return fmt.Sprintf("%q is not a seed input", id.Name)
	}
}

// badSeedCall accepts calls that deterministically derive seeds:
// (*rng.RNG) methods (Split/RandUint64/...), functions whose name
// mentions seeds (Seeds, DeriveSeed), conversions, and len/cap.
func badSeedCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, depth int) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch obj := pass.ObjectOf(fun).(type) {
		case *types.TypeName: // conversion like uint64(i)
			if len(call.Args) == 1 {
				return badSeedExpr(pass, fd, call.Args[0], depth+1)
			}
		case *types.Builtin:
			if fun.Name == "len" || fun.Name == "cap" {
				return ""
			}
		case *types.Func:
			if seedish(obj.Name()) {
				return ""
			}
			return fmt.Sprintf("call to %s is not a recognised seed derivation", obj.Name())
		}
	case *ast.SelectorExpr:
		obj := pass.ObjectOf(fun.Sel)
		if fn, ok := obj.(*types.Func); ok {
			if fn.Pkg() != nil && pathHasSuffix(fn.Pkg().Path(), "internal/rng") {
				return "" // Split / RandUint64 / ... on an existing RNG
			}
			if seedish(fn.Name()) {
				return ""
			}
			return fmt.Sprintf("call to %s is not a recognised seed derivation", fn.Name())
		}
		if _, ok := obj.(*types.TypeName); ok && len(call.Args) == 1 {
			return badSeedExpr(pass, fd, call.Args[0], depth+1) // pkg.Type(x) conversion
		}
	}
	return "unrecognised seed derivation"
}

// seedish reports whether a name advertises seed-ness.
func seedish(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// isParamOf reports whether v is a parameter (or receiver) of fd.
func isParamOf(fd *ast.FuncDecl, v *types.Var) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if name.Pos() == v.Pos() {
					return true
				}
			}
		}
		return false
	}
	return check(fd.Type.Params) || check(fd.Recv)
}

// localInits collects the expressions assigned to obj inside fd
// (short declarations and plain assignments).
func localInits(fd *ast.FuncDecl, obj *types.Var, pass *Pass) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || pass.ObjectOf(id) != obj {
					continue
				}
				if i < len(n.Rhs) && len(n.Rhs) == len(n.Lhs) {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.ObjectOf(name) == obj && i < len(n.Values) {
					out = append(out, n.Values[i])
				}
			}
		case *ast.RangeStmt:
			// Range keys over deterministic containers are fine index
			// material; treat `for i := range ...` keys as explicit.
			if id, ok := n.Key.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				out = append(out, &ast.BasicLit{})
			}
		}
		return true
	})
	return out
}
