package lint

import (
	"go/parser"
	"go/token"
	"reflect"
	"sort"
	"testing"
)

// TestDirectiveParsing pins the accepted //lint: directive grammar:
// lower-case analyzer name, optional justification, tolerant of space
// between the slashes and the keyword.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		comment      string
		name, reason string
		ok           bool
	}{
		{"//lint:allocfree pool miss, amortized", "allocfree", "pool miss, amortized", true},
		{"// lint:detrand host clock is display-only", "detrand", "host clock is display-only", true},
		{"//lint:maporder", "maporder", "", true},
		{"//lint:maporder   ", "maporder", "", true},
		{"//lint:CamelCase reason", "", "", false},
		{"// plain comment", "", "", false},
		{"//lintish:detrand x", "", "", false},
	}
	for _, tc := range cases {
		m := directiveRe.FindStringSubmatch(tc.comment)
		if (m != nil) != tc.ok {
			t.Errorf("%q: matched=%v, want %v", tc.comment, m != nil, tc.ok)
			continue
		}
		if m == nil {
			continue
		}
		// collectDirectives trims the reason; mirror that here.
		src := "package p\n\n" + tc.comment + "\nvar x int\n"
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("%q: parse: %v", tc.comment, err)
		}
		out := map[string][]directive{}
		collectDirectives(fset, f, out)
		ds := out["p.go"]
		if len(ds) != 1 {
			t.Errorf("%q: collected %d directives, want 1", tc.comment, len(ds))
			continue
		}
		if ds[0].name != tc.name || ds[0].reason != tc.reason {
			t.Errorf("%q: got (%q, %q), want (%q, %q)",
				tc.comment, ds[0].name, ds[0].reason, tc.name, tc.reason)
		}
	}
}

// TestLoadMultiPackage loads a fixture tree that spans two packages
// with an import edge between them and checks both come back
// type-checked, with their directives collected.
func TestLoadMultiPackage(t *testing.T) {
	pkgs, err := Load(".", []string{
		"./testdata/src/sharedstate/internal/exec",
		"./testdata/src/sharedstate/ss",
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		seen[pkg.Path] = true
		if pkg.Types == nil || pkg.Info == nil {
			t.Errorf("%s: not type-checked", pkg.Path)
		}
		if len(pkg.Files) == 0 {
			t.Errorf("%s: no files parsed", pkg.Path)
		}
	}
	for _, want := range []string{
		"dreamsim/internal/lint/testdata/src/sharedstate/internal/exec",
		"dreamsim/internal/lint/testdata/src/sharedstate/ss",
	} {
		if !seen[want] {
			t.Errorf("Load did not return %s (got %v)", want, seen)
		}
	}
}

// TestRunDeterministicOrder runs the full suite twice over the same
// fixture tree and checks the findings come back identical and sorted
// by (file, line, column, analyzer) — the order CI logs and the
// fixture harness both rely on.
func TestRunDeterministicOrder(t *testing.T) {
	pkgs, err := Load(".", []string{
		"./testdata/src/detrand/sim",
		"./testdata/src/allocfree/af",
	})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	first := Run(pkgs, Analyzers())
	if len(first) == 0 {
		t.Fatal("Run found nothing; the fixtures should produce findings")
	}
	if !sort.SliceIsSorted(first, func(i, j int) bool {
		a, b := first[i], first[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	}) {
		t.Error("Run output is not sorted by position")
	}
	second := Run(pkgs, Analyzers())
	if !reflect.DeepEqual(first, second) {
		t.Errorf("Run is not deterministic:\nfirst:  %v\nsecond: %v", first, second)
	}
}

// TestExceptionsInventory checks that every //lint: directive of a
// loaded tree is reported, in position order, with its justification.
func TestExceptionsInventory(t *testing.T) {
	pkgs, err := Load(".", []string{"./testdata/src/allocfree/af"})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	exs := Exceptions(pkgs)
	if len(exs) != 2 {
		t.Fatalf("Exceptions returned %d entries, want 2: %v", len(exs), exs)
	}
	for i, ex := range exs {
		if ex.Name != "allocfree" {
			t.Errorf("exception %d: name %q, want allocfree", i, ex.Name)
		}
		if ex.Reason == "" {
			t.Errorf("exception %d: empty justification", i)
		}
		if i > 0 && exs[i-1].Pos.Line >= ex.Pos.Line {
			t.Errorf("exceptions out of order: line %d before line %d",
				exs[i-1].Pos.Line, ex.Pos.Line)
		}
	}
}
