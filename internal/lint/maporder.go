package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for range` loops over maps whose bodies have
// order-dependent effects. Go randomises map iteration order, so a
// map-range that appends to a slice, writes output, or feeds a
// metric/figure produces a different byte stream every run — exactly
// the nondeterminism the results pipeline must never exhibit.
//
// Order-insensitive bodies (sums, counting, set/map writes, deletes)
// pass. The sanctioned sorted-keys idiom also passes: a body that
// only appends to slices which are subsequently passed to a sort or
// slices call in the same function is recognised as "sorted before
// use". Anything else needs the keys sorted first or a
// //lint:maporder justification.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent iteration over maps (append/output/metric effects)",
	Run:  runMapOrder,
}

// outputSinkMethods are method names whose invocation inside a
// map-range body makes iteration order observable: stream writers,
// printers, encoders, and the metric/figure accumulators
// (metrics.Series.Add, monitor.Recorder.Observe, ...).
var outputSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Sprintf": false, // pure; result ordering is the caller's problem
	"Encode":  true, "EncodeElement": true,
	"Add": true, "Observe": true, "Record": true, "Sample": true,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk function by function so the sorted-after check can see
		// the statements that follow each range loop.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				checkMapRange(pass, fd, rs)
				return true
			})
		}
	}
	return nil
}

// checkMapRange classifies the body of one range-over-map statement.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	var appendTargets []types.Object // local slices appended to
	unsortable := false              // append target not a plain local
	sink := ""                       // first output/metric call seen

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && pass.isBuiltin(fun) {
				if obj := appendTargetObject(pass, call); obj != nil {
					appendTargets = append(appendTargets, obj)
				} else {
					unsortable = true
				}
			}
		case *ast.SelectorExpr:
			if outputSinkMethods[fun.Sel.Name] {
				sink = fun.Sel.Name
				return false
			}
		}
		return true
	})

	switch {
	case sink != "":
		pass.Reportf(rs.Pos(),
			"map iteration feeds %s: output order follows Go's randomised map order; iterate sorted keys instead",
			sink)
	case unsortable:
		pass.Reportf(rs.Pos(),
			"map iteration appends to a non-local destination in map order; iterate sorted keys instead")
	case len(appendTargets) > 0:
		for _, obj := range appendTargets {
			if !sortedAfter(pass, fd, rs, obj) {
				pass.Reportf(rs.Pos(),
					"map iteration appends to %q in map order and %q is never sorted afterwards; sort it or iterate sorted keys",
					obj.Name(), obj.Name())
				return
			}
		}
	}
}

// isBuiltin reports whether ident resolves to a universe-scope
// builtin (so a local function named "append" is not mistaken).
func (p *Pass) isBuiltin(id *ast.Ident) bool {
	obj := p.ObjectOf(id)
	_, ok := obj.(*types.Builtin)
	return ok
}

// appendTargetObject returns the local variable receiving an
// append(...) result in the enclosing statement, when the pattern is
// the plain `x = append(x, ...)` form; nil otherwise.
func appendTargetObject(pass *Pass, call *ast.CallExpr) types.Object {
	if len(call.Args) == 0 {
		return nil
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil
	}
	obj := pass.ObjectOf(id)
	if _, isVar := obj.(*types.Var); !isVar {
		return nil
	}
	return obj
}

// sortedAfter reports whether obj is passed to a sort.* or slices.*
// call after the range statement within fd — the collect-then-sort
// idiom (sortedKeys and friends).
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rs.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, isPkg := pass.ObjectOf(pkgID).(*types.PkgName); !isPkg ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
