// The sharedstate analyzer: the parallel engine's safety contract,
// checked instead of by-convention. Every closure handed to
// exec.Do/DoWorkers/Map/MapWorkers or to the intra-run pool's
// par.ForChunks runs concurrently with its siblings, so any mutable
// state it reaches from outside its own frame — captured variables,
// package-level variables, memory behind captured pointers — must be
// either
//
//   - written only through a per-unit slot (indexed by the closure's
//     unit or worker index parameter, like out[i] = v; for ForChunks
//     closures a local derived from the chunk bound, like
//     `for i := lo; ...; i++ { out[i] = v }`, counts — static
//     chunking makes [lo, hi) the worker's own range),
//   - donated per worker (obtained through the recognised
//     `return s[w]` pool shape, like scratch.get(w)),
//   - synchronized (under a sync.Mutex/RWMutex Lock, or via
//     sync/atomic), or
//   - read-only.
//
// Cross-function effects come from the dataflow summaries: a helper
// that writes a package-level variable, or writes through a
// parameter the closure passes captured state to, is flagged at the
// closure's call site with the reaching evidence. Effects through
// interface dispatch and captured function values cannot be
// summarised, so calling a captured func value is itself a finding
// unless serialised under a lock.
//
// internal/exec and internal/par themselves are exempt: the
// executors' own index-claiming and chunk-dispatch writes are the
// mechanism that makes the contract hold.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SharedState flags unsynchronized shared mutable state reachable
// from exec worker closures.
var SharedState = &Analyzer{
	Name: "sharedstate",
	Doc: "closures handed to exec.Do/DoWorkers/Map/MapWorkers or " +
		"par.ForChunks must not write shared state except through " +
		"per-unit indices, per-worker donation, sync/atomic, or a held mutex",
	RunProgram: runSharedState,
}

// workerUnitFuncs maps an executor package's import-path suffix to the
// functions whose final argument is a concurrently-run unit closure.
var workerUnitFuncs = map[string]map[string]bool{
	"internal/exec": {"Do": true, "DoWorkers": true, "Map": true, "MapWorkers": true},
	"internal/par":  {"ForChunks": true},
}

// unitDispatcher resolves a call to one of the recognised worker-pool
// entry points, returning the display name ("exec.Do",
// "par.ForChunks") used in findings.
func unitDispatcher(callee *types.Func) (string, bool) {
	if callee == nil || callee.Pkg() == nil {
		return "", false
	}
	for suffix, names := range workerUnitFuncs {
		if pathHasSuffix(callee.Pkg().Path(), suffix) && names[callee.Name()] {
			base := suffix[strings.LastIndexByte(suffix, '/')+1:]
			return base + "." + callee.Name(), true
		}
	}
	return "", false
}

func runSharedState(pp *ProgramPass) error {
	prog := pp.Program
	for _, fi := range prog.Ordered {
		if pathHasSuffix(fi.Pkg.Path, "internal/exec") ||
			pathHasSuffix(fi.Pkg.Path, "internal/par") {
			continue
		}
		fi := fi
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := StaticCallee(fi.Pkg.Info, call)
			name, ok := unitDispatcher(callee)
			if !ok || len(call.Args) == 0 {
				return true
			}
			unit := ast.Unparen(call.Args[len(call.Args)-1])
			lit, ok := unit.(*ast.FuncLit)
			if !ok {
				pp.Reportf(unit.Pos(),
					"unit passed to %s is not a func literal; its shared-state safety cannot be checked",
					name)
				return true
			}
			checkUnit(pp, prog, fi, lit, name)
			return true
		})
	}
	return nil
}

// unitChecker walks one worker closure.
type unitChecker struct {
	pp       *ProgramPass
	prog     *Program
	fi       *FuncInfo // function containing the exec call
	lit      *ast.FuncLit
	execName string

	safe   map[*types.Var]bool     // the closure's int index parameters
	locals map[*types.Var]valClass // closure locals by alias class

	syncDepth int // > 0 while a mutex is statically held
}

type valClass int

const (
	classPure        valClass = iota // local to this unit execution
	classValueCopy                   // the unit's own copy of a captured value
	classWorkerOwned                 // shared memory projected by a safe index
	classShared                      // captured / package-level reachable
)

func checkUnit(pp *ProgramPass, prog *Program, fi *FuncInfo, lit *ast.FuncLit, execName string) {
	c := &unitChecker{
		pp: pp, prog: prog, fi: fi, lit: lit, execName: execName,
		safe:   map[*types.Var]bool{},
		locals: map[*types.Var]valClass{},
	}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := fi.Pkg.Info.Defs[name].(*types.Var); ok {
				if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
					c.safe[v] = true
				}
			}
		}
	}
	c.block(lit.Body)
}

func (c *unitChecker) info() *types.Info { return c.fi.Pkg.Info }

// declaredInLit reports whether v is declared inside the closure.
func (c *unitChecker) declaredInLit(v *types.Var) bool {
	return v.Pos() >= c.lit.Pos() && v.Pos() < c.lit.End()
}

// safeIndex reports whether e is one of the closure's index
// parameters.
func (c *unitChecker) safeIndex(e ast.Expr) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if v, ok := c.info().ObjectOf(id).(*types.Var); ok {
			return c.safe[v]
		}
	}
	return false
}

// classify determines which memory a value gives access to.
func (c *unitChecker) classify(e ast.Expr) valClass {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := c.info().ObjectOf(x).(*types.Var)
		if !ok {
			return classPure
		}
		if c.declaredInLit(v) {
			if cl, ok := c.locals[v]; ok {
				return cl
			}
			return classPure
		}
		return classShared // captured or package-level
	case *ast.SelectorExpr:
		// A qualified package-level variable pkg.V is shared state.
		if v, ok := c.info().Uses[x.Sel].(*types.Var); ok && !v.IsField() {
			return classShared
		}
		base := c.classify(x.X)
		if base == classValueCopy {
			// A pointer-like field copied along with the value still
			// aliases the original's memory.
			if t := c.info().TypeOf(x); t != nil && pointerLike(t) {
				return classShared
			}
		}
		return base
	case *ast.IndexExpr:
		base := c.classify(x.X)
		if base == classShared && c.safeIndex(x.Index) {
			return classWorkerOwned
		}
		if base == classValueCopy {
			if t := c.info().TypeOf(x); t != nil && pointerLike(t) {
				return classShared
			}
		}
		return base
	case *ast.StarExpr:
		return c.classify(x.X)
	case *ast.UnaryExpr:
		return c.classify(x.X)
	case *ast.CallExpr:
		return c.classifyCall(x)
	case *ast.SliceExpr:
		return c.classify(x.X)
	}
	return classPure
}

// bindClass classifies an RHS being bound to a closure local: binding
// a captured value TYPE (struct, array, basic) takes a copy, which is
// the unit's own memory — only its pointer-like fields still reach
// the original.
func (c *unitChecker) bindClass(rhs ast.Expr) valClass {
	cls := c.classify(rhs)
	if cls == classShared {
		if t := c.info().TypeOf(rhs); t != nil && !pointerLike(t) {
			return classValueCopy
		}
	}
	return cls
}

// classifyCall classifies a call result: the recognised pool shape
// (`return s[w]`) projects shared memory down to a per-worker slot.
func (c *unitChecker) classifyCall(call *ast.CallExpr) valClass {
	callee := StaticCallee(c.info(), call)
	if callee == nil {
		return classPure
	}
	cfi := c.prog.FuncOf(callee)
	if cfi == nil || cfi.Summary.Result == nil || cfi.Summary.Result.Param < 0 {
		return classPure
	}
	args := c.calleeArgs(call, callee)
	ra := cfi.Summary.Result
	if ra.Param >= len(args) || ra.IndexedBy >= len(args) {
		return classPure
	}
	if c.classify(args[ra.Param]) == classShared {
		if c.safeIndex(args[ra.IndexedBy]) {
			return classWorkerOwned
		}
		return classShared
	}
	return classPure
}

// calleeArgs assembles the callee-parameter-space argument list
// (receiver first for methods).
func (c *unitChecker) calleeArgs(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var args []ast.Expr
	if callee.Type().(*types.Signature).Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			args = append(args, sel.X)
		} else {
			args = append(args, nil)
		}
	}
	return append(args, call.Args...)
}

func (c *unitChecker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	entryDepth := c.syncDepth
	for _, st := range b.List {
		c.stmt(st)
	}
	// A Lock held at block exit (locked whole-function with a
	// deferred Unlock) keeps covering the rest of the enclosing list.
	if c.syncDepth < entryDepth {
		c.syncDepth = entryDepth
	}
}

func (c *unitChecker) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if d := c.lockDelta(call); d != 0 {
				c.syncDepth += d
				if c.syncDepth < 0 {
					c.syncDepth = 0
				}
				return
			}
		}
		c.expr(st.X)
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			c.expr(rhs)
		}
		for i, lhs := range st.Lhs {
			if st.Tok == token.DEFINE {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					if v, ok := c.info().Defs[id].(*types.Var); ok && i < len(st.Rhs) {
						c.locals[v] = c.bindClass(st.Rhs[i])
						// A local seeded from a safe index (the chunk
						// loop's `i := lo`) stays inside the unit's own
						// range under static chunking, so it projects
						// per-unit slots too.
						if c.safeIndex(st.Rhs[i]) {
							c.safe[v] = true
						}
					}
				}
				continue
			}
			c.write(lhs)
			// Rebinding a closure-local pointer re-classes it; a safe
			// index reassigned from anything but another safe index
			// (i = 0, not the loop's i++) loses its safety.
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := c.info().ObjectOf(id).(*types.Var); ok && c.declaredInLit(v) && i < len(st.Rhs) {
					c.locals[v] = c.bindClass(st.Rhs[i])
					if st.Tok == token.ASSIGN && c.safe[v] && !c.safeIndex(st.Rhs[i]) {
						delete(c.safe, v)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.write(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, name := range vs.Names {
						if v, ok := c.info().Defs[name].(*types.Var); ok && i < len(vs.Values) {
							c.expr(vs.Values[i])
							c.locals[v] = c.bindClass(vs.Values[i])
						}
					}
				}
			}
		}
	case *ast.IfStmt:
		c.stmtOpt(st.Init)
		c.expr(st.Cond)
		c.block(st.Body)
		c.stmtOpt(st.Else)
	case *ast.ForStmt:
		c.stmtOpt(st.Init)
		if st.Cond != nil {
			c.expr(st.Cond)
		}
		c.stmtOpt(st.Post)
		c.block(st.Body)
	case *ast.RangeStmt:
		c.expr(st.X)
		c.block(st.Body)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.expr(r)
		}
	case *ast.SendStmt:
		c.expr(st.Chan)
		c.expr(st.Value)
	case *ast.DeferStmt:
		if c.lockDelta(st.Call) != 0 {
			return // deferred Unlock: the lock covers the remainder
		}
		c.expr(st.Call)
	case *ast.GoStmt:
		c.expr(st.Call)
	case *ast.SwitchStmt:
		c.stmtOpt(st.Init)
		if st.Tag != nil {
			c.expr(st.Tag)
		}
		for _, cl := range st.Body.List {
			for _, s := range cl.(*ast.CaseClause).Body {
				c.stmt(s)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmtOpt(st.Init)
		c.stmtOpt(st.Assign)
		for _, cl := range st.Body.List {
			for _, s := range cl.(*ast.CaseClause).Body {
				c.stmt(s)
			}
		}
	case *ast.BlockStmt:
		c.block(st)
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	}
}

func (c *unitChecker) stmtOpt(st ast.Stmt) {
	if st != nil {
		c.stmt(st)
	}
}

// lockDelta recognises mutex Lock/Unlock calls: +1, -1, or 0.
func (c *unitChecker) lockDelta(call *ast.CallExpr) int {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	f, ok := c.info().Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return 0
	}
	switch f.Name() {
	case "Lock", "RLock":
		return 1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// write checks one lvalue for an unsynchronized shared write.
func (c *unitChecker) write(lhs ast.Expr) {
	if c.syncDepth > 0 {
		return
	}
	target := c.writeTarget(lhs)
	if target != classShared {
		return
	}
	c.pp.Reportf(lhs.Pos(),
		"%s unit writes shared state through %s without synchronization, a per-unit index, or per-worker donation",
		c.execName, exprText(lhs))
}

// writeTarget classifies the memory an lvalue denotes.
func (c *unitChecker) writeTarget(e ast.Expr) valClass {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := c.info().ObjectOf(x).(*types.Var)
		if !ok {
			return classPure
		}
		if c.declaredInLit(v) {
			return classPure // rebinding a local never races
		}
		return classShared
	case *ast.SelectorExpr:
		return c.classify(x)
	case *ast.IndexExpr:
		base := c.classify(x.X)
		if base == classShared && c.safeIndex(x.Index) {
			return classWorkerOwned
		}
		return base
	case *ast.StarExpr:
		return c.classify(x.X)
	}
	return c.classify(e)
}

// expr checks reads-with-effects: calls.
func (c *unitChecker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		c.callExpr(e)
	case *ast.FuncLit:
		c.block(e.Body)
	case *ast.BinaryExpr:
		c.expr(e.X)
		c.expr(e.Y)
	case *ast.UnaryExpr:
		c.expr(e.X)
	case *ast.StarExpr:
		c.expr(e.X)
	case *ast.ParenExpr:
		c.expr(e.X)
	case *ast.SelectorExpr:
		c.expr(e.X)
	case *ast.IndexExpr:
		c.expr(e.X)
		c.expr(e.Index)
	case *ast.SliceExpr:
		c.expr(e.X)
		c.expr(e.Low)
		c.expr(e.High)
		c.expr(e.Max)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				c.expr(kv.Value)
				continue
			}
			c.expr(el)
		}
	case *ast.TypeAssertExpr:
		c.expr(e.X)
	case *ast.KeyValueExpr:
		c.expr(e.Value)
	}
}

// callExpr applies the call rules inside a unit closure.
func (c *unitChecker) callExpr(call *ast.CallExpr) {
	for _, a := range call.Args {
		c.expr(a)
	}
	if tv, ok := c.info().Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.info().Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.block(lit.Body)
		return
	}
	if c.syncDepth > 0 {
		return // serialised under a held mutex
	}

	callee := StaticCallee(c.info(), call)
	if callee == nil {
		// Dynamic dispatch: a captured func value or an interface
		// method on captured state has unknown effects.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			if c.classify(funReceiverOrValue(fun)) == classShared {
				c.pp.Reportf(call.Pos(),
					"%s unit calls captured %s, whose effects on shared state cannot be proven; serialise it under a mutex or donate per-worker state",
					c.execName, exprText(fun))
			}
		}
		return
	}
	if callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "sync", "sync/atomic":
			return // the synchronization primitives themselves
		}
	}
	cfi := c.prog.FuncOf(callee)
	if cfi == nil {
		return // external (stdlib) call: cannot reach simulator state
	}
	if cfi.Summary.WritesGlobal {
		c.pp.Reportf(call.Pos(), "%s unit calls %s, which writes %s",
			c.execName, cfi.Name(), cfi.Summary.GlobalEvidence.Desc)
	}
	args := c.calleeArgs(call, callee)
	for q, arg := range args {
		if arg == nil || c.classify(arg) != classShared {
			continue
		}
		pw := cfi.Summary.ParamWrites[q]
		if pw == nil {
			continue
		}
		if pw.Plain {
			c.pp.Reportf(call.Pos(),
				"%s unit passes captured %s to %s, which writes through it without a per-worker index",
				c.execName, exprText(arg), cfi.Name())
			continue
		}
		for r := range pw.IndexedBy {
			if r >= len(args) || !c.safeIndex(args[r]) {
				c.pp.Reportf(call.Pos(),
					"%s unit passes captured %s to %s, which writes it at an index that is not this unit's worker or unit index",
					c.execName, exprText(arg), cfi.Name())
				break
			}
		}
	}
}

// funReceiverOrValue returns the expression whose aliasing decides a
// dynamic call's safety: the receiver of a selector, or the func
// value itself.
func funReceiverOrValue(fun ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return fun
}
