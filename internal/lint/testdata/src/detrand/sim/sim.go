// Package sim is a detrand fixture: a stand-in simulation package
// where wall-clock and ambient randomness are forbidden.
package sim

import (
	crand "crypto/rand" // want `import of crypto/rand in simulation code`
	"math/rand"         // want `import of math/rand in simulation code`
	"time"
)

// Bad reaches for the host clock inside simulation code.
func Bad() int64 {
	start := time.Now()   // want `time.Now in simulation code`
	_ = time.Since(start) // want `time.Since in simulation code`
	_ = rand.Int()
	var b [8]byte
	_, _ = crand.Read(b[:])
	return start.UnixNano()
}

// Justified carries an explicit exception and stays silent.
func Justified() time.Time {
	//lint:detrand fixture: log timestamps are wall-clock by design
	return time.Now()
}

// Fine uses time only as a unit type, which is deterministic.
func Fine(d time.Duration) time.Duration {
	return d * 2
}
