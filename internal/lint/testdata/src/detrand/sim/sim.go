// Package sim is a detrand fixture: a stand-in simulation package
// where wall-clock and ambient randomness are forbidden.
package sim

import (
	crand "crypto/rand" // want `import of crypto/rand in simulation code`
	"math/rand"         // want `import of math/rand in simulation code`
	"time"
)

// Bad reaches for the host clock inside simulation code.
func Bad() int64 {
	start := time.Now()   // want `time.Now in simulation code`
	_ = time.Since(start) // want `time.Since in simulation code`
	_ = rand.Int()
	var b [8]byte
	_, _ = crand.Read(b[:])
	return start.UnixNano()
}

// BadEventDue decides a scheduled scenario event's firing against the
// host clock instead of the simulated tick counter — the exact bug
// that would make spike/maintenance/storm windows land on different
// ticks from run to run.
func BadEventDue(startTick int64) bool {
	return time.Now().Unix() >= startTick // want `time.Now in simulation code`
}

// Justified carries an explicit exception and stays silent.
func Justified() time.Time {
	//lint:detrand fixture: log timestamps are wall-clock by design
	return time.Now()
}

// Fine uses time only as a unit type, which is deterministic.
func Fine(d time.Duration) time.Duration {
	return d * 2
}
