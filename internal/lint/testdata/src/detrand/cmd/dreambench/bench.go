// Package main is a detrand fixture standing in for the benchmark
// harness: its import path ends in cmd/dreambench, so wall-clock use
// is allowlisted wholesale and nothing below is reported.
package main

import "time"

func main() {
	start := time.Now()
	_ = time.Since(start)
}
