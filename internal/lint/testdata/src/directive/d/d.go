// Package d exercises the directive pseudo-analyzer: exceptions must
// name a real analyzer and carry a justification. A bare directive
// still suppresses its site (so the maporder finding below stays
// silent) but is itself reported.
package d

// Keys collects map keys in map order under a bare //lint:maporder
// directive: the append finding is suppressed, the naked directive is
// flagged instead.
func Keys(m map[string]int) []string {
	var keys []string
	// want+1 `//lint:maporder directive needs a justification`
	//lint:maporder
	for k := range m {
		keys = append(keys, k)
	}
	// want+1 `unknown analyzer "bogus" in //lint: directive`
	//lint:bogus this analyzer does not exist
	return keys
}
