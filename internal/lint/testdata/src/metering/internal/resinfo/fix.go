// Package resinfo is a metering fixture: its import path ends in
// internal/resinfo, so resource-list traversals here must charge the
// search/housekeeping counters.
package resinfo

import (
	"dreamsim/internal/model"
	real "dreamsim/internal/resinfo"
	"dreamsim/internal/reslists"
)

// BadWalk scans the node list without charging a single step.
func BadWalk(nodes []*model.Node, area int64) *model.Node {
	for _, n := range nodes { // want `BadWalk walks a resource list but never charges`
		if n.TotalArea >= area {
			return n
		}
	}
	return nil
}

// GoodWalk meters the same scan.
func GoodWalk(m *real.Manager, nodes []*model.Node, area int64) *model.Node {
	var steps uint64
	var hit *model.Node
	for _, n := range nodes {
		steps++
		if n.TotalArea >= area {
			hit = n
			break
		}
	}
	m.ChargeSearch(steps)
	return hit
}

// BadDiscard throws the traversal cost away twice over.
func BadDiscard(m *real.Manager, l *reslists.List) *model.Entry {
	l.Each(func(e *model.Entry) bool { return true })      // want `steps result of List.Each discarded`
	best, _ := l.FindMin(nil, func(e *model.Entry) int64 { // want `steps result of List.FindMin discarded`
		return e.Config.ReqArea
	})
	m.ChargeSearch(1)
	return best
}

// GoodCharge forwards the steps to the counters.
func GoodCharge(m *real.Manager, l *reslists.List) {
	steps := l.Each(func(e *model.Entry) bool { return true })
	m.ChargeSearch(steps)
}

// JustifiedWalk documents a deliberate exception.
//
//lint:metering fixture: construction-time walk, not simulated work
func JustifiedWalk(configs []*model.Config) int {
	n := 0
	for range configs {
		n++
	}
	return n
}
