// Package serve is a seedflow fixture: its import path ends in
// internal/serve, so the sweep service is held to the same rule as
// the executor-driven packages — any RNG it builds for a unit must
// trace to the job's explicit seed, or a resumed job would re-run its
// remaining units over different streams than the original process.
package serve

import "dreamsim/internal/rng"

// jobCounter is ambient server state a unit seed must never mix in.
var jobCounter uint64

// JobSpec mirrors the submitted sweep spec.
type JobSpec struct {
	Seed  uint64
	Units int
}

// GoodUnitRNG derives a unit's stream from the spec's explicit seed
// and the unit index — pure arithmetic over explicit inputs, so a
// restarted server rebuilds the identical stream.
func GoodUnitRNG(spec JobSpec, unit int) *rng.RNG {
	return rng.New(spec.Seed + uint64(unit)*0x9e3779b97f4a7c15)
}

// BadAmbientUnitRNG seeds a unit from a server-lifetime counter: the
// stream then depends on how many jobs ran before this one in this
// process — exactly what a resume must not observe.
func BadAmbientUnitRNG(spec JobSpec) *rng.RNG {
	jobCounter++
	return rng.New(jobCounter) // want `package-level variable "jobCounter" is ambient state`
}
