// Package core is a seedflow fixture: its import path ends in
// internal/core, so every rng.RNG here must be built from explicit
// seed inputs.
package core

import "dreamsim/internal/rng"

// ambient is exactly the kind of state a unit must never seed from.
var ambient uint64

// Params mirrors a unit's configuration.
type Params struct {
	Seed uint64
	Name string
}

// GoodParam seeds from an explicit parameter.
func GoodParam(seed uint64) *rng.RNG {
	return rng.New(seed)
}

// GoodField seeds from a Seed field, with arithmetic derivation.
func GoodField(p Params, i int) *rng.RNG {
	r := rng.New(p.Seed + uint64(i))
	return rng.New(r.RandUint64() ^ 0x9e3779b97f4a7c15)
}

// GoodLocal traces a local back to the parameter.
func GoodLocal(p Params) *rng.RNG {
	derived := p.Seed * 2654435761
	return rng.New(derived)
}

// BadGlobal seeds from ambient package state.
func BadGlobal() *rng.RNG {
	ambient++
	return rng.New(ambient) // want `package-level variable "ambient" is ambient state`
}

// BadCall seeds from an unrecognised derivation.
func BadCall(p Params) *rng.RNG {
	return rng.New(uint64(len(p.Name)) + entropy()) // want `call to entropy is not a recognised seed derivation`
}

func entropy() uint64 { return 7 }

// Justified documents a deliberate exception.
func Justified() *rng.RNG {
	//lint:seedflow fixture: interactive tool, reproducibility waived
	return rng.New(ambient)
}
