// Package workload is a seedflow fixture: its import path ends in
// internal/workload, so TaskSource constructors here must build their
// rng.RNG from explicit seed inputs — a source seeded from ambient
// state would feed parallel sweep units different task streams
// depending on scheduling order.
package workload

import "dreamsim/internal/rng"

// sourceCounter is ambient state a TaskSource must never seed from.
var sourceCounter uint64

// GenParams mirrors the generator's configuration.
type GenParams struct {
	Seed  uint64
	Tasks int
}

// Generator is a streaming task source over a seeded RNG.
type Generator struct {
	r    *rng.RNG
	left int
}

// GoodNewSource derives the generator stream from the explicit seed.
func GoodNewSource(p GenParams) *Generator {
	root := rng.New(p.Seed)
	return &Generator{r: rng.New(root.RandUint64()), left: p.Tasks}
}

// GoodReplicaSource offsets the seed per replica — pure arithmetic
// over explicit inputs.
func GoodReplicaSource(p GenParams, replica int) *Generator {
	return &Generator{r: rng.New(p.Seed + uint64(replica)*0x9e3779b97f4a7c15), left: p.Tasks}
}

// BadCounterSource seeds each new source from a package counter, so
// the task stream depends on construction order across units.
func BadCounterSource(p GenParams) *Generator {
	sourceCounter++
	return &Generator{r: rng.New(sourceCounter), left: p.Tasks} // want `package-level variable "sourceCounter" is ambient state`
}

// BadDerivedSource launders ambient state through an unrecognised
// helper.
func BadDerivedSource(p GenParams) *Generator {
	return &Generator{r: rng.New(mix(p.Seed)), left: p.Tasks} // want `call to mix is not a recognised seed derivation`
}

func mix(s uint64) uint64 { return s ^ sourceCounter }

// JustifiedSource documents a deliberate exception.
func JustifiedSource(p GenParams) *Generator {
	//lint:seedflow fixture: ad-hoc smoke source, reproducibility waived
	return &Generator{r: rng.New(sourceCounter), left: p.Tasks}
}
