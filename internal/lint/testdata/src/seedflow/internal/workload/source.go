// Package workload is a seedflow fixture: its import path ends in
// internal/workload, so TaskSource constructors here must build their
// rng.RNG from explicit seed inputs — a source seeded from ambient
// state would feed parallel sweep units different task streams
// depending on scheduling order.
package workload

import "dreamsim/internal/rng"

// sourceCounter is ambient state a TaskSource must never seed from.
var sourceCounter uint64

// GenParams mirrors the generator's configuration.
type GenParams struct {
	Seed  uint64
	Tasks int
}

// Generator is a streaming task source over a seeded RNG.
type Generator struct {
	r    *rng.RNG
	left int
}

// GoodNewSource derives the generator stream from the explicit seed.
func GoodNewSource(p GenParams) *Generator {
	root := rng.New(p.Seed)
	return &Generator{r: rng.New(root.RandUint64()), left: p.Tasks}
}

// GoodReplicaSource offsets the seed per replica — pure arithmetic
// over explicit inputs.
func GoodReplicaSource(p GenParams, replica int) *Generator {
	return &Generator{r: rng.New(p.Seed + uint64(replica)*0x9e3779b97f4a7c15), left: p.Tasks}
}

// BadCounterSource seeds each new source from a package counter, so
// the task stream depends on construction order across units.
func BadCounterSource(p GenParams) *Generator {
	sourceCounter++
	return &Generator{r: rng.New(sourceCounter), left: p.Tasks} // want `package-level variable "sourceCounter" is ambient state`
}

// BadDerivedSource launders ambient state through an unrecognised
// helper.
func BadDerivedSource(p GenParams) *Generator {
	return &Generator{r: rng.New(mix(p.Seed)), left: p.Tasks} // want `call to mix is not a recognised seed derivation`
}

func mix(s uint64) uint64 { return s ^ sourceCounter }

// GoodClassSource mirrors the scenario compiler's per-class substream
// scheme: one draw from the explicitly-seeded stream RNG becomes the
// base, and each class derives its own seed from that base and its
// NAME via a seed-deriving helper — so the derivation is traceable
// and a class's stream is independent of class order and count.
func GoodClassSource(p GenParams, names []string) []*Generator {
	root := rng.New(p.Seed)
	seedBase := root.RandUint64()
	out := make([]*Generator, len(names))
	for i, name := range names {
		out[i] = &Generator{r: rng.New(classSeed(seedBase, name)), left: p.Tasks}
	}
	return out
}

// classSeed hashes a class name (FNV-1a) into the seed base; the name
// advertises seed-ness, which is what lets the linter accept it.
func classSeed(base uint64, name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return base ^ h
}

// BadClassSource launders the per-class derivation through a helper
// whose name does not advertise seed-ness, hiding that it also mixes
// in ambient state.
func BadClassSource(p GenParams, names []string) []*Generator {
	out := make([]*Generator, len(names))
	for i, name := range names {
		out[i] = &Generator{r: rng.New(hashName(name)), left: p.Tasks} // want `call to hashName is not a recognised seed derivation`
	}
	return out
}

func hashName(name string) uint64 { return uint64(len(name)) ^ sourceCounter }

// JustifiedSource documents a deliberate exception.
func JustifiedSource(p GenParams) *Generator {
	//lint:seedflow fixture: ad-hoc smoke source, reproducibility waived
	return &Generator{r: rng.New(sourceCounter), left: p.Tasks}
}
