// Package snapshot is a seedflow fixture: its import path ends in
// internal/snapshot, so restore paths here must rebuild RNG streams
// from serialized state or explicit seeds — never from ambient
// process state, which would make a restored run diverge from the
// uninterrupted one.
package snapshot

import "dreamsim/internal/rng"

// restoreEpoch is ambient state a restore must never seed from.
var restoreEpoch uint64

// GoodRestoreRNG rebuilds a stream from the snapshot's serialized
// seed word — an explicit seed input threaded through the decoder.
func GoodRestoreRNG(seedWord uint64) *rng.RNG {
	return rng.New(seedWord)
}

// BadEpochRestoreRNG mixes a process-lifetime epoch into the restored
// stream, so the resumed run draws differently than the original.
func BadEpochRestoreRNG() *rng.RNG {
	restoreEpoch++
	return rng.New(restoreEpoch) // want `package-level variable "restoreEpoch" is ambient state`
}
