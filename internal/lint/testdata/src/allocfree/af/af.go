// Package af exercises the allocfree analyzer: //dreamsim:noalloc
// roots must be allocation-free across their static call closure,
// with the amortized-growth and abort-path exemptions.
package af

import (
	"fmt"
	"sort"
)

const debug = false

// T is the pooled element type the positive cases allocate.
type T struct{ n int }

func (t *T) inc() { t.n++ }

type pool struct{ free []*T }

//dreamsim:noalloc
func Direct(n int) []int {
	return make([]int, n) // want `make allocates in //dreamsim:noalloc closure of Direct`
}

//dreamsim:noalloc
func Transitive() *T {
	return helper()
}

func helper() *T {
	return &T{n: 1} // want `&af.T composite literal escapes to the heap in //dreamsim:noalloc closure of Transitive via helper`
}

//dreamsim:noalloc
func Literals() {
	_ = []int{1, 2}       // want `slice literal allocates`
	_ = map[int]int{1: 2} // want `map literal allocates`
}

//dreamsim:noalloc
func Convert(bs []byte) string {
	return string(bs) // want `string\(\.\.\.\) conversion from a slice allocates`
}

//dreamsim:noalloc
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//dreamsim:noalloc
func Spawn() {
	go noop() // want `go statement allocates a goroutine`
}

func noop() {}

//dreamsim:noalloc
func CallsOwnParam(f func() int) int {
	return f() // each caller proves the value it passes: no finding
}

//dreamsim:noalloc
func Rebound(f func() int) int {
	g := f
	return g() // want `dynamic call of g cannot be proven allocation-free`
}

//dreamsim:noalloc
func External(x int) string {
	return fmt.Sprintf("%d", x) // want `call to fmt.Sprintf \(outside the checked program\) cannot be proven allocation-free`
}

//dreamsim:noalloc
func Allowed(xs []int, target int) int {
	// sort.Search is allowlisted and known not to retain the closure.
	return sort.Search(len(xs), func(i int) bool { return xs[i] >= target })
}

//dreamsim:noalloc
func AbortPaths(x int) error {
	if x < 0 {
		panic(fmt.Sprintf("negative: %d", x)) // panic argument construction is abort-path
	}
	if x > 0 {
		return fmt.Errorf("positive: %d", x) // error construction is abort-path
	}
	return nil
}

//dreamsim:noalloc
func DeadBranch(x int) int {
	if debug && x > 0 {
		return len(fmt.Sprintf("%d", x)) // constant-false guard: the branch is dead
	}
	return x
}

//dreamsim:noalloc
func AppendAmortized(dst []int, v int) []int {
	return append(dst, v) // amortized growth is exempt
}

//dreamsim:noalloc
func PoolGet(p *pool) *T {
	n := len(p.free)
	if n == 0 {
		//lint:allocfree pool miss, amortized away at steady state
		return &T{}
	}
	t := p.free[n-1]
	p.free = p.free[:n-1]
	return t
}

//dreamsim:noalloc
func PrunedEdge() {
	//lint:allocfree opt-in monitoring path, never taken on the gated loop
	monitorTick()
}

func monitorTick() []int {
	return make([]int, 8) // the justified edge above prunes this subtree
}

//dreamsim:noalloc
func Variadic() {
	sink(1, 2, 3) // want `variadic call to af.sink allocates its argument slice`
}

func sink(vs ...int) {
	_ = vs
}

//dreamsim:noalloc
func Closures(n int) {
	_ = func() int { return 0 } // capture-free literals are static
	_ = func() int { return n } // want `func literal capturing n allocates a closure`
}

//dreamsim:noalloc
func MethodValue(t *T) {
	runCB(t.inc) // want `method value t.inc allocates a closure`
}

func runCB(f func()) {
	f()
}
