// Package rng mirrors the simulator's RNG shape for the rngflow
// fixture: the analyzer recognises the stream type by name and the
// internal/rng import-path suffix, and a source-loaded mirror gives
// the dataflow layer accurate retention summaries for the methods.
package rng

// RNG is a splittable pseudo-random stream.
type RNG struct{ s uint64 }

// New derives a fresh stream from a seed.
func New(seed uint64) *RNG {
	return &RNG{s: seed ^ 0x9e3779b97f4a7c15}
}

// Split derives an independent substream; the receiver stays owned by
// its scope.
func (r *RNG) Split() *RNG {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return &RNG{s: r.s ^ 0x9e3779b97f4a7c15}
}

// Float64 draws the next variate in [0, 1).
func (r *RNG) Float64() float64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return float64(r.s>>11) / (1 << 53)
}
