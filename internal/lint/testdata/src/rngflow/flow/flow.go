// Package flow exercises the rngflow analyzer: an *rng.RNG substream
// must stay confined to the scope that derived it — once a stream is
// donated (stored into longer-lived memory or passed to a retaining
// callee), the donor must not touch it again.
package flow

import "dreamsim/internal/lint/testdata/src/rngflow/internal/rng"

type holder struct{ r *rng.RNG }

var sink *rng.RNG

// keep retains its argument: the caller donates the stream.
func keep(r *rng.RNG) { sink = r }

// draw only reads: the caller keeps ownership.
func draw(r *rng.RNG) float64 { return r.Float64() }

func UseAfterDonate(seed uint64) float64 {
	r := rng.New(seed)
	keep(r)
	return r.Float64() // want `RNG substream r is used after being donated to flow.keep`
}

func SecondDonation(seed uint64) {
	r := rng.New(seed)
	keep(r)
	keep(r) // want `RNG substream r is used after being donated to flow.keep`
}

func DonateAlias(h *holder) {
	keep(h.r) // want `RNG owned by h.r is donated to flow.keep`
}

func SplitDerived(h *holder) {
	sub := h.r.Split()
	keep(sub) // a fresh substream handed off: safe
}

func StoreDonates(seed uint64) float64 {
	r := rng.New(seed)
	h := holder{r: r}
	_ = h
	return r.Float64() // want `RNG substream r is used after being donated to a flow.holder literal`
}

func FieldStoreDonates(seed uint64, h *holder) float64 {
	r := rng.New(seed)
	h.r = r
	return r.Float64() // want `RNG substream r is used after being donated to h.r`
}

func BranchExclusive(seed uint64, scenario bool) {
	r := rng.New(seed)
	if scenario {
		keep(r)
	} else {
		keep(r) // exclusive branches: only one donation happens
	}
}

func EarlyReturnDonation(seed uint64, degenerate bool) float64 {
	r := rng.New(seed)
	if degenerate {
		keep(r)
		return 0
	}
	return r.Float64() // the donating branch returned: safe
}

func NonRetainingCallee(h *holder) float64 {
	return draw(h.r) // draw keeps nothing: reading another scope's stream is fine
}
