// Package m is a maporder fixture: order-dependent map iteration in
// every flavour, plus the sanctioned idioms that must stay silent.
package m

import (
	"fmt"
	"io"
	"sort"
)

// BadAppend collects keys in map order and never sorts them.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to "keys" in map order`
		keys = append(keys, k)
	}
	return keys
}

// BadWrite streams rows in map order.
func BadWrite(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration feeds Fprintf`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// BadNonLocal appends into a map-of-slice in map order (the shape of
// the core.New dependency-index bug).
func BadNonLocal(deps map[int][]int) map[int][]int {
	children := map[int][]int{}
	for child, parents := range deps { // want `appends to a non-local destination`
		for _, p := range parents {
			children[p] = append(children[p], child)
		}
	}
	return children
}

// GoodSortedKeys is the sanctioned collect-then-sort idiom.
func GoodSortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// GoodAccumulate folds order-insensitively.
func GoodAccumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Justified documents a deliberate exception.
func Justified(w io.Writer, m map[string]int) {
	//lint:maporder fixture: debug dump, ordering explicitly unspecified
	for k := range m {
		fmt.Fprintln(w, k)
	}
}
