// Package ss exercises the sharedstate analyzer: closures handed to
// the exec worker pool may only write state that is provably theirs —
// a per-unit slot, a per-worker donation, their own value copy, or
// writes serialised by a mutex / sync/atomic.
package ss

import (
	"context"
	"sync"
	"sync/atomic"

	"dreamsim/internal/lint/testdata/src/sharedstate/internal/exec"
)

type params struct {
	Seed uint64
	Out  []int
}

type state struct{ n int }

// scratch mirrors the simulator's per-worker pool shape: get projects
// the worker's own slot out of shared backing memory.
type scratch []*state

func (s scratch) get(w int) *state {
	if s[w] == nil {
		s[w] = &state{}
	}
	return s[w]
}

var hits int

func bumpGlobal() { hits++ }

func bumpAll(out []int) {
	for i := range out {
		out[i]++
	}
}

func setAt(out []int, i, v int) {
	out[i] = v
}

func PerUnitIndex(out []int) error {
	return exec.Do(context.Background(), 4, len(out), func(_ context.Context, u int) error {
		out[u] = u * u // the unit's own slot: safe
		return nil
	})
}

func SharedCounter() error {
	var total int
	return exec.Do(context.Background(), 4, 8, func(_ context.Context, u int) error {
		total += u // want `exec.Do unit writes shared state through total without synchronization`
		return nil
	})
}

func MutexSerialised(sum *int) error {
	var mu sync.Mutex
	return exec.Do(context.Background(), 4, 8, func(_ context.Context, u int) error {
		mu.Lock()
		*sum += u // serialised under the mutex: safe
		mu.Unlock()
		return nil
	})
}

func AtomicCounter() error {
	var total atomic.Int64
	return exec.Do(context.Background(), 4, 8, func(_ context.Context, u int) error {
		total.Add(int64(u)) // sync/atomic: safe
		return nil
	})
}

func ValueCopy(p params) error {
	return exec.Do(context.Background(), 4, 2, func(_ context.Context, u int) error {
		q := p
		q.Seed = uint64(u) // the unit's own copy: safe
		q.Out[0] = u       // want `exec.Do unit writes shared state through q.Out`
		return nil
	})
}

func WorkerDonation(pool scratch) error {
	return exec.DoWorkers(context.Background(), 2, 8, func(_ context.Context, w, u int) error {
		st := pool.get(w)
		st.n++ // the worker's donated slot: safe
		return nil
	})
}

func WrongIndexDonation(pool scratch) error {
	return exec.DoWorkers(context.Background(), 2, 8, func(_ context.Context, w, u int) error {
		st := pool.get(0) // want `exec.DoWorkers unit passes captured pool to \(scratch\).get, which writes it at an index that is not this unit's worker or unit index`
		st.n++            // want `exec.DoWorkers unit writes shared state through st.n`
		return nil
	})
}

func HelperPlainWrite(out []int) error {
	return exec.Do(context.Background(), 4, len(out), func(_ context.Context, u int) error {
		bumpAll(out) // want `exec.Do unit passes captured out to bumpAll, which writes through it without a per-worker index`
		return nil
	})
}

func HelperIndexedWrite(out []int) error {
	return exec.Do(context.Background(), 4, len(out), func(_ context.Context, u int) error {
		setAt(out, u, u) // helper writes only at this unit's index: safe
		setAt(out, 0, u) // want `exec.Do unit passes captured out to setAt, which writes it at an index that is not this unit's worker or unit index`
		return nil
	})
}

func CapturedFunc(notify func()) error {
	return exec.Do(context.Background(), 4, 2, func(_ context.Context, u int) error {
		notify() // want `exec.Do unit calls captured notify, whose effects on shared state cannot be proven`
		return nil
	})
}

func GlobalViaHelper() error {
	return exec.Do(context.Background(), 4, 2, func(_ context.Context, u int) error {
		bumpGlobal() // want `exec.Do unit calls bumpGlobal, which writes package-level variable "hits"`
		return nil
	})
}
