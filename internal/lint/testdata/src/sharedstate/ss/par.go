// The par.ForChunks cases: intra-run worker closures obey the same
// shared-state contract as exec units. The shape under test is the
// resource manager's capability shards — per-chunk rebuild writes are
// fine, but a write to a fixed shard slot or to manager-wide state
// from inside a chunk closure races with the sibling workers.
package ss

import (
	"dreamsim/internal/lint/testdata/src/sharedstate/internal/par"
)

type shard struct {
	count int
	ver   uint64
}

type shardedMgr struct {
	shards []shard
	ver    uint64
}

func RebuildShards(m *shardedMgr) {
	par.ForChunks(4, len(m.shards), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			m.shards[i].count = 0 // the chunk's own shards: safe
		}
		m.shards[0].ver++ // want `par.ForChunks unit writes shared state through m.shards\[\.\.\.\].ver`
		m.ver++           // want `par.ForChunks unit writes shared state through m.ver`
	})
}

func ChunkSums(vals []int64, sums []int64) {
	par.ForChunks(len(sums), len(vals), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sums[w] += vals[i] // the worker's own slot: safe
		}
	})
}

func EscapedChunkIndex(out []int) {
	par.ForChunks(4, len(out), func(w, lo, hi int) {
		i := lo
		i = 0      // reassignment off the chunk bound forfeits safety
		out[i] = w // want `par.ForChunks unit writes shared state through out\[\.\.\.\]`
	})
}

func ChunkCapturedFunc(flush func()) {
	par.ForChunks(4, 8, func(w, lo, hi int) {
		flush() // want `par.ForChunks unit calls captured flush, whose effects on shared state cannot be proven`
	})
}
