// Package par mirrors the intra-run worker pool's API shape for the
// sharedstate fixture: the analyzer recognises chunk dispatchers by
// the internal/par import-path suffix and the ForChunks name, so the
// fixture needs its own copy with a matching signature.
package par

// ForChunks splits [0, n) into contiguous chunks and invokes
// fn(w, lo, hi) per chunk (here: sequentially — only the signature
// matters to the analyzer).
func ForChunks(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	k := workers
	if k < 1 {
		k = 1
	}
	if n < k {
		k = n
	}
	size := (n + k - 1) / k
	for w := 0; w*size < n; w++ {
		lo, hi := w*size, (w+1)*size
		if hi > n {
			hi = n
		}
		fn(w, lo, hi)
	}
}
