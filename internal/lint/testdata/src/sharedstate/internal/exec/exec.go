// Package exec mirrors the simulator executor's API shape for the
// sharedstate fixture: the analyzer recognises worker-pool callees by
// the internal/exec import-path suffix and the Do/DoWorkers names, so
// the fixture needs its own copy with matching signatures.
package exec

import "context"

// Do runs n units on up to workers goroutines (here: sequentially —
// only the signature matters to the analyzer).
func Do(ctx context.Context, workers, n int, unit func(ctx context.Context, u int) error) error {
	for u := 0; u < n; u++ {
		if err := unit(ctx, u); err != nil {
			return err
		}
	}
	return nil
}

// DoWorkers is Do with the worker index exposed to the unit.
func DoWorkers(ctx context.Context, workers, n int, unit func(ctx context.Context, w, u int) error) error {
	for u := 0; u < n; u++ {
		if err := unit(ctx, 0, u); err != nil {
			return err
		}
	}
	return nil
}
