package exec_test

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"dreamsim/internal/exec"
)

func TestDoRunsEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var done [n]atomic.Int64
			err := exec.Do(context.Background(), workers, n, func(_ context.Context, i int) error {
				done[i].Add(1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := range done {
				if got := done[i].Load(); got != 1 {
					t.Fatalf("unit %d ran %d times", i, got)
				}
			}
		})
	}
}

func TestDoSequentialOrder(t *testing.T) {
	var order []int
	err := exec.Do(context.Background(), 1, 5, func(_ context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("workers=1 order %v, want ascending", order)
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("unit 3 failed")
	errB := errors.New("unit 7 failed")
	for _, workers := range []int{1, 4} {
		err := exec.Do(context.Background(), workers, 10, func(_ context.Context, i int) error {
			switch i {
			case 3:
				return errA
			case 7:
				return errB
			}
			return nil
		})
		// Unit 3 is claimed before unit 7, so its error always wins.
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want %v", workers, err, errA)
		}
	}
}

func TestDoCancelsRemainingUnits(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := exec.Do(context.Background(), 2, 1000, func(_ context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran.Load() == 1000 {
		t.Fatal("cancellation did not skip any unit")
	}
}

func TestDoHonorsParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := exec.Do(ctx, 4, 10, func(context.Context, int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapAssemblesInOrder(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		out, err := exec.Map(context.Background(), workers, 50, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	out, err := exec.Map(context.Background(), 2, 10, func(_ context.Context, i int) (int, error) {
		if i == 4 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, error)", out, err)
	}
}

// TestDoWorkersExclusiveIdentity pins the contract DoWorkers adds
// over Do: a worker index is never held by two units at once, so
// per-worker scratch state needs no locking.
func TestDoWorkersExclusiveIdentity(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 200
			busy := make([]atomic.Bool, workers)
			var ran atomic.Int64
			err := exec.DoWorkers(context.Background(), workers, n,
				func(_ context.Context, w, i int) error {
					if w < 0 || w >= workers {
						return fmt.Errorf("worker index %d out of range", w)
					}
					if !busy[w].CompareAndSwap(false, true) {
						return fmt.Errorf("worker %d ran two units concurrently", w)
					}
					ran.Add(1)
					busy[w].Store(false)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if got := ran.Load(); got != n {
				t.Fatalf("ran %d of %d units", got, n)
			}
		})
	}
}

// TestDoWorkersSequentialIsWorkerZero: the workers <= 1 fast path
// claims every unit as worker 0.
func TestDoWorkersSequentialIsWorkerZero(t *testing.T) {
	err := exec.DoWorkers(context.Background(), 1, 10, func(_ context.Context, w, _ int) error {
		if w != 0 {
			return fmt.Errorf("sequential run saw worker %d", w)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapWorkersAssemblesInOrder mirrors TestMapAssemblesInOrder for
// the worker-identity variant.
func TestMapWorkersAssemblesInOrder(t *testing.T) {
	out, err := exec.MapWorkers(context.Background(), 4, 50,
		func(_ context.Context, _, i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d", i, v)
		}
	}
}
