// Package exec is the experiment-level parallel executor: it fans
// independent simulation units (matrix cells, scenario halves,
// replication seeds) out across a bounded worker pool. Units are
// claimed in index order, results are assembled by index, and the
// first unit error cancels the remaining unclaimed units via context
// — so a failed sweep reports the same error a sequential sweep
// would, and a successful sweep produces results in the same slots
// regardless of worker count or OS scheduling.
//
// The executor imposes no determinism of its own; it relies on every
// unit being a pure function of its index (in DReAMSim each unit
// derives all randomness from its own Params.Seed), which is what
// makes parallel sweeps byte-identical to sequential ones.
package exec

import (
	"context"
	"sync"
	"sync/atomic"
)

// Do runs n independent units on at most workers goroutines. Units
// are claimed in index order; workers <= 1 degenerates to a plain
// sequential loop (today's behavior, zero goroutines). The first
// error — by unit index, not by wall-clock — is returned, and its
// occurrence cancels the context passed to still-unclaimed units.
// A cancelled parent context is returned as-is.
func Do(ctx context.Context, workers, n int, unit func(ctx context.Context, i int) error) error {
	return DoWorkers(ctx, workers, n, func(ctx context.Context, _, i int) error {
		return unit(ctx, i)
	})
}

// DoWorkers is Do with the identity of the claiming worker passed to
// each unit: w is stable for one goroutine's whole unit stream and no
// two concurrent units ever share it, so a caller can hand each
// worker exclusive reusable state — a run context, a scratch arena —
// indexed by w, without locking. Sequential execution (workers <= 1)
// claims everything as worker 0.
func DoWorkers(ctx context.Context, workers, n int, unit func(ctx context.Context, w, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := unit(ctx, 0, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var next atomic.Int64
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || wctx.Err() != nil {
					return
				}
				if err := unit(wctx, w, i); err != nil {
					errs[i] = err
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	// Report the lowest-index failure so the error a caller sees does
	// not depend on goroutine scheduling.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map runs fn for every index in [0, n) under Do's scheduling rules
// and assembles the results in index order. On error the partial
// results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapWorkers(ctx, workers, n, func(ctx context.Context, _, i int) (T, error) {
		return fn(ctx, i)
	})
}

// MapWorkers is Map with DoWorkers' worker identity passed to fn.
func MapWorkers[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, w, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := DoWorkers(ctx, workers, n, func(ctx context.Context, w, i int) error {
		v, err := fn(ctx, w, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
