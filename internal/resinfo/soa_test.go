package resinfo_test

import (
	"fmt"
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/rng"
	"dreamsim/internal/snapshot"
)

// parDuo mirrors transitions over a sequential manager and a manager
// whose scan kernels are forced onto the worker pool (parSpanMin
// lowered to 1 so even tiny shards dispatch), then compares every
// placement query result and every metered counter. This is the
// determinism gate for the parallel argmin/first-fit reductions:
// results must be byte-for-byte those of the in-order walk no matter
// how the OS schedules the workers.
type parDuo struct {
	t          *testing.T
	seq, par   *resinfo.Manager
	seqN, parN []*model.Node
	seqC, parC []*model.Config
}

func newParDuo(t *testing.T, seed uint64, nodes, configs int, caps []string, workers int) *parDuo {
	t.Helper()
	seqN, seqC := population(seed, nodes, configs, caps)
	parN, parC := population(seed, nodes, configs, caps)
	seq, err := resinfo.New(seqN, seqC, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := resinfo.New(parN, parC, &metrics.Counters{}, resinfo.WithIntraParallel(workers))
	if err != nil {
		t.Fatal(err)
	}
	if par.IntraParallel() != workers {
		t.Fatalf("scan pool width %d, requested %d", par.IntraParallel(), workers)
	}
	return &parDuo{t: t, seq: seq, par: par, seqN: seqN, parN: parN, seqC: seqC, parC: parC}
}

func (d *parDuo) queryAll(cfgNo int) {
	d.t.Helper()
	sb, pb := d.seq.BestBlankNode(d.seqC[cfgNo]), d.par.BestBlankNode(d.parC[cfgNo])
	if (sb == nil) != (pb == nil) || (sb != nil && sb.No != pb.No) {
		d.t.Fatalf("BestBlankNode(C%d) diverged: sequential %v, parallel %v", cfgNo, sb, pb)
	}
	sp, pp := d.seq.BestPartiallyBlankNode(d.seqC[cfgNo]), d.par.BestPartiallyBlankNode(d.parC[cfgNo])
	if (sp == nil) != (pp == nil) || (sp != nil && sp.No != pp.No) {
		d.t.Fatalf("BestPartiallyBlankNode(C%d) diverged: sequential %v, parallel %v", cfgNo, sp, pp)
	}
	if sf, pf := d.seq.AnyBusyNodeCouldFit(d.seqC[cfgNo]), d.par.AnyBusyNodeCouldFit(d.parC[cfgNo]); sf != pf {
		d.t.Fatalf("AnyBusyNodeCouldFit(C%d) diverged: sequential %v, parallel %v", cfgNo, sf, pf)
	}
	sn, se := d.seq.FindAnyIdleNode(d.seqC[cfgNo])
	pn, pe := d.par.FindAnyIdleNode(d.parC[cfgNo])
	if (sn == nil) != (pn == nil) || (sn != nil && sn.No != pn.No) || len(se) != len(pe) {
		d.t.Fatalf("FindAnyIdleNode(C%d) diverged: sequential %v/%d, parallel %v/%d",
			cfgNo, sn, len(se), pn, len(pe))
	}
	sc, pc := d.seq.Counters(), d.par.Counters()
	if sc.SchedulerSearch != pc.SchedulerSearch || sc.HousekeepingSteps != pc.HousekeepingSteps {
		d.t.Fatalf("metering diverged: sequential %d/%d, parallel %d/%d",
			sc.SchedulerSearch, sc.HousekeepingSteps, pc.SchedulerSearch, pc.HousekeepingSteps)
	}
}

// TestParallelScanEquivalenceProperty forces the pooled scan kernels
// on a mixed-capability population and drives both managers through a
// mirrored transition/query mix at pool widths 2, 4 and 8.
func TestParallelScanEquivalenceProperty(t *testing.T) {
	defer resinfo.SetParSpanMinForTest(1)()
	for _, workers := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("workers-%d", workers), func(t *testing.T) {
			const nodes, configs, steps = 120, 20, 2500
			d := newParDuo(t, 7, nodes, configs, []string{"bram", "dsp", "serdes"}, workers)
			r := rng.New(1313)
			for step := 0; step < steps; step++ {
				ni := r.Intn(nodes)
				sn, pn := d.seqN[ni], d.parN[ni]
				switch r.Intn(4) {
				case 0:
					ci := r.Intn(configs)
					sc, pc := d.seqC[ci], d.parC[ci]
					if !sn.PartialMode && len(sn.Entries) > 0 {
						continue
					}
					if sc.ReqArea > sn.AvailableArea || !sn.HasCaps(sc.RequiredCaps) {
						continue
					}
					if _, err := d.seq.Configure(sn, sc); err != nil {
						t.Fatal(err)
					}
					if _, err := d.par.Configure(pn, pc); err != nil {
						t.Fatal(err)
					}
				case 1:
					idle := sn.IdleEntries()
					if len(idle) == 0 {
						continue
					}
					k := r.IntRange(1, len(idle))
					pIdle := pn.IdleEntries()
					if err := d.seq.EvictIdle(sn, idle[:k]); err != nil {
						t.Fatal(err)
					}
					if err := d.par.EvictIdle(pn, pIdle[:k]); err != nil {
						t.Fatal(err)
					}
				case 2:
					if len(sn.Entries) == 0 || sn.RunningTasks() > 0 {
						continue
					}
					if err := d.seq.BlankNode(sn); err != nil {
						t.Fatal(err)
					}
					if err := d.par.BlankNode(pn); err != nil {
						t.Fatal(err)
					}
				case 3:
					d.queryAll(r.Intn(configs))
				}
				if step%41 == 0 {
					d.queryAll(r.Intn(configs))
					if err := d.par.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			d.queryAll(0)
		})
	}
}

// TestScanBestHandlesPostBuildCapMutation pins the degrade rule: a
// query whose capability was never registered at build time (here via
// direct post-construction Caps mutation, as resinfo_test does) must
// fall back to the per-node string test over every shard rather than
// conclude "nothing can host it" from the mask space.
func TestScanBestHandlesPostBuildCapMutation(t *testing.T) {
	nodes, cfgs := population(5, 40, 8, []string{"bram"})
	m, err := resinfo.New(nodes, cfgs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	// "ghost" was never seen by CapBits: reqMask cannot encode it.
	probe := &model.Config{No: 99, ReqArea: 100, ConfigTime: 5, RequiredCaps: []string{"ghost"}}
	if n := m.BestBlankNode(probe); n != nil {
		t.Fatalf("no node carries 'ghost' yet BestBlankNode returned %v", n)
	}
	// After mutation the unregistered capability must be findable via
	// the HasCaps fallback. The SoA mask for the node is stale (the
	// mask space cannot express 'ghost'), which is exactly why the
	// degrade rule scans all shards with the string test.
	nodes[7].Caps = append(nodes[7].Caps, "ghost")
	if n := m.BestBlankNode(probe); n == nil || n.No != 7 {
		t.Fatalf("BestBlankNode missed the post-build capability: got %v, want node 7", n)
	}
}

// TestShardVersionsGateSpeculation pins the validity protocol the core
// batcher relies on: a decision snapshot is invalidated by transitions
// on shards its configuration can reach and untouched by transitions
// on incompatible shards.
func TestShardVersionsGateSpeculation(t *testing.T) {
	mk := func(no int, caps ...string) *model.Node {
		n := model.NewNode(no, 3000, true)
		n.Caps = caps
		return n
	}
	nodes := []*model.Node{mk(0, "bram"), mk(1, "bram"), mk(2, "dsp"), mk(3)}
	cfgBram := &model.Config{No: 0, ReqArea: 500, ConfigTime: 10, RequiredCaps: []string{"bram"}}
	cfgDsp := &model.Config{No: 1, ReqArea: 500, ConfigTime: 10, RequiredCaps: []string{"dsp"}}
	m, err := resinfo.New(nodes, []*model.Config{cfgBram, cfgDsp}, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	if m.ShardCount() != 3 {
		t.Fatalf("expected 3 capability classes, got %d", m.ShardCount())
	}

	snap := m.ShardVersions(nil)
	if !m.ShardsUnchangedFor(cfgBram, snap) {
		t.Fatal("fresh snapshot should validate")
	}
	if !m.ShardsUnchangedFor(nil, snap) {
		t.Fatal("nil config touches only static data; always valid")
	}

	// A transition on the dsp shard must not invalidate a bram query...
	if _, err := m.Configure(nodes[2], cfgDsp); err != nil {
		t.Fatal(err)
	}
	if !m.ShardsUnchangedFor(cfgBram, snap) {
		t.Fatal("incompatible-shard transition invalidated a bram decision")
	}
	// ...but must invalidate a dsp query, and any unregistered-cap
	// query (which degrades to an all-shard scan).
	if m.ShardsUnchangedFor(cfgDsp, snap) {
		t.Fatal("dsp transition not seen by a dsp decision")
	}
	ghost := &model.Config{No: 9, ReqArea: 100, ConfigTime: 5, RequiredCaps: []string{"ghost"}}
	if m.ShardsUnchangedFor(ghost, snap) {
		t.Fatal("unregistered-cap query must conservatively watch every shard")
	}
	// A bram transition invalidates the bram view.
	if _, err := m.Configure(nodes[0], cfgBram); err != nil {
		t.Fatal(err)
	}
	if m.ShardsUnchangedFor(cfgBram, snap) {
		t.Fatal("bram transition not seen by a bram decision")
	}
	// A stale-length snapshot never validates.
	if m.ShardsUnchangedFor(cfgBram, snap[:1]) {
		t.Fatal("length-mismatched snapshot validated")
	}
}

// TestShadowSearchMatchesLive drives the same queries through a shadow
// and the live manager: identical results, and TakeCharges must equal
// the live metering delta so deferred commits reproduce the counters
// exactly.
func TestShadowSearchMatchesLive(t *testing.T) {
	nodes, cfgs := population(11, 80, 12, []string{"bram", "dsp"})
	m, err := resinfo.New(nodes, cfgs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	// Put some state in so the queries have structure to disagree on.
	for i := 0; i < 40; i++ {
		n := m.BestBlankNode(cfgs[i%len(cfgs)])
		if n == nil {
			continue
		}
		if _, err := m.Configure(n, cfgs[i%len(cfgs)]); err != nil {
			t.Fatal(err)
		}
	}
	sh := m.Shadow()
	for i, cfg := range cfgs {
		liveBefore := m.Counters().SchedulerSearch
		ln := m.BestBlankNode(cfg)
		lp := m.BestPartiallyBlankNode(cfg)
		lf := m.AnyBusyNodeCouldFit(cfg)
		liveDelta := m.Counters().SchedulerSearch - liveBefore

		shCfg := sh.Configs()[i]
		sn := sh.BestBlankNode(shCfg)
		sp := sh.BestPartiallyBlankNode(shCfg)
		sf := sh.AnyBusyNodeCouldFit(shCfg)
		search, housekeep := sh.TakeCharges()

		if (ln == nil) != (sn == nil) || (ln != nil && ln.No != sn.No) {
			t.Fatalf("C%d: shadow BestBlankNode %v, live %v", cfg.No, sn, ln)
		}
		if (lp == nil) != (sp == nil) || (lp != nil && lp.No != sp.No) {
			t.Fatalf("C%d: shadow BestPartiallyBlankNode %v, live %v", cfg.No, sp, lp)
		}
		if lf != sf {
			t.Fatalf("C%d: shadow AnyBusyNodeCouldFit %v, live %v", cfg.No, sf, lf)
		}
		if search != liveDelta || housekeep != 0 {
			t.Fatalf("C%d: shadow charges %d/%d, live delta %d/0", cfg.No, search, housekeep, liveDelta)
		}
	}
	// SyncShadow after live transitions heals the scalar drift.
	victim := m.BestBlankNode(cfgs[0])
	if victim != nil {
		if _, err := m.Configure(victim, cfgs[0]); err != nil {
			t.Fatal(err)
		}
	}
	m.SyncShadow(sh)
	lb, sb := m.BestBlankNode(cfgs[0]), sh.BestBlankNode(sh.Configs()[0])
	sh.TakeCharges()
	if (lb == nil) != (sb == nil) || (lb != nil && lb.No != sb.No) {
		t.Fatalf("post-sync shadow BestBlankNode %v, live %v", sb, lb)
	}
}

// TestSoASnapshotRoundTrip pins the checkpoint contract for the SoA
// block: encode a mid-run manager, restore into a fresh population,
// and require the restored SoA arrays, shard membership and query
// answers to be equivalent (RestoreState rebuilds the block through
// reindex, so CheckInvariants cross-validates it against node state).
func TestSoASnapshotRoundTrip(t *testing.T) {
	nodes, cfgs := population(21, 64, 10, []string{"bram", "dsp"})
	m, err := resinfo.New(nodes, cfgs, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	taskByNo := map[int]*model.Task{}
	for i := 0; i < 30; i++ {
		cfg := cfgs[i%len(cfgs)]
		n := m.BestBlankNode(cfg)
		if n == nil {
			continue
		}
		e, err := m.Configure(n, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			task := &model.Task{No: i, AssignedConfig: cfg.No}
			if err := m.StartTask(e, task); err != nil {
				t.Fatal(err)
			}
			taskByNo[i] = task
		}
	}

	var w snapshot.Writer
	m.EncodeState(&w)

	freshN, freshC := population(21, 64, 10, []string{"bram", "dsp"})
	m2, err := resinfo.New(freshN, freshC, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	r := snapshot.NewReader(w.Bytes())
	if err := m2.RestoreState(r, func(no int) *model.Task {
		if tk := taskByNo[no]; tk != nil {
			cp := *tk
			return &cp
		}
		return &model.Task{No: no, AssignedConfig: -1}
	}); err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatalf("restored manager: %v", err)
	}
	if m.ShardCount() != m2.ShardCount() {
		t.Fatalf("shard count diverged: %d vs %d", m.ShardCount(), m2.ShardCount())
	}
	for _, cfg := range cfgs {
		a := m.BestBlankNode(cfg)
		b := m2.BestBlankNode(cfg)
		if (a == nil) != (b == nil) || (a != nil && a.No != b.No) {
			t.Fatalf("C%d: BestBlankNode diverged after restore: %v vs %v", cfg.No, a, b)
		}
		ap := m.BestPartiallyBlankNode(cfg)
		bp := m2.BestPartiallyBlankNode(cfg)
		if (ap == nil) != (bp == nil) || (ap != nil && ap.No != bp.No) {
			t.Fatalf("C%d: BestPartiallyBlankNode diverged after restore: %v vs %v", cfg.No, ap, bp)
		}
		if m.AnyBusyNodeCouldFit(cfg) != m2.AnyBusyNodeCouldFit(cfg) {
			t.Fatalf("C%d: AnyBusyNodeCouldFit diverged after restore", cfg.No)
		}
	}
}

// BenchmarkScan5000 is the placement-scan microbench the intra-run
// speedup acceptance gate reads: the full query+transition cycle over
// a 5000-node population, sequential versus pooled kernels. On a
// multi-core host ip-4 must beat ip-1 by >= 1.5x; on a single-core
// box the pooled cells measure contention and dreambench labels them
// accordingly.
func BenchmarkScan5000(b *testing.B) {
	for _, ip := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ip-%d", ip), func(b *testing.B) {
			var opts []resinfo.Option
			if ip > 1 {
				opts = append(opts, resinfo.WithIntraParallel(ip))
			}
			sb := newSearchBench(b, 5000, opts...)
			if got := sb.m.IntraParallel(); (ip > 1 && got != ip) || (ip == 1 && got != 1) {
				b.Fatalf("pool width %d, requested %d", got, ip)
			}
			for i := 0; i < 32; i++ {
				sb.cycle(b, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sb.cycle(b, i)
			}
		})
	}
}
