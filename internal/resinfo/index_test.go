package resinfo_test

// Equivalence property test for the indexed search fast path: a
// linear-mode and a fast-mode Manager are driven through the same
// randomized transition sequence over identical populations; after
// every step each search query must return the same resource and
// both counter sets must be bit-identical.

import (
	"fmt"
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/rng"
)

// population synthesises nodes and configs; called twice per scenario
// so each manager owns an independent but identical copy.
func population(seed uint64, nodes, configs int, caps []string) ([]*model.Node, []*model.Config) {
	r := rng.New(seed)
	ns := make([]*model.Node, nodes)
	for i := range ns {
		partial := r.Bool(0.5)
		ns[i] = model.NewNode(i, int64(r.IntRange(1000, 4000)), partial)
		for _, c := range caps {
			if r.Bool(0.6) {
				ns[i].Caps = append(ns[i].Caps, c)
			}
		}
	}
	cs := make([]*model.Config, configs)
	for i := range cs {
		cs[i] = &model.Config{
			No:         i,
			ReqArea:    int64(r.IntRange(200, 2000)),
			Ptype:      model.PTypeSoftCore,
			ConfigTime: int64(r.IntRange(10, 20)),
		}
		for _, c := range caps {
			if r.Bool(0.2) {
				cs[i].RequiredCaps = append(cs[i].RequiredCaps, c)
			}
		}
	}
	return ns, cs
}

// duo is the linear/fast manager pair under mirrored transitions.
type duo struct {
	t           *testing.T
	lin, fast   *resinfo.Manager
	linN, fastN []*model.Node
	linC, fastC []*model.Config
}

func newDuo(t *testing.T, seed uint64, nodes, configs int, caps []string) *duo {
	t.Helper()
	linN, linC := population(seed, nodes, configs, caps)
	fastN, fastC := population(seed, nodes, configs, caps)
	lin, err := resinfo.New(linN, linC, &metrics.Counters{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := resinfo.New(fastN, fastC, &metrics.Counters{}, resinfo.WithFastSearch())
	if err != nil {
		t.Fatal(err)
	}
	if !fast.FastSearch() {
		t.Fatal("fast manager did not build its index")
	}
	return &duo{t: t, lin: lin, fast: fast, linN: linN, fastN: fastN, linC: linC, fastC: fastC}
}

// checkCounters asserts both managers charged identical steps.
func (d *duo) checkCounters() {
	d.t.Helper()
	lc, fc := d.lin.Counters(), d.fast.Counters()
	if lc.SchedulerSearch != fc.SchedulerSearch {
		d.t.Fatalf("SchedulerSearch diverged: linear %d, fast %d", lc.SchedulerSearch, fc.SchedulerSearch)
	}
	if lc.HousekeepingSteps != fc.HousekeepingSteps {
		d.t.Fatalf("HousekeepingSteps diverged: linear %d, fast %d", lc.HousekeepingSteps, fc.HousekeepingSteps)
	}
	if lc.Reconfigurations != fc.Reconfigurations || lc.ConfigurationTime != fc.ConfigurationTime {
		d.t.Fatalf("reconfiguration counters diverged")
	}
}

// queryAll runs every accelerated query on both managers and compares
// results; cfg is the probe configuration (same No on both sides).
func (d *duo) queryAll(cfgNo int, area int64) {
	d.t.Helper()
	lb, fb := d.lin.BestBlankNode(d.linC[cfgNo]), d.fast.BestBlankNode(d.fastC[cfgNo])
	if (lb == nil) != (fb == nil) || (lb != nil && lb.No != fb.No) {
		d.t.Fatalf("BestBlankNode(C%d) diverged: linear %v, fast %v", cfgNo, lb, fb)
	}
	lp, fp := d.lin.BestPartiallyBlankNode(d.linC[cfgNo]), d.fast.BestPartiallyBlankNode(d.fastC[cfgNo])
	if (lp == nil) != (fp == nil) || (lp != nil && lp.No != fp.No) {
		d.t.Fatalf("BestPartiallyBlankNode(C%d) diverged: linear %v, fast %v", cfgNo, lp, fp)
	}
	if lf, ff := d.lin.AnyBusyNodeCouldFit(d.linC[cfgNo]), d.fast.AnyBusyNodeCouldFit(d.fastC[cfgNo]); lf != ff {
		d.t.Fatalf("AnyBusyNodeCouldFit(C%d) diverged: linear %v, fast %v", cfgNo, lf, ff)
	}
	lc, fc := d.lin.FindClosestConfig(area), d.fast.FindClosestConfig(area)
	if (lc == nil) != (fc == nil) || (lc != nil && lc.No != fc.No) {
		d.t.Fatalf("FindClosestConfig(%d) diverged: linear %v, fast %v", area, lc, fc)
	}
	lpc, fpc := d.lin.FindPreferredConfig(cfgNo), d.fast.FindPreferredConfig(cfgNo)
	if (lpc == nil) != (fpc == nil) || (lpc != nil && lpc.No != fpc.No) {
		d.t.Fatalf("FindPreferredConfig(%d) diverged", cfgNo)
	}
	// Missing config number: miss charge must match too.
	d.lin.FindPreferredConfig(-7)
	d.fast.FindPreferredConfig(-7)
	d.checkCounters()
}

func TestFastSearchEquivalenceProperty(t *testing.T) {
	for _, tc := range []struct {
		name string
		caps []string
	}{
		{"homogeneous", nil},
		{"capabilities", []string{"bram", "dsp", "serdes"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const nodes, configs, steps = 60, 25, 4000
			d := newDuo(t, 42, nodes, configs, tc.caps)
			r := rng.New(99)
			var nextTask int
			running := map[int][]*model.Task{} // node pos -> tasks (both sides share structure)
			fastTasks := map[*model.Task]*model.Task{}

			for step := 0; step < steps; step++ {
				op := r.Intn(6)
				ni := r.Intn(nodes)
				ln, fn := d.linN[ni], d.fastN[ni]
				switch op {
				case 0: // Configure a random config that fits.
					ci := r.Intn(configs)
					lc, fc := d.linC[ci], d.fastC[ci]
					if !ln.PartialMode && len(ln.Entries) > 0 {
						continue
					}
					if lc.ReqArea > ln.AvailableArea || !ln.HasCaps(lc.RequiredCaps) {
						continue
					}
					if _, err := d.lin.Configure(ln, lc); err != nil {
						t.Fatal(err)
					}
					if _, err := d.fast.Configure(fn, fc); err != nil {
						t.Fatal(err)
					}
				case 1: // Start a task on a random idle entry.
					idle := ln.IdleEntries()
					if len(idle) == 0 || (!ln.PartialMode && ln.RunningTasks() > 0) {
						continue
					}
					ei := r.Intn(len(idle))
					le := idle[ei]
					fe := fn.IdleEntries()[ei]
					lt := &model.Task{No: nextTask, AssignedConfig: -1}
					ft := &model.Task{No: nextTask, AssignedConfig: -1}
					nextTask++
					if err := d.lin.StartTask(le, lt); err != nil {
						t.Fatal(err)
					}
					if err := d.fast.StartTask(fe, ft); err != nil {
						t.Fatal(err)
					}
					running[ni] = append(running[ni], lt)
					fastTasks[lt] = ft
				case 2: // Finish a random running task.
					if len(running[ni]) == 0 {
						continue
					}
					ti := r.Intn(len(running[ni]))
					lt := running[ni][ti]
					running[ni] = append(running[ni][:ti], running[ni][ti+1:]...)
					if _, err := d.lin.FinishTask(ln, lt); err != nil {
						t.Fatal(err)
					}
					if _, err := d.fast.FinishTask(fn, fastTasks[lt]); err != nil {
						t.Fatal(err)
					}
					delete(fastTasks, lt)
				case 3: // Evict a random subset of idle entries.
					idle := ln.IdleEntries()
					if len(idle) == 0 {
						continue
					}
					k := r.IntRange(1, len(idle))
					fIdle := fn.IdleEntries()
					if err := d.lin.EvictIdle(ln, idle[:k]); err != nil {
						t.Fatal(err)
					}
					if err := d.fast.EvictIdle(fn, fIdle[:k]); err != nil {
						t.Fatal(err)
					}
				case 4: // Blank a fully idle node.
					if len(ln.Entries) == 0 || ln.RunningTasks() > 0 {
						continue
					}
					if err := d.lin.BlankNode(ln); err != nil {
						t.Fatal(err)
					}
					if err := d.fast.BlankNode(fn); err != nil {
						t.Fatal(err)
					}
				case 5: // Pure query step.
					d.queryAll(r.Intn(configs), int64(r.IntRange(1, 2500)))
				}
				if step%37 == 0 {
					d.queryAll(r.Intn(configs), int64(r.IntRange(1, 2500)))
					if err := d.fast.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			d.queryAll(0, 1)
			if err := d.fast.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if err := d.lin.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastSearchFallsBackOnHugeCapSpace: >64 distinct capability
// names cannot be mask-encoded; the manager must stay on the linear
// path rather than mis-index, and shard assembly must degrade to one
// flat shard whose scans use the per-node string test with the same
// results and metering as a mask-encodable build.
func TestFastSearchFallsBackOnHugeCapSpace(t *testing.T) {
	build := func(opts ...resinfo.Option) (*resinfo.Manager, []*model.Config) {
		var nodes []*model.Node
		for i := 0; i < 70; i++ {
			n := model.NewNode(i, 2000, true)
			n.Caps = []string{fmt.Sprintf("cap-%d", i)}
			nodes = append(nodes, n)
		}
		cfgs := []*model.Config{
			{No: 0, ReqArea: 500, ConfigTime: 10},
			{No: 1, ReqArea: 500, ConfigTime: 10, RequiredCaps: []string{"cap-42"}},
		}
		m, err := resinfo.New(nodes, cfgs, &metrics.Counters{}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return m, cfgs
	}

	m, cfgs := build(resinfo.WithFastSearch())
	if m.FastSearch() {
		t.Fatal("index built over an un-encodable capability space")
	}
	if m.ShardCount() != 1 {
		t.Fatalf("un-encodable capability space must collapse to 1 shard, got %d", m.ShardCount())
	}
	if n := m.BestBlankNode(cfgs[0]); n == nil {
		t.Fatal("linear fallback found no node")
	}
	if n := m.BestBlankNode(cfgs[1]); n == nil || n.No != 42 {
		t.Fatalf("flat-shard HasCaps scan missed cap-42: got %v", n)
	}

	// The sharded manager with pooled kernels forced on must answer and
	// meter exactly like the plain one even in the degraded regime.
	defer resinfo.SetParSpanMinForTest(1)()
	mp, pcfgs := build(resinfo.WithIntraParallel(4))
	if mp.ShardCount() != 1 {
		t.Fatalf("pooled degraded manager has %d shards, want 1", mp.ShardCount())
	}
	seqBefore := m.Counters().SchedulerSearch
	for i := range cfgs {
		a, b := m.BestBlankNode(cfgs[i]), mp.BestBlankNode(pcfgs[i])
		if (a == nil) != (b == nil) || (a != nil && a.No != b.No) {
			t.Fatalf("C%d: degraded scan diverged between sequential (%v) and pooled (%v)", i, a, b)
		}
	}
	if delta := m.Counters().SchedulerSearch - seqBefore; delta != mp.Counters().SchedulerSearch {
		t.Fatalf("degraded-scan metering diverged: sequential %d, pooled %d",
			delta, mp.Counters().SchedulerSearch)
	}
}
