// Package resinfo implements DReAMSim's resource information manager
// (paper §III, information subsystem): it owns the node list and the
// configurations list, maintains the per-configuration idle/busy
// linked lists and every node's config-task-pair list as nodes change
// state, and meters each search and housekeeping step into the run's
// counters exactly as the paper's SearchLength / TotalSimWorkLoad
// accounting does.
package resinfo

import (
	"fmt"
	"sort"

	"dreamsim/internal/invariant"
	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/par"
	"dreamsim/internal/reslists"
)

// Manager is the resource information manager. All mutations of node
// state must flow through it so the idle/busy lists, Eq. 4 area
// accounting, and the housekeeping counters stay consistent.
type Manager struct {
	nodes     []*model.Node
	configs   []*model.Config
	pairs     map[int]reslists.Pair // config No -> idle/busy lists
	c         *metrics.Counters
	downCount int // nodes currently failed (CrashNode minus RecoverNode)

	// Fast-search state (nil/empty when the linear paper paths run).
	wantFast   bool
	fastCutoff int // minimum node count for the index to pay off
	idx        *nodeIndex
	cfgPos     map[int]int     // config No -> position in the list
	cfgByArea  []*model.Config // configs ordered by (ReqArea, position)

	// SoA scan block: the capability-sharded dense arrays the linear
	// placement scans walk (see soa.go). Built for every manager and
	// kept in sync by reindex.
	soa *soaState
	// Intra-run scan parallelism: pool is nil (sequential scans)
	// unless WithIntraParallel requested width > 1 AND the population
	// is large enough for a dispatch to pay (parSpanMin).
	ipar int
	pool *par.Pool
	pj   *parScan
	// shadow marks a search-only view made by Shadow(); mutating
	// transitions on a shadow are a bug (asserted under invariants).
	shadow bool

	// evict is FindAnyIdleNode's reusable victim buffer; the returned
	// slice is valid until the next placement search.
	evict []*model.Entry
	// entryFree pools the Entry structs of evicted regions for reuse
	// by Configure, so steady-state reconfiguration cycles allocate
	// nothing.
	entryFree []*model.Entry
}

// Option customises a Manager at construction time.
type Option func(*Manager)

// WithFastSearch replaces the linear node and configuration searches
// with indexed O(log n) equivalents. Search results and every metered
// counter are identical to the linear mode: the index returns the
// exact node the linear walk would have and charges the exact steps
// the walk would have charged (the paper's search accounting is a
// model output, not an execution constraint). Populations whose
// capability name space exceeds 64 distinct names fall back to the
// linear path silently; FastSearch reports whether the index is live.
func WithFastSearch() Option {
	return func(m *Manager) { m.wantFast = true; m.fastCutoff = 0 }
}

// DefaultFastSearchCutoff is the node count below which the metered
// linear scans beat the index: under it every search touches so few
// nodes that treap maintenance on each state transition costs more
// than the walks it saves. Query-only microbenchmarks
// (BenchmarkSearchCrossover) favour the index much earlier, but
// end-to-end simulation — where every StartTask/FinishTask/Configure
// moves treap nodes between buckets — puts the crossover between 250
// and 300 nodes at the paper's Table II workload shape; see DESIGN.md
// "Performance & allocation discipline".
const DefaultFastSearchCutoff = 256

// WithFastSearchCutoff is WithFastSearch with an adaptive threshold:
// the index is built only for populations of at least cutoff nodes,
// smaller ones keep the linear paths. Results and metering are
// identical either way — the cutoff trades wall time only.
func WithFastSearchCutoff(cutoff int) Option {
	return func(m *Manager) { m.wantFast = true; m.fastCutoff = cutoff }
}

// WithIntraParallel runs the linear placement scans on a bounded pool
// of `workers` goroutines when the population is large enough for
// a dispatch to pay (the same scale gate as parSpanMin). Results and
// metering are byte-identical to sequential scans: chunk boundaries
// are static and the argmin reduction breaks ties by node number,
// never by completion order. Width <= 1 is exactly the sequential
// path.
func WithIntraParallel(workers int) Option {
	return func(m *Manager) { m.ipar = workers }
}

// New builds a manager over the given resources. Config numbers must
// be unique; the counters receive all metering.
//
//lint:metering construction-time setup walks; the paper meters only the running scheduler
func New(nodes []*model.Node, configs []*model.Config, counters *metrics.Counters, opts ...Option) (*Manager, error) {
	m := &Manager{
		nodes:   nodes,
		configs: configs,
		pairs:   make(map[int]reslists.Pair, len(configs)),
		c:       counters,
	}
	for _, opt := range opts {
		opt(m)
	}
	for _, cfg := range configs {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if _, dup := m.pairs[cfg.No]; dup {
			return nil, fmt.Errorf("resinfo: duplicate config number %d", cfg.No)
		}
		m.pairs[cfg.No] = reslists.NewPair()
	}
	counters.TotalNodes = len(nodes)
	counters.TotalConfigs = len(configs)
	for i, n := range nodes {
		n.Slot = i
	}
	m.soa = newSoaState(nodes, configs)
	m.initPool()
	if m.wantFast && len(nodes) >= m.fastCutoff {
		if idx, ok := newNodeIndex(nodes, configs); ok {
			m.idx = idx
			m.cfgPos = make(map[int]int, len(configs))
			for i, cfg := range configs {
				m.cfgPos[cfg.No] = i
			}
			m.cfgByArea = append([]*model.Config(nil), configs...)
			sort.SliceStable(m.cfgByArea, func(i, j int) bool {
				return m.cfgByArea[i].ReqArea < m.cfgByArea[j].ReqArea
			})
		}
	}
	return m, nil
}

// FastSearch reports whether the indexed search path is active.
func (m *Manager) FastSearch() bool { return m.idx != nil }

// reindex reconciles the fast-search index after node changed state;
// a no-op on the linear path. Maintenance charges no counters — the
// metered workload describes the simulated linear-search scheduler,
// not the host data structure.
func (m *Manager) reindex(node *model.Node) {
	// reindex is the shared tail of every state transition
	// (Configure, EvictIdle, BlankNode, StartTask, FinishTask), so it
	// is where the -tags invariants build re-checks Eq. 4 area bounds.
	if invariant.Enabled {
		invariant.Assertf(!m.shadow,
			"resinfo: state transition on a search-only shadow manager (node %d)", node.No)
		invariant.Assertf(node.AvailableArea >= 0 && node.AvailableArea <= node.TotalArea,
			"resinfo: node %d available area %d outside [0, %d] after a state transition (Eq. 4)",
			node.No, node.AvailableArea, node.TotalArea)
		invariant.Assertf(!node.Down || len(node.Entries) == 0,
			"resinfo: down node %d still holds %d configurations", node.No, len(node.Entries))
	}
	m.soa.sync(node.Slot, node)
	if m.idx != nil {
		m.idx.sync(m.idx.pos[node], node)
	}
}

// Nodes returns the node list (callers must not mutate node state
// directly; use the Manager's transition methods).
func (m *Manager) Nodes() []*model.Node { return m.nodes }

// Configs returns the configurations list.
func (m *Manager) Configs() []*model.Config { return m.configs }

// Counters exposes the metered counters.
func (m *Manager) Counters() *metrics.Counters { return m.c }

// Pair returns the idle/busy list pair of configuration cfgNo.
// It panics for unknown configurations — those are scheduler bugs.
func (m *Manager) Pair(cfgNo int) reslists.Pair {
	p, ok := m.pairs[cfgNo]
	if !ok {
		panic(fmt.Sprintf("resinfo: unknown config %d", cfgNo))
	}
	return p
}

// search charges n scheduler search steps (the paper's SL counter,
// Alg. 1; TotalSchedulerWorkload sums these with housekeeping).
func (m *Manager) search(n uint64) {
	m.c.SchedulerSearch += n
}

// housekeep charges n housekeeping steps.
func (m *Manager) housekeep(n uint64) {
	m.c.HousekeepingSteps += n
}

// ChargeSearch lets scheduling policies meter list walks they run
// themselves (placement variants iterate the idle lists directly).
func (m *Manager) ChargeSearch(n uint64) { m.search(n) }

// ChargeHousekeeping lets the core meter queue maintenance work.
func (m *Manager) ChargeHousekeeping(n uint64) { m.housekeep(n) }

// FindPreferredConfig searches the configurations list for cfgNo
// (paper method; metered as the linear search the paper describes —
// "currently a simple linear search is employed"). It returns nil
// when the preferred configuration does not exist. The fast path
// answers from a hash map but charges the steps the walk would have
// taken: the position of the hit, or the whole list on a miss.
//
//dreamsim:noalloc
func (m *Manager) FindPreferredConfig(cfgNo int) *model.Config {
	if m.cfgPos != nil {
		if pos, ok := m.cfgPos[cfgNo]; ok {
			m.search(uint64(pos) + 1)
			return m.configs[pos]
		}
		m.search(uint64(len(m.configs)))
		return nil
	}
	var steps uint64
	for _, cfg := range m.configs {
		steps++
		if cfg.No == cfgNo {
			m.search(steps)
			return cfg
		}
	}
	m.search(steps)
	return nil
}

// FindClosestConfig searches for C_ClosestMatch: the configuration
// whose ReqArea is minimal among all configurations with ReqArea ≥
// neededArea (paper §IV-C). It returns nil when no configuration is
// large enough.
//
//dreamsim:noalloc
func (m *Manager) FindClosestConfig(neededArea model.Area) *model.Config {
	if m.cfgByArea != nil {
		// The linear scan keeps the first config holding the minimal
		// sufficient ReqArea; in the (ReqArea, position)-ordered view
		// that is the first element at or above neededArea. The walk
		// always visits the whole list, so the whole list is charged.
		m.search(uint64(len(m.configs)))
		i := sort.Search(len(m.cfgByArea), func(i int) bool {
			return m.cfgByArea[i].ReqArea >= neededArea
		})
		if i == len(m.cfgByArea) {
			return nil
		}
		return m.cfgByArea[i]
	}
	var best *model.Config
	var steps uint64
	for _, cfg := range m.configs {
		steps++
		if cfg.ReqArea >= neededArea && (best == nil || cfg.ReqArea < best.ReqArea) {
			best = cfg
		}
	}
	m.search(steps)
	return best
}

// Configure sends the bitstream of cfg to node (paper SendBitstream):
// the new idle region is linked into cfg's idle list and the
// reconfiguration counters and Eq. 10 configuration time accumulate.
//
//dreamsim:noalloc
func (m *Manager) Configure(node *model.Node, cfg *model.Config) (*model.Entry, error) {
	var spare *model.Entry
	if n := len(m.entryFree) - 1; n >= 0 {
		spare = m.entryFree[n]
		m.entryFree[n] = nil
		m.entryFree = m.entryFree[:n]
	}
	e, err := node.SendBitstreamReusing(cfg, spare)
	if err != nil {
		if spare != nil {
			m.entryFree = append(m.entryFree, spare)
		}
		return nil, err
	}
	m.Pair(cfg.No).Idle.Add(e)
	m.housekeep(1)
	m.c.Reconfigurations++
	m.c.ConfigurationTime += cfg.ConfigTime
	m.reindex(node)
	return e, nil
}

// EvictIdle removes the given idle regions from their node
// (paper MakeNodePartiallyBlank) and unlinks them from the idle lists.
//
//dreamsim:noalloc
func (m *Manager) EvictIdle(node *model.Node, victims []*model.Entry) error {
	if err := node.MakeNodePartiallyBlank(victims); err != nil {
		return err
	}
	for _, v := range victims {
		m.housekeep(m.Pair(v.Config.No).Drop(v))
		m.recycleEntry(v)
	}
	m.reindex(node)
	return nil
}

// recycleEntry zeroes an unlinked region's Entry and pools it for the
// next Configure. Callers must guarantee no live reference remains —
// evicted, blanked and crashed regions qualify because the node, the
// idle/busy lists and the scheduler have all dropped them by the time
// they reach the pool.
func (m *Manager) recycleEntry(e *model.Entry) {
	*e = model.Entry{}
	m.entryFree = append(m.entryFree, e)
}

// BlankNode strips every configuration from node (paper
// MakeNodeBlank) and unlinks the regions from their lists.
//
//dreamsim:noalloc
func (m *Manager) BlankNode(node *model.Node) error {
	removed, err := node.MakeNodeBlank()
	if err != nil {
		return err
	}
	for _, v := range removed {
		m.housekeep(m.Pair(v.Config.No).Drop(v))
		m.recycleEntry(v)
	}
	m.reindex(node)
	return nil
}

// CrashNode fails node: the fabric state dies with it, so every
// resident configuration is invalidated and unlinked from the
// idle/busy lists, and the tasks it was running are detached and
// returned for the caller's retry path. The node is excluded from
// every placement search until RecoverNode. Unlinking the dead
// regions is list maintenance like any eviction, so it charges
// housekeeping steps.
func (m *Manager) CrashNode(node *model.Node) ([]*model.Task, error) {
	tasks, removed, err := node.Fail()
	if err != nil {
		return nil, err
	}
	// Crash-removed entries are deliberately NOT recycled: a crash can
	// strike between a scheduling decision and its application, and the
	// stale decision's Entry pointer must still read as the dead region
	// (so Apply fails with the down-node guard) rather than as a
	// recycled live one. Crashes are fault-path events, outside the
	// zero-allocation contract.
	for _, v := range removed {
		m.housekeep(m.Pair(v.Config.No).Drop(v))
	}
	m.downCount++
	m.reindex(node)
	return tasks, nil
}

// RecoverNode returns a crashed node to service, blank. Relinking the
// node into the searchable population is one housekeeping step.
func (m *Manager) RecoverNode(node *model.Node) error {
	if err := node.Restore(); err != nil {
		return err
	}
	m.downCount--
	m.housekeep(1)
	m.reindex(node)
	return nil
}

// StartTask places task on the idle region e (paper AddTaskToNode)
// and moves the region to its configuration's busy list.
//
//dreamsim:noalloc
func (m *Manager) StartTask(e *model.Entry, task *model.Task) error {
	if err := e.Node.AddTaskToNode(e, task); err != nil {
		return err
	}
	m.housekeep(m.Pair(e.Config.No).MarkBusy(e))
	m.reindex(e.Node)
	return nil
}

// FinishTask detaches task from node (paper RemoveTaskFromNode); the
// region stays configured and returns to its idle list.
//
//dreamsim:noalloc
func (m *Manager) FinishTask(node *model.Node, task *model.Task) (*model.Entry, error) {
	e, err := node.RemoveTaskFromNode(task)
	if err != nil {
		return nil, err
	}
	m.housekeep(m.Pair(e.Config.No).MarkIdle(e))
	m.reindex(node)
	return e, nil
}

// BestIdleEntry returns the best-match idle region configured with
// cfgNo: the one on the node with minimum AvailableArea ("so that the
// nodes with larger AvailableArea are utilized for later
// re-configurations", §V). In full-reconfiguration mode an idle entry
// is only usable if its node runs nothing else; the filter is built
// in because the idle lists thread regions, not whole nodes.
//
//dreamsim:noalloc
func (m *Manager) BestIdleEntry(cfgNo int) *model.Entry {
	best, steps := m.Pair(cfgNo).Idle.FindMin(
		func(e *model.Entry) bool {
			return e.Node.PartialMode || e.Node.RunningTasks() == 0
		},
		func(e *model.Entry) int64 { return e.Node.AvailableArea },
	)
	m.search(steps)
	return best
}

// BestBlankNode scans for blank, capability-compatible nodes that can
// hold cfg and returns the one with minimum sufficient TotalArea. The
// fast path answers the same query from the blank-node index in
// O(log n); the linear path scans the SoA block's compatible
// capability shards (in parallel above parSpanMin when the manager has
// intra-run workers). The paper's walk always visits every node, so
// the whole list is charged in every mode.
//
//dreamsim:noalloc
func (m *Manager) BestBlankNode(cfg *model.Config) *model.Node {
	m.search(uint64(len(m.nodes)))
	if m.idx != nil {
		return m.idx.bestBlank(cfg)
	}
	return m.scanBest(cfg, soaBlank, m.soa.total)
}

// BestPartiallyBlankNode scans for configured, capability-compatible
// nodes with enough unconfigured area left for cfg and returns the
// one with the minimum sufficient AvailableArea (partial
// configuration phase, §V). Only meaningful in partial mode;
// full-mode nodes never qualify because a configured full-mode node
// has its fabric committed.
//
//dreamsim:noalloc
func (m *Manager) BestPartiallyBlankNode(cfg *model.Config) *model.Node {
	m.search(uint64(len(m.nodes)))
	if m.idx != nil {
		return m.idx.bestPart(cfg)
	}
	return m.scanBest(cfg, soaPart, m.soa.avail)
}

// FindAnyIdleNode is Algorithm 1 of the paper: walk the node list,
// and for each node accumulate its AvailableArea plus the areas of
// its idle regions; the first node whose accumulated reclaimable area
// reaches reqArea is returned together with the idle regions to evict.
// Both the scheduler search length and the total simulator workload
// are charged one step per examined entry, as in the algorithm text.
// The victim slice is the manager's reusable scratch: it stays valid
// until the next placement search, which is exactly long enough for
// the scheduler to consume the decision (sched.Apply evicts before
// anything else runs). Callers that retain it longer must copy.
//
//dreamsim:noalloc
func (m *Manager) FindAnyIdleNode(cfg *model.Config) (*model.Node, []*model.Entry) {
	reqArea := cfg.ReqArea
	s := m.soa
	req, reqOK := s.reqMask(cfg.RequiredCaps)
	var steps uint64
	entries := m.evict[:0]
	for slot, node := range m.nodes {
		// Capability compatibility from the SoA mask block: one AND
		// instead of the nested string subset test, with the per-node
		// HasCaps retained for the unrepresentable cases (>64-name
		// population, unregistered query capability). An incompatible
		// node costs the walk one step, exactly as the string test did.
		var compatible bool
		if s.maskOK && reqOK {
			compatible = s.masks[slot]&req == req
		} else {
			compatible = node.HasCaps(cfg.RequiredCaps)
		}
		if !compatible {
			steps++
			continue
		}
		accum := node.AvailableArea
		entries = entries[:0]
		for _, e := range node.Entries {
			steps++
			if e.Idle() {
				accum += e.Config.ReqArea
				entries = append(entries, e)
				if accum >= reqArea {
					m.evict = entries
					m.search(steps)
					return node, entries
				}
			}
		}
	}
	m.evict = entries[:0]
	m.search(steps)
	return nil, nil
}

// AnyBusyNodeCouldFit reports whether some currently busy node has
// TotalArea ≥ reqArea — the paper's final check before suspending
// rather than discarding a task ("explores the list of all busy
// nodes to search at least one currently busy node with sufficient
// TotalArea").
//
//dreamsim:noalloc
func (m *Manager) AnyBusyNodeCouldFit(cfg *model.Config) bool {
	// The linear walk exits at the first match, so the charge is that
	// node's position (+1) — recovered by the busy index's subtree-
	// minimum positions in O(log n), or by the sharded first-fit scan's
	// minimum-slot reduction — or the whole list when no busy node
	// fits.
	if m.idx != nil {
		if pos := m.idx.firstBusyFit(cfg); pos >= 0 {
			m.search(uint64(pos) + 1)
			return true
		}
		m.search(uint64(len(m.nodes)))
		return false
	}
	if pos := m.scanFirstFit(cfg, soaBusy); pos >= 0 {
		m.search(uint64(pos) + 1)
		return true
	}
	m.search(uint64(len(m.nodes)))
	return false
}

// AnyDownNodeCouldFit reports whether a currently-down node could
// host cfg once it recovers — the fault extension of the paper's
// suspend-or-discard check: a task that only lost its hosts to a
// transient outage should wait for recovery, not be discarded. The
// walk is deliberately uncharged: it is a fault-path liveness probe,
// not part of the paper's search model, so fault-free runs charge
// exactly the steps they always did.
//
//lint:metering fault-path liveness probe; uncharged so fault-free metering stays identical
func (m *Manager) AnyDownNodeCouldFit(cfg *model.Config) bool {
	if m.downCount == 0 {
		return false
	}
	s := m.soa
	req, reqOK := s.reqMask(cfg.RequiredCaps)
	masked := s.maskOK && reqOK
	for si := range s.shards {
		sh := &s.shards[si]
		if masked && sh.mask&req != req {
			continue
		}
		for _, p := range sh.members {
			if s.flags[p]&soaDown == 0 || s.total[p] < int64(cfg.ReqArea) {
				continue
			}
			if !masked && !m.nodes[p].HasCaps(cfg.RequiredCaps) {
				continue
			}
			return true
		}
	}
	return false
}

// CheckInvariants validates global consistency: every node passes its
// own checks, every region sits in exactly the right list, and list
// linkage is intact. Intended for tests and debug runs.
//
//lint:metering debug validator; its walks are host-side checking, not simulated scheduler work
func (m *Manager) CheckInvariants() error {
	listed := make(map[*model.Entry]bool)
	for no, p := range m.pairs {
		if err := p.Idle.CheckInvariants(); err != nil {
			return err
		}
		if err := p.Busy.CheckInvariants(); err != nil {
			return err
		}
		var bad error
		p.Idle.Each(func(e *model.Entry) bool {
			listed[e] = true
			if e.Config.No != no {
				bad = fmt.Errorf("resinfo: entry %v in idle list of C%d", e, no)
				return false
			}
			if !e.Idle() {
				bad = fmt.Errorf("resinfo: busy entry %v in idle list", e)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
		p.Busy.Each(func(e *model.Entry) bool {
			listed[e] = true
			if e.Config.No != no {
				bad = fmt.Errorf("resinfo: entry %v in busy list of C%d", e, no)
				return false
			}
			if e.Idle() {
				bad = fmt.Errorf("resinfo: idle entry %v in busy list", e)
				return false
			}
			return true
		})
		if bad != nil {
			return bad
		}
	}
	for _, n := range m.nodes {
		if err := n.CheckInvariants(); err != nil {
			return err
		}
		if n.Down && n.AvailableArea != n.TotalArea {
			return fmt.Errorf("resinfo: down node %d has available %d != total %d",
				n.No, n.AvailableArea, n.TotalArea)
		}
		for _, e := range n.Entries {
			if !listed[e] {
				return fmt.Errorf("resinfo: entry %v not in any list", e)
			}
		}
	}
	if err := m.soa.check(m.nodes); err != nil {
		return err
	}
	if m.idx != nil {
		if err := m.idx.check(); err != nil {
			return err
		}
	}
	return nil
}
