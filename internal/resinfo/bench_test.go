package resinfo_test

import (
	"fmt"
	"testing"

	"dreamsim/internal/invariant"
	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/resinfo"
)

// searchBench owns one manager plus the reusable scratch a steady-state
// search/transition cycle needs (the eviction slice and the probe task
// live outside the measured loop).
type searchBench struct {
	m     *resinfo.Manager
	nodes []*model.Node
	cfgs  []*model.Config
	evict [1]*model.Entry
	task  model.Task
}

func newSearchBench(tb testing.TB, nodeCount int, opts ...resinfo.Option) *searchBench {
	tb.Helper()
	nodes, cfgs := population(1234, nodeCount, 30, nil)
	m, err := resinfo.New(nodes, cfgs, &metrics.Counters{}, opts...)
	if err != nil {
		tb.Fatal(err)
	}
	return &searchBench{m: m, nodes: nodes, cfgs: cfgs}
}

// cycle is one steady-state round: the placement-search queries the
// scheduler issues per decision, plus a configure → start → finish →
// evict transition so the index pays its full maintenance cost (blank,
// partially-blank and busy buckets all move). The node returns to
// blank, so every round sees the same state.
func (sb *searchBench) cycle(tb testing.TB, i int) {
	cfg := sb.cfgs[i%len(sb.cfgs)]
	m := sb.m

	m.BestPartiallyBlankNode(cfg)
	m.AnyBusyNodeCouldFit(cfg)
	m.FindClosestConfig(cfg.ReqArea)
	m.FindPreferredConfig(cfg.No)

	n := m.BestBlankNode(cfg)
	if n == nil {
		return // capability-less population always has a blank fit
	}
	e, err := m.Configure(n, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	sb.task = model.Task{No: i, AssignedConfig: -1}
	if err := m.StartTask(e, &sb.task); err != nil {
		tb.Fatal(err)
	}
	if _, err := m.FinishTask(n, &sb.task); err != nil {
		tb.Fatal(err)
	}
	sb.evict[0] = e
	if err := m.EvictIdle(n, sb.evict[:]); err != nil {
		tb.Fatal(err)
	}
}

// BenchmarkSearch measures the indexed placement-search path on the
// 150-node population — the sweep grid's largest cell — and must
// report 0 allocs/op: treap nodes and entries recycle through their
// pools, bucket state is cached, and queries walk pointers only. CI
// gates on the allocs/op column.
func BenchmarkSearch(b *testing.B) {
	sb := newSearchBench(b, 150, resinfo.WithFastSearch())
	if !sb.m.FastSearch() {
		b.Fatal("index not live")
	}
	for i := 0; i < 64; i++ {
		sb.cycle(b, i) // warm the entry and treap pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sb.cycle(b, i)
	}
}

// TestSearchZeroAlloc is the test-suite form of the benchmark gate.
func TestSearchZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their message arguments")
	}
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	sb := newSearchBench(t, 150, resinfo.WithFastSearch())
	for i := 0; i < 64; i++ {
		sb.cycle(t, i)
	}
	i := 64
	if avg := testing.AllocsPerRun(500, func() { sb.cycle(t, i); i++ }); avg != 0 {
		t.Fatalf("placement search allocates: %.1f allocs/op", avg)
	}
}

// BenchmarkSearchCrossover compares the metered linear scans against
// the treap index across population sizes under the same query +
// transition mix; DefaultFastSearchCutoff is set from where the fast
// line first beats the linear one.
func BenchmarkSearchCrossover(b *testing.B) {
	for _, n := range []int{48, 96, 150, 192, 256, 384, 512} {
		for _, mode := range []string{"linear", "fast"} {
			b.Run(fmt.Sprintf("%s-%d", mode, n), func(b *testing.B) {
				var opts []resinfo.Option
				if mode == "fast" {
					opts = append(opts, resinfo.WithFastSearch())
				}
				sb := newSearchBench(b, n, opts...)
				for i := 0; i < 64; i++ {
					sb.cycle(b, i)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sb.cycle(b, i)
				}
			})
		}
	}
}
