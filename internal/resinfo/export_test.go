package resinfo

// SetParSpanMinForTest overrides the parallel-dispatch span gate so
// tests can force the worker-pool scan kernels onto small populations.
// It returns a restore function for defer.
func SetParSpanMinForTest(v int) (restore func()) {
	old := parSpanMin
	parSpanMin = v
	return func() { parSpanMin = old }
}
