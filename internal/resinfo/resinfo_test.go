package resinfo

import (
	"testing"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
)

// rig builds a manager with n partial-mode nodes of the given areas
// and configs of the given required areas.
func rig(t *testing.T, nodeAreas, cfgAreas []int64, partial bool) (*Manager, *metrics.Counters) {
	t.Helper()
	var nodes []*model.Node
	for i, a := range nodeAreas {
		nodes = append(nodes, model.NewNode(i, a, partial))
	}
	var configs []*model.Config
	for i, a := range cfgAreas {
		configs = append(configs, &model.Config{No: i, ReqArea: a, ConfigTime: 10 + int64(i)})
	}
	c := &metrics.Counters{}
	m, err := New(nodes, configs, c)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

func TestNewValidation(t *testing.T) {
	c := &metrics.Counters{}
	_, err := New(nil, []*model.Config{{No: 1, ReqArea: 5}, {No: 1, ReqArea: 6}}, c)
	if err == nil {
		t.Fatal("duplicate config numbers accepted")
	}
	_, err = New(nil, []*model.Config{{No: 1, ReqArea: 0}}, c)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	m, err := New(nil, nil, c)
	if err != nil || m == nil {
		t.Fatal("empty manager rejected")
	}
}

func TestCountersShape(t *testing.T) {
	_, c := rig(t, []int64{1000, 2000}, []int64{500}, true)
	if c.TotalNodes != 2 || c.TotalConfigs != 1 {
		t.Fatalf("shape counters: %d nodes, %d configs", c.TotalNodes, c.TotalConfigs)
	}
}

func TestFindPreferredConfig(t *testing.T) {
	m, c := rig(t, nil, []int64{200, 300, 400}, true)
	before := c.SchedulerSearch
	if cfg := m.FindPreferredConfig(1); cfg == nil || cfg.No != 1 {
		t.Fatalf("FindPreferredConfig(1) = %v", cfg)
	}
	if c.SchedulerSearch-before != 2 { // linear scan hits it at position 2
		t.Errorf("search steps = %d, want 2", c.SchedulerSearch-before)
	}
	if cfg := m.FindPreferredConfig(99); cfg != nil {
		t.Fatalf("absent config found: %v", cfg)
	}
}

func TestFindClosestConfig(t *testing.T) {
	m, _ := rig(t, nil, []int64{200, 2000, 800, 500}, true)
	// Minimum ReqArea >= 450 is 500.
	if cfg := m.FindClosestConfig(450); cfg == nil || cfg.ReqArea != 500 {
		t.Fatalf("FindClosestConfig(450) = %v", cfg)
	}
	// Exact boundary.
	if cfg := m.FindClosestConfig(2000); cfg == nil || cfg.ReqArea != 2000 {
		t.Fatalf("FindClosestConfig(2000) = %v", cfg)
	}
	// Nothing big enough.
	if cfg := m.FindClosestConfig(2001); cfg != nil {
		t.Fatalf("FindClosestConfig(2001) = %v", cfg)
	}
}

func TestConfigureAndLists(t *testing.T) {
	m, c := rig(t, []int64{3000}, []int64{500, 700}, true)
	n := m.Nodes()[0]
	e, err := m.Configure(n, m.Configs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Pair(0).Idle.Len() != 1 || m.Pair(0).Busy.Len() != 0 {
		t.Fatal("configured region not in idle list")
	}
	if c.Reconfigurations != 1 || c.ConfigurationTime != 10 {
		t.Fatalf("reconfig accounting: count=%d time=%d", c.Reconfigurations, c.ConfigurationTime)
	}
	task := model.NewTask(1, 500, 0, 100, 0)
	if err := m.StartTask(e, task); err != nil {
		t.Fatal(err)
	}
	if m.Pair(0).Idle.Len() != 0 || m.Pair(0).Busy.Len() != 1 {
		t.Fatal("started region not in busy list")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := m.FinishTask(n, task)
	if err != nil || got != e {
		t.Fatalf("FinishTask = %v, %v", got, err)
	}
	if m.Pair(0).Idle.Len() != 1 || m.Pair(0).Busy.Len() != 0 {
		t.Fatal("finished region not back in idle list")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictAndBlank(t *testing.T) {
	m, _ := rig(t, []int64{3000}, []int64{500, 700}, true)
	n := m.Nodes()[0]
	e1, _ := m.Configure(n, m.Configs()[0])
	e2, _ := m.Configure(n, m.Configs()[1])
	if err := m.EvictIdle(n, []*model.Entry{e1}); err != nil {
		t.Fatal(err)
	}
	if m.Pair(0).Idle.Len() != 0 || n.AvailableArea != 3000-700 {
		t.Fatalf("eviction wrong: avail=%d", n.AvailableArea)
	}
	_ = e2
	if err := m.BlankNode(n); err != nil {
		t.Fatal(err)
	}
	if !n.Blank() || m.Pair(1).Idle.Len() != 0 {
		t.Fatal("BlankNode left residue")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBestIdleEntryMinAvailableArea(t *testing.T) {
	m, _ := rig(t, []int64{4000, 2000, 3000}, []int64{500}, true)
	cfg := m.Configs()[0]
	for _, n := range m.Nodes() {
		if _, err := m.Configure(n, cfg); err != nil {
			t.Fatal(err)
		}
	}
	best := m.BestIdleEntry(0)
	if best == nil || best.Node.No != 1 { // node 1 has min available (1500)
		t.Fatalf("BestIdleEntry = %v", best)
	}
}

func TestBestIdleEntryFullModeFilter(t *testing.T) {
	// In full mode, an idle region on a node already running a task
	// cannot exist, but the shared-list filter also guards partial
	// lists: simulate by checking the filter path with partial nodes.
	m, _ := rig(t, []int64{4000}, []int64{500, 600}, true)
	n := m.Nodes()[0]
	e1, _ := m.Configure(n, m.Configs()[0])
	_, _ = m.Configure(n, m.Configs()[1])
	_ = m.StartTask(e1, model.NewTask(1, 500, 0, 100, 0))
	// Partial mode: the idle C1 region is usable even though the node is busy.
	if got := m.BestIdleEntry(1); got == nil {
		t.Fatal("partial-mode idle region filtered out")
	}
}

func TestBestBlankNode(t *testing.T) {
	m, _ := rig(t, []int64{4000, 1200, 2500}, []int64{1000}, true)
	need := func(a int64) *model.Config { return &model.Config{No: 900, ReqArea: a} }
	// All blank: min sufficient TotalArea for 1000 is node 1 (1200).
	if n := m.BestBlankNode(need(1000)); n == nil || n.No != 1 {
		t.Fatalf("BestBlankNode = %v", n)
	}
	// Requirement above all nodes.
	if n := m.BestBlankNode(need(5000)); n != nil {
		t.Fatalf("impossible blank fit returned %v", n)
	}
	// Configured nodes are not blank.
	_, _ = m.Configure(m.Nodes()[1], m.Configs()[0])
	if n := m.BestBlankNode(need(1000)); n == nil || n.No != 2 {
		t.Fatalf("BestBlankNode after configure = %v", n)
	}
	// Capability filter: nothing offers "dsp".
	capped := &model.Config{No: 901, ReqArea: 1000, RequiredCaps: []string{"dsp"}}
	if n := m.BestBlankNode(capped); n != nil {
		t.Fatalf("caps filter ignored: %v", n)
	}
	m.Nodes()[2].Caps = []string{"dsp", "bram"}
	if n := m.BestBlankNode(capped); n == nil || n.No != 2 {
		t.Fatalf("caps-compatible node not found: %v", n)
	}
}

func TestBestPartiallyBlankNode(t *testing.T) {
	m, _ := rig(t, []int64{4000, 3000}, []int64{1000, 500}, true)
	need := func(a int64) *model.Config { return &model.Config{No: 900, ReqArea: a} }
	// Blank nodes never qualify.
	if n := m.BestPartiallyBlankNode(need(500)); n != nil {
		t.Fatalf("blank node qualified as partially blank: %v", n)
	}
	_, _ = m.Configure(m.Nodes()[0], m.Configs()[0]) // avail 3000
	_, _ = m.Configure(m.Nodes()[1], m.Configs()[0]) // avail 2000
	if n := m.BestPartiallyBlankNode(need(500)); n == nil || n.No != 1 {
		t.Fatalf("BestPartiallyBlankNode = %v", n)
	}
	if n := m.BestPartiallyBlankNode(need(2500)); n == nil || n.No != 0 {
		t.Fatalf("BestPartiallyBlankNode(2500) = %v", n)
	}
	if n := m.BestPartiallyBlankNode(need(3500)); n != nil {
		t.Fatalf("oversized partial fit returned %v", n)
	}
	// Capability filter applies to partial fits too.
	capped := &model.Config{No: 901, ReqArea: 500, RequiredCaps: []string{"serdes"}}
	if n := m.BestPartiallyBlankNode(capped); n != nil {
		t.Fatalf("caps filter ignored: %v", n)
	}
}

func TestFindAnyIdleNodeAlg1(t *testing.T) {
	m, _ := rig(t, []int64{2000, 2000}, []int64{600, 700, 900}, true)
	n0, n1 := m.Nodes()[0], m.Nodes()[1]
	// n0: C0 idle (600) + C1 busy (700), avail 700.
	e0, _ := m.Configure(n0, m.Configs()[0])
	e1, _ := m.Configure(n0, m.Configs()[1])
	_ = m.StartTask(e1, model.NewTask(1, 700, 1, 100, 0))
	_ = e0
	// n1: C2 idle (900), avail 1100.
	_, _ = m.Configure(n1, m.Configs()[2])

	need := func(a int64) *model.Config { return &model.Config{No: 900, ReqArea: a} }
	// Need 1200: n0 reclaimable = 700 avail + 600 idle = 1300 >= 1200.
	node, victims := m.FindAnyIdleNode(need(1200))
	if node != n0 || len(victims) != 1 || victims[0] != e0 {
		t.Fatalf("FindAnyIdleNode(1200) = %v, %v", node, victims)
	}
	// Need 1400: n0 can't (1300); n1 reclaimable = 1100+900 = 2000.
	node, victims = m.FindAnyIdleNode(need(1400))
	if node != n1 || len(victims) != 1 {
		t.Fatalf("FindAnyIdleNode(1400) = %v, %v", node, victims)
	}
	// Need more than anything reclaimable.
	node, victims = m.FindAnyIdleNode(need(2500))
	if node != nil || victims != nil {
		t.Fatalf("FindAnyIdleNode(2500) = %v, %v", node, victims)
	}
	// Capability filter skips otherwise reclaimable nodes.
	capped := &model.Config{No: 901, ReqArea: 1200, RequiredCaps: []string{"bram"}}
	if node, _ := m.FindAnyIdleNode(capped); node != nil {
		t.Fatalf("caps filter ignored: %v", node)
	}
}

func TestAnyBusyNodeCouldFit(t *testing.T) {
	m, _ := rig(t, []int64{2000, 4000}, []int64{500}, true)
	need := func(a int64) *model.Config { return &model.Config{No: 900, ReqArea: a} }
	if m.AnyBusyNodeCouldFit(need(100)) {
		t.Fatal("no busy nodes yet, but fit reported")
	}
	e, _ := m.Configure(m.Nodes()[0], m.Configs()[0])
	_ = m.StartTask(e, model.NewTask(1, 500, 0, 100, 0))
	if !m.AnyBusyNodeCouldFit(need(1500)) {
		t.Fatal("busy node with 2000 total rejected for 1500")
	}
	if m.AnyBusyNodeCouldFit(need(2500)) {
		t.Fatal("busy node with 2000 total accepted for 2500")
	}
	capped := &model.Config{No: 901, ReqArea: 100, RequiredCaps: []string{"dsp"}}
	if m.AnyBusyNodeCouldFit(capped) {
		t.Fatal("caps filter ignored for busy fit")
	}
}

func TestUnknownConfigPanics(t *testing.T) {
	m, _ := rig(t, nil, []int64{500}, true)
	defer func() {
		if recover() == nil {
			t.Fatal("Pair(unknown) did not panic")
		}
	}()
	m.Pair(42)
}

func TestSearchSteppingAccumulates(t *testing.T) {
	m, c := rig(t, []int64{1000, 1000, 1000}, []int64{500}, true)
	before := c.SchedulerSearch
	m.BestBlankNode(&model.Config{No: 900, ReqArea: 500}) // scans 3 nodes
	if c.SchedulerSearch-before != 3 {
		t.Errorf("BestBlankNode charged %d steps, want 3", c.SchedulerSearch-before)
	}
	beforeH := c.HousekeepingSteps
	e, _ := m.Configure(m.Nodes()[0], m.Configs()[0])
	if c.HousekeepingSteps == beforeH {
		t.Error("Configure charged no housekeeping")
	}
	_ = m.StartTask(e, model.NewTask(1, 500, 0, 100, 0))
	if c.HousekeepingSteps <= beforeH+1 {
		t.Error("StartTask charged no housekeeping")
	}
}

func TestInvariantCatchesUnlistedEntry(t *testing.T) {
	m, _ := rig(t, []int64{2000}, []int64{500}, true)
	n := m.Nodes()[0]
	// Bypass the manager: raw SendBitstream leaves the entry unlisted.
	if _, err := n.SendBitstream(m.Configs()[0]); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err == nil {
		t.Fatal("unlisted entry not detected")
	}
}
