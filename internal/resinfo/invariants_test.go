//go:build invariants

package resinfo

import (
	"strings"
	"testing"

	"dreamsim/internal/model"
)

// TestReindexAreaBoundsAssert corrupts a node's Eq. 4 accounting and
// checks the next state transition trips the tagged assertion.
func TestReindexAreaBoundsAssert(t *testing.T) {
	m, _ := rig(t, []int64{1000}, []int64{400}, true)
	node := m.Nodes()[0]
	node.AvailableArea = -1
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("negative AvailableArea did not trip the invariant")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "Eq. 4") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	m.reindex(node)
}

// TestTransitionsCleanUnderInvariants drives the normal transition
// cycle with assertions compiled in; nothing may trip.
func TestTransitionsCleanUnderInvariants(t *testing.T) {
	m, _ := rig(t, []int64{1000}, []int64{400}, true)
	node, cfg := m.Nodes()[0], m.Configs()[0]
	e, err := m.Configure(node, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EvictIdle(node, []*model.Entry{e}); err != nil {
		t.Fatal(err)
	}
	if node.AvailableArea != node.TotalArea {
		t.Fatalf("area not restored: %d/%d", node.AvailableArea, node.TotalArea)
	}
}
