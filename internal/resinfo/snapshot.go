package resinfo

import (
	"fmt"

	"dreamsim/internal/model"
	"dreamsim/internal/reslists"
	"dreamsim/internal/snapshot"
)

// Checkpoint support. The manager's dynamic state is the fabric
// picture: which configurations sit on which nodes, which tasks run
// on which regions, which nodes are down — plus the ORDER of the
// per-configuration idle/busy lists, because FindMin breaks ties by
// first-encountered and Each walks charge metering in list order, so
// list order is observable in scheduling decisions and counters.
//
// Everything else is derived and rebuilt rather than stored: node
// AvailableArea follows Eq. 4 from the resident configurations,
// downCount is a recount, the fast-search treap re-syncs from node
// state, and the entry/evict pools are allocation artifacts that
// restore empty.

// EncodeState appends the manager's dynamic state: per-node fabric
// contents in node order, then per-configuration list orders in
// configuration order (never map order — encoding must be
// deterministic).
//
//lint:metering serialization walks are host-side I/O between ticks, not simulated scheduler work
func (m *Manager) EncodeState(w *snapshot.Writer) {
	w.Int(len(m.nodes))
	for _, n := range m.nodes {
		w.Bool(n.Down)
		w.I64(n.ReconfigCount)
		w.Int(len(n.Entries))
		for _, e := range n.Entries {
			w.Int(e.Config.No)
			if e.Task != nil {
				w.Int(e.Task.No)
			} else {
				w.Int(-1)
			}
		}
	}
	for _, cfg := range m.configs {
		p := m.pairs[cfg.No]
		encodeList(w, p.Idle)
		encodeList(w, p.Busy)
	}
}

// encodeList appends one list's membership in head-first order; each
// entry is addressed as (node number, slot in that node's Entries).
//
//lint:metering serialization walks are host-side I/O between ticks, not simulated scheduler work
func encodeList(w *snapshot.Writer, l *reslists.List) {
	w.Int(l.Len())
	l.Each(func(e *model.Entry) bool {
		w.Int(e.Node.No)
		w.Int(entrySlot(e))
		return true
	})
}

// entrySlot locates e within its node's entry slice.
//
//lint:metering serialization walks are host-side I/O between ticks, not simulated scheduler work
func entrySlot(e *model.Entry) int {
	for i, cur := range e.Node.Entries {
		if cur == e {
			return i
		}
	}
	panic(fmt.Sprintf("resinfo: entry %v missing from its node", e))
}

// RestoreState rebuilds the fabric picture onto a freshly constructed
// manager (blank nodes, empty lists). taskByNo resolves task numbers
// to the run's restored task structs; it returns nil for unknown
// numbers, which this validation rejects.
//
//lint:metering restore walks re-build host data structures between ticks; the resumed run's counters come from the snapshot
func (m *Manager) RestoreState(r *snapshot.Reader, taskByNo func(no int) *model.Task) error {
	if n := r.Int(); r.Err() == nil && n != len(m.nodes) {
		return fmt.Errorf("%w: snapshot has %d nodes, run parameters build %d", snapshot.ErrCorrupt, n, len(m.nodes))
	}
	cfgByNo := make(map[int]*model.Config, len(m.configs))
	for _, cfg := range m.configs {
		cfgByNo[cfg.No] = cfg
	}
	m.downCount = 0
	for _, n := range m.nodes {
		if len(n.Entries) != 0 {
			return fmt.Errorf("resinfo: RestoreState needs blank nodes, node %d holds %d entries", n.No, len(n.Entries))
		}
		down := r.Bool()
		reconfigs := r.I64()
		nent := r.Count()
		if err := r.Err(); err != nil {
			return err
		}
		if reconfigs < 0 {
			return fmt.Errorf("%w: node %d reconfiguration count %d", snapshot.ErrCorrupt, n.No, reconfigs)
		}
		if down && nent > 0 {
			return fmt.Errorf("%w: down node %d holds %d configurations", snapshot.ErrCorrupt, n.No, nent)
		}
		if !n.PartialMode && nent > 1 {
			return fmt.Errorf("%w: full-mode node %d holds %d configurations", snapshot.ErrCorrupt, n.No, nent)
		}
		for i := 0; i < nent; i++ {
			cfgNo := r.Int()
			taskNo := r.Int()
			if err := r.Err(); err != nil {
				return err
			}
			cfg, ok := cfgByNo[cfgNo]
			if !ok {
				return fmt.Errorf("%w: node %d hosts unknown configuration %d", snapshot.ErrCorrupt, n.No, cfgNo)
			}
			if cfg.ReqArea > n.AvailableArea {
				return fmt.Errorf("%w: node %d over-committed by configuration %d (Eq. 4)", snapshot.ErrCorrupt, n.No, cfgNo)
			}
			e := &model.Entry{Config: cfg, Node: n}
			if taskNo >= 0 {
				task := taskByNo(taskNo)
				if task == nil {
					return fmt.Errorf("%w: node %d runs unknown task %d", snapshot.ErrCorrupt, n.No, taskNo)
				}
				e.Task = task
			}
			n.Entries = append(n.Entries, e)
			n.AvailableArea -= cfg.ReqArea
		}
		n.Down = down
		n.ReconfigCount = reconfigs
		if down {
			m.downCount++
		}
	}
	placed := 0
	for _, cfg := range m.configs {
		p := m.pairs[cfg.No]
		for _, l := range []*reslists.List{p.Idle, p.Busy} {
			n, err := m.restoreList(r, l, cfg)
			if err != nil {
				return err
			}
			placed += n
		}
	}
	total := 0
	for _, n := range m.nodes {
		total += len(n.Entries)
	}
	if placed != total {
		return fmt.Errorf("%w: %d entries resident but %d listed", snapshot.ErrCorrupt, total, placed)
	}
	for _, n := range m.nodes {
		m.reindex(n)
	}
	return nil
}

// restoreList rebuilds one list's membership and order. The snapshot
// holds head-first order and Add pushes at the head, so entries are
// re-added in reverse.
func (m *Manager) restoreList(r *snapshot.Reader, l *reslists.List, cfg *model.Config) (int, error) {
	n := r.Count()
	if err := r.Err(); err != nil {
		return 0, err
	}
	entries := make([]*model.Entry, n)
	for i := 0; i < n; i++ {
		nodeNo := r.Int()
		slot := r.Int()
		if err := r.Err(); err != nil {
			return 0, err
		}
		if nodeNo < 0 || nodeNo >= len(m.nodes) {
			return 0, fmt.Errorf("%w: %s list of C%d references node %d", snapshot.ErrCorrupt, l.Kind(), cfg.No, nodeNo)
		}
		node := m.nodes[nodeNo]
		if slot < 0 || slot >= len(node.Entries) {
			return 0, fmt.Errorf("%w: %s list of C%d references slot %d of node %d", snapshot.ErrCorrupt, l.Kind(), cfg.No, slot, nodeNo)
		}
		e := node.Entries[slot]
		if e.Config != cfg {
			return 0, fmt.Errorf("%w: entry N%d/%d holds C%d, listed under C%d", snapshot.ErrCorrupt, nodeNo, slot, e.Config.No, cfg.No)
		}
		if e.InIdle || e.InBusy {
			return 0, fmt.Errorf("%w: entry N%d/%d listed twice", snapshot.ErrCorrupt, nodeNo, slot)
		}
		if idle := e.Task == nil; idle != (l.Kind() == reslists.Idle) {
			return 0, fmt.Errorf("%w: entry N%d/%d in the wrong state for the %s list", snapshot.ErrCorrupt, nodeNo, slot, l.Kind())
		}
		entries[i] = e
	}
	for i := n - 1; i >= 0; i-- {
		l.Add(entries[i])
	}
	return n, nil
}
