package resinfo

import (
	"fmt"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/par"
)

// The SoA (structure-of-arrays) layer: the fields every placement scan
// filters on — free area, capability mask, blank/partial/busy/down
// state — live in dense parallel arrays indexed by model.Node.Slot, so
// the linear scans walk cache-contiguous int64/uint8 arrays instead of
// chasing *Node pointers and re-deriving State() per visit. On top of
// the arrays sit capability shards: searches never cross capability
// masks (a node missing a required capability can never host the
// configuration), so nodes are partitioned by exact capability mask
// and each query touches only the shards whose mask covers the
// configuration's requirement.
//
// The layer exists on every manager — it is the linear scan now, with
// the treap index (index.go) still taking over when FastSearch is live
// — and reindex keeps it in sync on the same transition tail that
// syncs the treaps. Each shard carries a version counter bumped on
// every member transition; the core's speculative batcher uses the
// counters to prove a decision computed against tick-start state is
// still valid at commit time (see core/batch.go and DESIGN.md §14).
//
// Populations whose capability name space exceeds 64 distinct names
// cannot be mask-encoded; they degrade to a single shard holding every
// node, with the per-node string subset test (HasCaps) back in the
// scan filter — the same fallback rule the treap index applies, with
// identical results and metering either way.

// Node-state flag bits, mirroring the classifications the placement
// phases filter on.
const (
	soaDown  uint8 = 1 << iota // Node.Down
	soaBlank                   // Blank() && !Down: a BestBlankNode candidate
	soaPart                    // PartialMode && !Blank(): a BestPartiallyBlankNode candidate
	soaBusy                    // State() == StateBusy: an AnyBusyNodeCouldFit candidate
)

// soaFlagsOf derives a node's flag byte from its live state.
//
//lint:metering flag derivation inspects one node during a state transition; the transition's walk is charged by its caller
func soaFlagsOf(n *model.Node) uint8 {
	var f uint8
	blank := len(n.Entries) == 0
	if n.Down {
		f |= soaDown
	}
	if blank && !n.Down {
		f |= soaBlank
	}
	if n.PartialMode && !blank {
		f |= soaPart
	}
	for _, e := range n.Entries {
		if e.Task != nil {
			f |= soaBusy
			break
		}
	}
	return f
}

// soaShard is one capability class: the slots of every node sharing
// one exact capability mask, in ascending slot order (so an in-order
// walk visits nodes in node-list order and ties resolve to the lower
// node number without extra work).
type soaShard struct {
	mask    uint64
	members []int32
	// ver increments on every member state transition; a query result
	// computed under one version is provably unaffected by later
	// events iff the versions of every shard its configuration can
	// reach are unchanged.
	ver uint64
}

// soaState is the manager's scan-field block.
type soaState struct {
	total   []int64 // Node.TotalArea by slot (static)
	avail   []int64 // Node.AvailableArea by slot
	flags   []uint8 // soaDown/soaBlank/soaPart/soaBusy by slot
	masks   []uint64
	capBits map[string]uint64
	maskOK  bool // false: >64 capability names, single-shard fallback
	shards  []soaShard
	shardOf []int32
}

// newSoaState builds the scan block over a fresh population. Both node
// capabilities and configuration requirements register in the bit
// assignment, so every well-formed query mask is representable.
//
//lint:metering construction-time layout build; the paper meters only the running scheduler
func newSoaState(nodes []*model.Node, configs []*model.Config) *soaState {
	s := &soaState{
		total:   make([]int64, len(nodes)),
		avail:   make([]int64, len(nodes)),
		flags:   make([]uint8, len(nodes)),
		shardOf: make([]int32, len(nodes)),
	}
	capLists := make([][]string, 0, len(nodes)+len(configs))
	for _, n := range nodes {
		capLists = append(capLists, n.Caps)
	}
	for _, cfg := range configs {
		capLists = append(capLists, cfg.RequiredCaps)
	}
	s.capBits, s.maskOK = model.CapBits(capLists...)
	if s.maskOK {
		s.masks = make([]uint64, len(nodes))
		shardIdx := make(map[uint64]int, 8)
		for i, n := range nodes {
			mask, _ := model.CapMaskOf(s.capBits, n.Caps)
			s.masks[i] = mask
			si, seen := shardIdx[mask]
			if !seen {
				si = len(s.shards)
				shardIdx[mask] = si
				s.shards = append(s.shards, soaShard{mask: mask})
			}
			s.shards[si].members = append(s.shards[si].members, int32(i))
			s.shardOf[i] = int32(si)
		}
	} else {
		members := make([]int32, len(nodes))
		for i := range nodes {
			members[i] = int32(i)
		}
		s.shards = []soaShard{{members: members}}
	}
	for i, n := range nodes {
		s.total[i] = int64(n.TotalArea)
		s.sync(i, n)
	}
	return s
}

// sync refreshes one slot from its node and bumps the shard version.
func (s *soaState) sync(slot int, n *model.Node) {
	s.avail[slot] = int64(n.AvailableArea)
	s.flags[slot] = soaFlagsOf(n)
	s.shards[s.shardOf[slot]].ver++
}

// reqMask folds a required-capability list into its query mask. A
// false second result under maskOK means a capability no node (and no
// registered configuration) declares — nothing can host it.
func (s *soaState) reqMask(caps []string) (uint64, bool) {
	if !s.maskOK {
		return 0, false
	}
	return model.CapMaskOf(s.capBits, caps)
}

// check validates the scan block against live node state.
//
//lint:metering debug validator; its walks are host-side checking, not simulated scheduler work
func (s *soaState) check(nodes []*model.Node) error {
	for i, n := range nodes {
		if n.Slot != i {
			return fmt.Errorf("resinfo: node %d carries slot %d, expected %d", n.No, n.Slot, i)
		}
		if s.total[i] != int64(n.TotalArea) || s.avail[i] != int64(n.AvailableArea) {
			return fmt.Errorf("resinfo: SoA areas of node %d stale: total %d/%d, avail %d/%d",
				n.No, s.total[i], n.TotalArea, s.avail[i], n.AvailableArea)
		}
		if want := soaFlagsOf(n); s.flags[i] != want {
			return fmt.Errorf("resinfo: SoA flags of node %d stale: %04b, expected %04b", n.No, s.flags[i], want)
		}
		if s.maskOK {
			mask, ok := model.CapMaskOf(s.capBits, n.Caps)
			if !ok || s.masks[i] != mask {
				return fmt.Errorf("resinfo: SoA capability mask of node %d stale", n.No)
			}
			if s.shards[s.shardOf[i]].mask != mask {
				return fmt.Errorf("resinfo: node %d sharded under mask %x, carries %x",
					n.No, s.shards[s.shardOf[i]].mask, mask)
			}
		}
	}
	seen := 0
	for si := range s.shards {
		prev := int32(-1)
		for _, p := range s.shards[si].members {
			if p <= prev {
				return fmt.Errorf("resinfo: shard %d members out of order", si)
			}
			if s.shardOf[p] != int32(si) {
				return fmt.Errorf("resinfo: slot %d listed in shard %d but assigned %d", p, si, s.shardOf[p])
			}
			prev = p
			seen++
		}
	}
	if seen != len(nodes) {
		return fmt.Errorf("resinfo: shards hold %d slots, population has %d", seen, len(nodes))
	}
	return nil
}

// parSpanMin is the member count below which dispatching a scan to the
// worker pool costs more than the scan; it also gates pool creation on
// the population size. Small sweep-grid cells (50–150 nodes) never
// touch the pool. Var, not const, so tests can force the parallel
// kernels on small populations.
var parSpanMin = 2048

// parScan holds the parallel scan kernels plus their per-worker result
// slots, allocated once per manager so a dispatch allocates nothing.
// Result slots are stride-8 padded (one cache line apart) so workers
// do not false-share.
type parScan struct {
	workers int
	best    bestKernel
	fit     fitKernel
	bestKey []int64
	bestPos []int64
	fitPos  []int64
}

func newParScan(workers int) *parScan {
	return &parScan{
		workers: workers,
		bestKey: make([]int64, workers*8),
		bestPos: make([]int64, workers*8),
		fitPos:  make([]int64, workers*8),
	}
}

// bestKernel is the argmin scan: over one shard's members, find the
// minimum key (TotalArea for blank placement, AvailableArea for
// partial placement) among nodes matching the flag filter with
// sufficient area, ties to the lower slot. Chunks reduce into
// per-worker slots; the caller's final reduction over the fixed worker
// order is schedule-independent, so the result is deterministic no
// matter how the OS interleaves the workers.
type bestKernel struct {
	key     []int64
	flags   []uint8
	want    uint8
	reqArea int64
	members []int32
	// Fallback filter for the >64-capability single-shard degrade.
	useCaps bool
	nodes   []*model.Node
	caps    []string
	// Result slots, stride 8: outKey[w*8], outPos[w*8] (-1 = none).
	outKey []int64
	outPos []int64
}

//dreamsim:noalloc
func (k *bestKernel) RunChunk(w, lo, hi int) {
	bestPos := int64(-1)
	var bestKey int64
	for _, p := range k.members[lo:hi] {
		if k.flags[p]&k.want == 0 {
			continue
		}
		a := k.key[p]
		if a < k.reqArea {
			continue
		}
		if k.useCaps && !k.nodes[p].HasCaps(k.caps) {
			continue
		}
		if bestPos < 0 || a < bestKey {
			bestKey, bestPos = a, int64(p)
		}
	}
	k.outKey[w*8], k.outPos[w*8] = bestKey, bestPos
}

// fitKernel finds the minimum slot matching the flag filter whose
// TotalArea fits the requirement — the busy-fit existence probe, whose
// linear charge is that slot's position + 1. Members ascend, so the
// first match in a chunk is the chunk's minimum.
type fitKernel struct {
	flags   []uint8
	want    uint8
	total   []int64
	reqArea int64
	members []int32
	useCaps bool
	nodes   []*model.Node
	caps    []string
	outPos  []int64
}

//dreamsim:noalloc
func (k *fitKernel) RunChunk(w, lo, hi int) {
	pos := int64(-1)
	for _, p := range k.members[lo:hi] {
		if k.flags[p]&k.want == 0 || k.total[p] < k.reqArea {
			continue
		}
		if k.useCaps && !k.nodes[p].HasCaps(k.caps) {
			continue
		}
		pos = int64(p)
		break
	}
	k.outPos[w*8] = pos
}

// shardBest runs the argmin scan over one shard, on the pool when the
// shard is large enough and the manager owns one, sequentially (same
// kernel, one chunk) otherwise. Returns the best (key, slot), slot -1
// when the shard holds no candidate.
//
//dreamsim:noalloc
func (m *Manager) shardBest(sh *soaShard, want uint8, key []int64, reqArea int64, caps []string, useCaps bool) (int64, int64) {
	s := m.soa
	if m.pool != nil && len(sh.members) >= parSpanMin {
		k := &m.pj.best
		*k = bestKernel{
			key: key, flags: s.flags, want: want, reqArea: reqArea, members: sh.members,
			useCaps: useCaps, nodes: m.nodes, caps: caps,
			outKey: m.pj.bestKey, outPos: m.pj.bestPos,
		}
		m.pool.Run(k, len(sh.members))
		bestPos := int64(-1)
		var bestKey int64
		for w, used := 0, m.pool.Chunks(len(sh.members)); w < used; w++ {
			p := m.pj.bestPos[w*8]
			if p < 0 {
				continue
			}
			a := m.pj.bestKey[w*8]
			if bestPos < 0 || a < bestKey || (a == bestKey && p < bestPos) {
				bestKey, bestPos = a, p
			}
		}
		return bestKey, bestPos
	}
	bestPos := int64(-1)
	var bestKey int64
	for _, p := range sh.members {
		if s.flags[p]&want == 0 {
			continue
		}
		a := key[p]
		if a < reqArea {
			continue
		}
		if useCaps && !m.nodes[p].HasCaps(caps) {
			continue
		}
		if bestPos < 0 || a < bestKey {
			bestKey, bestPos = a, int64(p)
		}
	}
	return bestKey, bestPos
}

// scanBest is the sharded argmin search behind BestBlankNode (want =
// soaBlank, key = TotalArea) and BestPartiallyBlankNode (want =
// soaPart, key = AvailableArea). It reduces shard results by
// (key, slot) with ties to the lower slot — exactly the node the flat
// strict-< walk in node order would keep. The caller charges the walk.
//
//dreamsim:noalloc
func (m *Manager) scanBest(cfg *model.Config, want uint8, key []int64) *model.Node {
	s := m.soa
	// masked: the requirement is representable, so incompatible shards
	// are skipped wholesale and the mask test replaces HasCaps. An
	// unrepresentable requirement (>64-name population, or a query
	// capability the build never registered) degrades to the per-node
	// string test over every shard — the flat paper scan.
	req, reqOK := s.reqMask(cfg.RequiredCaps)
	masked := s.maskOK && reqOK
	bestPos := int64(-1)
	var bestKey int64
	for si := range s.shards {
		sh := &s.shards[si]
		if masked && sh.mask&req != req {
			continue
		}
		a, p := m.shardBest(sh, want, key, int64(cfg.ReqArea), cfg.RequiredCaps, !masked)
		if p >= 0 && (bestPos < 0 || a < bestKey || (a == bestKey && p < bestPos)) {
			bestKey, bestPos = a, p
		}
	}
	if bestPos < 0 {
		return nil
	}
	return m.nodes[bestPos]
}

// scanFirstFit returns the lowest slot matching want with TotalArea ≥
// the requirement across the compatible shards, or -1 — the sharded
// form of the early-exit busy walk, whose charge is slot + 1.
//
//dreamsim:noalloc
func (m *Manager) scanFirstFit(cfg *model.Config, want uint8) int64 {
	s := m.soa
	req, reqOK := s.reqMask(cfg.RequiredCaps)
	masked := s.maskOK && reqOK
	best := int64(-1)
	for si := range s.shards {
		sh := &s.shards[si]
		if masked && sh.mask&req != req {
			continue
		}
		var pos int64
		if m.pool != nil && len(sh.members) >= parSpanMin {
			k := &m.pj.fit
			*k = fitKernel{
				flags: s.flags, want: want, total: s.total, reqArea: int64(cfg.ReqArea),
				members: sh.members, useCaps: !masked, nodes: m.nodes, caps: cfg.RequiredCaps,
				outPos: m.pj.fitPos,
			}
			m.pool.Run(k, len(sh.members))
			pos = -1
			for w, used := 0, m.pool.Chunks(len(sh.members)); w < used; w++ {
				if p := m.pj.fitPos[w*8]; p >= 0 && (pos < 0 || p < pos) {
					pos = p
				}
			}
		} else {
			pos = -1
			useCaps := !masked
			for _, p := range sh.members {
				if s.flags[p]&want == 0 || s.total[p] < int64(cfg.ReqArea) {
					continue
				}
				if useCaps && !m.nodes[p].HasCaps(cfg.RequiredCaps) {
					continue
				}
				pos = int64(p)
				break
			}
		}
		if pos >= 0 && (best < 0 || pos < best) {
			best = pos
		}
	}
	return best
}

// Shadow returns a search-only view of the manager for concurrent
// speculative decisions: it shares the node/configuration population,
// the idle/busy lists, the SoA block and the treap index (all of which
// only the live manager mutates, between speculation rounds), but owns
// private counters and scratch so concurrent searches on different
// shadows never write shared state. Shadows must never be passed to a
// mutating method (Configure, StartTask, ...) — reindex asserts this
// under -tags invariants — and their reads are only coherent while the
// live manager is quiescent. Refresh with SyncShadow before each
// speculation round.
func (m *Manager) Shadow() *Manager {
	s := &Manager{}
	m.SyncShadow(s)
	return s
}

// SyncShadow re-copies the live manager's scalar state (down-node
// count, index pointers) into a shadow while preserving the shadow's
// private counters and scratch buffers.
func (m *Manager) SyncShadow(s *Manager) {
	c, evict := s.c, s.evict
	*s = *m
	if c == nil {
		c = &metrics.Counters{}
	}
	s.c = c
	s.evict = evict
	s.entryFree = nil
	s.pool = nil // shadows scan sequentially; parallelism comes from concurrent shadows
	s.pj = nil
	s.shadow = true
}

// TakeCharges drains the counters a shadow's searches accumulated —
// the metered steps a live decision would have charged — returning
// them for deferred commit against the real counters.
func (m *Manager) TakeCharges() (search, housekeep uint64) {
	search, housekeep = m.c.SchedulerSearch, m.c.HousekeepingSteps
	m.c.SchedulerSearch, m.c.HousekeepingSteps = 0, 0
	return search, housekeep
}

// ShardVersions appends the current shard version vector into dst
// (reused; pass the previous round's slice to avoid allocation).
func (m *Manager) ShardVersions(dst []uint64) []uint64 {
	dst = dst[:0]
	for i := range m.soa.shards {
		dst = append(dst, m.soa.shards[i].ver)
	}
	return dst
}

// ShardsUnchangedFor reports whether every shard a configuration's
// search can reach still carries the version captured in snap. All
// placement reads and all metered charges of a decision for cfg are
// functions of compatible-shard state plus static data (regions only
// ever live on capability-compatible nodes, and the flat charges are
// population constants), so an unchanged vector proves a speculative
// decision for cfg — result and charges — equals the live one.
// Incompatible-shard transitions are invisible to the decision and do
// not invalidate. A nil cfg (unresolvable preferred+closest
// configuration) reads only the static configuration list: always
// valid.
func (m *Manager) ShardsUnchangedFor(cfg *model.Config, snap []uint64) bool {
	s := m.soa
	if len(snap) != len(s.shards) {
		return false
	}
	if cfg == nil {
		return true
	}
	req, reqOK := s.reqMask(cfg.RequiredCaps)
	if !s.maskOK || !reqOK {
		// Unrepresentable requirement: the search degrades to a flat
		// HasCaps scan over every shard, so every shard is reachable.
		for i := range s.shards {
			if s.shards[i].ver != snap[i] {
				return false
			}
		}
		return true
	}
	for i := range s.shards {
		if s.shards[i].mask&req == req && s.shards[i].ver != snap[i] {
			return false
		}
	}
	return true
}

// ShardCount reports the number of capability classes (1 when the
// population degraded to the flat fallback).
func (m *Manager) ShardCount() int { return len(m.soa.shards) }

// IntraParallel reports the scan pool width (1 = sequential scans).
func (m *Manager) IntraParallel() int {
	if m.pool == nil {
		return 1
	}
	return m.pool.Workers()
}

// ClosePool stops the scan worker pool early (it is otherwise
// finalized when the manager becomes unreachable). The manager falls
// back to sequential scans afterwards; results are identical.
func (m *Manager) ClosePool() {
	if m.pool != nil {
		m.pool.Close()
		m.pool = nil
		m.pj = nil
	}
}

// initPool builds the scan worker pool when intra-run parallelism is
// requested and the population is large enough for a dispatch to pay.
func (m *Manager) initPool() {
	if m.ipar > 1 && len(m.nodes) >= parSpanMin {
		if p := par.NewPool(m.ipar); p != nil {
			m.pool = p
			m.pj = newParScan(p.Workers())
		}
	}
}
