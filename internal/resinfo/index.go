package resinfo

// The indexed placement-search fast path. The paper meters the
// resource information manager's node searches as linear walks
// ("currently a simple linear search is employed", §IV-C), but the
// metering is a model output, not an execution constraint: this index
// answers the same queries in O(log n) while the Manager keeps
// charging the counters the metered linear walk would have charged,
// so Results are bit-identical between the two modes.
//
// Structure: nodes are bucketed by capability mask (one bucket per
// distinct caps set; the homogeneous paper population is a single
// bucket) and each bucket maintains three area-ordered sets —
//
//	blank  nodes, keyed by (TotalArea, position)      → BestBlankNode
//	partial-mode configured nodes, (AvailableArea, _) → BestPartiallyBlankNode
//	busy   nodes, keyed by (TotalArea, position)      → AnyBusyNodeCouldFit
//
// Ordering by (area, node position) reproduces the linear scans'
// tie-break exactly: a strict `<` comparison keeps the earliest
// minimum, i.e. the lexicographic minimum of (area, position). The
// busy set is additionally augmented with subtree-minimum positions
// so the *first matching position* — which the linear walk's
// early-exit step count depends on — is an O(log n) query too.
//
// Sets are deterministic treaps (priorities hashed from the node
// position), maintained incrementally by Manager.reindex on every
// Configure / EvictIdle / BlankNode / StartTask / FinishTask
// transition. Index maintenance charges no counters: the model's
// accounting describes the simulated linear-search scheduler, not the
// host data structure.

import (
	"fmt"

	"dreamsim/internal/model"
)

// tnode is one treap element: the key (area, pos) with a deterministic
// heap priority and the minimum pos of its subtree.
type tnode struct {
	area        int64
	pos         int
	prio        uint64
	minPos      int
	left, right *tnode
}

// tLess orders keys by (area, pos).
func tLess(a1 int64, p1 int, a2 int64, p2 int) bool {
	return a1 < a2 || (a1 == a2 && p1 < p2)
}

// prioFor hashes a node position into a treap priority (SplitMix64
// scramble); deterministic so index shape never varies across runs.
func prioFor(pos int) uint64 {
	z := uint64(pos)*0x9e3779b97f4a7c15 + 0xd1b54a32d192ed03
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (n *tnode) pull() {
	n.minPos = n.pos
	if n.left != nil && n.left.minPos < n.minPos {
		n.minPos = n.left.minPos
	}
	if n.right != nil && n.right.minPos < n.minPos {
		n.minPos = n.right.minPos
	}
}

func rotRight(n *tnode) *tnode {
	l := n.left
	n.left = l.right
	l.right = n
	n.pull()
	l.pull()
	return l
}

func rotLeft(n *tnode) *tnode {
	r := n.right
	n.right = r.left
	r.left = n
	n.pull()
	r.pull()
	return r
}

// tpool recycles tnode structs across insert/remove cycles: every
// node state transition updates up to three treaps, so an unpooled
// index allocates on the simulation's hottest path.
type tpool struct {
	free []*tnode
}

func (p *tpool) get(area int64, pos int) *tnode {
	if n := len(p.free) - 1; n >= 0 {
		x := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		*x = tnode{area: area, pos: pos, prio: prioFor(pos), minPos: pos}
		return x
	}
	//lint:allocfree pool miss: one tnode per treap high-water mark, amortized to zero in steady state (gated by TestSearchZeroAlloc)
	return &tnode{area: area, pos: pos, prio: prioFor(pos), minPos: pos}
}

func (p *tpool) put(x *tnode) {
	x.left, x.right = nil, nil
	p.free = append(p.free, x)
}

// treap is an ordered set of (area, pos) keys drawing its nodes from
// a shared pool.
type treap struct {
	root *tnode
	pool *tpool
}

func (t *treap) insert(area int64, pos int) {
	t.root = tInsert(t.root, t.pool.get(area, pos))
}

func tInsert(n, x *tnode) *tnode {
	if n == nil {
		return x
	}
	if tLess(x.area, x.pos, n.area, n.pos) {
		n.left = tInsert(n.left, x)
		if n.left.prio > n.prio {
			n = rotRight(n)
		}
	} else {
		n.right = tInsert(n.right, x)
		if n.right.prio > n.prio {
			n = rotLeft(n)
		}
	}
	n.pull()
	return n
}

func (t *treap) remove(area int64, pos int) bool {
	root, rm := tRemove(t.root, area, pos)
	t.root = root
	if rm == nil {
		return false
	}
	t.pool.put(rm)
	return true
}

func tRemove(n *tnode, area int64, pos int) (root, removed *tnode) {
	if n == nil {
		return nil, nil
	}
	if area == n.area && pos == n.pos {
		return tMerge(n.left, n.right), n
	}
	var rm *tnode
	if tLess(area, pos, n.area, n.pos) {
		n.left, rm = tRemove(n.left, area, pos)
	} else {
		n.right, rm = tRemove(n.right, area, pos)
	}
	n.pull()
	return n, rm
}

func tMerge(a, b *tnode) *tnode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio > b.prio {
		a.right = tMerge(a.right, b)
		a.pull()
		return a
	}
	b.left = tMerge(a, b.left)
	b.pull()
	return b
}

// ceil returns the lexicographically smallest (area, pos) with
// area >= minArea — exactly the element a strict-less linear scan
// for the minimum sufficient area would keep.
func (t *treap) ceil(minArea int64) (area int64, pos int, ok bool) {
	var best *tnode
	for n := t.root; n != nil; {
		if n.area >= minArea {
			best = n
			n = n.left
		} else {
			n = n.right
		}
	}
	if best == nil {
		return 0, 0, false
	}
	return best.area, best.pos, true
}

// minPosGE returns the smallest pos among elements with area >=
// minArea — the position at which a linear early-exit walk would have
// stopped.
func (t *treap) minPosGE(minArea int64) (int, bool) {
	best := -1
	for n := t.root; n != nil; {
		if n.area >= minArea {
			// n and its whole right subtree qualify; the left subtree
			// may still hold qualifying smaller keys.
			if best < 0 || n.pos < best {
				best = n.pos
			}
			if n.right != nil && n.right.minPos < best {
				best = n.right.minPos
			}
			n = n.left
		} else {
			// Everything left of a too-small key is smaller still.
			n = n.right
		}
	}
	return best, best >= 0
}

// contains reports set membership (invariant checking).
func (t *treap) contains(area int64, pos int) bool {
	for n := t.root; n != nil; {
		if area == n.area && pos == n.pos {
			return true
		}
		if tLess(area, pos, n.area, n.pos) {
			n = n.left
		} else {
			n = n.right
		}
	}
	return false
}

// maskBucket holds the three search sets of one capability mask.
type maskBucket struct {
	blank treap // key (TotalArea, pos)
	part  treap // key (AvailableArea, pos)
	busy  treap // key (TotalArea, pos)
}

// idxState caches a node's index membership so transitions diff
// against it instead of searching the treaps. The bucket pointer is
// cached too, sparing sync a map lookup per transition.
type idxState struct {
	mask   uint64
	bucket *maskBucket
	blank  bool
	part   bool
	busy   bool
	pArea  int64 // AvailableArea key the node sits under in `part`
}

// nodeIndex is the whole accelerator: capability buckets plus the
// per-node membership cache.
type nodeIndex struct {
	nodes   []*model.Node
	capBits map[string]uint64
	masks   []uint64 // distinct node masks, creation order
	buckets map[uint64]*maskBucket
	state   []idxState
	pos     map[*model.Node]int
	pool    tpool // shared tnode recycler for every bucket's treaps
}

// newNodeIndex builds the index over the node population. It reports
// failure (nil, false) when the capability name space exceeds the
// 64-bit mask encoding; callers then stay on the linear path.
//
//lint:metering index construction is host data-structure maintenance; the metered workload models the linear scheduler
func newNodeIndex(nodes []*model.Node, configs []*model.Config) (*nodeIndex, bool) {
	capLists := make([][]string, 0, len(nodes)+len(configs))
	for _, n := range nodes {
		capLists = append(capLists, n.Caps)
	}
	for _, c := range configs {
		capLists = append(capLists, c.RequiredCaps)
	}
	bits, ok := model.CapBits(capLists...)
	if !ok {
		return nil, false
	}
	ix := &nodeIndex{
		nodes:   nodes,
		capBits: bits,
		buckets: make(map[uint64]*maskBucket),
		state:   make([]idxState, len(nodes)),
		pos:     make(map[*model.Node]int, len(nodes)),
	}
	for i, n := range nodes {
		mask, _ := model.CapMaskOf(bits, n.Caps) // all names registered above
		b, seen := ix.buckets[mask]
		if !seen {
			b = &maskBucket{}
			b.blank.pool, b.part.pool, b.busy.pool = &ix.pool, &ix.pool, &ix.pool
			ix.buckets[mask] = b
			ix.masks = append(ix.masks, mask)
		}
		ix.pos[n] = i
		ix.state[i] = idxState{mask: mask, bucket: b}
		ix.sync(i, n)
	}
	return ix, true
}

// sync reconciles one node's index membership with its actual state
// after a transition; O(log n).
func (ix *nodeIndex) sync(pos int, n *model.Node) {
	st := &ix.state[pos]
	b := st.bucket
	// A down node belongs to no search category: it is structurally
	// blank (its entries died with it) but must never be returned by
	// BestBlankNode until it recovers.
	blank := n.Blank() && !n.Down
	part := n.PartialMode && !n.Blank()
	busy := n.State() == model.StateBusy

	if blank != st.blank {
		if blank {
			b.blank.insert(n.TotalArea, pos)
		} else {
			b.blank.remove(n.TotalArea, pos)
		}
		st.blank = blank
	}
	if part != st.part || (part && st.pArea != n.AvailableArea) {
		if st.part {
			b.part.remove(st.pArea, pos)
		}
		if part {
			b.part.insert(n.AvailableArea, pos)
			st.pArea = n.AvailableArea
		}
		st.part = part
	}
	if busy != st.busy {
		if busy {
			b.busy.insert(n.TotalArea, pos)
		} else {
			b.busy.remove(n.TotalArea, pos)
		}
		st.busy = busy
	}
}

// reqMask encodes a configuration's required caps; ok is false when a
// required capability exists on no node and no config, i.e. nothing
// can ever match.
func (ix *nodeIndex) reqMask(caps []string) (uint64, bool) {
	return model.CapMaskOf(ix.capBits, caps)
}

// bestBlank returns the blank, capability-compatible node with the
// lexicographically minimal (TotalArea, position) among those with
// TotalArea >= reqArea — the node the metered linear scan returns.
func (ix *nodeIndex) bestBlank(cfg *model.Config) *model.Node {
	return ix.best(cfg, func(b *maskBucket) *treap { return &b.blank })
}

// bestPart is the same query over partial-mode configured nodes and
// their AvailableArea.
func (ix *nodeIndex) bestPart(cfg *model.Config) *model.Node {
	return ix.best(cfg, func(b *maskBucket) *treap { return &b.part })
}

func (ix *nodeIndex) best(cfg *model.Config, set func(*maskBucket) *treap) *model.Node {
	req, ok := ix.reqMask(cfg.RequiredCaps)
	if !ok {
		return nil
	}
	bestPos := -1
	var bestArea int64
	for _, mask := range ix.masks {
		if mask&req != req {
			continue
		}
		area, pos, ok := set(ix.buckets[mask]).ceil(cfg.ReqArea)
		if !ok {
			continue
		}
		if bestPos < 0 || tLess(area, pos, bestArea, bestPos) {
			bestArea, bestPos = area, pos
		}
	}
	if bestPos < 0 {
		return nil
	}
	return ix.nodes[bestPos]
}

// firstBusyFit returns the position of the first busy, compatible
// node with TotalArea >= reqArea — i.e. where the linear early-exit
// walk would have stopped — or -1 when none exists.
func (ix *nodeIndex) firstBusyFit(cfg *model.Config) int {
	req, ok := ix.reqMask(cfg.RequiredCaps)
	if !ok {
		return -1
	}
	best := -1
	for _, mask := range ix.masks {
		if mask&req != req {
			continue
		}
		if pos, ok := ix.buckets[mask].busy.minPosGE(cfg.ReqArea); ok && (best < 0 || pos < best) {
			best = pos
		}
	}
	return best
}

// check validates the index against the ground-truth node states
// (tests and the engine's debug mode).
//
//lint:metering debug validator; its walks are host-side checking, not simulated scheduler work
func (ix *nodeIndex) check() error {
	for i, n := range ix.nodes {
		st := ix.state[i]
		b := ix.buckets[st.mask]
		blank, part, busy := n.Blank() && !n.Down, n.PartialMode && !n.Blank(), n.State() == model.StateBusy
		if st.blank != blank || st.part != part || st.busy != busy {
			return fmt.Errorf("resinfo: index state for node %d is (blank=%v part=%v busy=%v), node is (%v %v %v)",
				n.No, st.blank, st.part, st.busy, blank, part, busy)
		}
		if part && st.pArea != n.AvailableArea {
			return fmt.Errorf("resinfo: index key %d for node %d, AvailableArea is %d",
				st.pArea, n.No, n.AvailableArea)
		}
		if blank != b.blank.contains(n.TotalArea, i) {
			return fmt.Errorf("resinfo: blank-set membership of node %d inconsistent", n.No)
		}
		if part != b.part.contains(st.pArea, i) {
			return fmt.Errorf("resinfo: partial-set membership of node %d inconsistent", n.No)
		}
		if busy != b.busy.contains(n.TotalArea, i) {
			return fmt.Errorf("resinfo: busy-set membership of node %d inconsistent", n.No)
		}
	}
	return nil
}
