package rng

import (
	"math"
	"testing"
	"testing/quick"
)

const statN = 200000

// moments draws n samples and returns mean and variance.
func moments(n int, draw func() float64) (mean, variance float64) {
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sumsq += v * v
	}
	mean = sum / float64(n)
	variance = sumsq/float64(n) - mean*mean
	return
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.RandUint64() != b.RandUint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestSeedSeparation(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.RandUint64() == b.RandUint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds collided on %d of 1000 draws", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.RandUint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced repeats: %d distinct of 100", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64UniformMoments(t *testing.T) {
	r := New(11)
	mean, variance := moments(statN, r.Float64)
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12.0) > 0.01 {
		t.Errorf("uniform variance = %v, want ~%v", variance, 1.0/12.0)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(5)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := draws / n
	for i, c := range counts {
		if math.Abs(float64(c-want)) > 4*math.Sqrt(float64(want)) {
			t.Errorf("bucket %d: count %d deviates from %d", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntRangeInclusive(t *testing.T) {
	r := New(9)
	lo, hi := 10, 20
	seenLo, seenHi := false, false
	for i := 0; i < 20000; i++ {
		v := r.IntRange(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seenLo = seenLo || v == lo
		seenHi = seenHi || v == hi
	}
	if !seenLo || !seenHi {
		t.Errorf("endpoints not reached: lo=%v hi=%v", seenLo, seenHi)
	}
	if got := r.IntRange(5, 5); got != 5 {
		t.Errorf("degenerate range returned %d", got)
	}
}

func TestInt64Range(t *testing.T) {
	r := New(13)
	lo, hi := int64(-1000), int64(1000)
	for i := 0; i < 10000; i++ {
		v := r.Int64Range(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Int64Range out of bounds: %d", v)
		}
	}
	if got := r.Int64Range(-3, -3); got != -3 {
		t.Errorf("degenerate range returned %d", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(17)
	mean, variance := moments(statN, r.Normal)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalTailFrequency(t *testing.T) {
	r := New(19)
	const n = statN
	tail := 0
	for i := 0; i < n; i++ {
		if math.Abs(r.Normal()) > 2 {
			tail++
		}
	}
	// P(|Z|>2) ~ 0.0455.
	frac := float64(tail) / n
	if frac < 0.035 || frac > 0.056 {
		t.Errorf("P(|Z|>2) estimate = %v, want ~0.0455", frac)
	}
}

func TestNormalMS(t *testing.T) {
	r := New(21)
	mean, variance := moments(statN, func() float64 { return r.NormalMS(10, 3) })
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", mean)
	}
	if math.Abs(variance-9) > 0.3 {
		t.Errorf("variance = %v, want ~9", variance)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(23)
	mean, variance := moments(statN, r.Exponential)
	if math.Abs(mean-1) > 0.02 {
		t.Errorf("exp mean = %v, want ~1", mean)
	}
	if math.Abs(variance-1) > 0.06 {
		t.Errorf("exp variance = %v, want ~1", variance)
	}
}

func TestExponentialPositive(t *testing.T) {
	r := New(29)
	for i := 0; i < 100000; i++ {
		if v := r.Exponential(); v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
	}
}

func TestExpRate(t *testing.T) {
	r := New(31)
	mean, _ := moments(statN, func() float64 { return r.ExpRate(4) })
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("ExpRate(4) mean = %v, want ~0.25", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 2}, {2.5, 1}, {9, 0.5}, {20, 1},
	} {
		r := New(37)
		mean, variance := moments(statN, func() float64 { return r.Gamma(tc.shape, tc.scale) })
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.12*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance = %v, want ~%v", tc.shape, tc.scale, variance, wantVar)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 29, 30, 80, 400} {
		r := New(41)
		m, v := moments(statN/2, func() float64 { return float64(r.Poisson(mean)) })
		if math.Abs(m-mean) > 0.04*mean+0.05 {
			t.Errorf("Poisson(%v) mean = %v", mean, m)
		}
		if math.Abs(v-mean) > 0.10*mean+0.1 {
			t.Errorf("Poisson(%v) variance = %v", mean, v)
		}
	}
}

func TestPoissonEdge(t *testing.T) {
	r := New(43)
	if got := r.Poisson(0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Poisson(-1) did not panic")
		}
	}()
	r.Poisson(-1)
}

func TestBinomialMoments(t *testing.T) {
	for _, tc := range []struct {
		p float64
		n int
	}{
		{0.1, 50}, {0.5, 40}, {0.9, 30}, {0.01, 1000},
	} {
		r := New(47)
		wantMean := tc.p * float64(tc.n)
		wantVar := wantMean * (1 - tc.p)
		m, v := moments(statN/4, func() float64 { return float64(r.Binomial(tc.p, tc.n)) })
		if math.Abs(m-wantMean) > 0.05*wantMean+0.05 {
			t.Errorf("Binomial(%v,%d) mean = %v, want ~%v", tc.p, tc.n, m, wantMean)
		}
		if math.Abs(v-wantVar) > 0.12*wantVar+0.1 {
			t.Errorf("Binomial(%v,%d) variance = %v, want ~%v", tc.p, tc.n, v, wantVar)
		}
	}
}

func TestBinomialEdges(t *testing.T) {
	r := New(53)
	if got := r.Binomial(0, 10); got != 0 {
		t.Errorf("Binomial(0,10) = %d", got)
	}
	if got := r.Binomial(1, 10); got != 10 {
		t.Errorf("Binomial(1,10) = %d", got)
	}
	if got := r.Binomial(0.5, 0); got != 0 {
		t.Errorf("Binomial(0.5,0) = %d", got)
	}
	for i := 0; i < 10000; i++ {
		if got := r.Binomial(0.3, 7); got < 0 || got > 7 {
			t.Fatalf("Binomial out of range: %d", got)
		}
	}
}

func TestMultinomSumsToN(t *testing.T) {
	r := New(59)
	probs := []float64{0.1, 0.2, 0.3, 0.4}
	for trial := 0; trial < 200; trial++ {
		out := r.Multinom(1000, probs)
		sum := 0
		for _, c := range out {
			if c < 0 {
				t.Fatalf("negative category count %d", c)
			}
			sum += c
		}
		if sum != 1000 {
			t.Fatalf("Multinom sum = %d, want 1000", sum)
		}
	}
}

func TestMultinomProportions(t *testing.T) {
	r := New(61)
	probs := []float64{1, 1, 2} // normalised internally
	totals := make([]float64, 3)
	const trials = 300
	for i := 0; i < trials; i++ {
		for j, c := range r.Multinom(1000, probs) {
			totals[j] += float64(c)
		}
	}
	want := []float64{0.25, 0.25, 0.5}
	for j := range want {
		got := totals[j] / (1000 * trials)
		if math.Abs(got-want[j]) > 0.02 {
			t.Errorf("category %d proportion = %v, want ~%v", j, got, want[j])
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(67)
	for _, n := range []int{0, 1, 2, 10, 257} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(71)
	child := parent.Split()
	// Child stream must differ from continued parent stream.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.RandUint64() == child.RandUint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("parent and child streams collided %d times", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	a := New(73).Split()
	b := New(73).Split()
	for i := 0; i < 100; i++ {
		if a.RandUint64() != b.RandUint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestLogFactorial(t *testing.T) {
	// Compare against direct summation for a spread of n.
	for _, n := range []int{0, 1, 2, 5, 50, 127, 128, 500, 10000} {
		want := 0.0
		for i := 2; i <= n; i++ {
			want += math.Log(float64(i))
		}
		got := logFactorial(float64(n))
		if math.Abs(got-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("logFactorial(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestZigguratTablesMonotone(t *testing.T) {
	for i := 0; i < 128; i++ {
		if normX[i] < normX[i+1] {
			t.Fatalf("normX not decreasing at %d: %v < %v", i, normX[i], normX[i+1])
		}
	}
	for i := 0; i < 256; i++ {
		if expX[i] < expX[i+1] {
			t.Fatalf("expX not decreasing at %d: %v < %v", i, expX[i], expX[i+1])
		}
	}
	if normX[1] != normR || expX[1] != expR {
		t.Fatal("table anchors corrupted")
	}
	if normX[128] > 0.05 {
		t.Errorf("normX top layer did not converge to ~0: %v", normX[128])
	}
	if expX[256] > 0.05 {
		t.Errorf("expX top layer did not converge to ~0: %v", expX[256])
	}
}

// Property: IntRange always falls inside its inclusive bounds.
func TestQuickIntRange(t *testing.T) {
	r := New(79)
	f := func(a, b int16, _ uint8) bool {
		lo, hi := int(a), int(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.IntRange(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Multinom conserves trials for arbitrary positive weights.
func TestQuickMultinomConserves(t *testing.T) {
	r := New(83)
	f := func(w1, w2, w3 uint8, n uint16) bool {
		probs := []float64{float64(w1) + 1, float64(w2) + 1, float64(w3) + 1}
		out := r.Multinom(uint(n), probs)
		sum := 0
		for _, c := range out {
			if c < 0 {
				return false
			}
			sum += c
		}
		return sum == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.RandUint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Normal()
	}
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(2.5, 1)
	}
}

func BenchmarkPoissonLarge(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(100)
	}
}
