// Package rng implements the random number substrate of DReAMSim.
//
// The paper's RNG class (§IV-C) is "based on the Ziggurat Method
// [Marsaglia & Tsang 2000a] using the algorithm described in
// [Marsaglia & Tsang 2000b] for generating Gamma variables" and
// provides Poisson, binomial, gamma, uniform and multinomial
// distributions on top of a raw rand_int32 source.
//
// This package is a from-scratch implementation of that stack:
//
//   - a small, fast 64-bit xorshift* core exposed as RandInt32 /
//     RandUint64 (Marsaglia's xorshift family),
//   - the Ziggurat method for standard normal and exponential variates,
//   - the Marsaglia–Tsang "simple method" for Gamma(shape, scale),
//   - Poisson via inversion for small mean and gamma/rejection for
//     large mean,
//   - binomial via the BTPE-free waiting-time / inversion methods,
//   - multinomial by repeated conditional binomials.
//
// All generators are deterministic given a seed and are NOT safe for
// concurrent use; give each goroutine its own *RNG (see Split).
package rng

import "math"

// RNG is a deterministic pseudo-random generator with the distribution
// methods DReAMSim needs. The zero value is not usable; construct with
// New.
type RNG struct {
	s0, s1 uint64
}

// New returns an RNG seeded from seed. Two RNGs constructed with the
// same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed re-initialises the generator state from seed. A SplitMix64
// scrambler expands the single word into the two state words so that
// small or similar seeds still yield well-separated streams.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 0x9e3779b97f4a7c15 // state must not be all-zero
	}
}

// Split derives an independent generator from the current one. The
// child stream is decorrelated from the parent continuation, which
// keeps per-subsystem streams (arrivals, areas, delays, ...)
// reproducible regardless of the order the subsystems draw in.
func (r *RNG) Split() *RNG {
	return New(r.RandUint64() ^ 0xd1b54a32d192ed03)
}

// RandUint64 returns the next raw 64-bit word (xorshift128+).
func (r *RNG) RandUint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// RandInt32 returns a uniformly distributed 32-bit value, mirroring
// the paper's rand_int32 primitive.
func (r *RNG) RandInt32() uint32 {
	return uint32(r.RandUint64() >> 32)
}

// Float64 returns a uniform variate in [0,1) with 53 random bits.
func (r *RNG) Float64() float64 {
	return float64(r.RandUint64()>>11) / (1 << 53)
}

// Float64Open returns a uniform variate in (0,1); it never returns
// exactly zero, which keeps log() calls in the samplers finite.
func (r *RNG) Float64Open() float64 {
	for {
		if v := r.Float64(); v > 0 {
			return v
		}
	}
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
// Lemire's multiply-shift rejection avoids modulo bias.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.RandUint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return
}

// IntRange returns a uniform int in the inclusive range [lo, hi].
// It panics if hi < lo. This is the sampler behind every
// "[low ... high]" parameter in Table II of the paper.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Int64Range returns a uniform int64 in the inclusive range [lo, hi].
func (r *RNG) Int64Range(lo, hi int64) int64 {
	if hi < lo {
		panic("rng: Int64Range with hi < lo")
	}
	span := uint64(hi-lo) + 1
	if span == 0 { // full 64-bit span
		return int64(r.RandUint64())
	}
	for {
		v := r.RandUint64()
		h, l := mul64(v, span)
		if l >= span || l >= (-span)%span {
			return lo + int64(h)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0,n) via
// Fisher–Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Normal returns a standard normal variate via the Ziggurat method
// (Marsaglia & Tsang, "The Ziggurat Method for Generating Random
// Variables", JSS 2000), 128 layers.
func (r *RNG) Normal() float64 {
	for {
		u := int64(r.RandUint64())
		i := uint32(u) & 127
		x := float64(u>>8) * normW[i] // u>>8 keeps the sign bit
		if absF(x) < normX[i+1] {
			return x // inside the rectangle: ~98.8% of draws
		}
		if i == 0 {
			// Base strip: sample the normal tail beyond normR.
			for {
				x = -math.Log(r.Float64Open()) / normR
				y := -math.Log(r.Float64Open())
				if y+y > x*x {
					if u < 0 {
						return -(normR + x)
					}
					return normR + x
				}
			}
		}
		// Wedge: accept with the exact density.
		ax := absF(x)
		if normF[i+1]+r.Float64()*(normF[i]-normF[i+1]) < math.Exp(-0.5*ax*ax) {
			return x
		}
	}
}

// NormalMS returns a normal variate with the given mean and stddev.
func (r *RNG) NormalMS(mean, stddev float64) float64 {
	return mean + stddev*r.Normal()
}

// Exponential returns a standard exponential variate (mean 1) via the
// Ziggurat method, 256 layers.
func (r *RNG) Exponential() float64 {
	for {
		u := r.RandUint64()
		i := uint32(u) & 255
		x := float64(u>>11) * expW[i]
		if x < expX[i+1] {
			return x
		}
		if i == 0 {
			// Tail: exponential beyond expR is expR + Exp(1).
			return expR - math.Log(r.Float64Open())
		}
		if expF[i+1]+r.Float64()*(expF[i]-expF[i+1]) < math.Exp(-x) {
			return x
		}
	}
}

// ExpRate returns an exponential variate with the given rate (events
// per timetick); the mean is 1/rate.
func (r *RNG) ExpRate(rate float64) float64 {
	if !(rate > 0) { // also rejects NaN, which no comparison admits
		panic("rng: ExpRate with non-positive rate")
	}
	return r.Exponential() / rate
}

// Gamma returns a Gamma(shape, scale) variate using the Marsaglia &
// Tsang method ("A Simple Method for Generating Gamma Variables",
// TOMS 2000) cited by the paper; shape < 1 is boosted via the
// standard U^(1/shape) transformation.
func (r *RNG) Gamma(shape, scale float64) float64 {
	// NaN passes every <= comparison and then wedges the acceptance
	// loop (v > 0 is never true), so non-finite parameters must be
	// rejected before the sign check.
	if !finite(shape) || !finite(scale) {
		panic("rng: Gamma with non-finite parameter")
	}
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	boost := 1.0
	if shape < 1 {
		boost = math.Pow(r.Float64Open(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Normal()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64Open()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * scale
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * scale
		}
	}
}

// Poisson returns a Poisson(mean) variate. Small means use Knuth's
// product method; large means use the log-gamma rejection method
// (Atkinson/PTRS style) to stay O(1).
func (r *RNG) Poisson(mean float64) int {
	// A NaN or +Inf mean turns the Atkinson envelope into NaN and the
	// rejection test never accepts: reject non-finite up front.
	if !finite(mean) {
		panic("rng: Poisson with non-finite mean")
	}
	if mean < 0 {
		panic("rng: Poisson with negative mean")
	}
	if mean == 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64Open()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Rejection from a logistic envelope (Atkinson 1979).
	beta := math.Pi / math.Sqrt(3*mean)
	alpha := beta * mean
	c := 0.767 - 3.36/mean
	k := math.Log(c) - mean - math.Log(beta)
	for {
		u := r.Float64Open()
		x := (alpha - math.Log((1-u)/u)) / beta
		n := math.Floor(x + 0.5)
		if n < 0 {
			continue
		}
		v := r.Float64Open()
		y := alpha - beta*x
		lhs := y + math.Log(v/(1+math.Exp(y))/(1+math.Exp(y)))
		rhs := k + n*math.Log(mean) - logFactorial(n)
		if lhs <= rhs {
			return int(n)
		}
	}
}

// Binomial returns a Binomial(n, p) variate: the number of successes
// in n Bernoulli(p) trials. Symmetry and the waiting-time method keep
// it O(np) worst case, which is ample for simulator parameters.
func (r *RNG) Binomial(p float64, n int) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	// NaN slips past every range test below and the geometric-skip
	// loop never terminates on NaN gaps.
	if math.IsNaN(p) {
		panic("rng: Binomial with NaN probability")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if p > 0.5 {
		return n - r.Binomial(1-p, n)
	}
	// Geometric-skip method (Devroye): jump between successes with
	// geometric gaps; expected iterations np+1.
	// Log1p keeps logq nonzero for tiny p: with Log(1-p), any
	// p < ~1e-16 rounds 1-p to exactly 1, logq to 0, and the gap
	// below to -Inf — an infinite loop.
	logq := math.Log1p(-p)
	x := 0
	trials := 0
	for {
		gap := math.Floor(math.Log(r.Float64Open())/logq) + 1
		// For tiny p the geometric gap can exceed int range; the
		// int conversion would wrap negative and the loop would
		// never cross n. Compare in float space first.
		if gap > float64(n-trials) {
			return x
		}
		trials += int(gap)
		if trials > n {
			return x
		}
		x++
	}
}

// Multinom distributes n trials over the category probabilities in
// probs (which must be non-negative; they are normalised internally)
// by chained conditional binomials. The returned slice sums to n.
func (r *RNG) Multinom(n uint, probs []float64) []int {
	out := make([]int, len(probs))
	total := 0.0
	for _, p := range probs {
		if p < 0 || !finite(p) {
			panic("rng: Multinom with negative or non-finite probability")
		}
		total += p
	}
	remaining := int(n)
	for i, p := range probs {
		if remaining == 0 {
			break
		}
		if total <= 0 {
			break
		}
		if i == len(probs)-1 {
			out[i] = remaining
			remaining = 0
			break
		}
		k := r.Binomial(p/total, remaining)
		out[i] = k
		remaining -= k
		total -= p
	}
	return out
}

// logFactorial returns ln(n!) using Stirling's series for large n and
// a table for small n.
func logFactorial(n float64) float64 {
	if n < 0 {
		panic("rng: logFactorial of negative value")
	}
	i := int(n)
	if i < len(logFactTable) {
		return logFactTable[i]
	}
	// Stirling series with the first correction terms.
	x := n + 1
	return (x-0.5)*math.Log(x) - x + 0.5*math.Log(2*math.Pi) +
		1/(12*x) - 1/(360*x*x*x)
}

var logFactTable = func() [128]float64 {
	var t [128]float64
	acc := 0.0
	for i := 2; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()

// finite reports whether x is neither NaN nor ±Inf.
func finite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
