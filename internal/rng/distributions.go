package rng

import "math"

// Additional distributions used by workload modelling: recorded job
// runtimes are famously heavy-tailed (lognormal/Weibull/Pareto fits
// are standard in the parallel-workloads literature), and Zipf powers
// skewed popularity draws (e.g. some configurations being requested
// far more often than others).

// Lognormal returns a variate whose logarithm is Normal(mu, sigma).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	if sigma < 0 {
		panic("rng: Lognormal with negative sigma")
	}
	return math.Exp(mu + sigma*r.Normal())
}

// Weibull returns a Weibull(shape, scale) variate by inversion.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// Pareto returns a Pareto(xm, alpha) variate (minimum xm, tail index
// alpha) by inversion.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// Zipf draws from {0, ..., n-1} with P(k) ∝ 1/(k+1)^s via inversion
// over the precomputed CDF held by a Zipf sampler; use NewZipf for
// repeated draws.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(n, s) sampler. n must be positive and
// s non-negative (s = 0 degenerates to uniform).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s < 0 {
		panic("rng: Zipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the sampler's support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
