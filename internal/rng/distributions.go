package rng

import "math"

// Additional distributions used by workload modelling: recorded job
// runtimes are famously heavy-tailed (lognormal/Weibull/Pareto fits
// are standard in the parallel-workloads literature), and Zipf powers
// skewed popularity draws (e.g. some configurations being requested
// far more often than others).

// Lognormal returns a variate whose logarithm is Normal(mu, sigma).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	// A NaN parameter slips past the sign check (NaN fails every
	// comparison) and poisons the stream silently; reject it up front
	// like Gamma and Poisson do.
	if !finite(mu) || !finite(sigma) {
		panic("rng: Lognormal with non-finite parameter")
	}
	if sigma < 0 {
		panic("rng: Lognormal with negative sigma")
	}
	return math.Exp(mu + sigma*r.Normal())
}

// Weibull returns a Weibull(shape, scale) variate by inversion.
func (r *RNG) Weibull(shape, scale float64) float64 {
	if !finite(shape) || !finite(scale) {
		panic("rng: Weibull with non-finite parameter")
	}
	if shape <= 0 || scale <= 0 {
		panic("rng: Weibull with non-positive parameter")
	}
	return scale * math.Pow(-math.Log(r.Float64Open()), 1/shape)
}

// Pareto returns a Pareto(xm, alpha) variate (minimum xm, tail index
// alpha) by inversion.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if !finite(xm) || !finite(alpha) {
		panic("rng: Pareto with non-finite parameter")
	}
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// GammaParams converts a (mean, cv) inter-arrival description into
// Gamma(shape, scale) parameters: shape = 1/cv², scale = mean·cv².
// The coefficient of variation is the burstiness dial of an arrival
// process — cv = 1 recovers the exponential (Poisson process), cv > 1
// clumps arrivals into bursts, cv < 1 smooths them toward periodic.
func GammaParams(mean, cv float64) (shape, scale float64) {
	if !finite(mean) || !finite(cv) || mean <= 0 || cv <= 0 {
		panic("rng: GammaParams needs positive finite mean and cv")
	}
	return 1 / (cv * cv), mean * cv * cv
}

// WeibullParams converts a (mean, cv) inter-arrival description into
// Weibull(shape, scale) parameters. The shape k solves
//
//	cv² = Γ(1+2/k)/Γ(1+1/k)² − 1
//
// by bisection (cv is strictly decreasing in k), and the scale then
// pins the mean: scale = mean/Γ(1+1/k). Supported cv range is
// [0.01, 100], ample for workload modelling.
func WeibullParams(mean, cv float64) (shape, scale float64) {
	if !finite(mean) || !finite(cv) || mean <= 0 || cv <= 0 {
		panic("rng: WeibullParams needs positive finite mean and cv")
	}
	if cv < 0.01 || cv > 100 {
		panic("rng: WeibullParams cv outside [0.01, 100]")
	}
	want := cv * cv
	lo, hi := 0.05, 200.0 // cv²(0.05) ≈ 1.4e11, cv²(200) ≈ 4e-5: brackets the supported range
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if weibullCV2(mid) > want {
			lo = mid
		} else {
			hi = mid
		}
	}
	shape = (lo + hi) / 2
	scale = mean / math.Gamma(1+1/shape)
	return shape, scale
}

// weibullCV2 returns the squared coefficient of variation of a
// Weibull distribution with the given shape.
func weibullCV2(k float64) float64 {
	g1 := math.Gamma(1 + 1/k)
	g2 := math.Gamma(1 + 2/k)
	return g2/(g1*g1) - 1
}

// Zipf draws from {0, ..., n-1} with P(k) ∝ 1/(k+1)^s via inversion
// over the precomputed CDF held by a Zipf sampler; use NewZipf for
// repeated draws.
type Zipf struct {
	cdf []float64
}

// NewZipf precomputes a Zipf(n, s) sampler. n must be positive and
// s non-negative (s = 0 degenerates to uniform).
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: Zipf with non-positive n")
	}
	if s < 0 {
		panic("rng: Zipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += 1 / math.Pow(float64(k+1), s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the sampler's support size.
func (z *Zipf) N() int { return len(z.cdf) }

// Draw samples a rank in [0, n).
func (z *Zipf) Draw(r *RNG) int {
	u := r.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
