package rng

import (
	"math"
	"testing"
)

// The distribution fuzz targets pin one contract: valid parameters
// never panic, hang, or yield NaN/negative variates, and invalid
// (non-finite) parameters always panic instead of wedging a sampler's
// acceptance loop — NaN compares false against everything, so an
// unchecked NaN turns every rejection loop into an infinite one.

// panics reports whether fn panicked.
func panics(fn func()) (p bool) {
	defer func() { p = recover() != nil }()
	fn()
	return false
}

func FuzzGamma(f *testing.F) {
	f.Add(uint64(1), 2.0, 3.0)
	f.Add(uint64(2), 0.5, 1.0)
	f.Add(uint64(3), math.NaN(), 1.0)
	f.Add(uint64(4), 1.0, math.Inf(1))
	f.Add(uint64(5), 5e-324, 1e308)
	f.Fuzz(func(t *testing.T, seed uint64, shape, scale float64) {
		r := New(seed)
		if !finite(shape) || !finite(scale) || shape <= 0 || scale <= 0 {
			if !panics(func() { r.Gamma(shape, scale) }) {
				t.Fatalf("Gamma(%v, %v): invalid parameters accepted", shape, scale)
			}
			return
		}
		v := r.Gamma(shape, scale)
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("Gamma(%v, %v) = %v, want non-negative non-NaN", shape, scale, v)
		}
	})
}

func FuzzPoisson(f *testing.F) {
	f.Add(uint64(1), 0.5)
	f.Add(uint64(2), 250.0)
	f.Add(uint64(3), math.NaN())
	f.Add(uint64(4), math.Inf(1))
	f.Fuzz(func(t *testing.T, seed uint64, mean float64) {
		r := New(seed)
		if !finite(mean) || mean < 0 {
			if !panics(func() { r.Poisson(mean) }) {
				t.Fatalf("Poisson(%v): invalid mean accepted", mean)
			}
			return
		}
		if mean > 1e6 {
			t.Skip("mean beyond simulator range")
		}
		if k := r.Poisson(mean); k < 0 {
			t.Fatalf("Poisson(%v) = %d", mean, k)
		}
	})
}

func FuzzBinomial(f *testing.F) {
	f.Add(uint64(1), 0.25, 100)
	f.Add(uint64(2), math.NaN(), 10)
	f.Add(uint64(3), 1e-300, 1<<60)
	f.Add(uint64(4), 0.75, -1)
	f.Fuzz(func(t *testing.T, seed uint64, p float64, n int) {
		r := New(seed)
		if n < 0 || math.IsNaN(p) {
			if !panics(func() { r.Binomial(p, n) }) {
				t.Fatalf("Binomial(%v, %d): invalid parameters accepted", p, n)
			}
			return
		}
		// The geometric-skip sampler is O(n·min(p,1−p)); keep the
		// expected work bounded so the fuzzer probes correctness,
		// not wall time.
		if eff := math.Min(p, 1-p); eff > 0 && eff*float64(n) > 1e6 {
			t.Skip("expected successes beyond fuzz budget")
		}
		k := r.Binomial(p, n)
		if k < 0 || k > n {
			t.Fatalf("Binomial(%v, %d) = %d, want within [0, %d]", p, n, k, n)
		}
	})
}

func FuzzMultinom(f *testing.F) {
	f.Add(uint64(1), uint(40), 0.2, 0.3, 0.5)
	f.Add(uint64(2), uint(7), 0.0, 0.0, 0.0)
	f.Add(uint64(3), uint(9), math.Inf(1), 1.0, 1.0)
	f.Add(uint64(4), uint(9), -1.0, 1.0, 1.0)
	f.Fuzz(func(t *testing.T, seed uint64, n uint, p0, p1, p2 float64) {
		r := New(seed)
		n %= 10_000
		probs := []float64{p0, p1, p2}
		for _, p := range probs {
			if p < 0 || !finite(p) {
				if !panics(func() { r.Multinom(n, probs) }) {
					t.Fatalf("Multinom(%d, %v): invalid probabilities accepted", n, probs)
				}
				return
			}
		}
		out := r.Multinom(n, probs)
		total := 0.0
		for _, p := range probs {
			total += p
		}
		sum := 0
		for i, k := range out {
			if k < 0 {
				t.Fatalf("Multinom(%d, %v)[%d] = %d", n, probs, i, k)
			}
			sum += k
		}
		if total > 0 && sum != int(n) {
			t.Fatalf("Multinom(%d, %v) sums to %d", n, probs, sum)
		}
	})
}
