package rng

// State returns the raw xorshift128+ stream position. Together with
// SetState it lets the checkpoint subsystem capture and replay a
// stream mid-flight: a restored RNG continues with exactly the draws
// the original would have produced.
func (r *RNG) State() (s0, s1 uint64) {
	return r.s0, r.s1
}

// SetState overwrites the stream position with a value previously
// obtained from State. The all-zero state is invalid for
// xorshift128+ (it is a fixed point); restoring it would mean the
// snapshot was corrupt, so it is rejected by falling back to the
// same escape constant New uses.
func (r *RNG) SetState(s0, s1 uint64) {
	if s0 == 0 && s1 == 0 {
		s1 = 0x9e3779b97f4a7c15
	}
	r.s0, r.s1 = s0, s1
}
