package rng

import (
	"math"
	"testing"
)

func TestLognormalMoments(t *testing.T) {
	r := New(101)
	mu, sigma := 1.0, 0.5
	wantMean := math.Exp(mu + sigma*sigma/2)
	mean, _ := moments(statN, func() float64 { return r.Lognormal(mu, sigma) })
	if math.Abs(mean-wantMean) > 0.03*wantMean {
		t.Errorf("lognormal mean %v, want ~%v", mean, wantMean)
	}
	// Median check: P(X < e^mu) = 0.5.
	below := 0
	for i := 0; i < statN/4; i++ {
		if r.Lognormal(mu, sigma) < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / float64(statN/4)
	if math.Abs(frac-0.5) > 0.02 {
		t.Errorf("lognormal median fraction %v", frac)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative sigma accepted")
		}
	}()
	r.Lognormal(0, -1)
}

func TestWeibullMoments(t *testing.T) {
	r := New(103)
	// shape 1 reduces to exponential(scale).
	mean, _ := moments(statN, func() float64 { return r.Weibull(1, 3) })
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Weibull(1,3) mean %v, want ~3", mean)
	}
	// shape 2: mean = scale * Gamma(1.5) = scale * sqrt(pi)/2.
	want := 2 * math.Sqrt(math.Pi) / 2
	mean, _ = moments(statN, func() float64 { return r.Weibull(2, 2) })
	if math.Abs(mean-want) > 0.05 {
		t.Errorf("Weibull(2,2) mean %v, want ~%v", mean, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad shape accepted")
		}
	}()
	r.Weibull(0, 1)
}

func TestParetoProperties(t *testing.T) {
	r := New(107)
	xm, alpha := 2.0, 3.0
	wantMean := alpha * xm / (alpha - 1)
	mean, _ := moments(statN, func() float64 { return r.Pareto(xm, alpha) })
	if math.Abs(mean-wantMean) > 0.05*wantMean {
		t.Errorf("Pareto mean %v, want ~%v", mean, wantMean)
	}
	for i := 0; i < 10000; i++ {
		if r.Pareto(xm, alpha) < xm {
			t.Fatal("Pareto below its minimum")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad xm accepted")
		}
	}()
	r.Pareto(0, 1)
}

func TestZipfSkew(t *testing.T) {
	r := New(109)
	z := NewZipf(50, 1.0)
	if z.N() != 50 {
		t.Fatalf("N = %d", z.N())
	}
	counts := make([]int, 50)
	const draws = 200000
	for i := 0; i < draws; i++ {
		k := z.Draw(r)
		if k < 0 || k >= 50 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// Rank 0 should be drawn ~2x rank 1 and ~10x rank 9.
	if counts[0] < counts[1] || counts[1] < counts[4] {
		t.Errorf("Zipf ranks not decreasing: %v", counts[:5])
	}
	r01 := float64(counts[0]) / float64(counts[1])
	if r01 < 1.8 || r01 > 2.2 {
		t.Errorf("rank0/rank1 ratio %v, want ~2", r01)
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	r := New(113)
	z := NewZipf(10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Draw(r)]++
	}
	for k, c := range counts {
		if math.Abs(float64(c)-10000) > 500 {
			t.Errorf("s=0 bucket %d count %d, want ~10000", k, c)
		}
	}
}

// TestGammaParamsMoments checks the mean/cv parameterisation used by
// scenario arrival processes: samples drawn with GammaParams must
// reproduce the requested mean and coefficient of variation.
func TestGammaParamsMoments(t *testing.T) {
	r := New(127)
	for _, tc := range []struct{ mean, cv float64 }{
		{25, 0.5}, {25, 1.0}, {40, 2.5},
	} {
		shape, scale := GammaParams(tc.mean, tc.cv)
		if shape*scale != tc.mean && math.Abs(shape*scale-tc.mean) > 1e-9*tc.mean {
			t.Errorf("GammaParams(%v,%v): shape*scale = %v", tc.mean, tc.cv, shape*scale)
		}
		mean, variance := moments(statN, func() float64 { return r.Gamma(shape, scale) })
		if math.Abs(mean-tc.mean) > 0.05*tc.mean {
			t.Errorf("Gamma(mean=%v,cv=%v): sample mean %v", tc.mean, tc.cv, mean)
		}
		if cv := math.Sqrt(variance) / mean; math.Abs(cv-tc.cv) > 0.08*tc.cv {
			t.Errorf("Gamma(mean=%v,cv=%v): sample cv %v", tc.mean, tc.cv, cv)
		}
	}
}

// TestWeibullParamsMoments does the same for the Weibull mean/cv
// inversion (shape recovered by bisection).
func TestWeibullParamsMoments(t *testing.T) {
	r := New(131)
	for _, tc := range []struct{ mean, cv float64 }{
		{25, 0.3}, {25, 1.0}, {40, 1.8},
	} {
		shape, scale := WeibullParams(tc.mean, tc.cv)
		// Analytic round-trip: the recovered shape must reproduce cv².
		if got := math.Sqrt(weibullCV2(shape)); math.Abs(got-tc.cv) > 1e-6*tc.cv {
			t.Errorf("WeibullParams(%v,%v): shape %v gives cv %v", tc.mean, tc.cv, shape, got)
		}
		mean, variance := moments(statN, func() float64 { return r.Weibull(shape, scale) })
		if math.Abs(mean-tc.mean) > 0.05*tc.mean {
			t.Errorf("Weibull(mean=%v,cv=%v): sample mean %v", tc.mean, tc.cv, mean)
		}
		if cv := math.Sqrt(variance) / mean; math.Abs(cv-tc.cv) > 0.08*tc.cv {
			t.Errorf("Weibull(mean=%v,cv=%v): sample cv %v", tc.mean, tc.cv, cv)
		}
	}
	// shape 1 (cv = 1) degenerates to exponential: scale == mean.
	if shape, scale := WeibullParams(10, 1); math.Abs(shape-1) > 1e-6 || math.Abs(scale-10) > 1e-5 {
		t.Errorf("WeibullParams(10, 1) = (%v, %v), want (1, 10)", shape, scale)
	}
}

// TestDistributionGuards locks in the non-finite parameter rejections
// (the PR 2 guard pattern): NaN passes a plain sign check, so every
// sampler and parameter helper must refuse it explicitly.
func TestDistributionGuards(t *testing.T) {
	r := New(137)
	nan := math.NaN()
	inf := math.Inf(1)
	for name, f := range map[string]func(){
		"Lognormal-nan":     func() { r.Lognormal(nan, 1) },
		"Lognormal-inf":     func() { r.Lognormal(0, inf) },
		"Weibull-nan":       func() { r.Weibull(nan, 1) },
		"Weibull-inf":       func() { r.Weibull(1, inf) },
		"Pareto-nan":        func() { r.Pareto(nan, 1) },
		"Pareto-inf":        func() { r.Pareto(1, inf) },
		"GammaParams-nan":   func() { GammaParams(nan, 1) },
		"GammaParams-zero":  func() { GammaParams(0, 1) },
		"WeibullParams-nan": func() { WeibullParams(10, nan) },
		"WeibullParams-lo":  func() { WeibullParams(10, 0.001) },
		"WeibullParams-hi":  func() { WeibullParams(10, 1000) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: accepted", name)
				}
			}()
			f()
		}()
	}
}

func TestZipfPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Zipf(0, 1) accepted")
		}
	}()
	NewZipf(0, 1)
}
