package rng

import "math"

// Ziggurat constants from Marsaglia & Tsang (2000): normR/normV for a
// 128-layer normal ziggurat, expR/expV for a 256-layer exponential
// ziggurat. Tables are derived at init from the layer recursion
//
//	X[i+1] = f^{-1}( f(X[i]) + V/X[i] )
//
// with X[1] = R and X[0] = V/f(R) (the base strip's effective width),
// so X decreases with the index and X[n] ~ 0. Layer i is sampled with
// width X[i]; a draw is inside-for-sure when |x| < X[i+1]; otherwise
// layer 0 falls into the tail sampler and other layers run the exact
// wedge test with F[i] = f(X[i]).
const (
	normR = 3.442619855899
	normV = 9.91256303526217e-3

	expR = 7.69711747013104972
	expV = 3.949659822581572e-3
)

var (
	normX [129]float64 // layer widths, normX[1] = normR
	normF [129]float64 // f(normX[i]) with f(x) = exp(-x^2/2)
	normW [128]float64 // normX[i] / 2^55: scale for a signed 56-bit draw

	expX [257]float64 // layer widths, expX[1] = expR
	expF [257]float64 // f(expX[i]) with f(x) = exp(-x)
	expW [256]float64 // expX[i] / 2^53: scale for an unsigned 53-bit draw
)

func init() {
	// Normal ziggurat, 128 layers.
	fn := func(x float64) float64 { return math.Exp(-0.5 * x * x) }
	inv := func(y float64) float64 { return math.Sqrt(-2 * math.Log(y)) }
	normX[1] = normR
	normX[0] = normV / fn(normR)
	for i := 1; i < 128; i++ {
		y := fn(normX[i]) + normV/normX[i]
		if y >= 1 {
			normX[i+1] = 0
		} else {
			normX[i+1] = inv(y)
		}
	}
	normX[128] = 0
	for i := 0; i <= 128; i++ {
		normF[i] = fn(normX[i])
	}
	for i := 0; i < 128; i++ {
		normW[i] = normX[i] / (1 << 55)
	}

	// Exponential ziggurat, 256 layers.
	fe := func(x float64) float64 { return math.Exp(-x) }
	expX[1] = expR
	expX[0] = expV / fe(expR)
	for i := 1; i < 256; i++ {
		y := fe(expX[i]) + expV/expX[i]
		if y >= 1 {
			expX[i+1] = 0
		} else {
			expX[i+1] = -math.Log(y)
		}
	}
	expX[256] = 0
	for i := 0; i <= 256; i++ {
		expF[i] = fe(expX[i])
	}
	for i := 0; i < 256; i++ {
		expW[i] = expX[i] / (1 << 53)
	}
}
