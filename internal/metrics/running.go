package metrics

import "math"

// Running accumulates count/mean/variance (Welford) plus min/max of a
// stream of observations without storing them.
type Running struct {
	n        int64
	mean, m2 float64
	min, max float64
	everSeen bool
}

// Add records one observation.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
	if !r.everSeen || x < r.min {
		r.min = x
	}
	if !r.everSeen || x > r.max {
		r.max = x
	}
	r.everSeen = true
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Min and Max return the extremes (0 for an empty accumulator).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation.
func (r *Running) Max() float64 { return r.max }

// Variance returns the sample variance (n-1 denominator).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Histogram is a fixed-width bucket histogram over [lo, hi); values
// outside the range land in saturating edge buckets.
type Histogram struct {
	lo, hi  float64
	buckets []int64
	n       int64
}

// NewHistogram builds a histogram with the given bucket count.
func NewHistogram(lo, hi float64, buckets int) *Histogram {
	if buckets <= 0 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{lo: lo, hi: hi, buckets: make([]int64, buckets)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(float64(len(h.buckets)) * (x - h.lo) / (h.hi - h.lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
	h.n++
}

// Counts returns a copy of the bucket counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// N returns total observations.
func (h *Histogram) N() int64 { return h.n }

// Quantile returns the approximate q-quantile (bucket midpoint).
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.n-1))
	var cum int64
	width := (h.hi - h.lo) / float64(len(h.buckets))
	for i, c := range h.buckets {
		cum += c
		if cum > target {
			return h.lo + width*(float64(i)+0.5)
		}
	}
	return h.hi
}
