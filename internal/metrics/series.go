package metrics

import "fmt"

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is a named sequence of points — one curve of a paper figure
// (e.g. "with partial configuration" in Fig. 6a).
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Add appends a sample.
func (s *Series) Add(x, y float64) {
	s.Points = append(s.Points, Point{X: x, Y: y})
}

// YAt returns the y value at x; ok is false when absent.
func (s *Series) YAt(x float64) (y float64, ok bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// Figure groups the curves of one paper figure plus axis labels.
type Figure struct {
	ID     string   `json:"id"`    // e.g. "6a"
	Title  string   `json:"title"` // e.g. "Average wasted area per task (100 nodes)"
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
}

// SeriesByName returns the named curve or nil.
func (f *Figure) SeriesByName(name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

// CSV renders the figure as comma-separated rows: a header of
// "x,<series...>" then one row per x value (series are assumed to be
// sampled on the same grid; missing values render empty).
func (f *Figure) CSV() string {
	header := "x"
	for _, s := range f.Series {
		header += "," + s.Name
	}
	// Union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	out := header + "\n"
	for _, x := range xs {
		row := trimFloat(x)
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row += "," + trimFloat(y)
			} else {
				row += ","
			}
		}
		out += row + "\n"
	}
	return out
}

// trimFloat formats a float compactly (integers without decimals).
func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
