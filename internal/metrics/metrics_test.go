package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestComputeTableI(t *testing.T) {
	c := &Counters{
		TotalNodes:        200,
		TotalConfigs:      50,
		GeneratedTasks:    1000,
		CompletedTasks:    900,
		DiscardedTasks:    100,
		WastedArea:        500000,
		SchedulerSearch:   2500000,
		HousekeepingSteps: 1500000,
		TaskWaitTime:      9_000_000,
		TaskRunningTime:   45_000_000,
		ConfigurationTime: 15000,
		Reconfigurations:  4000,
		UsedNodes:         180,
		SimulationTime:    1_234_567,
		SusQueuePeak:      321,
		SusRetries:        777,
	}
	r := Compute(c)
	if r.AvgWastedAreaPerTask != 500 {
		t.Errorf("AvgWastedAreaPerTask = %v, want 500 (Eq. 7)", r.AvgWastedAreaPerTask)
	}
	if r.AvgRunningTimePerTask != 50000 {
		t.Errorf("AvgRunningTimePerTask = %v, want 50000", r.AvgRunningTimePerTask)
	}
	if r.AvgReconfigCountPerNode != 20 {
		t.Errorf("AvgReconfigCountPerNode = %v, want 20", r.AvgReconfigCountPerNode)
	}
	if r.AvgReconfigTimePerTask != 15 {
		t.Errorf("AvgReconfigTimePerTask = %v, want 15 (Eq. 10)", r.AvgReconfigTimePerTask)
	}
	if r.AvgWaitingTimePerTask != 9000 {
		t.Errorf("AvgWaitingTimePerTask = %v, want 9000 (Eq. 9)", r.AvgWaitingTimePerTask)
	}
	if r.AvgSchedulingStepsPerTask != 2500 {
		t.Errorf("AvgSchedulingStepsPerTask = %v, want 2500", r.AvgSchedulingStepsPerTask)
	}
	if r.TotalSchedulerWorkload != 4000000 {
		t.Errorf("TotalSchedulerWorkload = %v, want 4000000", r.TotalSchedulerWorkload)
	}
	if r.TotalDiscardedTasks != 100 || r.DiscardRate != 0.1 {
		t.Errorf("discards: %d rate %v", r.TotalDiscardedTasks, r.DiscardRate)
	}
	if r.TotalUsedNodes != 180 || r.TotalSimulationTime != 1_234_567 {
		t.Errorf("used/simtime: %d/%d", r.TotalUsedNodes, r.TotalSimulationTime)
	}
}

func TestComputeZeroDenominators(t *testing.T) {
	r := Compute(&Counters{})
	if r.AvgWastedAreaPerTask != 0 || r.AvgRunningTimePerTask != 0 ||
		r.AvgReconfigCountPerNode != 0 || r.AvgWaitingTimePerTask != 0 {
		t.Errorf("zero counters produced non-zero averages: %+v", r)
	}
}

func TestAccounted(t *testing.T) {
	c := &Counters{CompletedTasks: 5, DiscardedTasks: 2, SuspendedTasks: 3, RunningTasks: 1}
	if c.Accounted() != 11 {
		t.Errorf("Accounted = %d, want 11", c.Accounted())
	}
}

func TestRunningMoments(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.N() != 0 || r.Variance() != 0 {
		t.Fatal("empty Running not zeroed")
	}
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range data {
		r.Add(v)
	}
	if r.N() != 8 || r.Mean() != 5 {
		t.Errorf("n=%d mean=%v", r.N(), r.Mean())
	}
	// Sample variance of the data is 32/7.
	if math.Abs(r.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("variance=%v, want %v", r.Variance(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min=%v max=%v", r.Min(), r.Max())
	}
	if math.Abs(r.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("stddev=%v", r.StdDev())
	}
}

func TestRunningSingleValue(t *testing.T) {
	var r Running
	r.Add(-3)
	if r.Mean() != -3 || r.Min() != -3 || r.Max() != -3 || r.Variance() != 0 {
		t.Errorf("single observation: %+v", r)
	}
}

// Property: Running mean always lies within [min, max].
func TestQuickRunningBounds(t *testing.T) {
	f := func(xs []float64) bool {
		var r Running
		for _, x := range xs {
			// Skip non-finite and astronomically large inputs: Welford
			// intermediates (x-mean)^2 overflow beyond ~1e154, which is
			// far outside any simulator metric's range.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				continue
			}
			r.Add(x)
		}
		if r.N() == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9 && r.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	counts := h.Counts()
	for i, c := range counts {
		if c != 10 {
			t.Errorf("bucket %d count %d, want 10", i, c)
		}
	}
	// Saturating edges.
	h.Add(-5)
	h.Add(1e9)
	counts = h.Counts()
	if counts[0] != 11 || counts[9] != 11 {
		t.Errorf("edge saturation failed: %v", counts)
	}
	if h.N() != 102 {
		t.Errorf("N = %d", h.N())
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median estimate %v", med)
	}
	if q := h.Quantile(-1); q != h.Quantile(0) {
		t.Errorf("clamped quantile mismatch: %v", q)
	}
	if NewHistogram(0, 10, 5).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

func TestHistogramBadShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram accepted")
		}
	}()
	NewHistogram(10, 10, 5)
}

func TestSeriesAndFigure(t *testing.T) {
	var with, without Series
	with.Name = "with partial configuration"
	without.Name = "without partial configuration"
	for i := 1; i <= 3; i++ {
		with.Add(float64(i*1000), float64(i))
		without.Add(float64(i*1000), float64(i*2))
	}
	fig := Figure{
		ID: "6a", Title: "Average wasted area per task",
		XLabel: "Total tasks generated", YLabel: "area units",
		Series: []Series{without, with},
	}
	if s := fig.SeriesByName("with partial configuration"); s == nil || len(s.Points) != 3 {
		t.Fatal("SeriesByName failed")
	}
	if s := fig.SeriesByName("nope"); s != nil {
		t.Fatal("absent series found")
	}
	y, ok := with.YAt(2000)
	if !ok || y != 2 {
		t.Fatalf("YAt = %v,%v", y, ok)
	}
	if _, ok := with.YAt(999); ok {
		t.Fatal("YAt hit a missing x")
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "x,without partial configuration,with partial configuration\n") {
		t.Fatalf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "\n2000,4,2\n") {
		t.Fatalf("CSV row wrong:\n%s", csv)
	}
	lines := strings.Count(csv, "\n")
	if lines != 4 { // header + 3 rows
		t.Fatalf("CSV has %d lines:\n%s", lines, csv)
	}
}

func TestCSVMissingValues(t *testing.T) {
	a := Series{Name: "a", Points: []Point{{X: 1, Y: 10}, {X: 2, Y: 20}}}
	b := Series{Name: "b", Points: []Point{{X: 2, Y: 200}}}
	fig := Figure{ID: "t", Series: []Series{a, b}}
	csv := fig.CSV()
	if !strings.Contains(csv, "\n1,10,\n") {
		t.Fatalf("missing-value row wrong:\n%s", csv)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(100000) != "100000" {
		t.Errorf("integer formatting: %s", trimFloat(100000))
	}
	if trimFloat(1.25) != "1.25" {
		t.Errorf("fraction formatting: %s", trimFloat(1.25))
	}
}
