// Package metrics implements DReAMSim's performance accounting:
// every metric in Table I of the paper, the counters of the DreamSim
// class (§IV-C), and the derivation equations 5–10.
package metrics

// Counters mirrors the statistic accumulators of the paper's DreamSim
// class. The core simulator increments these during a run; Report
// derives the Table I metrics from them at the end.
type Counters struct {
	// Static experiment shape.
	TotalNodes   int
	TotalConfigs int

	// Task population (paper: TotalCurGenTasks, TotalCompletedTasks,
	// TotalCurSusTasks, TotalDiscardedTasks).
	GeneratedTasks int64
	CompletedTasks int64
	SuspendedTasks int64 // currently suspended (gauge)
	DiscardedTasks int64
	RunningTasks   int64 // currently running (gauge)

	// Accumulators (paper: Total_Wasted_Area,
	// Total_Search_Length_Scheduler, Total_Task_Wait_Time,
	// Total_Tasks_Running_Time, Total_Configuration_Time).
	WastedArea        int64  // Eq. 6/7 accumulation
	SchedulerSearch   uint64 // scheduler search steps (SL counter)
	HousekeepingSteps uint64 // resource-information housekeeping steps
	TaskWaitTime      int64  // Σ t_wait (Eq. 8)
	TaskRunningTime   int64  // Σ turnaround time
	ConfigurationTime int64  // Eq. 10: Σ ReconfigCount_k · ConfigTime_k
	Reconfigurations  int64  // total bitstream sends
	SusRetries        int64  // suspension queue re-examinations

	// Fault-injection accounting; all zero in fault-free runs.
	NodeCrashes      int64 // node crash events applied
	NodeRecoveries   int64 // crashed nodes returned to service
	DowntimeTicks    int64 // Σ (recover − crash) lapses across nodes
	TasksRetried     int64 // crash-displaced re-dispatches scheduled
	LostTasks        int64 // tasks that exhausted the retry budget
	ReconfigFaults   int64 // reconfiguration attempts that aborted
	WastedConfigTime int64 // ticks charged to aborted reconfigurations

	// UsedNodes counts nodes that received at least one task.
	UsedNodes int64
	// SimulationTime is the final timetick (Eq. 5).
	SimulationTime int64
	// SusQueuePeak is the deepest the suspension queue got.
	SusQueuePeak int64
}

// Accounted reports how many generated tasks have reached a terminal
// or scheduled state; the run is drained when this equals
// GeneratedTasks and nothing is running or suspended.
func (c *Counters) Accounted() int64 {
	return c.CompletedTasks + c.DiscardedTasks + c.LostTasks + c.SuspendedTasks + c.RunningTasks
}

// TotalSchedulerWorkload is the Table I metric: scheduler search
// steps plus resource-information housekeeping steps.
func (c *Counters) TotalSchedulerWorkload() uint64 {
	return c.SchedulerSearch + c.HousekeepingSteps
}

// ClassCounters accumulates per-traffic-class task accounting during
// a multi-class scenario run. It lives beside Counters (never inside
// it: Counters stays a flat, ==-comparable struct) and only exists
// when the task source declares two or more classes.
type ClassCounters struct {
	Generated int64
	Completed int64
	Discarded int64
	Lost      int64
	WaitTime  int64 // Σ t_wait over the class's started tasks
	RunTime   int64 // Σ turnaround over the class's completed tasks
}

// ClassStats is the derived per-class report block: the class's task
// population split plus its Table I-style per-task averages.
type ClassStats struct {
	Name           string  `json:"name"`
	Generated      int64   `json:"generated"`
	Completed      int64   `json:"completed"`
	Discarded      int64   `json:"discarded,omitempty"`
	Lost           int64   `json:"lost,omitempty"`
	AvgWaitingTime float64 `json:"avg_waiting_time"`
	AvgRunningTime float64 `json:"avg_running_time"`
}

// ComputeClasses derives per-class stats, mirroring Compute's
// denominator rules: waiting time averages over generated tasks,
// running time over completed ones. Returns nil for nil input so
// single-class runs serialise without a classes block.
func ComputeClasses(names []string, acc []ClassCounters) []ClassStats {
	if len(acc) == 0 {
		return nil
	}
	out := make([]ClassStats, len(acc))
	for i, c := range acc {
		s := ClassStats{
			Name:      names[i],
			Generated: c.Generated,
			Completed: c.Completed,
			Discarded: c.Discarded,
			Lost:      c.Lost,
		}
		if c.Generated > 0 {
			s.AvgWaitingTime = float64(c.WaitTime) / float64(c.Generated)
		}
		if c.Completed > 0 {
			s.AvgRunningTime = float64(c.RunTime) / float64(c.Completed)
		}
		out[i] = s
	}
	return out
}

// Report carries every Table I metric for one simulation run.
type Report struct {
	// Scenario/shape echo.
	TotalNodes   int   `json:"total_nodes"`
	TotalConfigs int   `json:"total_configs"`
	TotalTasks   int64 `json:"total_tasks"`

	// Table I rows.
	AvgWastedAreaPerTask      float64 `json:"avg_wasted_area_per_task"`    // Eq. 7
	AvgRunningTimePerTask     float64 `json:"avg_running_time_per_task"`   // turnaround
	AvgReconfigCountPerNode   float64 `json:"avg_reconfig_count_per_node"` //
	AvgReconfigTimePerTask    float64 `json:"avg_reconfig_time_per_task"`  // Eq. 10 / tasks
	AvgWaitingTimePerTask     float64 `json:"avg_waiting_time_per_task"`   // Eq. 9
	AvgSchedulingStepsPerTask float64 `json:"avg_scheduling_steps_per_task"`
	TotalDiscardedTasks       int64   `json:"total_discarded_tasks"`
	TotalSchedulerWorkload    uint64  `json:"total_scheduler_workload"`
	TotalUsedNodes            int64   `json:"total_used_nodes"`
	TotalSimulationTime       int64   `json:"total_simulation_time"` // Eq. 5

	// Supporting detail beyond Table I.
	CompletedTasks   int64   `json:"completed_tasks"`
	Reconfigurations int64   `json:"reconfigurations"`
	SusQueuePeak     int64   `json:"sus_queue_peak"`
	SusRetries       int64   `json:"sus_retries"`
	DiscardRate      float64 `json:"discard_rate"`

	// Fault-injection outcomes. The omitempty tags keep fault-free
	// serialised reports byte-identical to builds without the fault
	// subsystem.
	NodeCrashes        int64   `json:"node_crashes,omitempty"`
	NodeRecoveries     int64   `json:"node_recoveries,omitempty"`
	TasksRetried       int64   `json:"tasks_retried,omitempty"`
	TasksLost          int64   `json:"tasks_lost,omitempty"`
	ReconfigFaults     int64   `json:"reconfig_faults,omitempty"`
	WastedConfigTicks  int64   `json:"wasted_config_ticks,omitempty"`
	AvgDowntimePerNode float64 `json:"avg_downtime_per_node,omitempty"`
}

// HasFaults reports whether the run saw any fault activity; reports
// of fault-free runs render without the fault rows.
func (r Report) HasFaults() bool {
	return r.NodeCrashes != 0 || r.NodeRecoveries != 0 || r.TasksRetried != 0 ||
		r.TasksLost != 0 || r.ReconfigFaults != 0 || r.WastedConfigTicks != 0 ||
		r.AvgDowntimePerNode != 0
}

// Compute derives the Table I metrics from the raw counters.
// Per-task averages divide by the number of *generated* tasks, as in
// Eq. 7/9 ("total tasks"); rates guard against zero denominators.
func Compute(c *Counters) Report {
	tasks := float64(c.GeneratedTasks)
	nodes := float64(c.TotalNodes)
	r := Report{
		TotalNodes:             c.TotalNodes,
		TotalConfigs:           c.TotalConfigs,
		TotalTasks:             c.GeneratedTasks,
		TotalDiscardedTasks:    c.DiscardedTasks,
		TotalSchedulerWorkload: c.TotalSchedulerWorkload(),
		TotalUsedNodes:         c.UsedNodes,
		TotalSimulationTime:    c.SimulationTime,
		CompletedTasks:         c.CompletedTasks,
		Reconfigurations:       c.Reconfigurations,
		SusQueuePeak:           c.SusQueuePeak,
		SusRetries:             c.SusRetries,
		NodeCrashes:            c.NodeCrashes,
		NodeRecoveries:         c.NodeRecoveries,
		TasksRetried:           c.TasksRetried,
		TasksLost:              c.LostTasks,
		ReconfigFaults:         c.ReconfigFaults,
		WastedConfigTicks:      c.WastedConfigTime,
	}
	if tasks > 0 {
		r.AvgWastedAreaPerTask = float64(c.WastedArea) / tasks
		r.AvgReconfigTimePerTask = float64(c.ConfigurationTime) / tasks
		r.AvgWaitingTimePerTask = float64(c.TaskWaitTime) / tasks
		r.AvgSchedulingStepsPerTask = float64(c.SchedulerSearch) / tasks
		r.DiscardRate = float64(c.DiscardedTasks) / tasks
	}
	if c.CompletedTasks > 0 {
		r.AvgRunningTimePerTask = float64(c.TaskRunningTime) / float64(c.CompletedTasks)
	}
	if nodes > 0 {
		r.AvgReconfigCountPerNode = float64(c.Reconfigurations) / nodes
		r.AvgDowntimePerNode = float64(c.DowntimeTicks) / nodes
	}
	return r
}
