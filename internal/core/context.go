package core

import (
	"dreamsim/internal/model"
	"dreamsim/internal/sched"
	"dreamsim/internal/sim"
)

// phase indexes the per-run placement/verdict census. The first six
// values mirror sched.Action so a placing decision's phase counter is
// phases[phase(d.Action)] with no lookup.
type phase int

const (
	phaseAllocate phase = iota
	phaseConfigure
	phasePartialConfigure
	phaseReconfigure
	phaseSuspend
	phaseDiscard
	phaseClosestMatch
	phaseReconfigFault
	phaseLost
	phaseDefrag
	phaseCount
)

// Compile-time alignment of the phase enum with sched.Action: a
// reordering of either breaks the build here instead of silently
// miscounting phases.
var _ = [1]struct{}{}[phaseAllocate-phase(sched.ActAllocate)]
var _ = [1]struct{}{}[phaseConfigure-phase(sched.ActConfigure)]
var _ = [1]struct{}{}[phasePartialConfigure-phase(sched.ActPartialConfigure)]
var _ = [1]struct{}{}[phaseReconfigure-phase(sched.ActReconfigure)]
var _ = [1]struct{}{}[phaseSuspend-phase(sched.ActSuspend)]
var _ = [1]struct{}{}[phaseDiscard-phase(sched.ActDiscard)]

// phaseNames maps phase indices back to the report keys.
var phaseNames = [phaseCount]string{
	"allocate", "configure", "partial-configure", "reconfigure",
	"suspend", "discard", "closest-match", "reconfig-fault", "lost",
	"defrag",
}

// RunContext is the reusable per-run scratch state of a Simulator:
// the event engine (whose queue pool and heap slice survive across
// runs) and the dense, index-keyed bookkeeping slices that replace
// the per-run map allocations. Passing the same context to a stream
// of runs (Params.Scratch) makes their setup allocation-light and
// their hot loops allocation-free; results are byte-identical with or
// without reuse because nothing here feeds the RNG streams or the
// metered counters — it is cleared storage, not state.
//
// A context must not be shared by two simulators running
// concurrently; give each worker its own.
type RunContext struct {
	eng sim.Engine

	used      []bool // node no -> placed at least one task
	usedCount int
	phases    [phaseCount]int64
	idle      []bool // summarize scratch, config no -> idle region present

	// Dependency bookkeeping (task-graph workloads), indexed by task
	// number; zero-length on runs without Deps.
	children        [][]int
	terminal        []model.TaskStatus
	depBlocked      []*model.Task
	depBlockedCount int

	// Fault bookkeeping, indexed by task/node number; zero-length on
	// fault-free runs.
	inflight  []*sim.Event
	downSince []int64
}

// NewRunContext returns an empty reusable run context.
func NewRunContext() *RunContext { return &RunContext{} }

// growClear returns s with length n and all elements zeroed, reusing
// the backing array when it is large enough.
func growClear[T any](s []T, n int) []T {
	if cap(s) < n {
		//lint:allocfree grow path: reallocates only when a donated context's capacity is outgrown; steady-state runs reuse the array (gated by TestTickZeroAlloc)
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// prepare readies the context for a fresh run over nodeCount nodes
// and cfgCount configurations. depMax is the highest task number
// named by Params.Deps (-1 when absent); faults sizes the fault
// slices. All state from the previous run is cleared; backing arrays
// are kept.
func (ctx *RunContext) prepare(nodeCount, cfgCount, depMax int, faults bool) {
	ctx.eng.Reset()
	ctx.used = growClear(ctx.used, nodeCount)
	ctx.usedCount = 0
	clear(ctx.phases[:])
	ctx.idle = growClear(ctx.idle, cfgCount)

	n := depMax + 1
	ctx.terminal = growClear(ctx.terminal, n)
	ctx.depBlocked = growClear(ctx.depBlocked, n)
	ctx.depBlockedCount = 0
	if cap(ctx.children) < n {
		ctx.children = make([][]int, n)
	} else {
		ctx.children = ctx.children[:n]
		for i := range ctx.children {
			ctx.children[i] = ctx.children[i][:0]
		}
	}

	if faults {
		ctx.downSince = growClear(ctx.downSince, nodeCount)
		clear(ctx.inflight)
	} else {
		ctx.downSince = ctx.downSince[:0]
		ctx.inflight = ctx.inflight[:0]
	}
}

// markUsed records that node no hosted at least one task (Table I
// "used nodes").
func (ctx *RunContext) markUsed(no int) {
	if !ctx.used[no] {
		ctx.used[no] = true
		ctx.usedCount++
	}
}

// phasesMap converts the dense census to the Result's map form,
// carrying exactly the phases that occurred (map-miss semantics of
// the old per-run map: absent key == zero count).
func (ctx *RunContext) phasesMap() map[string]int64 {
	m := make(map[string]int64, phaseCount)
	for i, n := range ctx.phases {
		if n != 0 {
			m[phaseNames[i]] = n
		}
	}
	return m
}

// terminalOf reports the terminal status of task no; zero
// (TaskCreated) when the task has not terminated.
func (ctx *RunContext) terminalOf(no int) model.TaskStatus {
	if no < len(ctx.terminal) {
		return ctx.terminal[no]
	}
	return 0
}

// setTerminal records task no's terminal status, growing the slice
// for sources (SWF traces) whose numbering exceeds the Deps range.
func (ctx *RunContext) setTerminal(no int, st model.TaskStatus) {
	if no >= len(ctx.terminal) {
		//lint:allocfree grow path: extends once per task-number high-water mark, then indexes in place (gated by TestTickZeroAlloc)
		ctx.terminal = append(ctx.terminal, make([]model.TaskStatus, no+1-len(ctx.terminal))...)
	}
	ctx.terminal[no] = st
}

// blockedTask returns the arrived-but-gated task numbered no, if any.
func (ctx *RunContext) blockedTask(no int) *model.Task {
	if no < len(ctx.depBlocked) {
		return ctx.depBlocked[no]
	}
	return nil
}

// setBlocked parks an arrived task behind its precedence gate.
func (ctx *RunContext) setBlocked(task *model.Task) {
	no := task.No
	if no >= len(ctx.depBlocked) {
		//lint:allocfree grow path: extends once per task-number high-water mark, then indexes in place (gated by TestTickZeroAlloc)
		ctx.depBlocked = append(ctx.depBlocked, make([]*model.Task, no+1-len(ctx.depBlocked))...)
	}
	if ctx.depBlocked[no] == nil {
		ctx.depBlockedCount++
	}
	ctx.depBlocked[no] = task
}

// clearBlocked releases task no from the gate.
func (ctx *RunContext) clearBlocked(no int) {
	if no < len(ctx.depBlocked) && ctx.depBlocked[no] != nil {
		ctx.depBlocked[no] = nil
		ctx.depBlockedCount--
	}
}

// childrenOf lists the dependants of parent task no.
func (ctx *RunContext) childrenOf(no int) []int {
	if no < len(ctx.children) {
		return ctx.children[no]
	}
	return nil
}

// setInflight records the completion event of running task no.
func (ctx *RunContext) setInflight(no int, ev *sim.Event) {
	if no >= len(ctx.inflight) {
		//lint:allocfree grow path: extends once per task-number high-water mark, then indexes in place (gated by TestTickZeroAlloc)
		ctx.inflight = append(ctx.inflight, make([]*sim.Event, no+1-len(ctx.inflight))...)
	}
	ctx.inflight[no] = ev
}

// inflightOf returns running task no's completion event, if tracked.
func (ctx *RunContext) inflightOf(no int) *sim.Event {
	if no < len(ctx.inflight) {
		return ctx.inflight[no]
	}
	return nil
}

// clearInflight forgets task no's completion event.
func (ctx *RunContext) clearInflight(no int) {
	if no < len(ctx.inflight) {
		ctx.inflight[no] = nil
	}
}
