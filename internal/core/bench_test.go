package core

import (
	"testing"

	"dreamsim/internal/invariant"
	"dreamsim/internal/model"
)

// emptySource is an exhausted arrival stream: the tick benchmark
// injects its arrivals by hand so each cycle exercises exactly one
// arrival → placement → completion round trip.
type emptySource struct{}

func (emptySource) Next() (*model.Task, bool) { return nil, false }

// newTickSim builds a one-node, one-configuration simulator whose
// steady state is the hot scheduler tick: every injected task hits the
// Allocation phase (the configuration stays resident and idle between
// cycles), runs, and completes. The population is pinned so the single
// configuration fits the node exactly once — no second placement path
// ever opens up.
func newTickSim(tb testing.TB) (*Simulator, *model.Task) {
	tb.Helper()
	p := smallParams(1, 1, true)
	p.Spec.Configs = 1
	p.Spec.ConfigAreaLow, p.Spec.ConfigAreaHigh = 1000, 1000
	p.Spec.NodeAreaLow, p.Spec.NodeAreaHigh = 1500, 1500
	p.Source = emptySource{}
	s, err := New(p)
	if err != nil {
		tb.Fatal(err)
	}
	task := model.NewTask(0, 1000, 0, 50, 0)
	return s, task
}

// tickCycle drives one arrival through placement and runs the engine
// until the completion fires; the same task struct is recycled so the
// loop measures the simulator, not task construction.
func tickCycle(tb testing.TB, s *Simulator, task *model.Task) {
	now := s.eng.Now()
	task.Status = model.TaskCreated
	task.AssignedConfig = -1
	task.CreateTime = now
	task.StartTime, task.CompletionTime = -1, -1
	task.CommDelay, task.ConfigDelay = 0, 0
	task.SusRetry, task.Retries = 0, 0
	s.handleArrival(task, now)
	s.eng.Run(func() bool { return s.err != nil })
	if s.err != nil {
		tb.Fatal(s.err)
	}
	if task.Status != model.TaskCompleted {
		tb.Fatalf("tick cycle left task %v", task.Status)
	}
}

// BenchmarkTick measures the steady-state scheduler tick — arrival
// handling, the four-phase placement decision, resource mutation and
// the pooled completion event — and must report 0 allocs/op: the event
// queue recycles its events, the run context's bookkeeping is dense
// slices, and decisions are plain values. CI gates on the allocs/op
// column.
func BenchmarkTick(b *testing.B) {
	s, task := newTickSim(b)
	for i := 0; i < 8; i++ {
		tickCycle(b, s, task) // warm the event pool and the resident config
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tickCycle(b, s, task)
	}
}

// TestTickZeroAlloc is the test-suite form of the benchmark gate.
func TestTickZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their message arguments")
	}
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s, task := newTickSim(t)
	for i := 0; i < 8; i++ {
		tickCycle(t, s, task)
	}
	if avg := testing.AllocsPerRun(200, func() { tickCycle(t, s, task) }); avg != 0 {
		t.Fatalf("scheduler tick allocates: %.1f allocs/op", avg)
	}
}

// TestScratchReuseAcrossRuns pins the run-context contract: a stream
// of runs sharing one donated RunContext produces byte-identical
// results to fresh-context runs, including when consecutive runs
// change population size and feature set (the grow-and-clear paths).
func TestScratchReuseAcrossRuns(t *testing.T) {
	shapes := []Params{
		smallParams(10, 150, true),
		smallParams(25, 300, false),
		smallParams(6, 80, true),
	}
	shapes[2].DefragThreshold = 2

	ctx := NewRunContext()
	for i, base := range shapes {
		fresh := mustRun(t, base)
		donated := base
		donated.Scratch = ctx
		reused := mustRun(t, donated)
		if fresh.Report != reused.Report || fresh.Counters != reused.Counters {
			t.Fatalf("shape %d: donated-context run diverged from fresh run", i)
		}
		if len(fresh.Phases) != len(reused.Phases) {
			t.Fatalf("shape %d: phase histograms diverged", i)
		}
		for k, v := range fresh.Phases {
			if reused.Phases[k] != v {
				t.Fatalf("shape %d: phase %q: %d != %d", i, k, v, reused.Phases[k])
			}
		}
	}
}
