package core

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dreamsim/internal/fault"
	"dreamsim/internal/metrics"
)

// TestFaultGoldenReport is a full-fidelity regression fixture: a
// committed workload shape plus a scripted fault schedule whose
// entire report — Table I metrics, raw counters and phase census —
// must stay byte-for-byte identical to testdata/fault_golden.json.
// Any behavioural drift in the fault, retry or drain paths shows up
// as a diff. Regenerate deliberately with
//
//	DREAMSIM_UPDATE_GOLDEN=1 go test -run TestFaultGoldenReport ./internal/core/
func TestFaultGoldenReport(t *testing.T) {
	script, err := fault.ParseScript(
		"crash@200:2,cfail@400,crash@900:5,recover@1500:2,cfail@2500,recover@4000:5,crash@6000:2,recover@9000:2")
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(12, 120, true)
	p.Seed = 777
	p.Debug = true
	p.Faults = fault.Plan{Script: script}
	p.Retry = fault.RetryPolicy{Budget: 2, BackoffBase: 8, BackoffCap: 64}
	res := mustRun(t, p)

	blob, err := json.MarshalIndent(struct {
		Report   metrics.Report
		Counters metrics.Counters
		Phases   map[string]int64
	}{res.Report, res.Counters, res.Phases}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')

	golden := filepath.Join("testdata", "fault_golden.json")
	if os.Getenv("DREAMSIM_UPDATE_GOLDEN") == "1" {
		if err := os.WriteFile(golden, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with DREAMSIM_UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(blob, want) {
		t.Fatalf("fault report drifted from golden fixture.\n--- got ---\n%s\n--- want ---\n%s", blob, want)
	}
}
