package core

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"dreamsim/internal/fault"
	"dreamsim/internal/snapshot"
)

// pauseAndSnapshot drives p until roughly target events have fired,
// snapshots at the tick boundary, and returns the snapshot. ok is
// false when the run finished before reaching the target.
func pauseAndSnapshot(t *testing.T, p Params, target uint64) (snap []byte, ok bool) {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	done := s.RunUntil(func(_ int64, processed uint64) bool { return processed >= target })
	if done {
		return nil, false
	}
	snap, err = s.EncodeSnapshot()
	if err != nil {
		t.Fatalf("EncodeSnapshot: %v", err)
	}
	return snap, true
}

// TestSnapshotRestoreResumesIdentically is the core-layer equivalence
// check: pause, serialize, restore into a fresh Simulator, run both
// halves to completion, compare the whole Result (reports, counters,
// per-class stats, phase counts) against the uninterrupted run.
func TestSnapshotRestoreResumesIdentically(t *testing.T) {
	for _, partial := range []bool{false, true} {
		p := smallParams(20, 400, partial)
		ref := mustRun(t, p)
		paused := 0
		for _, target := range []uint64{1, 50, 300, 900} {
			snap, ok := pauseAndSnapshot(t, p, target)
			if !ok {
				continue // run finished before this target
			}
			paused++
			s2, err := RestoreSnapshot(p, snap)
			if err != nil {
				t.Fatalf("RestoreSnapshot at %d events: %v", target, err)
			}
			if !s2.RunUntil(nil) {
				t.Fatal("restored run paused with a nil pause")
			}
			got, err := s2.Finish()
			if err != nil {
				t.Fatalf("restored Finish: %v", err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("partial=%v target=%d: restored run diverged\nref: %+v\ngot: %+v", partial, target, ref, got)
			}
		}
		if paused < 2 {
			t.Fatalf("partial=%v: only %d pause points exercised", partial, paused)
		}
	}
}

// TestSnapshotDeterministicBytes pins that pausing the same run at
// the same point twice encodes byte-identical snapshots.
func TestSnapshotDeterministicBytes(t *testing.T) {
	p := smallParams(15, 300, true)
	a, ok := pauseAndSnapshot(t, p, 200)
	if !ok {
		t.Fatal("run too short")
	}
	b, _ := pauseAndSnapshot(t, p, 200)
	if !bytes.Equal(a, b) {
		t.Fatal("two snapshots of the same state differ")
	}
}

// TestSnapshotWithFaults covers the injector sections: scripted and
// random fault streams, pending recoveries, retry events.
func TestSnapshotWithFaults(t *testing.T) {
	p := smallParams(20, 400, true)
	p.Faults = fault.Plan{CrashRate: 0.002, MeanDowntime: 150, ReconfigFaultRate: 0.001}
	ref := mustRun(t, p)
	for _, target := range []uint64{40, 400, 1200} {
		snap, ok := pauseAndSnapshot(t, p, target)
		if !ok {
			t.Fatalf("run finished before %d events", target)
		}
		s2, err := RestoreSnapshot(p, snap)
		if err != nil {
			t.Fatalf("RestoreSnapshot: %v", err)
		}
		s2.RunUntil(nil)
		got, err := s2.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("target=%d: fault run diverged after restore", target)
		}
	}
}

// TestSnapshotRejectsWrongParams pins the fingerprint check: a
// snapshot restored under different parameters fails loudly.
func TestSnapshotRejectsWrongParams(t *testing.T) {
	p := smallParams(20, 300, true)
	snap, ok := pauseAndSnapshot(t, p, 100)
	if !ok {
		t.Fatal("run too short")
	}
	q := p
	q.Seed++
	if _, err := RestoreSnapshot(q, snap); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("seed mismatch gave %v, want ErrCorrupt", err)
	}
	q = smallParams(21, 300, true)
	if _, err := RestoreSnapshot(q, snap); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("node-count mismatch gave %v, want ErrCorrupt", err)
	}
	q = smallParams(20, 300, false)
	if _, err := RestoreSnapshot(q, snap); err == nil {
		t.Fatal("reconfiguration-mode mismatch accepted")
	}
}

// TestSnapshotRejectsVersionSkew pins the clear-error contract for
// snapshots written by a newer build.
func TestSnapshotRejectsVersionSkew(t *testing.T) {
	p := smallParams(20, 300, true)
	snap, ok := pauseAndSnapshot(t, p, 100)
	if !ok {
		t.Fatal("run too short")
	}
	payload, _, err := snapshot.Open(snap, SnapshotKind, SnapshotVersion)
	if err != nil {
		t.Fatal(err)
	}
	future := snapshot.Seal(SnapshotKind, SnapshotVersion+1, payload)
	if _, err := RestoreSnapshot(p, future); !errors.Is(err, snapshot.ErrVersion) {
		t.Fatalf("future version gave %v, want ErrVersion", err)
	}
}

// TestEncodeSnapshotRejectsBadStates pins the precondition errors.
func TestEncodeSnapshotRejectsBadStates(t *testing.T) {
	p := smallParams(10, 50, true)
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EncodeSnapshot(); err == nil {
		t.Fatal("snapshot before Start accepted")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.EncodeSnapshot(); err == nil {
		t.Fatal("snapshot of a finished run accepted")
	}
}

// FuzzDecodeSnapshot: the decoder must never panic, whatever the
// bytes. Raw inputs exercise the envelope (the checksum rejects
// nearly everything); the re-sealed pass wraps the fuzzed bytes in a
// valid envelope so the payload decoding past the CRC is reached too.
// Every outcome must be a structured error or a well-formed restore.
func FuzzDecodeSnapshot(f *testing.F) {
	p := smallParams(10, 120, true)
	valid, ok := func() ([]byte, bool) {
		s, err := New(p)
		if err != nil {
			return nil, false
		}
		if err := s.Start(); err != nil {
			return nil, false
		}
		if s.RunUntil(func(_ int64, processed uint64) bool { return processed >= 100 }) {
			return nil, false
		}
		snap, err := s.EncodeSnapshot()
		return snap, err == nil
	}()
	if !ok {
		f.Fatal("could not build the seed snapshot")
	}
	f.Add(valid)
	payload, _, err := snapshot.Open(valid, SnapshotKind, SnapshotVersion)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(append([]byte(nil), payload...))
	f.Add([]byte{})
	f.Add([]byte("DRSNAP"))
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := RestoreSnapshot(p, data); err == nil {
			// A decodable input must yield a drivable run.
			s.RunUntil(nil)
			s.Finish()
		}
		sealed := snapshot.Seal(SnapshotKind, SnapshotVersion, data)
		if s, err := RestoreSnapshot(p, sealed); err == nil {
			s.RunUntil(nil)
			s.Finish()
		}
	})
}
