package core

import (
	"testing"
	"testing/quick"

	"dreamsim/internal/netmodel"
	"dreamsim/internal/sched"
	"dreamsim/internal/workload"
)

// TestQuickRandomRuns drives the whole engine with randomized small
// parameter sets under Debug (full structural invariant validation
// after every event). Any violation of Eq. 4, list linkage,
// suspension-queue consistency or task accounting fails the property.
func TestQuickRandomRuns(t *testing.T) {
	f := func(seed uint16, nodes, tasks, cfgs uint8, partial bool,
		placement uint8, lb, noSus, poisson bool, netHigh uint8, retries uint8) bool {

		spec := workload.TableII(int(nodes%20)+3, int(tasks%120)+10)
		spec.Configs = int(cfgs%20) + 2
		if poisson {
			spec.Arrival = workload.ArrivalPoisson
		}
		p := Params{
			Spec:    spec,
			Partial: partial,
			Seed:    uint64(seed),
			PolicyOptions: sched.Options{
				Placement:         sched.Placement(placement % 4),
				LoadBalance:       lb,
				DisableSuspension: noSus,
			},
			Net:           netmodel.Model{DelayLow: 0, DelayHigh: int64(netHigh % 40)},
			Debug:         true,
			MaxSusRetries: int64(retries % 5 * 100),
		}
		s, err := New(p)
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		c := res.Counters
		if c.GeneratedTasks != int64(spec.Tasks) {
			return false
		}
		if c.CompletedTasks+c.DiscardedTasks != c.GeneratedTasks {
			return false
		}
		if c.RunningTasks != 0 || c.SuspendedTasks != 0 {
			return false
		}
		// Final state passes a last full invariant check.
		if err := s.mgr.CheckInvariants(); err != nil {
			t.Logf("final invariants: %v", err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickRandomHeteroRuns repeats the property with the capability
// extension enabled.
func TestQuickRandomHeteroRuns(t *testing.T) {
	f := func(seed uint16, nodes, tasks uint8, partial bool, nodeProb, cfgProb uint8) bool {
		spec := workload.TableII(int(nodes%15)+5, int(tasks%80)+10)
		spec.CapKinds = []string{"a", "b", "c"}
		spec.NodeCapProb = 0.2 + float64(nodeProb%80)/100
		spec.ConfigCapProb = float64(cfgProb%60) / 100
		p := Params{Spec: spec, Partial: partial, Seed: uint64(seed), Debug: true}
		s, err := New(p)
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			t.Logf("hetero run failed: %v", err)
			return false
		}
		c := res.Counters
		return c.CompletedTasks+c.DiscardedTasks == c.GeneratedTasks &&
			c.RunningTasks == 0 && c.SuspendedTasks == 0
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
