package core

import (
	"bytes"
	"reflect"
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/report"
	"dreamsim/internal/workload"
)

// materialize drains the exact task stream a run of p would consume
// into a SliceSource, giving the non-streamed reference input. The
// drain uses its own Simulator, so the returned source is independent
// of any run made with it.
func materialize(t *testing.T, p Params) workload.TaskSource {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.SliceSource(workload.Drain(s.Source()))
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestStreamEquivalence is the determinism contract of the streaming
// engine: with identical seeds, a streamed run (tasks recycled through
// the generator's free list as they terminate) and a fully
// materialized run (the whole workload drained up front into a
// SliceSource) must produce byte-identical XML reports and deeply
// equal Results — metrics, raw meter counters, phase census, final
// snapshot. The RNG streams are covered transitively: any divergence
// in draw order would shift workload or placement and break the
// comparison.
func TestStreamEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 7, 0xDEADBEEF} {
		for _, partial := range []bool{false, true} {
			p := smallParams(40, 600, partial)
			p.Seed = seed

			streamed := p
			streamed.Stream = true
			sres := mustRun(t, streamed)

			mat := p
			mat.Source = materialize(t, p)
			mres := mustRun(t, mat)

			if !reflect.DeepEqual(sres, mres) {
				t.Errorf("seed=%d partial=%v: streamed and materialized results diverged\nstreamed     %+v\nmaterialized %+v",
					seed, partial, sres, mres)
			}

			var sx, mx bytes.Buffer
			if err := report.WriteXML(&sx, sres.XML(p)); err != nil {
				t.Fatal(err)
			}
			if err := report.WriteXML(&mx, mres.XML(p)); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(sx.Bytes(), mx.Bytes()) {
				t.Errorf("seed=%d partial=%v: XML reports not byte-identical", seed, partial)
			}
		}
	}
}

// TestStreamRecyclesThroughGenerator proves the free list is actually
// exercised: on a streamed overloaded run (suspensions force terminal
// completions to interleave with pending arrivals) the generator must
// hand out recycled task structs instead of allocating every one.
func TestStreamRecyclesThroughGenerator(t *testing.T) {
	p := smallParams(10, 400, true)
	p.Stream = true
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	gen, ok := s.Source().(*workload.Generator)
	if !ok {
		t.Fatalf("synthetic source is %T, want *workload.Generator", s.Source())
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if gen.Recycled() == 0 {
		t.Fatal("streamed run never reused a released task")
	}
}

// TestStreamIgnoredWithObserver pins the safety gate: an OnEvent
// observer may retain task pointers, so Stream must not recycle under
// it — and results still match the plain run.
func TestStreamIgnoredWithObserver(t *testing.T) {
	p := smallParams(20, 300, true)
	plain := mustRun(t, p)

	observed := p
	observed.Stream = true
	events := 0
	observed.OnEvent = func(kind string, now int64, task *model.Task) { events++ }
	ores := mustRun(t, observed)
	if events == 0 {
		t.Fatal("observer never fired")
	}
	if !reflect.DeepEqual(plain, ores) {
		t.Error("streamed run under an observer diverged from the plain run")
	}
}
