package core

import (
	"testing"

	"dreamsim/internal/fault"
	"dreamsim/internal/model"
	"dreamsim/internal/rng"
)

// randomFaultSchedule synthesises one scripted fault schedule over a
// population of the given size. Every crash is paired with a later
// recovery, so the population is guaranteed up again once the script
// has fully fired — interleavings in between are unconstrained
// (double crashes, no-op recoveries, overlapping windows).
func randomFaultSchedule(r *rng.RNG, nodes int, horizon int64) []fault.Event {
	var script []fault.Event
	for c := r.Intn(5); c > 0; c-- {
		node := r.Intn(nodes)
		at := r.Int64Range(1, horizon)
		script = append(script,
			fault.Event{At: at, Kind: fault.KindCrash, Node: node},
			fault.Event{At: at + r.Int64Range(1, 5000), Kind: fault.KindRecover, Node: node})
	}
	for c := r.Intn(4); c > 0; c-- {
		script = append(script, fault.Event{At: r.Int64Range(1, horizon), Kind: fault.KindReconfigFault})
	}
	if len(script) == 0 {
		// Keep the fault subsystem engaged even when both draws were 0.
		script = append(script, fault.Event{At: 1, Kind: fault.KindReconfigFault})
	}
	return script
}

// TestFaultPropertyRandomSchedules is the property-based harness:
// many random scripted fault schedules against random small
// workloads, asserting on every one of them that
//
//   - the simulated clock never moves backwards across observed events,
//   - every generated task reaches a terminal state (arrived =
//     completed + discarded + lost; nothing queued or running), and
//   - the resource state satisfies all structural invariants (Eq. 4
//     area bounds included) after the run — and after every event via
//     Debug mode; builds with -tags invariants additionally re-check
//     task conservation and the area bounds inside every state
//     transition, including the crash/recover ones.
func TestFaultPropertyRandomSchedules(t *testing.T) {
	schedules := 200
	if testing.Short() {
		schedules = 25
	}
	r := rng.New(0xfa177)
	for i := 0; i < schedules; i++ {
		nodes := r.IntRange(4, 16)
		tasks := r.IntRange(20, 200)
		script := randomFaultSchedule(r, nodes, int64(tasks)*30)

		p := smallParams(nodes, tasks, r.Bool(0.5))
		p.Seed = r.RandUint64()
		p.FastSearch = r.Bool(0.5)
		p.FastSearchCutoff = 1 // tiny populations: keep the index live when drawn
		p.Debug = true
		p.Faults = fault.Plan{Script: script}
		p.Retry = fault.RetryPolicy{Budget: r.Int64Range(1, 4)}

		last := int64(-1)
		p.OnEvent = func(kind string, now int64, task *model.Task) {
			if now < last {
				t.Fatalf("schedule %d: clock moved backwards: %q at %d after %d", i, kind, now, last)
			}
			last = now
		}

		s, err := New(p)
		if err != nil {
			t.Fatalf("schedule %d (%s): %v", i, fault.FormatScript(script), err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("schedule %d (%s): %v", i, fault.FormatScript(script), err)
		}

		c := res.Counters
		if c.GeneratedTasks != int64(tasks) {
			t.Fatalf("schedule %d: generated %d of %d tasks", i, c.GeneratedTasks, tasks)
		}
		settled := c.CompletedTasks + c.DiscardedTasks + c.LostTasks
		if settled != c.GeneratedTasks || c.RunningTasks != 0 || c.SuspendedTasks != 0 {
			t.Fatalf("schedule %d (%s): conservation broken: completed %d + discarded %d + lost %d != generated %d (running %d, suspended %d)",
				i, fault.FormatScript(script), c.CompletedTasks, c.DiscardedTasks,
				c.LostTasks, c.GeneratedTasks, c.RunningTasks, c.SuspendedTasks)
		}
		if c.NodeRecoveries > c.NodeCrashes {
			t.Fatalf("schedule %d: %d recoveries for %d crashes", i, c.NodeRecoveries, c.NodeCrashes)
		}
		if err := s.Manager().CheckInvariants(); err != nil {
			t.Fatalf("schedule %d (%s): %v", i, fault.FormatScript(script), err)
		}
		if res.Final.DownNodes != 0 {
			t.Fatalf("schedule %d: %d nodes left down despite paired recoveries", i, res.Final.DownNodes)
		}
	}
}

// TestFaultPoissonTermination drives the seeded random fault streams
// (crashes with exponential downtimes plus reconfiguration faults)
// and asserts the run terminates with full task accounting — the
// streams must stop perpetuating themselves once the system drains.
func TestFaultPoissonTermination(t *testing.T) {
	for _, partial := range []bool{false, true} {
		p := smallParams(12, 150, partial)
		p.Debug = true
		p.Faults = fault.Plan{CrashRate: 0.002, MeanDowntime: 200, ReconfigFaultRate: 0.001}
		res := mustRun(t, p)
		c := res.Counters
		if c.CompletedTasks+c.DiscardedTasks+c.LostTasks != c.GeneratedTasks {
			t.Fatalf("partial=%v: conservation broken: %d + %d + %d != %d",
				partial, c.CompletedTasks, c.DiscardedTasks, c.LostTasks, c.GeneratedTasks)
		}
		if c.NodeCrashes == 0 {
			t.Fatalf("partial=%v: crash rate produced no crashes", partial)
		}
		if c.NodeRecoveries != c.NodeCrashes {
			t.Fatalf("partial=%v: %d crashes but %d recoveries (random crashes always schedule recovery)",
				partial, c.NodeCrashes, c.NodeRecoveries)
		}
		if c.DowntimeTicks <= 0 {
			t.Fatalf("partial=%v: crashes charged no downtime", partial)
		}
	}
}

// TestFaultDeterministicRerun re-runs one faulty configuration and
// demands identical counters — the whole point of drawing faults from
// the seeded RNG tree.
func TestFaultDeterministicRerun(t *testing.T) {
	run := func() *Result {
		p := smallParams(10, 120, true)
		p.Faults = fault.Plan{CrashRate: 0.004, MeanDowntime: 150, ReconfigFaultRate: 0.002}
		return mustRun(t, p)
	}
	a, b := run(), run()
	if a.Counters != b.Counters {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Counters, b.Counters)
	}
	if a.Counters.NodeCrashes == 0 {
		t.Fatal("fault stream produced nothing; the test is vacuous")
	}
}

// TestFaultZeroPlanIdentical locks the subsystem's zero-cost contract:
// a zero fault plan must leave every counter and metric of a run
// exactly where a fault-free build would put them (the fault RNG
// stream is only split off on faulty runs).
func TestFaultZeroPlanIdentical(t *testing.T) {
	base := mustRun(t, smallParams(20, 300, true))
	p := smallParams(20, 300, true)
	p.Faults = fault.Plan{}
	p.Retry = fault.RetryPolicy{Budget: 9} // knobs alone must not engage anything
	faulty := mustRun(t, p)
	if base.Counters != faulty.Counters {
		t.Fatalf("zero fault plan changed counters:\n%+v\n%+v", base.Counters, faulty.Counters)
	}
	if base.Report != faulty.Report {
		t.Fatalf("zero fault plan changed the report")
	}
}

// TestFaultRetryBudgetExhaustion pins the retry path's budget
// semantics: a schedule that keeps crashing the whole population
// around the backoff windows must eventually lose tasks, and lost
// tasks must still satisfy conservation.
func TestFaultRetryBudgetExhaustion(t *testing.T) {
	// Crash every node repeatedly with a tight budget and an enormous
	// mean downtime relative to backoff, so displaced tasks land on
	// nodes that are about to crash again.
	p := smallParams(4, 60, true)
	p.Debug = true
	p.Faults = fault.Plan{CrashRate: 0.05, MeanDowntime: 400}
	p.Retry = fault.RetryPolicy{Budget: 1, BackoffBase: 1, BackoffCap: 2}
	res := mustRun(t, p)
	c := res.Counters
	if c.CompletedTasks+c.DiscardedTasks+c.LostTasks != c.GeneratedTasks {
		t.Fatalf("conservation broken with lost tasks: %d + %d + %d != %d",
			c.CompletedTasks, c.DiscardedTasks, c.LostTasks, c.GeneratedTasks)
	}
	if c.LostTasks == 0 {
		t.Fatal("aggressive crash plan lost no tasks; budget path untested")
	}
	if c.TasksRetried == 0 {
		t.Fatal("no retries recorded")
	}
}
