package core

import (
	"fmt"
	"sort"

	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/sim"
	"dreamsim/internal/snapshot"
	"dreamsim/internal/workload"
)

// Checkpoint boundary. A snapshot captures every piece of run state
// that moves between tick boundaries — pending events, counters,
// fabric contents, RNG stream positions, source cursors, queue
// orders — and nothing that New rebuilds deterministically from the
// run parameters (nodes, configurations, handlers, policy tables,
// fault schedules, the fast-search index). RestoreSnapshot therefore
// runs New first and then overwrites the dynamic state, so a restored
// run continues byte-identically to one that never paused.
//
// A snapshot is only legal at a tick boundary: every event at the
// current clock reading has fired and the next pending event lies
// strictly later. RunUntil pauses exactly there.

// SnapshotKind is the envelope kind tag of a core snapshot.
const SnapshotKind = "dreamsim-core"

// SnapshotVersion is the current payload format version. Decoders
// reject anything newer; older versions may be migrated in place.
const SnapshotVersion = 1

// Event kind identifiers in the snapshot payload. The string kinds
// are not serialized: a one-byte ID keeps snapshots compact and makes
// unknown kinds a structured decode error instead of a loose string.
const (
	evArrival = iota
	evCompletion
	evRetry
	evDrainCheck
	evCrashScripted
	evCrashStream
	evRecover
	evArmScripted
	evArmStream
	evKindCount
)

// Now reports the simulation clock.
func (s *Simulator) Now() int64 { return s.eng.Now() }

// Processed reports how many events the run has fired so far.
func (s *Simulator) Processed() uint64 { return s.eng.Processed() }

// EncodeSnapshot serializes the paused run. It fails when the run is
// not at a snapshottable point (never started, already finished,
// failed, or mid-tick) and when the run uses state the boundary
// cannot capture: a caller-supplied Source or Policy (opaque state)
// or a Recorder streaming to a timeline sink.
func (s *Simulator) EncodeSnapshot() ([]byte, error) {
	if !s.ran {
		return nil, fmt.Errorf("core: snapshot before Start")
	}
	if s.err != nil {
		return nil, fmt.Errorf("core: snapshot of a failed run: %w", s.err)
	}
	if s.params.Source != nil {
		return nil, fmt.Errorf("core: a run with a caller-supplied Source cannot be checkpointed")
	}
	if s.params.Policy != nil {
		return nil, fmt.Errorf("core: a run with a caller-supplied Policy cannot be checkpointed")
	}
	next, ok := s.eng.Queue.PeekTime()
	if !ok {
		return nil, fmt.Errorf("core: snapshot of a finished run (event queue empty)")
	}
	if next <= s.eng.Now() {
		return nil, fmt.Errorf("core: snapshot mid-tick (events pending at %d, clock %d)", next, s.eng.Now())
	}

	var w snapshot.Writer

	// Fingerprint: enough of the parameters to reject a restore into
	// a differently-shaped run before any state is overwritten.
	w.U64(s.params.Seed)
	w.Bool(s.params.Partial)
	w.Bool(s.params.Stream)
	w.Int(len(s.mgr.Nodes()))
	w.Int(len(s.mgr.Configs()))
	w.Str(s.policy.Name())
	w.Bool(s.faultsOn)
	w.Bool(s.depsOn)
	w.Int(len(s.classAcc))

	// Engine position.
	w.I64(s.eng.Now())
	w.U64(s.eng.Processed())
	w.U64(s.eng.Queue.NextSeq())

	// Counters, every field in declaration order.
	encodeCounters(&w, s.c)
	w.Int(len(s.classAcc))
	for i := range s.classAcc {
		a := &s.classAcc[i]
		w.I64(a.Generated)
		w.I64(a.Completed)
		w.I64(a.Discarded)
		w.I64(a.Lost)
		w.I64(a.WaitTime)
		w.I64(a.RunTime)
	}

	// Loop flags and in-flight gauges.
	w.Bool(s.arrDone)
	w.I64(s.armedFaults)
	w.I64(s.retryPending)
	w.Bool(s.drainCheckQueued)

	// Task registry: every live task struct, once, sorted by number.
	// Identity matters — the task referenced by a node entry and by
	// its completion event must restore as the SAME struct — so all
	// later sections reference tasks by number.
	tasks, err := s.liveTasks()
	if err != nil {
		return nil, err
	}
	w.Int(len(tasks))
	for _, t := range tasks {
		encodeTask(&w, t)
	}

	// Run context.
	w.Int(len(s.ctx.used))
	for _, u := range s.ctx.used {
		w.Bool(u)
	}
	w.Int(int(phaseCount))
	for _, n := range s.ctx.phases {
		w.I64(n)
	}
	w.Int(len(s.ctx.terminal))
	for _, st := range s.ctx.terminal {
		w.Int(int(st))
	}
	w.Int(s.ctx.depBlockedCount)
	for _, t := range s.ctx.depBlocked {
		if t != nil {
			w.Int(t.No)
		}
	}
	w.Int(len(s.ctx.downSince))
	for _, at := range s.ctx.downSince {
		w.I64(at)
	}

	// Source cursors.
	switch src := s.source.(type) {
	case *workload.Generator:
		w.Int(0)
		src.EncodeState(&w)
	case *workload.ScenarioSource:
		w.Int(1)
		src.EncodeState(&w)
	default:
		return nil, fmt.Errorf("core: source %T cannot be checkpointed", s.source)
	}

	// RNG stream positions not owned by the source.
	w.Bool(s.policyRNG != nil)
	if s.policyRNG != nil {
		s0, s1 := s.policyRNG.State()
		w.U64(s0)
		w.U64(s1)
	}
	w.Bool(s.inj != nil)
	if s.inj != nil {
		s0, s1 := s.inj.RNG().State()
		w.U64(s0)
		w.U64(s1)
	}

	// Fabric contents and list orders.
	s.mgr.EncodeState(&w)

	// Suspension queue, FIFO order, plus its historic peak.
	w.Int(s.sus.Len())
	for _, t := range s.sus.AppendTasks(nil) {
		w.Int(t.No)
	}
	w.Int(s.sus.Peak())

	// Pending events in total (At, seq) order.
	pending := s.eng.Queue.Pending()
	w.Int(len(pending))
	for _, ev := range pending {
		if err := s.encodeEvent(&w, ev); err != nil {
			return nil, err
		}
	}

	// Monitoring state.
	w.Bool(s.params.Recorder != nil)
	if s.params.Recorder != nil {
		if err := s.params.Recorder.EncodeState(&w); err != nil {
			return nil, err
		}
	}

	return snapshot.Seal(SnapshotKind, SnapshotVersion, w.Bytes()), nil
}

// liveTasks collects every task struct reachable from run state:
// payloads of pending events, suspended tasks, dependency-blocked
// tasks and tasks resident on nodes. Each appears once; two distinct
// structs sharing a number is an internal-consistency failure.
func (s *Simulator) liveTasks() ([]*model.Task, error) {
	seen := make(map[*model.Task]bool)
	byNo := make(map[int]*model.Task)
	var tasks []*model.Task
	add := func(t *model.Task) error {
		if t == nil || seen[t] {
			return nil
		}
		if prev, dup := byNo[t.No]; dup && prev != t {
			return fmt.Errorf("core: two live task structs share number %d", t.No)
		}
		seen[t] = true
		byNo[t.No] = t
		tasks = append(tasks, t)
		return nil
	}
	for _, ev := range s.eng.Queue.Pending() {
		if t, isTask := ev.A.(*model.Task); isTask {
			if err := add(t); err != nil {
				return nil, err
			}
		}
	}
	for _, t := range s.sus.AppendTasks(nil) {
		if err := add(t); err != nil {
			return nil, err
		}
	}
	for _, t := range s.ctx.depBlocked {
		if err := add(t); err != nil {
			return nil, err
		}
	}
	for _, n := range s.mgr.Nodes() {
		for _, e := range n.Entries {
			if err := add(e.Task); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].No < tasks[j].No })
	return tasks, nil
}

// encodeEvent appends one pending event as kind ID, firing time and
// payload references.
func (s *Simulator) encodeEvent(w *snapshot.Writer, ev *sim.Event) error {
	switch ev.Kind {
	case "arrival":
		w.Int(evArrival)
		w.I64(ev.At)
		w.Int(ev.A.(*model.Task).No)
	case "completion":
		w.Int(evCompletion)
		w.I64(ev.At)
		w.Int(ev.A.(*model.Task).No)
		w.Int(ev.B.(*model.Node).No)
	case "retry":
		w.Int(evRetry)
		w.I64(ev.At)
		w.Int(ev.A.(*model.Task).No)
	case "drain-check":
		w.Int(evDrainCheck)
		w.I64(ev.At)
	case "fault:crash":
		if ev.B != nil {
			w.Int(evCrashStream)
			w.I64(ev.At)
		} else {
			w.Int(evCrashScripted)
			w.I64(ev.At)
			w.Int(ev.A.(int))
		}
	case "fault:recover":
		w.Int(evRecover)
		w.I64(ev.At)
		w.Int(ev.A.(int))
	case "fault:cfail":
		if ev.B != nil {
			w.Int(evArmStream)
			w.I64(ev.At)
		} else {
			w.Int(evArmScripted)
			w.I64(ev.At)
		}
	default:
		return fmt.Errorf("core: pending %q event cannot be checkpointed", ev.Kind)
	}
	return nil
}

func encodeCounters(w *snapshot.Writer, c *metrics.Counters) {
	w.Int(c.TotalNodes)
	w.Int(c.TotalConfigs)
	w.I64(c.GeneratedTasks)
	w.I64(c.CompletedTasks)
	w.I64(c.SuspendedTasks)
	w.I64(c.DiscardedTasks)
	w.I64(c.RunningTasks)
	w.I64(c.WastedArea)
	w.U64(c.SchedulerSearch)
	w.U64(c.HousekeepingSteps)
	w.I64(c.TaskWaitTime)
	w.I64(c.TaskRunningTime)
	w.I64(c.ConfigurationTime)
	w.I64(c.Reconfigurations)
	w.I64(c.SusRetries)
	w.I64(c.NodeCrashes)
	w.I64(c.NodeRecoveries)
	w.I64(c.DowntimeTicks)
	w.I64(c.TasksRetried)
	w.I64(c.LostTasks)
	w.I64(c.ReconfigFaults)
	w.I64(c.WastedConfigTime)
	w.I64(c.UsedNodes)
	w.I64(c.SimulationTime)
	w.I64(c.SusQueuePeak)
}

func decodeCounters(r *snapshot.Reader, c *metrics.Counters) {
	c.TotalNodes = r.Int()
	c.TotalConfigs = r.Int()
	c.GeneratedTasks = r.I64()
	c.CompletedTasks = r.I64()
	c.SuspendedTasks = r.I64()
	c.DiscardedTasks = r.I64()
	c.RunningTasks = r.I64()
	c.WastedArea = r.I64()
	c.SchedulerSearch = r.U64()
	c.HousekeepingSteps = r.U64()
	c.TaskWaitTime = r.I64()
	c.TaskRunningTime = r.I64()
	c.ConfigurationTime = r.I64()
	c.Reconfigurations = r.I64()
	c.SusRetries = r.I64()
	c.NodeCrashes = r.I64()
	c.NodeRecoveries = r.I64()
	c.DowntimeTicks = r.I64()
	c.TasksRetried = r.I64()
	c.LostTasks = r.I64()
	c.ReconfigFaults = r.I64()
	c.WastedConfigTime = r.I64()
	c.UsedNodes = r.I64()
	c.SimulationTime = r.I64()
	c.SusQueuePeak = r.I64()
}

func encodeTask(w *snapshot.Writer, t *model.Task) {
	w.Int(t.No)
	w.I64(t.NeededArea)
	w.Int(t.PrefConfig)
	w.Int(t.AssignedConfig)
	w.I64(t.Data)
	w.Int(t.Class)
	w.I64(t.CreateTime)
	w.I64(t.StartTime)
	w.I64(t.CompletionTime)
	w.I64(t.RequiredTime)
	w.I64(t.CommDelay)
	w.I64(t.ConfigDelay)
	w.I64(t.SusRetry)
	w.I64(t.Retries)
	if t.Resolved != nil {
		w.Int(t.Resolved.No)
	} else {
		w.Int(-1)
	}
	w.Bool(t.ResolvedClosest)
	w.Int(int(t.Status))
}

// RestoreSnapshot builds a Simulator from the run parameters and
// overwrites its dynamic state from a snapshot, yielding a run that
// continues exactly where EncodeSnapshot paused. The parameters must
// be the ones the snapshotted run was built with; the embedded
// fingerprint rejects the obvious mismatches. Every decode path
// validates before it mutates — corrupt or adversarial payloads
// produce an error wrapping snapshot.ErrCorrupt, never a panic.
func RestoreSnapshot(params Params, data []byte) (*Simulator, error) {
	payload, _, err := snapshot.Open(data, SnapshotKind, SnapshotVersion)
	if err != nil {
		return nil, err
	}
	if params.Source != nil {
		return nil, fmt.Errorf("core: a run with a caller-supplied Source cannot be restored")
	}
	if params.Policy != nil {
		return nil, fmt.Errorf("core: a run with a caller-supplied Policy cannot be restored")
	}
	s, err := New(params)
	if err != nil {
		return nil, err
	}
	r := snapshot.NewReader(payload)
	if err := s.restore(r); err != nil {
		return nil, err
	}
	if err := r.Close(); err != nil {
		return nil, err
	}
	s.ran = true
	return s, nil
}

func (s *Simulator) restore(r *snapshot.Reader) error {
	// Fingerprint.
	seed := r.U64()
	partial := r.Bool()
	stream := r.Bool()
	nodes := r.Int()
	configs := r.Int()
	policyName := r.Str()
	faultsOn := r.Bool()
	depsOn := r.Bool()
	classes := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if seed != s.params.Seed || partial != s.params.Partial || stream != s.params.Stream ||
		nodes != len(s.mgr.Nodes()) || configs != len(s.mgr.Configs()) ||
		policyName != s.policy.Name() || faultsOn != s.faultsOn || depsOn != s.depsOn ||
		classes != len(s.classAcc) {
		return fmt.Errorf("%w: snapshot fingerprint (seed %d, %d nodes, %d configs, policy %q) does not match run parameters (seed %d, %d nodes, %d configs, policy %q)",
			snapshot.ErrCorrupt, seed, nodes, configs, policyName,
			s.params.Seed, len(s.mgr.Nodes()), len(s.mgr.Configs()), s.policy.Name())
	}

	// Engine position. The clock moves now; the queue counters apply
	// after the pending events are re-pushed.
	now := r.I64()
	processed := r.U64()
	nextSeq := r.U64()
	if err := r.Err(); err != nil {
		return err
	}
	if now < 0 {
		return fmt.Errorf("%w: clock at %d", snapshot.ErrCorrupt, now)
	}
	s.eng.Clock.AdvanceTo(now)

	// Counters.
	decodeCounters(r, s.c)
	nacc := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if nacc != len(s.classAcc) {
		return fmt.Errorf("%w: %d class accumulators, run has %d", snapshot.ErrCorrupt, nacc, len(s.classAcc))
	}
	for i := range s.classAcc {
		a := &s.classAcc[i]
		a.Generated = r.I64()
		a.Completed = r.I64()
		a.Discarded = r.I64()
		a.Lost = r.I64()
		a.WaitTime = r.I64()
		a.RunTime = r.I64()
	}

	// Loop flags.
	s.arrDone = r.Bool()
	s.armedFaults = r.I64()
	s.retryPending = r.I64()
	s.drainCheckQueued = r.Bool()
	if err := r.Err(); err != nil {
		return err
	}
	if s.armedFaults < 0 || s.retryPending < 0 {
		return fmt.Errorf("%w: negative in-flight gauge", snapshot.ErrCorrupt)
	}

	// Task registry.
	byNo, err := s.restoreTasks(r)
	if err != nil {
		return err
	}
	taskByNo := func(no int) *model.Task { return byNo[no] }

	// Run context.
	if err := s.restoreContext(r, taskByNo); err != nil {
		return err
	}

	// Source cursors.
	tag := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	switch src := s.source.(type) {
	case *workload.Generator:
		if tag != 0 {
			return fmt.Errorf("%w: snapshot source tag %d, run builds a generator", snapshot.ErrCorrupt, tag)
		}
		if err := src.RestoreState(r); err != nil {
			return err
		}
	case *workload.ScenarioSource:
		if tag != 1 {
			return fmt.Errorf("%w: snapshot source tag %d, run builds a scenario source", snapshot.ErrCorrupt, tag)
		}
		if err := src.RestoreState(r); err != nil {
			return err
		}
	default:
		return fmt.Errorf("core: source %T cannot be restored", s.source)
	}

	// RNG stream positions.
	if hasPolicyRNG := r.Bool(); r.Err() == nil && hasPolicyRNG != (s.policyRNG != nil) {
		return fmt.Errorf("%w: snapshot and run disagree on a placement RNG", snapshot.ErrCorrupt)
	} else if hasPolicyRNG {
		s0, s1 := r.U64(), r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		s.policyRNG.SetState(s0, s1)
	}
	if hasInjRNG := r.Bool(); r.Err() == nil && hasInjRNG != (s.inj != nil) {
		return fmt.Errorf("%w: snapshot and run disagree on a fault injector", snapshot.ErrCorrupt)
	} else if hasInjRNG {
		s0, s1 := r.U64(), r.U64()
		if err := r.Err(); err != nil {
			return err
		}
		s.inj.RNG().SetState(s0, s1)
	}
	if err := r.Err(); err != nil {
		return err
	}

	// Fabric contents.
	if err := s.mgr.RestoreState(r, taskByNo); err != nil {
		return err
	}

	// Suspension queue.
	nsus := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nsus; i++ {
		no := r.Int()
		if err := r.Err(); err != nil {
			return err
		}
		t := byNo[no]
		if t == nil {
			return fmt.Errorf("%w: suspension queue references unknown task %d", snapshot.ErrCorrupt, no)
		}
		if t.Status != model.TaskSuspended {
			return fmt.Errorf("%w: queued task %d has status %v", snapshot.ErrCorrupt, no, t.Status)
		}
		if s.sus.Contains(t) {
			return fmt.Errorf("%w: task %d queued twice", snapshot.ErrCorrupt, no)
		}
		s.sus.Add(t)
	}
	peak := r.Int()
	if err := r.Err(); err != nil {
		return err
	}
	if peak < 0 {
		return fmt.Errorf("%w: suspension queue peak %d", snapshot.ErrCorrupt, peak)
	}
	s.sus.RestorePeak(peak)

	// Pending events, re-pushed in stored (At, seq) order so the
	// queue's total order is reproduced, then the engine counters.
	if err := s.restoreEvents(r, now, byNo); err != nil {
		return err
	}
	if !s.eng.Queue.RestoreSeq(nextSeq) {
		return fmt.Errorf("%w: event sequence counter %d below %d live events", snapshot.ErrCorrupt, nextSeq, s.eng.Queue.Len())
	}
	s.eng.RestoreProcessed(processed)

	// Monitoring state.
	if hasRecorder := r.Bool(); r.Err() == nil && hasRecorder != (s.params.Recorder != nil) {
		return fmt.Errorf("%w: snapshot and run disagree on a monitor recorder", snapshot.ErrCorrupt)
	} else if hasRecorder {
		if err := s.params.Recorder.RestoreState(r); err != nil {
			return err
		}
	}
	return r.Err()
}

// restoreTasks decodes the task registry into fresh structs.
func (s *Simulator) restoreTasks(r *snapshot.Reader) (map[int]*model.Task, error) {
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, err
	}
	cfgByNo := make(map[int]*model.Config, len(s.mgr.Configs()))
	for _, cfg := range s.mgr.Configs() {
		cfgByNo[cfg.No] = cfg
	}
	byNo := make(map[int]*model.Task, n)
	for i := 0; i < n; i++ {
		t := &model.Task{}
		t.No = r.Int()
		t.NeededArea = r.I64()
		t.PrefConfig = r.Int()
		t.AssignedConfig = r.Int()
		t.Data = r.I64()
		t.Class = r.Int()
		t.CreateTime = r.I64()
		t.StartTime = r.I64()
		t.CompletionTime = r.I64()
		t.RequiredTime = r.I64()
		t.CommDelay = r.I64()
		t.ConfigDelay = r.I64()
		t.SusRetry = r.I64()
		t.Retries = r.I64()
		resolved := r.Int()
		t.ResolvedClosest = r.Bool()
		status := r.Int()
		if err := r.Err(); err != nil {
			return nil, err
		}
		if t.No < 0 {
			return nil, fmt.Errorf("%w: task number %d", snapshot.ErrCorrupt, t.No)
		}
		if byNo[t.No] != nil {
			return nil, fmt.Errorf("%w: task %d encoded twice", snapshot.ErrCorrupt, t.No)
		}
		if status < 0 || status > int(model.TaskLost) {
			return nil, fmt.Errorf("%w: task %d status %d", snapshot.ErrCorrupt, t.No, status)
		}
		t.Status = model.TaskStatus(status)
		if resolved >= 0 {
			cfg := cfgByNo[resolved]
			if cfg == nil {
				return nil, fmt.Errorf("%w: task %d resolved to unknown configuration %d", snapshot.ErrCorrupt, t.No, resolved)
			}
			t.Resolved = cfg
		}
		byNo[t.No] = t
	}
	return byNo, nil
}

// restoreContext overwrites the run context's per-run accounting.
func (s *Simulator) restoreContext(r *snapshot.Reader, taskByNo func(no int) *model.Task) error {
	nused := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if nused != len(s.ctx.used) {
		return fmt.Errorf("%w: used-node set covers %d nodes, run has %d", snapshot.ErrCorrupt, nused, len(s.ctx.used))
	}
	s.ctx.usedCount = 0
	for i := 0; i < nused; i++ {
		u := r.Bool()
		if r.Err() != nil {
			return r.Err()
		}
		s.ctx.used[i] = u
		if u {
			s.ctx.usedCount++
		}
	}

	nphases := r.Count()
	if r.Err() == nil && nphases != int(phaseCount) {
		return fmt.Errorf("%w: %d phase counters, run tracks %d", snapshot.ErrCorrupt, nphases, int(phaseCount))
	}
	for i := 0; i < int(phaseCount); i++ {
		v := r.I64()
		if r.Err() != nil {
			return r.Err()
		}
		if v < 0 {
			return fmt.Errorf("%w: negative phase counter", snapshot.ErrCorrupt)
		}
		s.ctx.phases[i] = v
	}

	nterm := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if nterm < len(s.ctx.terminal) {
		return fmt.Errorf("%w: terminal-status table covers %d tasks, run starts at %d", snapshot.ErrCorrupt, nterm, len(s.ctx.terminal))
	}
	s.ctx.terminal = growClear(s.ctx.terminal, nterm)
	for i := 0; i < nterm; i++ {
		st := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		if st < 0 || st > int(model.TaskLost) {
			return fmt.Errorf("%w: terminal status %d", snapshot.ErrCorrupt, st)
		}
		s.ctx.terminal[i] = model.TaskStatus(st)
	}

	nblocked := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	for i := 0; i < nblocked; i++ {
		no := r.Int()
		if r.Err() != nil {
			return r.Err()
		}
		t := taskByNo(no)
		if t == nil {
			return fmt.Errorf("%w: dependency table references unknown task %d", snapshot.ErrCorrupt, no)
		}
		if s.ctx.blockedTask(no) != nil {
			return fmt.Errorf("%w: task %d blocked twice", snapshot.ErrCorrupt, no)
		}
		s.ctx.setBlocked(t)
	}

	ndown := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if ndown != len(s.ctx.downSince) {
		return fmt.Errorf("%w: downtime table covers %d nodes, run tracks %d", snapshot.ErrCorrupt, ndown, len(s.ctx.downSince))
	}
	for i := 0; i < ndown; i++ {
		at := r.I64()
		if r.Err() != nil {
			return r.Err()
		}
		s.ctx.downSince[i] = at
	}
	return nil
}

// restoreEvents re-pushes the pending events in stored order and
// cross-checks the event population against the restored gauges: one
// pending arrival unless the source drained, one pending completion
// per running task, one pending retry per displaced task.
func (s *Simulator) restoreEvents(r *snapshot.Reader, now int64, byNo map[int]*model.Task) error {
	nev := r.Count()
	if err := r.Err(); err != nil {
		return err
	}
	if nev == 0 {
		return fmt.Errorf("%w: no pending events (a finished run cannot be snapshotted)", snapshot.ErrCorrupt)
	}
	var arrivals, completions, retries, drains int64
	nodes := s.mgr.Nodes()
	for i := 0; i < nev; i++ {
		kind := r.Int()
		at := r.I64()
		if err := r.Err(); err != nil {
			return err
		}
		if at < now {
			return fmt.Errorf("%w: pending event at %d behind clock %d", snapshot.ErrCorrupt, at, now)
		}
		if i == 0 && at <= now {
			return fmt.Errorf("%w: earliest pending event at %d not past clock %d (snapshot was not at a tick boundary)", snapshot.ErrCorrupt, at, now)
		}
		taskOf := func() (*model.Task, error) {
			no := r.Int()
			if err := r.Err(); err != nil {
				return nil, err
			}
			t := byNo[no]
			if t == nil {
				return nil, fmt.Errorf("%w: event references unknown task %d", snapshot.ErrCorrupt, no)
			}
			return t, nil
		}
		nodeOf := func() (*model.Node, error) {
			no := r.Int()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if no < 0 || no >= len(nodes) {
				return nil, fmt.Errorf("%w: event references unknown node %d", snapshot.ErrCorrupt, no)
			}
			return nodes[no], nil
		}
		switch kind {
		case evArrival:
			t, err := taskOf()
			if err != nil {
				return err
			}
			arrivals++
			s.eng.ScheduleEventAt(at, "arrival", s.hArrival, t, nil)
		case evCompletion:
			t, err := taskOf()
			if err != nil {
				return err
			}
			node, err := nodeOf()
			if err != nil {
				return err
			}
			completions++
			ev := s.eng.ScheduleEventAt(at, "completion", s.hCompletion, t, node)
			if s.faultsOn {
				s.ctx.setInflight(t.No, ev)
			}
		case evRetry:
			t, err := taskOf()
			if err != nil {
				return err
			}
			retries++
			s.eng.ScheduleEventAt(at, "retry", s.hRetry, t, nil)
		case evDrainCheck:
			drains++
			s.eng.ScheduleEventAt(at, "drain-check", s.hDrainCheck, nil, nil)
		case evCrashScripted, evCrashStream, evRecover, evArmScripted, evArmStream:
			if s.inj == nil {
				return fmt.Errorf("%w: fault event in a run without fault injection", snapshot.ErrCorrupt)
			}
			switch kind {
			case evCrashScripted:
				no, err := nodeOf()
				if err != nil {
					return err
				}
				s.inj.RestoreCrash(at, no.No, false)
			case evCrashStream:
				s.inj.RestoreCrash(at, 0, true)
			case evRecover:
				no, err := nodeOf()
				if err != nil {
					return err
				}
				s.inj.RestoreRecovery(at, no.No)
			case evArmScripted:
				s.inj.RestoreArm(at, false)
			case evArmStream:
				s.inj.RestoreArm(at, true)
			}
		default:
			return fmt.Errorf("%w: unknown event kind %d", snapshot.ErrCorrupt, kind)
		}
	}
	if s.arrDone && arrivals != 0 {
		return fmt.Errorf("%w: %d pending arrivals after the source drained", snapshot.ErrCorrupt, arrivals)
	}
	if !s.arrDone && arrivals != 1 {
		return fmt.Errorf("%w: %d pending arrivals with the source still live", snapshot.ErrCorrupt, arrivals)
	}
	if completions != s.c.RunningTasks {
		return fmt.Errorf("%w: %d pending completions for %d running tasks", snapshot.ErrCorrupt, completions, s.c.RunningTasks)
	}
	if retries != s.retryPending {
		return fmt.Errorf("%w: %d pending retries, gauge says %d", snapshot.ErrCorrupt, retries, s.retryPending)
	}
	if drains > 1 || (drains == 1) != s.drainCheckQueued {
		return fmt.Errorf("%w: %d drain-check events, flag says %v", snapshot.ErrCorrupt, drains, s.drainCheckQueued)
	}
	return nil
}
