package core

import (
	"reflect"
	"testing"
)

// TestFastSearchCounterEquivalence runs full simulations with the
// indexed search path on and off; every counter — including
// SchedulerSearch and HousekeepingSteps, whose charging the fast path
// must replicate step for step — has to come out identical.
func TestFastSearchCounterEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		tune func(*Params)
	}{
		{"full-reconfig", func(p *Params) { p.Partial = false }},
		{"partial-reconfig", func(p *Params) { p.Partial = true }},
		{"heterogeneous-caps", func(p *Params) {
			p.Partial = true
			p.Spec.CapKinds = []string{"bram", "dsp"}
			p.Spec.NodeCapProb = 0.7
			p.Spec.ConfigCapProb = 0.3
		}},
		{"defrag", func(p *Params) {
			p.Partial = true
			p.DefragThreshold = 3
		}},
		{"bounded-retries", func(p *Params) {
			p.Partial = true
			p.MaxSusRetries = 2
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := smallParams(40, 600, true)
			sc.tune(&base)

			lin := base
			lin.FastSearch = false
			fast := base
			fast.FastSearch = true
			// Force the index live: the 40-node population sits below
			// the adaptive cutoff, and a fallen-back fast path would
			// make this equivalence check vacuous.
			fast.FastSearchCutoff = 1

			lres := mustRun(t, lin)
			fres := mustRun(t, fast)

			if lres.Counters != fres.Counters {
				t.Fatalf("counters diverged:\nlinear %+v\nfast   %+v", lres.Counters, fres.Counters)
			}
			if lres.Report != fres.Report {
				t.Fatalf("reports diverged:\nlinear %+v\nfast   %+v", lres.Report, fres.Report)
			}
			if !reflect.DeepEqual(lres.Final, fres.Final) {
				t.Fatalf("final snapshots diverged")
			}
		})
	}
}
