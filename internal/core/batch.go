package core

import (
	"dreamsim/internal/invariant"
	"dreamsim/internal/model"
	"dreamsim/internal/par"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/sched"
)

// Batched same-tick dispatch (DESIGN.md §14): when several arrivals
// share one simulated tick, their placement decisions are speculated
// concurrently against the quiescent tick-start state, then committed
// one by one in the original FIFO firing order. The speculation layer
// never mutates live state — each worker decides on a search-only
// shadow of the resource manager with private counters — so the only
// thing that can make a speculated decision differ from the live one
// is a state transition committed between tick start and that task's
// turn (an earlier arrival in the batch placing a task, a same-tick
// completion or crash firing before the arrival). The capability-shard
// version vector detects exactly that: a decision for configuration
// cfg reads only cfg-compatible shards plus static data, so if every
// shard cfg can reach still carries its tick-start version at commit
// time, the speculated decision — result and metered charges — is
// provably the one a live Decide would produce, and is committed
// as-is. Otherwise the slot is dropped and the arrival falls through
// to the ordinary live Decide. Either way every report byte, counter
// and RNG stream is identical to the sequential run; parallelism buys
// wall time only on ticks where independent capability classes carry
// concurrent arrivals.
//
// Eligibility is decided once at construction (see New): the core must
// have built the policy itself (per-worker clones share no scratch),
// the placement criterion must not draw randomness (RandomFit consumes
// its RNG stream in decision order, which speculation would reorder),
// and precedence constraints must be off (a parent completing earlier
// in the tick changes a child's gate, which shard versions do not
// witness).

// specSlot is one speculated arrival: the task, the decision computed
// against tick-start state, and the search/housekeeping steps the
// decision charged on its shadow (committed to the real counters only
// if the slot validates). evict is the slot-owned copy backing
// d.Evict — the shadow's FindAnyIdleNode scratch is overwritten by the
// next speculation on the same worker, so the victims move out.
type specSlot struct {
	task      *model.Task
	d         sched.Decision
	search    uint64
	housekeep uint64
	evict     []*model.Entry
}

// specRunner is the par.Runner fanning a batch over the workers; each
// worker decides with its own shadow manager and policy clone, so
// chunks share no mutable state and the static chunk map keeps every
// slot's result independent of scheduling.
type specRunner struct {
	b *batcher
}

//dreamsim:noalloc
func (r *specRunner) RunChunk(w, lo, hi int) {
	b := r.b
	for i := lo; i < hi; i++ {
		sl := &b.slots[i]
		//lint:allocfree dynamic dispatch: the eligibility gate admits only core-built paper policies, which decide with value logic; TestBatchTickZeroAlloc gates the closed loop
		d := b.policies[w].Decide(b.shadows[w], sl.task)
		sl.search, sl.housekeep = b.shadows[w].TakeCharges()
		if d.Evict != nil {
			sl.evict = append(sl.evict[:0], d.Evict...)
			d.Evict = sl.evict
		}
		sl.d = d
	}
}

// batcher owns the same-tick dispatch machinery: the arrival prefetch
// buffer between the task source and the engine, the per-worker
// shadow/policy pairs, and the speculation slots of the current tick.
type batcher struct {
	s        *Simulator
	pool     *par.Pool
	run      specRunner
	shadows  []*resinfo.Manager
	policies []sched.Policy

	// Prefetched tasks not yet handed to scheduleNextArrival, consumed
	// front to back; head is the task whose arrival event is currently
	// queued in the engine (the next arrival to fire).
	buf     []*model.Task
	bufHead int
	head    *model.Task
	srcDone bool

	// Current batch: slots[next:] await their arrivals. vers is the
	// shard version vector captured when the batch was speculated.
	slots []specSlot
	next  int
	vers  []uint64

	// Lifetime tallies: slots speculated and slots whose decision
	// survived validation (the rest fell through to the live Decide).
	// Diagnostics only — equivalence tests assert the machinery
	// actually engaged, and the bench harness reports the commit rate.
	nspec   int64
	ncommit int64
}

// newBatcher builds the speculation layer at the given worker width
// (>= 2; Params gating guarantees it).
func newBatcher(s *Simulator, width int) *batcher {
	b := &batcher{
		s:        s,
		pool:     par.NewPool(width),
		shadows:  make([]*resinfo.Manager, width),
		policies: make([]sched.Policy, width),
	}
	b.run.b = b
	for w := 0; w < width; w++ {
		b.shadows[w] = s.mgr.Shadow()
		b.policies[w] = sched.New(s.params.PolicyOptions)
	}
	return b
}

// pull draws the next task directly from the source, remembering
// exhaustion so the source's Next is never called past its end.
func (b *batcher) pull() (*model.Task, bool) {
	if b.srcDone {
		return nil, false
	}
	//lint:allocfree interface dispatch: a source's Next is its own allocation contract, same as scheduleNextArrival's direct call
	task, ok := b.s.source.Next()
	if !ok {
		b.srcDone = true
		return nil, false
	}
	return task, true
}

// nextArrival is the batching replacement for the source in
// scheduleNextArrival: buffered prefetched tasks first, then the
// source. The returned task becomes the queued arrival head.
func (b *batcher) nextArrival() (*model.Task, bool) {
	if b.bufHead < len(b.buf) {
		task := b.buf[b.bufHead]
		b.buf[b.bufHead] = nil
		b.bufHead++
		b.head = task
		return task, true
	}
	task, ok := b.pull()
	if !ok {
		b.head = nil
		return nil, false
	}
	b.head = task
	return task, true
}

// speculate runs at each tick boundary, just before the engine fires
// the events of tick `tick`. If the queued arrival belongs to this
// tick, the source is prefetched through the end of the tick (at most
// one task beyond it is held back in the buffer, to be scheduled by
// the ordinary arrival chain) and all of the tick's arrivals are
// decided concurrently against the current — quiescent — state.
// Batches of one are skipped: a lone arrival gains nothing from
// speculation and goes through the live path untouched.
func (b *batcher) speculate(tick int64) {
	if b.head == nil || b.head.CreateTime != tick {
		return
	}
	if invariant.Enabled {
		invariant.Assertf(b.next == len(b.slots),
			"core: speculation batch entered tick %d with %d unconsumed slots",
			tick, len(b.slots)-b.next)
		invariant.Assertf(b.bufHead == len(b.buf),
			"core: speculation batch entered tick %d with %d unscheduled prefetched tasks",
			tick, len(b.buf)-b.bufHead)
	}
	b.slots = b.slots[:0]
	b.next = 0
	b.buf = b.buf[:0]
	b.bufHead = 0
	b.addSlot(b.head)
	for {
		task, ok := b.pull()
		if !ok {
			break
		}
		b.buf = append(b.buf, task)
		if task.CreateTime > tick {
			break // the holdback: scheduled by the arrival chain, next tick's head
		}
		b.addSlot(task)
	}
	if len(b.slots) < 2 {
		b.slots = b.slots[:0]
		return
	}
	b.nspec += int64(len(b.slots))
	b.vers = b.s.mgr.ShardVersions(b.vers)
	for w := range b.shadows {
		b.s.mgr.SyncShadow(b.shadows[w])
	}
	b.pool.Run(&b.run, len(b.slots))
}

// addSlot appends a speculation slot for task, reusing the slot's
// evict backing array from earlier batches.
func (b *batcher) addSlot(task *model.Task) {
	if len(b.slots) < cap(b.slots) {
		b.slots = b.slots[:len(b.slots)+1]
	} else {
		b.slots = append(b.slots, specSlot{})
	}
	sl := &b.slots[len(b.slots)-1]
	sl.task = task
	sl.d = sched.Decision{}
	sl.search, sl.housekeep = 0, 0
}

// take offers the arrival of task its speculated decision. A slot
// commits only if it is the next slot in FIFO order for this very
// task AND every shard its configuration can reach is untouched since
// speculation; then the shadow's charges post to the live counters
// and the decision is returned. An invalidated slot clears the
// config-resolution cache speculation wrote to the task (the live
// Decide must re-run — and re-charge — the resolution exactly as a
// sequential run would) and reports false.
func (b *batcher) take(task *model.Task) (sched.Decision, bool) {
	if b.next >= len(b.slots) || b.slots[b.next].task != task {
		return sched.Decision{}, false
	}
	sl := &b.slots[b.next]
	b.next++
	if !b.s.mgr.ShardsUnchangedFor(sl.d.Config, b.vers) {
		task.Resolved, task.ResolvedClosest = nil, false
		return sched.Decision{}, false
	}
	b.s.mgr.ChargeSearch(sl.search)
	b.s.mgr.ChargeHousekeeping(sl.housekeep)
	b.ncommit++
	return sl.d, true
}

// BatchStats reports how many arrivals were speculated and how many
// speculated decisions committed over the run so far; both are zero
// when batched dispatch is off or never formed a batch.
func (s *Simulator) BatchStats() (speculated, committed int64) {
	if s.batch == nil {
		return 0, 0
	}
	return s.batch.nspec, s.batch.ncommit
}
