//go:build invariants

package core

import (
	"strings"
	"testing"
)

// TestRunCleanUnderInvariants runs both scenarios end to end with the
// runtime assertions compiled in: conservation, area bounds and queue
// monotonicity must all hold on a healthy run.
func TestRunCleanUnderInvariants(t *testing.T) {
	for _, partial := range []bool{false, true} {
		res := mustRun(t, smallParams(8, 150, partial))
		if res.Counters.GeneratedTasks != res.Counters.CompletedTasks+res.Counters.DiscardedTasks {
			t.Fatalf("partial=%v: tasks unaccounted for: %+v", partial, res.Counters)
		}
	}
}

// TestConservationAssert corrupts the task bookkeeping mid-simulator
// and checks debugCheck trips the tagged assertion.
func TestConservationAssert(t *testing.T) {
	s, err := New(smallParams(4, 10, true))
	if err != nil {
		t.Fatal(err)
	}
	s.c.GeneratedTasks = 1 // one task generated, none accounted for
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("broken conservation did not trip the invariant")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "task conservation") {
			t.Fatalf("panic message = %v", r)
		}
	}()
	s.debugCheck()
}
