// Package core implements the DReAMSim engine (the paper's DreamSim
// class, §IV-C): it wires the input subsystem (workload generation),
// the information subsystem (resource information manager), the core
// subsystem (scheduling policy, monitoring, suspension queue) and the
// output subsystem (metrics/report) into one deterministic
// discrete-event simulation (RunScheduler / MakeReport).
package core

import (
	"errors"
	"fmt"
	"sort"

	"dreamsim/internal/fault"
	"dreamsim/internal/invariant"
	"dreamsim/internal/metrics"
	"dreamsim/internal/model"
	"dreamsim/internal/monitor"
	"dreamsim/internal/netmodel"
	"dreamsim/internal/resinfo"
	"dreamsim/internal/reslists"
	"dreamsim/internal/rng"
	"dreamsim/internal/sched"
	"dreamsim/internal/sim"
	"dreamsim/internal/workload"
)

// Params configures one simulation run.
type Params struct {
	// Spec holds the Table II workload/resource generation parameters.
	Spec workload.Spec
	// Partial selects the reconfiguration method: true = partial
	// reconfiguration (one node, multiple tasks), false = full
	// reconfiguration (one node, one task).
	Partial bool
	// Seed drives all randomness. Two runs with the same seed and
	// Spec see identical nodes, configurations and task streams even
	// when Partial differs — the paper's "same set of parameters in
	// each simulation run".
	Seed uint64
	// PolicyOptions tune the paper scheduling algorithm; ignored when
	// Policy is set.
	PolicyOptions sched.Options
	// Policy overrides the scheduling policy entirely (optional).
	Policy sched.Policy
	// Net is the communication model (zero value: no delays).
	Net netmodel.Model
	// Source replaces the synthetic task generator with an external
	// arrival stream, e.g. a trace (optional). Spec still generates
	// nodes and configurations.
	Source workload.TaskSource
	// Scenario, when set, compiles the declarative scenario (traffic
	// classes, bursty arrivals, load timelines, scheduled events) onto
	// the task source and fault schedule. Spec still governs resource
	// generation and the resolved task count/interval (the public
	// layer folds the scenario's tasks/interval lines into an unset
	// Spec via ApplyDefaults). Ignored when Source is set.
	Scenario *workload.Scenario
	// Stream enables the bounded-memory streaming discipline: every
	// task whose lifecycle has terminally ended (completed, discarded
	// or lost) is released back to the source's free list (when the
	// source implements workload.Recycler), so peak heap is
	// O(nodes + live tasks + window), independent of the total task
	// count. Results, metering and RNG streams are byte-identical to a
	// non-streamed run — recycling touches only allocation behaviour.
	// Ignored when OnEvent is set: an observer may legitimately retain
	// task pointers past the callback, which recycling would corrupt.
	Stream bool
	// TickStep forces the paper-literal tick-by-tick clock instead of
	// event jumping. Results are identical; wall time is not.
	TickStep bool
	// FastSearch enables the resource information manager's indexed
	// placement searches (O(log n) instead of O(n) per search).
	// Results and all metered counters are identical to the linear
	// mode; only wall time changes.
	FastSearch bool
	// FastSearchCutoff is the node count at which FastSearch actually
	// builds the index; smaller populations keep the linear scans,
	// which outrun the index's per-transition maintenance below the
	// threshold. Zero means resinfo.DefaultFastSearchCutoff; 1 forces
	// the index on any population. Ignored unless FastSearch is set.
	FastSearchCutoff int
	// IntraParallel, when > 1, spends that many worker goroutines
	// inside the single run: the resource manager's placement scans
	// shard-dispatch onto a bounded pool (above resinfo's span cutoff),
	// and same-tick arrivals are decided speculatively in parallel and
	// committed in FIFO order (see batch.go). Every report byte,
	// metered counter and RNG stream is identical to a sequential run;
	// the knob trades wall time only. <= 1 is exactly the sequential
	// path. Batched dispatch additionally requires the core-built
	// policy with a deterministic placement criterion and no
	// precedence constraints; runs outside that envelope keep the
	// parallel scans but dispatch sequentially.
	IntraParallel int
	// Debug validates all structural invariants after every event;
	// expensive, meant for tests.
	Debug bool
	// MaxSusRetries, when positive, discards a suspended task after
	// it has been re-examined that many times without placement.
	MaxSusRetries int64
	// Deps lists precedence constraints: Deps[child] = parent task
	// numbers that must complete before child may be scheduled (task-
	// graph workloads, the paper's §VII future work). A task whose
	// parent is discarded is discarded too. taskgraph.Graph.DepsMap
	// produces this form.
	Deps map[int][]int
	// DefragThreshold, when positive, compacts fully-idle partial
	// nodes: after the suspension retry, a node left with at least
	// this many idle regions and no running task is blanked, returning
	// its fabric to one contiguous pool for future configurations
	// (region fragmentation is the classic partial-reconfiguration
	// cost; this knob ablates fighting it eagerly).
	DefragThreshold int
	// Faults configures deterministic fault injection (node crashes,
	// recoveries, reconfiguration failures). The zero value disables
	// the subsystem entirely and keeps the run byte-identical to a
	// build without it.
	Faults fault.Plan
	// Retry tunes the re-dispatch path for tasks displaced by node
	// crashes; zero knobs take the fault package defaults. Ignored
	// when Faults is disabled.
	Retry fault.RetryPolicy
	// OnEvent, when set, observes the task lifecycle ("arrival",
	// "place", "suspend", "discard", "complete"; faulty runs add
	// "retry", "lost" and "reconfig-fault").
	OnEvent func(kind string, now int64, task *model.Task)
	// Recorder, when set, samples system state (the monitoring
	// module's time series) at every placement and completion.
	Recorder *monitor.Recorder
	// Scratch, when set, donates a reusable run context (event-queue
	// pool, dense bookkeeping slices) so a stream of runs on one
	// worker avoids reallocating per-run state. Results are identical
	// with or without it. A context must not be shared by concurrent
	// simulators.
	Scratch *RunContext
}

// Validate reports the first incoherent parameter.
func (p *Params) Validate() error {
	if err := p.Spec.Validate(); err != nil {
		return err
	}
	if err := p.Net.Validate(); err != nil {
		return err
	}
	if p.MaxSusRetries < 0 {
		return fmt.Errorf("core: negative MaxSusRetries %d", p.MaxSusRetries)
	}
	if p.DefragThreshold < 0 {
		return fmt.Errorf("core: negative DefragThreshold %d", p.DefragThreshold)
	}
	if err := p.Faults.Validate(); err != nil {
		return err
	}
	if err := p.Retry.Validate(); err != nil {
		return err
	}
	if p.Scenario != nil {
		if err := p.Scenario.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Simulator is one configured simulation run. Use New, then Run once.
type Simulator struct {
	params  Params
	ctx     *RunContext // per-run scratch (owned or donated via Params.Scratch)
	eng     *sim.Engine // ctx's engine
	mgr     *resinfo.Manager
	policy  sched.Policy
	source  workload.TaskSource
	recycle workload.Recycler // non-nil only in streaming mode (Params.Stream)
	sus     *reslists.SusQueue
	c       *metrics.Counters
	// policyRNG is the RandomFit placement stream when the core built
	// the policy itself (nil otherwise); stashed so a checkpoint can
	// capture and restore its position.
	policyRNG *rng.RNG
	// Per-traffic-class accounting, parallel slices indexed by
	// model.Task.Class; nil unless the source declares >= 2 classes.
	classNames []string
	classAcc   []metrics.ClassCounters
	ran        bool
	arrDone    bool
	depsOn     bool // precedence constraints active (Params.Deps non-empty)
	err        error

	// batch is the same-tick speculative dispatch layer; nil unless
	// Params.IntraParallel > 1 and the run is batching-eligible.
	batch *batcher

	// Pre-bound event handlers: allocated once per run so scheduling
	// an event is allocation-free (payloads ride in the event's A/B
	// slots instead of fresh closures).
	hArrival    sim.Handler
	hCompletion sim.Handler
	hRetry      sim.Handler
	hDrainCheck sim.Handler

	// Fault-injection state, populated only when params.Faults is
	// enabled; all nil/zero on fault-free runs.
	inj              *fault.Injector
	retry            fault.RetryPolicy // normalized retry knobs
	faultsOn         bool
	armedFaults      int64 // pending reconfiguration failures
	retryPending     int64 // displaced tasks awaiting re-dispatch
	drainCheckQueued bool  // a drain-check event is queued

	// drainScratch is the recycled backing array for drainQueue's
	// per-pass suspension snapshot.
	drainScratch []*model.Task
}

// New builds a simulator: it generates the resource population and
// the task source from independent, seed-derived RNG streams so that
// partial/full scenario pairs share identical inputs.
func New(params Params) (*Simulator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(params.Seed)
	cfgR := root.Split()
	nodeR := root.Split()
	taskR := root.Split()
	delayR := root.Split()

	configs := workload.GenConfigs(cfgR, &params.Spec)
	nodes := workload.GenNodes(nodeR, &params.Spec, params.Partial)
	params.Net.AssignDelays(delayR, nodes)

	counters := &metrics.Counters{}
	var mgrOpts []resinfo.Option
	if params.FastSearch {
		cutoff := params.FastSearchCutoff
		if cutoff <= 0 {
			cutoff = resinfo.DefaultFastSearchCutoff
		}
		mgrOpts = append(mgrOpts, resinfo.WithFastSearchCutoff(cutoff))
	}
	if params.IntraParallel > 1 {
		mgrOpts = append(mgrOpts, resinfo.WithIntraParallel(params.IntraParallel))
	}
	mgr, err := resinfo.New(nodes, configs, counters, mgrOpts...)
	if err != nil {
		return nil, err
	}

	source := params.Source
	if source == nil {
		if params.Scenario != nil {
			src, err := workload.NewScenarioSource(taskR, params.Scenario, &params.Spec, configs)
			if err != nil {
				return nil, err
			}
			source = src
		} else {
			gen, err := workload.NewGenerator(taskR, &params.Spec, configs)
			if err != nil {
				return nil, err
			}
			source = gen
		}
	}
	policy := params.Policy
	var policyRNG *rng.RNG
	if policy == nil {
		opts := params.PolicyOptions
		if opts.Placement == sched.RandomFit && opts.RNG == nil {
			opts.RNG = root.Split()
		}
		policyRNG = opts.RNG
		policy = sched.New(opts)
	}

	// Scheduled scenario events (maintenance windows, fault storms)
	// lower onto the fault plan's script. The storm-victim RNG splits
	// only when such events exist, and after every legacy stream, so
	// event-free runs draw exactly the pre-scenario sequences.
	plan := params.Faults
	if params.Scenario != nil && params.Scenario.HasFaultEvents() {
		stormR := root.Split()
		script := params.Scenario.FaultEvents(stormR, len(nodes))
		plan.Script = append(append([]fault.Event(nil), plan.Script...), script...)
	}

	ctx := params.Scratch
	if ctx == nil {
		ctx = NewRunContext()
	}
	depMax := -1
	for child, parents := range params.Deps {
		if child > depMax {
			depMax = child
		}
		for _, p := range parents {
			if p > depMax {
				depMax = p
			}
		}
	}
	ctx.prepare(len(nodes), len(configs), depMax, plan.Enabled())

	s := &Simulator{
		params: params,
		ctx:    ctx,
		eng:    &ctx.eng,
		mgr:    mgr,
		policy: policy,
		//lint:rngflow the checkpoint must capture the very stream the policy consumes; a Split substream would diverge from it
		policyRNG: policyRNG,
		source:    source,
		sus:       reslists.NewSusQueue(),
		c:         counters,
	}
	if params.Stream && params.OnEvent == nil {
		// Streaming discipline: terminal tasks go back to the source's
		// free list. Sources without a free list (SliceSource) simply
		// keep the non-recycled behaviour.
		s.recycle, _ = source.(workload.Recycler)
	}
	if cs, ok := source.(workload.ClassedSource); ok {
		// Per-class accounting exists only on genuinely multi-class
		// runs; single-class sources keep the legacy result shape.
		if names := cs.ClassNames(); len(names) > 1 {
			s.classNames = names
			s.classAcc = make([]metrics.ClassCounters, len(names))
		}
	}
	s.bindHandlers()
	if len(params.Deps) > 0 {
		s.depsOn = true
		// Build the children lists in sorted child order: map iteration
		// order would make releaseChildren's dispatch order — and with
		// it every task-graph result — vary run to run.
		childNos := make([]int, 0, len(params.Deps))
		for child := range params.Deps {
			childNos = append(childNos, child)
		}
		sort.Ints(childNos)
		for _, child := range childNos {
			for _, p := range params.Deps[child] {
				ctx.children[p] = append(ctx.children[p], child)
			}
		}
	}
	s.eng.TickStep = params.TickStep
	if plan.Enabled() {
		// The fault RNG is split only on faulty runs, after every other
		// stream, so fault-free runs draw exactly the same sequences as
		// builds without the subsystem.
		s.retry = params.Retry.WithDefaults()
		s.faultsOn = true
		inj, err := fault.NewInjector(plan, root.Split(), s.eng, faultTarget{s})
		if err != nil {
			return nil, err
		}
		s.inj = inj
	}
	if params.IntraParallel > 1 && params.Policy == nil &&
		params.PolicyOptions.Placement != sched.RandomFit && !s.depsOn {
		// Batched same-tick dispatch (batch.go). Custom policies may
		// carry scratch state unsafe to clone; RandomFit draws its RNG
		// in decision order; precedence gates read parent state shard
		// versions cannot witness — those runs keep sequential dispatch
		// (the sharded parallel scans still apply above the span gate).
		s.batch = newBatcher(s, params.IntraParallel)
	}
	return s, nil
}

// bindHandlers builds the simulator's event callbacks once; every
// scheduled event reuses them with its payload in the A/B slots, so
// the event loop never allocates a closure.
func (s *Simulator) bindHandlers() {
	s.hArrival = func(ev *sim.Event, now int64) {
		s.handleArrival(ev.A.(*model.Task), now)
	}
	s.hCompletion = func(ev *sim.Event, now int64) {
		s.handleCompletion(ev.A.(*model.Task), ev.B.(*model.Node), now)
	}
	s.hRetry = func(ev *sim.Event, at int64) {
		task := ev.A.(*model.Task)
		s.retryPending--
		if s.err != nil {
			return
		}
		s.dispatch(task, s.policy.Decide(s.mgr, task), at)
		s.maybeDrain(at)
		s.debugCheck()
	}
	s.hDrainCheck = func(_ *sim.Event, now int64) {
		s.drainCheckQueued = false
		s.maybeDrain(now)
		s.debugCheck()
	}
}

// faultTarget adapts the simulator to the fault.Target callback
// surface the injector acts through.
type faultTarget struct{ s *Simulator }

func (t faultTarget) NodeCount() int          { return len(t.s.mgr.Nodes()) }
func (t faultTarget) NodeDown(no int) bool    { return t.s.mgr.Nodes()[no].Down }
func (t faultTarget) Crash(no int, now int64) { t.s.crashNode(no, now) }
func (t faultTarget) Recover(no int, now int64) {
	t.s.recoverNode(no, now)
}
func (t faultTarget) ArmReconfigFault(now int64) { t.s.armedFaults++ }
func (t faultTarget) Live() bool                 { return t.s.faultLive() }

// faultLive reports whether the simulation still has work in flight;
// the injector's random streams stop perpetuating once it is false.
func (s *Simulator) faultLive() bool {
	return !s.arrDone || s.c.RunningTasks > 0 || s.sus.Len() > 0 || s.retryPending > 0
}

// Manager exposes the resource information manager (read-only use).
func (s *Simulator) Manager() *resinfo.Manager { return s.mgr }

// Source exposes the task arrival stream. Draining it manually (for
// trace capture) consumes the tasks the run would otherwise see, so
// do not also Run the same Simulator afterwards.
func (s *Simulator) Source() workload.TaskSource { return s.source }

// Snapshot captures the current monitoring view.
func (s *Simulator) Snapshot() monitor.Snapshot {
	return monitor.Take(s.mgr, s.eng.Now())
}

// Run executes the simulation to completion and assembles the result.
// A Simulator runs once.
func (s *Simulator) Run() (*Result, error) {
	if err := s.Start(); err != nil {
		return nil, err
	}
	if s.batch != nil {
		// Batched dispatch needs the tick-boundary speculation hook.
		s.RunUntil(nil)
	} else {
		s.eng.Run(func() bool { return s.err != nil })
	}
	return s.Finish()
}

// Start primes the run: it schedules the first arrival and opens the
// fault streams, but fires no events. Use with RunUntil and Finish
// when the run needs to pause at tick boundaries (checkpointing);
// plain Run composes all three.
func (s *Simulator) Start() error {
	if s.ran {
		return errors.New("core: Simulator already ran")
	}
	s.ran = true

	s.scheduleNextArrival()
	if s.inj != nil {
		s.inj.Start()
	}
	return s.err
}

// RunUntil fires events until the queue drains (returns true) or
// pause returns true at a tick boundary (returns false). A tick
// boundary is the moment every event at the current clock reading has
// fired and the next pending event lies strictly later — exactly the
// state EncodeSnapshot accepts. pause sees the current clock and the
// number of events processed so far; a nil pause never stops early.
//
// The loop steps event-by-event even when TickStep is set: per the
// sim package contract the two walks produce identical results, and a
// restored run re-fires from the same boundary either way.
func (s *Simulator) RunUntil(pause func(now int64, processed uint64) bool) bool {
	for {
		if s.err != nil {
			return true
		}
		next, ok := s.eng.Queue.PeekTime()
		if !ok {
			return true
		}
		if next > s.eng.Now() {
			if pause != nil && pause(s.eng.Now(), s.eng.Processed()) {
				return false
			}
			if s.batch != nil {
				// Crossing into tick `next`: speculate its arrival batch
				// against the still-quiescent state. At a pause boundary
				// (above) the batcher holds nothing — prefetched tasks
				// are always scheduled within their own tick — so
				// checkpoints never see speculation state.
				s.batch.speculate(next)
			}
		}
		s.eng.Step()
	}
}

// Finish validates end-of-run accounting and assembles the result.
// It must only be called once the event queue has drained.
func (s *Simulator) Finish() (*Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if !s.ran {
		return nil, errors.New("core: Finish before Start")
	}
	if s.eng.Queue.Len() != 0 {
		return nil, fmt.Errorf("core: Finish with %d events still pending", s.eng.Queue.Len())
	}

	// The event queue drained: every task must be accounted for.
	s.c.SuspendedTasks = int64(s.sus.Len())
	if s.c.SuspendedTasks != 0 || s.c.RunningTasks != 0 || s.retryPending != 0 {
		return nil, fmt.Errorf("core: run ended with %d suspended, %d running, %d retrying tasks",
			s.c.SuspendedTasks, s.c.RunningTasks, s.retryPending)
	}
	if s.ctx.depBlockedCount != 0 {
		return nil, fmt.Errorf("core: run ended with %d tasks still blocked on dependencies",
			s.ctx.depBlockedCount)
	}
	if s.batch != nil {
		// The queue drained, so no tick will speculate again; release
		// the worker goroutines now instead of waiting for the GC
		// finalizer (sweeps build thousands of Simulators).
		s.batch.pool.Close()
	}
	s.c.SimulationTime = s.eng.Now() // Eq. 5
	s.c.UsedNodes = int64(s.ctx.usedCount)
	s.c.SusQueuePeak = int64(s.sus.Peak())

	scenario := "full"
	if s.params.Partial {
		scenario = "partial"
	}
	final := monitor.Take(s.mgr, s.eng.Now())
	if s.classAcc != nil {
		final = monitor.TakeClassed(s.mgr, s.eng.Now(), len(s.classAcc))
	}
	return &Result{
		Report:   metrics.Compute(s.c),
		Counters: *s.c,
		Classes:  metrics.ComputeClasses(s.classNames, s.classAcc),
		Phases:   s.ctx.phasesMap(),
		Policy:   s.policy.Name(),
		Scenario: scenario,
		Seed:     s.params.Seed,
		Final:    final,
	}, nil
}

// classAccOf returns the task's per-class accumulator, or nil when
// per-class accounting is off (or the index is out of range, which a
// custom Source could produce).
func (s *Simulator) classAccOf(task *model.Task) *metrics.ClassCounters {
	if s.classAcc == nil || task.Class < 0 || task.Class >= len(s.classAcc) {
		return nil
	}
	return &s.classAcc[task.Class]
}

// scheduleNextArrival pulls the next task from the source and queues
// its arrival event.
func (s *Simulator) scheduleNextArrival() {
	var task *model.Task
	var ok bool
	if s.batch != nil {
		// Prefetched tasks flow back through the batcher so arrival
		// events are scheduled in the exact source order, one at a time,
		// just as the direct path does.
		task, ok = s.batch.nextArrival()
	} else {
		//lint:allocfree interface dispatch: a source's Next is its own allocation contract; the streaming generator recycles task structs and TestTickZeroAlloc gates the closed loop
		task, ok = s.source.Next()
	}
	if !ok {
		s.arrDone = true
		if tr, isTrace := s.source.(*workload.TraceReader); isTrace && tr.Err() != nil {
			s.fail(tr.Err())
		}
		return
	}
	at := task.CreateTime
	if at < s.eng.Now() {
		s.fail(fmt.Errorf("core: source emitted task %d in the past (%d < %d)",
			task.No, at, s.eng.Now()))
		return
	}
	s.eng.ScheduleEventAt(at, "arrival", s.hArrival, task, nil)
}

// handleArrival runs the scheduling algorithm for a newly arrived task.
//
//dreamsim:noalloc
func (s *Simulator) handleArrival(task *model.Task, now int64) {
	if s.err != nil {
		return
	}
	s.c.GeneratedTasks++
	if ca := s.classAccOf(task); ca != nil {
		ca.Generated++
	}
	s.emit("arrival", now, task)
	s.scheduleNextArrival()

	if s.depsOn {
		switch s.parentGate(task) {
		case gateDiscard:
			s.discard(task, now)
			s.debugCheck()
			return
		case gateBlocked:
			s.ctx.setBlocked(task)
			s.emit("hold", now, task)
			s.debugCheck()
			return
		}
	}
	if s.batch != nil {
		if d, ok := s.batch.take(task); ok {
			s.dispatch(task, d, now)
			s.debugCheck()
			return
		}
	}
	//lint:allocfree interface dispatch: the paper policies decide with value logic only; each policy's discipline is gated by TestTickZeroAlloc
	d := s.policy.Decide(s.mgr, task)
	s.dispatch(task, d, now)
	s.debugCheck()
}

// gateVerdict classifies a task against its precedence constraints.
type gateVerdict int

const (
	gateReady gateVerdict = iota
	gateBlocked
	gateDiscard
)

// parentGate checks whether task's parents allow it to run yet.
func (s *Simulator) parentGate(task *model.Task) gateVerdict {
	for _, p := range s.params.Deps[task.No] {
		switch s.ctx.terminalOf(p) {
		case model.TaskCompleted:
			// satisfied
		case model.TaskDiscarded, model.TaskLost:
			return gateDiscard
		default:
			return gateBlocked
		}
	}
	return gateReady
}

// releaseChildren re-examines the dependants of a finished parent.
func (s *Simulator) releaseChildren(parentNo int, now int64) {
	for _, childNo := range s.ctx.childrenOf(parentNo) {
		child := s.ctx.blockedTask(childNo)
		if child == nil {
			continue // not yet arrived; its arrival will re-check
		}
		switch s.parentGate(child) {
		case gateReady:
			s.ctx.clearBlocked(childNo)
			//lint:allocfree interface dispatch: the paper policies decide with value logic only; each policy's discipline is gated by TestTickZeroAlloc
			s.dispatch(child, s.policy.Decide(s.mgr, child), now)
		case gateDiscard:
			s.ctx.clearBlocked(childNo)
			s.discard(child, now)
		}
	}
}

// dispatch applies a scheduling decision to a task.
func (s *Simulator) dispatch(task *model.Task, d sched.Decision, now int64) {
	switch {
	case d.Places():
		s.place(task, d, now)
	case d.Action == sched.ActSuspend:
		s.sus.Add(task)
		s.c.SuspendedTasks = int64(s.sus.Len())
		s.ctx.phases[phaseSuspend]++
		s.emit("suspend", now, task)
	default:
		s.discard(task, now)
	}
}

// place commits a placing decision: mutate resource state, charge
// Eq. 6-8 accounting, and schedule the completion event.
func (s *Simulator) place(task *model.Task, d sched.Decision, now int64) {
	// An armed reconfiguration fault fires on the next decision that
	// loads a bitstream; pure allocations onto an idle region involve
	// no reconfiguration and pass through unharmed.
	if s.armedFaults > 0 && d.Action != sched.ActAllocate {
		s.failReconfig(task, d, now)
		return
	}
	entry, _, err := sched.Apply(s.mgr, task, d)
	if err != nil {
		s.fail(fmt.Errorf("core: applying %s for task %d: %w", d, task.No, err))
		return
	}
	node := entry.Node

	var cfgDelay int64
	if d.Action != sched.ActAllocate {
		cfgDelay = s.params.Net.ConfigDelay(node, d.Config)
	}
	commDelay := s.params.Net.CommDelay(node, task)

	task.StartTime = now
	task.CommDelay = commDelay
	task.ConfigDelay = cfgDelay
	s.c.TaskWaitTime += task.WaitTime() // Eq. 8/9
	if ca := s.classAccOf(task); ca != nil {
		ca.WaitTime += task.WaitTime()
	}

	// Eq. 6/7 accumulation: the fabric left unusable beside the task
	// just placed (see DESIGN.md "wasted-area accounting").
	s.c.WastedArea += node.AvailableArea

	s.ctx.markUsed(node.No)
	s.ctx.phases[phase(d.Action)]++
	if d.ClosestMatch {
		s.ctx.phases[phaseClosestMatch]++
	}
	s.c.RunningTasks++
	s.c.SuspendedTasks = int64(s.sus.Len())
	s.emit("place", now, task)

	ev := s.eng.ScheduleEventAfter(commDelay+cfgDelay+task.RequiredTime, "completion",
		s.hCompletion, task, node)
	if s.faultsOn {
		s.ctx.setInflight(task.No, ev)
	}
}

// failReconfig consumes one armed reconfiguration fault: the
// bitstream load aborts, its reconfiguration time is charged as
// wasted, and the task re-enters the suspension queue (the paper's
// suspension path, §IV-C) to be retried by a later scheduling pass.
// No resource state mutates — the fault struck before sched.Apply.
func (s *Simulator) failReconfig(task *model.Task, d sched.Decision, now int64) {
	s.armedFaults--
	s.c.ReconfigFaults++
	s.c.WastedConfigTime += s.params.Net.ConfigDelay(d.TargetNode(), d.Config)
	s.ctx.phases[phaseReconfigFault]++
	s.sus.Add(task)
	s.c.SuspendedTasks = int64(s.sus.Len())
	s.emit("reconfig-fault", now, task)
	// The failed placement may have been the last scheduled activity;
	// re-check drainability once the current event unwinds (this can
	// fire inside a suspension-queue walk, so never drain in place).
	s.scheduleDrainCheck()
}

// discard drops a task permanently; dependants of a discarded task
// can never run, so the verdict cascades to waiting children.
func (s *Simulator) discard(task *model.Task, now int64) {
	task.Status = model.TaskDiscarded
	s.c.DiscardedTasks++
	if ca := s.classAccOf(task); ca != nil {
		ca.Discarded++
	}
	s.ctx.phases[phaseDiscard]++
	s.emit("discard", now, task)
	if s.depsOn {
		s.ctx.setTerminal(task.No, model.TaskDiscarded)
		s.releaseChildren(task.No, now)
	}
	s.release(task)
}

// release returns a terminally-finished task to the source's free
// list in streaming mode. Nothing in the simulator may touch the
// pointer afterwards: the next arrival reuses the struct.
func (s *Simulator) release(task *model.Task) {
	if s.recycle != nil {
		//lint:allocfree interface dispatch: Release returns the struct to the source's free list; it allocates nothing by contract
		s.recycle.Release(task)
	}
}

// handleCompletion is the paper's TaskCompletionProc: release the
// region, update lists and statistics, then feed the freed node to
// the suspension queue.
//
//dreamsim:noalloc
func (s *Simulator) handleCompletion(task *model.Task, node *model.Node, now int64) {
	if s.err != nil {
		return
	}
	if s.faultsOn {
		s.ctx.clearInflight(task.No)
	}
	if _, err := s.mgr.FinishTask(node, task); err != nil {
		s.fail(fmt.Errorf("core: completing task %d: %w", task.No, err))
		return
	}
	task.Status = model.TaskCompleted
	task.CompletionTime = now
	s.c.CompletedTasks++
	s.c.RunningTasks--
	s.c.TaskRunningTime += task.TurnaroundTime()
	if ca := s.classAccOf(task); ca != nil {
		ca.Completed++
		ca.RunTime += task.TurnaroundTime()
	}
	s.emit("complete", now, task)

	if s.depsOn {
		s.ctx.setTerminal(task.No, model.TaskCompleted)
		s.releaseChildren(task.No, now)
	}
	s.release(task)
	s.retrySuspended(node, now)
	s.maybeDefrag(node)
	s.maybeDrain(now)
	s.debugCheck()
}

// maybeDrain resolves the still-suspended backlog via full scheduling
// passes once nothing else can free resources: arrivals exhausted,
// nothing running, no displaced task awaiting re-dispatch and no node
// recovery in flight (a recovering node may yet host the backlog).
func (s *Simulator) maybeDrain(now int64) {
	if s.err != nil || !s.arrDone || s.c.RunningTasks != 0 || s.retryPending != 0 {
		return
	}
	if s.sus.Len() == 0 {
		return
	}
	if s.inj != nil && s.inj.PendingRecoveries() > 0 {
		return
	}
	s.drainQueue(now)
}

// scheduleDrainCheck queues a zero-delay drainability re-check.
// Fault paths that suspend work inside a suspension-queue walk must
// not drain re-entrantly; the check runs once the walk unwinds.
// Multiple requests in one event coalesce into one check.
func (s *Simulator) scheduleDrainCheck() {
	if s.drainCheckQueued || s.err != nil {
		return
	}
	s.drainCheckQueued = true
	s.eng.ScheduleEventAfter(0, "drain-check", s.hDrainCheck, nil, nil)
}

// crashNode is the injector's crash callback: blank the node's
// resource state, cancel the completions of its in-flight tasks and
// push the displaced tasks into the retry path. Crashing a node that
// is already down is a no-op, so scripts and random streams overlap
// safely.
func (s *Simulator) crashNode(no int, now int64) {
	if s.err != nil {
		return
	}
	node := s.mgr.Nodes()[no]
	if node.Down {
		return
	}
	victims, err := s.mgr.CrashNode(node)
	if err != nil {
		s.fail(fmt.Errorf("core: crashing node %d: %w", no, err))
		return
	}
	s.c.NodeCrashes++
	s.ctx.downSince[no] = now
	for _, task := range victims {
		if ev := s.ctx.inflightOf(task.No); ev != nil {
			s.eng.Queue.Remove(ev)
			s.ctx.clearInflight(task.No)
		}
		s.c.RunningTasks--
		s.requeue(task, now)
	}
	s.maybeDrain(now)
	s.debugCheck()
}

// recoverNode is the injector's recovery callback: the node returns
// to service blank and is immediately offered to the suspension
// queue. Recovering an up node is a no-op — but drainability is
// re-checked regardless, because a scripted no-op recovery can be the
// last event gating the final drain.
func (s *Simulator) recoverNode(no int, now int64) {
	if s.err != nil {
		return
	}
	node := s.mgr.Nodes()[no]
	if node.Down {
		if err := s.mgr.RecoverNode(node); err != nil {
			s.fail(fmt.Errorf("core: recovering node %d: %w", no, err))
			return
		}
		s.c.NodeRecoveries++
		s.c.DowntimeTicks += now - s.ctx.downSince[no]
		s.retrySuspended(node, now)
	}
	s.maybeDrain(now)
	s.debugCheck()
}

// requeue sends a crash-displaced task through the retry path: after
// a capped exponential backoff it is re-dispatched through the
// scheduling policy like a fresh arrival. A task displaced more times
// than the retry budget is counted lost.
func (s *Simulator) requeue(task *model.Task, now int64) {
	task.Retries++
	if task.Retries > s.retry.Budget {
		s.lose(task, now)
		return
	}
	task.Status = model.TaskRetrying
	s.c.TasksRetried++
	s.retryPending++
	s.emit("retry", now, task)
	s.eng.ScheduleEventAfter(s.retry.Backoff(task.Retries), "retry", s.hRetry, task, nil)
}

// lose drops a task that exhausted its retry budget. Like a discard
// the verdict is terminal and cascades to dependants, but it is
// accounted separately: a lost task held resources and made progress
// before faults took it down.
func (s *Simulator) lose(task *model.Task, now int64) {
	task.Status = model.TaskLost
	s.c.LostTasks++
	if ca := s.classAccOf(task); ca != nil {
		ca.Lost++
	}
	s.ctx.phases[phaseLost]++
	s.emit("lost", now, task)
	if s.depsOn {
		s.ctx.setTerminal(task.No, model.TaskLost)
		s.releaseChildren(task.No, now)
	}
	s.release(task)
}

// nodeSummary is an O(1)-queryable digest of what a freed node can
// offer the suspension queue: which configurations have an idle
// region, how much unconfigured fabric is free, and how much area is
// reclaimable by evicting idle regions. Full-configuration nodes
// offer only the direct match — their fabric cannot be rewritten
// piecewise while the retry considers them (see Policy.DecideOnNode).
type nodeSummary struct {
	idle    []bool // indexed by configuration number
	free    model.Area
	reclaim model.Area
}

// summarize digests node; the entry walk is housekeeping work. The
// idle digest lives in the run context with an explicit grow-and-clear
// so a donated context whose previous run had a different
// configuration count can never leak stale bits (the old lazy sizing
// allocated once and never re-validated).
func (s *Simulator) summarize(node *model.Node) nodeSummary {
	s.ctx.idle = growClear(s.ctx.idle, len(s.mgr.Configs()))
	sum := nodeSummary{idle: s.ctx.idle}
	var steps uint64
	busy := false
	for _, e := range node.Entries {
		steps++
		if e.Idle() {
			if e.Config.No < len(sum.idle) {
				sum.idle[e.Config.No] = true
			}
			sum.reclaim += e.Config.ReqArea
		} else {
			busy = true
		}
	}
	s.mgr.ChargeHousekeeping(steps)
	if node.PartialMode {
		sum.free = node.AvailableArea
		sum.reclaim += node.AvailableArea
	} else {
		sum.reclaim = 0 // full mode: retry never rewrites the node
		if busy {
			for i := range sum.idle {
				sum.idle[i] = false // resident region unusable
			}
		}
		if node.Blank() {
			// A blank full-mode node (only reachable via crash
			// recovery) can take any fresh configuration that fits.
			sum.free = node.AvailableArea
		}
	}
	return sum
}

// fits reports whether a task needing cfg could possibly land on the
// summarised node.
func (sum nodeSummary) fits(cfg *model.Config) bool {
	if cfg.No < len(sum.idle) && sum.idle[cfg.No] {
		return true
	}
	return cfg.ReqArea <= sum.free || cfg.ReqArea <= sum.reclaim
}

// retrySuspended walks the suspension queue in FIFO order after node
// released resources (the paper's RemoveTaskFromSusQueue flow),
// placing every queued task the node can still host. Each explored
// queue link is one scheduler search step (the Table I "search links
// explored" unit); the policy is consulted only for tasks the digest
// says could fit, so a miss costs exactly one step.
func (s *Simulator) retrySuspended(node *model.Node, now int64) {
	if s.sus.Len() == 0 {
		return
	}
	sum := s.summarize(node)
	steps := s.sus.Each(func(qt *model.Task) bool {
		if s.err != nil {
			return false
		}
		if s.params.MaxSusRetries > 0 && qt.SusRetry > s.params.MaxSusRetries {
			s.sus.Remove(qt)
			s.discard(qt, now)
			return true
		}
		if qt.Resolved != nil && !sum.fits(qt.Resolved) {
			return true // cannot fit: one search step, nothing else
		}
		//lint:allocfree interface dispatch: the paper policies decide with value logic only; each policy's discipline is gated by TestTickZeroAlloc
		d := s.policy.DecideOnNode(s.mgr, qt, node)
		if d.Places() {
			s.sus.Remove(qt)
			s.place(qt, d, now)
			sum = s.summarize(node) // capacity changed
		}
		return true
	})
	s.c.SusRetries += int64(steps)
	s.mgr.ChargeSearch(steps)
	s.c.SuspendedTasks = int64(s.sus.Len())
}

// drainQueue runs full scheduling passes over the suspended tasks
// until no further progress; remaining suspend verdicts wait on the
// tasks just placed, and discard verdicts are final.
func (s *Simulator) drainQueue(now int64) {
	for s.err == nil {
		progress := false
		s.drainScratch = s.sus.AppendTasks(s.drainScratch[:0])
		for _, qt := range s.drainScratch {
			//lint:allocfree interface dispatch: the paper policies decide with value logic only; each policy's discipline is gated by TestTickZeroAlloc
			d := s.policy.Decide(s.mgr, qt)
			switch {
			case d.Places():
				s.sus.Remove(qt)
				s.place(qt, d, now)
				progress = true
			case d.Action == sched.ActDiscard:
				s.sus.Remove(qt)
				s.discard(qt, now)
				progress = true
			case d.Action == sched.ActSuspend && s.c.RunningTasks == 0:
				// A suspend verdict with nothing running is only
				// reachable when a down node could still fit the task,
				// and maybeDrain guarantees no recovery is pending —
				// the wait would never end, so the discard is final.
				s.sus.Remove(qt)
				s.discard(qt, now)
				progress = true
			}
		}
		if !progress {
			break
		}
		if s.c.RunningTasks > 0 {
			// Someone is running again; completions take over.
			break
		}
	}
	s.c.SuspendedTasks = int64(s.sus.Len())
	if s.err == nil && s.c.RunningTasks == 0 && s.sus.Len() > 0 {
		s.fail(fmt.Errorf("core: drain left %d unplaceable suspended tasks", s.sus.Len()))
	}
}

// maybeDefrag compacts a fully-idle, fragmented partial node when the
// defragmentation knob is on: all resident (idle) regions are evicted
// so the fabric returns to one blank pool. Counts as housekeeping.
func (s *Simulator) maybeDefrag(node *model.Node) {
	t := s.params.DefragThreshold
	if t <= 0 || !node.PartialMode || s.err != nil {
		return
	}
	if node.RunningTasks() > 0 || len(node.Entries) < t {
		return
	}
	if err := s.mgr.BlankNode(node); err != nil {
		s.fail(fmt.Errorf("core: defragmenting node %d: %w", node.No, err))
	}
	s.ctx.phases[phaseDefrag]++
}

// emit publishes a lifecycle event to the observer and feeds the
// monitoring recorder on state-changing events.
func (s *Simulator) emit(kind string, now int64, task *model.Task) {
	if s.params.OnEvent != nil {
		//lint:allocfree observer hook: user-supplied; runs nil on the gated hot path
		s.params.OnEvent(kind, now, task)
	}
	if s.params.Recorder != nil && (kind == "place" || kind == "complete") {
		//lint:allocfree monitoring path: the recorder amortizes per closed window, not per event, and the gated tick benchmark runs with Recorder == nil
		s.params.Recorder.Observe(s.mgr, now, s.sus.Len())
	}
}

// fail records the first internal error and stops the run.
func (s *Simulator) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// debugCheck validates all invariants when Debug is on. Builds with
// -tags invariants additionally re-check task conservation after
// every event, Debug or not.
func (s *Simulator) debugCheck() {
	if invariant.Enabled && s.err == nil {
		settled := s.c.CompletedTasks + s.c.DiscardedTasks + s.c.LostTasks +
			s.c.RunningTasks + s.retryPending +
			int64(s.sus.Len()) + int64(s.ctx.depBlockedCount)
		invariant.Assertf(settled == s.c.GeneratedTasks,
			"core: task conservation broken: generated %d != completed %d + discarded %d + lost %d + running %d + retrying %d + suspended %d + dep-blocked %d",
			s.c.GeneratedTasks, s.c.CompletedTasks, s.c.DiscardedTasks, s.c.LostTasks,
			s.c.RunningTasks, s.retryPending, s.sus.Len(), s.ctx.depBlockedCount)
	}
	if !s.params.Debug || s.err != nil {
		return
	}
	//lint:allocfree debug-only path: guarded by params.Debug, which is off on the gated hot path
	if err := s.mgr.CheckInvariants(); err != nil {
		s.fail(err)
		return
	}
	if err := s.sus.CheckInvariants(); err != nil {
		s.fail(err)
	}
}
