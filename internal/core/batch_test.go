package core

import (
	"reflect"
	"testing"

	"dreamsim/internal/fault"
	"dreamsim/internal/invariant"
	"dreamsim/internal/model"
	"dreamsim/internal/rng"
	"dreamsim/internal/workload"
)

// The synthetic generator draws inter-arrival gaps of at least one
// tick, so a Spec-driven run never has two arrivals share a tick and
// batched dispatch would be vacuous. collidedSource replays the
// generator's exact task stream with CreateTimes compressed by quant,
// which collapses nearby arrivals onto shared ticks while preserving
// their order. The generator is rebuilt with the same substream
// derivation as New (config stream, node stream, task stream, in that
// order) so the tasks reference the very config population the run
// under test will build from the same seed. Each call produces fresh
// task structs: runs mutate tasks, so the two sides of an equivalence
// comparison must never share them.
func collidedSource(t *testing.T, p Params, quant int64) workload.TaskSource {
	t.Helper()
	spec := p.Spec
	root := rng.New(p.Seed)
	cfgR := root.Split()
	_ = root.Split() // node stream, drawn by New itself
	taskR := root.Split()
	configs := workload.GenConfigs(cfgR, &spec)
	gen, err := workload.NewGenerator(taskR, &spec, configs)
	if err != nil {
		t.Fatal(err)
	}
	tasks := workload.Drain(gen)
	for _, task := range tasks {
		// +1 keeps tick 0 free: the engine starts at 0, and an
		// arrival already at the clock reading never crosses a tick
		// boundary, so it could not join a batch.
		task.CreateTime = task.CreateTime/quant + 1
	}
	src, err := workload.SliceSource(tasks)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

// TestIntraParallelResultEquivalence is the batched-dispatch contract:
// a run with IntraParallel workers speculating same-tick arrivals must
// produce the exact Result — counters (including SchedulerSearch and
// HousekeepingSteps), report, per-class stats and final snapshot — of
// the sequential run, across every scheduling feature that interacts
// with the dispatch path.
func TestIntraParallelResultEquivalence(t *testing.T) {
	scenarios := []struct {
		name string
		tune func(*Params)
	}{
		{"full-reconfig", func(p *Params) { p.Partial = false }},
		{"partial-reconfig", func(p *Params) { p.Partial = true }},
		{"heterogeneous-caps", func(p *Params) {
			p.Partial = true
			p.Spec.CapKinds = []string{"bram", "dsp"}
			p.Spec.NodeCapProb = 0.7
			p.Spec.ConfigCapProb = 0.3
		}},
		{"defrag", func(p *Params) {
			p.Partial = true
			p.DefragThreshold = 3
		}},
		{"bounded-retries", func(p *Params) {
			p.Partial = true
			p.MaxSusRetries = 2
		}},
		{"faults", func(p *Params) {
			p.Partial = true
			p.Faults = fault.Plan{CrashRate: 0.002, MeanDowntime: 150, ReconfigFaultRate: 0.001}
		}},
		{"streamed", func(p *Params) {
			p.Partial = true
			p.Stream = true
		}},
		{"fastsearch-index", func(p *Params) {
			p.Partial = true
			p.FastSearch = true
			p.FastSearchCutoff = 1
		}},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			base := smallParams(40, 600, true)
			sc.tune(&base)

			run := func(ip int) (*Result, *Simulator) {
				p := base
				p.IntraParallel = ip
				p.Source = collidedSource(t, p, 8)
				s, err := New(p)
				if err != nil {
					t.Fatal(err)
				}
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				return res, s
			}

			sres, _ := run(1)
			for _, ip := range []int{4, 8} {
				pres, s := run(ip)
				if sres.Counters != pres.Counters {
					t.Fatalf("ip=%d: counters diverged:\nseq %+v\npar %+v", ip, sres.Counters, pres.Counters)
				}
				if sres.Report != pres.Report {
					t.Fatalf("ip=%d: reports diverged:\nseq %+v\npar %+v", ip, sres.Report, pres.Report)
				}
				if !reflect.DeepEqual(sres, pres) {
					t.Fatalf("ip=%d: results diverged", ip)
				}
				// The comparison must not be vacuous: the compressed
				// stream has to form real batches, and at least some
				// speculated decisions have to survive validation.
				spec, commit := s.BatchStats()
				if s.batch == nil || spec == 0 {
					t.Fatalf("ip=%d: batched dispatch never engaged (speculated=%d)", ip, spec)
				}
				if commit == 0 {
					t.Fatalf("ip=%d: no speculated decision committed (of %d)", ip, spec)
				}
			}
		})
	}
}

// TestIntraParallelSliceSourceBaseline pins the harness itself: the
// quantized SliceSource run at IntraParallel 1 must equal the same
// source run with batching disabled entirely (IntraParallel 0), so
// the equivalence above measures batching and nothing else.
func TestIntraParallelSliceSourceBaseline(t *testing.T) {
	base := smallParams(30, 400, true)
	run := func(ip int) *Result {
		p := base
		p.IntraParallel = ip
		p.Source = collidedSource(t, p, 8)
		return mustRun(t, p)
	}
	if a, b := run(0), run(1); !reflect.DeepEqual(a, b) {
		t.Fatal("IntraParallel 0 and 1 diverged on the same source")
	}
}

// batchCollideScenario is a two-class scenario whose per-class clocks
// collide constantly (uniform gaps of at most three ticks each), so
// batched dispatch forms batches on a source that also supports
// checkpointing — the Generator cannot collide ticks, and SliceSource
// cannot checkpoint.
const batchCollideScenario = `dreamsim-scenario v1
tasks 500
interval 3
class batch
  fraction 0.5
  reqtime 500 20000 uniform
end
class interactive
  fraction 0.5
  reqtime 100 2000 uniform
end
`

// scenarioParams builds the shared parameter set for the scenario
// tests below.
func scenarioParams(t *testing.T, ip int) Params {
	t.Helper()
	scn, err := workload.ParseScenario(batchCollideScenario)
	if err != nil {
		t.Fatal(err)
	}
	p := smallParams(30, 500, true)
	p.Scenario = scn
	p.IntraParallel = ip
	return p
}

// TestIntraParallelScenarioEquivalence extends the equivalence gate to
// the multi-class scenario source, whose interleaved class clocks are
// the one paper-surface way same-tick arrivals occur naturally.
func TestIntraParallelScenarioEquivalence(t *testing.T) {
	sref := mustRun(t, scenarioParams(t, 1))
	p := scenarioParams(t, 4)
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sref, pres) {
		t.Fatalf("scenario run diverged:\nseq %+v\npar %+v", sref.Counters, pres.Counters)
	}
	if spec, commit := s.BatchStats(); spec == 0 || commit == 0 {
		t.Fatalf("scenario run formed no committed batches (speculated=%d committed=%d)", spec, commit)
	}
}

// TestIntraParallelSnapshotResume covers checkpointing under batched
// dispatch: pausing is only legal at tick boundaries, where the
// batcher is provably empty, so a snapshot taken from a batching run
// must restore and finish identically — including when the restoring
// side uses a different parallelism level than the snapshotting side
// (the fingerprint deliberately excludes IntraParallel, exactly like
// FastSearch: neither changes a single result byte).
func TestIntraParallelSnapshotResume(t *testing.T) {
	ref := mustRun(t, scenarioParams(t, 1))
	paused := 0
	for _, target := range []uint64{40, 200, 700} {
		for _, levels := range [][2]int{{4, 4}, {4, 1}, {1, 4}} {
			snap, ok := pauseAndSnapshot(t, scenarioParams(t, levels[0]), target)
			if !ok {
				continue
			}
			paused++
			s2, err := RestoreSnapshot(scenarioParams(t, levels[1]), snap)
			if err != nil {
				t.Fatalf("RestoreSnapshot at %d events (ip %d->%d): %v", target, levels[0], levels[1], err)
			}
			if !s2.RunUntil(nil) {
				t.Fatal("restored run paused with a nil pause")
			}
			got, err := s2.Finish()
			if err != nil {
				t.Fatalf("restored Finish: %v", err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("target=%d ip %d->%d: restored run diverged", target, levels[0], levels[1])
			}
		}
	}
	if paused < 6 {
		t.Fatalf("only %d pause points exercised", paused)
	}
}

// pairSource feeds the batched-tick benchmark: two tasks sharing one
// future tick, re-armed by the driver between cycles.
type pairSource struct {
	tasks [2]*model.Task
	i     int
}

func (s *pairSource) Next() (*model.Task, bool) {
	if s.i >= len(s.tasks) {
		return nil, false
	}
	t := s.tasks[s.i]
	s.i++
	return t, true
}

// newBatchTickSim builds a two-node simulator whose steady state is
// one speculated batch per tick: both same-tick arrivals are decided
// concurrently; the first slot validates and commits, the second is
// invalidated by the first commit (both speculations chose the same
// best node) and falls through to the live Decide. One cycle therefore
// walks every batched-dispatch path — prefetch, speculation fan-out,
// commit, invalidation — plus the sequential fallback.
func newBatchTickSim(tb testing.TB) (*Simulator, *pairSource) {
	tb.Helper()
	p := smallParams(2, 2, true)
	p.Spec.Configs = 1
	p.Spec.ConfigAreaLow, p.Spec.ConfigAreaHigh = 1000, 1000
	p.Spec.NodeAreaLow, p.Spec.NodeAreaHigh = 1500, 1500
	p.IntraParallel = 4
	src := &pairSource{}
	p.Source = src
	s, err := New(p)
	if err != nil {
		tb.Fatal(err)
	}
	if s.batch == nil {
		tb.Fatal("batcher not engaged")
	}
	src.tasks[0] = model.NewTask(0, 1000, 0, 50, 0)
	src.tasks[1] = model.NewTask(1, 1000, 0, 50, 0)
	src.i = len(src.tasks) // exhausted until the first cycle re-arms it
	s.ran = true           // drive the loop by hand, as tickCycle does
	return s, src
}

// batchTickCycle re-arms the pair one tick in the future and runs the
// engine dry: speculate fires at the tick boundary, both arrivals
// dispatch, both completions drain.
func batchTickCycle(tb testing.TB, s *Simulator, src *pairSource) {
	now := s.eng.Now()
	for _, task := range src.tasks {
		task.Status = model.TaskCreated
		task.AssignedConfig = -1
		task.CreateTime = now + 1
		task.StartTime, task.CompletionTime = -1, -1
		task.CommDelay, task.ConfigDelay = 0, 0
		task.SusRetry, task.Retries = 0, 0
	}
	src.i = 0
	s.arrDone = false
	s.batch.srcDone = false
	s.batch.head = nil
	s.scheduleNextArrival()
	s.RunUntil(nil)
	if s.err != nil {
		tb.Fatal(s.err)
	}
	for _, task := range src.tasks {
		if task.Status != model.TaskCompleted {
			tb.Fatalf("batched tick left task %d %v", task.No, task.Status)
		}
	}
}

// BenchmarkBatchTick is the batched twin of BenchmarkTick: the
// steady-state cost of a two-arrival speculated tick. Must report 0
// allocs/op — the speculation buffers, version vector, shadow sync and
// worker dispatch all reuse their backing across ticks.
func BenchmarkBatchTick(b *testing.B) {
	s, src := newBatchTickSim(b)
	for i := 0; i < 8; i++ {
		batchTickCycle(b, s, src)
	}
	spec, commit := s.BatchStats()
	if spec == 0 || commit == 0 {
		b.Fatalf("warmup formed no committed batches (speculated=%d committed=%d)", spec, commit)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batchTickCycle(b, s, src)
	}
}

// TestBatchTickZeroAlloc is the test-suite form of the benchmark gate.
func TestBatchTickZeroAlloc(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their message arguments")
	}
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	s, src := newBatchTickSim(t)
	for i := 0; i < 8; i++ {
		batchTickCycle(t, s, src)
	}
	if spec, commit := s.BatchStats(); spec == 0 || commit == 0 {
		t.Fatalf("warmup formed no committed batches (speculated=%d committed=%d)", spec, commit)
	}
	if avg := testing.AllocsPerRun(200, func() { batchTickCycle(t, s, src) }); avg != 0 {
		t.Fatalf("batched scheduler tick allocates: %.1f allocs/op", avg)
	}
}

// TestTickZeroAllocIntraParallel re-runs the plain single-arrival tick
// gate with the parallel machinery constructed: a lone arrival skips
// speculation (batches of one gain nothing) and must stay
// allocation-free through the live path.
func TestTickZeroAllocIntraParallel(t *testing.T) {
	if invariant.Enabled {
		t.Skip("invariant assertions allocate their message arguments")
	}
	if invariant.RaceEnabled {
		t.Skip("race instrumentation allocates")
	}
	p := smallParams(1, 1, true)
	p.Spec.Configs = 1
	p.Spec.ConfigAreaLow, p.Spec.ConfigAreaHigh = 1000, 1000
	p.Spec.NodeAreaLow, p.Spec.NodeAreaHigh = 1500, 1500
	p.Spec.Nodes = 1
	p.IntraParallel = 4
	p.Source = emptySource{}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	task := model.NewTask(0, 1000, 0, 50, 0)
	for i := 0; i < 8; i++ {
		tickCycle(t, s, task)
	}
	if avg := testing.AllocsPerRun(200, func() { tickCycle(t, s, task) }); avg != 0 {
		t.Fatalf("scheduler tick with IntraParallel allocates: %.1f allocs/op", avg)
	}
}
