package core

import (
	"fmt"
	"strings"

	"dreamsim/internal/fault"
	"dreamsim/internal/metrics"
	"dreamsim/internal/monitor"
	"dreamsim/internal/report"
)

// Result is the outcome of one simulation run: the Table I report,
// the raw counters, the per-phase placement census and a final
// monitoring snapshot.
type Result struct {
	// Report carries the derived Table I metrics.
	Report metrics.Report
	// Counters is a copy of the raw accumulators.
	Counters metrics.Counters
	// Classes is the per-traffic-class breakdown of a multi-class
	// scenario run; nil otherwise, keeping single-class results (and
	// their serialised forms) unchanged.
	Classes []metrics.ClassStats
	// Phases counts placements per scheduling phase ("allocate",
	// "configure", "partial-configure", "reconfigure") plus
	// "suspend", "discard" and "closest-match" occurrences.
	Phases map[string]int64
	// Policy is the scheduling policy's name.
	Policy string
	// Scenario is "partial" or "full".
	Scenario string
	// Seed echoes the run seed.
	Seed uint64
	// Final is the monitoring snapshot at the end of the run.
	Final monitor.Snapshot
}

// XML assembles the output subsystem's simulation report, echoing the
// run parameters.
func (r *Result) XML(params Params) report.Simulation {
	echo := map[string]string{
		"total_nodes":            fmt.Sprint(params.Spec.Nodes),
		"total_configurations":   fmt.Sprint(params.Spec.Configs),
		"total_tasks":            fmt.Sprint(params.Spec.Tasks),
		"next_task_max_interval": fmt.Sprint(params.Spec.NextTaskMaxInterval),
		"arrival":                params.Spec.Arrival.String(),
		"config_area_range":      fmt.Sprintf("[%d,%d]", params.Spec.ConfigAreaLow, params.Spec.ConfigAreaHigh),
		"node_area_range":        fmt.Sprintf("[%d,%d]", params.Spec.NodeAreaLow, params.Spec.NodeAreaHigh),
		"task_reqtime_range":     fmt.Sprintf("[%d,%d]", params.Spec.TaskReqTimeLow, params.Spec.TaskReqTimeHigh),
		"config_time_range":      fmt.Sprintf("[%d,%d]", params.Spec.ConfigTimeLow, params.Spec.ConfigTimeHigh),
		"closest_match_pct":      fmt.Sprintf("%g", params.Spec.ClosestMatchPct),
		"reconfiguration":        r.Scenario,
	}
	// Fault knobs are echoed only on faulty runs so fault-free reports
	// stay byte-identical to those of builds without the subsystem.
	if params.Faults.Enabled() {
		echo["fault_crash_rate"] = fmt.Sprintf("%g", params.Faults.CrashRate)
		echo["fault_mean_downtime"] = fmt.Sprintf("%g", params.Faults.MeanDowntime)
		echo["fault_reconfig_rate"] = fmt.Sprintf("%g", params.Faults.ReconfigFaultRate)
		if len(params.Faults.Script) > 0 {
			echo["fault_script"] = fault.FormatScript(params.Faults.Script)
		}
	}
	// Scenario parameters are echoed only on genuinely multi-class
	// runs (r.Classes is nil otherwise): a scenario restating the flag
	// surface must report byte-identically to the flag run.
	if params.Scenario != nil && len(r.Classes) > 0 {
		if params.Scenario.Name != "" {
			echo["scenario"] = params.Scenario.Name
		}
		names := make([]string, len(r.Classes))
		for i := range r.Classes {
			names[i] = r.Classes[i].Name
		}
		echo["scenario_classes"] = strings.Join(names, ",")
		if n := len(params.Scenario.Timeline); n > 0 {
			echo["scenario_timeline_points"] = fmt.Sprint(n)
		}
		if n := len(params.Scenario.Events); n > 0 {
			echo["scenario_events"] = fmt.Sprint(n)
		}
	}
	sim := report.New(r.Scenario, r.Policy, r.Seed, echo, r.Report, r.Phases)
	sim.Metrics = append(sim.Metrics, report.ClassMetricRows(r.Classes)...)
	return sim
}
