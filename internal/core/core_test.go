package core

import (
	"bytes"
	"strings"
	"testing"

	"dreamsim/internal/model"
	"dreamsim/internal/report"
	"dreamsim/internal/sched"
	"dreamsim/internal/workload"
)

// smallParams is a quick Table II-shaped run.
func smallParams(nodes, tasks int, partial bool) Params {
	return Params{
		Spec:    workload.TableII(nodes, tasks),
		Partial: partial,
		Seed:    12345,
	}
}

func mustRun(t *testing.T, p Params) *Result {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunSmallDebugBothModes(t *testing.T) {
	for _, partial := range []bool{false, true} {
		p := smallParams(10, 200, partial)
		p.Debug = true
		res := mustRun(t, p)
		c := res.Counters
		if c.GeneratedTasks != 200 {
			t.Fatalf("partial=%v: generated %d", partial, c.GeneratedTasks)
		}
		if c.CompletedTasks+c.DiscardedTasks != c.GeneratedTasks {
			t.Fatalf("partial=%v: task accounting broken: completed %d + discarded %d != %d",
				partial, c.CompletedTasks, c.DiscardedTasks, c.GeneratedTasks)
		}
		if c.RunningTasks != 0 || c.SuspendedTasks != 0 {
			t.Fatalf("partial=%v: run ended dirty", partial)
		}
		if c.SimulationTime <= 0 {
			t.Fatalf("partial=%v: simulation time %d", partial, c.SimulationTime)
		}
		if res.Report.TotalUsedNodes > 10 {
			t.Fatalf("used nodes %d > 10", res.Report.TotalUsedNodes)
		}
		// The final snapshot must show a drained system.
		if res.Final.RunningTasks != 0 {
			t.Fatalf("final snapshot shows %d running tasks", res.Final.RunningTasks)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustRun(t, smallParams(50, 500, true))
	b := mustRun(t, smallParams(50, 500, true))
	if a.Report != b.Report {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a.Report, b.Report)
	}
	if a.Counters != b.Counters {
		t.Fatalf("counters diverged")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := mustRun(t, smallParams(50, 500, true))
	p := smallParams(50, 500, true)
	p.Seed = 99999
	b := mustRun(t, p)
	if a.Report == b.Report {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestScenariosShareWorkload(t *testing.T) {
	// With the same seed, partial and full runs must see the same
	// node geometry and the same task stream (the paper compares the
	// scenarios "for the same set of parameters in each simulation
	// run").
	mk := func(partial bool) *Simulator {
		s, err := New(smallParams(30, 100, partial))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	sa, sb := mk(false), mk(true)
	na, nb := sa.Manager().Nodes(), sb.Manager().Nodes()
	for i := range na {
		if na[i].TotalArea != nb[i].TotalArea || na[i].NetworkDelay != nb[i].NetworkDelay {
			t.Fatalf("node %d differs across scenarios", i)
		}
	}
	ca, cb := sa.Manager().Configs(), sb.Manager().Configs()
	for i := range ca {
		if ca[i].ReqArea != cb[i].ReqArea || ca[i].ConfigTime != cb[i].ConfigTime {
			t.Fatalf("config %d differs across scenarios", i)
		}
	}
	ra, err := sa.Run()
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ra.Counters.GeneratedTasks != rb.Counters.GeneratedTasks {
		t.Fatal("task streams differ across scenarios")
	}
}

// TestPaperOrderings verifies the qualitative results of the paper's
// evaluation (Figs. 6-10) at a reduced scale: with partial
// reconfiguration the system wastes less area per task, waits less,
// takes fewer scheduling steps and less total scheduler workload, but
// reconfigures more and spends more configuration time per task.
func TestPaperOrderings(t *testing.T) {
	for _, nodes := range []int{100, 200} {
		full := mustRun(t, smallParams(nodes, 2000, false)).Report
		part := mustRun(t, smallParams(nodes, 2000, true)).Report

		if !(part.AvgWastedAreaPerTask < full.AvgWastedAreaPerTask) {
			t.Errorf("nodes=%d Fig6: wasted area partial %.1f !< full %.1f",
				nodes, part.AvgWastedAreaPerTask, full.AvgWastedAreaPerTask)
		}
		if !(part.AvgReconfigCountPerNode > full.AvgReconfigCountPerNode) {
			t.Errorf("nodes=%d Fig7: reconfig/node partial %.2f !> full %.2f",
				nodes, part.AvgReconfigCountPerNode, full.AvgReconfigCountPerNode)
		}
		if !(part.AvgWaitingTimePerTask < full.AvgWaitingTimePerTask) {
			t.Errorf("nodes=%d Fig8: wait partial %.0f !< full %.0f",
				nodes, part.AvgWaitingTimePerTask, full.AvgWaitingTimePerTask)
		}
		if !(part.AvgSchedulingStepsPerTask < full.AvgSchedulingStepsPerTask) {
			t.Errorf("nodes=%d Fig9a: steps partial %.1f !< full %.1f",
				nodes, part.AvgSchedulingStepsPerTask, full.AvgSchedulingStepsPerTask)
		}
		if !(part.TotalSchedulerWorkload < full.TotalSchedulerWorkload) {
			t.Errorf("nodes=%d Fig9b: workload partial %d !< full %d",
				nodes, part.TotalSchedulerWorkload, full.TotalSchedulerWorkload)
		}
		if !(part.AvgReconfigTimePerTask > full.AvgReconfigTimePerTask) {
			t.Errorf("nodes=%d Fig10: config time partial %.2f !> full %.2f",
				nodes, part.AvgReconfigTimePerTask, full.AvgReconfigTimePerTask)
		}
	}
}

// TestPaperNodeCountEffects verifies the 100-vs-200-node observations:
// fewer nodes mean longer waits and more reconfigurations per node.
func TestPaperNodeCountEffects(t *testing.T) {
	for _, partial := range []bool{false, true} {
		small := mustRun(t, smallParams(100, 2000, partial)).Report
		large := mustRun(t, smallParams(200, 2000, partial)).Report
		if !(small.AvgWaitingTimePerTask > large.AvgWaitingTimePerTask) {
			t.Errorf("partial=%v: wait 100n %.0f !> 200n %.0f",
				partial, small.AvgWaitingTimePerTask, large.AvgWaitingTimePerTask)
		}
		if !(small.AvgReconfigCountPerNode > large.AvgReconfigCountPerNode) {
			t.Errorf("partial=%v: reconfig/node 100n %.2f !> 200n %.2f",
				partial, small.AvgReconfigCountPerNode, large.AvgReconfigCountPerNode)
		}
	}
}

func TestTickStepEquivalence(t *testing.T) {
	base := smallParams(20, 200, true)
	jump := mustRun(t, base)
	base.TickStep = true
	tick := mustRun(t, base)
	if jump.Report != tick.Report {
		t.Fatalf("tick-step and event-jump reports differ:\n%+v\n%+v", jump.Report, tick.Report)
	}
}

func TestTraceSourceRun(t *testing.T) {
	// Generate a task stream, write it to a trace, and run a
	// simulation from the trace; the result must match a synthetic
	// run over the identical stream.
	p := smallParams(20, 300, true)
	synth := mustRun(t, p)

	// Recreate the same stream the simulator consumed.
	s2, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	var tasks []*model.Task
	for {
		task, ok := s2.Source().Next()
		if !ok {
			break
		}
		tasks = append(tasks, task)
	}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, tasks); err != nil {
		t.Fatal(err)
	}

	p.Source = workload.NewTraceReader(&buf)
	traced := mustRun(t, p)
	if synth.Report != traced.Report {
		t.Fatalf("trace-driven run diverged:\n%+v\n%+v", synth.Report, traced.Report)
	}
}

func TestBadTraceFailsRun(t *testing.T) {
	p := smallParams(10, 50, true)
	p.Source = workload.NewTraceReader(strings.NewReader("not a trace"))
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("bad trace did not fail the run")
	}
}

func TestMaxSusRetriesDiscards(t *testing.T) {
	p := smallParams(10, 500, false)
	p.MaxSusRetries = 3
	res := mustRun(t, p)
	if res.Counters.DiscardedTasks == 0 {
		t.Fatal("retry cap never discarded under heavy overload")
	}
	if res.Counters.CompletedTasks+res.Counters.DiscardedTasks != 500 {
		t.Fatal("accounting broken with retry cap")
	}
}

func TestOnEventAccounting(t *testing.T) {
	counts := map[string]int{}
	p := smallParams(10, 200, true)
	p.OnEvent = func(kind string, now int64, task *model.Task) {
		if task == nil || now < 0 {
			t.Fatalf("bad event %s", kind)
		}
		counts[kind]++
	}
	res := mustRun(t, p)
	if counts["arrival"] != 200 {
		t.Fatalf("arrival events %d", counts["arrival"])
	}
	if counts["complete"] != int(res.Counters.CompletedTasks) {
		t.Fatalf("complete events %d vs counter %d", counts["complete"], res.Counters.CompletedTasks)
	}
	if counts["discard"] != int(res.Counters.DiscardedTasks) {
		t.Fatalf("discard events %d vs counter %d", counts["discard"], res.Counters.DiscardedTasks)
	}
	if counts["place"] != int(res.Counters.CompletedTasks) {
		t.Fatalf("place events %d vs completions %d", counts["place"], res.Counters.CompletedTasks)
	}
}

func TestRunTwiceFails(t *testing.T) {
	s, err := New(smallParams(10, 50, true))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("second Run did not fail")
	}
}

func TestBadParamsRejected(t *testing.T) {
	p := smallParams(10, 50, true)
	p.Spec.Nodes = 0
	if _, err := New(p); err == nil {
		t.Fatal("invalid spec accepted")
	}
	p = smallParams(10, 50, true)
	p.MaxSusRetries = -1
	if _, err := New(p); err == nil {
		t.Fatal("negative MaxSusRetries accepted")
	}
	p = smallParams(10, 50, true)
	p.Net.DelayLow = -5
	if _, err := New(p); err == nil {
		t.Fatal("invalid net model accepted")
	}
}

func TestPolicyOptionsFlowThrough(t *testing.T) {
	p := smallParams(30, 300, true)
	p.PolicyOptions = sched.Options{Placement: sched.WorstFit}
	res := mustRun(t, p)
	if !strings.Contains(res.Policy, "worst-fit") {
		t.Fatalf("policy name %q", res.Policy)
	}
	p.PolicyOptions = sched.Options{Placement: sched.RandomFit} // RNG auto-derived
	res = mustRun(t, p)
	if !strings.Contains(res.Policy, "random-fit") {
		t.Fatalf("policy name %q", res.Policy)
	}
}

func TestNetworkDelaysFlowIntoWait(t *testing.T) {
	base := smallParams(50, 300, true)
	noNet := mustRun(t, base)
	base.Net.DelayLow, base.Net.DelayHigh = 50, 80
	withNet := mustRun(t, base)
	if !(withNet.Report.AvgWaitingTimePerTask > noNet.Report.AvgWaitingTimePerTask) {
		t.Fatalf("network delays did not raise waits: %v vs %v",
			withNet.Report.AvgWaitingTimePerTask, noNet.Report.AvgWaitingTimePerTask)
	}
}

func TestXMLReportRoundTrip(t *testing.T) {
	p := smallParams(20, 200, true)
	res := mustRun(t, p)
	simrep := res.XML(p)
	var buf bytes.Buffer
	if err := report.WriteXML(&buf, simrep); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "simulation-report") || !strings.Contains(out, "avg_wasted_area_per_task") {
		t.Fatalf("XML missing expected content:\n%s", out)
	}
	parsed, err := report.ReadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Scenario != "partial" || len(parsed.Metrics) != 10 {
		t.Fatalf("parsed report wrong: %+v", parsed)
	}
}

func TestPhaseCensus(t *testing.T) {
	res := mustRun(t, smallParams(50, 1000, true))
	var placed int64
	for _, k := range []string{"allocate", "configure", "partial-configure", "reconfigure"} {
		placed += res.Phases[k]
	}
	if placed != res.Counters.CompletedTasks {
		t.Fatalf("phase census %d != completions %d", placed, res.Counters.CompletedTasks)
	}
	if res.Phases["closest-match"] == 0 {
		t.Fatal("no closest-match placements in 1000 tasks at 15%")
	}
}

func TestDependencyGating(t *testing.T) {
	// Child arrives long before its parent completes: it must be held
	// ("hold" event), then dispatched at the parent's completion tick.
	p := smallParams(10, 0, true)
	p.Spec.Tasks = 0
	tasks := []*model.Task{
		model.NewTask(0, 500, 1, 5000, 0),
		model.NewTask(1, 500, 2, 100, 10), // depends on task 0
	}
	src, err := workload.SliceSource(tasks)
	if err != nil {
		t.Fatal(err)
	}
	p.Source = src
	p.Deps = map[int][]int{1: {0}}
	p.Debug = true

	held := false
	var childStart int64 = -1
	var parentDone int64 = -1
	p.OnEvent = func(kind string, now int64, task *model.Task) {
		switch {
		case kind == "hold" && task.No == 1:
			held = true
		case kind == "place" && task.No == 1:
			childStart = now
		case kind == "complete" && task.No == 0:
			parentDone = now
		}
	}
	res := mustRun(t, p)
	if !held {
		t.Fatal("child was not held despite unmet dependency")
	}
	if childStart < parentDone || parentDone < 0 {
		t.Fatalf("child started at %d before parent completed at %d", childStart, parentDone)
	}
	if res.Counters.CompletedTasks != 2 {
		t.Fatalf("completions: %d", res.Counters.CompletedTasks)
	}
}

func TestDefragThreshold(t *testing.T) {
	// Light load: nodes regularly fall fully idle with several
	// resident regions, so compaction fires mid-run and later tasks
	// must reconfigure what it wiped.
	p := smallParams(20, 800, true)
	p.Spec.TaskReqTimeHigh = 500
	base := mustRun(t, p)
	p.DefragThreshold = 2
	defrag := mustRun(t, p)
	if defrag.Phases["defrag"] == 0 {
		t.Fatal("defrag never fired under an overloaded partial run")
	}
	// Compaction wipes resident configurations, forcing more
	// reconfigurations than the baseline.
	if !(defrag.Counters.Reconfigurations > base.Counters.Reconfigurations) {
		t.Fatalf("defrag did not raise reconfigurations: %d vs %d",
			defrag.Counters.Reconfigurations, base.Counters.Reconfigurations)
	}
	if defrag.Counters.CompletedTasks+defrag.Counters.DiscardedTasks != 800 {
		t.Fatal("accounting broken under defrag")
	}
	// Full mode ignores the knob entirely.
	pf := smallParams(20, 300, false)
	pf.DefragThreshold = 1
	full := mustRun(t, pf)
	if full.Phases["defrag"] != 0 {
		t.Fatal("defrag fired on full-reconfiguration nodes")
	}
	// Validation.
	bad := smallParams(10, 50, true)
	bad.DefragThreshold = -1
	if _, err := New(bad); err == nil {
		t.Fatal("negative threshold accepted")
	}
}

func TestSnapshotMidRun(t *testing.T) {
	p := smallParams(20, 200, true)
	var sim *Simulator
	seen := false
	p.OnEvent = func(kind string, now int64, task *model.Task) {
		if kind == "place" && !seen {
			seen = true
			snap := sim.Snapshot()
			if snap.RunningTasks < 1 {
				t.Errorf("mid-run snapshot shows no running tasks: %+v", snap)
			}
		}
	}
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	sim = s
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("no placement observed")
	}
}
