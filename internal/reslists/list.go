// Package reslists implements the dynamic data structures of the
// DReAMSim resource information system (paper §IV-B, Fig. 3): the
// per-configuration linked lists of idle and busy node regions
// (the paper's Idle_start/Busy_start with Inext/Bnext pointers) and
// the suspension queue (SusList, §IV-C).
//
// The paper threads whole nodes through the lists; under partial
// reconfiguration one node can simultaneously hold an idle region of
// one configuration and a busy region of another, so the lists here
// thread config-task *entries* (model.Entry) instead — one entry is
// one membership. All list traversals report how many links they
// explored so callers can account scheduler search length and
// housekeeping workload exactly as the paper's counters do.
package reslists

import (
	"fmt"

	"dreamsim/internal/model"
)

// Kind selects which intrusive hook set a List uses.
type Kind int

const (
	// Idle threads entries whose region has no running task.
	Idle Kind = iota
	// Busy threads entries whose region is executing a task.
	Busy
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Idle {
		return "idle"
	}
	return "busy"
}

// List is a doubly linked, nil-terminated list of entries of one
// configuration, in one state. Insertion and removal are O(1); every
// traversal hop counts as one search step.
type List struct {
	kind Kind
	head *model.Entry
	size int
}

// NewList returns an empty list of the given kind.
func NewList(kind Kind) *List { return &List{kind: kind} }

// Kind returns the list's state kind.
func (l *List) Kind() Kind { return l.kind }

// Len returns the number of entries in the list.
func (l *List) Len() int { return l.size }

// Head returns the first entry, or nil when empty.
func (l *List) Head() *model.Entry { return l.head }

// Contains reports membership in O(1) via the entry's hook flags.
func (l *List) Contains(e *model.Entry) bool {
	if l.kind == Idle {
		return e.InIdle
	}
	return e.InBusy
}

// Add pushes e at the head of the list (the paper's AddNodeToIdleList
// / AddNodeToBusyList). It panics on double insertion — that is
// always a scheduler bug.
func (l *List) Add(e *model.Entry) {
	if l.Contains(e) {
		panic(fmt.Sprintf("reslists: %s list double insert of %v", l.kind, e))
	}
	switch l.kind {
	case Idle:
		e.INext = l.head
		e.IPrev = nil
		if l.head != nil {
			l.head.IPrev = e
		}
		e.InIdle = true
	case Busy:
		e.BNext = l.head
		e.BPrev = nil
		if l.head != nil {
			l.head.BPrev = e
		}
		e.InBusy = true
	}
	l.head = e
	l.size++
}

// Remove unlinks e (the paper's RemoveNodeFromIdleList /
// RemoveNodeFromBusyList). It reports whether e was a member.
func (l *List) Remove(e *model.Entry) bool {
	if !l.Contains(e) {
		return false
	}
	switch l.kind {
	case Idle:
		if e.IPrev != nil {
			e.IPrev.INext = e.INext
		} else {
			l.head = e.INext
		}
		if e.INext != nil {
			e.INext.IPrev = e.IPrev
		}
		e.INext, e.IPrev = nil, nil
		e.InIdle = false
	case Busy:
		if e.BPrev != nil {
			e.BPrev.BNext = e.BNext
		} else {
			l.head = e.BNext
		}
		if e.BNext != nil {
			e.BNext.BPrev = e.BPrev
		}
		e.BNext, e.BPrev = nil, nil
		e.InBusy = false
	}
	l.size--
	return true
}

// next returns the successor of e under the list's hook set.
func (l *List) next(e *model.Entry) *model.Entry {
	if l.kind == Idle {
		return e.INext
	}
	return e.BNext
}

// Each walks the list (the paper's SearchIdleList/SearchBusyList),
// calling visit for every entry until visit returns false. It
// returns the number of links explored — the search steps charged to
// the caller.
func (l *List) Each(visit func(*model.Entry) bool) (steps uint64) {
	for e := l.head; e != nil; e = l.next(e) {
		steps++
		if !visit(e) {
			return steps
		}
	}
	return steps
}

// FindMin walks the whole list and returns the entry minimising
// key(entry) (ties: first encountered), together with the search
// steps spent. A nil entry means the list was empty or no entry
// passed the ok filter.
func (l *List) FindMin(ok func(*model.Entry) bool, key func(*model.Entry) int64) (best *model.Entry, steps uint64) {
	var bestKey int64
	steps = l.Each(func(e *model.Entry) bool {
		if ok != nil && !ok(e) {
			return true
		}
		k := key(e)
		if best == nil || k < bestKey {
			best, bestKey = e, k
		}
		return true
	})
	return best, steps
}

// CheckInvariants validates the internal linkage: size matches the
// chain length, back-pointers mirror forward pointers and every
// member's hook flag is set. Used by tests.
func (l *List) CheckInvariants() error {
	count := 0
	var prev *model.Entry
	for e := l.head; e != nil; e = l.next(e) {
		count++
		if count > l.size {
			return fmt.Errorf("reslists: %s list longer than size %d (cycle?)", l.kind, l.size)
		}
		if !l.Contains(e) {
			return fmt.Errorf("reslists: %s list member %v lacks membership flag", l.kind, e)
		}
		var back *model.Entry
		if l.kind == Idle {
			back = e.IPrev
		} else {
			back = e.BPrev
		}
		if back != prev {
			return fmt.Errorf("reslists: %s list back-pointer mismatch at %v", l.kind, e)
		}
		prev = e
	}
	if count != l.size {
		return fmt.Errorf("reslists: %s list size %d but chain length %d", l.kind, l.size, count)
	}
	return nil
}

// Pair bundles the idle and busy lists of one configuration — the
// paper's Config class fields IdleHead/BusyHead.
type Pair struct {
	Idle *List
	Busy *List
}

// NewPair returns an empty idle/busy pair.
func NewPair() Pair {
	return Pair{Idle: NewList(Idle), Busy: NewList(Busy)}
}

// MarkBusy moves e from the idle list to the busy list, returning the
// housekeeping steps spent (constant: one unlink + one insert).
func (p Pair) MarkBusy(e *model.Entry) (steps uint64) {
	if p.Idle.Remove(e) {
		steps++
	}
	p.Busy.Add(e)
	return steps + 1
}

// MarkIdle moves e from the busy list to the idle list.
func (p Pair) MarkIdle(e *model.Entry) (steps uint64) {
	if p.Busy.Remove(e) {
		steps++
	}
	p.Idle.Add(e)
	return steps + 1
}

// Drop removes e from whichever list holds it.
func (p Pair) Drop(e *model.Entry) (steps uint64) {
	if p.Idle.Remove(e) {
		steps++
	}
	if p.Busy.Remove(e) {
		steps++
	}
	return steps
}
