package reslists

import (
	"testing"
	"testing/quick"

	"dreamsim/internal/model"
)

func mkEntry(no int) *model.Entry {
	n := model.NewNode(no, 4000, true)
	cfg := &model.Config{No: no, ReqArea: 500, ConfigTime: 10}
	e, err := n.SendBitstream(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

func mkTask(no int) *model.Task {
	return model.NewTask(no, 500, no, 100, 0)
}

func collect(l *List) []*model.Entry {
	var out []*model.Entry
	l.Each(func(e *model.Entry) bool {
		out = append(out, e)
		return true
	})
	return out
}

func TestListAddRemove(t *testing.T) {
	l := NewList(Idle)
	if l.Len() != 0 || l.Head() != nil {
		t.Fatal("fresh list not empty")
	}
	e1, e2, e3 := mkEntry(1), mkEntry(2), mkEntry(3)
	l.Add(e1)
	l.Add(e2)
	l.Add(e3)
	if l.Len() != 3 || l.Head() != e3 {
		t.Fatalf("len=%d head=%v", l.Len(), l.Head())
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remove middle.
	if !l.Remove(e2) {
		t.Fatal("Remove(e2) failed")
	}
	if l.Remove(e2) {
		t.Fatal("double Remove succeeded")
	}
	got := collect(l)
	if len(got) != 2 || got[0] != e3 || got[1] != e1 {
		t.Fatalf("after remove: %v", got)
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Remove head then tail.
	l.Remove(e3)
	l.Remove(e1)
	if l.Len() != 0 || l.Head() != nil {
		t.Fatal("list not empty after removing all")
	}
	if err := l.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestListDoubleInsertPanics(t *testing.T) {
	l := NewList(Busy)
	e := mkEntry(1)
	l.Add(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	l.Add(e)
}

func TestIdleBusyHooksIndependent(t *testing.T) {
	idle := NewList(Idle)
	busy := NewList(Busy)
	e := mkEntry(1)
	idle.Add(e)
	busy.Add(e) // same entry may sit in one idle and one busy list
	if !e.InIdle || !e.InBusy {
		t.Fatal("hook flags not set")
	}
	if !idle.Remove(e) || !busy.Remove(e) {
		t.Fatal("removal failed")
	}
	if e.InIdle || e.InBusy {
		t.Fatal("hook flags not cleared")
	}
}

func TestEachStepsAndEarlyStop(t *testing.T) {
	l := NewList(Idle)
	for i := 0; i < 10; i++ {
		l.Add(mkEntry(i))
	}
	seen := 0
	steps := l.Each(func(*model.Entry) bool {
		seen++
		return seen < 4
	})
	if seen != 4 || steps != 4 {
		t.Fatalf("seen=%d steps=%d, want 4,4", seen, steps)
	}
	steps = l.Each(func(*model.Entry) bool { return true })
	if steps != 10 {
		t.Fatalf("full traversal steps=%d, want 10", steps)
	}
}

func TestFindMin(t *testing.T) {
	l := NewList(Idle)
	var entries []*model.Entry
	areas := []int64{900, 300, 700, 300, 500}
	for i, a := range areas {
		n := model.NewNode(i, 4000, true)
		e, _ := n.SendBitstream(&model.Config{No: i, ReqArea: 100})
		n.AvailableArea = a // directly set for the test key
		n.TotalArea = a + 100
		entries = append(entries, e)
		l.Add(e)
	}
	best, steps := l.FindMin(nil, func(e *model.Entry) int64 { return e.Node.AvailableArea })
	if best == nil || best.Node.AvailableArea != 300 {
		t.Fatalf("FindMin returned %v", best)
	}
	if steps != uint64(len(areas)) {
		t.Fatalf("FindMin steps=%d, want %d", steps, len(areas))
	}
	// Ties: first encountered in list order (list is LIFO of adds).
	if best != entries[3] {
		t.Fatalf("tie-break wrong: got node %d", best.Node.No)
	}
	// Filter that rejects everything.
	none, _ := l.FindMin(func(*model.Entry) bool { return false }, func(*model.Entry) int64 { return 0 })
	if none != nil {
		t.Fatalf("filtered FindMin returned %v", none)
	}
}

func TestFindMinEmptyList(t *testing.T) {
	l := NewList(Idle)
	best, steps := l.FindMin(nil, func(*model.Entry) int64 { return 0 })
	if best != nil || steps != 0 {
		t.Fatalf("empty FindMin: %v, %d", best, steps)
	}
}

func TestPairTransitions(t *testing.T) {
	p := NewPair()
	e := mkEntry(1)
	p.Idle.Add(e)
	steps := p.MarkBusy(e)
	if steps != 2 {
		t.Fatalf("MarkBusy steps=%d", steps)
	}
	if p.Idle.Len() != 0 || p.Busy.Len() != 1 {
		t.Fatal("MarkBusy did not move entry")
	}
	steps = p.MarkIdle(e)
	if steps != 2 {
		t.Fatalf("MarkIdle steps=%d", steps)
	}
	if p.Idle.Len() != 1 || p.Busy.Len() != 0 {
		t.Fatal("MarkIdle did not move entry")
	}
	if got := p.Drop(e); got != 1 {
		t.Fatalf("Drop steps=%d", got)
	}
	if p.Idle.Len() != 0 || p.Busy.Len() != 0 {
		t.Fatal("Drop left entry behind")
	}
	// MarkBusy on an unlisted entry still lands it in busy.
	p.MarkBusy(e)
	if p.Busy.Len() != 1 {
		t.Fatal("MarkBusy from nowhere failed")
	}
}

func TestKindString(t *testing.T) {
	if Idle.String() != "idle" || Busy.String() != "busy" {
		t.Fatal("Kind.String wrong")
	}
}

func TestSusQueueFIFO(t *testing.T) {
	q := NewSusQueue()
	if q.Len() != 0 || q.Peak() != 0 {
		t.Fatal("fresh queue not empty")
	}
	t1, t2, t3 := mkTask(1), mkTask(2), mkTask(3)
	q.Add(t1)
	q.Add(t2)
	q.Add(t3)
	if q.Len() != 3 || q.Peak() != 3 {
		t.Fatalf("len=%d peak=%d", q.Len(), q.Peak())
	}
	if t1.Status != model.TaskSuspended {
		t.Fatal("Add did not mark task suspended")
	}
	got := q.Tasks()
	if got[0] != t1 || got[1] != t2 || got[2] != t3 {
		t.Fatalf("FIFO order broken: %v", got)
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSusQueueRemove(t *testing.T) {
	q := NewSusQueue()
	tasks := []*model.Task{mkTask(1), mkTask(2), mkTask(3), mkTask(4)}
	for _, task := range tasks {
		q.Add(task)
	}
	if !q.Remove(tasks[1]) || !q.Remove(tasks[3]) { // middle + tail
		t.Fatal("Remove failed")
	}
	if q.Remove(tasks[1]) {
		t.Fatal("double Remove succeeded")
	}
	if q.Len() != 2 {
		t.Fatalf("len=%d", q.Len())
	}
	got := q.Tasks()
	if got[0] != tasks[0] || got[1] != tasks[2] {
		t.Fatalf("remaining order: %v", got)
	}
	if !q.Remove(tasks[0]) { // head
		t.Fatal("head Remove failed")
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Peak survives removals.
	if q.Peak() != 4 {
		t.Fatalf("peak=%d, want 4", q.Peak())
	}
}

func TestSusQueueDoubleAddPanics(t *testing.T) {
	q := NewSusQueue()
	task := mkTask(1)
	q.Add(task)
	defer func() {
		if recover() == nil {
			t.Fatal("double Add did not panic")
		}
	}()
	q.Add(task)
}

func TestSusQueueEachBumpsRetry(t *testing.T) {
	q := NewSusQueue()
	tasks := []*model.Task{mkTask(1), mkTask(2), mkTask(3)}
	for _, task := range tasks {
		q.Add(task)
	}
	steps := q.Each(func(task *model.Task) bool { return task.No != 2 })
	if steps != 2 {
		t.Fatalf("steps=%d, want 2 (early stop)", steps)
	}
	if tasks[0].SusRetry != 1 || tasks[1].SusRetry != 1 || tasks[2].SusRetry != 0 {
		t.Fatalf("retry counters: %d %d %d", tasks[0].SusRetry, tasks[1].SusRetry, tasks[2].SusRetry)
	}
}

func TestSusQueueEachAllowsRemoval(t *testing.T) {
	q := NewSusQueue()
	tasks := []*model.Task{mkTask(1), mkTask(2), mkTask(3)}
	for _, task := range tasks {
		q.Add(task)
	}
	// Remove every visited task during traversal.
	q.Each(func(task *model.Task) bool {
		q.Remove(task)
		return true
	})
	if q.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.Len())
	}
	if err := q.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: arbitrary interleavings of list add/remove keep linkage sane.
func TestQuickListOps(t *testing.T) {
	f := func(ops []uint8) bool {
		l := NewList(Idle)
		pool := make([]*model.Entry, 8)
		for i := range pool {
			pool[i] = mkEntry(i)
		}
		for _, op := range ops {
			e := pool[op%8]
			if op&0x80 != 0 {
				l.Remove(e)
			} else if !l.Contains(e) {
				l.Add(e)
			}
			if l.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: suspension queue preserves FIFO order of surviving tasks
// under arbitrary add/remove interleavings.
func TestQuickSusQueueOrder(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewSusQueue()
		pool := make([]*model.Task, 8)
		for i := range pool {
			pool[i] = mkTask(i)
		}
		var order []*model.Task
		for _, op := range ops {
			task := pool[op%8]
			if op&0x80 != 0 {
				if q.Remove(task) {
					for i, x := range order {
						if x == task {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			} else if !q.Contains(task) {
				q.Add(task)
				order = append(order, task)
			}
			if q.CheckInvariants() != nil {
				return false
			}
		}
		got := q.Tasks()
		if len(got) != len(order) {
			return false
		}
		for i := range got {
			if got[i] != order[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkListAddRemove(b *testing.B) {
	l := NewList(Idle)
	entries := make([]*model.Entry, 128)
	for i := range entries {
		entries[i] = mkEntry(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := entries[i%128]
		if l.Contains(e) {
			l.Remove(e)
		} else {
			l.Add(e)
		}
	}
}

// TestSusQueueSteadyStateZeroAlloc pins the element pool: add/remove
// churn at a warmed depth must recycle elements instead of allocating
// one linked-list node per suspension.
func TestSusQueueSteadyStateZeroAlloc(t *testing.T) {
	q := NewSusQueue()
	tasks := []*model.Task{mkTask(1), mkTask(2), mkTask(3)}
	for _, task := range tasks { // warm the pool to depth 3
		q.Add(task)
	}
	for _, task := range tasks {
		q.Remove(task)
	}
	allocs := testing.AllocsPerRun(500, func() {
		for _, task := range tasks {
			q.Add(task)
		}
		for _, task := range tasks {
			q.Remove(task)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state suspend/retry churn allocates %v allocs/op, want 0", allocs)
	}
}

// TestSusQueueAppendTasks pins the recycled-snapshot form used by the
// drain loop: FIFO order into a reused backing array, no allocation
// once the array fits the queue.
func TestSusQueueAppendTasks(t *testing.T) {
	q := NewSusQueue()
	tasks := []*model.Task{mkTask(1), mkTask(2), mkTask(3)}
	for _, task := range tasks {
		q.Add(task)
	}
	scratch := q.AppendTasks(nil)
	if len(scratch) != 3 || scratch[0] != tasks[0] || scratch[1] != tasks[1] || scratch[2] != tasks[2] {
		t.Fatalf("AppendTasks order: %v", scratch)
	}
	allocs := testing.AllocsPerRun(100, func() {
		scratch = q.AppendTasks(scratch[:0])
	})
	if allocs != 0 {
		t.Fatalf("AppendTasks into a fitting array allocates %v allocs/op, want 0", allocs)
	}
	if got := q.Tasks(); len(got) != 3 {
		t.Fatalf("Tasks after AppendTasks: %v", got)
	}
}
