package reslists

import (
	"fmt"

	"dreamsim/internal/model"
)

// susElem is one link of the suspension queue.
type susElem struct {
	task       *model.Task
	next, prev *susElem
}

// SusQueue is the suspension queue (the paper's SusList class): a
// FIFO of tasks the scheduler could not place immediately but that
// some busy node could eventually host. Tasks are retried whenever a
// node releases resources and removed when placed or discarded.
type SusQueue struct {
	head, tail *susElem
	index      map[*model.Task]*susElem
	size       int
	// peak tracks the maximum depth reached, for reporting.
	peak int
	// free recycles unlinked elements so steady-state suspend/retry
	// churn allocates nothing.
	free []*susElem
}

// NewSusQueue returns an empty suspension queue.
func NewSusQueue() *SusQueue {
	return &SusQueue{index: make(map[*model.Task]*susElem)}
}

// Len returns the number of suspended tasks.
func (q *SusQueue) Len() int { return q.size }

// Peak returns the maximum queue depth observed.
func (q *SusQueue) Peak() int { return q.peak }

// Contains reports whether task is queued.
func (q *SusQueue) Contains(task *model.Task) bool {
	_, ok := q.index[task]
	return ok
}

// Add appends task at the tail (the paper's AddTaskToSusQueue) and
// marks it suspended. It panics on double insertion.
func (q *SusQueue) Add(task *model.Task) {
	if q.Contains(task) {
		panic(fmt.Sprintf("reslists: suspension queue double insert of %v", task))
	}
	el := q.alloc()
	el.task, el.prev = task, q.tail
	if q.tail != nil {
		q.tail.next = el
	} else {
		q.head = el
	}
	q.tail = el
	q.index[task] = el
	q.size++
	if q.size > q.peak {
		q.peak = q.size
	}
	task.Status = model.TaskSuspended
}

// Remove unlinks task (the paper's RemoveTaskFromSusQueue); it
// reports whether the task was queued. The caller decides the task's
// next status.
func (q *SusQueue) Remove(task *model.Task) bool {
	el, ok := q.index[task]
	if !ok {
		return false
	}
	if el.prev != nil {
		el.prev.next = el.next
	} else {
		q.head = el.next
	}
	if el.next != nil {
		el.next.prev = el.prev
	} else {
		q.tail = el.prev
	}
	delete(q.index, task)
	q.size--
	q.release(el)
	return true
}

// alloc draws a zeroed element from the free list, or a fresh one.
func (q *SusQueue) alloc() *susElem {
	n := len(q.free)
	if n == 0 {
		//lint:allocfree pool miss: one element per suspension-depth high-water mark, amortized to zero in steady state
		return &susElem{}
	}
	el := q.free[n-1]
	q.free[n-1] = nil
	q.free = q.free[:n-1]
	return el
}

// release returns an unlinked element to the free list.
func (q *SusQueue) release(el *susElem) {
	*el = susElem{}
	q.free = append(q.free, el)
}

// Each walks the queue in FIFO order (the paper's SearchSusQueue),
// calling visit until it returns false, and returns the number of
// links explored. Every visited task's SusRetry counter is bumped:
// a visit is one retry examination.
func (q *SusQueue) Each(visit func(*model.Task) bool) (steps uint64) {
	for el := q.head; el != nil; {
		next := el.next // allow removal of the visited element
		steps++
		el.task.SusRetry++
		if !visit(el.task) {
			return steps
		}
		el = next
	}
	return steps
}

// Tasks returns the queued tasks in FIFO order (for reports).
func (q *SusQueue) Tasks() []*model.Task {
	return q.AppendTasks(nil)
}

// AppendTasks appends the queued tasks in FIFO order to dst and
// returns the extended slice — the allocation-free form of Tasks for
// callers that recycle the backing array across passes.
//
//dreamsim:noalloc
func (q *SusQueue) AppendTasks(dst []*model.Task) []*model.Task {
	for el := q.head; el != nil; el = el.next {
		dst = append(dst, el.task)
	}
	return dst
}

// CheckInvariants validates linkage and index consistency.
func (q *SusQueue) CheckInvariants() error {
	count := 0
	var prev *susElem
	for el := q.head; el != nil; el = el.next {
		count++
		if count > q.size {
			return fmt.Errorf("reslists: suspension queue cycle or size drift")
		}
		if el.prev != prev {
			return fmt.Errorf("reslists: suspension queue back-pointer mismatch at %v", el.task)
		}
		if q.index[el.task] != el {
			return fmt.Errorf("reslists: suspension queue index mismatch at %v", el.task)
		}
		prev = el
	}
	if count != q.size || len(q.index) != q.size {
		return fmt.Errorf("reslists: suspension queue size %d, chain %d, index %d",
			q.size, count, len(q.index))
	}
	if q.tail != prev {
		return fmt.Errorf("reslists: suspension queue tail mismatch")
	}
	return nil
}
