package reslists

// RestorePeak overwrites the peak-depth statistic after a checkpoint
// restore. Rebuilding a snapshotted queue re-Adds its tasks in FIFO
// order, which grows peak only up to the current size; the original
// run may have seen a deeper queue earlier, so the recorded peak is
// reapplied afterwards. A peak below the rebuilt size is impossible
// in a well-formed snapshot; it is clamped rather than trusted.
func (q *SusQueue) RestorePeak(peak int) {
	if peak < q.size {
		peak = q.size
	}
	q.peak = peak
}
