package report

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dreamsim/internal/metrics"
)

func sample() metrics.Report {
	return metrics.Report{
		TotalNodes: 200, TotalConfigs: 50, TotalTasks: 1000,
		AvgWastedAreaPerTask:      123.5,
		AvgRunningTimePerTask:     50000,
		AvgReconfigCountPerNode:   7.25,
		AvgReconfigTimePerTask:    13.2,
		AvgWaitingTimePerTask:     9999.75,
		AvgSchedulingStepsPerTask: 2500,
		TotalDiscardedTasks:       3,
		TotalSchedulerWorkload:    123456789,
		TotalUsedNodes:            200,
		TotalSimulationTime:       7654321,
	}
}

func TestMetricRowsOrderAndCount(t *testing.T) {
	rows := MetricRows(sample())
	if len(rows) != 10 {
		t.Fatalf("got %d rows, want 10 (Table I)", len(rows))
	}
	if rows[0].Name != "avg_wasted_area_per_task" || rows[9].Name != "total_simulation_time" {
		t.Fatalf("row order wrong: %v ... %v", rows[0].Name, rows[9].Name)
	}
	if rows[0].Value != 123.5 {
		t.Fatalf("value wrong: %v", rows[0].Value)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	s := New("partial", "paper/best-fit", 42,
		map[string]string{"total_nodes": "200", "arrival": "uniform"},
		sample(), map[string]int64{"allocate": 900, "reconfigure": 100})
	var buf bytes.Buffer
	if err := WriteXML(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<?xml", "simulation-report", `scenario="partial"`, `policy="paper/best-fit"`,
		`seed="42"`, `name="arrival" value="uniform"`, `name="allocate" count="900"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("XML missing %q:\n%s", want, out)
		}
	}
	parsed, err := ReadXML(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Scenario != "partial" || parsed.Seed != 42 ||
		len(parsed.Params) != 2 || len(parsed.Metrics) != 10 || len(parsed.Phases) != 2 {
		t.Fatalf("parsed: %+v", parsed)
	}
	// Params sorted by name.
	if parsed.Params[0].Name != "arrival" {
		t.Fatalf("params not sorted: %+v", parsed.Params)
	}
}

func TestReadXMLRejectsGarbage(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("<<<not-xml")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTableIText(t *testing.T) {
	out := TableIText(sample())
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // header + rule + 10 metrics
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "avg_wasted_area_per_task") || !strings.Contains(out, "123.50") {
		t.Fatalf("missing content:\n%s", out)
	}
	// Large value uses compact form.
	if !strings.Contains(out, "1.235e+08") {
		t.Fatalf("compact large value missing:\n%s", out)
	}
}

func TestCompareText(t *testing.T) {
	a, b := sample(), sample()
	b.AvgWastedAreaPerTask = 50
	out := CompareText("full", a, "partial", b)
	if !strings.Contains(out, "full") || !strings.Contains(out, "partial") {
		t.Fatalf("headers missing:\n%s", out)
	}
	if !strings.Contains(out, "123.50") || !strings.Contains(out, "50") {
		t.Fatalf("values missing:\n%s", out)
	}
}

func TestCompact(t *testing.T) {
	cases := map[float64]string{
		100000:  "100000",
		1.5:     "1.50",
		2500000: "2.5e+06",
	}
	for in, want := range cases {
		if got := compact(in); got != want {
			t.Errorf("compact(%v) = %q, want %q", in, got, want)
		}
	}
}

// faultSample is sample() with fault outcomes, so the fault rows
// render too.
func faultSample() metrics.Report {
	r := sample()
	r.NodeCrashes = 4
	r.NodeRecoveries = 3
	r.AvgDowntimePerNode = 12.5
	r.TasksRetried = 9
	r.TasksLost = 1
	r.ReconfigFaults = 2
	r.WastedConfigTicks = 37
	return r
}

// TestRendererMatchesFreeFunctions pins the buffer-reuse contract: a
// Renderer recycled across reports of different shapes produces the
// exact bytes of the one-shot functions every time.
func TestRendererMatchesFreeFunctions(t *testing.T) {
	var rd Renderer
	reports := []metrics.Report{sample(), faultSample(), {}, sample()}
	for i, r := range reports {
		if got, want := rd.TableIText(r), TableIText(r); got != want {
			t.Fatalf("report %d: renderer TableIText diverged:\n%q\n!=\n%q", i, got, want)
		}
	}
	for i, r := range reports {
		other := reports[(i+1)%len(reports)]
		got := rd.CompareText("full", r, "partial", other)
		want := CompareText("full", r, "partial", other)
		if got != want {
			t.Fatalf("report %d: renderer CompareText diverged:\n%q\n!=\n%q", i, got, want)
		}
	}
}

// TestCompactAgainstFmt pins appendCompact to the fmt verbs the old
// string-building renderer used.
func TestCompactAgainstFmt(t *testing.T) {
	values := []float64{0, 1, -1, 3, 123.5, 9999.75, 1e6 - 1, 1e6, 123456789,
		7654321, 2500, 0.004, -17.25, 1e12, 987654.321}
	for _, v := range values {
		var want string
		switch {
		case v >= 1e6:
			want = fmt.Sprintf("%.4g", v)
		case v == float64(int64(v)):
			want = fmt.Sprintf("%d", int64(v))
		default:
			want = fmt.Sprintf("%.2f", v)
		}
		if got := compact(v); got != want {
			t.Errorf("compact(%v) = %q, want %q", v, got, want)
		}
	}
}

// BenchmarkReport measures the reused-buffer rendering core; the
// Append forms must report 0 allocs/op (the Renderer forms add only
// the returned string).
func BenchmarkReport(b *testing.B) {
	r := faultSample()
	b.Run("append-table", func(b *testing.B) {
		buf := make([]byte, 0, 1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendTableI(buf[:0], r)
		}
	})
	b.Run("append-compare", func(b *testing.B) {
		buf := make([]byte, 0, 2048)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf = AppendCompare(buf[:0], "full", r, "partial", r)
		}
	})
	b.Run("renderer-table", func(b *testing.B) {
		var rd Renderer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = rd.TableIText(r)
		}
	})
}
