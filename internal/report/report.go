// Package report implements DReAMSim's output subsystem (paper §III):
// the XML simulation report accumulating the statistics of each run,
// plus fixed-width text rendering of the Table I metrics and CSV
// emission for figure series.
package report

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strconv"

	"dreamsim/internal/metrics"
)

// Param is one simulation parameter echoed into the report.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Metric is one Table I metric row.
type Metric struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// Phase is one scheduling-phase placement counter.
type Phase struct {
	Name  string `xml:"name,attr"`
	Count int64  `xml:"count,attr"`
}

// Simulation is the XML report root (<simulation-report>).
type Simulation struct {
	XMLName  xml.Name `xml:"simulation-report"`
	Scenario string   `xml:"scenario,attr"` // "partial" / "full"
	Policy   string   `xml:"policy,attr"`
	Seed     uint64   `xml:"seed,attr"`

	Params  []Param  `xml:"parameters>param"`
	Metrics []Metric `xml:"metrics>metric"`
	Phases  []Phase  `xml:"phases>phase"`
}

// New assembles a Simulation report from a metrics report, the
// parameter echo and the per-phase placement counts.
func New(scenario, policy string, seed uint64, params map[string]string,
	rep metrics.Report, phases map[string]int64) Simulation {

	s := Simulation{Scenario: scenario, Policy: policy, Seed: seed}
	for _, k := range sortedKeys(params) {
		s.Params = append(s.Params, Param{Name: k, Value: params[k]})
	}
	for _, m := range MetricRows(rep) {
		s.Metrics = append(s.Metrics, m)
	}
	if rep.HasFaults() {
		s.Metrics = append(s.Metrics, FaultMetricRows(rep)...)
	}
	for _, k := range sortedKeysI64(phases) {
		s.Phases = append(s.Phases, Phase{Name: k, Count: phases[k]})
	}
	return s
}

// MetricRows flattens a metrics.Report into named rows in Table I
// order.
func MetricRows(r metrics.Report) []Metric {
	return appendMetricRows(make([]Metric, 0, 10), r)
}

// appendMetricRows is MetricRows into a caller-owned slice, so a
// reused scratch renders without allocating the row set.
func appendMetricRows(dst []Metric, r metrics.Report) []Metric {
	return append(dst,
		Metric{"avg_wasted_area_per_task", r.AvgWastedAreaPerTask},
		Metric{"avg_running_time_per_task", r.AvgRunningTimePerTask},
		Metric{"avg_reconfig_count_per_node", r.AvgReconfigCountPerNode},
		Metric{"avg_reconfig_time_per_task", r.AvgReconfigTimePerTask},
		Metric{"avg_waiting_time_per_task", r.AvgWaitingTimePerTask},
		Metric{"avg_scheduling_steps_per_task", r.AvgSchedulingStepsPerTask},
		Metric{"total_discarded_tasks", float64(r.TotalDiscardedTasks)},
		Metric{"total_scheduler_workload", float64(r.TotalSchedulerWorkload)},
		Metric{"total_used_nodes", float64(r.TotalUsedNodes)},
		Metric{"total_simulation_time", float64(r.TotalSimulationTime)},
	)
}

// FaultMetricRows flattens the fault-injection outcomes into named
// rows. Callers append them after MetricRows only when
// r.HasFaults(), which keeps fault-free reports byte-identical to
// those of builds without the fault subsystem.
func FaultMetricRows(r metrics.Report) []Metric {
	return appendFaultMetricRows(make([]Metric, 0, 7), r)
}

// appendFaultMetricRows is FaultMetricRows into a caller-owned slice.
func appendFaultMetricRows(dst []Metric, r metrics.Report) []Metric {
	return append(dst,
		Metric{"node_crashes", float64(r.NodeCrashes)},
		Metric{"node_recoveries", float64(r.NodeRecoveries)},
		Metric{"avg_downtime_per_node", r.AvgDowntimePerNode},
		Metric{"tasks_retried", float64(r.TasksRetried)},
		Metric{"tasks_lost", float64(r.TasksLost)},
		Metric{"reconfig_faults", float64(r.ReconfigFaults)},
		Metric{"wasted_config_ticks", float64(r.WastedConfigTicks)},
	)
}

// ClassMetricRows flattens a per-traffic-class breakdown into named
// rows ("class_<name>_<metric>"). It returns nil for an empty slice,
// so single-class reports gain no rows.
func ClassMetricRows(classes []metrics.ClassStats) []Metric {
	if len(classes) == 0 {
		return nil
	}
	out := make([]Metric, 0, 6*len(classes))
	for _, c := range classes {
		prefix := "class_" + c.Name + "_"
		out = append(out,
			Metric{prefix + "generated", float64(c.Generated)},
			Metric{prefix + "completed", float64(c.Completed)},
			Metric{prefix + "discarded", float64(c.Discarded)},
			Metric{prefix + "lost", float64(c.Lost)},
			Metric{prefix + "avg_waiting_time", c.AvgWaitingTime},
			Metric{prefix + "avg_running_time", c.AvgRunningTime},
		)
	}
	return out
}

// ClassTableText renders the per-class breakdown as a fixed-width
// table, one row per class, for appending below Table I. Empty input
// renders nothing.
func ClassTableText(classes []metrics.ClassStats) string {
	if len(classes) == 0 {
		return ""
	}
	var dst []byte
	dst = appendCell(dst, "traffic class", -16)
	dst = appendCell(dst, "generated", 12)
	dst = appendCell(dst, "completed", 12)
	dst = appendCell(dst, "discarded", 12)
	dst = appendCell(dst, "lost", 8)
	dst = appendCell(dst, "avg wait", 12)
	dst = appendCell(dst, "avg run", 14)
	dst = append(dst, '\n')
	dst = append(dst, dashes[:72]...)
	dst = append(dst, '\n')
	for _, c := range classes {
		dst = appendCell(dst, c.Name, -16)
		dst = appendClassCell(dst, float64(c.Generated), 12)
		dst = appendClassCell(dst, float64(c.Completed), 12)
		dst = appendClassCell(dst, float64(c.Discarded), 12)
		dst = appendClassCell(dst, float64(c.Lost), 8)
		dst = appendClassCell(dst, c.AvgWaitingTime, 12)
		dst = appendClassCell(dst, c.AvgRunningTime, 14)
		dst = append(dst, '\n')
	}
	return string(dst)
}

// appendClassCell renders compact(v) right-justified to width.
func appendClassCell(dst []byte, v float64, width int) []byte {
	var scratch [32]byte
	num := appendCompact(scratch[:0], v)
	dst = append(dst, ' ')
	for i := len(num); i < width; i++ {
		dst = append(dst, ' ')
	}
	return append(dst, num...)
}

// WriteXML serialises the report with indentation and an XML header.
func WriteXML(w io.Writer, s Simulation) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a report previously produced by WriteXML.
func ReadXML(r io.Reader) (Simulation, error) {
	var s Simulation
	if err := xml.NewDecoder(r).Decode(&s); err != nil {
		return Simulation{}, fmt.Errorf("report: parsing XML: %w", err)
	}
	return s, nil
}

// TableIText renders the Table I metrics as a fixed-width text table.
func TableIText(r metrics.Report) string {
	return string(AppendTableI(nil, r))
}

// CompareText renders two scenario reports side by side (the paper's
// with/without-partial comparisons).
func CompareText(nameA string, a metrics.Report, nameB string, b metrics.Report) string {
	return string(AppendCompare(nil, nameA, a, nameB, b))
}

// A Renderer amortises text rendering across calls: one reusable byte
// buffer and row slice serve every table it produces, so rendering a
// stream of reports (a sweep's per-cell tables, a comparison per
// seed) allocates only the returned strings. The zero value is ready;
// a Renderer must not be shared by concurrent goroutines.
type Renderer struct {
	buf []byte
}

// TableIText is the free function of the same name on the reused
// buffer; output is byte-identical.
func (rd *Renderer) TableIText(r metrics.Report) string {
	rd.buf = AppendTableI(rd.buf[:0], r)
	return string(rd.buf)
}

// CompareText is the free function of the same name on the reused
// buffer; output is byte-identical.
func (rd *Renderer) CompareText(nameA string, a metrics.Report, nameB string, b metrics.Report) string {
	rd.buf = AppendCompare(rd.buf[:0], nameA, a, nameB, b)
	return string(rd.buf)
}

// dashes backs the separator rows (the longest is CompareText's 72).
const dashes = "------------------------------------------------------------------------"

// AppendTableI appends TableIText's output to dst and returns the
// extended buffer — the allocation-free core of the text rendering.
//
//dreamsim:noalloc
func AppendTableI(dst []byte, r metrics.Report) []byte {
	dst = appendCell(dst, "performance metric", -34)
	dst = appendCell(dst, "value", 18)
	dst = append(dst, '\n')
	dst = append(dst, dashes[:53]...)
	dst = append(dst, '\n')
	var scratch [17]Metric
	for _, m := range appendRowsForced(scratch[:0], r, r.HasFaults()) {
		dst = appendCell(dst, m.Name, -34)
		dst = appendCompactCell(dst, m.Value)
		dst = append(dst, '\n')
	}
	return dst
}

// AppendCompare appends CompareText's output to dst and returns the
// extended buffer.
//
//dreamsim:noalloc
func AppendCompare(dst []byte, nameA string, a metrics.Report, nameB string, b metrics.Report) []byte {
	dst = appendCell(dst, "performance metric", -34)
	dst = appendCell(dst, nameA, 18)
	dst = appendCell(dst, nameB, 18)
	dst = append(dst, '\n')
	dst = append(dst, dashes[:72]...)
	dst = append(dst, '\n')
	var sa, sb [17]Metric
	rowsA := appendRowsForced(sa[:0], a, a.HasFaults() || b.HasFaults())
	rowsB := appendRowsForced(sb[:0], b, a.HasFaults() || b.HasFaults())
	for i := range rowsA {
		dst = appendCell(dst, rowsA[i].Name, -34)
		dst = appendCompactCell(dst, rowsA[i].Value)
		dst = appendCompactCell(dst, rowsB[i].Value)
		dst = append(dst, '\n')
	}
	return dst
}

// appendRowsForced collects the Table I rows (fault rows appended
// when faults is true) into dst without allocating a fresh slice per
// render.
func appendRowsForced(dst []Metric, r metrics.Report, faults bool) []Metric {
	dst = appendMetricRows(dst, r)
	if faults {
		dst = appendFaultMetricRows(dst, r)
	}
	return dst
}

// appendCell appends s padded to the fmt "%Ns" convention: positive
// width right-justifies, negative left-justifies, and a leading space
// separates it from the previous cell exactly where the old format
// strings ("%-34s %18s...") put one.
func appendCell(dst []byte, s string, width int) []byte {
	if width > 0 {
		dst = append(dst, ' ') // the separator the format string had
		for i := len(s); i < width; i++ {
			dst = append(dst, ' ')
		}
		return append(dst, s...)
	}
	dst = append(dst, s...)
	for i := len(s); i < -width; i++ {
		dst = append(dst, ' ')
	}
	return dst
}

// appendCompactCell renders compact(v) right-justified to 18 columns
// without going through a string.
func appendCompactCell(dst []byte, v float64) []byte {
	var scratch [32]byte
	num := appendCompact(scratch[:0], v)
	dst = append(dst, ' ')
	for i := len(num); i < 18; i++ {
		dst = append(dst, ' ')
	}
	return append(dst, num...)
}

// compact formats a value without trailing decimal noise; values of
// a million and beyond render in scientific notation like the paper's
// figure axes.
func compact(v float64) string {
	var scratch [32]byte
	return string(appendCompact(scratch[:0], v))
}

// appendCompact is compact into a caller-owned buffer. strconv's
// 'g'/'f' verbs produce exactly what fmt's %.4g/%.2f did — fmt
// delegates float formatting to strconv with the same precision.
func appendCompact(dst []byte, v float64) []byte {
	if v >= 1e6 {
		return strconv.AppendFloat(dst, v, 'g', 4, 64)
	}
	if v == float64(int64(v)) {
		return strconv.AppendInt(dst, int64(v), 10)
	}
	return strconv.AppendFloat(dst, v, 'f', 2, 64)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
