// Package report implements DReAMSim's output subsystem (paper §III):
// the XML simulation report accumulating the statistics of each run,
// plus fixed-width text rendering of the Table I metrics and CSV
// emission for figure series.
package report

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"dreamsim/internal/metrics"
)

// Param is one simulation parameter echoed into the report.
type Param struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

// Metric is one Table I metric row.
type Metric struct {
	Name  string  `xml:"name,attr"`
	Value float64 `xml:"value,attr"`
}

// Phase is one scheduling-phase placement counter.
type Phase struct {
	Name  string `xml:"name,attr"`
	Count int64  `xml:"count,attr"`
}

// Simulation is the XML report root (<simulation-report>).
type Simulation struct {
	XMLName  xml.Name `xml:"simulation-report"`
	Scenario string   `xml:"scenario,attr"` // "partial" / "full"
	Policy   string   `xml:"policy,attr"`
	Seed     uint64   `xml:"seed,attr"`

	Params  []Param  `xml:"parameters>param"`
	Metrics []Metric `xml:"metrics>metric"`
	Phases  []Phase  `xml:"phases>phase"`
}

// New assembles a Simulation report from a metrics report, the
// parameter echo and the per-phase placement counts.
func New(scenario, policy string, seed uint64, params map[string]string,
	rep metrics.Report, phases map[string]int64) Simulation {

	s := Simulation{Scenario: scenario, Policy: policy, Seed: seed}
	for _, k := range sortedKeys(params) {
		s.Params = append(s.Params, Param{Name: k, Value: params[k]})
	}
	for _, m := range MetricRows(rep) {
		s.Metrics = append(s.Metrics, m)
	}
	if rep.HasFaults() {
		s.Metrics = append(s.Metrics, FaultMetricRows(rep)...)
	}
	for _, k := range sortedKeysI64(phases) {
		s.Phases = append(s.Phases, Phase{Name: k, Count: phases[k]})
	}
	return s
}

// MetricRows flattens a metrics.Report into named rows in Table I
// order.
func MetricRows(r metrics.Report) []Metric {
	return []Metric{
		{"avg_wasted_area_per_task", r.AvgWastedAreaPerTask},
		{"avg_running_time_per_task", r.AvgRunningTimePerTask},
		{"avg_reconfig_count_per_node", r.AvgReconfigCountPerNode},
		{"avg_reconfig_time_per_task", r.AvgReconfigTimePerTask},
		{"avg_waiting_time_per_task", r.AvgWaitingTimePerTask},
		{"avg_scheduling_steps_per_task", r.AvgSchedulingStepsPerTask},
		{"total_discarded_tasks", float64(r.TotalDiscardedTasks)},
		{"total_scheduler_workload", float64(r.TotalSchedulerWorkload)},
		{"total_used_nodes", float64(r.TotalUsedNodes)},
		{"total_simulation_time", float64(r.TotalSimulationTime)},
	}
}

// FaultMetricRows flattens the fault-injection outcomes into named
// rows. Callers append them after MetricRows only when
// r.HasFaults(), which keeps fault-free reports byte-identical to
// those of builds without the fault subsystem.
func FaultMetricRows(r metrics.Report) []Metric {
	return []Metric{
		{"node_crashes", float64(r.NodeCrashes)},
		{"node_recoveries", float64(r.NodeRecoveries)},
		{"avg_downtime_per_node", r.AvgDowntimePerNode},
		{"tasks_retried", float64(r.TasksRetried)},
		{"tasks_lost", float64(r.TasksLost)},
		{"reconfig_faults", float64(r.ReconfigFaults)},
		{"wasted_config_ticks", float64(r.WastedConfigTicks)},
	}
}

// WriteXML serialises the report with indentation and an XML header.
func WriteXML(w io.Writer, s Simulation) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(s); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// ReadXML parses a report previously produced by WriteXML.
func ReadXML(r io.Reader) (Simulation, error) {
	var s Simulation
	if err := xml.NewDecoder(r).Decode(&s); err != nil {
		return Simulation{}, fmt.Errorf("report: parsing XML: %w", err)
	}
	return s, nil
}

// TableIText renders the Table I metrics as a fixed-width text table.
func TableIText(r metrics.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s %18s\n", "performance metric", "value")
	fmt.Fprintf(&b, "%s\n", strings.Repeat("-", 53))
	rows := MetricRows(r)
	if r.HasFaults() {
		rows = append(rows, FaultMetricRows(r)...)
	}
	for _, m := range rows {
		fmt.Fprintf(&b, "%-34s %18s\n", m.Name, compact(m.Value))
	}
	return b.String()
}

// CompareText renders two scenario reports side by side (the paper's
// with/without-partial comparisons).
func CompareText(nameA string, a metrics.Report, nameB string, b metrics.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-34s %18s %18s\n", "performance metric", nameA, nameB)
	fmt.Fprintf(&sb, "%s\n", strings.Repeat("-", 72))
	rowsA, rowsB := MetricRows(a), MetricRows(b)
	if a.HasFaults() || b.HasFaults() {
		rowsA = append(rowsA, FaultMetricRows(a)...)
		rowsB = append(rowsB, FaultMetricRows(b)...)
	}
	for i := range rowsA {
		fmt.Fprintf(&sb, "%-34s %18s %18s\n", rowsA[i].Name,
			compact(rowsA[i].Value), compact(rowsB[i].Value))
	}
	return sb.String()
}

// compact formats a value without trailing decimal noise; values of
// a million and beyond render in scientific notation like the paper's
// figure axes.
func compact(v float64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.4g", v)
	}
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI64(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
