package snapshot

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var w Writer
	u64s := []uint64{0, 1, 127, 128, 1<<32 - 1, math.MaxUint64}
	i64s := []int64{0, 1, -1, 63, -64, 1 << 40, math.MinInt64, math.MaxInt64}
	f64s := []float64{0, math.Copysign(0, -1), 1.5, -2.75, math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	strs := []string{"", "x", "dreamsim-core", strings.Repeat("é", 100)}
	for _, v := range u64s {
		w.U64(v)
	}
	for _, v := range i64s {
		w.I64(v)
	}
	for _, v := range f64s {
		w.F64(v)
	}
	for _, v := range strs {
		w.Str(v)
	}
	w.Bool(true)
	w.Bool(false)
	w.Int(-42)

	r := NewReader(w.Bytes())
	for _, v := range u64s {
		if got := r.U64(); got != v {
			t.Fatalf("U64 round trip: got %d, want %d", got, v)
		}
	}
	for _, v := range i64s {
		if got := r.I64(); got != v {
			t.Fatalf("I64 round trip: got %d, want %d", got, v)
		}
	}
	for _, v := range f64s {
		if got := r.F64(); got != v {
			t.Fatalf("F64 round trip: got %v, want %v", got, v)
		}
	}
	for _, v := range strs {
		if got := r.Str(); got != v {
			t.Fatalf("Str round trip: got %q, want %q", got, v)
		}
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := r.Int(); got != -42 {
		t.Fatalf("Int round trip: got %d", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestF64NaNRoundTrip(t *testing.T) {
	var w Writer
	w.F64(math.NaN())
	r := NewReader(w.Bytes())
	if got := r.F64(); !math.IsNaN(got) {
		t.Fatalf("NaN decoded as %v", got)
	}
}

func TestReaderLatchesFirstError(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated uvarint
	if r.U64() != 0 || r.Err() == nil {
		t.Fatal("truncated uvarint not rejected")
	}
	first := r.Err()
	r.I64()
	r.Bool()
	r.Str()
	if r.Err() != first {
		t.Fatal("later reads replaced the latched error")
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("latched error %v is not ErrCorrupt", r.Err())
	}
}

func TestBoolRejectsNonBinaryByte(t *testing.T) {
	r := NewReader([]byte{2})
	if r.Bool() || r.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestStrAndCountBoundAllocations(t *testing.T) {
	var w Writer
	w.Int(1 << 40) // length far beyond the payload
	data := w.Bytes()

	r := NewReader(data)
	if r.Str() != "" || r.Err() == nil {
		t.Fatal("oversized string length accepted")
	}
	r = NewReader(data)
	if r.Count() != 0 || r.Err() == nil {
		t.Fatal("oversized collection length accepted")
	}

	var neg Writer
	neg.Int(-1)
	r = NewReader(neg.Bytes())
	if r.Count() != 0 || r.Err() == nil {
		t.Fatal("negative collection length accepted")
	}
}

func TestCloseRejectsTrailingBytes(t *testing.T) {
	var w Writer
	w.U64(7)
	w.U64(9)
	r := NewReader(w.Bytes())
	r.U64()
	if err := r.Close(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes gave %v, want ErrCorrupt", err)
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	payload := []byte("state bytes")
	sealed := Seal("test-kind", 3, payload)
	got, version, err := Open(sealed, "test-kind", 5)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if version != 3 || string(got) != string(payload) {
		t.Fatalf("Open gave v%d %q", version, got)
	}
	if _, _, err := Open(Seal("k", 1, nil), "k", 1); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
}

func TestEnvelopeVersionSkew(t *testing.T) {
	sealed := Seal("test-kind", 9, []byte("future"))
	if _, _, err := Open(sealed, "test-kind", 8); !errors.Is(err, ErrVersion) {
		t.Fatalf("newer version gave %v, want ErrVersion", err)
	}
	if _, _, err := Open(sealed, "other-kind", 9); !errors.Is(err, ErrVersion) {
		t.Fatalf("kind mismatch gave %v, want ErrVersion", err)
	}
}

func TestEnvelopeCorruption(t *testing.T) {
	sealed := Seal("test-kind", 1, []byte("payload payload payload"))

	// Truncations at every length.
	for n := 0; n < len(sealed); n++ {
		if _, _, err := Open(sealed[:n], "test-kind", 1); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes gave %v, want ErrCorrupt", n, err)
		}
	}
	// Single bit flips anywhere — including inside the CRC trailer —
	// must be caught.
	for i := 0; i < len(sealed); i++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), sealed...)
			mut[i] ^= 1 << bit
			if _, _, err := Open(mut, "test-kind", 1); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip at byte %d bit %d gave %v, want ErrCorrupt", i, bit, err)
			}
		}
	}
}
